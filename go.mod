module edgepulse

go 1.22
