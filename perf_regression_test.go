// Performance regression guards for the inference hot path. These pin
// the structural properties the EON compiler ablation rests on — the
// compiled program must allocate strictly less than the interpreter
// path — so a refactor cannot silently turn Table 2/4's story into a
// no-op again.
package edgepulse_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"edgepulse/internal/tflm"

	eonc "edgepulse/internal/eon"
)

// newestBenchRecord parses the newest committed BENCH_<stamp>.json and
// returns its ns/op by benchmark name.
func newestBenchRecord(t *testing.T) map[string]float64 {
	t.Helper()
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed BENCH_*.json records (err=%v)", err)
	}
	var records []struct {
		Stamp      string `json:"stamp"`
		Benchmarks []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var rec struct {
			Stamp      string `json:"stamp"`
			Benchmarks []struct {
				Name    string  `json:"name"`
				NsPerOp float64 `json:"ns_per_op"`
			} `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		records = append(records, rec)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Stamp < records[j].Stamp })
	newest := records[len(records)-1]
	out := make(map[string]float64, len(newest.Benchmarks))
	for _, b := range newest.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out
}

// TestInt8FasterThanFloatInCommittedRecord pins the paper's core claim
// on the committed benchmark record: quantized int8 inference must be
// strictly faster than float32 on the same KWS architecture. This is
// the guard against the int8-slower-than-float kernel inversion
// recurring — a PR whose benchmark record shows the inversion cannot
// land.
func TestInt8FasterThanFloatInCommittedRecord(t *testing.T) {
	ns := newestBenchRecord(t)
	int8NS, floatNS := ns["BenchmarkAblationInt8Kernels"], ns["BenchmarkAblationFloatKernels"]
	if int8NS <= 0 || floatNS <= 0 {
		t.Fatalf("ablation benchmarks missing from newest record (int8=%v float=%v)", int8NS, floatNS)
	}
	if int8NS >= floatNS {
		t.Errorf("int8 KWS inference %.0f ns/op is not faster than float %.0f ns/op in the committed record", int8NS, floatNS)
	}
}

// TestKWSForwardUnderOneMillisecond pins the absolute latency budget on
// the committed record: one KWS DS-CNN forward pass (both precisions
// and the EON-compiled program) must stay under 1.0 ms.
func TestKWSForwardUnderOneMillisecond(t *testing.T) {
	const budgetNS = 1e6
	ns := newestBenchRecord(t)
	for _, name := range []string{
		"BenchmarkAblationInt8Kernels",
		"BenchmarkAblationFloatKernels",
		"BenchmarkAblationEONCompiled",
	} {
		v := ns[name]
		if v <= 0 {
			t.Errorf("%s missing from newest committed record", name)
			continue
		}
		if v >= budgetNS {
			t.Errorf("%s = %.0f ns/op, budget is %.0f (1.0 ms)", name, v, budgetNS)
		}
	}
}

// TestEONCompiledAllocatesLessThanInterpreter asserts the compiled KWS
// program performs strictly fewer allocations per inference than the
// TFLM interpreter path: the compiler binds kernels and buffer offsets
// statically, while the interpreter pays per-op dispatch and per-tensor
// bookkeeping every Invoke.
func TestEONCompiledAllocatesLessThanInterpreter(t *testing.T) {
	m, _, in := kwsModelAndQuant(t)
	mf := tflm.ModelFileFromFloat(m)
	it, err := tflm.NewInterpreter(mf)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eonc.Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both pools so steady state is measured.
	if _, err := it.Invoke(in); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(in); err != nil {
		t.Fatal(err)
	}
	itAllocs := testing.AllocsPerRun(10, func() {
		if _, err := it.Invoke(in); err != nil {
			t.Fatal(err)
		}
	})
	eonAllocs := testing.AllocsPerRun(10, func() {
		if _, err := prog.Run(in); err != nil {
			t.Fatal(err)
		}
	})
	if eonAllocs >= itAllocs {
		t.Errorf("EON compiled program allocates %v per run, interpreter %v: compiled path must be strictly lighter", eonAllocs, itAllocs)
	}
	if eonAllocs > 4 {
		t.Errorf("EON compiled program allocates %v per run, want <= 4 (steady-state arena reuse)", eonAllocs)
	}
}

// TestFloatForwardAllocBudget pins the raw float kernel path's budget:
// repeated Model.Forward calls must reuse the pooled arena.
func TestFloatForwardAllocBudget(t *testing.T) {
	m, _, in := kwsModelAndQuant(t)
	m.Forward(in) // warm the plan and pool
	allocs := testing.AllocsPerRun(10, func() { m.Forward(in) })
	if allocs > 4 {
		t.Errorf("Model.Forward allocates %v per run, want <= 4", allocs)
	}
}

// TestInt8ForwardAllocBudget pins the quantized pipeline's budget.
func TestInt8ForwardAllocBudget(t *testing.T) {
	_, qm, in := kwsModelAndQuant(t)
	qm.Forward(in) // warm the pool
	allocs := testing.AllocsPerRun(10, func() { qm.Forward(in) })
	if allocs > 4 {
		t.Errorf("QModel.Forward allocates %v per run, want <= 4", allocs)
	}
}
