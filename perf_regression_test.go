// Performance regression guards for the inference hot path. These pin
// the structural properties the EON compiler ablation rests on — the
// compiled program must allocate strictly less than the interpreter
// path — so a refactor cannot silently turn Table 2/4's story into a
// no-op again.
package edgepulse_test

import (
	"testing"

	"edgepulse/internal/tflm"

	eonc "edgepulse/internal/eon"
)

// TestEONCompiledAllocatesLessThanInterpreter asserts the compiled KWS
// program performs strictly fewer allocations per inference than the
// TFLM interpreter path: the compiler binds kernels and buffer offsets
// statically, while the interpreter pays per-op dispatch and per-tensor
// bookkeeping every Invoke.
func TestEONCompiledAllocatesLessThanInterpreter(t *testing.T) {
	m, _, in := kwsModelAndQuant(t)
	mf := tflm.ModelFileFromFloat(m)
	it, err := tflm.NewInterpreter(mf)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eonc.Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both pools so steady state is measured.
	if _, err := it.Invoke(in); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(in); err != nil {
		t.Fatal(err)
	}
	itAllocs := testing.AllocsPerRun(10, func() {
		if _, err := it.Invoke(in); err != nil {
			t.Fatal(err)
		}
	})
	eonAllocs := testing.AllocsPerRun(10, func() {
		if _, err := prog.Run(in); err != nil {
			t.Fatal(err)
		}
	})
	if eonAllocs >= itAllocs {
		t.Errorf("EON compiled program allocates %v per run, interpreter %v: compiled path must be strictly lighter", eonAllocs, itAllocs)
	}
	if eonAllocs > 4 {
		t.Errorf("EON compiled program allocates %v per run, want <= 4 (steady-state arena reuse)", eonAllocs)
	}
}

// TestFloatForwardAllocBudget pins the raw float kernel path's budget:
// repeated Model.Forward calls must reuse the pooled arena.
func TestFloatForwardAllocBudget(t *testing.T) {
	m, _, in := kwsModelAndQuant(t)
	m.Forward(in) // warm the plan and pool
	allocs := testing.AllocsPerRun(10, func() { m.Forward(in) })
	if allocs > 4 {
		t.Errorf("Model.Forward allocates %v per run, want <= 4", allocs)
	}
}

// TestInt8ForwardAllocBudget pins the quantized pipeline's budget.
func TestInt8ForwardAllocBudget(t *testing.T) {
	_, qm, in := kwsModelAndQuant(t)
	qm.Forward(in) // warm the pool
	allocs := testing.AllocsPerRun(10, func() { qm.Forward(in) })
	if allocs > 4 {
		t.Errorf("QModel.Forward allocates %v per run, want <= 4", allocs)
	}
}
