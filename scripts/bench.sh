#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks and record them
# as a committed BENCH_<stamp>.json so the perf trajectory is tracked
# across PRs.
#
# Usage:
#   scripts/bench.sh                 # full run (~1s per benchmark)
#   BENCHTIME=1x scripts/bench.sh    # smoke run (CI)
#   BENCH='Ablation' scripts/bench.sh  # filter by benchmark name
#   scripts/bench.sh fleet           # macro load run -> FLEET_<stamp>.json
#
# The fleet mode runs the macro load harness (cmd/ei-fleet) against an
# in-process daemon with the SLO check on, and records the committed
# FLEET_<stamp>.json trajectory file next to the BENCH series.
# FLEET_DEVICES / FLEET_OPS override the fleet size.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "fleet" ]; then
  exec go run ./cmd/ei-fleet \
    -devices "${FLEET_DEVICES:-12}" -ops "${FLEET_OPS:-2}" \
    -check -out FLEET_STAMP.json
fi

benchtime=${BENCHTIME:-1s}
pattern=${BENCH:-.}
# Root ablation/table benchmarks plus the kernel microbenchmarks (simd
# panels, parallel conv, fast-math), the classify pipeline (single vs
# batched), the storage engine (upload persistence + cold signal reads)
# and the streaming plane (per-window rolling classification).
pkgs=(. ./internal/fft ./internal/nn ./internal/dsp ./internal/quant ./internal/simd ./internal/fastmath ./internal/core ./internal/store ./internal/stream)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" "${pkgs[@]}" | tee "$tmp"
go run ./cmd/ei-bench -bench-json "BENCH_STAMP.json" < "$tmp"
