#!/usr/bin/env bash
# check_links.sh — fail on broken relative links in the repo's Markdown
# docs (README.md and docs/*.md). External http(s) links are skipped;
# anchors are stripped before checking the target path.
#
# Usage: scripts/check_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  base=$(dirname "$doc")
  # Extract every markdown link target: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;; # in-page anchor
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$base/$path" ]; then
      echo "::error::$doc: broken relative link -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "broken links found" >&2
  exit 1
fi
echo "all relative doc links resolve"
