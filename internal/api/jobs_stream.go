package api

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

// eventView renders one scheduler event as its wire DTO.
func eventView(e jobs.Event) v1.JobEvent {
	return v1.JobEvent{
		Seq:         e.Seq,
		Type:        string(e.Type),
		TimestampMS: e.Time.UnixMilli(),
		Status:      string(e.Status),
		Stage:       e.Stage,
		Progress:    e.Pct,
		Message:     e.Message,
		Attempt:     e.Attempt,
	}
}

// handleCancelJob implements DELETE /api/v1/jobs/{job}: cooperative
// cancellation. A queued job is terminal immediately; a running job's
// context is cancelled and it reaches "cancelled" as soon as its body
// observes the context. Cancelling an already-terminal job is a no-op
// acknowledged with cancelled=false.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request, u *project.User) {
	j, ok := s.authorizeJob(w, r, u)
	if !ok {
		return
	}
	_, cancelled, err := s.sched.Cancel(j.ID)
	if err != nil {
		// The job was evicted between authorization and cancel.
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.CancelJobResponse{Success: true, Cancelled: cancelled, Job: jobView(j)})
}

// setStreamingHeaders marks a response as a live NDJSON feed: no-cache
// so intermediaries never serve a stale replay, and X-Accel-Buffering
// off so reverse proxies (nginx) pass each line through as it is
// flushed instead of buffering the body.
func setStreamingHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
}

// eventsAfter parses the resume cursor: the from query parameter wins,
// then the Last-Event-Id header (the SSE-style resume contract), else 0
// (the full retained log).
func eventsAfter(r *http.Request) (int64, bool) {
	raw := r.URL.Query().Get("from")
	if raw == "" {
		raw = r.Header.Get("Last-Event-Id")
	}
	if raw == "" {
		return 0, true
	}
	after, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || after < 0 {
		return 0, false
	}
	return after, true
}

// handleJobEvents implements GET /api/v1/jobs/{job}/events, the live
// observability feed: every state transition, progress update and log
// line, in order, resumable via Last-Event-Id.
//
// Default mode streams newline-delimited JSON (one JobEvent per line,
// flushed as they happen) until the terminal event. mode=poll is the
// long-poll fallback for clients that cannot consume chunked responses:
// it returns every event after `from`, waiting up to timeout_ms for the
// first one.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, u *project.User) {
	j, ok := s.authorizeJob(w, r, u)
	if !ok {
		return
	}
	after, ok := eventsAfter(r)
	if !ok {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest,
			"from / Last-Event-Id must be a non-negative integer")
		return
	}
	flusher, canStream := w.(http.Flusher)
	if r.URL.Query().Get("mode") == "poll" || !canStream {
		s.pollJobEvents(w, r, j, after)
		return
	}

	setStreamingHeaders(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	// emit writes one event line; it reports (stop, terminal).
	emit := func(e jobs.Event) (bool, bool) {
		after = e.Seq
		if enc.Encode(eventView(e)) != nil {
			return true, false
		}
		flusher.Flush()
		terminal := e.Type == jobs.EventState && e.Status.Terminal()
		return terminal, terminal
	}
	for {
		replay, ch, cancel := j.Subscribe(after)
		for _, e := range replay {
			if stop, _ := emit(e); stop {
				cancel()
				return
			}
		}
		for {
			select {
			case e, open := <-ch:
				if !open {
					// The subscriber fell behind and was dropped (a
					// terminal job always delivers its terminal event
					// before the close, which returns above). Loop to
					// re-subscribe from the last delivered seq; the
					// replay fills the gap, or ends the stream if the
					// job went terminal meanwhile.
					cancel()
					goto resubscribe
				}
				if stop, _ := emit(e); stop {
					cancel()
					return
				}
			case <-r.Context().Done():
				cancel()
				return
			}
		}
	resubscribe:
		if events, done := j.Events(after); done && len(events) == 0 {
			// Terminal event already delivered; nothing to resume.
			return
		}
	}
}

// pollJobEvents is the long-poll mode: return the events after `after`,
// waiting up to timeout_ms for the first one.
func (s *Server) pollJobEvents(w http.ResponseWriter, r *http.Request, j *jobs.Job, after int64) {
	timeout, ok := waitTimeout(r)
	if !ok {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "timeout_ms must be a positive integer")
		return
	}
	replay, ch, cancel := j.Subscribe(after)
	defer cancel()
	events := replay
	if len(events) == 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case e, open := <-ch:
			if open {
				events = append(events, e)
				// Batch whatever else is already buffered.
				for more := true; more; {
					select {
					case e, open := <-ch:
						if open {
							events = append(events, e)
						} else {
							more = false
						}
					default:
						more = false
					}
				}
			}
		case <-timer.C:
		case <-r.Context().Done():
			w.WriteHeader(statusClientClosedRequest)
			return
		}
	}
	next := after
	if len(events) > 0 {
		next = events[len(events)-1].Seq
	}
	out := v1.JobEventsResponse{Success: true, NextSeq: next}
	for _, e := range events {
		out.Events = append(out.Events, eventView(e))
	}
	remaining, terminal := j.Events(next)
	out.Done = terminal && len(remaining) == 0
	writeJSON(w, http.StatusOK, out)
}

// waitTimeout parses timeout_ms with the long-poll default and cap.
func waitTimeout(r *http.Request) (time.Duration, bool) {
	timeout := defaultWaitTimeout
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms <= 0 {
			return 0, false
		}
		// Clamp before the Duration multiply: a huge ms value would
		// overflow int64 into a negative timeout.
		if maxMS := int(maxWaitTimeout / time.Millisecond); ms > maxMS {
			ms = maxMS
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	return timeout, true
}
