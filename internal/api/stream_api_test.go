package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/jobs"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
)

// newSubServer serves an already-built Server for tests that need
// non-default options next to the shared env.
func newSubServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, ts *httptest.Server, method, path, apiKey string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("x-api-key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// streamTestImpulse builds a small trained MFE+conv impulse (untrained
// weights — streaming correctness does not depend on accuracy) and
// attaches it to the project directly, skipping the training job.
func streamTestImpulse(t *testing.T) *core.Impulse {
	t.Helper()
	imp := core.New("stream-api-test")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 250, StrideMS: 125, FrequencyHz: 4000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		t.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = []string{"high", "low"}
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(model, 3); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	return imp
}

// streamEnv spins up the API with one project holding a trained impulse.
func streamEnv(t *testing.T) (*testEnv, int) {
	t.Helper()
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "stream"}, http.StatusCreated)
	id := int(created["id"].(float64))
	p, err := e.reg.GetProject(id)
	if err != nil {
		t.Fatal(err)
	}
	p.SetImpulse(streamTestImpulse(t))
	return e, id
}

func toneSamples(n, rate int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = 0.5 * float32(math.Sin(2*math.Pi*700*float64(i)/float64(rate)))
	}
	return data
}

// readStreamEvents drains a session's NDJSON feed to EOF (the session
// must be terminal or become terminal) and decodes every line.
func readStreamEvents(e *testEnv, path, lastEventID string) (*http.Response, []v1.StreamEvent, error) {
	req, err := http.NewRequest("GET", e.server.URL+path, nil)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("x-api-key", e.apiKey)
	if lastEventID != "" {
		req.Header.Set("Last-Event-Id", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil, fmt.Errorf("stream status %d", resp.StatusCode)
	}
	var events []v1.StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev v1.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return resp, nil, fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return resp, events, sc.Err()
}

func TestStreamSessionLifecycle(t *testing.T) {
	e, id := streamEnv(t)
	open := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream", id), e.apiKey,
		map[string]any{"threshold": 0.4, "smooth": 1}, http.StatusOK)
	sid := open["session_id"].(string)
	if sid == "" {
		t.Fatal("no session id")
	}
	if w := open["window_samples"].(float64); w != 1000 {
		t.Fatalf("window_samples = %v, want 1000 (250ms @ 4kHz)", w)
	}
	if st := open["stride_samples"].(float64); st != 500 {
		t.Fatalf("stride_samples = %v, want 500", st)
	}
	if classes := open["classes"].([]any); len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}

	// 2000 samples = windows at frame 0, 500, 1000.
	push := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream/%s/frames", id, sid), e.apiKey,
		map[string]any{"samples": toneSamples(2000, 4000)}, http.StatusOK)
	if fi := push["frames_in"].(float64); fi != 2000 {
		t.Fatalf("frames_in = %v", fi)
	}

	closed := e.expectStatus("DELETE", fmt.Sprintf("/api/projects/%d/stream/%s", id, sid), e.apiKey, nil, http.StatusOK)
	stats := closed["stats"].(map[string]any)
	if w := stats["windows"].(float64); w != 3 {
		t.Fatalf("windows = %v, want 3", w)
	}
	if fi := stats["frames_in"].(float64); fi != 2000 {
		t.Fatalf("stats frames_in = %v", fi)
	}

	// The full feed replays: open state, 3 results, terminal close.
	resp, events, err := readStreamEvents(e, fmt.Sprintf("/api/v1/projects/%d/stream/%s/events", id, sid), "")
	if err != nil {
		t.Fatal(err)
	}
	// Satellite contract: streaming responses must disable caching and
	// proxy buffering.
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if ab := resp.Header.Get("X-Accel-Buffering"); ab != "no" {
		t.Fatalf("X-Accel-Buffering = %q", ab)
	}
	if len(events) < 5 {
		t.Fatalf("%d events: %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[0].Type != "state" || events[0].Status != "open" {
		t.Fatalf("first event %+v", events[0])
	}
	var results int
	var starts []int64
	for _, ev := range events {
		if ev.Type == "result" {
			results++
			starts = append(starts, ev.WindowStart)
			if ev.Label != "high" && ev.Label != "low" {
				t.Fatalf("result label %q", ev.Label)
			}
		}
	}
	if results != 3 || starts[0] != 0 || starts[1] != 500 || starts[2] != 1000 {
		t.Fatalf("results %d at %v, want 3 at [0 500 1000]", results, starts)
	}
	last := events[len(events)-1]
	if !last.Terminal() || last.Reason != "client request" {
		t.Fatalf("terminal event %+v", last)
	}

	// Resume from a mid-stream cursor.
	mid := events[2].Seq
	_, resumed, err := readStreamEvents(e, fmt.Sprintf("/api/v1/projects/%d/stream/%s/events", id, sid), fmt.Sprint(mid))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(events)-int(mid) || resumed[0].Seq != mid+1 {
		t.Fatalf("resume after %d: %d events, first seq %d", mid, len(resumed), resumed[0].Seq)
	}

	// A closed session stays addressable for event replay, but refuses
	// further frames.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream/%s/frames", id, sid), e.apiKey,
		map[string]any{"samples": toneSamples(10, 4000)}, http.StatusConflict)
}

func TestStreamValidationAndScoping(t *testing.T) {
	e, id := streamEnv(t)

	// A project without a trained impulse cannot open a stream.
	bare := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "bare"}, http.StatusCreated)
	bareID := int(bare["id"].(float64))
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream", bareID), e.apiKey,
		map[string]any{}, http.StatusBadRequest)

	// Bad tuning values are rejected.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream", id), e.apiKey,
		map[string]any{"stride_ms": -5}, http.StatusBadRequest)
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream", id), e.apiKey,
		map[string]any{"stride_ms": 10000}, http.StatusBadRequest) // stride > window

	open := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream", id), e.apiKey,
		map[string]any{}, http.StatusOK)
	sid := open["session_id"].(string)

	// Unknown session and cross-project access both read as 404.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream/nope/frames", id), e.apiKey,
		map[string]any{"samples": []float32{1}}, http.StatusNotFound)
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream/%s/frames", bareID, sid), e.apiKey,
		map[string]any{"samples": []float32{1}}, http.StatusNotFound)
	e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/stream/%s/events", bareID, sid), e.apiKey,
		nil, http.StatusNotFound)

	// Empty batches are rejected.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream/%s/frames", id, sid), e.apiKey,
		map[string]any{"samples": []float32{}}, http.StatusBadRequest)
	// Bad resume cursor.
	e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/stream/%s/events?from=x", id, sid), e.apiKey,
		nil, http.StatusBadRequest)

	e.expectStatus("DELETE", fmt.Sprintf("/api/projects/%d/stream/%s", id, sid), e.apiKey, nil, http.StatusOK)
}

// TestStreamCapacityAndMetrics drives the server-wide session cap and
// checks both the 429 shed path and the stream-plane metrics snapshot.
func TestStreamCapacityAndMetrics(t *testing.T) {
	e, id := streamEnv(t)
	// Shrink the cap by swapping in a dedicated server? Cheaper: open
	// sessions up to DefaultMaxSessions would be slow; instead exercise
	// the cap through a second server with WithStreamSessions(1).
	srv := NewServer(e.reg, e.sched, WithStreamSessions(1))
	ts := newSubServer(t, srv)
	open := func(want int) map[string]any {
		resp, raw := doJSON(t, ts, "POST", fmt.Sprintf("/api/v1/projects/%d/stream", id), e.apiKey, map[string]any{})
		if resp.StatusCode != want {
			t.Fatalf("open: status %d, want %d (%s)", resp.StatusCode, want, raw)
		}
		var out map[string]any
		json.Unmarshal(raw, &out)
		return out
	}
	first := open(http.StatusOK)
	shed := open(http.StatusTooManyRequests)
	errObj := shed["error"].(map[string]any)
	if errObj["code"] != v1.CodeRateLimited {
		t.Fatalf("shed error code %v", errObj["code"])
	}

	resp, raw := doJSON(t, ts, "DELETE",
		fmt.Sprintf("/api/v1/projects/%d/stream/%s", id, first["session_id"]), e.apiKey, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: %d %s", resp.StatusCode, raw)
	}

	resp, raw = doJSON(t, ts, "GET", "/api/v1/metrics", e.apiKey, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var metrics v1.MetricsResponse
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatal(err)
	}
	sp := metrics.StreamPlane
	if sp == nil {
		t.Fatal("no stream_plane in metrics")
	}
	if sp.Opened != 1 || sp.Shed != 1 || sp.ActiveSessions != 0 || sp.PeakSessions != 1 {
		t.Fatalf("stream plane %+v", sp)
	}
}

// TestStreamConnectionMetricsSeparate asserts the satellite contract:
// a held-open NDJSON connection is accounted under stream metrics (with
// its duration) while the route's request-latency average stays at the
// recorded-zero duration.
func TestStreamConnectionMetricsSeparate(t *testing.T) {
	e, id := streamEnv(t)
	open := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/stream", id), e.apiKey,
		map[string]any{}, http.StatusOK)
	sid := open["session_id"].(string)
	e.expectStatus("DELETE", fmt.Sprintf("/api/projects/%d/stream/%s", id, sid), e.apiKey, nil, http.StatusOK)
	// Drain the (now terminal) feed so one streaming connection completes.
	if _, _, err := readStreamEvents(e, fmt.Sprintf("/api/v1/projects/%d/stream/%s/events", id, sid), ""); err != nil {
		t.Fatal(err)
	}

	var metrics v1.MetricsResponse
	resp, raw := e.doRaw("GET", "/api/v1/metrics", e.apiKey, nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatal(err)
	}
	const route = "GET /api/v1/projects/{id}/stream/{sid}/events"
	var stream *v1.StreamRouteMetrics
	for i := range metrics.Streams {
		if metrics.Streams[i].Route == route {
			stream = &metrics.Streams[i]
		}
	}
	if stream == nil {
		t.Fatalf("no stream metrics for %q: %+v", route, metrics.Streams)
	}
	if stream.Count != 1 || stream.Active != 0 {
		t.Fatalf("stream route metrics %+v", stream)
	}
	for _, r := range metrics.Routes {
		if r.Route == route {
			if r.Count != 1 || r.AvgMS != 0 {
				t.Fatalf("streaming route leaked into request latency: %+v", r)
			}
			return
		}
	}
	t.Fatalf("route %q missing from request metrics", route)
}

// TestStreamDuplex drives the single-connection NDJSON duplex endpoint:
// open request line in, frames in, events out, EOF closes the session.
func TestStreamDuplex(t *testing.T) {
	e, id := streamEnv(t)
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", e.server.URL+fmt.Sprintf("/api/v1/projects/%d/stream/duplex", id), pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("x-api-key", e.apiKey)
	req.Header.Set("Content-Type", "application/x-ndjson")

	go func() {
		enc := json.NewEncoder(pw)
		enc.Encode(map[string]any{"threshold": 0.4, "smooth": 1})
		// 2500 samples in uneven chunks: windows at 0, 500, 1000, 1500.
		samples := toneSamples(2500, 4000)
		for _, chunk := range [][]float32{samples[:700], samples[700:1800], samples[1800:]} {
			enc.Encode(map[string]any{"samples": chunk})
		}
		pw.Close()
	}()

	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("duplex status %d: %s", resp.StatusCode, raw)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("Cache-Control = %q", cc)
	}

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no open ack line: %v", sc.Err())
	}
	var ack v1.StreamOpenResponse
	if err := json.Unmarshal(sc.Bytes(), &ack); err != nil {
		t.Fatalf("bad ack line %q", sc.Text())
	}
	if !ack.Success || ack.SessionID == "" || ack.WindowSamples != 1000 {
		t.Fatalf("ack %+v", ack)
	}
	var events []v1.StreamEvent
	for sc.Scan() {
		var ev v1.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q", sc.Text())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var results int
	for _, ev := range events {
		if ev.Type == "result" {
			results++
		}
	}
	if results != 4 {
		t.Fatalf("%d results, want 4 (%+v)", results, events)
	}
	last := events[len(events)-1]
	if !last.Terminal() || !strings.Contains(last.Reason, "client closed stream") {
		t.Fatalf("terminal %+v", last)
	}
}

// TestStreamDuplexBadOpenLine: a malformed first line fails with the
// error envelope before any session is admitted.
func TestStreamDuplexBadOpenLine(t *testing.T) {
	e, id := streamEnv(t)
	resp, raw := e.doRaw("POST", fmt.Sprintf("/api/v1/projects/%d/stream/duplex", id), e.apiKey,
		[]byte("not json\n"), "application/x-ndjson")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
}

// TestJobEventsStreamingHeaders pins the no-cache / no-proxy-buffering
// satellite on the job event feed, which shares setStreamingHeaders with
// the stream endpoints.
func TestJobEventsStreamingHeaders(t *testing.T) {
	e := newEnv(t)
	job, err := e.sched.Submit("train", func(ctx context.Context, j *jobs.Job) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.sched.Wait(job.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	resp, _ := e.doRaw("GET", "/api/v1/jobs/"+job.ID+"/events", e.apiKey, nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if ab := resp.Header.Get("X-Accel-Buffering"); ab != "no" {
		t.Fatalf("X-Accel-Buffering = %q", ab)
	}
}
