package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"testing"

	"edgepulse/internal/client"
	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
)

// TestImpulseDTODrift asserts the server's impulse handlers and the
// typed Go client marshal the same v2 design bytes: a design uploaded
// through internal/client comes back byte-identical to what the core
// types marshal locally, whether it was posted as a typed struct or as
// raw JSON.
func TestImpulseDTODrift(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	c := client.New(e.server.URL, client.WithAPIKey(e.apiKey))
	proj, err := c.CreateProject(ctx, "drift")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    "drift",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 4000, Axes: 2},
		DSP: []core.DSPBlockSpec{
			{Name: "vib", Type: "spectral-analysis", Params: map[string]float64{"fft_length": 64, "num_peaks": 8}, Axes: []int{0}},
			{Name: "raw", Type: "raw", Axes: []int{1}},
		},
		Learn: []core.LearnBlockSpec{
			{Type: core.LearnClassification, Inputs: []string{"vib", "raw"}},
		},
		Classes: []string{"a", "b"},
	}
	// The reference bytes: what the core design types emit locally.
	imp, err := core.FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(imp.Config())
	if err != nil {
		t.Fatal(err)
	}

	// Typed client upload → server echo.
	if _, err := c.SetImpulse(ctx, proj.ID, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Impulse(ctx, proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got.Impulse), want) {
		t.Errorf("typed upload drifted:\nserver %s\nclient %s", got.Impulse, want)
	}
	if got.Version != core.ConfigVersion {
		t.Errorf("version %d", got.Version)
	}

	// Raw-bytes upload of the same design → identical echo.
	rawCfg, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetImpulse(ctx, proj.ID, json.RawMessage(rawCfg)); err != nil {
		t.Fatal(err)
	}
	got2, err := c.Impulse(ctx, proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got2.Impulse), want) {
		t.Errorf("raw upload drifted:\nserver %s\nclient %s", got2.Impulse, want)
	}

	// The offset table in both impulse responses matches the design.
	if len(got.Blocks) != 2 || got.Blocks[0].Offset != 0 || got.Blocks[1].Offset != got.Blocks[0].Size {
		t.Errorf("offset table: %+v", got.Blocks)
	}
}

// TestImpulseV1MigrationThroughAPI posts a legacy v1 design and checks
// the server stores and serves it as v2.
func TestImpulseV1MigrationThroughAPI(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "legacy"}, http.StatusCreated)
	id := int(created["id"].(float64))
	v1Body := []byte(`{
		"name": "kws",
		"input": {"kind": "time-series", "window_ms": 500, "frequency_hz": 8000, "axes": 1},
		"dsp_name": "mfe",
		"dsp_params": {"num_filters": 16, "fft_length": 128},
		"classes": ["noise", "yes"],
		"anomaly_clusters": 2
	}`)
	resp, _ := e.doRaw("POST", fmt.Sprintf("/api/projects/%d/impulse", id), e.apiKey, v1Body, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 design rejected: %d", resp.StatusCode)
	}
	got := e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/impulse", id), e.apiKey, nil, http.StatusOK)
	if got["version"] != float64(core.ConfigVersion) {
		t.Fatalf("served version: %v", got["version"])
	}
	var served core.Config
	blob, _ := json.Marshal(got["impulse"])
	if err := json.Unmarshal(blob, &served); err != nil {
		t.Fatal(err)
	}
	if served.Version != core.ConfigVersion || len(served.DSP) != 1 || served.DSP[0].Type != "mfe" {
		t.Fatalf("served design: %+v", served)
	}
	if len(served.Learn) != 2 || served.Learn[1].Params["clusters"] != 2 {
		t.Fatalf("served learn blocks: %+v", served.Learn)
	}
}

// TestBlocksCatalog checks the unauthenticated design catalog is
// complete, sorted and byte-deterministic.
func TestBlocksCatalog(t *testing.T) {
	e := newEnv(t)
	resp1, raw1 := e.doRaw("GET", "/api/v1/blocks", "", nil, "")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("blocks status %d", resp1.StatusCode)
	}
	_, raw2 := e.doRaw("GET", "/api/v1/blocks", "", nil, "")
	if !bytes.Equal(raw1, raw2) {
		t.Error("catalog response not deterministic")
	}
	var cat struct {
		DSP []struct {
			Type   string `json:"type"`
			Params []struct {
				Name string `json:"name"`
			} `json:"params"`
		} `json:"dsp"`
		Learn []struct {
			Type string `json:"type"`
		} `json:"learn"`
	}
	if err := json.Unmarshal(raw1, &cat); err != nil {
		t.Fatal(err)
	}
	var dspTypes []string
	for _, b := range cat.DSP {
		dspTypes = append(dspTypes, b.Type)
		var params []string
		for _, p := range b.Params {
			params = append(params, p.Name)
		}
		if !sort.StringsAreSorted(params) {
			t.Errorf("block %s params unsorted: %v", b.Type, params)
		}
	}
	want := dsp.Names()
	if len(dspTypes) != len(want) {
		t.Errorf("dsp catalog %v != registry %v", dspTypes, want)
	}
	if !sort.StringsAreSorted(dspTypes) {
		t.Errorf("dsp catalog unsorted: %v", dspTypes)
	}
	var learnTypes []string
	for _, b := range cat.Learn {
		learnTypes = append(learnTypes, b.Type)
	}
	if !sort.StringsAreSorted(learnTypes) || len(learnTypes) != len(core.LearnNames()) {
		t.Errorf("learn catalog %v != registry %v", learnTypes, core.LearnNames())
	}
}
