package api

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/jobs"
)

func TestCancelJobEndpoint(t *testing.T) {
	e := newEnv(t)
	started := make(chan struct{})
	job, err := e.sched.Submit("slow", func(ctx context.Context, j *jobs.Job) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	out := e.expectStatus("DELETE", "/api/v1/jobs/"+job.ID, e.apiKey, nil, http.StatusOK)
	if out["cancelled"] != true {
		t.Fatalf("cancel response: %v", out)
	}
	if _, err := e.sched.Wait(job.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// The job view now reports the cancelled terminal state, and a
	// second cancel is acknowledged as a no-op.
	view := e.expectStatus("GET", "/api/v1/jobs/"+job.ID, e.apiKey, nil, http.StatusOK)
	if view["status"] != "cancelled" {
		t.Fatalf("status after cancel: %v", view["status"])
	}
	out = e.expectStatus("DELETE", "/api/v1/jobs/"+job.ID, e.apiKey, nil, http.StatusOK)
	if out["cancelled"] != false {
		t.Fatalf("second cancel: %v", out)
	}
	e.expectStatus("DELETE", "/api/v1/jobs/job-999", e.apiKey, nil, http.StatusNotFound)
}

func TestCancelJobAccessControl(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/v1/projects", e.apiKey, map[string]any{"name": "p"}, http.StatusCreated)
	id := int(created["id"].(float64))
	release := make(chan struct{})
	defer close(release)
	job, err := e.sched.SubmitJob(jobs.SubmitOptions{Kind: "training", Tag: id, Priority: jobs.PriorityDefault},
		func(ctx context.Context, j *jobs.Job) error {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// A stranger cannot cancel (or even see) another project's job.
	other := e.do("POST", "/api/v1/users", "", map[string]any{"name": "snoop"})
	otherKey := other["api_key"].(string)
	e.expectStatus("DELETE", "/api/v1/jobs/"+job.ID, otherKey, nil, http.StatusNotFound)
	e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/events?mode=poll&timeout_ms=50", otherKey, nil, http.StatusNotFound)
	if job.Status() == jobs.Cancelled {
		t.Fatal("foreign cancel went through")
	}
}

func TestJobEventsLongPoll(t *testing.T) {
	e := newEnv(t)
	step := make(chan struct{})
	job, err := e.sched.Submit("train", func(ctx context.Context, j *jobs.Job) error {
		j.SetProgress("train", 25)
		j.Logf("epoch 1")
		<-step
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// First poll returns the early events without waiting.
	out := e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/events?mode=poll&timeout_ms=5000", e.apiKey, nil, http.StatusOK)
	events := out["events"].([]any)
	if len(events) < 3 { // queued, running, progress (log may race in)
		t.Fatalf("poll events: %v", events)
	}
	first := events[0].(map[string]any)
	if first["type"] != "state" || first["status"] != "queued" || first["seq"] != 1.0 {
		t.Fatalf("first event %v", first)
	}
	if out["done"] != false {
		t.Fatal("running job reported done")
	}
	next := int64(out["next_seq"].(float64))
	// Release mid-poll: the long poll unblocks on the next event
	// (terminal state) instead of waiting out the timeout.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(step)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		out = e.expectStatus("GET",
			fmt.Sprintf("/api/v1/jobs/%s/events?mode=poll&from=%d&timeout_ms=5000", job.ID, next),
			e.apiKey, nil, http.StatusOK)
		next = int64(out["next_seq"].(float64))
		if out["done"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poll never reached done")
		}
	}
	// Every event was delivered exactly once across polls: next_seq is
	// the terminal event's seq.
	all := e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/events?mode=poll", e.apiKey, nil, http.StatusOK)
	total := all["events"].([]any)
	lastEvent := total[len(total)-1].(map[string]any)
	if int64(lastEvent["seq"].(float64)) != next {
		t.Fatalf("next_seq %d, terminal seq %v", next, lastEvent["seq"])
	}
	if lastEvent["type"] != "state" || lastEvent["status"] != "finished" {
		t.Fatalf("terminal event %v", lastEvent)
	}
	// Bad cursors and timeouts are rejected.
	e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/events?mode=poll&from=x", e.apiKey, nil, http.StatusBadRequest)
	e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/events?mode=poll&timeout_ms=-1", e.apiKey, nil, http.StatusBadRequest)
}

// readEventStream consumes the NDJSON stream into decoded events. It
// returns errors rather than failing the test, so it is safe to call
// from helper goroutines.
func readEventStream(e *testEnv, path string, lastEventID string) ([]v1.JobEvent, error) {
	req, err := http.NewRequest("GET", e.server.URL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("x-api-key", e.apiKey)
	if lastEventID != "" {
		req.Header.Set("Last-Event-Id", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return nil, fmt.Errorf("stream content type %q", ct)
	}
	var events []v1.JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev v1.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

func TestJobEventsStreamAndResume(t *testing.T) {
	e := newEnv(t)
	step := make(chan struct{})
	job, err := e.sched.Submit("train", func(ctx context.Context, j *jobs.Job) error {
		j.SetProgress("train", 10)
		<-step
		j.SetProgress("train", 90)
		j.Logf("nearly there")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	type streamResult struct {
		events []v1.JobEvent
		err    error
	}
	done := make(chan streamResult, 1)
	go func() {
		evs, err := readEventStream(e, "/api/v1/jobs/"+job.ID+"/events", "")
		done <- streamResult{evs, err}
	}()
	close(step)
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	events := res.events
	// Ordered, contiguous, ending in the terminal event.
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d seq %d (events %v)", i, ev.Seq, events)
		}
	}
	lastEvent := events[len(events)-1]
	if !lastEvent.Terminal() || lastEvent.Status != v1.JobFinished {
		t.Fatalf("stream end: %+v", lastEvent)
	}
	// Resume via Last-Event-Id: only events after the cursor arrive,
	// and they are byte-identical to the tail of the full stream.
	mid := events[2].Seq
	resumed, err := readEventStream(e, "/api/v1/jobs/"+job.ID+"/events", fmt.Sprint(mid))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(events)-int(mid) {
		t.Fatalf("resume after %d delivered %d events, want %d", mid, len(resumed), len(events)-int(mid))
	}
	for i, ev := range resumed {
		if ev.Seq != mid+int64(i+1) || ev.Type != events[int(mid)+i].Type {
			t.Fatalf("resume mismatch at %d: %+v vs %+v", i, ev, events[int(mid)+i])
		}
	}
	// The query parameter works as an alternative cursor.
	viaQuery, err := readEventStream(e, fmt.Sprintf("/api/v1/jobs/%s/events?from=%d", job.ID, mid), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(viaQuery) != len(resumed) {
		t.Fatalf("from= delivered %d events, want %d", len(viaQuery), len(resumed))
	}
}

func TestMetricsIncludesOrchestration(t *testing.T) {
	e := newEnv(t)
	j, _ := e.sched.SubmitJob(jobs.SubmitOptions{Kind: "training", Priority: jobs.PriorityInteractive},
		func(ctx context.Context, j *jobs.Job) error { return nil })
	e.sched.Wait(j.ID, 2*time.Second)
	out := e.expectStatus("GET", "/api/v1/metrics", e.apiKey, nil, http.StatusOK)
	sched := out["scheduler"].(map[string]any)
	byPrio, ok := sched["queued_by_priority"].(map[string]any)
	if !ok {
		t.Fatalf("no queued_by_priority: %v", sched)
	}
	for _, class := range []string{"interactive", "default", "batch"} {
		if _, ok := byPrio[class]; !ok {
			t.Fatalf("missing class %s in %v", class, byPrio)
		}
	}
	kinds, ok := sched["kinds"].([]any)
	if !ok || len(kinds) == 0 {
		t.Fatalf("no per-kind metrics: %v", sched)
	}
	kind := kinds[0].(map[string]any)
	if kind["kind"] != "training" || kind["count"].(float64) != 1 {
		t.Fatalf("kind metrics %v", kind)
	}
	// Job views carry the scheduling fields.
	view := e.expectStatus("GET", "/api/v1/jobs/"+j.ID, e.apiKey, nil, http.StatusOK)
	if view["priority"] != "interactive" {
		t.Fatalf("job priority %v", view["priority"])
	}
}

func TestTunerJobThroughAPI(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/v1/projects", e.apiKey, map[string]any{"name": "kws"}, http.StatusCreated)
	id := int(created["id"].(float64))
	hmacKey := created["hmac_key"].(string)
	uploadKWSData(t, e, id, hmacKey, 4)
	impulse := map[string]any{
		"name":     "kws",
		"input":    map[string]any{"kind": "time-series", "window_ms": 500, "frequency_hz": 8000, "axes": 1},
		"dsp_name": "mfe",
	}
	e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/impulse", id), e.apiKey, impulse, http.StatusOK)

	accepted := e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/tuner", id), e.apiKey,
		map[string]any{"max_trials": 2, "epochs": 1, "seed": 7, "target": "nano-33-ble-sense"}, http.StatusAccepted)
	jobID := accepted["job_id"].(string)
	if _, err := e.sched.Wait(jobID, 120*time.Second); err != nil {
		t.Fatal(err)
	}
	view := e.expectStatus("GET", "/api/v1/jobs/"+jobID, e.apiKey, nil, http.StatusOK)
	if view["status"] != "finished" {
		t.Fatalf("tuner job: %v", view)
	}
	// Tuner runs in the batch class and reports real trial progress.
	if view["priority"] != "batch" {
		t.Fatalf("tuner priority %v", view["priority"])
	}
	events := e.expectStatus("GET", "/api/v1/jobs/"+jobID+"/events?mode=poll", e.apiKey, nil, http.StatusOK)
	sawTrials := false
	for _, raw := range events["events"].([]any) {
		ev := raw.(map[string]any)
		if ev["type"] == "progress" && ev["stage"] == "trials" {
			sawTrials = true
			if pct := ev["progress"].(float64); pct <= 0 || pct > 100 {
				t.Fatalf("trial progress %v", pct)
			}
		}
	}
	if !sawTrials {
		t.Fatal("no trial progress events")
	}
	result := e.expectStatus("GET", "/api/v1/jobs/"+jobID+"/result", e.apiKey, nil, http.StatusOK)
	trials := result["result"].([]any)
	if len(trials) != 2 {
		t.Fatalf("tuner trials: %d", len(trials))
	}
	row := trials[0].(map[string]any)
	if row["dsp"] == "" || row["model"] == "" {
		t.Fatalf("trial row: %v", row)
	}
	// Bad tuner target is rejected up front.
	e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/tuner", id), e.apiKey,
		map[string]any{"max_trials": 1, "target": "quantum-chip"}, http.StatusBadRequest)
}

func TestTrainQuotaMapsTo429(t *testing.T) {
	// A scheduler with a tiny per-project quota: the second training
	// submission while the first is still queued trips the quota and
	// surfaces as 429 rate_limited (not 503).
	e := newEnvWith(t, jobs.Config{MinWorkers: 1, MaxWorkers: 1, QueueSize: 8, MaxQueuedPerTag: 1, ScaleInterval: time.Hour})
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	if _, err := e.sched.Submit("blocker", func(ctx context.Context, j *jobs.Job) error {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	created := e.expectStatus("POST", "/api/v1/projects", e.apiKey, map[string]any{"name": "kws"}, http.StatusCreated)
	id := int(created["id"].(float64))
	impulse := map[string]any{
		"name":     "p",
		"input":    map[string]any{"kind": "time-series", "window_ms": 100, "frequency_hz": 100, "axes": 1},
		"dsp_name": "raw",
	}
	e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/impulse", id), e.apiKey, impulse, http.StatusOK)
	csv := "timestamp,ax\n0,1.0\n10,2.0\n"
	resp, _ := e.doRaw("POST", fmt.Sprintf("/api/v1/projects/%d/data?label=l&format=csv", id), e.apiKey, []byte(csv), "text/csv")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}
	body := map[string]any{"epochs": 1, "model": map[string]any{"type": "mlp"}}
	e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/train", id), e.apiKey, body, http.StatusAccepted)
	out := e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/train", id), e.apiKey, body, http.StatusTooManyRequests)
	errObj := out["error"].(map[string]any)
	if errObj["code"] != v1.CodeRateLimited {
		t.Fatalf("quota error code %v", errObj["code"])
	}
}
