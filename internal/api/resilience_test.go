package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/resilience"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp
}

func TestHealthzAlwaysOK(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	srv := httptest.NewServer(NewServer(reg, sched).Handler())
	t.Cleanup(srv.Close)

	for _, path := range []string{"/api/v1/healthz", "/api/healthz"} {
		var out v1.HealthResponse
		resp := getJSON(t, srv.URL+path, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !out.Success || out.Status != "ok" || out.UptimeSeconds < 0 {
			t.Fatalf("%s: %+v", path, out)
		}
	}
}

func TestReadyzDegradesAndRecovers(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	probeErr := error(nil)
	s := NewServer(reg, sched,
		WithReadinessProbe("store", func() error { return probeErr }))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	var out v1.ReadyResponse
	resp := getJSON(t, srv.URL+"/api/v1/readyz", &out)
	if resp.StatusCode != http.StatusOK || !out.Ready {
		t.Fatalf("healthy readyz: %d %+v", resp.StatusCode, out)
	}
	if out.Probes["scheduler"] != "ok" || out.Probes["overload"] != "ok" || out.Probes["store"] != "ok" {
		t.Fatalf("probes: %+v", out.Probes)
	}

	// A failing dependency probe flips readiness to 503 with the probe
	// named in the body.
	probeErr = errOut("volume unmounted")
	out = v1.ReadyResponse{}
	resp = getJSON(t, srv.URL+"/api/v1/readyz", &out)
	if resp.StatusCode != http.StatusServiceUnavailable || out.Ready {
		t.Fatalf("degraded readyz: %d %+v", resp.StatusCode, out)
	}
	if out.Probes["store"] != "volume unmounted" {
		t.Fatalf("probes: %+v", out.Probes)
	}

	// Healing the dependency restores 200 without a restart.
	probeErr = nil
	resp = getJSON(t, srv.URL+"/api/v1/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered readyz: %d", resp.StatusCode)
	}

	// Draining flips readiness regardless of probe health.
	s.health.SetDraining(true)
	out = v1.ReadyResponse{}
	resp = getJSON(t, srv.URL+"/api/v1/readyz", &out)
	if resp.StatusCode != http.StatusServiceUnavailable || !out.Draining {
		t.Fatalf("draining readyz: %d %+v", resp.StatusCode, out)
	}
}

type errOut string

func (e errOut) Error() string { return string(e) }

func TestHealthPathsBypassRateLimit(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	// One request per second with burst 1: any second request would be
	// throttled if probes shared the limiter.
	srv := httptest.NewServer(NewServer(reg, sched, WithRateLimit(1, 1)).Handler())
	t.Cleanup(srv.Close)

	for i := 0; i < 10; i++ {
		resp := getJSON(t, srv.URL+"/api/v1/healthz", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz request %d throttled: %d", i, resp.StatusCode)
		}
		resp = getJSON(t, srv.URL+"/api/v1/readyz", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz request %d throttled: %d", i, resp.StatusCode)
		}
	}
}

func TestDeadlineBudgetMapsTo504(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	s := NewServer(reg, sched)
	s.mux.Handle("GET /api/v1/slow", s.instrument("GET /api/v1/slow",
		routeOpts{budget: 20 * time.Millisecond}, http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				// Overrun the budget without ever writing: the middleware
				// owns the response.
				<-r.Context().Done()
			})))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	var env v1.ErrorResponse
	resp := getJSON(t, srv.URL+"/api/v1/slow", &env)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if env.Success || env.Error.Code != v1.CodeDeadline {
		t.Fatalf("envelope: %+v", env)
	}

	// The timeout shows up in the metrics DTO and per-route counters.
	snap := s.metrics.snapshot()
	if snap.Resilience == nil || snap.Resilience.DeadlineTimeouts != 1 {
		t.Fatalf("resilience metrics: %+v", snap.Resilience)
	}
}

func TestDeadlineDoesNotClobberStartedResponse(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	s := NewServer(reg, sched)
	s.mux.Handle("GET /api/v1/latewrite", s.instrument("GET /api/v1/latewrite",
		routeOpts{budget: 20 * time.Millisecond}, http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				// The handler blows its budget but still writes its own
				// response; the middleware must not append a 504 envelope.
				<-r.Context().Done()
				w.WriteHeader(http.StatusAccepted)
				w.Write([]byte(`{"late":true}`))
			})))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	resp := getJSON(t, srv.URL+"/api/v1/latewrite", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want handler's own 202", resp.StatusCode)
	}
	snap := s.metrics.snapshot()
	if snap.Resilience.DeadlineTimeouts != 0 {
		t.Fatalf("counted a deadline timeout for a handler that responded: %+v", snap.Resilience)
	}
}

func TestGateShedsWithRetryAfterAndAccounting(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	s := NewServer(reg, sched, WithGate(resilience.GateConfig{
		MaxInflight: 1, SamplePeriod: time.Nanosecond,
	}))
	ok := func(w http.ResponseWriter, r *http.Request) { w.Write([]byte(`{}`)) }
	s.mux.Handle("GET /api/v1/work", s.instrument("GET /api/v1/work", defaultOpts, http.HandlerFunc(ok)))
	s.mux.Handle("GET /api/v1/hot", s.instrument("GET /api/v1/hot", interactive, http.HandlerFunc(ok)))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	// Hold the only slot so the next default-class request hard-sheds.
	release, err := s.gate.Acquire(resilience.ClassDefault)
	if err != nil {
		t.Fatal(err)
	}
	var env v1.ErrorResponse
	resp := getJSON(t, srv.URL+"/api/v1/work", &env)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if env.Error.Code != v1.CodeOverloaded {
		t.Fatalf("code %q, want %q", env.Error.Code, v1.CodeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// Interactive traffic still flows at the hard concurrency bound.
	resp = getJSON(t, srv.URL+"/api/v1/hot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive under hard bound: %d", resp.StatusCode)
	}
	release()

	// Shed accounting reaches the metrics DTO: middleware total plus the
	// gate's per-class breakdown (merged in by handleMetrics).
	snap := s.metrics.snapshot()
	if snap.Resilience.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", snap.Resilience.Shed)
	}
	gm := s.gate.Metrics()
	if gm.Shed["default"] != 1 {
		t.Fatalf("gate shed by class: %+v", gm.Shed)
	}
	// The 429 is also attributed to its route.
	found := false
	for _, rt := range snap.Routes {
		if rt.Route == "GET /api/v1/work" && rt.Err4xx == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("shed 429 not recorded on its route: %+v", snap.Routes)
	}
}

func TestStatusWriterWriteAfterCancel(t *testing.T) {
	// A handler whose client vanished mid-response: writes fail at the
	// transport, but the statusWriter must keep its recorded status and
	// not panic, so metrics still classify the request.
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	sw.WriteHeader(statusClientClosedRequest)
	if _, err := sw.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if sw.status != statusClientClosedRequest {
		t.Fatalf("status %d", sw.status)
	}
	// Late WriteHeader calls don't overwrite the first status.
	sw.WriteHeader(http.StatusOK)
	if sw.status != statusClientClosedRequest {
		t.Fatalf("status clobbered: %d", sw.status)
	}
}
