package api

import (
	"testing"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/tensor"
)

func TestBuildModelZoo(t *testing.T) {
	spectro := tensor.Shape{49, 16}
	image := tensor.Shape{32, 32, 3}
	cases := []struct {
		name  string
		spec  v1.ModelSpec
		shape tensor.Shape
		ok    bool
	}{
		{"conv1d defaults", v1.ModelSpec{}, spectro, true},
		{"conv1d sized", v1.ModelSpec{Type: "conv1d", Depth: 3, StartFilters: 8, EndFilters: 32}, spectro, true},
		{"conv1d bad shape", v1.ModelSpec{Type: "conv1d"}, tensor.Shape{10}, false},
		{"dscnn", v1.ModelSpec{Type: "dscnn"}, spectro, true},
		{"dscnn bad shape", v1.ModelSpec{Type: "dscnn"}, image, false},
		{"mlp", v1.ModelSpec{Type: "mlp", Hidden: 12}, spectro, true},
		{"cnn2d", v1.ModelSpec{Type: "cnn2d"}, image, true},
		{"cnn2d non-square", v1.ModelSpec{Type: "cnn2d"}, tensor.Shape{32, 16, 3}, false},
		{"mobilenetv1", v1.ModelSpec{Type: "mobilenetv1", AlphaPercent: 25}, image, true},
		{"mobilenetv1 bad shape", v1.ModelSpec{Type: "mobilenetv1"}, spectro, false},
		{"unknown", v1.ModelSpec{Type: "transformer"}, spectro, false},
	}
	for _, tc := range cases {
		m, err := buildModel(tc.spec, tc.shape, 2)
		if tc.ok && (err != nil || m == nil) {
			t.Errorf("%s: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted invalid spec", tc.name)
		}
	}
}
