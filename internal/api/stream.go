package api

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/project"
	"edgepulse/internal/stream"
)

// Streaming inference endpoints. A session is opened against a trained
// impulse, frames are appended either via discrete POSTs or over a
// single chunked-NDJSON duplex connection, and rolling classification
// results plus debounced detections come back on a resumable event feed
// with the same Seq/Last-Event-Id contract as job events.

// maxStreamLine bounds one NDJSON line on the duplex feed. A line holds
// one frame batch; at ~12 bytes per JSON float this admits batches of
// several hundred thousand samples, far beyond a sensible push size.
const maxStreamLine = 8 << 20

// streamEventView renders a session event as its wire DTO. classes maps
// the class index to its label; the full score vector (detections only)
// becomes a label-keyed map.
func streamEventView(e stream.Event, classes []string) v1.StreamEvent {
	out := v1.StreamEvent{
		Seq:         e.Seq,
		Type:        string(e.Type),
		TimestampMS: e.Time.UnixMilli(),
		Status:      e.Status,
		Reason:      e.Reason,
		WindowStart: e.WindowStart,
		Dropped:     e.Dropped,
	}
	if e.Type == stream.EventResult || e.Type == stream.EventDetection {
		out.Label = classes[e.Class]
		out.Score = e.Score
	}
	if e.Scores != nil {
		out.Scores = make(map[string]float32, len(classes))
		for i, c := range classes {
			out.Scores[c] = e.Scores[i]
		}
	}
	return out
}

// streamConfig translates the open request into a session config against
// the project's trained impulse geometry.
func (s *Server) streamConfig(p *project.Project, req v1.StreamOpenRequest) (stream.Config, error) {
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		return stream.Config{}, errors.New("impulse is not trained")
	}
	in := imp.Input
	cfg := stream.Config{
		WindowFrames: in.WindowSamples(),
		StrideFrames: in.StrideSamples(),
		Axes:         in.Axes,
		Rate:         in.FrequencyHz,
		Debounce: stream.DebounceConfig{
			Threshold: req.Threshold,
			Release:   req.Release,
			Smooth:    req.Smooth,
			Suppress:  req.Suppress,
			Ignore:    req.IgnoreLabels,
		},
		Tag: strconv.Itoa(p.ID),
	}
	if req.StrideMS < 0 {
		return stream.Config{}, errors.New("stride_ms must be non-negative")
	}
	if req.StrideMS > 0 {
		cfg.StrideFrames = req.StrideMS * in.FrequencyHz / 1000
		if cfg.StrideFrames <= 0 {
			return stream.Config{}, errors.New("stride_ms is shorter than one sample")
		}
	}
	if req.IdleTimeoutMS < 0 {
		return stream.Config{}, errors.New("idle_timeout_ms must be non-negative")
	}
	if req.IdleTimeoutMS > 0 {
		cfg.IdleTimeout = time.Duration(req.IdleTimeoutMS) * time.Millisecond
	}
	return cfg, nil
}

// openSession validates the request and admits a session, mapping
// admission failures onto the error envelope. Returns nil after writing
// the error response.
func (s *Server) openSession(w http.ResponseWriter, r *http.Request, p *project.Project, req v1.StreamOpenRequest) *stream.Session {
	cfg, err := s.streamConfig(p, req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return nil
	}
	cls, err := stream.NewImpulseClassifier(p.Impulse(), req.Quantized)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return nil
	}
	sess, err := s.streams.Open(cfg, cls)
	switch {
	case errors.Is(err, stream.ErrDraining):
		s.writeError(w, r, http.StatusServiceUnavailable, v1.CodeUnavailable, "server is draining, not admitting new streams")
		return nil
	case errors.Is(err, stream.ErrCapacity):
		w.Header().Set("Retry-After", "2")
		s.writeError(w, r, http.StatusTooManyRequests, v1.CodeRateLimited, "stream session capacity reached, retry later")
		return nil
	case err != nil:
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return nil
	}
	return sess
}

func openResponse(sess *stream.Session) v1.StreamOpenResponse {
	cfg := sess.Config()
	return v1.StreamOpenResponse{
		Success:       true,
		SessionID:     sess.ID,
		WindowSamples: cfg.WindowFrames,
		StrideSamples: cfg.StrideFrames,
		Rate:          cfg.Rate,
		Axes:          cfg.Axes,
		Classes:       sess.Classes(),
	}
}

// handleStreamOpen implements POST /api/v1/projects/{id}/stream.
func (s *Server) handleStreamOpen(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.StreamOpenRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	sess := s.openSession(w, r, p, req)
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK, openResponse(sess))
}

// sessionFor resolves {sid} within the authorized project. Sessions are
// scoped by project tag; a foreign session ID reads as not found rather
// than forbidden, so IDs don't leak across projects.
func (s *Server) sessionFor(w http.ResponseWriter, r *http.Request, p *project.Project) (*stream.Session, bool) {
	sess, ok := s.streams.Get(r.PathValue("sid"))
	if !ok || sess.Config().Tag != strconv.Itoa(p.ID) {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "no such stream session")
		return nil, false
	}
	return sess, true
}

// handleStreamPush implements POST .../stream/{sid}/frames: append one
// batch of samples. A full session queue sheds the batch with 429 +
// backpressure so the client slows down and retries.
func (s *Server) handleStreamPush(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	sess, ok := s.sessionFor(w, r, p)
	if !ok {
		return
	}
	var req v1.StreamPushRequest
	if err := decodeBodyLimit(w, r, &req, maxDataBody); err != nil {
		s.badRequest(w, r, err)
		return
	}
	switch err := sess.Push(req.Samples); {
	case errors.Is(err, stream.ErrBackpressure):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, r, http.StatusTooManyRequests, v1.CodeBackpressure, "session queue is full, slow down and retry")
		return
	case errors.Is(err, stream.ErrClosed):
		s.writeError(w, r, http.StatusConflict, v1.CodeConflict, "stream session is closed")
		return
	case err != nil:
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.StreamPushResponse{Success: true, FramesIn: sess.Stats().FramesIn})
}

// handleStreamEvents implements GET .../stream/{sid}/events: the NDJSON
// feed of results and detections, resumable via from / Last-Event-Id.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	sess, ok := s.sessionFor(w, r, p)
	if !ok {
		return
	}
	after, ok := eventsAfter(r)
	if !ok {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest,
			"from / Last-Event-Id must be a non-negative integer")
		return
	}
	setStreamingHeaders(w)
	w.WriteHeader(http.StatusOK)
	s.streamSessionEvents(w, r, sess, after)
}

// streamSessionEvents tails a session's event log onto w as NDJSON until
// the terminal event, the client disconnecting, or a write failing.
// Dropped-subscriber gaps are healed by re-subscribing from the last
// delivered seq, mirroring the job event feed.
func (s *Server) streamSessionEvents(w http.ResponseWriter, r *http.Request, sess *stream.Session, after int64) {
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	classes := sess.Classes()
	emit := func(e stream.Event) bool {
		after = e.Seq
		if enc.Encode(streamEventView(e, classes)) != nil {
			return true
		}
		rc.Flush()
		return e.Terminal()
	}
	for {
		replay, ch, cancel := sess.Subscribe(after)
		for _, e := range replay {
			if emit(e) {
				cancel()
				return
			}
		}
		for {
			select {
			case e, open := <-ch:
				if !open {
					// Fell behind and was dropped, or the session went
					// terminal before we subscribed. Re-subscribe; the
					// replay fills any gap.
					cancel()
					goto resubscribe
				}
				if emit(e) {
					cancel()
					return
				}
			case <-r.Context().Done():
				cancel()
				return
			}
		}
	resubscribe:
		if events, done := sess.Events(after); done && len(events) == 0 {
			return
		}
	}
}

// handleStreamClose implements DELETE .../stream/{sid}: close the
// session, wait for queued frames to flush, and report final stats.
func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	sess, ok := s.sessionFor(w, r, p)
	if !ok {
		return
	}
	sess.Close("client request")
	select {
	case <-sess.Done():
	case <-r.Context().Done():
		w.WriteHeader(statusClientClosedRequest)
		return
	}
	st := sess.Stats()
	writeJSON(w, http.StatusOK, v1.StreamCloseResponse{
		Success: true,
		Stats: v1.StreamSessionStats{
			FramesIn: st.FramesIn, Windows: st.Windows,
			Detections: st.Detections, Dropped: st.DroppedFrames,
		},
	})
}

// handleStreamDuplex implements POST .../stream/duplex: one chunked
// HTTP connection carrying NDJSON both ways. The first request line is a
// StreamOpenRequest; every following line is a StreamPushRequest. The
// response opens with a StreamOpenResponse line, then streams events
// until the client closes its end (EOF ends the session after queued
// frames flush) or the session terminates.
//
// Inbound frames use PushWait: when the session queue is full the reader
// simply stops consuming the request body, so backpressure propagates to
// the client through TCP flow control instead of shedding batches.
func (s *Server) handleStreamDuplex(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	rc := http.NewResponseController(w)
	// On HTTP/1.x the server normally drains the request body before the
	// response; full duplex lets us interleave reads with event writes.
	// Errors mean the transport is already duplex (or a test recorder).
	rc.EnableFullDuplex()

	scan := bufio.NewScanner(r.Body)
	scan.Buffer(make([]byte, 64<<10), maxStreamLine)
	if !scan.Scan() {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "missing open request line")
		return
	}
	var req v1.StreamOpenRequest
	if err := json.Unmarshal(scan.Bytes(), &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "bad open request line: "+err.Error())
		return
	}
	sess := s.openSession(w, r, p, req)
	if sess == nil {
		return
	}

	setStreamingHeaders(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if enc.Encode(openResponse(sess)) != nil {
		sess.Close("client disconnected")
		return
	}
	rc.Flush()

	// Reader: request body lines -> session queue. Owns the inbound half;
	// the handler goroutine streams events until the terminal line.
	go func() {
		defer sess.Close("client closed stream")
		for scan.Scan() {
			line := scan.Bytes()
			if len(line) == 0 {
				continue
			}
			var push v1.StreamPushRequest
			if err := json.Unmarshal(line, &push); err != nil {
				sess.Close("bad frame line: " + err.Error())
				return
			}
			if err := sess.PushWait(r.Context(), push.Samples); err != nil {
				if !errors.Is(err, stream.ErrClosed) && r.Context().Err() == nil {
					sess.Close("bad frame batch: " + err.Error())
				}
				return
			}
		}
	}()

	s.streamSessionEvents(w, r, sess, 0)
	// The feed ended: either the session is terminal (reader saw EOF or
	// the session closed itself) or the client vanished mid-stream.
	sess.Close("client disconnected")
}
