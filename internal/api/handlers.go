package api

import (
	"bytes"
	"context"
	"encoding/base64"
	"io"
	"net/http"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/deploy"
	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/profiler"
	"edgepulse/internal/project"
	"edgepulse/internal/renode"
	"edgepulse/internal/tuner"
)

func (s *Server) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	u, err := s.registry.CreateUser(req.Name)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"success": true, "id": u.ID, "name": u.Name, "api_key": u.APIKey,
	})
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	type dev struct {
		ID      string `json:"id"`
		Name    string `json:"name"`
		CPU     string `json:"cpu"`
		ClockHz int64  `json:"clock_hz"`
		FlashKB int64  `json:"flash_kb"`
		RAMKB   int64  `json:"ram_kb"`
	}
	var out []dev
	for _, t := range device.All() {
		out = append(out, dev{
			ID: t.ID, Name: t.Name, CPU: t.CPU, ClockHz: t.ClockHz,
			FlashKB: t.FlashBytes >> 10, RAMKB: t.RAMBytes >> 10,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "devices": out})
}

func projectSummary(p *project.Project) map[string]any {
	return map[string]any{
		"id": p.ID, "name": p.Name, "owner": p.OwnerID,
		"public": p.Public(), "samples": p.Dataset().Len(),
		"collaborators": p.Collaborators(),
	}
}

func (s *Server) handlePublicProjects(w http.ResponseWriter, r *http.Request) {
	var out []map[string]any
	for _, p := range s.registry.ListPublic() {
		out = append(out, projectSummary(p))
	}
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "projects": out})
}

func (s *Server) handleCreateProject(w http.ResponseWriter, r *http.Request, u *project.User) {
	var req struct {
		Name string `json:"name"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := s.registry.CreateProject(req.Name, u.ID)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"success": true, "id": p.ID, "name": p.Name, "hmac_key": p.HMACKey,
	})
}

func (s *Server) handleListProjects(w http.ResponseWriter, r *http.Request, u *project.User) {
	var out []map[string]any
	for _, p := range s.registry.ListAccessible(u.ID) {
		out = append(out, projectSummary(p))
	}
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "projects": out})
}

func (s *Server) handleGetProject(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "project": projectSummary(p)})
}

func (s *Server) handleSetPublic(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req struct {
		Public bool `json:"public"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	p.SetPublic(req.Public)
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "public": p.Public()})
}

func (s *Server) handleAddCollaborator(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req struct {
		UserID string `json:"user_id"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := s.registry.GetUser(req.UserID); err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	p.AddCollaborator(req.UserID)
	writeJSON(w, http.StatusOK, map[string]any{"success": true})
}

// handleUploadData ingests one sample. Query params: label (required),
// name, format ∈ {wav, csv, acquisition, image}. The acquisition format
// verifies the project's HMAC key (paper Sec. 4.1 ingestion service).
func (s *Server) handleUploadData(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	label := r.URL.Query().Get("label")
	if label == "" {
		writeErr(w, http.StatusBadRequest, "label query parameter required")
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	format := r.URL.Query().Get("format")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "cannot read body")
		return
	}
	ds := p.Dataset()
	var id string
	switch format {
	case "wav":
		id, err = ds.ImportWAV(name, label, bytes.NewReader(body))
	case "csv":
		id, err = ds.ImportCSV(name, label, bytes.NewReader(body))
	case "image":
		id, err = ds.ImportImage(name, label, bytes.NewReader(body))
	case "acquisition", "":
		id, err = ds.ImportAcquisition(name, label, body, p.HMACKey)
	default:
		writeErr(w, http.StatusBadRequest, "unknown format "+format)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"success": true, "sample_id": id})
}

func (s *Server) handleListData(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	ds := p.Dataset()
	type sample struct {
		ID       string `json:"id"`
		Name     string `json:"name"`
		Label    string `json:"label"`
		Category string `json:"category"`
		Frames   int    `json:"frames"`
	}
	var samples []sample
	for _, sm := range ds.List(data.Category(r.URL.Query().Get("category"))) {
		samples = append(samples, sample{
			ID: sm.ID, Name: sm.Name, Label: sm.Label,
			Category: string(sm.Category), Frames: sm.Signal.Frames(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"success": true,
		"samples": samples,
		"stats":   ds.Stats(),
		"version": ds.Version(),
	})
}

func (s *Server) handleDeleteSample(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	if err := p.Dataset().Remove(r.PathValue("sample")); err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"success": true})
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req struct {
		TestFraction float64 `json:"test_fraction"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.TestFraction <= 0 || req.TestFraction >= 1 {
		writeErr(w, http.StatusBadRequest, "test_fraction must be in (0,1)")
		return
	}
	p.Dataset().Rebalance(req.TestFraction)
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "stats": p.Dataset().Stats()})
}

func (s *Server) handleSetImpulse(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "cannot read body")
		return
	}
	cfg, err := core.ParseConfig(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	imp, err := core.FromConfig(cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	p.SetImpulse(imp)
	shape, _ := imp.FeatureShape()
	writeJSON(w, http.StatusOK, map[string]any{
		"success": true, "feature_shape": shape, "dataflow": imp.Describe(),
	})
}

func (s *Server) handleGetImpulse(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	imp := p.Impulse()
	if imp == nil {
		writeErr(w, http.StatusNotFound, "no impulse configured")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"success": true, "impulse": imp.Config(),
		"trained": imp.Model != nil, "quantized": imp.QModel != nil,
		"dataflow": imp.Describe(),
	})
}

// TrainRequest configures a training job.
type TrainRequest struct {
	Model        ModelSpec `json:"model"`
	Epochs       int       `json:"epochs"`
	LearningRate float64   `json:"learning_rate"`
	Quantize     bool      `json:"quantize"`
	Seed         int64     `json:"seed"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req TrainRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	base := p.Impulse()
	if base == nil {
		writeErr(w, http.StatusBadRequest, "configure an impulse first")
		return
	}
	if p.Dataset().Len() == 0 {
		writeErr(w, http.StatusBadRequest, "project has no data")
		return
	}
	idReady := make(chan string, 1)
	job, err := s.sched.Submit("training", func(ctx context.Context, logf func(string, ...any)) error {
		// Train on a fresh impulse so a failed job never corrupts the
		// project's current model.
		imp, err := core.FromConfig(base.Config())
		if err != nil {
			return err
		}
		imp.Classes = p.Dataset().Labels()
		res, err := trainImpulse(imp, p.Dataset(), req, logf)
		if err != nil {
			return err
		}
		p.SetImpulse(imp)
		s.results.Store(<-idReady, res)
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	idReady <- job.ID
	writeJSON(w, http.StatusAccepted, map[string]any{"success": true, "job_id": job.ID})
}

func (s *Server) handleTuner(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req struct {
		MaxTrials int    `json:"max_trials"`
		Epochs    int    `json:"epochs"`
		Target    string `json:"target"`
		Strategy  string `json:"strategy"`
		Seed      int64  `json:"seed"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	base := p.Impulse()
	if base == nil {
		writeErr(w, http.StatusBadRequest, "configure an impulse first")
		return
	}
	tgt := device.Target{}
	if req.Target != "" {
		var err error
		tgt, err = device.Get(req.Target)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	input := base.Input
	idReady := make(chan string, 1)
	job, err := s.sched.Submit("tuner", func(ctx context.Context, logf func(string, ...any)) error {
		trials, err := tuner.Run(p.Dataset(), tuner.Config{
			Input:       input,
			Constraints: tuner.Constraints{Target: tgt},
			MaxTrials:   req.MaxTrials,
			Epochs:      req.Epochs,
			Strategy:    req.Strategy,
			Seed:        req.Seed,
		})
		if err != nil {
			return err
		}
		logf("tuner finished with %d trials", len(trials))
		s.results.Store(<-idReady, trials)
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	idReady <- job.ID
	writeJSON(w, http.StatusAccepted, map[string]any{"success": true, "job_id": job.ID})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req struct {
		Features  []float32 `json:"features"`
		Quantized bool      `json:"quantized"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		writeErr(w, http.StatusBadRequest, "impulse is not trained")
		return
	}
	canonical := imp.CanonicalSignal()
	sig := dsp.Signal{
		Data: req.Features, Rate: canonical.Rate, Axes: canonical.Axes,
		Width: canonical.Width, Height: canonical.Height,
	}
	var res core.ClassResult
	var err error
	if req.Quantized {
		res, err = imp.ClassifyQuantized(sig)
	} else {
		res, err = imp.Classify(sig)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"success": true, "label": res.Label,
		"classification": res.Scores, "anomaly": res.AnomalyScore,
	})
}

func (s *Server) handleDeployment(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		writeErr(w, http.StatusBadRequest, "impulse is not trained")
		return
	}
	quantized := r.URL.Query().Get("quantized") == "true"
	kind := r.URL.Query().Get("type")
	switch kind {
	case "eim":
		blob, err := deploy.BuildEIM(imp)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", "attachment; filename=model.eim")
		w.WriteHeader(http.StatusOK)
		w.Write(blob)
	case "cpp", "arduino", "wasm", "":
		var art deploy.Artifact
		var err error
		switch kind {
		case "arduino":
			art, err = deploy.ArduinoLibrary(imp, quantized)
		case "wasm":
			art, err = deploy.WASM(imp, quantized)
		default:
			art, err = deploy.CPPLibrary(imp, quantized)
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		files := map[string]string{}
		for name, content := range art.Files {
			files[name] = base64.StdEncoding.EncodeToString(content)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"success": true, "kind": art.Kind, "files": files,
		})
	default:
		writeErr(w, http.StatusBadRequest, "unknown deployment type "+kind)
	}
}

// handleProfile returns latency and memory estimates for a target —
// the "profiling without the GUI" feature of the Python SDK (Sec. 4.9).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		writeErr(w, http.StatusBadRequest, "impulse is not trained")
		return
	}
	targetID := r.URL.Query().Get("target")
	if targetID == "" {
		targetID = "nano-33-ble-sense"
	}
	tgt, err := device.Get(targetID)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	specs, err := imp.Model.Spec()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	est := renode.EstimateFloat(tgt, imp.DSPCost(), specs, renode.TFLM)
	mem, err := profiler.EstimateFloat(imp.Model, renode.TFLM)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := map[string]any{
		"success": true, "target": tgt.ID,
		"float32": map[string]any{
			"dsp_ms": est.DSPMillis, "inference_ms": est.InferenceMillis,
			"total_ms": est.TotalMillis,
			"ram_kb":   float64(mem.RAMBytes) / 1024, "flash_kb": float64(mem.FlashBytes) / 1024,
			"fits": profiler.Fits(mem, imp.DSPRAM(), tgt),
		},
	}
	if imp.QModel != nil {
		qEst := renode.EstimateInt8(tgt, imp.DSPCost(), imp.QModel, renode.EON)
		qMem := profiler.EstimateInt8(imp.QModel, renode.EON)
		out["int8"] = map[string]any{
			"dsp_ms": qEst.DSPMillis, "inference_ms": qEst.InferenceMillis,
			"total_ms": qEst.TotalMillis,
			"ram_kb":   float64(qMem.RAMBytes) / 1024, "flash_kb": float64(qMem.FlashBytes) / 1024,
			"fits": profiler.Fits(qMem, imp.DSPRAM(), tgt),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req struct {
		Note string `json:"note"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	v := p.Snapshot(req.Note)
	writeJSON(w, http.StatusCreated, map[string]any{"success": true, "version": v})
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "versions": p.Versions()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request, u *project.User) {
	j, err := s.sched.Get(r.PathValue("job"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"success": true, "id": j.ID, "kind": j.Kind,
		"status": j.Status(), "error": j.Err(), "logs": j.Logs(),
	})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, u *project.User) {
	id := r.PathValue("job")
	if _, err := s.sched.Get(id); err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	res, ok := s.results.Load(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no result for job "+id+" (still running?)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"success": true, "result": res})
}
