package api

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/deploy"
	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/jobs"
	"edgepulse/internal/profiler"
	"edgepulse/internal/project"
	"edgepulse/internal/renode"
	"edgepulse/internal/tuner"
)

// Default and maximum page sizes for list endpoints.
const (
	defaultPageSize = 100
	maxPageSize     = 1000
)

func (s *Server) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	var req v1.CreateUserRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	u, err := s.registry.CreateUser(req.Name)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, v1.CreateUserResponse{
		Success: true, ID: u.ID, Name: u.Name, APIKey: u.APIKey,
	})
}

// handleBlocks serves the impulse design catalog: every registered DSP
// and learn block type with its parameter schema, sorted so the
// response bytes are deterministic across processes.
func (s *Server) handleBlocks(w http.ResponseWriter, r *http.Request) {
	out := v1.BlocksResponse{Success: true}
	for _, name := range dsp.Names() {
		defaults, err := dsp.Defaults(name)
		if err != nil {
			continue // a block type whose zero config is invalid has no static schema
		}
		out.DSP = append(out.DSP, v1.BlockInfo{Type: name, Params: blockParams(defaults)})
	}
	for _, t := range core.LearnTypes() {
		out.Learn = append(out.Learn, v1.BlockInfo{
			Type: t.Type, Description: t.Description,
			Trainable: t.Trainable, Params: blockParams(t.Defaults),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// blockParams renders a default-parameter map as a sorted schema list.
func blockParams(defaults map[string]float64) []v1.BlockParam {
	keys := make([]string, 0, len(defaults))
	for k := range defaults {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]v1.BlockParam, 0, len(keys))
	for _, k := range keys {
		out = append(out, v1.BlockParam{Name: k, Default: defaults[k]})
	}
	return out
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var out []v1.Device
	for _, t := range device.All() {
		out = append(out, v1.Device{
			ID: t.ID, Name: t.Name, CPU: t.CPU, ClockHz: t.ClockHz,
			FlashKB: t.FlashBytes >> 10, RAMKB: t.RAMBytes >> 10,
		})
	}
	writeJSON(w, http.StatusOK, v1.DevicesResponse{Success: true, Devices: out})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, u *project.User) {
	out := s.metrics.snapshot()
	m := s.sched.Metrics()
	sm := v1.SchedulerMetrics{
		Workers: m.Workers, PeakWorkers: m.PeakWorkers, Queued: m.Queued,
		Completed: m.Completed, Failed: m.FailedN,
		Cancelled: m.CancelledN, Retries: m.Retries, ScaleUps: m.ScaleUps,
		QueuedByPriority: map[string]int{},
	}
	for p, depth := range m.QueuedByPriority {
		sm.QueuedByPriority[jobs.Priority(p).String()] = depth
	}
	for _, k := range m.Kinds {
		sm.Kinds = append(sm.Kinds, v1.JobKindMetrics{
			Kind: k.Kind, Count: k.Count, AvgWaitMS: k.AvgWaitMS, AvgRunMS: k.AvgRunMS,
		})
	}
	out.Scheduler = sm
	sp := s.streams.Snapshot()
	out.StreamPlane = &v1.StreamPlaneMetrics{
		ActiveSessions: sp.ActiveSessions, PeakSessions: sp.PeakSessions,
		Opened: sp.Opened, Shed: sp.Shed,
		FramesIn: sp.Stats.FramesIn, Windows: sp.Stats.Windows,
		Detections: sp.Stats.Detections, DroppedFrames: sp.Stats.DroppedFrames,
	}
	// snapshot() filled the middleware-side shed/deadline totals; enrich
	// with the gate's live view and the watchdog's counters.
	gm := s.gate.Metrics()
	out.Resilience.Level = gm.Level
	out.Resilience.Score = gm.Score
	out.Resilience.Inflight = gm.Inflight
	out.Resilience.ShedByClass = gm.Shed
	if s.watchdog != nil {
		out.Resilience.StalledJobs = s.watchdog.Stalled()
		out.Resilience.WatchdogCancelled = s.watchdog.Cancelled()
	}
	out.Runtime = RuntimeSnapshot()
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", PrometheusContentType)
		RenderPrometheus(w, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func projectSummary(p *project.Project) v1.ProjectSummary {
	return v1.ProjectSummary{
		ID: p.ID, Name: p.Name, Owner: p.OwnerID,
		Public: p.Public(), Samples: p.Dataset().Len(),
		Collaborators: p.Collaborators(),
	}
}

func (s *Server) writeProjectList(w http.ResponseWriter, r *http.Request, all []*project.Project) {
	limit, offset, err := pageParams(r, defaultPageSize, maxPageSize)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	window, page := paginate(all, limit, offset)
	var out []v1.ProjectSummary
	for _, p := range window {
		out = append(out, projectSummary(p))
	}
	writeJSON(w, http.StatusOK, v1.ProjectsResponse{Success: true, Projects: out, Page: page})
}

func (s *Server) handlePublicProjects(w http.ResponseWriter, r *http.Request) {
	s.writeProjectList(w, r, s.registry.ListPublic())
}

func (s *Server) handleListProjects(w http.ResponseWriter, r *http.Request, u *project.User) {
	s.writeProjectList(w, r, s.registry.ListAccessible(u.ID))
}

func (s *Server) handleCreateProject(w http.ResponseWriter, r *http.Request, u *project.User) {
	var req v1.CreateProjectRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	p, err := s.registry.CreateProject(req.Name, u.ID)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, v1.CreateProjectResponse{
		Success: true, ID: p.ID, Name: p.Name, HMACKey: p.HMACKey,
	})
}

func (s *Server) handleGetProject(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	writeJSON(w, http.StatusOK, v1.ProjectResponse{Success: true, Project: projectSummary(p)})
}

func (s *Server) handleSetPublic(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.SetPublicRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	p.SetPublic(req.Public)
	writeJSON(w, http.StatusOK, v1.SetPublicResponse{Success: true, Public: p.Public()})
}

func (s *Server) handleAddCollaborator(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.AddCollaboratorRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	if _, err := s.registry.GetUser(req.UserID); err != nil {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, err.Error())
		return
	}
	p.AddCollaborator(req.UserID)
	writeJSON(w, http.StatusOK, v1.OK{Success: true})
}

// handleUploadData ingests one sample. Query params: label (required),
// name, format ∈ {wav, csv, acquisition, image}. The acquisition format
// verifies the project's HMAC key (paper Sec. 4.1 ingestion service).
func (s *Server) handleUploadData(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	label := r.URL.Query().Get("label")
	if label == "" {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "label query parameter required")
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	format := r.URL.Query().Get("format")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxDataBody))
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	ds := p.Dataset()
	var id string
	switch format {
	case "wav":
		id, err = ds.ImportWAV(name, label, bytes.NewReader(body))
	case "csv":
		id, err = ds.ImportCSV(name, label, bytes.NewReader(body))
	case "image":
		id, err = ds.ImportImage(name, label, bytes.NewReader(body))
	case "acquisition", "":
		id, err = ds.ImportAcquisition(name, label, body, p.HMACKey)
	default:
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "unknown format "+format)
		return
	}
	switch {
	case err == nil:
	case errors.Is(err, data.ErrDuplicate):
		// The dataset already holds this exact content — a stable code
		// so idempotent uploaders (spool replay) can treat it as an ack.
		s.writeError(w, r, http.StatusConflict, v1.CodeConflict, err.Error())
		return
	case errors.Is(err, data.ErrPersist):
		// Valid input, but durable storage failed: a server fault.
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	default:
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, v1.UploadResponse{Success: true, SampleID: id})
}

func labelStats(stats []data.LabelStat) []v1.LabelStat {
	out := make([]v1.LabelStat, len(stats))
	for i, st := range stats {
		out[i] = v1.LabelStat{
			Label: st.Label, Training: st.Training,
			Testing: st.Testing, Seconds: st.Seconds,
		}
	}
	return out
}

func (s *Server) handleListData(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	limit, offset, err := pageParams(r, defaultPageSize, maxPageSize)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	ds := p.Dataset()
	all := ds.List(data.Category(r.URL.Query().Get("category")))
	window, page := paginate(all, limit, offset)
	var samples []v1.Sample
	// List serves headers only: no signal payload is loaded no matter
	// how large the dataset is.
	for _, sm := range window {
		samples = append(samples, v1.Sample{
			ID: sm.ID, Name: sm.Name, Label: sm.Label,
			Category: string(sm.Category), Frames: sm.Shape.Frames,
		})
	}
	writeJSON(w, http.StatusOK, v1.ListDataResponse{
		Success: true,
		Samples: samples,
		Stats:   labelStats(ds.Stats()),
		Version: ds.Version(),
		Page:    page,
	})
}

func (s *Server) handleDeleteSample(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	if err := p.Dataset().Remove(r.PathValue("sample")); err != nil {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.OK{Success: true})
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.RebalanceRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	if req.TestFraction <= 0 || req.TestFraction >= 1 {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "test_fraction must be in (0,1)")
		return
	}
	if err := p.Dataset().Rebalance(req.TestFraction); err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.RebalanceResponse{Success: true, Stats: labelStats(p.Dataset().Stats())})
}

func (s *Server) handleSetImpulse(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJSONBody))
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	cfg, err := core.ParseConfig(body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	imp, err := core.FromConfig(cfg)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	p.SetImpulse(imp)
	shape, _ := imp.FeatureShape()
	writeJSON(w, http.StatusOK, v1.SetImpulseResponse{
		Success: true, FeatureShape: shape, Dataflow: imp.Describe(),
		Blocks: featureBlocks(imp),
	})
}

// featureBlocks renders the impulse's per-block offset table.
func featureBlocks(imp *core.Impulse) []v1.FeatureBlock {
	layout, err := imp.Layout()
	if err != nil {
		return nil
	}
	out := make([]v1.FeatureBlock, len(layout.Segments))
	for i, seg := range layout.Segments {
		out[i] = v1.FeatureBlock{
			Name: seg.Name, Type: imp.DSP[i].Block.Name(),
			Shape: seg.Shape, Offset: seg.Offset, Size: seg.Len,
		}
	}
	return out
}

func (s *Server) handleGetImpulse(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	imp := p.Impulse()
	if imp == nil {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "no impulse configured")
		return
	}
	cfg, err := json.Marshal(imp.Config())
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.GetImpulseResponse{
		Success: true, Impulse: cfg, Version: core.ConfigVersion,
		Trained: imp.Model != nil, Quantized: imp.QModel != nil,
		Dataflow: imp.Describe(), Blocks: featureBlocks(imp),
	})
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.TrainRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	base := p.Impulse()
	if base == nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "configure an impulse first")
		return
	}
	if p.Dataset().Len() == 0 {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "project has no data")
		return
	}
	// Training runs in the interactive class: a user is watching the
	// Studio's progress bar, so it schedules ahead of batch tuner runs.
	opts := jobs.SubmitOptions{Kind: "training", Tag: p.ID, Priority: jobs.PriorityInteractive}
	job, err := s.sched.SubmitJob(opts, func(ctx context.Context, j *jobs.Job) error {
		// Train on a fresh impulse so a failed or cancelled job never
		// corrupts the project's current model.
		j.SetProgress("prepare", 0)
		imp, err := core.FromConfig(base.Config())
		if err != nil {
			return err
		}
		imp.Classes = p.Dataset().Labels()
		res, err := trainImpulse(ctx, imp, p.Dataset(), req, j)
		if err != nil {
			return err
		}
		p.SetImpulse(imp)
		s.results.Put(j.ID, j.Kind, res)
		j.SetProgress("done", 100)
		return nil
	})
	if err != nil {
		s.submitError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v1.JobAccepted{Success: true, JobID: job.ID})
}

// submitError maps a scheduler admission failure: a tenant over its
// queue quota gets 429 (back off and retry), a full scheduler 503.
// Both carry Retry-After — every shed response in the API is retryable.
func (s *Server) submitError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, jobs.ErrQuotaExceeded) {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, r, http.StatusTooManyRequests, v1.CodeRateLimited, err.Error())
		return
	}
	w.Header().Set("Retry-After", "2")
	s.writeError(w, r, http.StatusServiceUnavailable, v1.CodeUnavailable, err.Error())
}

func (s *Server) handleTuner(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.TunerRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	base := p.Impulse()
	if base == nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "configure an impulse first")
		return
	}
	if p.Dataset().Len() == 0 {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "project has no data")
		return
	}
	tgt := device.Target{}
	if req.Target != "" {
		var err error
		tgt, err = device.Get(req.Target)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
			return
		}
	}
	input := base.Input
	// Tuner sweeps are batch work: they yield to interactive training.
	opts := jobs.SubmitOptions{Kind: "tuner", Tag: p.ID, Priority: jobs.PriorityBatch}
	job, err := s.sched.SubmitJob(opts, func(ctx context.Context, j *jobs.Job) error {
		trials, err := tuner.Run(p.Dataset(), tuner.Config{
			Ctx:         ctx,
			Input:       input,
			Constraints: tuner.Constraints{Target: tgt},
			MaxTrials:   req.MaxTrials,
			Epochs:      req.Epochs,
			Strategy:    req.Strategy,
			Seed:        req.Seed,
			Progress: func(done, total int) {
				if total > 0 {
					j.SetProgress("trials", 100*float64(done)/float64(total))
				}
			},
		})
		if err != nil {
			return err
		}
		j.Logf("tuner finished with %d trials", len(trials))
		s.results.Put(j.ID, j.Kind, tunerTrials(trials))
		return nil
	})
	if err != nil {
		s.submitError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v1.JobAccepted{Success: true, JobID: job.ID})
}

func tunerTrials(trials []tuner.Trial) []v1.TunerTrial {
	out := make([]v1.TunerTrial, len(trials))
	for i, t := range trials {
		out[i] = v1.TunerTrial{
			DSPDesc: t.DSPDesc, ModelDesc: t.ModelDesc, Accuracy: t.Accuracy,
			DSPLatencyMS: t.DSPLatencyMS, NNLatencyMS: t.NNLatencyMS,
			TotalLatencyMS: t.TotalLatencyMS,
			DSPRAM:         t.DSPRAM, NNRAM: t.NNRAM, TotalRAM: t.TotalRAM,
			NNFlash: t.NNFlash, Fits: t.Fits,
		}
	}
	return out
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.ClassifyRequest
	if err := decodeBodyLimit(w, r, &req, maxDataBody); err != nil {
		s.badRequest(w, r, err)
		return
	}
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "impulse is not trained")
		return
	}
	canonical := imp.CanonicalSignal()
	sig := dsp.Signal{
		Data: req.Features, Rate: canonical.Rate, Axes: canonical.Axes,
		Width: canonical.Width, Height: canonical.Height,
	}
	var res core.ClassResult
	var err error
	if req.Quantized {
		res, err = imp.ClassifyQuantized(sig)
	} else {
		res, err = imp.Classify(sig)
	}
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.ClassifyResponse{
		Success: true, Label: res.Label,
		Classification: res.Scores, Anomaly: res.AnomalyScore,
	})
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.ClassifyBatchRequest
	if err := decodeBodyLimit(w, r, &req, maxDataBody); err != nil {
		s.badRequest(w, r, err)
		return
	}
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "impulse is not trained")
		return
	}
	if len(req.Windows) == 0 {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "batch has no windows")
		return
	}
	if len(req.Windows) > v1.MaxClassifyBatch {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest,
			fmt.Sprintf("batch of %d windows exceeds the limit of %d", len(req.Windows), v1.MaxClassifyBatch))
		return
	}
	results, err := imp.ClassifyBatch(req.Windows, req.Quantized)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	out := v1.ClassifyBatchResponse{Success: true, Results: make([]v1.ClassifyWindowResult, len(results))}
	for i, res := range results {
		out.Results[i] = v1.ClassifyWindowResult{
			Label: res.Label, Classification: res.Scores, Anomaly: res.AnomalyScore,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeployment(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "impulse is not trained")
		return
	}
	quantized := r.URL.Query().Get("quantized") == "true"
	kind := r.URL.Query().Get("type")
	switch kind {
	case "eim":
		blob, err := deploy.BuildEIM(imp)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", "attachment; filename=model.eim")
		w.WriteHeader(http.StatusOK)
		w.Write(blob)
	case "cpp", "arduino", "wasm", "":
		var art deploy.Artifact
		var err error
		switch kind {
		case "arduino":
			art, err = deploy.ArduinoLibrary(imp, quantized)
		case "wasm":
			art, err = deploy.WASM(imp, quantized)
		default:
			art, err = deploy.CPPLibrary(imp, quantized)
		}
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
			return
		}
		files := map[string]string{}
		for name, content := range art.Files {
			files[name] = base64.StdEncoding.EncodeToString(content)
		}
		writeJSON(w, http.StatusOK, v1.DeploymentResponse{
			Success: true, Kind: art.Kind, Files: files,
		})
	default:
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "unknown deployment type "+kind)
	}
}

// handleProfile returns latency and memory estimates for a target —
// the "profiling without the GUI" feature of the Python SDK (Sec. 4.9).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	imp := p.Impulse()
	if imp == nil || imp.Model == nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "impulse is not trained")
		return
	}
	targetID := r.URL.Query().Get("target")
	if targetID == "" {
		targetID = "nano-33-ble-sense"
	}
	tgt, err := device.Get(targetID)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	specs, err := imp.Model.Spec()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	est := renode.EstimateFloat(tgt, imp.DSPCost(), specs, renode.TFLM)
	mem, err := profiler.EstimateFloat(imp.Model, renode.TFLM)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	out := v1.ProfileResponse{
		Success: true, Target: tgt.ID,
		Float32: &v1.ProfileEstimate{
			DSPMS: est.DSPMillis, InferenceMS: est.InferenceMillis,
			TotalMS: est.TotalMillis,
			RAMKB:   float64(mem.RAMBytes) / 1024, FlashKB: float64(mem.FlashBytes) / 1024,
			Fits: profiler.Fits(mem, imp.DSPRAM(), tgt),
		},
	}
	if imp.QModel != nil {
		qEst := renode.EstimateInt8(tgt, imp.DSPCost(), imp.QModel, renode.EON)
		qMem := profiler.EstimateInt8(imp.QModel, renode.EON)
		out.Int8 = &v1.ProfileEstimate{
			DSPMS: qEst.DSPMillis, InferenceMS: qEst.InferenceMillis,
			TotalMS: qEst.TotalMillis,
			RAMKB:   float64(qMem.RAMBytes) / 1024, FlashKB: float64(qMem.FlashBytes) / 1024,
			Fits: profiler.Fits(qMem, imp.DSPRAM(), tgt),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func projectVersion(v project.Version) v1.ProjectVersion {
	return v1.ProjectVersion{
		ID: v.ID, Note: v.Note, DatasetVersion: v.DatasetVersion,
		ImpulseConfig: v.ImpulseConfig,
		CreatedAt:     v.CreatedAt.UTC().Format(time.RFC3339),
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	var req v1.SnapshotRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	v := p.Snapshot(req.Note)
	writeJSON(w, http.StatusCreated, v1.SnapshotResponse{Success: true, Version: projectVersion(v)})
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project) {
	limit, offset, err := pageParams(r, defaultPageSize, maxPageSize)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	window, page := paginate(p.Versions(), limit, offset)
	var out []v1.ProjectVersion
	for _, v := range window {
		out = append(out, projectVersion(v))
	}
	writeJSON(w, http.StatusOK, v1.VersionsResponse{Success: true, Versions: out, Page: page})
}

// authorizeJob resolves a job and enforces the owning project's access
// control via the tag attached at submission (set before the job is
// ever resolvable, so there is no window where it appears untagged).
// Jobs from an inaccessible project answer 404 (not 403) so probing
// sequential job IDs does not confirm their existence. Jobs with no
// project tag (submitted outside the API) stay visible to any
// authenticated user.
func (s *Server) authorizeJob(w http.ResponseWriter, r *http.Request, u *project.User) (*jobs.Job, bool) {
	j, err := s.sched.Get(r.PathValue("job"))
	if err != nil {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, err.Error())
		return nil, false
	}
	if pid, ok := j.Tag.(int); ok {
		p, err := s.registry.GetProject(pid)
		if err != nil || !p.CanAccess(u.ID) {
			s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "jobs: no job "+j.ID)
			return nil, false
		}
	}
	return j, true
}

func jobView(j *jobs.Job) v1.Job {
	stage, pct := j.Progress()
	return v1.Job{
		ID: j.ID, Kind: j.Kind, Status: string(j.Status()),
		Priority: j.Priority.String(),
		Error:    j.Err(), Logs: j.Logs(),
		Stage: stage, Progress: pct, Attempt: j.Attempt(),
		DurationMS: float64(j.Duration().Microseconds()) / 1000,
	}
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request, u *project.User) {
	j, ok := s.authorizeJob(w, r, u)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, v1.JobResponse{Success: true, Job: jobView(j)})
}

// Long-poll bounds for GET /jobs/{job}/wait.
const (
	defaultWaitTimeout = 30 * time.Second
	maxWaitTimeout     = 120 * time.Second
)

// handleJobWait long-polls until the job reaches a terminal state or
// timeout_ms elapses, so clients stop busy-looping on job status.
func (s *Server) handleJobWait(w http.ResponseWriter, r *http.Request, u *project.User) {
	j, ok := s.authorizeJob(w, r, u)
	if !ok {
		return
	}
	timeout, ok := waitTimeout(r)
	if !ok {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "timeout_ms must be a positive integer")
		return
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-j.Done():
		writeJSON(w, http.StatusOK, v1.JobWaitResponse{Success: true, Done: true, Job: jobView(j)})
	case <-timer.C:
		writeJSON(w, http.StatusOK, v1.JobWaitResponse{Success: true, Done: false, Job: jobView(j)})
	case <-r.Context().Done():
		// Client went away mid-poll; mark it so metrics don't count
		// this as a handler failure.
		w.WriteHeader(statusClientClosedRequest)
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, u *project.User) {
	j, ok := s.authorizeJob(w, r, u)
	if !ok {
		return
	}
	id := j.ID
	res, ok := s.results.Get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "no result for job "+id+" (still running?)")
		return
	}
	raw, err := json.Marshal(res.Value)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.JobResultResponse{Success: true, Kind: res.Kind, Result: raw})
}
