// Package v1 declares the typed request/response contract of the
// versioned REST API (paper Sec. 4.9: "all functionality is exposed via
// publicly accessible REST APIs"). Every DTO is declared exactly once
// here and shared by the server (internal/api) and the Go client
// (internal/client), so the two cannot drift apart. The package is
// stdlib-only and carries no server dependencies: third parties can
// import it to talk to a studio instance.
package v1

import (
	"encoding/json"
	"fmt"
)

// Prefix is the path prefix of the versioned API surface.
const Prefix = "/api/v1"

// LegacyPrefix is the unversioned prefix kept routable as an alias onto
// the v1 handlers. Old paths keep working but responses follow v1
// semantics (structured error envelope, strict JSON decoding).
const LegacyPrefix = "/api"

// Stable machine-readable error codes carried in the error envelope.
// Clients should branch on these, never on message text.
const (
	CodeBadRequest       = "bad_request"
	CodeUnauthorized     = "unauthorized"
	CodeForbidden        = "forbidden"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeConflict         = "conflict"
	CodePayloadTooLarge  = "payload_too_large"
	CodeRateLimited      = "rate_limited"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal_error"
	// CodeBackpressure means a streaming session's inbound queue is
	// full; the client should slow down and retry the batch.
	CodeBackpressure = "backpressure"
	// CodeOverloaded means the admission gate shed the request under
	// load (429); retry after the Retry-After delay. Interactive-class
	// endpoints never return it.
	CodeOverloaded = "overloaded"
	// CodeDeadline means the request exceeded its route's processing
	// deadline before the handler produced a response (504).
	CodeDeadline = "deadline"
	// CodeNoShard means the gateway has no live node for the project's
	// shard (503); retry after the Retry-After delay.
	CodeNoShard = "no_shard"
)

// ErrorDetail is the machine-readable failure description.
type ErrorDetail struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable and unstable; do not parse it.
	Message string `json:"message"`
	// RequestID correlates the failure with server logs.
	RequestID string `json:"request_id,omitempty"`
}

// ErrorResponse is the envelope returned for every non-2xx status:
// {"success":false,"error":{"code":...,"message":...}}.
type ErrorResponse struct {
	Success bool        `json:"success"`
	Error   ErrorDetail `json:"error"`
}

// OK is the minimal success envelope.
type OK struct {
	Success bool `json:"success"`
}

// Page echoes the pagination window applied to a list response.
type Page struct {
	// Limit is the applied page size.
	Limit int `json:"limit"`
	// Offset is the index of the first returned element.
	Offset int `json:"offset"`
	// Total counts all elements before pagination.
	Total int `json:"total"`
}

// --- Users & devices ---

// CreateUserRequest bootstraps an account. POST /api/v1/users.
type CreateUserRequest struct {
	Name string `json:"name"`
}

// CreateUserResponse returns the account and its API key.
type CreateUserResponse struct {
	Success bool   `json:"success"`
	ID      string `json:"id"`
	Name    string `json:"name"`
	APIKey  string `json:"api_key"`
}

// Device describes one supported deployment target.
type Device struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	CPU     string `json:"cpu"`
	ClockHz int64  `json:"clock_hz"`
	FlashKB int64  `json:"flash_kb"`
	RAMKB   int64  `json:"ram_kb"`
}

// DevicesResponse lists deployment targets. GET /api/v1/devices.
type DevicesResponse struct {
	Success bool     `json:"success"`
	Devices []Device `json:"devices"`
}

// --- Projects ---

// ProjectSummary is the project listing row.
type ProjectSummary struct {
	ID            int      `json:"id"`
	Name          string   `json:"name"`
	Owner         string   `json:"owner"`
	Public        bool     `json:"public"`
	Samples       int      `json:"samples"`
	Collaborators []string `json:"collaborators"`
}

// CreateProjectRequest creates a project. POST /api/v1/projects.
type CreateProjectRequest struct {
	Name string `json:"name"`
}

// CreateProjectResponse returns the project and its ingestion HMAC key.
type CreateProjectResponse struct {
	Success bool   `json:"success"`
	ID      int    `json:"id"`
	Name    string `json:"name"`
	HMACKey string `json:"hmac_key"`
}

// ProjectsResponse is a paginated project listing.
type ProjectsResponse struct {
	Success  bool             `json:"success"`
	Projects []ProjectSummary `json:"projects"`
	Page
}

// ProjectResponse returns one project. GET /api/v1/projects/{id}.
type ProjectResponse struct {
	Success bool           `json:"success"`
	Project ProjectSummary `json:"project"`
}

// SetPublicRequest toggles public visibility.
type SetPublicRequest struct {
	Public bool `json:"public"`
}

// SetPublicResponse echoes the new visibility.
type SetPublicResponse struct {
	Success bool `json:"success"`
	Public  bool `json:"public"`
}

// AddCollaboratorRequest grants a user access to the project.
type AddCollaboratorRequest struct {
	UserID string `json:"user_id"`
}

// --- Data ---

// Sample is one dataset entry in a listing.
type Sample struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Label    string `json:"label"`
	Category string `json:"category"`
	Frames   int    `json:"frames"`
}

// LabelStat summarizes one class of the dataset.
type LabelStat struct {
	Label    string  `json:"label"`
	Training int     `json:"training"`
	Testing  int     `json:"testing"`
	Seconds  float64 `json:"seconds"`
}

// UploadResponse acknowledges one ingested sample.
type UploadResponse struct {
	Success  bool   `json:"success"`
	SampleID string `json:"sample_id"`
}

// ListDataResponse is a paginated sample listing with dataset stats.
type ListDataResponse struct {
	Success bool        `json:"success"`
	Samples []Sample    `json:"samples"`
	Stats   []LabelStat `json:"stats"`
	// Version is the dataset content hash; it changes on any
	// addition, removal or relabeling.
	Version string `json:"version"`
	Page
}

// RebalanceRequest re-splits the dataset into train/test.
type RebalanceRequest struct {
	TestFraction float64 `json:"test_fraction"`
}

// RebalanceResponse returns the post-split stats.
type RebalanceResponse struct {
	Success bool        `json:"success"`
	Stats   []LabelStat `json:"stats"`
}

// --- Blocks & impulse ---

// BlockParam is one accepted hyperparameter of a block type, with its
// default value.
type BlockParam struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
}

// BlockInfo describes one catalog entry of the design block registry.
type BlockInfo struct {
	// Type is the identifier used in design specs ("mfe",
	// "classification", ...).
	Type string `json:"type"`
	// Description is a one-line summary (learn blocks only for now).
	Description string `json:"description,omitempty"`
	// Trainable reports whether the platform can fit the block (learn
	// blocks only; DSP blocks are stateless extractors).
	Trainable bool `json:"trainable,omitempty"`
	// Params is the block's parameter schema, sorted by name.
	Params []BlockParam `json:"params"`
}

// BlocksResponse is the design catalog at GET /api/v1/blocks: every
// registered DSP and learn block type with its param schema, in sorted
// order so responses are deterministic across processes.
type BlocksResponse struct {
	Success bool        `json:"success"`
	DSP     []BlockInfo `json:"dsp"`
	Learn   []BlockInfo `json:"learn"`
}

// FeatureBlock locates one DSP block's output inside the composite
// feature vector — a row of the impulse's per-block offset table.
type FeatureBlock struct {
	// Name is the DSP block's instance name.
	Name string `json:"name"`
	// Type is the block's registered type.
	Type string `json:"type"`
	// Shape is the block's own output shape.
	Shape []int `json:"shape"`
	// Offset and Size locate the flattened output in the composite
	// feature vector.
	Offset int `json:"offset"`
	Size   int `json:"size"`
}

// SetImpulseResponse acknowledges an impulse design. FeatureShape is
// the composite feature shape; Blocks is the per-block offset table.
type SetImpulseResponse struct {
	Success      bool           `json:"success"`
	FeatureShape []int          `json:"feature_shape"`
	Dataflow     string         `json:"dataflow"`
	Blocks       []FeatureBlock `json:"blocks,omitempty"`
}

// GetImpulseResponse returns the current impulse design and its
// training state. Impulse is the serialized core config, always in the
// v2 block-graph schema (v1 uploads are migrated on ingest).
type GetImpulseResponse struct {
	Success bool            `json:"success"`
	Impulse json.RawMessage `json:"impulse"`
	// Version is the schema version of Impulse (currently always 2).
	Version   int            `json:"version"`
	Trained   bool           `json:"trained"`
	Quantized bool           `json:"quantized"`
	Dataflow  string         `json:"dataflow"`
	Blocks    []FeatureBlock `json:"blocks,omitempty"`
}

// --- Training & tuner ---

// ModelSpec selects a model-zoo architecture: the "visual editor"
// presets of paper Sec. 4.3, addressed by name.
type ModelSpec struct {
	// Type is one of "conv1d", "dscnn", "mlp", "cnn2d", "mobilenetv1".
	Type string `json:"type"`
	// Conv1d parameters.
	Depth        int `json:"depth,omitempty"`
	StartFilters int `json:"start_filters,omitempty"`
	EndFilters   int `json:"end_filters,omitempty"`
	// MLP parameters.
	Hidden int `json:"hidden,omitempty"`
	// MobileNet width multiplier (×100, e.g. 25 for 0.25).
	AlphaPercent int `json:"alpha_percent,omitempty"`
}

// TrainRequest configures a training job. POST /api/v1/projects/{id}/train.
type TrainRequest struct {
	Model        ModelSpec `json:"model"`
	Epochs       int       `json:"epochs"`
	LearningRate float64   `json:"learning_rate"`
	Quantize     bool      `json:"quantize"`
	Seed         int64     `json:"seed"`
}

// TrainResult is the structured output of a training job, fetched via
// GET /api/v1/jobs/{job}/result.
type TrainResult struct {
	Accuracy     float64   `json:"accuracy"`
	Confusion    [][]int   `json:"confusion"`
	F1           []float64 `json:"f1"`
	Classes      []string  `json:"classes"`
	LearningRate float64   `json:"learning_rate"`
	TrainLoss    []float64 `json:"train_loss"`
	Quantized    bool      `json:"quantized"`
	// AnomalyTrained reports that the design's anomaly learn block was
	// fitted alongside the classifier.
	AnomalyTrained bool `json:"anomaly_trained,omitempty"`
}

// TunerRequest configures an EON-Tuner search job.
type TunerRequest struct {
	MaxTrials int    `json:"max_trials"`
	Epochs    int    `json:"epochs"`
	Target    string `json:"target"`
	Strategy  string `json:"strategy"`
	Seed      int64  `json:"seed"`
}

// TunerTrial is one evaluated (DSP, model) combination — a row of the
// paper's Table 3.
type TunerTrial struct {
	DSPDesc        string  `json:"dsp"`
	ModelDesc      string  `json:"model"`
	Accuracy       float64 `json:"accuracy"`
	DSPLatencyMS   float64 `json:"dsp_latency_ms"`
	NNLatencyMS    float64 `json:"nn_latency_ms"`
	TotalLatencyMS float64 `json:"total_latency_ms"`
	DSPRAM         int64   `json:"dsp_ram"`
	NNRAM          int64   `json:"nn_ram"`
	TotalRAM       int64   `json:"total_ram"`
	NNFlash        int64   `json:"nn_flash"`
	Fits           bool    `json:"fits"`
}

// JobAccepted acknowledges an async job submission (HTTP 202).
type JobAccepted struct {
	Success bool   `json:"success"`
	JobID   string `json:"job_id"`
}

// --- Jobs ---

// Job lifecycle states, mirroring internal/jobs. The lifecycle is
// queued → running → {finished | failed | cancelled}; a transient
// failure under the retry budget loops running → queued.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobFinished  = "finished"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Job priority classes, mirroring internal/jobs.
const (
	JobPriorityInteractive = "interactive"
	JobPriorityDefault     = "default"
	JobPriorityBatch       = "batch"
)

// Job is the public view of one scheduled unit of work.
type Job struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	// Priority is the scheduling class ("interactive" runs before
	// "default", which runs before "batch").
	Priority string `json:"priority"`
	// Error is set when Status is "failed" or "cancelled" (the reason).
	Error string `json:"error"`
	// Logs is the job's log stream so far.
	Logs []string `json:"logs"`
	// Stage and Progress are the job's structured progress report:
	// the current stage name and its percent complete in [0,100].
	Stage    string  `json:"stage,omitempty"`
	Progress float64 `json:"progress"`
	// Attempt is the retry attempt the job is on (0 = first run).
	Attempt int `json:"attempt,omitempty"`
	// DurationMS is the runtime so far (or final runtime when done).
	DurationMS float64 `json:"duration_ms"`
}

// Terminal reports whether the job has stopped for good.
func (j Job) Terminal() bool {
	return j.Status == JobFinished || j.Status == JobFailed || j.Status == JobCancelled
}

// CancelJobResponse acknowledges DELETE /api/v1/jobs/{job}. Cancelled
// is false when the job was already terminal (the Job view carries the
// state it ended in).
type CancelJobResponse struct {
	Success   bool `json:"success"`
	Cancelled bool `json:"cancelled"`
	Job
}

// Job event types, mirroring internal/jobs events.
const (
	JobEventState    = "state"
	JobEventProgress = "progress"
	JobEventLog      = "log"
)

// JobEvent is one entry of a job's ordered event log, delivered by
// GET /api/v1/jobs/{job}/events. Seq is strictly increasing and
// contiguous per job; resume a stream by passing the last Seq seen via
// the Last-Event-Id header (or the from query parameter).
type JobEvent struct {
	Seq int64 `json:"seq"`
	// Type is one of the JobEvent* constants.
	Type string `json:"type"`
	// TimestampMS is the event time in Unix milliseconds.
	TimestampMS int64 `json:"timestamp_ms"`
	// Status is set for "state" events.
	Status string `json:"status,omitempty"`
	// Stage and Progress are set for "progress" events.
	Stage    string  `json:"stage,omitempty"`
	Progress float64 `json:"progress,omitempty"`
	// Message is set for "log" events and for retry/cancel state
	// events, where it carries the reason.
	Message string `json:"message,omitempty"`
	// Attempt is the retry attempt the event belongs to.
	Attempt int `json:"attempt,omitempty"`
}

// Terminal reports whether the event is a terminal state transition —
// the last event a job ever emits.
func (e JobEvent) Terminal() bool {
	return e.Type == JobEventState &&
		(e.Status == JobFinished || e.Status == JobFailed || e.Status == JobCancelled)
}

// JobEventsResponse is the long-poll (mode=poll) result of
// GET /api/v1/jobs/{job}/events: every retained event after the
// requested seq (empty when the poll timed out first). NextSeq is the
// cursor for the next poll; Done reports that the job is terminal and
// no further events will ever arrive past NextSeq.
type JobEventsResponse struct {
	Success bool       `json:"success"`
	Events  []JobEvent `json:"events"`
	NextSeq int64      `json:"next_seq"`
	Done    bool       `json:"done"`
}

// JobResponse returns one job. GET /api/v1/jobs/{job}.
type JobResponse struct {
	Success bool `json:"success"`
	Job
}

// JobWaitResponse is the long-poll result of GET /api/v1/jobs/{job}/wait:
// Done is false when the poll timed out with the job still running.
type JobWaitResponse struct {
	Success bool `json:"success"`
	Done    bool `json:"done"`
	Job
}

// JobResultResponse carries a finished job's structured output. Result
// is kind-dependent; decode it with TrainResult or TunerTrials.
type JobResultResponse struct {
	Success bool            `json:"success"`
	Kind    string          `json:"kind"`
	Result  json.RawMessage `json:"result"`
}

// TrainResult decodes the result of a "training" job.
func (r *JobResultResponse) TrainResult() (*TrainResult, error) {
	var out TrainResult
	if err := json.Unmarshal(r.Result, &out); err != nil {
		return nil, fmt.Errorf("v1: decoding training result: %w", err)
	}
	return &out, nil
}

// TunerTrials decodes the result of a "tuner" job.
func (r *JobResultResponse) TunerTrials() ([]TunerTrial, error) {
	var out []TunerTrial
	if err := json.Unmarshal(r.Result, &out); err != nil {
		return nil, fmt.Errorf("v1: decoding tuner result: %w", err)
	}
	return out, nil
}

// --- Classification, profiling, deployment ---

// ClassifyRequest runs inference on one feature window.
type ClassifyRequest struct {
	Features  []float32 `json:"features"`
	Quantized bool      `json:"quantized"`
}

// ClassifyResponse is the inference result.
type ClassifyResponse struct {
	Success bool   `json:"success"`
	Label   string `json:"label"`
	// Classification maps every class to its probability.
	Classification map[string]float32 `json:"classification"`
	// Anomaly is set when the impulse has an anomaly block.
	Anomaly float64 `json:"anomaly"`
}

// MaxClassifyBatch caps the window count of one batched classify call;
// larger workloads should page their windows across requests.
const MaxClassifyBatch = 256

// ClassifyBatchRequest runs inference on several feature windows in one
// request, amortizing transport, auth and scratch-arena warm-up across
// the batch. Every window must be a full feature window (same length the
// single-window classify accepts).
type ClassifyBatchRequest struct {
	Windows   [][]float32 `json:"windows"`
	Quantized bool        `json:"quantized"`
}

// ClassifyWindowResult is one window's outcome within a batch.
type ClassifyWindowResult struct {
	Label string `json:"label"`
	// Classification maps every class to its probability.
	Classification map[string]float32 `json:"classification"`
	// Anomaly is set when the impulse has an anomaly block.
	Anomaly float64 `json:"anomaly"`
}

// ClassifyBatchResponse carries one result per request window, in order.
type ClassifyBatchResponse struct {
	Success bool                   `json:"success"`
	Results []ClassifyWindowResult `json:"results"`
}

// ProfileEstimate is the on-device estimate for one numeric type.
type ProfileEstimate struct {
	DSPMS       float64 `json:"dsp_ms"`
	InferenceMS float64 `json:"inference_ms"`
	TotalMS     float64 `json:"total_ms"`
	RAMKB       float64 `json:"ram_kb"`
	FlashKB     float64 `json:"flash_kb"`
	// Fits reports whether the model fits the target's memory.
	Fits bool `json:"fits"`
}

// ProfileResponse estimates latency and memory on a target device.
type ProfileResponse struct {
	Success bool             `json:"success"`
	Target  string           `json:"target"`
	Float32 *ProfileEstimate `json:"float32"`
	// Int8 is present only when the impulse has a quantized model.
	Int8 *ProfileEstimate `json:"int8,omitempty"`
}

// DeploymentResponse packages a source-library deployment. Files maps
// path → base64 content. (type=eim streams raw bytes instead.)
type DeploymentResponse struct {
	Success bool              `json:"success"`
	Kind    string            `json:"kind"`
	Files   map[string]string `json:"files"`
}

// --- Versioning ---

// SnapshotRequest captures a project version.
type SnapshotRequest struct {
	Note string `json:"note"`
}

// ProjectVersion is one snapshot: data, preprocessing and model design
// captured together (the paper's reproducibility answer).
type ProjectVersion struct {
	ID             int             `json:"id"`
	Note           string          `json:"note"`
	DatasetVersion string          `json:"dataset_version"`
	ImpulseConfig  json.RawMessage `json:"impulse_config,omitempty"`
	CreatedAt      string          `json:"created_at"`
}

// SnapshotResponse returns the created version.
type SnapshotResponse struct {
	Success bool           `json:"success"`
	Version ProjectVersion `json:"version"`
}

// VersionsResponse is a paginated version listing.
type VersionsResponse struct {
	Success  bool             `json:"success"`
	Versions []ProjectVersion `json:"versions"`
	Page
}

// --- Operational metrics ---

// RouteMetrics aggregates one route's traffic.
type RouteMetrics struct {
	// Route is the v1 pattern ("GET /api/v1/projects"); legacy alias
	// traffic is folded into its v1 route.
	Route string `json:"route"`
	Count int64  `json:"count"`
	// Err4xx/Err5xx count client and server failures.
	Err4xx int64 `json:"err_4xx"`
	Err5xx int64 `json:"err_5xx"`
	// AvgMS is the mean handler latency.
	AvgMS float64 `json:"avg_ms"`
}

// JobKindMetrics aggregates terminal runs of one job kind.
type JobKindMetrics struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
	// AvgWaitMS is the mean queue wait; AvgRunMS the mean execution
	// time (final attempt each).
	AvgWaitMS float64 `json:"avg_wait_ms"`
	AvgRunMS  float64 `json:"avg_run_ms"`
}

// SchedulerMetrics snapshots the training worker pool.
type SchedulerMetrics struct {
	Workers     int   `json:"workers"`
	PeakWorkers int   `json:"peak_workers"`
	Queued      int   `json:"queued"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Cancelled   int64 `json:"cancelled"`
	Retries     int64 `json:"retries"`
	ScaleUps    int64 `json:"scale_ups"`
	// QueuedByPriority breaks the pending depth down per class.
	QueuedByPriority map[string]int `json:"queued_by_priority"`
	// Kinds reports per-kind queue-wait and run latency, sorted.
	Kinds []JobKindMetrics `json:"kinds,omitempty"`
}

// MetricsResponse is the operational snapshot at GET /api/v1/metrics.
type MetricsResponse struct {
	Success       bool             `json:"success"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests"`
	RateLimited   int64            `json:"rate_limited"`
	Panics        int64            `json:"panics"`
	Routes        []RouteMetrics   `json:"routes"`
	Scheduler     SchedulerMetrics `json:"scheduler"`
	// Streams reports long-lived NDJSON connections per route. Their
	// durations are tracked here, separately from Routes, so that a
	// connection held open for minutes does not skew request latency.
	Streams []StreamRouteMetrics `json:"streams,omitempty"`
	// StreamPlane snapshots the live-inference session manager, when
	// streaming is enabled.
	StreamPlane *StreamPlaneMetrics `json:"stream_plane,omitempty"`
	// Resilience snapshots the admission gate, deadline enforcement and
	// watchdog counters.
	Resilience *ResilienceMetrics `json:"resilience,omitempty"`
	// Runtime snapshots the Go runtime so load harnesses can measure
	// target-side goroutine and heap deltas across a storm.
	Runtime *RuntimeMetrics `json:"runtime,omitempty"`
}

// RuntimeMetrics reports process-level Go runtime gauges.
type RuntimeMetrics struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

// ResilienceMetrics reports the overload-protection plane's state.
type ResilienceMetrics struct {
	// Level is the admission gate's shedding posture: "normal",
	// "shed-batch" (batch-class refused) or "shed-default" (only
	// interactive admitted).
	Level string `json:"level"`
	// Score is the last computed load score (1.0 = a resource fully
	// saturated).
	Score float64 `json:"score"`
	// Inflight counts currently admitted requests.
	Inflight int `json:"inflight"`
	// Shed counts requests refused by the gate (429 overloaded).
	Shed int64 `json:"shed"`
	// ShedByClass breaks Shed down per admission class.
	ShedByClass map[string]int64 `json:"shed_by_class,omitempty"`
	// DeadlineTimeouts counts requests that exceeded their route budget
	// (504 deadline).
	DeadlineTimeouts int64 `json:"deadline_timeouts"`
	// StalledJobs counts watchdog stalled flags; WatchdogCancelled
	// counts jobs the watchdog cancelled (both 0 when no watchdog runs).
	StalledJobs       int64 `json:"stalled_jobs"`
	WatchdogCancelled int64 `json:"watchdog_cancelled"`
}

// HealthResponse is the liveness probe at GET /api/v1/healthz: 200 as
// long as the process can serve HTTP at all, regardless of load.
type HealthResponse struct {
	Success       bool    `json:"success"`
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ReadyResponse is the readiness probe at GET /api/v1/readyz: HTTP 200
// when the instance should receive traffic, 503 while degraded (a
// dependency probe failing, load shedding active, or draining for
// shutdown). The body is returned for both statuses.
type ReadyResponse struct {
	Success  bool `json:"success"`
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// Probes maps each registered readiness probe to "ok" or its error.
	Probes map[string]string `json:"probes,omitempty"`
}

// StreamRouteMetrics aggregates long-lived streaming connections for one
// route pattern.
type StreamRouteMetrics struct {
	Route string `json:"route"`
	// Active is the number of connections currently open.
	Active int64 `json:"active"`
	// Count is the number of connections that have completed.
	Count int64 `json:"count"`
	// AvgSeconds is the mean duration of completed connections.
	AvgSeconds float64 `json:"avg_seconds"`
}

// StreamPlaneMetrics snapshots the streaming-inference session manager.
type StreamPlaneMetrics struct {
	ActiveSessions int `json:"active_sessions"`
	PeakSessions   int `json:"peak_sessions"`
	// Opened counts sessions ever admitted; Shed counts opens rejected
	// at the global capacity cap.
	Opened int64 `json:"opened"`
	Shed   int64 `json:"shed"`
	// Cumulative work across live and closed sessions.
	FramesIn   int64 `json:"frames_in"`
	Windows    int64 `json:"windows"`
	Detections int64 `json:"detections"`
	// DroppedFrames counts frames lost to ring-buffer overruns.
	DroppedFrames int64 `json:"dropped_frames"`
}

// StreamOpenRequest opens a live inference session against the trained
// impulse at POST /api/v1/projects/{id}/stream.
type StreamOpenRequest struct {
	// StrideMS sets the hop between overlapping classification windows.
	// 0 means non-overlapping (stride = window).
	StrideMS int `json:"stride_ms,omitempty"`
	// Quantized selects the int8 model when one is attached.
	Quantized bool `json:"quantized,omitempty"`
	// Threshold is the smoothed score needed to fire a detection
	// (default 0.6); Smooth is the moving-average depth in windows
	// (default 3); Suppress is a refractory period in windows after a
	// detection (default 0).
	Threshold float32 `json:"threshold,omitempty"`
	Smooth    int     `json:"smooth,omitempty"`
	Suppress  int     `json:"suppress,omitempty"`
	// Release is the hysteresis re-arm level: after a class fires it
	// must fall below Release before it can fire again (default
	// 0.75 * Threshold). Raise it toward Threshold when class scores
	// are tightly clustered and the default never re-arms.
	Release float32 `json:"release,omitempty"`
	// IgnoreLabels lists classes that never fire detection events —
	// typically background classes such as "noise".
	IgnoreLabels []string `json:"ignore_labels,omitempty"`
	// IdleTimeoutMS closes the session after this long without frames
	// (default 60000).
	IdleTimeoutMS int `json:"idle_timeout_ms,omitempty"`
}

// StreamOpenResponse describes the admitted session. Clients must push
// frames as Axes-interleaved float32 samples at Rate Hz.
type StreamOpenResponse struct {
	Success       bool     `json:"success"`
	SessionID     string   `json:"session_id"`
	WindowSamples int      `json:"window_samples"`
	StrideSamples int      `json:"stride_samples"`
	Rate          int      `json:"rate"`
	Axes          int      `json:"axes"`
	Classes       []string `json:"classes"`
}

// StreamPushRequest appends a batch of samples to a session at
// POST /api/v1/projects/{id}/stream/{sid}/frames. Len(Samples) must be a
// multiple of the session's axis count.
type StreamPushRequest struct {
	Samples []float32 `json:"samples"`
}

// StreamPushResponse acknowledges an accepted batch.
type StreamPushResponse struct {
	Success bool `json:"success"`
	// FramesIn is the total frames accepted by the session so far.
	FramesIn int64 `json:"frames_in"`
}

// StreamEvent is one NDJSON line on a session's event feed. Seq starts
// at 1 and is contiguous; clients resume with ?after=<seq> or the
// Last-Event-Id header.
type StreamEvent struct {
	Seq int64 `json:"seq"`
	// Type is "state", "result", or "detection".
	Type        string `json:"type"`
	TimestampMS int64  `json:"timestamp_ms"`
	// Status/Reason are set on state events ("open", "closed").
	Status string `json:"status,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Label/Score carry the top class for result and detection events.
	Label string  `json:"label,omitempty"`
	Score float32 `json:"score,omitempty"`
	// Scores carries the full smoothed distribution on detections only.
	Scores map[string]float32 `json:"scores,omitempty"`
	// WindowStart is the absolute frame index of the classified window.
	WindowStart int64 `json:"window_start,omitempty"`
	// Dropped is the cumulative frames lost to ring overruns.
	Dropped int64 `json:"dropped,omitempty"`
}

// Terminal reports whether the event ends the feed.
func (e StreamEvent) Terminal() bool {
	return e.Type == "state" && e.Status == "closed"
}

// --- Cluster plane ---

// ClusterNodeResponse identifies one cluster node. GET
// /api/v1/cluster/node (workers and followers; cluster-token guarded).
type ClusterNodeResponse struct {
	Success bool `json:"success"`
	// Name is the node's operator-assigned identifier.
	Name string `json:"name"`
	// Role is "worker" (a shard's writable primary) or "follower" (its
	// read-only replica).
	Role string `json:"role"`
	// Shard is the node's shard index in [0, Shards).
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Projects maps project ID → committed dataset store version; the
	// gateway diffs a follower's map against its primary's to compute
	// replication lag.
	Projects map[int]uint64 `json:"projects,omitempty"`
}

// ReplicationSegment is one segment's committed size in a replication
// state snapshot.
type ReplicationSegment struct {
	Index int   `json:"index"`
	Size  int64 `json:"size"`
}

// ReplicationStateResponse is a project store's replication snapshot.
// GET /api/v1/cluster/replication/projects/{id}/state.
type ReplicationStateResponse struct {
	Success bool `json:"success"`
	// Version is the committed operation counter; SnapVersion the last
	// manifest snapshot's version (the journal retention horizon — a
	// cursor below it requires a snapshot bootstrap).
	Version     uint64               `json:"version"`
	SnapVersion uint64               `json:"snap_version"`
	Segments    []ReplicationSegment `json:"segments"`
}

// ReplicationJournalResponse carries raw journal frames (CRC framing
// intact, base64 in JSON) for versions in (since, upto]. GET
// /api/v1/cluster/replication/projects/{id}/journal?since=&upto=.
// A 409 conflict response means the cursor predates the retained
// journal and the follower must bootstrap from the manifest.
type ReplicationJournalResponse struct {
	Success bool   `json:"success"`
	Frames  []byte `json:"frames,omitempty"`
	// Last is the version of the final frame returned (== since when no
	// frames were pending).
	Last uint64 `json:"last"`
}

// ReplicationManifestResponse is the snapshot-bootstrap payload: the
// manifest blob rendered at Version. GET
// /api/v1/cluster/replication/projects/{id}/manifest.
type ReplicationManifestResponse struct {
	Success  bool   `json:"success"`
	Manifest []byte `json:"manifest"`
	Version  uint64 `json:"version"`
}

// ProjectMetaBlob carries one project's design artifacts in a cluster
// meta bundle (all blobs base64 in JSON; absent means not configured).
type ProjectMetaBlob struct {
	ID      int    `json:"id"`
	Impulse []byte `json:"impulse,omitempty"`
	Model   []byte `json:"model,omitempty"`
	QModel  []byte `json:"qmodel,omitempty"`
}

// ClusterMetaResponse is a worker's control-plane state for follower
// sync: the registry snapshot plus per-project design blobs. GET
// /api/v1/cluster/replication/meta.
type ClusterMetaResponse struct {
	Success  bool              `json:"success"`
	Registry []byte            `json:"registry"`
	Projects []ProjectMetaBlob `json:"projects,omitempty"`
}

// AdmitUserRequest inserts a pre-minted account on a worker. POST
// /api/v1/cluster/users — the gateway creates each user on one worker,
// then broadcasts the minted identity so every shard authenticates the
// same API key.
type AdmitUserRequest struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	APIKey string `json:"api_key"`
}

// ClusterNodeStatus is the gateway's view of one node.
type ClusterNodeStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Role string `json:"role"`
	// Ready/Draining/Probes mirror the node's last readyz answer.
	Ready    bool              `json:"ready"`
	Draining bool              `json:"draining,omitempty"`
	Probes   map[string]string `json:"probes,omitempty"`
	// LagOps is the follower's maximum per-project version deficit
	// against its primary (0 for primaries and caught-up followers).
	LagOps uint64 `json:"lag_ops,omitempty"`
	// Error is the last poll failure ("" when the node answers).
	Error string `json:"error,omitempty"`
}

// ClusterShardStatus groups one shard's nodes.
type ClusterShardStatus struct {
	Shard     int                 `json:"shard"`
	Primary   ClusterNodeStatus   `json:"primary"`
	Followers []ClusterNodeStatus `json:"followers,omitempty"`
}

// ClusterStatusResponse is the gateway's shard map with per-node health
// and replication lag. GET /api/v1/cluster/status (gateway only).
type ClusterStatusResponse struct {
	Success bool                 `json:"success"`
	Shards  []ClusterShardStatus `json:"shards"`
}

// StreamSessionStats summarizes a session's lifetime counters.
type StreamSessionStats struct {
	FramesIn   int64 `json:"frames_in"`
	Windows    int64 `json:"windows"`
	Detections int64 `json:"detections"`
	Dropped    int64 `json:"dropped"`
}

// StreamCloseResponse acknowledges DELETE .../stream/{sid}.
type StreamCloseResponse struct {
	Success bool               `json:"success"`
	Stats   StreamSessionStats `json:"stats"`
}
