package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	v1 "edgepulse/internal/api/v1"
)

// middleware wraps a handler with one cross-cutting concern. The chain
// is assembled once in NewServer; per-route instrumentation happens at
// registration time so metrics are keyed by route pattern, not raw URL.
type middleware func(http.Handler) http.Handler

// chain applies middlewares so that the first argument is outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// --- request IDs ---

type ctxKey int

const (
	requestIDKey ctxKey = iota
	// authUserKey carries the *project.User the rate limiter already
	// resolved, so the auth adapter can skip a second lookup.
	authUserKey
)

// RequestIDHeader carries the request correlation ID.
const RequestIDHeader = "X-Request-Id"

// RequestID returns the correlation ID attached by the middleware, or
// "" outside a request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unknown"
	}
	return hex.EncodeToString(b[:])
}

// withRequestID honors an incoming X-Request-Id (so IDs propagate
// through multi-hop automation) or mints one, stores it in the context
// and echoes it on the response.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > 64 {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// --- response observation ---

// statusWriter records the status code and bytes written, for logging
// and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher through the wrapper so streaming
// endpoints (the job event feed) can push chunks mid-handler. Embedding
// alone would hide the underlying connection's Flush.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the underlying writer
// for capabilities we don't forward explicitly (EnableFullDuplex,
// deadline control on the NDJSON duplex endpoint).
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// withLogging emits one structured line per request. Clustered nodes
// add their shard id, so one request id traces across the gateway hop
// to the shard that served it.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		fields := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
			"request_id", RequestID(r.Context()),
		}
		if s.cluster != nil {
			fields = append(fields, "shard", s.cluster.shard)
		}
		s.log.Info("request", fields...)
	})
}

// withRecovery converts handler panics into a 500 error envelope
// instead of tearing down the connection.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.metrics.panic()
				s.log.Error("panic in handler",
					"method", r.Method, "path", r.URL.Path,
					"panic", rec, "request_id", RequestID(r.Context()))
				s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// --- rate limiting ---

// rateLimiter is a per-key token bucket: each API key (or, for
// unauthenticated traffic, each client IP) accrues rate tokens per
// second up to burst.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets hard-caps limiter memory regardless of key churn.
const maxBuckets = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// bucketFor returns the refilled bucket for key, creating it when
// absent. At the maxBuckets cap it evicts only buckets that still hold
// spare tokens — dropping a throttled bucket would hand its key a
// fresh burst on recreation, letting key churn defeat the limit. When
// the map is entirely full of exhausted buckets (a churn attack), it
// returns nil and the request is denied (fail closed). The caller must
// hold rl.mu.
func (rl *rateLimiter) bucketFor(key string, now time.Time) *bucket {
	b, ok := rl.buckets[key]
	if !ok {
		if len(rl.buckets) >= maxBuckets {
			rl.prune(now)
			// Only fully-refilled buckets may go: recreation grants
			// exactly the burst such a bucket already held, so no key
			// gains allowance from being evicted.
			for k, old := range rl.buckets {
				if len(rl.buckets) < maxBuckets {
					break
				}
				if old.tokens >= rl.burst {
					delete(rl.buckets, k)
				}
			}
			if len(rl.buckets) >= maxBuckets {
				return nil
			}
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
		return b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	return b
}

// allow consumes one token for key, refilling lazily.
func (rl *rateLimiter) allow(key string, now time.Time) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.bucketFor(key, now)
	if b == nil || b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// allowBoth consumes one token from a bucket in each limiter only when
// both have capacity — all or nothing, so a rejection by one bucket
// never drains the other. Lock order is fixed (first, then second) and
// every caller passes (limiter, aggLimiter), so there is no deadlock.
func allowBoth(first *rateLimiter, firstKey string, second *rateLimiter, secondKey string, now time.Time) bool {
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	fb := first.bucketFor(firstKey, now)
	sb := second.bucketFor(secondKey, now)
	if fb == nil || sb == nil || fb.tokens < 1 || sb.tokens < 1 {
		return false
	}
	fb.tokens--
	sb.tokens--
	return true
}

// prune drops buckets idle long enough to have refilled completely.
func (rl *rateLimiter) prune(now time.Time) {
	for k, b := range rl.buckets {
		if now.Sub(b.last).Seconds()*rl.rate >= rl.burst {
			delete(rl.buckets, k)
		}
	}
}

// aggFactor scales the aggregate per-IP ceiling relative to the
// per-key budget: a NAT full of legitimate users gets headroom, but a
// single host cannot multiply its allowance without bound by minting
// users (POST /users is unauthenticated, so keys are free).
const aggFactor = 10

// withRateLimit enforces the per-key budget before any handler work.
// Only API keys that actually authenticate get their own bucket —
// unauthenticated and invalid keys share the client IP's bucket, so
// rotating random keys cannot mint fresh burst allowances — and all
// authenticated traffic is additionally bounded by an aggregate per-IP
// bucket at aggFactor× the per-key budget.
// clientHost resolves the client address for rate limiting. Behind a
// reverse proxy every connection shares the proxy's RemoteAddr, which
// would collapse all tenants into one IP bucket — WithTrustProxy opts
// in to the X-Forwarded-For client hop instead (never trusted by
// default, since the header is client-forgeable when no proxy strips
// it).
func (s *Server) clientHost(r *http.Request) string {
	if s.trustProxy {
		if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
			// Take the RIGHTMOST hop: appending proxies add the real
			// client last, so earlier entries are client-forgeable.
			parts := strings.Split(fwd, ",")
			if host := strings.TrimSpace(parts[len(parts)-1]); host != "" {
				return host
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) withRateLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.limiter == nil { // WithRateLimit(0, _): limiting disabled
			next.ServeHTTP(w, r)
			return
		}
		if isHealthPath(r.URL.Path) || isClusterPath(r.URL.Path) {
			// Probes bypass the limiter: an orchestrator polling through
			// a shared NAT must never be throttled into flapping the
			// instance out of rotation. The cluster plane does too — a
			// follower tailing replication must not be throttled into
			// falling behind (it is token-guarded, not public).
			next.ServeHTTP(w, r)
			return
		}
		host := s.clientHost(r)
		now := time.Now()
		allowed, authenticated := false, false
		if apiKey := r.Header.Get("x-api-key"); apiKey != "" {
			if u, err := s.registry.Authenticate(apiKey); err == nil {
				authenticated = true
				allowed = allowBoth(s.limiter, "key:"+apiKey, s.aggLimiter, host, now)
				if allowed {
					// Stash the resolved user so the auth adapter
					// doesn't authenticate a second time.
					r = r.WithContext(context.WithValue(r.Context(), authUserKey, u))
				}
			}
		}
		if !authenticated {
			allowed = s.limiter.allow("ip:"+host, now)
		}
		if !allowed {
			s.metrics.rateLimit()
			s.metrics.record(routeThrottled, http.StatusTooManyRequests, 0)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, r, http.StatusTooManyRequests, v1.CodeRateLimited, "rate limit exceeded, retry later")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// --- metrics ---

// Synthetic route labels for traffic that never reaches a registered
// handler, so it still shows up in the request/error counters.
const (
	routeUnmatched = "(unmatched)"
	routeThrottled = "(rate-limited)"
)

// apiMetrics aggregates request counters per v1 route pattern; legacy
// alias traffic folds into the v1 route it aliases. Requests that miss
// every route or are throttled before dispatch are counted under the
// synthetic (unmatched) and (rate-limited) labels.
type apiMetrics struct {
	start time.Time

	mu          sync.Mutex
	requests    int64
	rateLimited int64
	panics      int64
	sheds       int64
	deadlines   int64
	routes      map[string]*routeStat
	streams     map[string]*streamStat
}

type routeStat struct {
	count    int64
	err4xx   int64
	err5xx   int64
	totalDur time.Duration
}

// streamStat tracks long-lived connections separately from routeStat:
// folding an hours-long NDJSON feed into totalDur would swamp the
// request-latency average for its route.
type streamStat struct {
	active   int64
	count    int64
	totalDur time.Duration
}

func newAPIMetrics() *apiMetrics {
	return &apiMetrics{
		start:   time.Now(),
		routes:  map[string]*routeStat{},
		streams: map[string]*streamStat{},
	}
}

func (m *apiMetrics) record(route string, status int, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	st, ok := m.routes[route]
	if !ok {
		st = &routeStat{}
		m.routes[route] = st
	}
	st.count++
	st.totalDur += dur
	switch {
	case status == statusClientClosedRequest:
		// Client aborts (long-poll disconnects) are not server errors.
	case status >= 500 || status == 0: // 0: the handler panicked mid-flight
		st.err5xx++
	case status >= 400:
		st.err4xx++
	}
}

func (m *apiMetrics) streamStart(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.streams[route]
	if !ok {
		st = &streamStat{}
		m.streams[route] = st
	}
	st.active++
}

func (m *apiMetrics) streamEnd(route string, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.streams[route]
	if !ok {
		st = &streamStat{}
		m.streams[route] = st
	}
	st.active--
	st.count++
	st.totalDur += dur
}

func (m *apiMetrics) rateLimit() {
	m.mu.Lock()
	m.rateLimited++
	m.mu.Unlock()
}

func (m *apiMetrics) panic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// shedRequest counts a request refused by the admission gate (429
// "overloaded"); deadlineTimeout counts a request answered 504 because
// its budget expired before the handler wrote anything.
func (m *apiMetrics) shedRequest() {
	m.mu.Lock()
	m.sheds++
	m.mu.Unlock()
}

func (m *apiMetrics) deadlineTimeout() {
	m.mu.Lock()
	m.deadlines++
	m.mu.Unlock()
}

// snapshot renders the counters as the v1 DTO, routes sorted by name.
func (m *apiMetrics) snapshot() v1.MetricsResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	routes := make([]v1.RouteMetrics, 0, len(m.routes))
	for route, st := range m.routes {
		avg := 0.0
		if st.count > 0 {
			avg = float64(st.totalDur.Microseconds()) / 1000 / float64(st.count)
		}
		routes = append(routes, v1.RouteMetrics{
			Route: route, Count: st.count,
			Err4xx: st.err4xx, Err5xx: st.err5xx, AvgMS: avg,
		})
	}
	sort.Slice(routes, func(i, j int) bool { return routes[i].Route < routes[j].Route })
	streams := make([]v1.StreamRouteMetrics, 0, len(m.streams))
	for route, st := range m.streams {
		avg := 0.0
		if st.count > 0 {
			avg = st.totalDur.Seconds() / float64(st.count)
		}
		streams = append(streams, v1.StreamRouteMetrics{
			Route: route, Active: st.active, Count: st.count, AvgSeconds: avg,
		})
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i].Route < streams[j].Route })
	return v1.MetricsResponse{
		Success:       true,
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests,
		RateLimited:   m.rateLimited,
		Panics:        m.panics,
		Routes:        routes,
		Streams:       streams,
		Resilience: &v1.ResilienceMetrics{
			Shed:             m.sheds,
			DeadlineTimeouts: m.deadlines,
		},
	}
}

// instrument wraps one route's handler to record per-route counters
// under the given (v1) pattern. Layering, outermost first: statusWriter
// + metrics, admission gate, deadline budget, handler — so gate 429s
// and deadline 504s are counted per route, and withDeadline can ask the
// statusWriter whether the handler wrote anything before answering 504.
func (s *Server) instrument(route string, ro routeOpts, h http.Handler) http.Handler {
	inner := s.withGate(ro, s.withDeadline(ro.effectiveBudget(), h))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			s.metrics.record(route, sw.status, time.Since(start))
		}()
		inner.ServeHTTP(sw, r)
	})
}

// instrumentStream wraps a long-lived streaming route: the request
// counter still records status and errors, but the connection's
// lifetime is accounted under stream metrics with zero request
// duration, so held-open feeds don't distort the route's latency. The
// admission gate still applies (a shed feed is cheap to retry); no
// deadline does — the connection manages its own lifetime.
func (s *Server) instrumentStream(route string, ro routeOpts, h http.Handler) http.Handler {
	inner := s.withGate(ro, h)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.metrics.streamStart(route)
		defer func() {
			dur := time.Since(start)
			s.metrics.streamEnd(route, dur)
			s.metrics.record(route, sw.status, 0)
		}()
		inner.ServeHTTP(sw, r)
	})
}
