// Package api exposes the full platform over a versioned REST API
// (paper Sec. 4.9: "all functionality is exposed via publicly accessible
// REST APIs, which allows users to automate the data collection, model
// training, and deployment processes"). Every endpoint lives under
// /api/v1 with typed request/response DTOs declared in internal/api/v1;
// the unversioned /api prefix stays routable as an alias onto the same
// v1 handlers — old paths keep working, but with v1 semantics (the
// structured error envelope, strict JSON decoding, v1 body limits,
// and default pagination on list endpoints).
// A composable middleware chain provides panic recovery,
// request IDs, structured logging, per-API-key token-bucket rate
// limiting, and request metrics (GET /api/v1/metrics). Failures use a
// structured envelope {"success":false,"error":{"code":...,"message":...}}
// with stable machine-readable codes.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/resilience"
	"edgepulse/internal/stream"
)

// Option customizes a Server.
type Option func(*Server)

// WithLogger sets the structured request logger (default: discard).
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithRateLimit overrides the per-API-key token bucket (default
// 100 req/s with a burst of 200); the aggregate per-IP ceiling scales
// with it at aggFactor×. rate == 0 disables rate limiting entirely,
// rate < 0 keeps the default, and burst <= 0 defaults to 2× the rate.
func WithRateLimit(rate float64, burst int) Option {
	return func(s *Server) {
		if rate < 0 {
			return
		}
		if rate == 0 {
			s.limiter, s.aggLimiter = nil, nil
			return
		}
		if burst <= 0 {
			burst = int(2 * rate)
			if burst < 1 {
				burst = 1
			}
		}
		s.limiter = newRateLimiter(rate, burst)
		s.aggLimiter = newRateLimiter(rate*aggFactor, burst*aggFactor)
	}
}

// Server wires the platform services behind an http.Handler.
type Server struct {
	registry *project.Registry
	sched    *jobs.Scheduler
	// results holds structured job outputs (training metrics, tuner
	// trials) keyed by the job ID minted at submission.
	results *jobs.JobStore

	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	limiter *rateLimiter
	// aggLimiter bounds each client IP's aggregate authenticated
	// traffic, since API keys are freely mintable via POST /users.
	aggLimiter *rateLimiter
	// trustProxy honors X-Forwarded-For for the client IP (opt-in,
	// only safe behind a proxy that overwrites the header).
	trustProxy bool
	metrics    *apiMetrics
	// streams manages live inference sessions (the streaming plane).
	streams *stream.Manager

	// Cluster plane: node identity (nil outside a cluster) and the
	// optional shared token guarding the replication endpoints.
	cluster      *clusterNode
	clusterToken string

	// Resilience plane: gate sheds batch/default work under load,
	// health backs /readyz, watchdog (optional) flags stuck jobs.
	gate        *resilience.Gate
	gateCfg     resilience.GateConfig
	memLimit    uint64
	health      *resilience.Health
	watchdog    *resilience.Watchdog
	watchdogCfg *resilience.WatchdogConfig
}

// WithStreamSessions caps concurrent live inference sessions across all
// projects (default stream.DefaultMaxSessions). max <= 0 keeps the
// default.
func WithStreamSessions(max int) Option {
	return func(s *Server) {
		if max > 0 {
			s.streams = stream.NewManager(max)
		}
	}
}

// WithTrustProxy keys IP rate limiting on the first X-Forwarded-For
// hop instead of the connection's RemoteAddr. Enable only behind a
// reverse proxy that sets the header itself; the header is forgeable
// from direct connections.
func WithTrustProxy() Option {
	return func(s *Server) { s.trustProxy = true }
}

// NewServer builds the API server over a registry and scheduler.
func NewServer(reg *project.Registry, sched *jobs.Scheduler, opts ...Option) *Server {
	s := &Server{
		registry:   reg,
		sched:      sched,
		results:    jobs.NewJobStore(),
		mux:        http.NewServeMux(),
		log:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		limiter:    newRateLimiter(100, 200),
		aggLimiter: newRateLimiter(100*aggFactor, 200*aggFactor),
		metrics:    newAPIMetrics(),
		streams:    stream.NewManager(stream.DefaultMaxSessions),
		health:     resilience.NewHealth(),
	}
	for _, opt := range opts {
		opt(s)
	}
	// The gate is built after options so WithGate tuning applies; its
	// sampler folds in scheduler backlog, stream sessions and (opt-in)
	// heap pressure on top of the in-flight count it tracks itself.
	if s.gateCfg.Sample == nil {
		s.gateCfg.Sample = s.sampleLoad
	}
	s.gate = resilience.NewGate(s.gateCfg)
	s.registerHealthProbes()
	if s.watchdogCfg != nil {
		cfg := *s.watchdogCfg
		cfg.OnStall = func(j *jobs.Job) {
			s.log.Warn("job stalled", "job", j.ID, "kind", j.Kind)
		}
		s.watchdog = resilience.NewWatchdog(sched, cfg)
		s.watchdog.Start()
	}
	// Release a job's stored result together with its scheduler record,
	// so neither outlives the other unreachably.
	sched.SetEvictHook(s.results.Delete)
	s.routes()
	s.handler = chain(http.HandlerFunc(s.dispatch),
		withRequestID,
		s.withLogging,
		s.withRecovery,
		s.withRateLimit,
	)
	return s
}

// dispatch routes through the mux but replaces net/http's plain-text
// 404/405 fallbacks with the structured error envelope, keeping the
// "every non-2xx response carries the envelope" contract.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	h, pattern := s.mux.Handler(r)
	if pattern == "" {
		// No matching route (404) or method mismatch (405). Run the
		// mux's fallback against a header-only recorder to learn which,
		// preserving the Allow header it computes for 405s.
		rec := &headerRecorder{header: http.Header{}}
		h.ServeHTTP(rec, r)
		if allow := rec.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		if rec.status == http.StatusMethodNotAllowed {
			s.metrics.record(routeUnmatched, http.StatusMethodNotAllowed, 0)
			s.writeError(w, r, http.StatusMethodNotAllowed, v1.CodeMethodNotAllowed,
				"method "+r.Method+" not allowed for this endpoint")
			return
		}
		s.metrics.record(routeUnmatched, http.StatusNotFound, 0)
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "no such endpoint")
		return
	}
	// Serve through the mux, not the returned handler directly: only
	// the mux's own dispatch populates r.PathValue.
	s.mux.ServeHTTP(w, r)
}

// headerRecorder captures only the status and headers a handler writes.
type headerRecorder struct {
	header http.Header
	status int
}

func (h *headerRecorder) Header() http.Header { return h.header }
func (h *headerRecorder) WriteHeader(code int) {
	if h.status == 0 {
		h.status = code
	}
}
func (h *headerRecorder) Write(b []byte) (int, error) {
	if h.status == 0 {
		h.status = http.StatusOK
	}
	return len(b), nil
}

// Handler returns the root handler with the middleware chain applied.
func (s *Server) Handler() http.Handler { return s.handler }

// Streams exposes the streaming session manager (for embedding hosts
// that want to drain it on shutdown).
func (s *Server) Streams() *stream.Manager { return s.streams }

// Drain starts graceful shutdown: readiness flips to 503 (so load
// balancers stop routing here), then live streaming sessions are closed,
// each flushing its queued frames and emitting a terminal event. Call
// before http.Server.Shutdown so held-open event feeds end gracefully.
func (s *Server) Drain(ctx context.Context) error {
	s.health.SetDraining(true)
	return s.streams.Drain(ctx)
}

// Close releases the server's background work (the stuck-job watchdog,
// when enabled). It does not drain; call Drain first for graceful
// shutdown.
func (s *Server) Close() {
	if s.watchdog != nil {
		s.watchdog.Stop()
	}
}

// Health exposes the readiness probe set, so embedding hosts can add
// probes or flip draining themselves.
func (s *Server) Health() *resilience.Health { return s.health }

// route registers a handler under both the versioned and the legacy
// prefix. pattern is "METHOD /path"; metrics for both registrations are
// keyed by the v1 pattern, so alias traffic folds into its v1 route.
// ro selects the route's admission class and deadline budget.
func (s *Server) route(pattern string, ro routeOpts, h http.HandlerFunc) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("api: route pattern must be \"METHOD /path\": " + pattern)
	}
	v1pat := method + " " + v1.Prefix + path
	s.mux.Handle(v1pat, s.instrument(v1pat, ro, h))
	s.mux.Handle(method+" "+v1.LegacyPrefix+path, s.instrument(v1pat, ro, h))
}

// routeStream registers a long-lived NDJSON route: connection lifetime
// is tracked under stream metrics instead of request latency, and no
// deadline budget applies — the connection manages its own lifetime.
func (s *Server) routeStream(pattern string, ro routeOpts, h http.HandlerFunc) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("api: route pattern must be \"METHOD /path\": " + pattern)
	}
	ro.noDeadline = true
	v1pat := method + " " + v1.Prefix + path
	s.mux.Handle(v1pat, s.instrumentStream(v1pat, ro, h))
	s.mux.Handle(method+" "+v1.LegacyPrefix+path, s.instrumentStream(v1pat, ro, h))
}

func (s *Server) routes() {
	// Liveness/readiness: unauthenticated, exempt from the gate (and
	// rate limiting — see withRateLimit) so probes keep answering while
	// the server sheds load.
	probe := routeOpts{class: resilience.ClassInteractive, exempt: true, budget: 5 * time.Second}
	s.route("GET /healthz", probe, s.handleHealthz)
	s.route("GET /readyz", probe, s.handleReadyz)

	// Unauthenticated bootstrap + discovery.
	s.route("POST /users", defaultOpts, s.handleCreateUser)
	s.route("GET /devices", defaultOpts, s.handleDevices)
	s.route("GET /blocks", defaultOpts, s.handleBlocks)
	s.route("GET /projects/public", defaultOpts, s.handlePublicProjects)

	// Operational counters expose route/error/load internals, so they
	// require an API key like every other non-bootstrap endpoint.
	// Interactive class: operators must see metrics during overload.
	s.route("GET /metrics", interactive, s.auth(s.handleMetrics))

	// Authenticated project APIs.
	s.route("POST /projects", defaultOpts, s.auth(s.handleCreateProject))
	s.route("GET /projects", defaultOpts, s.auth(s.handleListProjects))
	s.route("GET /projects/{id}", defaultOpts, s.auth(s.withProject(s.handleGetProject)))
	s.route("POST /projects/{id}/public", defaultOpts, s.auth(s.withProject(s.handleSetPublic)))
	s.route("POST /projects/{id}/collaborators", defaultOpts, s.auth(s.withProject(s.handleAddCollaborator)))

	s.route("POST /projects/{id}/data", routeOpts{budget: budgetUpload}, s.auth(s.withProject(s.handleUploadData)))
	s.route("GET /projects/{id}/data", defaultOpts, s.auth(s.withProject(s.handleListData)))
	s.route("DELETE /projects/{id}/data/{sample}", defaultOpts, s.auth(s.withProject(s.handleDeleteSample)))
	s.route("POST /projects/{id}/rebalance", defaultOpts, s.auth(s.withProject(s.handleRebalance)))

	s.route("POST /projects/{id}/impulse", defaultOpts, s.auth(s.withProject(s.handleSetImpulse)))
	s.route("GET /projects/{id}/impulse", defaultOpts, s.auth(s.withProject(s.handleGetImpulse)))

	// Training submits async work (default class); the tuner's long
	// sweeps are batch class — first to shed under pressure. Classify is
	// the interactive hot path the gate must never refuse.
	s.route("POST /projects/{id}/train", defaultOpts, s.auth(s.withProject(s.handleTrain)))
	s.route("POST /projects/{id}/tuner", batch, s.auth(s.withProject(s.handleTuner)))
	s.route("POST /projects/{id}/classify", interactive, s.auth(s.withProject(s.handleClassify)))
	s.route("POST /projects/{id}/classify/batch", interactive, s.auth(s.withProject(s.handleClassifyBatch)))
	s.route("GET /projects/{id}/deployment", defaultOpts, s.auth(s.withProject(s.handleDeployment)))
	s.route("GET /projects/{id}/profile", defaultOpts, s.auth(s.withProject(s.handleProfile)))

	s.route("POST /projects/{id}/versions", batch, s.auth(s.withProject(s.handleSnapshot)))
	s.route("GET /projects/{id}/versions", defaultOpts, s.auth(s.withProject(s.handleVersions)))

	// Live streaming inference sessions: interactive, a device is
	// holding an open feed.
	s.route("POST /projects/{id}/stream", interactive, s.auth(s.withProject(s.handleStreamOpen)))
	s.route("POST /projects/{id}/stream/{sid}/frames", interactive, s.auth(s.withProject(s.handleStreamPush)))
	s.routeStream("GET /projects/{id}/stream/{sid}/events", interactive, s.auth(s.withProject(s.handleStreamEvents)))
	s.route("DELETE /projects/{id}/stream/{sid}", interactive, s.auth(s.withProject(s.handleStreamClose)))
	s.routeStream("POST /projects/{id}/stream/duplex", interactive, s.auth(s.withProject(s.handleStreamDuplex)))

	// Cluster plane (no-op outside a cluster).
	s.clusterRoutes()

	s.route("GET /jobs/{job}", defaultOpts, s.auth(s.handleGetJob))
	s.route("GET /jobs/{job}/wait", routeOpts{budget: budgetWait}, s.auth(s.handleJobWait))
	s.route("GET /jobs/{job}/result", defaultOpts, s.auth(s.handleJobResult))
	s.routeStream("GET /jobs/{job}/events", defaultOpts, s.auth(s.handleJobEvents))
	s.route("DELETE /jobs/{job}", defaultOpts, s.auth(s.handleCancelJob))
}

// userHandler receives the authenticated user.
type userHandler func(w http.ResponseWriter, r *http.Request, u *project.User)

// auth resolves the x-api-key header to a user, reusing the identity
// the rate-limit middleware already resolved when available.
func (s *Server) auth(next userHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if u, ok := r.Context().Value(authUserKey).(*project.User); ok {
			next(w, r, u)
			return
		}
		key := r.Header.Get("x-api-key")
		if key == "" {
			s.writeError(w, r, http.StatusUnauthorized, v1.CodeUnauthorized, "missing x-api-key header")
			return
		}
		u, err := s.registry.Authenticate(key)
		if err != nil {
			s.writeError(w, r, http.StatusUnauthorized, v1.CodeUnauthorized, "invalid API key")
			return
		}
		next(w, r, u)
	}
}

// projectHandler receives the authorized project.
type projectHandler func(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project)

// withProject resolves {id} and enforces access control.
func (s *Server) withProject(next projectHandler) userHandler {
	return func(w http.ResponseWriter, r *http.Request, u *project.User) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "bad project id")
			return
		}
		p, err := s.registry.GetProject(id)
		if err != nil {
			s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, err.Error())
			return
		}
		if !p.CanAccess(u.ID) {
			s.writeError(w, r, http.StatusForbidden, v1.CodeForbidden, "no access to this project")
			return
		}
		next(w, r, u, p)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the structured error envelope with a stable code and
// the request's correlation ID.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, v1.ErrorResponse{
		Success: false,
		Error:   v1.ErrorDetail{Code: code, Message: msg, RequestID: RequestID(r.Context())},
	})
}

// badRequest classifies a body-decoding failure: oversized payloads get
// 413/payload_too_large, everything else 400/bad_request.
func (s *Server) badRequest(w http.ResponseWriter, r *http.Request, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		s.writeError(w, r, http.StatusRequestEntityTooLarge, v1.CodePayloadTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		return
	}
	s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
}

// Body bounds: structured JSON requests are small; raw sample payloads
// and classify feature windows (image impulses reach megabytes of JSON)
// get the large bound.
const (
	maxJSONBody = 1 << 20
	maxDataBody = 64 << 20
)

// statusClientClosedRequest mirrors nginx's 499: the client went away
// before a response was written (normal for long-poll endpoints); the
// metrics layer excludes it from error counts.
const statusClientClosedRequest = 499

// decodeBody strictly decodes a JSON request body: unknown fields are
// rejected so typos fail loudly instead of silently defaulting, and the
// reader is bounded so an oversized body surfaces as *http.MaxBytesError
// (mapped to 413 by badRequest) instead of being read to completion.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return decodeBodyLimit(w, r, v, maxJSONBody)
}

func decodeBodyLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// pageParams reads limit/offset query parameters. limit defaults to
// defLimit and is capped at maxLimit; offset defaults to 0.
func pageParams(r *http.Request, defLimit, maxLimit int) (limit, offset int, err error) {
	limit = defLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit <= 0 {
			return 0, 0, fmt.Errorf("limit must be a positive integer")
		}
		if limit > maxLimit {
			limit = maxLimit
		}
	}
	if raw := r.URL.Query().Get("offset"); raw != "" {
		offset, err = strconv.Atoi(raw)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("offset must be a non-negative integer")
		}
	}
	return limit, offset, nil
}

// paginate slices items to the requested window and reports the applied
// page. An empty window yields a nil slice (marshals as null).
func paginate[T any](items []T, limit, offset int) ([]T, v1.Page) {
	page := v1.Page{Limit: limit, Offset: offset, Total: len(items)}
	if offset >= len(items) {
		return nil, page
	}
	end := offset + limit
	if end > len(items) {
		end = len(items)
	}
	return items[offset:end], page
}
