// Package api exposes the full platform over a REST API (paper Sec. 4.9:
// "all functionality is exposed via publicly accessible REST APIs, which
// allows users to automate the data collection, model training, and
// deployment processes"). The server fronts the project registry, the
// dataset/ingestion pipeline, training and tuner jobs on the autoscaling
// scheduler, and deployment artifact generation.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

// Server wires the platform services behind an http.Handler.
type Server struct {
	registry *project.Registry
	sched    *jobs.Scheduler
	mux      *http.ServeMux

	// results holds structured job outputs (training metrics, tuner
	// trials) keyed by job ID.
	results sync.Map
}

// NewServer builds the API server over a registry and scheduler.
func NewServer(reg *project.Registry, sched *jobs.Scheduler) *Server {
	s := &Server{registry: reg, sched: sched, mux: http.NewServeMux()}
	s.routes()
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	// Unauthenticated bootstrap + discovery.
	s.mux.HandleFunc("POST /api/users", s.handleCreateUser)
	s.mux.HandleFunc("GET /api/devices", s.handleDevices)
	s.mux.HandleFunc("GET /api/projects/public", s.handlePublicProjects)

	// Authenticated project APIs.
	s.mux.HandleFunc("POST /api/projects", s.auth(s.handleCreateProject))
	s.mux.HandleFunc("GET /api/projects", s.auth(s.handleListProjects))
	s.mux.HandleFunc("GET /api/projects/{id}", s.auth(s.withProject(s.handleGetProject)))
	s.mux.HandleFunc("POST /api/projects/{id}/public", s.auth(s.withProject(s.handleSetPublic)))
	s.mux.HandleFunc("POST /api/projects/{id}/collaborators", s.auth(s.withProject(s.handleAddCollaborator)))

	s.mux.HandleFunc("POST /api/projects/{id}/data", s.auth(s.withProject(s.handleUploadData)))
	s.mux.HandleFunc("GET /api/projects/{id}/data", s.auth(s.withProject(s.handleListData)))
	s.mux.HandleFunc("DELETE /api/projects/{id}/data/{sample}", s.auth(s.withProject(s.handleDeleteSample)))
	s.mux.HandleFunc("POST /api/projects/{id}/rebalance", s.auth(s.withProject(s.handleRebalance)))

	s.mux.HandleFunc("POST /api/projects/{id}/impulse", s.auth(s.withProject(s.handleSetImpulse)))
	s.mux.HandleFunc("GET /api/projects/{id}/impulse", s.auth(s.withProject(s.handleGetImpulse)))

	s.mux.HandleFunc("POST /api/projects/{id}/train", s.auth(s.withProject(s.handleTrain)))
	s.mux.HandleFunc("POST /api/projects/{id}/tuner", s.auth(s.withProject(s.handleTuner)))
	s.mux.HandleFunc("POST /api/projects/{id}/classify", s.auth(s.withProject(s.handleClassify)))
	s.mux.HandleFunc("GET /api/projects/{id}/deployment", s.auth(s.withProject(s.handleDeployment)))
	s.mux.HandleFunc("GET /api/projects/{id}/profile", s.auth(s.withProject(s.handleProfile)))

	s.mux.HandleFunc("POST /api/projects/{id}/versions", s.auth(s.withProject(s.handleSnapshot)))
	s.mux.HandleFunc("GET /api/projects/{id}/versions", s.auth(s.withProject(s.handleVersions)))

	s.mux.HandleFunc("GET /api/jobs/{job}", s.auth(s.handleGetJob))
	s.mux.HandleFunc("GET /api/jobs/{job}/result", s.auth(s.handleJobResult))
}

// userHandler receives the authenticated user.
type userHandler func(w http.ResponseWriter, r *http.Request, u *project.User)

// auth resolves the x-api-key header to a user.
func (s *Server) auth(next userHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("x-api-key")
		if key == "" {
			writeErr(w, http.StatusUnauthorized, "missing x-api-key header")
			return
		}
		u, err := s.registry.Authenticate(key)
		if err != nil {
			writeErr(w, http.StatusUnauthorized, "invalid API key")
			return
		}
		next(w, r, u)
	}
}

// projectHandler receives the authorized project.
type projectHandler func(w http.ResponseWriter, r *http.Request, u *project.User, p *project.Project)

// withProject resolves {id} and enforces access control.
func (s *Server) withProject(next projectHandler) userHandler {
	return func(w http.ResponseWriter, r *http.Request, u *project.User) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad project id")
			return
		}
		p, err := s.registry.GetProject(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		if !p.CanAccess(u.ID) {
			writeErr(w, http.StatusForbidden, "no access to this project")
			return
		}
		next(w, r, u, p)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"success": false, "error": msg})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}
