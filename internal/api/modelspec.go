package api

import (
	"context"
	"fmt"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/jobs"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
	"edgepulse/internal/trainer"
)

// buildModel constructs the architecture a v1.ModelSpec requests — the
// "visual editor" presets of paper Sec. 4.3, addressed by name.
func buildModel(spec v1.ModelSpec, shape tensor.Shape, classes int) (*nn.Model, error) {
	switch spec.Type {
	case "conv1d", "":
		if len(shape) != 2 {
			return nil, fmt.Errorf("api: conv1d needs 2-D features, have %v", shape)
		}
		depth := spec.Depth
		if depth <= 0 {
			depth = 2
		}
		start := spec.StartFilters
		if start <= 0 {
			start = 16
		}
		end := spec.EndFilters
		if end <= 0 {
			end = start * 2
		}
		return models.Conv1DStack(shape[0], shape[1], depth, start, end, classes)
	case "dscnn":
		if len(shape) != 2 {
			return nil, fmt.Errorf("api: dscnn needs 2-D features, have %v", shape)
		}
		return models.KWSDSCNN(shape[0], shape[1], classes), nil
	case "mlp":
		hidden := spec.Hidden
		if hidden <= 0 {
			hidden = 32
		}
		return models.TinyMLP(shape.Elems(), hidden, classes), nil
	case "cnn2d":
		if len(shape) != 3 || shape[0] != shape[1] {
			return nil, fmt.Errorf("api: cnn2d needs square [H W C] features, have %v", shape)
		}
		return models.CIFARCNN(shape[0], shape[2], classes), nil
	case "mobilenetv1":
		if len(shape) != 3 || shape[0] != shape[1] {
			return nil, fmt.Errorf("api: mobilenetv1 needs square [H W C] features, have %v", shape)
		}
		alpha := float64(spec.AlphaPercent) / 100
		if alpha <= 0 {
			alpha = 0.25
		}
		return models.VWWMobileNetV1(shape[0], shape[2], alpha, classes), nil
	default:
		return nil, fmt.Errorf("api: unknown model type %q", spec.Type)
	}
}

// trainImpulse performs the body of a training job: build the model,
// train, evaluate, optionally quantize. The job context is observed
// between training batches (a cancelled job stops mid-epoch) and
// between the later stages, so a cancel acknowledged by the API is
// never silently completed; real progress streams through
// job.SetProgress.
func trainImpulse(ctx context.Context, imp *core.Impulse, ds *data.Dataset, req v1.TrainRequest, job *jobs.Job) (*v1.TrainResult, error) {
	// The model consumes the classification learn block's feature view
	// (the composite vector, or the declared subset of DSP outputs).
	job.SetProgress("build", 0)
	shape, err := imp.ClassifierShape()
	if err != nil {
		return nil, err
	}
	model, err := buildModel(req.Model, shape, len(imp.Classes))
	if err != nil {
		return nil, err
	}
	if err := nn.InitWeights(model, req.Seed); err != nil {
		return nil, err
	}
	if err := imp.AttachClassifier(model); err != nil {
		return nil, err
	}
	job.Logf("training %s on %d samples", models.Describe(model), ds.Len())
	job.SetProgress("train", 0)
	res, err := imp.Train(ds, trainer.Config{
		Ctx:          ctx,
		Epochs:       req.Epochs,
		LearningRate: req.LearningRate,
		Seed:         req.Seed,
		RestoreBest:  true,
		Progress: func(epoch, total int) {
			job.SetProgress("train", 100*float64(epoch)/float64(total))
		},
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	job.SetProgress("evaluate", 0)
	acc, conf, err := imp.Evaluate(ds, data.Testing)
	if err != nil {
		return nil, err
	}
	job.Logf("test accuracy %.3f", acc)
	out := &v1.TrainResult{
		Accuracy:     acc,
		Confusion:    conf,
		F1:           trainer.F1Scores(conf),
		Classes:      imp.Classes,
		LearningRate: res.LearningRate,
		TrainLoss:    res.TrainLoss,
	}
	if req.Quantize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		job.SetProgress("quantize", 0)
		if err := imp.Quantize(ds); err != nil {
			return nil, err
		}
		out.Quantized = true
		job.Logf("quantized to int8")
	}
	// A declared anomaly learn block trains alongside the classifier,
	// on its own feature view (clusters come from the block's params).
	if spec, ok := imp.AnomalySpec(); ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		job.SetProgress("anomaly", 0)
		if err := imp.TrainAnomaly(ds, 0, req.Seed); err != nil {
			return nil, fmt.Errorf("anomaly block %q: %w", spec.Name, err)
		}
		out.AnomalyTrained = true
		job.Logf("anomaly block %q fitted (%d clusters)", spec.Name, len(imp.Anomaly.Centroids))
	}
	return out, nil
}
