package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

// decodeErr decodes the structured error envelope.
func decodeErr(t *testing.T, raw []byte) v1.ErrorResponse {
	t.Helper()
	var out v1.ErrorResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad error envelope %q: %v", raw, err)
	}
	return out
}

func TestAuthFailureEnvelope(t *testing.T) {
	e := newEnv(t)
	for _, tc := range []struct {
		key  string
		want string
	}{
		{"", "missing x-api-key header"},
		{"bogus", "invalid API key"},
	} {
		resp, raw := e.doRaw("GET", "/api/v1/projects", tc.key, nil, "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("status %d", resp.StatusCode)
		}
		env := decodeErr(t, raw)
		if env.Success || env.Error.Code != v1.CodeUnauthorized {
			t.Fatalf("envelope: %+v", env)
		}
		if env.Error.Message != tc.want {
			t.Fatalf("message %q, want %q", env.Error.Message, tc.want)
		}
		if env.Error.RequestID == "" {
			t.Fatal("error envelope lacks request id")
		}
	}
}

func TestRateLimit429(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	// 1 token/s with a burst of 2: the third immediate request must 429.
	// Only authenticated keys get their own bucket, so mint real users.
	userA, err := reg.CreateUser("a")
	if err != nil {
		t.Fatal(err)
	}
	userB, err := reg.CreateUser("b")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg, sched, WithRateLimit(1, 2)).Handler())
	t.Cleanup(srv.Close)

	status := func(key string) int {
		req, _ := http.NewRequest("GET", srv.URL+"/api/v1/devices", nil)
		if key != "" {
			req.Header.Set("x-api-key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			var env v1.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != v1.CodeRateLimited {
				t.Fatalf("429 envelope: %+v err=%v", env, err)
			}
		}
		return resp.StatusCode
	}
	if got := status(userA.APIKey); got != http.StatusOK {
		t.Fatalf("first request: %d", got)
	}
	if got := status(userA.APIKey); got != http.StatusOK {
		t.Fatalf("second request: %d", got)
	}
	if got := status(userA.APIKey); got != http.StatusTooManyRequests {
		t.Fatalf("third request: %d, want 429", got)
	}
	// A different authenticated key has its own bucket.
	if got := status(userB.APIKey); got != http.StatusOK {
		t.Fatalf("other key: %d", got)
	}
	// Invalid keys share the client IP's bucket: rotating random keys
	// cannot mint fresh burst allowances.
	if got := status("bogus-1"); got != http.StatusOK {
		t.Fatalf("first bogus key: %d", got)
	}
	if got := status("bogus-2"); got != http.StatusOK {
		t.Fatalf("second bogus key: %d", got)
	}
	if got := status("bogus-3"); got != http.StatusTooManyRequests {
		t.Fatalf("rotated bogus key: %d, want 429 (fresh bucket per bogus key?)", got)
	}
}

func TestPanicRecoveryEnvelope(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	s := NewServer(reg, sched)
	s.mux.Handle("GET /api/v1/boom", s.instrument("GET /api/v1/boom", defaultOpts, http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { panic("kaboom") })))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/api/v1/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var env v1.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Success || env.Error.Code != v1.CodeInternal {
		t.Fatalf("envelope: %+v", env)
	}
	snap := s.metrics.snapshot()
	if snap.Panics != 1 {
		t.Fatalf("panics counter %d", snap.Panics)
	}
	// The panicked request is recorded as a 5xx on its route.
	for _, rt := range snap.Routes {
		if rt.Route == "GET /api/v1/boom" && rt.Err5xx != 1 {
			t.Fatalf("route stats: %+v", rt)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	e := newEnv(t)
	// A server-minted ID is returned on every response.
	resp, _ := e.doRaw("GET", "/api/v1/devices", "", nil, "")
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("no X-Request-Id on response")
	}
	// A caller-provided ID is echoed and lands in the error envelope.
	req, _ := http.NewRequest("GET", e.server.URL+"/api/v1/projects", nil)
	req.Header.Set(RequestIDHeader, "trace-1234")
	got, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	if id := got.Header.Get(RequestIDHeader); id != "trace-1234" {
		t.Fatalf("echoed id %q", id)
	}
	var env v1.ErrorResponse
	if err := json.NewDecoder(got.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RequestID != "trace-1234" {
		t.Fatalf("envelope request id %q", env.Error.RequestID)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	e := newEnv(t)
	e.expectStatus("GET", "/api/v1/devices", "", nil, http.StatusOK)
	e.expectStatus("GET", "/api/devices", "", nil, http.StatusOK) // legacy alias folds into v1 route
	e.expectStatus("GET", "/api/v1/projects", "", nil, http.StatusUnauthorized)

	// Metrics expose operational internals and require auth.
	e.expectStatus("GET", "/api/v1/metrics", "", nil, http.StatusUnauthorized)
	resp, raw := e.doRaw("GET", "/api/v1/metrics", e.apiKey, nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var m v1.MetricsResponse
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Success || m.Requests < 3 {
		t.Fatalf("metrics: %+v", m)
	}
	byRoute := map[string]v1.RouteMetrics{}
	for _, rt := range m.Routes {
		byRoute[rt.Route] = rt
	}
	if got := byRoute["GET /api/v1/devices"]; got.Count != 2 {
		t.Fatalf("devices route count %d (legacy alias not folded?)", got.Count)
	}
	if got := byRoute["GET /api/v1/projects"]; got.Err4xx != 1 {
		t.Fatalf("projects route: %+v", got)
	}
	if m.Scheduler.Workers < 1 {
		t.Fatalf("scheduler metrics: %+v", m.Scheduler)
	}
	// Requests that match no route still surface in the counters.
	e.expectStatus("GET", "/api/v1/nope", "", nil, http.StatusNotFound)
	_, raw = e.doRaw("GET", "/api/v1/metrics", e.apiKey, nil, "")
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rt := range m.Routes {
		if rt.Route == routeUnmatched && rt.Err4xx >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("unmatched traffic missing from metrics: %+v", m.Routes)
	}
}

func TestUnknownJSONFieldRejected(t *testing.T) {
	e := newEnv(t)
	resp, raw := e.doRaw("POST", "/api/v1/projects", e.apiKey,
		[]byte(`{"name":"p","namme":"typo"}`), "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d %s", resp.StatusCode, raw)
	}
	if env := decodeErr(t, raw); env.Error.Code != v1.CodeBadRequest {
		t.Fatalf("envelope: %+v", env)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	e := newEnv(t)
	// Valid JSON that only exceeds the limit mid-stream, so the decoder
	// hits the MaxBytesReader rather than a syntax error.
	name := make([]byte, maxJSONBody+1024)
	for i := range name {
		name[i] = 'x'
	}
	big := []byte(`{"name":"` + string(name) + `"}`)
	resp, raw := e.doRaw("POST", "/api/v1/projects", e.apiKey, big, "application/json")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s", resp.StatusCode, raw[:min(len(raw), 200)])
	}
	if env := decodeErr(t, raw); env.Error.Code != v1.CodePayloadTooLarge {
		t.Fatalf("envelope: %+v", env)
	}
}

func TestProjectListPagination(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 5; i++ {
		e.expectStatus("POST", "/api/v1/projects", e.apiKey,
			map[string]any{"name": fmt.Sprintf("p%d", i)}, http.StatusCreated)
	}
	resp, raw := e.doRaw("GET", "/api/v1/projects?limit=2&offset=1", e.apiKey, nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d %s", resp.StatusCode, raw)
	}
	var out v1.ProjectsResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Projects) != 2 || out.Total != 5 || out.Limit != 2 || out.Offset != 1 {
		t.Fatalf("page: %+v", out)
	}
	if out.Projects[0].Name != "p1" || out.Projects[1].Name != "p2" {
		t.Fatalf("window: %+v", out.Projects)
	}
	// Offset past the end yields an empty window, not an error.
	resp, raw = e.doRaw("GET", "/api/v1/projects?offset=99", e.apiKey, nil, "")
	json.Unmarshal(raw, &out)
	if resp.StatusCode != http.StatusOK || len(out.Projects) != 0 || out.Total != 5 {
		t.Fatalf("past-end page: %d %+v", resp.StatusCode, out)
	}
	// Bad parameters are rejected.
	e.expectStatus("GET", "/api/v1/projects?limit=0", e.apiKey, nil, http.StatusBadRequest)
	e.expectStatus("GET", "/api/v1/projects?limit=abc", e.apiKey, nil, http.StatusBadRequest)
	e.expectStatus("GET", "/api/v1/projects?offset=-1", e.apiKey, nil, http.StatusBadRequest)
}

func TestDataListPagination(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/v1/projects", e.apiKey, map[string]any{"name": "p"}, http.StatusCreated)
	id := int(created["id"].(float64))
	for i := 0; i < 4; i++ {
		csv := "timestamp,ax\n0,1.0\n10,2.0\n"
		path := fmt.Sprintf("/api/v1/projects/%d/data?label=walk&name=s%d&format=csv", id, i)
		resp, raw := e.doRaw("POST", path, e.apiKey, []byte(csv), "text/csv")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload: %d %s", resp.StatusCode, raw)
		}
	}
	resp, raw := e.doRaw("GET", fmt.Sprintf("/api/v1/projects/%d/data?limit=3", id), e.apiKey, nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d %s", resp.StatusCode, raw)
	}
	var out v1.ListDataResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 3 || out.Total != 4 {
		t.Fatalf("page: got %d samples, total %d", len(out.Samples), out.Total)
	}
	if len(out.Stats) == 0 || out.Version == "" {
		t.Fatalf("stats/version missing: %+v", out)
	}
}

func TestLegacyAliasParity(t *testing.T) {
	e := newEnv(t)
	for _, path := range []string{"/devices", "/projects/public"} {
		legacy, legacyRaw := e.doRaw("GET", "/api"+path, "", nil, "")
		v1resp, v1Raw := e.doRaw("GET", "/api/v1"+path, "", nil, "")
		if legacy.StatusCode != v1resp.StatusCode {
			t.Fatalf("%s: legacy %d, v1 %d", path, legacy.StatusCode, v1resp.StatusCode)
		}
		if string(legacyRaw) != string(v1Raw) {
			t.Fatalf("%s: legacy %s != v1 %s", path, legacyRaw, v1Raw)
		}
	}
}

func TestJobWaitLongPoll(t *testing.T) {
	e := newEnv(t)
	release := make(chan struct{})
	job, err := e.sched.Submit("training", func(ctx context.Context, j *jobs.Job) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Short poll on a running job returns done=false.
	out := e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/wait?timeout_ms=50", e.apiKey, nil, http.StatusOK)
	if out["done"] != false {
		t.Fatalf("running job reported done: %v", out)
	}
	// Release mid-poll: the long poll returns done=true well before the
	// timeout instead of busy-waiting.
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	start := time.Now()
	out = e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/wait?timeout_ms=10000", e.apiKey, nil, http.StatusOK)
	if out["done"] != true || out["status"] != "finished" {
		t.Fatalf("wait result: %v", out)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("long poll did not return promptly after completion")
	}
	// Unknown job and bad timeout.
	e.expectStatus("GET", "/api/v1/jobs/job-999/wait", e.apiKey, nil, http.StatusNotFound)
	e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/wait?timeout_ms=nope", e.apiKey, nil, http.StatusBadRequest)
}

func TestRateLimitDisabled(t *testing.T) {
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(sched.Shutdown)
	srv := httptest.NewServer(NewServer(reg, sched, WithRateLimit(0, 0)).Handler())
	t.Cleanup(srv.Close)
	for i := 0; i < 50; i++ {
		resp, err := http.Get(srv.URL + "/api/v1/devices")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d with limiting disabled", i, resp.StatusCode)
		}
	}
}

func TestRateLimiterChurnResistance(t *testing.T) {
	rl := newRateLimiter(1, 1) // burst 1: a single request exhausts a bucket
	now := time.Now()
	// Fill the map to the cap with throttled buckets.
	for i := 0; i < maxBuckets; i++ {
		if !rl.allow(fmt.Sprintf("k%d", i), now) {
			t.Fatalf("key %d denied on first request", i)
		}
	}
	// A brand-new key cannot mint a fresh burst by churning: with only
	// exhausted buckets to evict, the limiter fails closed.
	if rl.allow("newcomer", now) {
		t.Fatal("newcomer admitted while map is full of throttled buckets")
	}
	// Existing throttled keys stay throttled — their buckets survived.
	if rl.allow("k0", now) {
		t.Fatal("throttled key regained tokens")
	}
	// Once buckets refill, pruning frees slots and newcomers are admitted.
	later := now.Add(2 * time.Second)
	if !rl.allow("newcomer", later) {
		t.Fatal("newcomer denied after refill window")
	}
}

func TestJobAccessControl(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/v1/projects", e.apiKey, map[string]any{"name": "private"}, http.StatusCreated)
	id := int(created["id"].(float64))
	// A tuner job only needs an impulse, so it is the cheapest way to
	// mint a job tied to this project over the API.
	impulse := map[string]any{
		"name":     "p",
		"input":    map[string]any{"kind": "time-series", "window_ms": 100, "frequency_hz": 100, "axes": 1},
		"dsp_name": "raw",
	}
	e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/impulse", id), e.apiKey, impulse, http.StatusOK)
	csv := "timestamp,ax\n0,1.0\n10,2.0\n"
	resp, raw := e.doRaw("POST", fmt.Sprintf("/api/v1/projects/%d/data?label=l&format=csv", id), e.apiKey, []byte(csv), "text/csv")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, raw)
	}
	accepted := e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/tuner", id), e.apiKey,
		map[string]any{"max_trials": 1, "epochs": 1}, http.StatusAccepted)
	jobID := accepted["job_id"].(string)

	// A different user (valid key, no project access) must not see the
	// job — 404, not 403, so guessing sequential IDs confirms nothing.
	other := e.do("POST", "/api/v1/users", "", map[string]any{"name": "snoop"})
	otherKey := other["api_key"].(string)
	for _, path := range []string{
		"/api/v1/jobs/" + jobID,
		"/api/v1/jobs/" + jobID + "/wait?timeout_ms=50",
		"/api/v1/jobs/" + jobID + "/result",
	} {
		e.expectStatus("GET", path, otherKey, nil, http.StatusNotFound)
	}
	// The owner still sees it.
	e.expectStatus("GET", "/api/v1/jobs/"+jobID, e.apiKey, nil, http.StatusOK)
	// A collaborator gains access with the project.
	e.expectStatus("POST", fmt.Sprintf("/api/v1/projects/%d/collaborators", id), e.apiKey,
		map[string]any{"user_id": other["id"]}, http.StatusOK)
	e.expectStatus("GET", "/api/v1/jobs/"+jobID, otherKey, nil, http.StatusOK)
}

func TestJobWaitTimeoutOverflow(t *testing.T) {
	e := newEnv(t)
	release := make(chan struct{})
	defer close(release)
	job, err := e.sched.Submit("slow", func(ctx context.Context, j *jobs.Job) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A huge timeout_ms must clamp to the max wait, not overflow into a
	// negative duration that returns immediately. Clamped max is 120s,
	// so observe that the call does NOT return within ~200ms.
	start := time.Now()
	done := make(chan map[string]any, 1)
	go func() {
		done <- e.expectStatus("GET", "/api/v1/jobs/"+job.ID+"/wait?timeout_ms=10000000000000", e.apiKey, nil, http.StatusOK)
	}()
	select {
	case <-done:
		t.Fatalf("overflowed timeout returned immediately after %v", time.Since(start))
	case <-time.After(200 * time.Millisecond):
		// Still waiting — the clamp worked. Release the job so the
		// long poll completes promptly.
	}
	release <- struct{}{}
	out := <-done
	if out["done"] != true {
		t.Fatalf("wait result: %v", out)
	}
}

func TestUnmatchedRouteEnvelope(t *testing.T) {
	e := newEnv(t)
	// Unknown path: JSON envelope, not net/http's plain-text 404.
	resp, raw := e.doRaw("GET", "/api/v1/nonexistent", "", nil, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if env := decodeErr(t, raw); env.Error.Code != v1.CodeNotFound {
		t.Fatalf("envelope: %+v (%s)", env, raw)
	}
	// Wrong method on a real route: 405 envelope with Allow preserved.
	resp, raw = e.doRaw("PUT", "/api/v1/devices", "", nil, "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Allow") == "" {
		t.Fatal("405 without Allow header")
	}
	if env := decodeErr(t, raw); env.Error.Code != v1.CodeMethodNotAllowed {
		t.Fatalf("envelope: %+v (%s)", env, raw)
	}
}
