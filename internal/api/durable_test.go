package api

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

// TestUploadsPersistAcrossRestart drives the REST ingestion endpoint
// against a durable (store-backed) registry, "crashes" the server
// without any Save, and verifies a second server over the same
// directory lists every acknowledged sample with the same dataset
// version — the end-to-end incremental-persistence contract.
func TestUploadsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	boot := func(reg *project.Registry) (*testEnv, func()) {
		sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 2, ScaleInterval: 10 * time.Millisecond})
		srv := httptest.NewServer(NewServer(reg, sched).Handler())
		env := &testEnv{t: t, server: srv, sched: sched}
		return env, func() { srv.Close(); sched.Shutdown() }
	}

	reg, err := project.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	env, shutdown := boot(reg)
	boot0 := env.do("POST", "/api/v1/users", "", map[string]any{"name": "tester"})
	env.apiKey = boot0["api_key"].(string)
	created := env.do("POST", "/api/v1/projects", env.apiKey, map[string]any{"name": "durable"})
	projID := int(created["id"].(float64))
	hmacKey := created["hmac_key"].(string)

	for i := 0; i < 3; i++ {
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "dev", DeviceType: "TEST", IntervalMS: 10,
			Sensors: []ingest.Sensor{{Name: "x", Units: "g"}},
			Values:  [][]float64{{float64(i)}, {float64(i + 1)}, {float64(i + 2)}},
		}, hmacKey, 1670000000)
		if err != nil {
			t.Fatal(err)
		}
		resp, raw := env.doRaw("POST", fmt.Sprintf("/api/v1/projects/%d/data?label=l%d", projID, i), env.apiKey, doc, "application/json")
		if resp.StatusCode != 201 {
			t.Fatalf("upload %d: %d %s", i, resp.StatusCode, raw)
		}
	}
	list := env.do("GET", fmt.Sprintf("/api/v1/projects/%d/data", projID), env.apiKey, nil)
	version := list["version"].(string)
	apiKey := env.apiKey
	// Persist registry metadata (users/keys) once; sample data needs no
	// save. Then crash: no Close, no further writes.
	if err := reg.Save(dir); err != nil {
		t.Fatal(err)
	}
	shutdown()

	reg2, err := project.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	env2, shutdown2 := boot(reg2)
	defer shutdown2()
	env2.apiKey = apiKey
	list2 := env2.do("GET", fmt.Sprintf("/api/v1/projects/%d/data", projID), env2.apiKey, nil)
	if list2["version"] != version {
		t.Fatalf("dataset version %v != %v across restart", list2["version"], version)
	}
	samples := list2["samples"].([]any)
	if len(samples) != 3 {
		t.Fatalf("%d samples after restart, want 3", len(samples))
	}
}
