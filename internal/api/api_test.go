package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/core"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/synth"
)

// testEnv spins up the full API over httptest.
type testEnv struct {
	t      *testing.T
	server *httptest.Server
	apiKey string
	sched  *jobs.Scheduler
	reg    *project.Registry
}

func newEnv(t *testing.T) *testEnv {
	return newEnvWith(t, jobs.Config{MinWorkers: 2, MaxWorkers: 4, ScaleInterval: 10 * time.Millisecond})
}

// newEnvWith spins up the full API over httptest with a custom
// scheduler configuration.
func newEnvWith(t *testing.T, cfg jobs.Config) *testEnv {
	t.Helper()
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(cfg)
	t.Cleanup(sched.Shutdown)
	srv := httptest.NewServer(NewServer(reg, sched).Handler())
	t.Cleanup(srv.Close)
	env := &testEnv{t: t, server: srv, sched: sched, reg: reg}
	// Bootstrap a user.
	resp := env.do("POST", "/api/users", "", map[string]any{"name": "tester"})
	env.apiKey = resp["api_key"].(string)
	if env.apiKey == "" {
		t.Fatal("no api key")
	}
	return env
}

// do issues a JSON request and decodes the JSON response.
func (e *testEnv) do(method, path, apiKey string, body any) map[string]any {
	e.t.Helper()
	resp, raw := e.doRaw(method, path, apiKey, body, "")
	defer resp.Body.Close()
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		e.t.Fatalf("%s %s: bad JSON %q", method, path, raw)
	}
	return out
}

func (e *testEnv) doRaw(method, path, apiKey string, body any, contentType string) (*http.Response, []byte) {
	e.t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		blob, err := json.Marshal(b)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, e.server.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("x-api-key", apiKey)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	resp.Body.Close()
	return resp, raw
}

func (e *testEnv) expectStatus(method, path, apiKey string, body any, want int) map[string]any {
	e.t.Helper()
	resp, raw := e.doRaw(method, path, apiKey, body, "")
	if resp.StatusCode != want {
		e.t.Fatalf("%s %s: status %d, want %d (%s)", method, path, resp.StatusCode, want, raw)
	}
	var out map[string]any
	json.Unmarshal(raw, &out)
	return out
}

func TestAuthRequired(t *testing.T) {
	e := newEnv(t)
	e.expectStatus("GET", "/api/projects", "", nil, http.StatusUnauthorized)
	e.expectStatus("GET", "/api/projects", "bogus-key", nil, http.StatusUnauthorized)
	e.expectStatus("GET", "/api/projects", e.apiKey, nil, http.StatusOK)
}

func TestDevicesEndpoint(t *testing.T) {
	e := newEnv(t)
	out := e.expectStatus("GET", "/api/devices", "", nil, http.StatusOK)
	devices := out["devices"].([]any)
	if len(devices) < 4 {
		t.Fatalf("%d devices", len(devices))
	}
}

func TestProjectCRUDAndACL(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "kws"}, http.StatusCreated)
	id := int(created["id"].(float64))
	if created["hmac_key"] == "" {
		t.Fatal("no hmac key")
	}
	// A second user cannot see it.
	other := e.do("POST", "/api/users", "", map[string]any{"name": "other"})
	otherKey := other["api_key"].(string)
	e.expectStatus("GET", fmt.Sprintf("/api/projects/%d", id), otherKey, nil, http.StatusForbidden)
	// Add as collaborator; now they can.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/collaborators", id), e.apiKey,
		map[string]any{"user_id": other["id"]}, http.StatusOK)
	e.expectStatus("GET", fmt.Sprintf("/api/projects/%d", id), otherKey, nil, http.StatusOK)
	// Public listing.
	pub := e.expectStatus("GET", "/api/projects/public", "", nil, http.StatusOK)
	if pub["projects"] != nil {
		t.Fatalf("public projects before publishing: %v", pub["projects"])
	}
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/public", id), e.apiKey,
		map[string]any{"public": true}, http.StatusOK)
	pub = e.expectStatus("GET", "/api/projects/public", "", nil, http.StatusOK)
	if len(pub["projects"].([]any)) != 1 {
		t.Fatal("public project missing")
	}
	// Unknown project.
	e.expectStatus("GET", "/api/projects/999", e.apiKey, nil, http.StatusNotFound)
	e.expectStatus("GET", "/api/projects/abc", e.apiKey, nil, http.StatusBadRequest)
}

// uploadKWSData pushes a small synthetic dataset through the signed
// acquisition ingestion path.
func uploadKWSData(t *testing.T, e *testEnv, id int, hmacKey string, perClass int) {
	t.Helper()
	ds, err := synth.KWSDataset(2, perClass, 8000, 0.5, 0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "test-device", DeviceType: "TEST",
			IntervalMS: 1000.0 / 8000.0,
			Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
			Values:     values,
		}, hmacKey, 1670000000)
		if err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("/api/projects/%d/data?label=%s&name=%s&format=acquisition", id, s.Label, s.Name)
		resp, raw := e.doRaw("POST", path, e.apiKey, doc, "application/json")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload: %d %s", resp.StatusCode, raw)
		}
	}
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/rebalance", id), e.apiKey,
		map[string]any{"test_fraction": 0.25}, http.StatusOK)
}

func TestFullMLOpsPipeline(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "kws"}, http.StatusCreated)
	id := int(created["id"].(float64))
	hmacKey := created["hmac_key"].(string)

	// 1. Ingest signed data.
	uploadKWSData(t, e, id, hmacKey, 10)
	list := e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/data", id), e.apiKey, nil, http.StatusOK)
	if n := len(list["samples"].([]any)); n != 20 {
		t.Fatalf("%d samples", n)
	}

	// Wrong HMAC is rejected.
	doc, _ := ingest.SignJSON(ingest.Payload{
		DeviceName: "x", DeviceType: "T", IntervalMS: 1,
		Sensors: []ingest.Sensor{{Name: "a", Units: "u"}},
		Values:  [][]float64{{1}, {2}},
	}, "wrong-key", 1)
	resp, _ := e.doRaw("POST", fmt.Sprintf("/api/projects/%d/data?label=x", id), e.apiKey, doc, "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hmac accepted: %d", resp.StatusCode)
	}

	// 2. Configure the impulse.
	impulse := core.Config{
		Version: core.ConfigVersion,
		Name:    "kws",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Type: "mfe", Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Classes: []string{"noise", "yes"},
	}
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/impulse", id), e.apiKey, impulse, http.StatusOK)
	got := e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/impulse", id), e.apiKey, nil, http.StatusOK)
	if got["trained"] != false {
		t.Fatal("impulse already trained?")
	}

	// 3. Train (async job) with quantization.
	train := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/train", id), e.apiKey, map[string]any{
		"model":         map[string]any{"type": "conv1d", "depth": 2, "start_filters": 8, "end_filters": 16},
		"epochs":        10,
		"learning_rate": 0.005,
		"quantize":      true,
		"seed":          7,
	}, http.StatusAccepted)
	jobID := train["job_id"].(string)
	if _, err := e.sched.Wait(jobID, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	jobOut := e.expectStatus("GET", "/api/jobs/"+jobID, e.apiKey, nil, http.StatusOK)
	if jobOut["status"] != "finished" {
		t.Fatalf("job: %v", jobOut)
	}
	result := e.expectStatus("GET", "/api/jobs/"+jobID+"/result", e.apiKey, nil, http.StatusOK)
	res := result["result"].(map[string]any)
	if acc := res["accuracy"].(float64); acc < 0.6 {
		t.Fatalf("trained accuracy %.2f", acc)
	}
	if res["quantized"] != true {
		t.Fatal("quantization skipped")
	}

	// 4. Classify through the API.
	sig, err := synth.Keyword("yes", 8000, 0.5, 0.02, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	classify := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/classify", id), e.apiKey,
		map[string]any{"features": sig.Data}, http.StatusOK)
	if classify["label"] == "" {
		t.Fatal("no label")
	}

	// 4b. Batched classify must agree with the single-window path,
	// window for window, in both precisions.
	sigNoise, err := synth.Keyword("noise", 8000, 0.5, 0.02, rand.New(rand.NewSource(100)))
	if err != nil {
		t.Fatal(err)
	}
	for _, quantized := range []bool{false, true} {
		var singles []map[string]any
		for _, s := range [][]float32{sig.Data, sigNoise.Data} {
			singles = append(singles, e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/classify", id), e.apiKey,
				map[string]any{"features": s, "quantized": quantized}, http.StatusOK))
		}
		batch := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/classify/batch", id), e.apiKey,
			map[string]any{"windows": [][]float32{sig.Data, sigNoise.Data}, "quantized": quantized}, http.StatusOK)
		results := batch["results"].([]any)
		if len(results) != 2 {
			t.Fatalf("batch returned %d results", len(results))
		}
		for i, r := range results {
			res := r.(map[string]any)
			if res["label"] != singles[i]["label"] {
				t.Fatalf("quantized=%v window %d: batch label %v != single %v", quantized, i, res["label"], singles[i]["label"])
			}
			bc := res["classification"].(map[string]any)
			sc := singles[i]["classification"].(map[string]any)
			for class, p := range sc {
				if bc[class] != p {
					t.Fatalf("quantized=%v window %d class %s: batch %v != single %v", quantized, i, class, bc[class], p)
				}
			}
		}
	}
	// Batch validation: empty and oversized batches are rejected.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/classify/batch", id), e.apiKey,
		map[string]any{"windows": [][]float32{}}, http.StatusBadRequest)
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/classify/batch", id), e.apiKey,
		map[string]any{"windows": make([][]float32, v1.MaxClassifyBatch+1)}, http.StatusBadRequest)

	// 5. Profile for a target.
	profile := e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/profile?target=nano-33-ble-sense", id), e.apiKey, nil, http.StatusOK)
	fl := profile["float32"].(map[string]any)
	if fl["total_ms"].(float64) <= 0 {
		t.Fatal("no latency estimate")
	}
	if profile["int8"] == nil {
		t.Fatal("no int8 profile despite quantization")
	}

	// 6. Deployment artifacts.
	dep := e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/deployment?type=cpp", id), e.apiKey, nil, http.StatusOK)
	files := dep["files"].(map[string]any)
	if len(files) < 4 {
		t.Fatalf("cpp files: %d", len(files))
	}
	respEIM, rawEIM := e.doRaw("GET", fmt.Sprintf("/api/projects/%d/deployment?type=eim", id), e.apiKey, nil, "")
	if respEIM.StatusCode != http.StatusOK || len(rawEIM) < 100 || string(rawEIM[:4]) != "EPIM" {
		t.Fatalf("EIM download: %d, %d bytes", respEIM.StatusCode, len(rawEIM))
	}

	// 7. Version snapshot.
	snap := e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/versions", id), e.apiKey,
		map[string]any{"note": "v1"}, http.StatusCreated)
	if snap["version"] == nil {
		t.Fatal("no version")
	}
	versions := e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/versions", id), e.apiKey, nil, http.StatusOK)
	if len(versions["versions"].([]any)) != 1 {
		t.Fatal("version list")
	}
}

func TestTrainValidation(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "p"}, http.StatusCreated)
	id := int(created["id"].(float64))
	// No impulse yet.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/train", id), e.apiKey,
		map[string]any{"epochs": 1}, http.StatusBadRequest)
	// Classify before training.
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/classify", id), e.apiKey,
		map[string]any{"features": []float32{1, 2}}, http.StatusBadRequest)
	// Deployment before training.
	e.expectStatus("GET", fmt.Sprintf("/api/projects/%d/deployment?type=cpp", id), e.apiKey, nil, http.StatusBadRequest)
	// Unknown job.
	e.expectStatus("GET", "/api/jobs/job-999", e.apiKey, nil, http.StatusNotFound)
}

func TestUploadValidation(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "p"}, http.StatusCreated)
	id := int(created["id"].(float64))
	// Missing label.
	resp, _ := e.doRaw("POST", fmt.Sprintf("/api/projects/%d/data", id), e.apiKey, []byte("x"), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatal("missing label accepted")
	}
	// Unknown format.
	resp, _ = e.doRaw("POST", fmt.Sprintf("/api/projects/%d/data?label=a&format=tarball", id), e.apiKey, []byte("x"), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatal("unknown format accepted")
	}
	// CSV happy path.
	csv := "timestamp,ax\n0,1.0\n10,2.0\n20,3.0\n"
	resp, raw := e.doRaw("POST", fmt.Sprintf("/api/projects/%d/data?label=walk&format=csv", id), e.apiKey, []byte(csv), "text/csv")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("csv upload: %d %s", resp.StatusCode, raw)
	}
	// Delete it.
	var out map[string]any
	json.Unmarshal(raw, &out)
	sampleID := out["sample_id"].(string)
	e.expectStatus("DELETE", fmt.Sprintf("/api/projects/%d/data/%s", id, sampleID), e.apiKey, nil, http.StatusOK)
	e.expectStatus("DELETE", fmt.Sprintf("/api/projects/%d/data/%s", id, sampleID), e.apiKey, nil, http.StatusNotFound)
}

func TestBadImpulseConfig(t *testing.T) {
	e := newEnv(t)
	created := e.expectStatus("POST", "/api/projects", e.apiKey, map[string]any{"name": "p"}, http.StatusCreated)
	id := int(created["id"].(float64))
	resp, _ := e.doRaw("POST", fmt.Sprintf("/api/projects/%d/impulse", id), e.apiKey, []byte("{bad json"), "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatal("bad json accepted")
	}
	// Unknown DSP block.
	cfg := core.Config{Version: core.ConfigVersion, Name: "x", Input: core.InputBlock{Kind: core.TimeSeries, WindowMS: 100, FrequencyHz: 100, Axes: 1}, DSP: []core.DSPBlockSpec{{Type: "quantum"}}}
	e.expectStatus("POST", fmt.Sprintf("/api/projects/%d/impulse", id), e.apiKey, cfg, http.StatusBadRequest)
}
