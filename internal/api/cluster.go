package api

import (
	"crypto/subtle"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/project"
	"edgepulse/internal/resilience"
	"edgepulse/internal/store"
)

// Cluster-plane endpoints, registered only on nodes configured with
// WithClusterNode: node identity (for the gateway's shard map and lag
// probes), user admission (cross-shard auth broadcast), and the
// replication feed a follower tails — registry metadata, per-project
// store state, journal frames, and raw segment byte ranges. All of
// them sit behind an optional shared cluster token and bypass the
// admission gate and rate limiter: replication must keep flowing
// exactly when the node is under pressure.

// ClusterTokenHeader authenticates intra-cluster requests when the
// node was configured with a cluster token.
const ClusterTokenHeader = "X-Cluster-Token"

// clusterNode is a node's cluster identity.
type clusterNode struct {
	name   string
	role   string // "worker" | "follower"
	shard  int
	shards int
}

// WithClusterNode assigns the server a cluster identity and enables the
// cluster-plane endpoints. role is "worker" or "follower"; shard is the
// node's shard index in [0, shards).
func WithClusterNode(name, role string, shard, shards int) Option {
	return func(s *Server) {
		s.cluster = &clusterNode{name: name, role: role, shard: shard, shards: shards}
	}
}

// WithClusterToken guards the cluster-plane endpoints with a shared
// secret carried in X-Cluster-Token. Empty leaves them open (tests,
// trusted networks).
func WithClusterToken(token string) Option {
	return func(s *Server) { s.clusterToken = token }
}

// ShardID returns the node's shard index (-1 when not clustered) — the
// access log includes it so one request is attributable to a shard
// across gateway hops.
func (s *Server) ShardID() int {
	if s.cluster == nil {
		return -1
	}
	return s.cluster.shard
}

// clusterRoutes registers the cluster plane. Exempt from the admission
// gate: a follower must keep syncing from an overloaded primary.
func (s *Server) clusterRoutes() {
	if s.cluster == nil {
		return
	}
	cl := routeOpts{class: resilience.ClassInteractive, exempt: true, budget: 30 * time.Second}
	s.route("GET /cluster/node", cl, s.clusterAuth(s.handleClusterNode))
	s.route("POST /cluster/users", cl, s.clusterAuth(s.handleClusterAdmitUser))
	s.route("GET /cluster/replication/meta", cl, s.clusterAuth(s.handleReplicationMeta))
	s.route("GET /cluster/replication/projects/{id}/state", cl, s.clusterAuth(s.handleReplicationState))
	s.route("GET /cluster/replication/projects/{id}/manifest", cl, s.clusterAuth(s.handleReplicationManifest))
	s.route("GET /cluster/replication/projects/{id}/journal", cl, s.clusterAuth(s.handleReplicationJournal))
	s.route("GET /cluster/replication/projects/{id}/segments/{seg}", cl, s.clusterAuth(s.handleReplicationSegment))
}

// clusterAuth enforces the shared cluster token when one is set.
func (s *Server) clusterAuth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.clusterToken != "" &&
			subtle.ConstantTimeCompare([]byte(r.Header.Get(ClusterTokenHeader)), []byte(s.clusterToken)) != 1 {
			s.writeError(w, r, http.StatusForbidden, v1.CodeForbidden, "bad cluster token")
			return
		}
		next(w, r)
	}
}

// isClusterPath matches the cluster plane, which bypasses rate limiting
// like the health probes: a follower tailing at a tight interval must
// not be throttled into falling behind.
func isClusterPath(path string) bool {
	const p = "/cluster/"
	return pathHasPrefix(path, v1.Prefix+p) || pathHasPrefix(path, v1.LegacyPrefix+p)
}

func pathHasPrefix(path, prefix string) bool {
	return len(path) >= len(prefix) && path[:len(prefix)] == prefix
}

// handleClusterNode reports the node's identity and per-project store
// versions; the gateway diffs a follower's versions against its
// primary's to compute replication lag.
func (s *Server) handleClusterNode(w http.ResponseWriter, r *http.Request) {
	out := v1.ClusterNodeResponse{
		Success: true,
		Name:    s.cluster.name,
		Role:    s.cluster.role,
		Shard:   s.cluster.shard,
		Shards:  s.cluster.shards,
	}
	for _, p := range s.registry.Projects() {
		if st := p.Store(); st != nil {
			if out.Projects == nil {
				out.Projects = map[int]uint64{}
			}
			out.Projects[p.ID] = st.Committed()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleClusterAdmitUser inserts a pre-minted account, letting the
// gateway broadcast one user identity to every worker.
func (s *Server) handleClusterAdmitUser(w http.ResponseWriter, r *http.Request) {
	var req v1.AdmitUserRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	u, err := s.registry.AdmitUser(req.ID, req.Name, req.APIKey)
	if err != nil {
		status, code := http.StatusBadRequest, v1.CodeBadRequest
		if errors.Is(err, project.ErrReplica) {
			status, code = http.StatusConflict, v1.CodeConflict
		}
		s.writeError(w, r, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.CreateUserResponse{
		Success: true, ID: u.ID, Name: u.Name, APIKey: u.APIKey,
	})
}

// handleReplicationMeta exports the registry's control-plane state
// (users, orgs, project headers, impulse designs, model blobs).
func (s *Server) handleReplicationMeta(w http.ResponseWriter, r *http.Request) {
	b, err := s.registry.ExportMeta()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	out := v1.ClusterMetaResponse{Success: true, Registry: b.Registry}
	for _, pm := range b.Projects {
		out.Projects = append(out.Projects, v1.ProjectMetaBlob{
			ID: pm.ID, Impulse: pm.Impulse, Model: pm.Model, QModel: pm.QModel,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// replicationStore resolves {id} to a project's backing store, writing
// the error response itself on failure.
func (s *Server) replicationStore(w http.ResponseWriter, r *http.Request) *store.Store {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "bad project id")
		return nil
	}
	p, err := s.registry.GetProject(id)
	if err != nil {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, err.Error())
		return nil
	}
	st := p.Store()
	if st == nil {
		s.writeError(w, r, http.StatusConflict, v1.CodeConflict, "project has no durable store")
		return nil
	}
	return st
}

func (s *Server) handleReplicationState(w http.ResponseWriter, r *http.Request) {
	st := s.replicationStore(w, r)
	if st == nil {
		return
	}
	rs, err := st.ReplicationState()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	out := v1.ReplicationStateResponse{
		Success: true, Version: rs.Version, SnapVersion: rs.SnapVersion,
	}
	for _, seg := range rs.Segments {
		out.Segments = append(out.Segments, v1.ReplicationSegment{Index: seg.Index, Size: seg.Size})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReplicationManifest(w http.ResponseWriter, r *http.Request) {
	st := s.replicationStore(w, r)
	if st == nil {
		return
	}
	blob, version, err := st.ManifestBlob()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.ReplicationManifestResponse{
		Success: true, Manifest: blob, Version: version,
	})
}

// handleReplicationJournal returns raw journal frames for versions in
// (since, upto]. A cursor older than the retained journal answers 409
// conflict — the follower must bootstrap from the manifest instead.
func (s *Server) handleReplicationJournal(w http.ResponseWriter, r *http.Request) {
	st := s.replicationStore(w, r)
	if st == nil {
		return
	}
	since, err := parseUintParam(r, "since")
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	upto, err := parseUintParam(r, "upto")
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	frames, last, err := st.JournalSince(since, upto)
	switch {
	case errors.Is(err, store.ErrReplicationGap):
		s.writeError(w, r, http.StatusConflict, v1.CodeConflict, err.Error())
		return
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, v1.CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v1.ReplicationJournalResponse{Success: true, Frames: frames, Last: last})
}

// handleReplicationSegment streams one segment's committed bytes from
// the requested offset as an octet stream; the committed size the range
// runs to is carried in X-Segment-Size.
func (s *Server) handleReplicationSegment(w http.ResponseWriter, r *http.Request) {
	st := s.replicationStore(w, r)
	if st == nil {
		return
	}
	seg, err := strconv.Atoi(r.PathValue("seg"))
	if err != nil || seg <= 0 {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "bad segment index")
		return
	}
	from, err := parseUintParam(r, "from")
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, err.Error())
		return
	}
	rd, size, err := st.SegmentReader(seg, int64(from))
	if err != nil {
		s.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Segment-Size", strconv.FormatInt(size, 10))
	w.Header().Set("Content-Length", strconv.FormatInt(size-int64(from), 10))
	io.Copy(w, rd)
}

// parseUintParam reads an optional non-negative integer query
// parameter (0 when absent).
func parseUintParam(r *http.Request, name string) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, errors.New(name + " must be a non-negative integer")
	}
	return v, nil
}
