package api

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/resilience"
)

// Per-route deadline budgets. Interactive endpoints answer from memory
// or run one bounded inference, so they get a tight budget; uploads can
// move tens of megabytes; the long-poll wait route's budget sits above
// the maximum client-requested timeout so the deadline never fires
// before a legitimate long poll completes.
const (
	budgetInteractive = 10 * time.Second
	budgetDefault     = 30 * time.Second
	budgetUpload      = 2 * time.Minute
	budgetWait        = maxWaitTimeout + 10*time.Second
)

// routeOpts carries one route's resilience settings: its admission class
// and deadline budget. The zero value is a default-class route with the
// default budget.
type routeOpts struct {
	class resilience.Class
	// budget is the context deadline applied around the handler;
	// noDeadline disables it (streaming and long-poll routes manage
	// their own lifetimes).
	budget     time.Duration
	noDeadline bool
	// exempt bypasses the admission gate (health probes must answer
	// while shedding, or the orchestrator would kill an overloaded but
	// healthy instance).
	exempt bool
}

func (ro routeOpts) effectiveBudget() time.Duration {
	if ro.noDeadline {
		return 0
	}
	if ro.budget > 0 {
		return ro.budget
	}
	if ro.class == resilience.ClassInteractive {
		return budgetInteractive
	}
	return budgetDefault
}

// Route-class shorthands used by the route table.
var (
	interactive = routeOpts{class: resilience.ClassInteractive}
	defaultOpts = routeOpts{}
	batch       = routeOpts{class: resilience.ClassBatch}
)

// WithGate overrides the admission gate tuning. A nil Sample keeps the
// server's own load sampler (scheduler queue depth, stream sessions,
// optional memory limit).
func WithGate(cfg resilience.GateConfig) Option {
	return func(s *Server) { s.gateCfg = cfg }
}

// WithMemoryLimit adds heap pressure to the admission gate's load
// score: heap-in-use approaching bytes contributes to shedding. 0 (the
// default) ignores memory.
func WithMemoryLimit(bytes uint64) Option {
	return func(s *Server) { s.memLimit = bytes }
}

// WithWatchdog runs a stuck-job watchdog: running jobs that emit no
// event for window are flagged with a stalled event; cancel opts into
// cancelling them through the cooperative-cancel path. Callers that
// enable it should Close the server on shutdown.
func WithWatchdog(window time.Duration, cancel bool) Option {
	return func(s *Server) { s.watchdogCfg = &resilience.WatchdogConfig{Window: window, Cancel: cancel} }
}

// WithReadinessProbe registers a named dependency check on /readyz:
// probe returns nil while the dependency is healthy. The scheduler and
// overload probes are built in; hosts add externals (the durable store's
// data directory, a downstream service).
func WithReadinessProbe(name string, probe func() error) Option {
	return func(s *Server) { s.health.Register(name, probe) }
}

// sampleLoad feeds the gate's non-HTTP pressure dimensions.
func (s *Server) sampleLoad() resilience.Load {
	pending, qcap := s.sched.QueueDepth()
	load := resilience.Load{
		QueueDepth: pending,
		QueueCap:   qcap,
		Sessions:   s.streams.Active(),
		SessionCap: s.streams.Max(),
	}
	if s.memLimit > 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		load.HeapBytes = ms.HeapInuse
		load.HeapLimit = s.memLimit
	}
	return load
}

// withGate guards a route with the admission gate: shed requests get
// 429 + Retry-After with the stable "overloaded" code and never reach
// the handler.
func (s *Server) withGate(ro routeOpts, next http.Handler) http.Handler {
	if ro.exempt {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := s.gate.Acquire(ro.class)
		if err != nil {
			retryAfter := time.Second
			var shed *resilience.ShedError
			if errors.As(err, &shed) && shed.RetryAfter > 0 {
				retryAfter = shed.RetryAfter
			}
			s.metrics.shedRequest()
			w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
			s.writeError(w, r, http.StatusTooManyRequests, v1.CodeOverloaded,
				"server overloaded, "+ro.class.String()+"-class request shed; retry later")
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// withDeadline bounds the handler with the route's timeout budget. When
// the budget expires before the handler has written anything, the
// request is answered 504 with the stable "deadline" code; a handler
// that already started its response keeps the status it wrote.
func (s *Server) withDeadline(budget time.Duration, next http.Handler) http.Handler {
	if budget <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
		if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return
		}
		if sw, ok := w.(*statusWriter); ok && sw.status == 0 {
			s.metrics.deadlineTimeout()
			s.writeError(w, r, http.StatusGatewayTimeout, v1.CodeDeadline,
				"request exceeded its processing deadline")
		}
	})
}

// handleHealthz is the liveness probe: 200 whenever the process can
// serve HTTP, independent of load or dependency state, so orchestrators
// restart only truly dead processes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, v1.HealthResponse{
		Success:       true,
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
	})
}

// handleReadyz is the readiness probe: 503 while any dependency probe
// fails, load shedding is active, or the server is draining; 200
// otherwise. The probe map is returned either way so operators can see
// which check is red.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := s.health.Ready()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, v1.ReadyResponse{
		Success:  rd.Ready,
		Ready:    rd.Ready,
		Draining: rd.Draining,
		Probes:   rd.Probes,
	})
}

// isHealthPath matches the liveness/readiness endpoints, which bypass
// rate limiting (and the gate): a probe squeezed out by a token bucket
// would flap the instance out of the load balancer under churn.
func isHealthPath(path string) bool {
	switch path {
	case v1.Prefix + "/healthz", v1.Prefix + "/readyz",
		v1.LegacyPrefix + "/healthz", v1.LegacyPrefix + "/readyz":
		return true
	}
	return false
}

// registerHealthProbes wires the built-in readiness checks.
func (s *Server) registerHealthProbes() {
	s.health.Register("scheduler", func() error {
		if !s.sched.Accepting() {
			return errors.New("scheduler not accepting jobs")
		}
		return nil
	})
	s.health.Register("overload", func() error {
		if lvl := s.gate.Level(); lvl != resilience.LevelNormal {
			return errors.New("load shedding active: " + lvl.String())
		}
		return nil
	})
}
