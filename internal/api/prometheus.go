package api

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	v1 "edgepulse/internal/api/v1"
)

// Prometheus text-format exposition of the operational metrics:
// GET /api/v1/metrics?format=prometheus renders the same snapshot the
// JSON endpoint returns as # TYPE-annotated gauges and counters, so a
// Prometheus scraper works against workers and the gateway without an
// exporter sidecar.

// PrometheusContentType is the text exposition format version served
// for format=prometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates exposition lines, emitting each metric's
// # TYPE header once.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) metric(name, typ, help string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) value(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %g\n", name, labels, v)
}

// promLabel renders one escaped key="value" pair.
func promLabel(key, val string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(val) + `"`
}

// RenderPrometheus writes a MetricsResponse in the Prometheus text
// exposition format. Metric names are stable API surface; counters end
// in _total per convention.
func RenderPrometheus(w io.Writer, m v1.MetricsResponse) error {
	p := &promWriter{w: w}

	p.metric("ei_uptime_seconds", "gauge", "Seconds since the process started.")
	p.value("ei_uptime_seconds", "", m.UptimeSeconds)
	p.metric("ei_requests_total", "counter", "HTTP requests observed by the middleware chain.")
	p.value("ei_requests_total", "", float64(m.Requests))
	p.metric("ei_rate_limited_total", "counter", "Requests refused by the rate limiter.")
	p.value("ei_rate_limited_total", "", float64(m.RateLimited))
	p.metric("ei_panics_total", "counter", "Handler panics recovered into 500 responses.")
	p.value("ei_panics_total", "", float64(m.Panics))

	if len(m.Routes) > 0 {
		p.metric("ei_route_requests_total", "counter", "Requests per route pattern.")
		for _, rt := range m.Routes {
			p.value("ei_route_requests_total", promLabel("route", rt.Route), float64(rt.Count))
		}
		p.metric("ei_route_errors_total", "counter", "Error responses per route pattern and class.")
		for _, rt := range m.Routes {
			p.value("ei_route_errors_total", promLabel("route", rt.Route)+","+promLabel("class", "4xx"), float64(rt.Err4xx))
			p.value("ei_route_errors_total", promLabel("route", rt.Route)+","+promLabel("class", "5xx"), float64(rt.Err5xx))
		}
		p.metric("ei_route_latency_avg_ms", "gauge", "Mean handler latency per route pattern.")
		for _, rt := range m.Routes {
			p.value("ei_route_latency_avg_ms", promLabel("route", rt.Route), rt.AvgMS)
		}
	}

	p.metric("ei_scheduler_workers", "gauge", "Live training workers.")
	p.value("ei_scheduler_workers", "", float64(m.Scheduler.Workers))
	p.metric("ei_scheduler_queued", "gauge", "Jobs pending in the scheduler queue.")
	p.value("ei_scheduler_queued", "", float64(m.Scheduler.Queued))
	p.metric("ei_scheduler_completed_total", "counter", "Jobs finished successfully.")
	p.value("ei_scheduler_completed_total", "", float64(m.Scheduler.Completed))
	p.metric("ei_scheduler_failed_total", "counter", "Jobs that failed terminally.")
	p.value("ei_scheduler_failed_total", "", float64(m.Scheduler.Failed))
	p.metric("ei_scheduler_retries_total", "counter", "Transient-failure retries.")
	p.value("ei_scheduler_retries_total", "", float64(m.Scheduler.Retries))
	if len(m.Scheduler.QueuedByPriority) > 0 {
		p.metric("ei_scheduler_queued_by_priority", "gauge", "Pending jobs per priority class.")
		classes := make([]string, 0, len(m.Scheduler.QueuedByPriority))
		for c := range m.Scheduler.QueuedByPriority {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			p.value("ei_scheduler_queued_by_priority", promLabel("priority", c), float64(m.Scheduler.QueuedByPriority[c]))
		}
	}

	if len(m.Streams) > 0 {
		p.metric("ei_stream_connections_active", "gauge", "Open long-lived NDJSON connections per route.")
		for _, st := range m.Streams {
			p.value("ei_stream_connections_active", promLabel("route", st.Route), float64(st.Active))
		}
		p.metric("ei_stream_connections_total", "counter", "Completed long-lived connections per route.")
		for _, st := range m.Streams {
			p.value("ei_stream_connections_total", promLabel("route", st.Route), float64(st.Count))
		}
	}
	if sp := m.StreamPlane; sp != nil {
		p.metric("ei_stream_sessions_active", "gauge", "Live inference sessions.")
		p.value("ei_stream_sessions_active", "", float64(sp.ActiveSessions))
		p.metric("ei_stream_sessions_opened_total", "counter", "Inference sessions ever admitted.")
		p.value("ei_stream_sessions_opened_total", "", float64(sp.Opened))
		p.metric("ei_stream_sessions_shed_total", "counter", "Session opens refused at the capacity cap.")
		p.value("ei_stream_sessions_shed_total", "", float64(sp.Shed))
		p.metric("ei_stream_frames_in_total", "counter", "Frames ingested across sessions.")
		p.value("ei_stream_frames_in_total", "", float64(sp.FramesIn))
		p.metric("ei_stream_windows_total", "counter", "Classification windows evaluated.")
		p.value("ei_stream_windows_total", "", float64(sp.Windows))
		p.metric("ei_stream_detections_total", "counter", "Detection events fired.")
		p.value("ei_stream_detections_total", "", float64(sp.Detections))
		p.metric("ei_stream_dropped_frames_total", "counter", "Frames lost to ring-buffer overruns.")
		p.value("ei_stream_dropped_frames_total", "", float64(sp.DroppedFrames))
	}

	if res := m.Resilience; res != nil {
		p.metric("ei_resilience_load_score", "gauge", "Admission gate load score (1.0 = saturated).")
		p.value("ei_resilience_load_score", "", res.Score)
		p.metric("ei_resilience_inflight", "gauge", "Currently admitted requests.")
		p.value("ei_resilience_inflight", "", float64(res.Inflight))
		p.metric("ei_resilience_shed_total", "counter", "Requests refused by the admission gate.")
		p.value("ei_resilience_shed_total", "", float64(res.Shed))
		if len(res.ShedByClass) > 0 {
			p.metric("ei_resilience_shed_by_class_total", "counter", "Gate refusals per admission class.")
			classes := make([]string, 0, len(res.ShedByClass))
			for c := range res.ShedByClass {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, c := range classes {
				p.value("ei_resilience_shed_by_class_total", promLabel("class", c), float64(res.ShedByClass[c]))
			}
		}
		p.metric("ei_resilience_deadline_timeouts_total", "counter", "Requests answered 504 at their route deadline.")
		p.value("ei_resilience_deadline_timeouts_total", "", float64(res.DeadlineTimeouts))
		p.metric("ei_resilience_stalled_jobs_total", "counter", "Jobs flagged stalled by the watchdog.")
		p.value("ei_resilience_stalled_jobs_total", "", float64(res.StalledJobs))
		p.metric("ei_resilience_watchdog_cancelled_total", "counter", "Stalled jobs cancelled by the watchdog.")
		p.value("ei_resilience_watchdog_cancelled_total", "", float64(res.WatchdogCancelled))
	}

	if rt := m.Runtime; rt != nil {
		p.metric("ei_goroutines", "gauge", "Live goroutines in the process.")
		p.value("ei_goroutines", "", float64(rt.Goroutines))
		p.metric("ei_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
		p.value("ei_heap_alloc_bytes", "", float64(rt.HeapAllocBytes))
		p.metric("ei_heap_sys_bytes", "gauge", "Heap memory obtained from the OS.")
		p.value("ei_heap_sys_bytes", "", float64(rt.HeapSysBytes))
		p.metric("ei_gc_cycles_total", "counter", "Completed GC cycles.")
		p.value("ei_gc_cycles_total", "", float64(rt.NumGC))
	}
	return p.err
}

// RuntimeSnapshot captures the process's goroutine count and heap
// gauges for the /metrics runtime block. Exported so the gateway's
// self-served metrics endpoint reports the same shape.
func RuntimeSnapshot() *v1.RuntimeMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &v1.RuntimeMetrics{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
	}
}
