package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
)

func randTensor(rng *rand.Rand, shape ...int) *tensor.F32 {
	t := tensor.NewF32(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestQuantizeMultiplierRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		real := math.Exp(rng.Float64()*10 - 5) // 0.0067 .. 148
		mult, shift := quantizeMultiplier(real)
		// Check the decomposition approximates the real multiplier on a
		// sample accumulator.
		acc := int32(rng.Intn(1<<20) - 1<<19)
		got := float64(multiplyByQuantizedMultiplier(acc, mult, shift))
		want := float64(acc) * real
		return math.Abs(got-want) <= math.Abs(want)*1e-3+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeMultiplierEdge(t *testing.T) {
	if m, s := quantizeMultiplier(0); m != 0 || s != 0 {
		t.Error("zero multiplier")
	}
	if m, s := quantizeMultiplier(-1); m != 0 || s != 0 {
		t.Error("negative multiplier")
	}
	// Identity multiplier.
	mult, shift := quantizeMultiplier(1.0)
	if got := multiplyByQuantizedMultiplier(1000, mult, shift); got != 1000 {
		t.Errorf("identity requant: %d", got)
	}
}

func trainedDenseModel(t *testing.T) (*nn.Model, []*tensor.F32) {
	t.Helper()
	m := nn.NewModel(8)
	m.NumClasses = 3
	m.Add(nn.NewDense(16, nn.ReLU)).Add(nn.NewDense(3, nn.None)).Add(nn.NewSoftmax())
	if err := nn.InitWeights(m, 7); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var calib []*tensor.F32
	for i := 0; i < 32; i++ {
		calib = append(calib, randTensor(rng, 8))
	}
	return m, calib
}

func TestQuantizedDenseMatchesFloat(t *testing.T) {
	m, calib := trainedDenseModel(t)
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	agree := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		in := randTensor(rng, 8)
		fp := m.Forward(in)
		qp := qm.Forward(in)
		if fp.ArgMax() == qp.ArgMax() {
			agree++
		}
		// Probabilities should be roughly aligned.
		for c := range fp.Data {
			if math.Abs(float64(fp.Data[c]-qp.Data[c])) > 0.25 {
				t.Errorf("trial %d class %d: float %.3f int8 %.3f", i, c, fp.Data[c], qp.Data[c])
			}
		}
	}
	if agree < trials*9/10 {
		t.Fatalf("argmax agreement %d/%d", agree, trials)
	}
}

func TestQuantizedConvModelMatchesFloat(t *testing.T) {
	m := nn.NewModel(8, 8, 1)
	m.NumClasses = 2
	m.Add(nn.NewConv2D(4, 3, 1, nn.Same, nn.ReLU)).
		Add(nn.NewMaxPool2D(2, 2)).
		Add(nn.NewDepthwiseConv2D(3, 1, nn.Same, nn.ReLU6)).
		Add(nn.NewGlobalAvgPool2D()).
		Add(nn.NewDense(2, nn.None)).
		Add(nn.NewSoftmax())
	if err := nn.InitWeights(m, 11); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	var calib []*tensor.F32
	for i := 0; i < 16; i++ {
		calib = append(calib, randTensor(rng, 8, 8, 1))
	}
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		in := randTensor(rng, 8, 8, 1)
		if m.Forward(in).ArgMax() == qm.Forward(in).ArgMax() {
			agree++
		}
	}
	if agree < trials*8/10 {
		t.Fatalf("argmax agreement %d/%d", agree, trials)
	}
}

func TestQuantizeConv1DModel(t *testing.T) {
	m := nn.NewModel(16, 4)
	m.NumClasses = 2
	m.Add(nn.NewConv1D(8, 3, 1, nn.Same, nn.ReLU)).
		Add(nn.NewMaxPool1D(2, 2)).
		Add(nn.NewFlatten()).
		Add(nn.NewDense(2, nn.None)).
		Add(nn.NewSoftmax())
	nn.InitWeights(m, 13)
	rng := rand.New(rand.NewSource(14))
	var calib []*tensor.F32
	for i := 0; i < 16; i++ {
		calib = append(calib, randTensor(rng, 16, 4))
	}
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < 30; i++ {
		in := randTensor(rng, 16, 4)
		if m.Forward(in).ArgMax() == qm.Forward(in).ArgMax() {
			agree++
		}
	}
	if agree < 24 {
		t.Fatalf("agreement %d/30", agree)
	}
}

func TestQuantizeDropsDropout(t *testing.T) {
	m := nn.NewModel(4)
	m.NumClasses = 2
	m.Add(nn.NewDense(8, nn.ReLU)).
		Add(nn.NewDropout(0.5)).
		Add(nn.NewDense(2, nn.None)).
		Add(nn.NewSoftmax())
	nn.InitWeights(m, 15)
	calib := []*tensor.F32{randTensor(rand.New(rand.NewSource(16)), 4)}
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range qm.Ops {
		if op.Kind == "dropout" {
			t.Fatal("dropout survived quantization")
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	m, _ := trainedDenseModel(t)
	if _, err := Quantize(m, nil); err == nil {
		t.Error("accepted empty calibration")
	}
	wrong := []*tensor.F32{tensor.NewF32(3)}
	if _, err := Quantize(m, wrong); err == nil {
		t.Error("accepted wrong calibration shape")
	}
	// Sigmoid fused activation unsupported.
	sg := nn.NewModel(4)
	sg.NumClasses = 2
	sg.Add(nn.NewDense(2, nn.Sigmoid)).Add(nn.NewSoftmax())
	nn.InitWeights(sg, 1)
	if _, err := Quantize(sg, []*tensor.F32{tensor.NewF32(4)}); err == nil {
		t.Error("accepted sigmoid")
	}
}

func TestWeightBytesAndMACs(t *testing.T) {
	m, calib := trainedDenseModel(t)
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	// dense1: 8*16 w + 16 bias*4; dense2: 16*3 w + 3 bias*4.
	want := int64(8*16+16*4) + int64(16*3+3*4)
	if qm.WeightBytes() != want {
		t.Fatalf("WeightBytes = %d, want %d", qm.WeightBytes(), want)
	}
	if qm.MACs() != m.MACs() {
		t.Fatalf("MACs %d != float %d", qm.MACs(), m.MACs())
	}
	// int8 weights are 4x smaller than float32 weights.
	floatBytes := int64(m.ParamCount()) * 4
	if qm.WeightBytes() >= floatBytes {
		t.Fatalf("int8 %d bytes not smaller than float %d", qm.WeightBytes(), floatBytes)
	}
}

func TestFoldBatchNormEquivalence(t *testing.T) {
	m := nn.NewModel(6, 6, 2)
	m.NumClasses = 2
	m.Add(nn.NewConv2D(4, 3, 1, nn.Same, nn.None)).
		Add(nn.NewBatchNorm()).
		Add(nn.NewGlobalAvgPool2D()).
		Add(nn.NewDense(2, nn.None)).
		Add(nn.NewSoftmax())
	nn.InitWeights(m, 20)
	// Give the BN non-trivial statistics.
	bn := m.Layers[1].(*nn.BatchNorm)
	bn.Build(4)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 4; i++ {
		bn.Mean.Data[i] = float32(rng.NormFloat64())
		bn.Var.Data[i] = float32(0.5 + rng.Float64())
		bn.Gamma.Data[i] = float32(0.5 + rng.Float64())
		bn.Beta.Data[i] = float32(rng.NormFloat64())
	}
	folded, err := FoldBatchNorm(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(folded.Layers) != len(m.Layers)-1 {
		t.Fatalf("folded has %d layers", len(folded.Layers))
	}
	for i := 0; i < 10; i++ {
		in := randTensor(rng, 6, 6, 2)
		a := m.Forward(in)
		b := folded.Forward(in)
		for c := range a.Data {
			if math.Abs(float64(a.Data[c]-b.Data[c])) > 1e-4 {
				t.Fatalf("fold diverges: %v vs %v", a.Data, b.Data)
			}
		}
	}
}

func TestFoldBatchNormThroughReLU(t *testing.T) {
	// Positive gamma folds through ReLU exactly.
	m := nn.NewModel(4, 4, 1)
	m.NumClasses = 2
	m.Add(nn.NewConv2D(2, 3, 1, nn.Same, nn.ReLU)).
		Add(nn.NewBatchNorm()).
		Add(nn.NewGlobalAvgPool2D()).
		Add(nn.NewDense(2, nn.None)).
		Add(nn.NewSoftmax())
	nn.InitWeights(m, 22)
	if _, err := FoldBatchNorm(m); err != nil {
		t.Fatalf("positive-gamma fold through relu failed: %v", err)
	}
	// Negative gamma must be rejected for ReLU.
	bn := m.Layers[1].(*nn.BatchNorm)
	bn.Gamma.Data[0] = -1
	if _, err := FoldBatchNorm(m); err == nil {
		t.Fatal("negative gamma folded through relu")
	}
}

func TestFoldBatchNormLeadingBN(t *testing.T) {
	m := nn.NewModel(4)
	m.Add(nn.NewBatchNorm())
	m.Layers[0].(*nn.BatchNorm).Build(4)
	if _, err := FoldBatchNorm(m); err == nil {
		t.Fatal("accepted batchnorm with no preceding layer")
	}
}

func TestRoundDiv(t *testing.T) {
	cases := []struct{ a, b, want int32 }{
		{7, 2, 4}, {-7, 2, -4}, {6, 3, 2}, {5, 2, 3}, {-5, 2, -3}, {0, 4, 0},
	}
	for _, c := range cases {
		if got := roundDiv(c.a, c.b); got != c.want {
			t.Errorf("roundDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestQuantizedPoolingExactness(t *testing.T) {
	// Max pooling in the quantized domain must match float max pooling
	// exactly (same qparams in and out).
	m := nn.NewModel(4, 4, 1)
	m.NumClasses = 4
	m.Add(nn.NewMaxPool2D(2, 2)).Add(nn.NewFlatten()).Add(nn.NewSoftmax())
	rng := rand.New(rand.NewSource(23))
	calib := []*tensor.F32{randTensor(rng, 4, 4, 1)}
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	in := calib[0]
	qin := tensor.QuantizeF32(in, qm.InQ)
	pool := qm.RunOp(qm.Ops[0], qin)
	// Check each output equals max of quantized window.
	for oy := 0; oy < 2; oy++ {
		for ox := 0; ox < 2; ox++ {
			best := int8(-128)
			for ky := 0; ky < 2; ky++ {
				for kx := 0; kx < 2; kx++ {
					v := qin.Data[(oy*2+ky)*4+(ox*2+kx)]
					if v > best {
						best = v
					}
				}
			}
			if pool.Data[oy*2+ox] != best {
				t.Fatalf("pool mismatch at %d,%d", oy, ox)
			}
		}
	}
}

func BenchmarkQuantizedDense(b *testing.B) {
	m, calib := func() (*nn.Model, []*tensor.F32) {
		m := nn.NewModel(256)
		m.NumClasses = 10
		m.Add(nn.NewDense(128, nn.ReLU)).Add(nn.NewDense(10, nn.None)).Add(nn.NewSoftmax())
		nn.InitWeights(m, 1)
		rng := rand.New(rand.NewSource(2))
		return m, []*tensor.F32{randTensor(rng, 256)}
	}()
	qm, err := Quantize(m, calib)
	if err != nil {
		b.Fatal(err)
	}
	in := calib[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.Forward(in)
	}
}
