package quant

import (
	"fmt"
	"math"

	"edgepulse/internal/nn"
)

// FoldBatchNorm returns a copy of the model with every BatchNorm layer
// folded into the preceding convolution or dense layer — the operator
// fusion step the paper lists among its out-of-the-box compression
// techniques (Sec. 4.5). The returned model computes the same function
// (up to float rounding) with fewer ops.
func FoldBatchNorm(m *nn.Model) (*nn.Model, error) {
	folded, err := m.Clone()
	if err != nil {
		return nil, err
	}
	var kept []nn.Layer
	for _, l := range folded.Layers {
		bn, ok := l.(*nn.BatchNorm)
		if !ok {
			kept = append(kept, l)
			continue
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("quant: batchnorm with no preceding layer")
		}
		prev := kept[len(kept)-1]
		if err := foldInto(prev, bn); err != nil {
			return nil, err
		}
	}
	folded.Layers = kept
	if _, err := folded.OutputShape(); err != nil {
		return nil, err
	}
	return folded, nil
}

// foldInto rewrites prev's weights so that prev(x) == bn(prev_old(x)).
// Requires prev to have no nonlinearity after its affine part... since our
// layers fuse activations, folding is only valid when prev.Act == None or
// the activation commutes with positive scaling (ReLU with gamma > 0).
func foldInto(prev nn.Layer, bn *nn.BatchNorm) error {
	ch := len(bn.Gamma.Data)
	scale := make([]float32, ch)
	shift := make([]float32, ch)
	for c := 0; c < ch; c++ {
		inv := float32(1 / math.Sqrt(float64(bn.Var.Data[c]+bn.Eps)))
		scale[c] = bn.Gamma.Data[c] * inv
		shift[c] = bn.Beta.Data[c] - bn.Mean.Data[c]*scale[c]
	}
	applyPerChannel := func(w []float32, outChannels, chStride int, b []float32, act nn.Activation) error {
		if act != nn.None {
			for c := 0; c < ch; c++ {
				if scale[c] < 0 {
					return fmt.Errorf("quant: cannot fold batchnorm with negative gamma through %v", act)
				}
			}
		}
		for i := range w {
			c := (i / chStride) % outChannels
			w[i] *= scale[c]
		}
		for c := range b {
			b[c] = b[c]*scale[c] + shift[c]
		}
		return nil
	}
	switch v := prev.(type) {
	case *nn.Conv2D:
		if v.Filters != ch {
			return fmt.Errorf("quant: batchnorm channels %d != conv filters %d", ch, v.Filters)
		}
		// W layout [k,k,cin,f]: filter index has stride 1.
		return applyPerChannel(v.W.Data, v.Filters, 1, v.B.Data, v.Act)
	case *nn.DepthwiseConv2D:
		if len(v.B.Data) != ch {
			return fmt.Errorf("quant: batchnorm channels %d != depthwise channels %d", ch, len(v.B.Data))
		}
		return applyPerChannel(v.W.Data, ch, 1, v.B.Data, v.Act)
	case *nn.Conv1D:
		if v.Filters != ch {
			return fmt.Errorf("quant: batchnorm channels %d != conv1d filters %d", ch, v.Filters)
		}
		return applyPerChannel(v.W.Data, v.Filters, 1, v.B.Data, v.Act)
	case *nn.Dense:
		if v.Units != ch {
			return fmt.Errorf("quant: batchnorm channels %d != dense units %d", ch, v.Units)
		}
		return applyPerChannel(v.W.Data, v.Units, 1, v.B.Data, v.Act)
	default:
		return fmt.Errorf("quant: cannot fold batchnorm into %s", prev.Kind())
	}
}
