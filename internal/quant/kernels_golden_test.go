package quant

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"edgepulse/internal/simd"
	"edgepulse/internal/tensor"
)

// qOutDim mirrors the conv output-size rule the quantizer uses.
func qOutDim(in, kernel, stride, pad int) int {
	if pad == 1 {
		return (in + stride - 1) / stride
	}
	if in < kernel {
		return 0
	}
	return (in-kernel)/stride + 1
}

// randQOp builds a random quantized compute op with consistent shapes
// and a Rebind'd pair-weight layout.
func randQOp(rng *rand.Rand, kind string, inShape tensor.Shape, filters, kernel, stride, pad int) *QOp {
	op := &QOp{
		Kind:    kind,
		InShape: inShape.Clone(),
		InQ:     tensor.QParams{Scale: 0.11, ZeroPoint: int32(rng.Intn(41) - 20)},
		OutQ:    tensor.QParams{Scale: 0.09, ZeroPoint: int32(rng.Intn(41) - 20)},
		WScale:  0.013,
		Attrs:   map[string]float64{"kernel": float64(kernel), "stride": float64(stride), "padding": float64(pad)},
		ActMin:  -128,
		ActMax:  127,
	}
	var wLen, nOut int
	switch kind {
	case "dense":
		nOut = filters
		op.OutShape = tensor.Shape{filters}
		wLen = inShape.Elems() * filters
	case "conv2d":
		nOut = filters
		op.OutShape = tensor.Shape{
			qOutDim(inShape[0], kernel, stride, pad),
			qOutDim(inShape[1], kernel, stride, pad),
			filters,
		}
		wLen = kernel * kernel * inShape[2] * filters
	case "depthwise_conv2d":
		nOut = inShape[2]
		op.OutShape = tensor.Shape{
			qOutDim(inShape[0], kernel, stride, pad),
			qOutDim(inShape[1], kernel, stride, pad),
			inShape[2],
		}
		wLen = kernel * kernel * inShape[2]
	case "conv1d":
		nOut = filters
		op.OutShape = tensor.Shape{qOutDim(inShape[0], kernel, stride, pad), filters}
		wLen = kernel * inShape[1] * filters
	}
	op.W = make([]int8, wLen)
	for i := range op.W {
		op.W[i] = int8(rng.Intn(255) - 127)
	}
	op.Bias = make([]int32, nOut)
	for i := range op.Bias {
		op.Bias[i] = int32(rng.Intn(20001) - 10000)
	}
	op.Rebind()
	return op
}

// runBoth executes op through the pair-panel kernels and through the
// scalar reference (wPair stripped) and requires bitwise-equal outputs.
func runBoth(t *testing.T, q *QModel, op *QOp, in *tensor.I8) {
	t.Helper()
	if op.wPair == nil && op.Kind != "depthwise_conv2d" {
		t.Fatalf("%s: Rebind did not build wPair", op.Kind)
	}
	fast := q.RunOp(op, in)
	ref := *op
	ref.wPair = nil
	ref.wPairRow = nil
	slow := q.RunOp(&ref, in)
	if !bytes.Equal(int8Bytes(fast.Data), int8Bytes(slow.Data)) {
		for i := range fast.Data {
			if fast.Data[i] != slow.Data[i] {
				t.Fatalf("%s: elem %d = %d, reference %d", op.Kind, i, fast.Data[i], slow.Data[i])
			}
		}
	}
}

func int8Bytes(s []int8) []byte {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return b
}

// TestQuantKernelsGolden checks the vectorized int8 kernels are bitwise
// identical to the historical scalar loops across shapes (odd and even
// cin, cin=1 like the KWS head conv), strides and padding modes, with
// the assembly path both enabled and disabled.
func TestQuantKernelsGolden(t *testing.T) {
	type tc struct {
		kind    string
		in      tensor.Shape
		filters int
		kernel  int
		stride  int
		pad     int
	}
	cases := []tc{
		{"dense", tensor.Shape{64}, 12, 0, 1, 0},
		{"dense", tensor.Shape{33}, 7, 0, 1, 0},
		{"dense", tensor.Shape{1}, 3, 0, 1, 0},
		{"conv2d", tensor.Shape{9, 7, 8}, 16, 3, 1, 1},
		{"conv2d", tensor.Shape{9, 7, 5}, 9, 3, 2, 0},
		{"conv2d", tensor.Shape{49, 10, 1}, 64, 4, 2, 1},
		{"conv2d", tensor.Shape{6, 6, 64}, 64, 1, 1, 1},
		{"depthwise_conv2d", tensor.Shape{9, 7, 16}, 0, 3, 1, 1},
		{"depthwise_conv2d", tensor.Shape{8, 8, 5}, 0, 3, 2, 0},
		{"conv1d", tensor.Shape{40, 6}, 10, 5, 1, 1},
		{"conv1d", tensor.Shape{31, 3}, 8, 3, 2, 0},
	}
	for _, enabled := range []bool{true, false} {
		simd.SetEnabled(enabled)
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/%v/simd=%v", c.kind, c.in, enabled), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(c.kind)) + int64(c.in.Elems())))
				op := randQOp(rng, c.kind, c.in, c.filters, c.kernel, c.stride, c.pad)
				q := &QModel{InputShape: c.in.Clone(), InQ: op.InQ, Ops: []*QOp{op}}
				in := tensor.NewI8(op.InQ, c.in...)
				for i := range in.Data {
					in.Data[i] = int8(rng.Intn(256) - 128)
				}
				runBoth(t, q, op, in)
			})
		}
	}
	simd.SetEnabled(true)
}

// TestRunOpUnknownKindPanics is the regression test for the silent
// pass-through bug: an op kind with no int8 kernel must panic loudly
// instead of feeding its input to the next layer unchanged.
func TestRunOpUnknownKindPanics(t *testing.T) {
	q := &QModel{}
	op := &QOp{Kind: "sigmoid_lut", InShape: tensor.Shape{4}, OutShape: tensor.Shape{4}}
	in := tensor.NewI8(tensor.QParams{Scale: 1}, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("RunOp(%q) did not panic", op.Kind)
		}
	}()
	q.RunOp(op, in)
}

// TestRunOpFlattenCopies is the regression test for the aliasing bug:
// RunOp's identity ops must return a copy, so mutating the output never
// corrupts the caller's input tensor.
func TestRunOpFlattenCopies(t *testing.T) {
	q := &QModel{}
	in := tensor.NewI8(tensor.QParams{Scale: 1}, 2, 3)
	for i := range in.Data {
		in.Data[i] = int8(i)
	}
	for _, kind := range []string{"flatten", "reshape"} {
		op := &QOp{Kind: kind, InShape: tensor.Shape{2, 3}, OutShape: tensor.Shape{6}}
		out := q.RunOp(op, in)
		out.Data[0] = 99
		if in.Data[0] != 0 {
			t.Fatalf("%s: mutating RunOp output corrupted the input (in.Data[0] = %d)", kind, in.Data[0])
		}
		out.Data[0] = 0
		for i := range in.Data {
			if out.Data[i] != in.Data[i] {
				t.Fatalf("%s: output diverges at %d", kind, i)
			}
		}
	}
}
