// Package quant implements full int8 post-training quantization (paper
// Sec. 4.5): weight and activation quantization with a representative
// calibration dataset, integer-only inference kernels with fixed-point
// requantization, and operator fusion (batchnorm folding).
//
// The produced QModel mirrors TFLite int8 semantics: symmetric int8
// weights, asymmetric int8 activations, int32 bias and accumulators.
package quant

import (
	"fmt"
	"math"
	"sync"

	"edgepulse/internal/fastmath"
	"edgepulse/internal/nn"
	"edgepulse/internal/simd"
	"edgepulse/internal/tensor"
)

// QOp is one quantized operation.
type QOp struct {
	// Kind matches the float op kinds ("conv2d", "dense", ...).
	Kind string
	// InShape and OutShape are the activation shapes.
	InShape, OutShape tensor.Shape
	// W holds symmetric int8 weights (layout identical to the float op).
	W []int8
	// WScale is the weight scale (zero point 0).
	WScale float32
	// Bias holds int32 biases at scale InQ.Scale*WScale.
	Bias []int32
	// InQ and OutQ are the activation quantization parameters.
	InQ, OutQ tensor.QParams
	// Attrs carries layer hyperparameters (kernel, stride, ...).
	Attrs map[string]float64
	// MACs is the multiply-accumulate count of one invocation.
	MACs int64
	// ActMin and ActMax clamp the quantized output (fused activation).
	ActMin, ActMax int32

	mult  int32
	shift int
	// wPair holds the pair-interleaved int16 weight layout the VPMADDWD
	// kernels consume, one [ceil(cin/2) x filters] pair panel per kernel
	// tap (see simd.PairWeights). Built by Rebind; when nil the kernels
	// fall back to the scalar reference loops.
	wPair []int16
	// wPairRow is the cin==1 conv2d alternative layout: per kernel row
	// ky, the kx taps pair as if they were input channels, turning the
	// single-channel head conv's 1-pair taps into [kernel x filters]
	// panels over a contiguous input row. Built only for even kernel
	// widths (odd ones would need a phantom tap per row).
	wPairRow []int16
}

// WeightBytes returns the flash footprint of this op's parameters.
func (o *QOp) WeightBytes() int64 {
	return int64(len(o.W)) + int64(len(o.Bias))*4
}

// Rebind recomputes the derived kernel state from the op's serialized
// fields: the fixed-point requantization parameters and the
// pair-interleaved weight layout the vectorized int8 kernels consume.
// It must be called after constructing a QOp from its serialized fields
// (neither the multiplier nor the pair layout is persisted).
func (o *QOp) Rebind() {
	if len(o.W) == 0 {
		return
	}
	o.mult, o.shift = quantizeMultiplier(
		float64(o.InQ.Scale) * float64(o.WScale) / float64(o.OutQ.Scale))
	switch o.Kind {
	case "dense":
		o.wPair = simd.PairWeights(o.W, o.InShape.Elems(), o.OutShape.Elems())
	case "conv2d":
		kernel, _, _ := convDims(o)
		o.wPair = pairTaps(o.W, kernel*kernel, o.InShape[2], o.OutShape[2])
		if o.InShape[2] == 1 && kernel%2 == 0 {
			// Repair the taps row-wise: ky is the tap, kx the channel.
			o.wPairRow = pairTaps(o.W, kernel, kernel, o.OutShape[2])
		}
	case "conv1d":
		kernel, _, _ := convDims(o)
		o.wPair = pairTaps(o.W, kernel, o.InShape[1], o.OutShape[1])
	}
}

// pairTaps builds the per-tap pair panels for a conv weight tensor laid
// out as taps x [cin x nf].
func pairTaps(w []int8, taps, cin, nf int) []int16 {
	block := ((cin + 1) / 2) * nf * 2
	out := make([]int16, taps*block)
	for t := 0; t < taps; t++ {
		copy(out[t*block:(t+1)*block], simd.PairWeights(w[t*cin*nf:(t+1)*cin*nf], cin, nf))
	}
	return out
}

// QModel is a quantized model: an int8 op pipeline plus input/output
// quantization parameters. The final softmax runs in float, as TFLM does
// for its reference int8 kernels' output head.
type QModel struct {
	InputShape tensor.Shape
	InQ        tensor.QParams
	Ops        []*QOp
	NumClasses int

	// pool holds per-inference scratch (activation buffers + int32
	// accumulator row) so steady-state Forward calls do not allocate.
	pool sync.Pool
}

// qScratch is the pooled per-inference working state.
type qScratch struct {
	in     *tensor.I8
	outs   []*tensor.I8
	acc    []int32
	vp     []uint32
	logits []float32
}

// scratch draws (or builds) one inference's working buffers.
func (q *QModel) scratch() *qScratch {
	if s, ok := q.pool.Get().(*qScratch); ok {
		return s
	}
	s := &qScratch{in: tensor.NewI8(q.InQ, q.InputShape...)}
	maxAcc := 1
	for _, op := range q.Ops {
		var out *tensor.I8
		switch op.Kind {
		case "flatten", "reshape":
			// Aliasing ops get a header view; data is bound at run time.
			out = &tensor.I8{Shape: op.OutShape}
		default:
			out = tensor.NewI8(op.OutQ, op.OutShape...)
		}
		s.outs = append(s.outs, out)
		if row := accRowLen(op); row > maxAcc {
			maxAcc = row
		}
	}
	s.acc = make([]int32, maxAcc)
	maxVp := 0
	for _, op := range q.Ops {
		if n := vpLen(op); n > maxVp {
			maxVp = n
		}
	}
	s.vp = make([]uint32, maxVp)
	return s
}

// Forward quantizes the float input, runs the int8 pipeline, and returns
// float class probabilities. Activation buffers and the accumulator
// scratch are pooled, so repeated and concurrent calls reuse them; only
// the returned probability tensor is allocated.
func (q *QModel) Forward(in *tensor.F32) *tensor.F32 {
	s := q.scratch()
	x := s.in
	for i := range x.Data {
		x.Data[i] = q.InQ.Quantize(in.Data[i])
	}
	var probs *tensor.F32
	for i, op := range q.Ops {
		if op.Kind == "softmax" {
			probs = softmaxFloat(x, s)
			break
		}
		x = q.runOpInto(op, x, s.outs[i], s.acc, s.vp)
	}
	if probs == nil {
		probs = x.Dequantize()
	}
	q.pool.Put(s)
	return probs
}

// WeightBytes returns the total parameter flash footprint.
func (q *QModel) WeightBytes() int64 {
	var n int64
	for _, op := range q.Ops {
		n += op.WeightBytes()
	}
	return n
}

// MACs returns the total multiply-accumulate count of one inference.
func (q *QModel) MACs() int64 {
	var n int64
	for _, op := range q.Ops {
		n += op.MACs
	}
	return n
}

func softmaxFloat(x *tensor.I8, s *qScratch) *tensor.F32 {
	n := len(x.Data)
	if cap(s.logits) < n {
		s.logits = make([]float32, n)
	}
	logits := s.logits[:n]
	for i, qv := range x.Data {
		logits[i] = x.Q.Dequantize(qv)
	}
	out := tensor.NewF32(x.Shape...)
	max := logits[0]
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		var e float64
		if fastmath.Enabled() {
			e = float64(fastmath.ExpFast(v - max))
		} else {
			e = math.Exp(float64(v - max))
		}
		out.Data[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out.Data {
		out.Data[i] *= inv
	}
	return out
}

// Quantize converts a trained float model to int8 using the calibration
// set to determine activation ranges. BatchNorm layers are folded first;
// Dropout layers are dropped (inference no-ops).
func Quantize(m *nn.Model, calibration []*tensor.F32) (*QModel, error) {
	if len(calibration) == 0 {
		return nil, fmt.Errorf("quant: calibration set is empty")
	}
	folded, err := FoldBatchNorm(m)
	if err != nil {
		return nil, err
	}
	// Drop inference no-ops.
	var layers []nn.Layer
	for _, l := range folded.Layers {
		if _, isDrop := l.(*nn.Dropout); isDrop {
			continue
		}
		layers = append(layers, l)
	}
	folded.Layers = layers

	// Calibration: record min/max at every activation boundary.
	nBounds := len(folded.Layers) + 1
	lo := make([]float32, nBounds)
	hi := make([]float32, nBounds)
	for i := range lo {
		lo[i] = float32(math.Inf(1))
		hi[i] = float32(math.Inf(-1))
	}
	observe := func(b int, t *tensor.F32) {
		l, h := t.MinMax()
		if l < lo[b] {
			lo[b] = l
		}
		if h > hi[b] {
			hi[b] = h
		}
	}
	for _, sample := range calibration {
		if !sample.Shape.Equal(folded.InputShape) {
			return nil, fmt.Errorf("quant: calibration sample shape %v != input %v", sample.Shape, folded.InputShape)
		}
		observe(0, sample)
		x := sample
		for i, l := range folded.Layers {
			x = l.Forward(x)
			observe(i+1, x)
		}
	}
	qparams := make([]tensor.QParams, nBounds)
	for i := range qparams {
		qparams[i] = tensor.ChooseQParams(lo[i], hi[i])
	}

	specs, err := folded.Spec()
	if err != nil {
		return nil, err
	}
	qm := &QModel{
		InputShape: folded.InputShape.Clone(),
		InQ:        qparams[0],
		NumClasses: m.NumClasses,
	}
	for i, l := range folded.Layers {
		op := &QOp{
			Kind:     l.Kind(),
			InShape:  specs[i].InShape,
			OutShape: specs[i].OutShape,
			InQ:      qparams[i],
			OutQ:     qparams[i+1],
			Attrs:    specs[i].Attrs,
			MACs:     specs[i].MACs,
			ActMin:   -128,
			ActMax:   127,
		}
		if err := quantizeLayer(op, l); err != nil {
			return nil, err
		}
		qm.Ops = append(qm.Ops, op)
	}
	return qm, nil
}

// quantizeLayer fills op with quantized weights for compute layers and
// adjusts pass-through ops.
func quantizeLayer(op *QOp, l nn.Layer) error {
	var w, b *tensor.F32
	var act nn.Activation
	switch v := l.(type) {
	case *nn.Dense:
		w, b, act = v.W, v.B, v.Act
	case *nn.Conv2D:
		w, b, act = v.W, v.B, v.Act
	case *nn.DepthwiseConv2D:
		w, b, act = v.W, v.B, v.Act
	case *nn.Conv1D:
		w, b, act = v.W, v.B, v.Act
	case *nn.MaxPool2D, *nn.AvgPool2D, *nn.MaxPool1D, *nn.GlobalAvgPool2D,
		*nn.Flatten, *nn.Reshape, *nn.Softmax:
		// Pass-through ops: pooling reuses the input qparams so maxima
		// and averages stay exact in the quantized domain.
		if op.Kind != "softmax" {
			op.OutQ = op.InQ
		}
		return nil
	default:
		return fmt.Errorf("quant: unsupported layer %s", l.Kind())
	}
	if act == nn.Sigmoid {
		return fmt.Errorf("quant: fused sigmoid is not supported in int8 (layer %s)", l.Kind())
	}
	// Symmetric weight quantization.
	absMax := w.AbsMax()
	if absMax == 0 {
		absMax = 1e-8
	}
	op.WScale = absMax / 127
	op.W = make([]int8, len(w.Data))
	for i, v := range w.Data {
		q := int32(math.Round(float64(v) / float64(op.WScale)))
		op.W[i] = int8(clampI32(q, -127, 127))
	}
	// Bias at accumulator scale.
	biasScale := float64(op.InQ.Scale) * float64(op.WScale)
	op.Bias = make([]int32, len(b.Data))
	for i, v := range b.Data {
		op.Bias[i] = int32(math.Round(float64(v) / biasScale))
	}
	// Requantization multiplier and pair-interleaved kernel weights.
	op.Rebind()
	// Fused activation clamps in the quantized output domain.
	switch act {
	case nn.ReLU:
		op.ActMin = clampI32(op.OutQ.ZeroPoint, -128, 127)
	case nn.ReLU6:
		op.ActMin = clampI32(op.OutQ.ZeroPoint, -128, 127)
		op.ActMax = int32(op.OutQ.Quantize(6))
	}
	return nil
}
