package quant

import "math"

// quantizeMultiplier decomposes a positive real multiplier into a Q31
// fixed-point mantissa and a left shift (negative = right shift), the
// representation integer-only inference kernels use for requantization.
func quantizeMultiplier(real float64) (mult int32, shift int) {
	if real <= 0 {
		return 0, 0
	}
	frac, exp := math.Frexp(real) // real = frac * 2^exp, frac in [0.5, 1)
	q := int64(math.Round(frac * (1 << 31)))
	if q == 1<<31 { // rounding overflow
		q /= 2
		exp++
	}
	return int32(q), exp
}

// multiplyByQuantizedMultiplier computes round(acc * mult * 2^shift / 2^31)
// with saturating arithmetic, matching the TFLite reference requantization.
func multiplyByQuantizedMultiplier(acc int32, mult int32, shift int) int32 {
	leftShift := 0
	rightShift := 0
	if shift > 0 {
		leftShift = shift
	} else {
		rightShift = -shift
	}
	v := int64(acc) << leftShift
	// Rounding doubling high multiply: round(v * mult / 2^31).
	prod := v * int64(mult)
	nudge := int64(1) << 30
	if prod < 0 {
		nudge = 1 - nudge
	}
	high := (prod + nudge) >> 31
	// Rounding right shift.
	if rightShift > 0 {
		round := int64(1) << (rightShift - 1)
		high = (high + round) >> rightShift
	}
	if high > math.MaxInt32 {
		high = math.MaxInt32
	}
	if high < math.MinInt32 {
		high = math.MinInt32
	}
	return int32(high)
}

func clampI32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
