package quant

import (
	"edgepulse/internal/tensor"
)

// RunOp executes a single quantized op (used by the EON compiler to bind
// ops into a static call plan).
func (q *QModel) RunOp(op *QOp, in *tensor.I8) *tensor.I8 { return q.runOp(op, in) }

// runOp dispatches one quantized op. All compute kernels use int32
// accumulators over (q_in - in_zp) * q_w products, add the int32 bias,
// requantize with the op's fixed-point multiplier, add the output zero
// point and clamp to the fused activation range — the same dataflow as
// CMSIS-NN / TFLM reference int8 kernels.
func (q *QModel) runOp(op *QOp, in *tensor.I8) *tensor.I8 {
	switch op.Kind {
	case "dense":
		return q.qDense(op, in)
	case "conv2d":
		return q.qConv2D(op, in)
	case "depthwise_conv2d":
		return q.qDepthwise(op, in)
	case "conv1d":
		return q.qConv1D(op, in)
	case "maxpool2d":
		return q.qMaxPool2D(op, in)
	case "avgpool2d":
		return q.qAvgPool2D(op, in)
	case "maxpool1d":
		return q.qMaxPool1D(op, in)
	case "gap2d":
		return q.qGAP(op, in)
	case "flatten", "reshape":
		return &tensor.I8{Shape: op.OutShape.Clone(), Data: in.Data, Q: in.Q}
	default:
		// Unknown pass-through: keep data (softmax handled by caller).
		return in
	}
}

// requant converts an int32 accumulator to the quantized output domain.
func requant(op *QOp, acc int32) int8 {
	v := multiplyByQuantizedMultiplier(acc, op.mult, op.shift) + op.OutQ.ZeroPoint
	return int8(clampI32(v, op.ActMin, op.ActMax))
}

func (q *QModel) qDense(op *QOp, in *tensor.I8) *tensor.I8 {
	nIn := op.InShape.Elems()
	nOut := op.OutShape.Elems()
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	inZP := op.InQ.ZeroPoint
	for j := 0; j < nOut; j++ {
		acc := op.Bias[j]
		for i := 0; i < nIn; i++ {
			acc += (int32(in.Data[i]) - inZP) * int32(op.W[i*nOut+j])
		}
		out.Data[j] = requant(op, acc)
	}
	return out
}

func convDims(op *QOp) (kernel, stride, pad int) {
	kernel = int(op.Attrs["kernel"])
	stride = int(op.Attrs["stride"])
	if stride < 1 {
		stride = 1
	}
	pad = int(op.Attrs["padding"]) // 0 = valid, 1 = same
	return kernel, stride, pad
}

// samePad computes the leading pad for Same padding.
func samePad(in, kernel, stride, outDim int) int {
	total := (outDim-1)*stride + kernel - in
	if total < 0 {
		total = 0
	}
	return total / 2
}

func (q *QModel) qConv2D(op *QOp, in *tensor.I8) *tensor.I8 {
	h, w, cin := op.InShape[0], op.InShape[1], op.InShape[2]
	oh, ow, filters := op.OutShape[0], op.OutShape[1], op.OutShape[2]
	kernel, stride, pad := convDims(op)
	py, px := 0, 0
	if pad == 1 {
		py = samePad(h, kernel, stride, oh)
		px = samePad(w, kernel, stride, ow)
	}
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	inZP := op.InQ.ZeroPoint
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < filters; f++ {
				acc := op.Bias[f]
				for ky := 0; ky < kernel; ky++ {
					iy := oy*stride + ky - py
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						ix := ox*stride + kx - px
						if ix < 0 || ix >= w {
							continue
						}
						inBase := (iy*w + ix) * cin
						wBase := (ky*kernel + kx) * cin * filters
						for ci := 0; ci < cin; ci++ {
							acc += (int32(in.Data[inBase+ci]) - inZP) * int32(op.W[wBase+ci*filters+f])
						}
					}
				}
				out.Data[(oy*ow+ox)*filters+f] = requant(op, acc)
			}
		}
	}
	return out
}

func (q *QModel) qDepthwise(op *QOp, in *tensor.I8) *tensor.I8 {
	h, w, ch := op.InShape[0], op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	kernel, stride, pad := convDims(op)
	py, px := 0, 0
	if pad == 1 {
		py = samePad(h, kernel, stride, oh)
		px = samePad(w, kernel, stride, ow)
	}
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	inZP := op.InQ.ZeroPoint
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				acc := op.Bias[c]
				for ky := 0; ky < kernel; ky++ {
					iy := oy*stride + ky - py
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						ix := ox*stride + kx - px
						if ix < 0 || ix >= w {
							continue
						}
						acc += (int32(in.Data[(iy*w+ix)*ch+c]) - inZP) * int32(op.W[(ky*kernel+kx)*ch+c])
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = requant(op, acc)
			}
		}
	}
	return out
}

func (q *QModel) qConv1D(op *QOp, in *tensor.I8) *tensor.I8 {
	t, cin := op.InShape[0], op.InShape[1]
	ot, filters := op.OutShape[0], op.OutShape[1]
	kernel, stride, pad := convDims(op)
	p := 0
	if pad == 1 {
		p = samePad(t, kernel, stride, ot)
	}
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	inZP := op.InQ.ZeroPoint
	for o := 0; o < ot; o++ {
		for f := 0; f < filters; f++ {
			acc := op.Bias[f]
			for k := 0; k < kernel; k++ {
				i := o*stride + k - p
				if i < 0 || i >= t {
					continue
				}
				inBase := i * cin
				wBase := k * cin * filters
				for ci := 0; ci < cin; ci++ {
					acc += (int32(in.Data[inBase+ci]) - inZP) * int32(op.W[wBase+ci*filters+f])
				}
			}
			out.Data[o*filters+f] = requant(op, acc)
		}
	}
	return out
}

func poolDims(op *QOp) (size, stride int) {
	size = int(op.Attrs["size"])
	stride = int(op.Attrs["stride"])
	if stride < 1 {
		stride = size
	}
	return size, stride
}

func (q *QModel) qMaxPool2D(op *QOp, in *tensor.I8) *tensor.I8 {
	h, w, ch := op.InShape[0], op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	size, stride := poolDims(op)
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				best := int8(-128)
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						v := in.Data[((oy*stride+ky)*w+(ox*stride+kx))*ch+c]
						if v > best {
							best = v
						}
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = best
			}
		}
	}
	_ = h
	return out
}

func (q *QModel) qAvgPool2D(op *QOp, in *tensor.I8) *tensor.I8 {
	w, ch := op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	size, stride := poolDims(op)
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	n := int32(size * size)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				var acc int32
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						acc += int32(in.Data[((oy*stride+ky)*w+(ox*stride+kx))*ch+c])
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = int8(clampI32(roundDiv(acc, n), -128, 127))
			}
		}
	}
	return out
}

func (q *QModel) qMaxPool1D(op *QOp, in *tensor.I8) *tensor.I8 {
	ch := op.InShape[1]
	ot := op.OutShape[0]
	size, stride := poolDims(op)
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	for o := 0; o < ot; o++ {
		for c := 0; c < ch; c++ {
			best := int8(-128)
			for k := 0; k < size; k++ {
				v := in.Data[(o*stride+k)*ch+c]
				if v > best {
					best = v
				}
			}
			out.Data[o*ch+c] = best
		}
	}
	return out
}

func (q *QModel) qGAP(op *QOp, in *tensor.I8) *tensor.I8 {
	h, w, ch := op.InShape[0], op.InShape[1], op.InShape[2]
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	n := int32(h * w)
	for c := 0; c < ch; c++ {
		var acc int32
		for i := 0; i < h*w; i++ {
			acc += int32(in.Data[i*ch+c])
		}
		out.Data[c] = int8(clampI32(roundDiv(acc, n), -128, 127))
	}
	return out
}

// roundDiv divides with round-half-away-from-zero semantics.
func roundDiv(a, b int32) int32 {
	if a >= 0 {
		return (a + b/2) / b
	}
	return (a - b/2) / b
}
