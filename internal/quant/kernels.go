package quant

import (
	"edgepulse/internal/tensor"
)

// RunOp executes a single quantized op into a freshly allocated output
// (kept for callers that bind individual ops, e.g. tests and the EON
// C++ emitter); the hot path goes through runOpInto with pooled buffers.
func (q *QModel) RunOp(op *QOp, in *tensor.I8) *tensor.I8 {
	switch op.Kind {
	case "flatten", "reshape":
		return &tensor.I8{Shape: op.OutShape.Clone(), Data: in.Data, Q: in.Q}
	}
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	acc := make([]int32, accRowLen(op))
	return q.runOpInto(op, in, out, acc)
}

// accRowLen returns the per-pixel int32 accumulator width an op needs.
func accRowLen(op *QOp) int {
	switch op.Kind {
	case "dense":
		return op.OutShape.Elems()
	case "conv2d", "depthwise_conv2d", "conv1d":
		return op.OutShape[len(op.OutShape)-1]
	}
	return 1
}

// runOpInto dispatches one quantized op, writing into out. All compute
// kernels use int32 accumulators over (q_in - in_zp) * q_w products, add
// the int32 bias, requantize with the op's fixed-point multiplier, add
// the output zero point and clamp to the fused activation range — the
// same dataflow as CMSIS-NN / TFLM reference int8 kernels. Inner loops
// accumulate over the filter-contiguous weight rows into a per-pixel
// int32 row (acc), so weight accesses are sequential; integer addition
// is exact, so results are bitwise identical to the filter-major order.
func (q *QModel) runOpInto(op *QOp, in, out *tensor.I8, acc []int32) *tensor.I8 {
	switch op.Kind {
	case "dense":
		qDense(op, in, out, acc)
	case "conv2d":
		qConv2D(op, in, out, acc)
	case "depthwise_conv2d":
		qDepthwise(op, in, out, acc)
	case "conv1d":
		qConv1D(op, in, out, acc)
	case "maxpool2d":
		qMaxPool2D(op, in, out)
	case "avgpool2d":
		qAvgPool2D(op, in, out)
	case "maxpool1d":
		qMaxPool1D(op, in, out)
	case "gap2d":
		qGAP(op, in, out)
	case "flatten", "reshape":
		out.Data = in.Data
		out.Q = in.Q
	default:
		// Unknown pass-through: keep data (softmax handled by caller).
		return in
	}
	return out
}

// requant converts an int32 accumulator to the quantized output domain.
func requant(op *QOp, acc int32) int8 {
	v := multiplyByQuantizedMultiplier(acc, op.mult, op.shift) + op.OutQ.ZeroPoint
	return int8(clampI32(v, op.ActMin, op.ActMax))
}

func qDense(op *QOp, in, out *tensor.I8, acc []int32) {
	nIn := op.InShape.Elems()
	nOut := op.OutShape.Elems()
	row := acc[:nOut]
	copy(row, op.Bias)
	inZP := op.InQ.ZeroPoint
	for i := 0; i < nIn; i++ {
		v := int32(in.Data[i]) - inZP
		wRow := op.W[i*nOut : (i+1)*nOut]
		for j, wv := range wRow {
			row[j] += v * int32(wv)
		}
	}
	for j, a := range row {
		out.Data[j] = requant(op, a)
	}
}

func convDims(op *QOp) (kernel, stride, pad int) {
	kernel = int(op.Attrs["kernel"])
	stride = int(op.Attrs["stride"])
	if stride < 1 {
		stride = 1
	}
	pad = int(op.Attrs["padding"]) // 0 = valid, 1 = same
	return kernel, stride, pad
}

// samePad computes the leading pad for Same padding.
func samePad(in, kernel, stride, outDim int) int {
	total := (outDim-1)*stride + kernel - in
	if total < 0 {
		total = 0
	}
	return total / 2
}

func qConv2D(op *QOp, in, out *tensor.I8, acc []int32) {
	h, w, cin := op.InShape[0], op.InShape[1], op.InShape[2]
	oh, ow, filters := op.OutShape[0], op.OutShape[1], op.OutShape[2]
	kernel, stride, pad := convDims(op)
	py, px := 0, 0
	if pad == 1 {
		py = samePad(h, kernel, stride, oh)
		px = samePad(w, kernel, stride, ow)
	}
	inZP := op.InQ.ZeroPoint
	row := acc[:filters]
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			copy(row, op.Bias)
			for ky := 0; ky < kernel; ky++ {
				iy := oy*stride + ky - py
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kernel; kx++ {
					ix := ox*stride + kx - px
					if ix < 0 || ix >= w {
						continue
					}
					inBase := (iy*w + ix) * cin
					wBase := (ky*kernel + kx) * cin * filters
					for ci := 0; ci < cin; ci++ {
						v := int32(in.Data[inBase+ci]) - inZP
						wRow := op.W[wBase+ci*filters : wBase+(ci+1)*filters]
						for f, wv := range wRow {
							row[f] += v * int32(wv)
						}
					}
				}
			}
			dst := out.Data[(oy*ow+ox)*filters : (oy*ow+ox+1)*filters]
			for f, a := range row {
				dst[f] = requant(op, a)
			}
		}
	}
}

func qDepthwise(op *QOp, in, out *tensor.I8, acc []int32) {
	h, w, ch := op.InShape[0], op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	kernel, stride, pad := convDims(op)
	py, px := 0, 0
	if pad == 1 {
		py = samePad(h, kernel, stride, oh)
		px = samePad(w, kernel, stride, ow)
	}
	inZP := op.InQ.ZeroPoint
	row := acc[:ch]
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			copy(row, op.Bias)
			for ky := 0; ky < kernel; ky++ {
				iy := oy*stride + ky - py
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kernel; kx++ {
					ix := ox*stride + kx - px
					if ix < 0 || ix >= w {
						continue
					}
					inRow := in.Data[(iy*w+ix)*ch : (iy*w+ix+1)*ch]
					wRow := op.W[(ky*kernel+kx)*ch : (ky*kernel+kx+1)*ch]
					for ci, wv := range wRow {
						row[ci] += (int32(inRow[ci]) - inZP) * int32(wv)
					}
				}
			}
			dst := out.Data[(oy*ow+ox)*ch : (oy*ow+ox+1)*ch]
			for ci, a := range row {
				dst[ci] = requant(op, a)
			}
		}
	}
}

func qConv1D(op *QOp, in, out *tensor.I8, acc []int32) {
	t, cin := op.InShape[0], op.InShape[1]
	ot, filters := op.OutShape[0], op.OutShape[1]
	kernel, stride, pad := convDims(op)
	p := 0
	if pad == 1 {
		p = samePad(t, kernel, stride, ot)
	}
	inZP := op.InQ.ZeroPoint
	row := acc[:filters]
	for o := 0; o < ot; o++ {
		copy(row, op.Bias)
		for k := 0; k < kernel; k++ {
			i := o*stride + k - p
			if i < 0 || i >= t {
				continue
			}
			inBase := i * cin
			wBase := k * cin * filters
			for ci := 0; ci < cin; ci++ {
				v := int32(in.Data[inBase+ci]) - inZP
				wRow := op.W[wBase+ci*filters : wBase+(ci+1)*filters]
				for f, wv := range wRow {
					row[f] += v * int32(wv)
				}
			}
		}
		dst := out.Data[o*filters : (o+1)*filters]
		for f, a := range row {
			dst[f] = requant(op, a)
		}
	}
}

func poolDims(op *QOp) (size, stride int) {
	size = int(op.Attrs["size"])
	stride = int(op.Attrs["stride"])
	if stride < 1 {
		stride = size
	}
	return size, stride
}

func qMaxPool2D(op *QOp, in, out *tensor.I8) {
	w, ch := op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	size, stride := poolDims(op)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				best := int8(-128)
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						v := in.Data[((oy*stride+ky)*w+(ox*stride+kx))*ch+c]
						if v > best {
							best = v
						}
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = best
			}
		}
	}
}

func qAvgPool2D(op *QOp, in, out *tensor.I8) {
	w, ch := op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	size, stride := poolDims(op)
	n := int32(size * size)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				var acc int32
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						acc += int32(in.Data[((oy*stride+ky)*w+(ox*stride+kx))*ch+c])
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = int8(clampI32(roundDiv(acc, n), -128, 127))
			}
		}
	}
}

func qMaxPool1D(op *QOp, in, out *tensor.I8) {
	ch := op.InShape[1]
	ot := op.OutShape[0]
	size, stride := poolDims(op)
	for o := 0; o < ot; o++ {
		for c := 0; c < ch; c++ {
			best := int8(-128)
			for k := 0; k < size; k++ {
				v := in.Data[(o*stride+k)*ch+c]
				if v > best {
					best = v
				}
			}
			out.Data[o*ch+c] = best
		}
	}
}

func qGAP(op *QOp, in, out *tensor.I8) {
	h, w, ch := op.InShape[0], op.InShape[1], op.InShape[2]
	n := int32(h * w)
	for c := 0; c < ch; c++ {
		var acc int32
		for i := 0; i < h*w; i++ {
			acc += int32(in.Data[i*ch+c])
		}
		out.Data[c] = int8(clampI32(roundDiv(acc, n), -128, 127))
	}
}

// roundDiv divides with round-half-away-from-zero semantics.
func roundDiv(a, b int32) int32 {
	if a >= 0 {
		return (a + b/2) / b
	}
	return (a - b/2) / b
}
