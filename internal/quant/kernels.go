package quant

import (
	"fmt"

	"edgepulse/internal/simd"
	"edgepulse/internal/tensor"
)

// RunOp executes a single quantized op into a freshly allocated output
// (kept for callers that bind individual ops, e.g. tests and the EON
// C++ emitter); the hot path goes through runOpInto with pooled buffers.
// The output never aliases the input: identity ops (flatten, reshape)
// copy, so mutating the result cannot corrupt the caller's tensor.
func (q *QModel) RunOp(op *QOp, in *tensor.I8) *tensor.I8 {
	switch op.Kind {
	case "flatten", "reshape":
		return &tensor.I8{
			Shape: op.OutShape.Clone(),
			Data:  append([]int8(nil), in.Data...),
			Q:     in.Q,
		}
	}
	out := tensor.NewI8(op.OutQ, op.OutShape...)
	acc := make([]int32, accRowLen(op))
	vp := make([]uint32, vpLen(op))
	return q.runOpInto(op, in, out, acc, vp)
}

// accRowLen returns the int32 accumulator scratch width an op needs:
// one output row for the 2-D convs (so requantization batches over the
// whole row), one pixel row for conv1d, the whole output for dense.
func accRowLen(op *QOp) int {
	switch op.Kind {
	case "dense":
		return op.OutShape.Elems()
	case "conv2d", "depthwise_conv2d":
		return op.OutShape[1] * op.OutShape[2]
	case "conv1d":
		return op.OutShape[1]
	}
	return 1
}

// vpLen returns the packed input-pair scratch length (uint32 words) an
// op needs: every input pixel padded to whole pairs (see simd.PackPairs).
// Single-channel conv2d packs each input row twice — once per pair
// alignment phase — so panels may start at any x offset.
func vpLen(op *QOp) int {
	switch op.Kind {
	case "dense":
		return (op.InShape.Elems() + 1) / 2
	case "conv2d":
		if op.InShape[2] == 1 {
			return op.InShape[0] * 2 * ((op.InShape[1] + 1) / 2)
		}
		return op.InShape[0] * op.InShape[1] * ((op.InShape[2] + 1) / 2)
	case "conv1d":
		return op.InShape[0] * ((op.InShape[1] + 1) / 2)
	}
	return 0
}

// packInput packs a whole activation tensor of pixel rows with cin lanes
// each into the pair stream the int8 kernels consume, returning the
// per-pixel pitch in pairs. Even cin packs in one sweep; odd cin pads
// every pixel to a whole pair (the phantom lane multiplies a zero weight
// lane, contributing nothing).
func packInput(vp []uint32, data []int8, cin int, zp int32) int {
	if cin%2 == 0 {
		simd.PackPairs(vp, data, zp)
		return cin / 2
	}
	pp := (cin + 1) / 2
	for px := 0; px*cin < len(data); px++ {
		simd.PackPairs(vp[px*pp:(px+1)*pp], data[px*cin:(px+1)*cin], zp)
	}
	return pp
}

// runOpInto dispatches one quantized op, writing into out. All compute
// kernels use int32 accumulators over (q_in - in_zp) * q_w products, add
// the int32 bias, requantize with the op's fixed-point multiplier, add
// the output zero point and clamp to the fused activation range — the
// same dataflow as CMSIS-NN / TFLM reference int8 kernels. The inner
// loops run on the package simd primitives (VPMADDWD dual-MAC panels,
// vectorized requantization); integer arithmetic is exact, so results
// are bitwise identical to the scalar reference order.
//
// An unrecognized kind panics: silently passing the input through would
// corrupt every downstream activation (softmax never reaches here — the
// Forward loop hands it to the float head before dispatch).
func (q *QModel) runOpInto(op *QOp, in, out *tensor.I8, acc []int32, vp []uint32) *tensor.I8 {
	switch op.Kind {
	case "dense":
		qDense(op, in, out, acc, vp)
	case "conv2d":
		qConv2D(op, in, out, acc, vp)
	case "depthwise_conv2d":
		qDepthwise(op, in, out, acc)
	case "conv1d":
		qConv1D(op, in, out, acc, vp)
	case "maxpool2d":
		qMaxPool2D(op, in, out)
	case "avgpool2d":
		qAvgPool2D(op, in, out)
	case "maxpool1d":
		qMaxPool1D(op, in, out)
	case "gap2d":
		qGAP(op, in, out)
	case "flatten", "reshape":
		out.Data = in.Data
		out.Q = in.Q
	default:
		panic(fmt.Sprintf("quant: no int8 kernel for op kind %q (softmax runs in the float head)", op.Kind))
	}
	return out
}

// requant converts an int32 accumulator to the quantized output domain
// (the scalar reference; batch requantization goes through simd.RequantI8,
// which is bit-for-bit identical).
func requant(op *QOp, acc int32) int8 {
	v := multiplyByQuantizedMultiplier(acc, op.mult, op.shift) + op.OutQ.ZeroPoint
	return int8(clampI32(v, op.ActMin, op.ActMax))
}

func qDense(op *QOp, in, out *tensor.I8, acc []int32, vp []uint32) {
	nIn := op.InShape.Elems()
	nOut := op.OutShape.Elems()
	row := acc[:nOut]
	copy(row, op.Bias)
	inZP := op.InQ.ZeroPoint
	if op.wPair != nil {
		pairs := simd.PackPairs(vp, in.Data[:nIn], inZP)
		simd.ConvAccI8(row, op.wPair, vp[:pairs], nOut)
		simd.RequantI8(out.Data[:nOut], row, op.mult, op.shift, op.OutQ.ZeroPoint, op.ActMin, op.ActMax)
		return
	}
	for i := 0; i < nIn; i++ {
		v := int32(in.Data[i]) - inZP
		wRow := op.W[i*nOut : (i+1)*nOut]
		for j, wv := range wRow {
			row[j] += v * int32(wv)
		}
	}
	for j, a := range row {
		out.Data[j] = requant(op, a)
	}
}

func convDims(op *QOp) (kernel, stride, pad int) {
	kernel = int(op.Attrs["kernel"])
	stride = int(op.Attrs["stride"])
	if stride < 1 {
		stride = 1
	}
	pad = int(op.Attrs["padding"]) // 0 = valid, 1 = same
	return kernel, stride, pad
}

// samePad computes the leading pad for Same padding.
func samePad(in, kernel, stride, outDim int) int {
	total := (outDim-1)*stride + kernel - in
	if total < 0 {
		total = 0
	}
	return total / 2
}

func qConv2D(op *QOp, in, out *tensor.I8, acc []int32, vp []uint32) {
	h, w, cin := op.InShape[0], op.InShape[1], op.InShape[2]
	oh, ow, filters := op.OutShape[0], op.OutShape[1], op.OutShape[2]
	kernel, stride, pad := convDims(op)
	py, px := 0, 0
	if pad == 1 {
		py = samePad(h, kernel, stride, oh)
		px = samePad(w, kernel, stride, ow)
	}
	inZP := op.InQ.ZeroPoint
	if op.wPairRow != nil && op.wPair != nil && cin == 1 {
		qConv2DCin1(op, in, out, acc, vp)
		return
	}
	if op.wPair != nil {
		// Pack the whole input once, then accumulate [cin x filters]
		// pair panels per valid tap with the tap range hoisted out of
		// the inner loops; requantization batches per output row.
		pp := packInput(vp, in.Data, cin, inZP)
		tapBlock := pp * filters * 2
		rowAcc := acc[:ow*filters]
		for oy := 0; oy < oh; oy++ {
			kyLo, kyHi := 0, kernel
			if d := py - oy*stride; d > 0 {
				kyLo = d
			}
			if d := h + py - oy*stride; d < kyHi {
				kyHi = d
			}
			for ox := 0; ox < ow; ox++ {
				seg := rowAcc[ox*filters : (ox+1)*filters]
				copy(seg, op.Bias)
				kxLo, kxHi := 0, kernel
				if d := px - ox*stride; d > 0 {
					kxLo = d
				}
				if d := w + px - ox*stride; d < kxHi {
					kxHi = d
				}
				for ky := kyLo; ky < kyHi; ky++ {
					iy := oy*stride + ky - py
					for kx := kxLo; kx < kxHi; kx++ {
						ix := ox*stride + kx - px
						tap := ky*kernel + kx
						pix := (iy*w + ix) * pp
						simd.ConvAccI8(seg, op.wPair[tap*tapBlock:(tap+1)*tapBlock], vp[pix:pix+pp], filters)
					}
				}
			}
			simd.RequantI8(out.Data[oy*ow*filters:(oy+1)*ow*filters],
				rowAcc, op.mult, op.shift, op.OutQ.ZeroPoint, op.ActMin, op.ActMax)
		}
		return
	}
	row := acc[:filters]
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			copy(row, op.Bias)
			for ky := 0; ky < kernel; ky++ {
				iy := oy*stride + ky - py
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kernel; kx++ {
					ix := ox*stride + kx - px
					if ix < 0 || ix >= w {
						continue
					}
					inBase := (iy*w + ix) * cin
					wBase := (ky*kernel + kx) * cin * filters
					for ci := 0; ci < cin; ci++ {
						v := int32(in.Data[inBase+ci]) - inZP
						wRow := op.W[wBase+ci*filters : wBase+(ci+1)*filters]
						for f, wv := range wRow {
							row[f] += v * int32(wv)
						}
					}
				}
			}
			dst := out.Data[(oy*ow+ox)*filters : (oy*ow+ox+1)*filters]
			for f, a := range row {
				dst[f] = requant(op, a)
			}
		}
	}
}

// qConv2DCin1 is the single-input-channel conv2d fast path (the KWS
// head conv). Per-tap panels would hold one pair each, so instead the
// kx taps of one kernel row pair up as if they were channels: each
// (oy, ox, ky) becomes one [kernel x filters] panel over a contiguous
// stretch of the input row. Every input row is packed twice, once per
// pair-alignment phase, so a panel may start at any x offset. Integer
// accumulation is exact, so the regrouped order is bitwise-identical
// to the scalar reference.
func qConv2DCin1(op *QOp, in, out *tensor.I8, acc []int32, vp []uint32) {
	h, w := op.InShape[0], op.InShape[1]
	oh, ow, filters := op.OutShape[0], op.OutShape[1], op.OutShape[2]
	kernel, stride, pad := convDims(op)
	py, px := 0, 0
	if pad == 1 {
		py = samePad(h, kernel, stride, oh)
		px = samePad(w, kernel, stride, ow)
	}
	inZP := op.InQ.ZeroPoint
	// Phase streams: vp[iy*2S .. ] pairs lanes (0,1),(2,3),...;
	// vp[iy*2S+S .. ] pairs lanes (1,2),(3,4),...
	S := (w + 1) / 2
	for iy := 0; iy < h; iy++ {
		simd.PackPairs(vp[iy*2*S:], in.Data[iy*w:(iy+1)*w], inZP)
		if w > 1 {
			simd.PackPairs(vp[iy*2*S+S:], in.Data[iy*w+1:(iy+1)*w], inZP)
		}
	}
	block := (kernel / 2) * filters * 2
	tapBlock := filters * 2 // generic single-pair tap panels
	rowAcc := acc[:ow*filters]
	var one [1]uint32
	for oy := 0; oy < oh; oy++ {
		kyLo, kyHi := 0, kernel
		if d := py - oy*stride; d > 0 {
			kyLo = d
		}
		if d := h + py - oy*stride; d < kyHi {
			kyHi = d
		}
		for ox := 0; ox < ow; ox++ {
			seg := rowAcc[ox*filters : (ox+1)*filters]
			copy(seg, op.Bias)
			kxLo, kxHi := 0, kernel
			if d := px - ox*stride; d > 0 {
				kxLo = d
			}
			if d := w + px - ox*stride; d < kxHi {
				kxHi = d
			}
			if kxLo == 0 && kxHi == kernel {
				ix0 := ox*stride - px
				base := ix0&1*S + ix0>>1
				for ky := kyLo; ky < kyHi; ky++ {
					iy := oy*stride + ky - py
					p0 := iy*2*S + base
					simd.ConvAccI8(seg, op.wPairRow[ky*block:(ky+1)*block], vp[p0:p0+kernel/2], filters)
				}
			} else {
				// x-clipped boundary pixels fall back to single-pair taps.
				for ky := kyLo; ky < kyHi; ky++ {
					iy := oy*stride + ky - py
					for kx := kxLo; kx < kxHi; kx++ {
						ix := ox*stride + kx - px
						one[0] = uint32(uint16(int32(in.Data[iy*w+ix]) - inZP))
						tap := ky*kernel + kx
						simd.ConvAccI8(seg, op.wPair[tap*tapBlock:(tap+1)*tapBlock], one[:], filters)
					}
				}
			}
		}
		simd.RequantI8(out.Data[oy*ow*filters:(oy+1)*ow*filters],
			rowAcc, op.mult, op.shift, op.OutQ.ZeroPoint, op.ActMin, op.ActMax)
	}
}

func qDepthwise(op *QOp, in, out *tensor.I8, acc []int32) {
	h, w, ch := op.InShape[0], op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	kernel, stride, pad := convDims(op)
	py, px := 0, 0
	if pad == 1 {
		py = samePad(h, kernel, stride, oh)
		px = samePad(w, kernel, stride, ow)
	}
	inZP := op.InQ.ZeroPoint
	rowAcc := acc[:ow*ch]
	for oy := 0; oy < oh; oy++ {
		kyLo, kyHi := 0, kernel
		if d := py - oy*stride; d > 0 {
			kyLo = d
		}
		if d := h + py - oy*stride; d < kyHi {
			kyHi = d
		}
		for ox := 0; ox < ow; ox++ {
			seg := rowAcc[ox*ch : (ox+1)*ch]
			copy(seg, op.Bias)
			kxLo, kxHi := 0, kernel
			if d := px - ox*stride; d > 0 {
				kxLo = d
			}
			if d := w + px - ox*stride; d < kxHi {
				kxHi = d
			}
			for ky := kyLo; ky < kyHi; ky++ {
				iy := oy*stride + ky - py
				for kx := kxLo; kx < kxHi; kx++ {
					ix := ox*stride + kx - px
					inRow := in.Data[(iy*w+ix)*ch : (iy*w+ix+1)*ch]
					wRow := op.W[(ky*kernel+kx)*ch : (ky*kernel+kx+1)*ch]
					simd.MulAccI8(seg, wRow, inRow, inZP)
				}
			}
		}
		simd.RequantI8(out.Data[oy*ow*ch:(oy+1)*ow*ch],
			rowAcc, op.mult, op.shift, op.OutQ.ZeroPoint, op.ActMin, op.ActMax)
	}
}

func qConv1D(op *QOp, in, out *tensor.I8, acc []int32, vp []uint32) {
	t, cin := op.InShape[0], op.InShape[1]
	ot, filters := op.OutShape[0], op.OutShape[1]
	kernel, stride, pad := convDims(op)
	p := 0
	if pad == 1 {
		p = samePad(t, kernel, stride, ot)
	}
	inZP := op.InQ.ZeroPoint
	row := acc[:filters]
	if op.wPair != nil {
		pp := packInput(vp, in.Data, cin, inZP)
		tapBlock := pp * filters * 2
		for o := 0; o < ot; o++ {
			copy(row, op.Bias)
			kLo, kHi := 0, kernel
			if d := p - o*stride; d > 0 {
				kLo = d
			}
			if d := t + p - o*stride; d < kHi {
				kHi = d
			}
			for k := kLo; k < kHi; k++ {
				i := o*stride + k - p
				simd.ConvAccI8(row, op.wPair[k*tapBlock:(k+1)*tapBlock], vp[i*pp:(i+1)*pp], filters)
			}
			simd.RequantI8(out.Data[o*filters:(o+1)*filters],
				row, op.mult, op.shift, op.OutQ.ZeroPoint, op.ActMin, op.ActMax)
		}
		return
	}
	for o := 0; o < ot; o++ {
		copy(row, op.Bias)
		for k := 0; k < kernel; k++ {
			i := o*stride + k - p
			if i < 0 || i >= t {
				continue
			}
			inBase := i * cin
			wBase := k * cin * filters
			for ci := 0; ci < cin; ci++ {
				v := int32(in.Data[inBase+ci]) - inZP
				wRow := op.W[wBase+ci*filters : wBase+(ci+1)*filters]
				for f, wv := range wRow {
					row[f] += v * int32(wv)
				}
			}
		}
		dst := out.Data[o*filters : (o+1)*filters]
		for f, a := range row {
			dst[f] = requant(op, a)
		}
	}
}

func poolDims(op *QOp) (size, stride int) {
	size = int(op.Attrs["size"])
	stride = int(op.Attrs["stride"])
	if stride < 1 {
		stride = size
	}
	return size, stride
}

func qMaxPool2D(op *QOp, in, out *tensor.I8) {
	w, ch := op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	size, stride := poolDims(op)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				best := int8(-128)
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						v := in.Data[((oy*stride+ky)*w+(ox*stride+kx))*ch+c]
						if v > best {
							best = v
						}
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = best
			}
		}
	}
}

func qAvgPool2D(op *QOp, in, out *tensor.I8) {
	w, ch := op.InShape[1], op.InShape[2]
	oh, ow := op.OutShape[0], op.OutShape[1]
	size, stride := poolDims(op)
	n := int32(size * size)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				var acc int32
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						acc += int32(in.Data[((oy*stride+ky)*w+(ox*stride+kx))*ch+c])
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = int8(clampI32(roundDiv(acc, n), -128, 127))
			}
		}
	}
}

func qMaxPool1D(op *QOp, in, out *tensor.I8) {
	ch := op.InShape[1]
	ot := op.OutShape[0]
	size, stride := poolDims(op)
	for o := 0; o < ot; o++ {
		for c := 0; c < ch; c++ {
			best := int8(-128)
			for k := 0; k < size; k++ {
				v := in.Data[(o*stride+k)*ch+c]
				if v > best {
					best = v
				}
			}
			out.Data[o*ch+c] = best
		}
	}
}

func qGAP(op *QOp, in, out *tensor.I8) {
	h, w, ch := op.InShape[0], op.InShape[1], op.InShape[2]
	n := int32(h * w)
	for c := 0; c < ch; c++ {
		var acc int32
		for i := 0; i < h*w; i++ {
			acc += int32(in.Data[i*ch+c])
		}
		out.Data[c] = int8(clampI32(roundDiv(acc, n), -128, 127))
	}
}

// roundDiv divides with round-half-away-from-zero semantics.
func roundDiv(a, b int32) int32 {
	if a >= 0 {
		return (a + b/2) / b
	}
	return (a - b/2) / b
}
