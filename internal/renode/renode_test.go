package renode

import (
	"math/rand"
	"testing"

	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
)

func kwsSetup(t testing.TB) ([]nn.OpSpec, *quant.QModel, dsp.Cost) {
	t.Helper()
	m := models.KWSDSCNN(49, 10, 12)
	if err := nn.InitWeights(m, 1); err != nil {
		t.Fatal(err)
	}
	specs, err := m.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	calib := make([]*tensor.F32, 4)
	for i := range calib {
		c := tensor.NewF32(49, 10)
		for j := range c.Data {
			c.Data[j] = float32(rng.NormFloat64())
		}
		calib[i] = c
	}
	qm, err := quant.Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	mfcc, _ := dsp.NewMFCC(map[string]float64{"num_cepstral": 10})
	sig := dsp.Signal{Data: make([]float32, 16000), Rate: 16000, Axes: 1}
	return specs, qm, mfcc.Cost(sig)
}

func TestInt8FasterThanFloatOnM4(t *testing.T) {
	specs, qm, _ := kwsSetup(t)
	nano := device.MustGet("nano-33-ble-sense")
	f := NNCyclesFloat(nano, specs, TFLM)
	i := NNCyclesInt8(nano, qm, TFLM)
	ratio := float64(f) / float64(i)
	// Paper Table 2: KWS inference 2866ms float vs 323ms int8 (~8.9x).
	if ratio < 4 || ratio > 15 {
		t.Errorf("M4 float/int8 ratio = %.1f, want ~9", ratio)
	}
}

func TestESP32ModestInt8Speedup(t *testing.T) {
	specs, qm, _ := kwsSetup(t)
	esp := device.MustGet("esp-eye")
	f := NNCyclesFloat(esp, specs, TFLM)
	i := NNCyclesInt8(esp, qm, TFLM)
	ratio := float64(f) / float64(i)
	// Paper: 648ms float vs 314ms int8 (~2.1x).
	if ratio < 1.2 || ratio > 4 {
		t.Errorf("ESP32 float/int8 ratio = %.1f, want ~2", ratio)
	}
}

func TestPicoSoftFloatPenalty(t *testing.T) {
	specs, _, _ := kwsSetup(t)
	nano := device.MustGet("nano-33-ble-sense")
	pico := device.MustGet("pi-pico")
	nanoMs := nano.Millis(NNCyclesFloat(nano, specs, TFLM))
	picoMs := pico.Millis(NNCyclesFloat(pico, specs, TFLM))
	// Despite double the clock, the FPU-less Pico is ~2x slower (paper:
	// 5700ms vs 2866ms).
	if picoMs < nanoMs*1.3 {
		t.Errorf("pico %.0fms not slower than nano %.0fms", picoMs, nanoMs)
	}
}

func TestEONRemovesDispatchOverhead(t *testing.T) {
	specs, qm, _ := kwsSetup(t)
	for _, tgt := range device.EvaluationBoards() {
		if EON.String() != "eon" || TFLM.String() != "tflm" {
			t.Fatal("engine strings")
		}
		f1 := NNCyclesFloat(tgt, specs, TFLM)
		f2 := NNCyclesFloat(tgt, specs, EON)
		if f2 >= f1 {
			t.Errorf("%s: EON float %d not cheaper than TFLM %d", tgt.ID, f2, f1)
		}
		i1 := NNCyclesInt8(tgt, qm, TFLM)
		i2 := NNCyclesInt8(tgt, qm, EON)
		if i2 >= i1 {
			t.Errorf("%s: EON int8 %d not cheaper than TFLM %d", tgt.ID, i2, i1)
		}
	}
}

func TestDSPDominatesForKWSInt8(t *testing.T) {
	// Paper Sec 5.2: preprocessing can equal or exceed optimized (int8)
	// inference time for KWS.
	_, qm, dspCost := kwsSetup(t)
	nano := device.MustGet("nano-33-ble-sense")
	est := EstimateInt8(nano, dspCost, qm, TFLM)
	if est.DSPMillis < est.InferenceMillis*0.2 {
		t.Errorf("DSP %.1fms negligible vs int8 inference %.1fms", est.DSPMillis, est.InferenceMillis)
	}
}

func TestEstimateTotalsConsistent(t *testing.T) {
	specs, qm, dspCost := kwsSetup(t)
	nano := device.MustGet("nano-33-ble-sense")
	ef := EstimateFloat(nano, dspCost, specs, TFLM)
	ei := EstimateInt8(nano, dspCost, qm, TFLM)
	for _, e := range []Estimate{ef, ei} {
		if e.TotalMillis < e.DSPMillis+e.InferenceMillis {
			t.Errorf("total %.2f < dsp %.2f + infer %.2f", e.TotalMillis, e.DSPMillis, e.InferenceMillis)
		}
		if e.TotalMillis > (e.DSPMillis+e.InferenceMillis)*1.05 {
			t.Errorf("overhead too large: total %.2f", e.TotalMillis)
		}
	}
	if ef.Precision != Float32 || ei.Precision != Int8 {
		t.Error("precision labels")
	}
	if Float32.String() != "float32" || Int8.String() != "int8" {
		t.Error("precision strings")
	}
	// Preprocessing should be roughly equal between float and int8
	// deployments (paper Table 2 shows near-identical values).
	if ei.DSPMillis < ef.DSPMillis || ei.DSPMillis > ef.DSPMillis*1.2 {
		t.Errorf("int8 DSP %.2f vs float DSP %.2f", ei.DSPMillis, ef.DSPMillis)
	}
}

func TestKWSLatencyBallpark(t *testing.T) {
	// Our absolute numbers are calibrated, not measured; they should land
	// within the right order of magnitude of the paper's Table 2.
	specs, qm, dspCost := kwsSetup(t)
	nano := device.MustGet("nano-33-ble-sense")
	f := EstimateFloat(nano, dspCost, specs, TFLM)
	if f.InferenceMillis < 1000 || f.InferenceMillis > 9000 {
		t.Errorf("KWS float inference %.0fms, paper ~2866ms", f.InferenceMillis)
	}
	i := EstimateInt8(nano, dspCost, qm, TFLM)
	if i.InferenceMillis < 100 || i.InferenceMillis > 1200 {
		t.Errorf("KWS int8 inference %.0fms, paper ~323ms", i.InferenceMillis)
	}
	if f.DSPMillis < 30 || f.DSPMillis > 600 {
		t.Errorf("KWS preprocessing %.0fms, paper ~142ms", f.DSPMillis)
	}
}

func TestOpCyclesKinds(t *testing.T) {
	nano := device.MustGet("nano-33-ble-sense")
	if opCycles(nano, "flatten", 0, 100, 1) != 0 {
		t.Error("flatten should be free")
	}
	if opCycles(nano, "softmax", 0, 10, 1) <= 0 {
		t.Error("softmax should cost cycles")
	}
	if opCycles(nano, "maxpool2d", 0, 100, 1) <= 0 {
		t.Error("pool should cost cycles")
	}
	if opCycles(nano, "unknown_op", 0, 100, 1) <= 0 {
		t.Error("unknown ops should default to element cost")
	}
}

func BenchmarkEstimateKWS(b *testing.B) {
	specs, qm, dspCost := kwsSetup(b)
	nano := device.MustGet("nano-33-ble-sense")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateFloat(nano, dspCost, specs, TFLM)
		EstimateInt8(nano, dspCost, qm, EON)
	}
}
