// Package renode estimates on-device latency by replaying an impulse's
// operation stream against a device cycle model, standing in for the
// Renode emulation and device-specific benchmarking the platform uses for
// its latency estimates (paper Sec. 4.4).
//
// The simulator is a cost model, not an instruction-set emulator: every
// DSP and NN operation is decomposed into unit work (MACs, FFT
// butterflies, scalar float ops, transcendental calls) which the target's
// calibrated per-unit cycle costs convert into cycles. This is the same
// estimation strategy the platform exposes in its UI.
package renode

import (
	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
)

// Engine selects the inference runtime being simulated.
type Engine int

// Supported engines.
const (
	// TFLM walks the op graph through an interpreter, paying a dispatch
	// cost per op.
	TFLM Engine = iota
	// EON runs compiler-generated code that calls kernels directly.
	EON
)

func (e Engine) String() string {
	if e == EON {
		return "eon"
	}
	return "tflm"
}

// Precision selects the numeric type of NN inference.
type Precision int

// Supported precisions.
const (
	Float32 Precision = iota
	Int8
)

func (p Precision) String() string {
	if p == Int8 {
		return "int8"
	}
	return "float32"
}

// DSPCycles estimates the cycles of one feature extraction.
func DSPCycles(t device.Target, c dsp.Cost) int64 {
	cycles := float64(c.FloatOps)*t.CyclesPerFloatOp +
		float64(c.MACs)*t.CyclesPerFloatOp*2 + // DSP MACs are float mul+add
		float64(c.FFTButterflies)*t.CyclesPerButterfly +
		float64(c.TranscOps)*t.CyclesPerTransc
	return int64(cycles)
}

// NNCyclesFloat estimates the cycles of one float32 inference from the
// model's op specs.
func NNCyclesFloat(t device.Target, specs []nn.OpSpec, engine Engine) int64 {
	var cycles float64
	for _, s := range specs {
		cycles += opCycles(t, s.Kind, s.MACs, int64(s.OutShape.Elems()), t.CyclesPerMACF32)
		cycles += t.KernelCallCycles
		if engine == TFLM {
			cycles += t.InterpreterDispatchCycles
		}
	}
	return int64(cycles)
}

// NNCyclesInt8 estimates the cycles of one int8 inference.
func NNCyclesInt8(t device.Target, qm *quant.QModel, engine Engine) int64 {
	var cycles float64
	for _, op := range qm.Ops {
		cycles += opCycles(t, op.Kind, op.MACs, int64(op.OutShape.Elems()), t.CyclesPerMACI8)
		cycles += t.KernelCallCycles
		if engine == TFLM {
			cycles += t.InterpreterDispatchCycles
		}
	}
	return int64(cycles)
}

// opCycles decomposes one op into unit work. MAC-dominated ops charge the
// per-MAC cost plus an output-write pass; memory-bound ops (pooling,
// reshapes, softmax) charge element-wise float costs.
func opCycles(t device.Target, kind string, macs, outElems int64, perMAC float64) float64 {
	switch kind {
	case "conv2d", "depthwise_conv2d", "conv1d", "dense", "batchnorm":
		return float64(macs)*perMAC + float64(outElems)*t.CyclesPerFloatOp
	case "maxpool2d", "avgpool2d", "maxpool1d", "gap2d":
		// Pooling reads a window per output; approximate 4 reads/compares.
		return float64(outElems) * 4 * t.CyclesPerFloatOp
	case "softmax":
		return float64(outElems) * (t.CyclesPerTransc + 2*t.CyclesPerFloatOp)
	case "flatten", "reshape", "dropout":
		return 0
	default:
		return float64(outElems) * t.CyclesPerFloatOp
	}
}

// Estimate is a full on-device timing estimate for one impulse window.
type Estimate struct {
	Target    device.Target
	Engine    Engine
	Precision Precision

	DSPCycles int64
	NNCycles  int64

	// DSPMillis, InferenceMillis and TotalMillis mirror the three rows
	// the paper reports per workload in Table 2. Total includes a small
	// SDK overhead outside both stages, as in the paper's measurement.
	DSPMillis       float64
	InferenceMillis float64
	TotalMillis     float64
}

// overheadCycles is the run_classifier glue outside DSP and inference
// (buffer management, result marshalling).
const overheadFraction = 0.005

// EstimateFloat produces the timing estimate for a float32 deployment.
func EstimateFloat(t device.Target, dspCost dsp.Cost, specs []nn.OpSpec, engine Engine) Estimate {
	e := Estimate{Target: t, Engine: engine, Precision: Float32}
	e.DSPCycles = DSPCycles(t, dspCost)
	e.NNCycles = NNCyclesFloat(t, specs, engine)
	fill(&e, t)
	return e
}

// EstimateInt8 produces the timing estimate for an int8 deployment. The
// DSP stage still runs in float (as on the real platform) plus a feature
// quantization pass.
func EstimateInt8(t device.Target, dspCost dsp.Cost, qm *quant.QModel, engine Engine) Estimate {
	e := Estimate{Target: t, Engine: engine, Precision: Int8}
	quantizePass := dsp.Cost{FloatOps: int64(qm.InputShape.Elems()) * 2}
	e.DSPCycles = DSPCycles(t, dspCost.Add(quantizePass))
	e.NNCycles = NNCyclesInt8(t, qm, engine)
	fill(&e, t)
	return e
}

func fill(e *Estimate, t device.Target) {
	e.DSPMillis = t.Millis(e.DSPCycles)
	e.InferenceMillis = t.Millis(e.NNCycles)
	total := float64(e.DSPCycles+e.NNCycles) * (1 + overheadFraction)
	e.TotalMillis = t.Millis(int64(total))
}
