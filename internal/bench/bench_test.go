package bench

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Nano 33 BLE Sense", "ESP-EYE", "Pico", "64 MHz", "256 kB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	out, cells, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*3*2 {
		t.Fatalf("%d cells, want 18", len(cells))
	}
	byKey := map[string]Table2Cell{}
	for _, c := range cells {
		byKey[c.Workload+"/"+c.Board+"/"+c.Precision] = c
	}
	// Shape checks against the paper's Table 2 relationships.
	nanoF := byKey["kws/nano-33-ble-sense/float32"]
	nanoI := byKey["kws/nano-33-ble-sense/int8"]
	if !nanoF.Fits || !nanoI.Fits {
		t.Fatal("KWS should fit the Nano")
	}
	// CMSIS-NN-style int8 speedup on the M4 (paper: 2866 -> 323 ms).
	if ratio := nanoF.InferMillis / nanoI.InferMillis; ratio < 4 || ratio > 15 {
		t.Errorf("M4 KWS float/int8 inference ratio %.1f, paper ~8.9", ratio)
	}
	// Preprocessing roughly equal across precisions (paper: 141.65 vs 138.76).
	if nanoI.DSPMillis < nanoF.DSPMillis*0.8 || nanoI.DSPMillis > nanoF.DSPMillis*1.25 {
		t.Errorf("KWS preprocessing differs too much: %.1f vs %.1f", nanoF.DSPMillis, nanoI.DSPMillis)
	}
	// VWW float doesn't fit the Nano or Pico, fits the ESP-EYE (paper '-').
	if byKey["vww/nano-33-ble-sense/float32"].Fits {
		t.Error("VWW float should not fit the Nano")
	}
	if byKey["vww/pi-pico/float32"].Fits {
		t.Error("VWW float should not fit the Pico")
	}
	if !byKey["vww/esp-eye/float32"].Fits {
		t.Error("VWW float should fit the ESP-EYE")
	}
	// Pico float soft-float penalty: slower than the Nano despite 2x clock
	// (paper: 5700 vs 2866 ms).
	picoF := byKey["kws/pi-pico/float32"]
	if picoF.InferMillis < nanoF.InferMillis {
		t.Errorf("Pico float %.0fms not slower than Nano %.0fms", picoF.InferMillis, nanoF.InferMillis)
	}
	// ESP32 float beats the M4 on inference (paper: 648 vs 2866 ms).
	espF := byKey["kws/esp-eye/float32"]
	if espF.InferMillis > nanoF.InferMillis {
		t.Errorf("ESP float %.0fms not faster than Nano %.0fms", espF.InferMillis, nanoF.InferMillis)
	}
	// Rendered table contains the '-' markers.
	if !strings.Contains(out, "-") {
		t.Error("no '-' markers in rendered table")
	}
}

func TestTable3Quick(t *testing.T) {
	out, trials, err := Table3(Table3Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) == 0 {
		t.Fatal("no trials")
	}
	if !strings.Contains(out, "MFE") || !strings.Contains(out, "conv1d") {
		t.Errorf("table3:\n%s", out)
	}
	// Sorted by accuracy.
	for i := 1; i < len(trials); i++ {
		if trials[i].Accuracy > trials[i-1].Accuracy {
			t.Fatal("not sorted")
		}
	}
}

func TestTable4Shape(t *testing.T) {
	out, cells, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*4 {
		t.Fatalf("%d cells", len(cells))
	}
	get := func(w, p, e string) Table4Cell {
		for _, c := range cells {
			if c.Workload == w && c.Precision == p && c.Engine == e {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s/%s", w, p, e)
		return Table4Cell{}
	}
	for _, w := range []string{"kws", "vww", "ic"} {
		// EON < TFLM on both axes, both precisions (the Table 4 claim).
		for _, p := range []string{"float32", "int8"} {
			tflm := get(w, p, "tflm")
			eon := get(w, p, "eon")
			if eon.RAMKB >= tflm.RAMKB {
				t.Errorf("%s/%s: EON RAM %.1f >= TFLM %.1f", w, p, eon.RAMKB, tflm.RAMKB)
			}
			if eon.FlashKB >= tflm.FlashKB {
				t.Errorf("%s/%s: EON flash %.1f >= TFLM %.1f", w, p, eon.FlashKB, tflm.FlashKB)
			}
		}
		// Int8 < float on both axes.
		if get(w, "int8", "tflm").RAMKB >= get(w, "float32", "tflm").RAMKB {
			t.Errorf("%s: int8 RAM not smaller", w)
		}
		if get(w, "int8", "tflm").FlashKB >= get(w, "float32", "tflm").FlashKB {
			t.Errorf("%s: int8 flash not smaller", w)
		}
	}
	if !strings.Contains(out, "Preprocessing") {
		t.Error("missing preprocessing row")
	}
}

func TestTable5AndFigures(t *testing.T) {
	t5 := Table5()
	for _, want := range []string{"Edge Impulse", "SageMaker", "VertexAI", "Imagimob"} {
		if !strings.Contains(t5, want) {
			t.Errorf("table5 missing %q", want)
		}
	}
	f1 := Fig1()
	if !strings.Contains(f1, "Data collection") || !strings.Contains(f1, "EON compiler") {
		t.Errorf("fig1:\n%s", f1)
	}
	f2 := Fig2()
	if !strings.Contains(f2, "MFCC") || !strings.Contains(f2, "->") {
		t.Errorf("fig2:\n%s", f2)
	}
}

func TestFig3Rendering(t *testing.T) {
	_, trials, err := Table3(Table3Options{Quick: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	f3 := Fig3(trials)
	if !strings.Contains(f3, "latency") || !strings.Contains(f3, "ram") || !strings.Contains(f3, "flash") {
		t.Errorf("fig3:\n%s", f3)
	}
}

func TestAccuracyProxies(t *testing.T) {
	accs, rendered, err := AccuracyProxies(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 3 {
		t.Fatalf("%d workloads", len(accs))
	}
	for _, a := range accs {
		if a.Float < 0.6 {
			t.Errorf("%s float accuracy %.2f too low", a.Workload, a.Float)
		}
		// Int8 within 20 points of float (paper: within ~2 points, but
		// our proxies are tiny).
		if a.Int8 < a.Float-0.2 {
			t.Errorf("%s int8 %.2f collapsed vs float %.2f", a.Workload, a.Int8, a.Float)
		}
	}
	if !strings.Contains(rendered, "Float32") {
		t.Error("rendered accuracy table")
	}
}

func TestKWSWorkloadBudget(t *testing.T) {
	w, err := KWSWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if w.Model.MACs() < 1_500_000 {
		t.Errorf("KWS MACs %d", w.Model.MACs())
	}
	if w.DSPCost.FFTButterflies == 0 {
		t.Error("no DSP cost")
	}
	if w.QModel == nil {
		t.Error("no quantized model")
	}
}
