// Package bench reproduces every table and figure of the paper's
// evaluation (Sec. 5): the three MLPerf-Tiny-derived workloads of
// Tables 2 and 4 (keyword spotting, visual wake words, image
// classification), the EON Tuner exploration of Table 3 / Fig. 3, and the
// qualitative Table 5 / Fig. 1 / Fig. 2 content. cmd/ei-bench and the
// repository-level benchmarks are thin wrappers over this package.
package bench

import (
	"fmt"
	"math/rand"

	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
)

// Workload bundles everything needed to estimate one Table 2/4 row group:
// the DSP cost of its preprocessing and the float + int8 models.
type Workload struct {
	// Name as the paper prints it.
	Name string
	// Short identifier ("kws", "vww", "ic").
	ID string
	// DSPCost is the per-window feature extraction cost.
	DSPCost dsp.Cost
	// DSPRAM is the working memory of feature extraction.
	DSPRAM int64
	// Model is the float32 network (random weights; latency and memory
	// do not depend on training).
	Model *nn.Model
	// Specs caches Model.Spec().
	Specs []nn.OpSpec
	// QModel is the int8 network.
	QModel *quant.QModel
}

// buildWorkload assembles a workload from a DSP block + raw signal
// description + model.
func buildWorkload(name, id string, block dsp.Block, sig dsp.Signal, model *nn.Model, seed int64) (Workload, error) {
	if err := nn.InitWeights(model, seed); err != nil {
		return Workload{}, err
	}
	specs, err := model.Spec()
	if err != nil {
		return Workload{}, err
	}
	// Calibration with synthetic feature tensors (activation ranges only;
	// accuracy is evaluated separately on trained proxies).
	rng := rand.New(rand.NewSource(seed + 1))
	calib := make([]*tensor.F32, 8)
	for i := range calib {
		c := tensor.NewF32(model.InputShape...)
		for j := range c.Data {
			c.Data[j] = float32(rng.Float64()) // feature-like range [0,1]
		}
		calib[i] = c
	}
	qm, err := quant.Quantize(model, calib)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:    name,
		ID:      id,
		DSPCost: block.Cost(sig),
		DSPRAM:  block.RAM(sig),
		Model:   model,
		Specs:   specs,
		QModel:  qm,
	}, nil
}

// KWSWorkload is the paper's keyword spotting task: 1 s of 16 kHz audio
// through MFCC into a DS-CNN (~2.6M MACs).
func KWSWorkload() (Workload, error) {
	block, err := dsp.NewMFCC(map[string]float64{
		"frame_length": 0.032, "frame_stride": 0.02,
		"num_filters": 32, "num_cepstral": 10, "fft_length": 512,
	})
	if err != nil {
		return Workload{}, err
	}
	sig := dsp.Signal{Data: make([]float32, 16000), Rate: 16000, Axes: 1}
	shape, err := block.OutputShape(sig)
	if err != nil {
		return Workload{}, err
	}
	model := models.KWSDSCNN(shape[0], shape[1], 12)
	return buildWorkload("Keyword Spotting (KWS)", "kws", block, sig, model, 11)
}

// VWWWorkload is the visual wake words task: 96×96 RGB through
// MobileNetV1 0.25 (~7.5M MACs).
func VWWWorkload() (Workload, error) {
	block, err := dsp.NewImage(map[string]float64{"width": 96, "height": 96})
	if err != nil {
		return Workload{}, err
	}
	sig := dsp.Signal{Data: make([]float32, 160*120*3), Axes: 3, Width: 160, Height: 120}
	model := models.VWWMobileNetV1(96, 3, 0.25, 2)
	return buildWorkload("Visual Wake Words (VWW)", "vww", block, sig, model, 22)
}

// ICWorkload is the CIFAR-10-style image classification task: 32×32 RGB
// through a small CNN (~1.3M MACs).
func ICWorkload() (Workload, error) {
	block, err := dsp.NewImage(map[string]float64{"width": 32, "height": 32})
	if err != nil {
		return Workload{}, err
	}
	sig := dsp.Signal{Data: make([]float32, 32*32*3), Axes: 3, Width: 32, Height: 32}
	model := models.CIFARCNN(32, 3, 10)
	return buildWorkload("Image Classification (IC)", "ic", block, sig, model, 33)
}

// AllWorkloads returns the three evaluation workloads in paper order.
func AllWorkloads() ([]Workload, error) {
	kws, err := KWSWorkload()
	if err != nil {
		return nil, fmt.Errorf("bench: kws: %w", err)
	}
	vww, err := VWWWorkload()
	if err != nil {
		return nil, fmt.Errorf("bench: vww: %w", err)
	}
	ic, err := ICWorkload()
	if err != nil {
		return nil, fmt.Errorf("bench: ic: %w", err)
	}
	return []Workload{kws, vww, ic}, nil
}
