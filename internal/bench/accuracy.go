package bench

import (
	"fmt"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/report"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

// kwsTuningDataset builds the synthetic keyword set used by Table 3.
func kwsTuningDataset(perClass int, seed int64) (*data.Dataset, error) {
	return synth.KWSDataset(4, perClass, 16000, 1.0, 0.03, seed)
}

// Accuracy is a float/int8 accuracy pair for one workload.
type Accuracy struct {
	Workload string
	Float    float64
	Int8     float64
}

// AccuracyProxies trains reduced-size proxies of the three workloads on
// synthetic data and reports float32 and int8 test accuracy — the
// accuracy rows of Table 4. Proxies stand in for the full models so the
// harness completes in seconds; see EXPERIMENTS.md for the substitution
// notes. The paper's qualitative claims reproduce: quantization keeps
// accuracy within a few points, occasionally helping via regularization.
func AccuracyProxies(seed int64) ([]Accuracy, string, error) {
	var out []Accuracy

	// KWS proxy: MFE front end + conv1d stack on 2 keywords + noise.
	kwsDS, err := synth.KWSDataset(3, 14, 8000, 0.5, 0.04, seed)
	if err != nil {
		return nil, "", err
	}
	kwsImp := core.New("kws-proxy")
	kwsImp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	kwsBlock, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		return nil, "", err
	}
	kwsImp.UseDSP(kwsBlock)
	kwsAcc, err := trainEval(kwsImp, kwsDS, func(shape []int, classes int) (*nn.Model, error) {
		return models.Conv1DStack(shape[0], shape[1], 2, 8, 16, classes)
	}, seed)
	if err != nil {
		return nil, "", fmt.Errorf("bench: kws proxy: %w", err)
	}
	kwsAcc.Workload = "kws"
	out = append(out, kwsAcc)

	// VWW proxy: 32×32 person/no-person images + small CNN.
	vwwDS, err := synth.VWWDataset(16, 32, seed+1)
	if err != nil {
		return nil, "", err
	}
	vwwImp := core.New("vww-proxy")
	vwwImp.Input = core.InputBlock{Kind: core.ImageInput, Width: 32, Height: 32, Axes: 3}
	vwwBlock, err := dsp.New("image", map[string]float64{"width": 24, "height": 24})
	if err != nil {
		return nil, "", err
	}
	vwwImp.UseDSP(vwwBlock)
	vwwAcc, err := trainEval(vwwImp, vwwDS, func(shape []int, classes int) (*nn.Model, error) {
		return models.CIFARCNN(shape[0], shape[2], classes), nil
	}, seed+1)
	if err != nil {
		return nil, "", fmt.Errorf("bench: vww proxy: %w", err)
	}
	vwwAcc.Workload = "vww"
	out = append(out, vwwAcc)

	// IC proxy: 4 texture classes at 20×20.
	icDS, err := synth.ICDataset(4, 12, 20, seed+2)
	if err != nil {
		return nil, "", err
	}
	icImp := core.New("ic-proxy")
	icImp.Input = core.InputBlock{Kind: core.ImageInput, Width: 20, Height: 20, Axes: 3}
	icBlock, err := dsp.New("image", map[string]float64{"width": 20, "height": 20})
	if err != nil {
		return nil, "", err
	}
	icImp.UseDSP(icBlock)
	icAcc, err := trainEval(icImp, icDS, func(shape []int, classes int) (*nn.Model, error) {
		return models.CIFARCNN(shape[0], shape[2], classes), nil
	}, seed+2)
	if err != nil {
		return nil, "", fmt.Errorf("bench: ic proxy: %w", err)
	}
	icAcc.Workload = "ic"
	out = append(out, icAcc)

	t := report.NewTable("Table 4 (accuracy rows). Holdout accuracy of trained proxies.",
		"Workload", "Float32", "Int8")
	for _, a := range out {
		t.AddRow(a.Workload, report.Pct(a.Float), report.Pct(a.Int8))
	}
	return out, t.Render(), nil
}

// trainEval trains the impulse's classifier and evaluates float and int8
// accuracy on the test split.
func trainEval(imp *core.Impulse, ds *data.Dataset, build func(shape []int, classes int) (*nn.Model, error), seed int64) (Accuracy, error) {
	imp.Classes = ds.Labels()
	shape, err := imp.FeatureShape()
	if err != nil {
		return Accuracy{}, err
	}
	model, err := build(shape, len(imp.Classes))
	if err != nil {
		return Accuracy{}, err
	}
	if err := nn.InitWeights(model, seed); err != nil {
		return Accuracy{}, err
	}
	if err := imp.AttachClassifier(model); err != nil {
		return Accuracy{}, err
	}
	if _, err := imp.Train(ds, trainer.Config{Epochs: 12, LearningRate: 0.005, Seed: seed}); err != nil {
		return Accuracy{}, err
	}
	floatAcc, _, err := imp.Evaluate(ds, data.Testing)
	if err != nil {
		return Accuracy{}, err
	}
	if err := imp.Quantize(ds); err != nil {
		return Accuracy{}, err
	}
	// Int8 accuracy: classify the test split with the quantized model,
	// streaming samples batch-by-batch.
	correct, total := 0, 0
	it := ds.Batches(data.Testing, 64)
	for {
		batch, ok := it.Next()
		if !ok {
			break
		}
		for _, s := range batch {
			res, err := imp.ClassifyQuantized(s.Signal)
			if err != nil {
				return Accuracy{}, err
			}
			if res.Label == s.Label {
				correct++
			}
			total++
		}
	}
	if err := it.Err(); err != nil {
		return Accuracy{}, err
	}
	int8Acc := 0.0
	if total > 0 {
		int8Acc = float64(correct) / float64(total)
	}
	return Accuracy{Float: floatAcc, Int8: int8Acc}, nil
}
