package bench

import (
	"fmt"
	"runtime"
	"strings"

	"edgepulse/internal/core"
	"edgepulse/internal/device"
	"edgepulse/internal/profiler"
	"edgepulse/internal/renode"
	"edgepulse/internal/report"
	"edgepulse/internal/tuner"
)

// Table1 renders the evaluation platform table.
func Table1() string {
	t := report.NewTable("Table 1. Embedded platforms used for evaluation.",
		"Platform", "Processor", "Clock", "Flash", "RAM")
	for _, b := range device.EvaluationBoards() {
		t.AddRow(b.Name, b.CPU,
			fmt.Sprintf("%d MHz", b.ClockHz/1_000_000),
			fmt.Sprintf("%d MB", b.FlashBytes>>20),
			ramStr(b.RAMBytes))
	}
	return t.Render()
}

func ramStr(b int64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%d MB", b>>20)
	}
	return fmt.Sprintf("%d kB", b>>10)
}

// Table2Cell is one (workload, board, precision) latency estimate.
type Table2Cell struct {
	Workload                            string
	Board                               string
	Precision                           string
	Fits                                bool
	DSPMillis, InferMillis, TotalMillis float64
}

// Table2 simulates Table 2: preprocessing and inference times (ms) for
// the three workloads, float32 and int8, across the three boards. Models
// that do not fit a board's memory show '-', as in the paper.
func Table2() (string, []Table2Cell, error) {
	workloads, err := AllWorkloads()
	if err != nil {
		return "", nil, err
	}
	boards := device.EvaluationBoards()
	headers := []string{"", ""}
	for _, b := range boards {
		headers = append(headers, b.Name+" Float", b.Name+" Int8")
	}
	t := report.NewTable("Table 2. Preprocessing and inference times (ms). '-' = does not fit.",
		headers...)
	var cells []Table2Cell
	for wi, w := range workloads {
		if wi > 0 {
			t.AddSeparator()
		}
		type rowvals struct {
			dsp, inf, tot []string
		}
		var rv rowvals
		for _, b := range boards {
			// Fit checks per precision (TFLM engine, as the paper used).
			memF, err := profiler.EstimateFloat(w.Model, renode.TFLM)
			if err != nil {
				return "", nil, err
			}
			memI := profiler.EstimateInt8(w.QModel, renode.TFLM)
			fitF := profiler.Fits(memF, w.DSPRAM, b)
			fitI := profiler.Fits(memI, w.DSPRAM, b)
			ef := renode.EstimateFloat(b, w.DSPCost, w.Specs, renode.TFLM)
			ei := renode.EstimateInt8(b, w.DSPCost, w.QModel, renode.TFLM)
			cells = append(cells,
				Table2Cell{w.ID, b.ID, "float32", fitF, ef.DSPMillis, ef.InferenceMillis, ef.TotalMillis},
				Table2Cell{w.ID, b.ID, "int8", fitI, ei.DSPMillis, ei.InferenceMillis, ei.TotalMillis})
			rv.dsp = append(rv.dsp, report.Ms(ef.DSPMillis, fitF), report.Ms(ei.DSPMillis, fitI))
			rv.inf = append(rv.inf, report.Ms(ef.InferenceMillis, fitF), report.Ms(ei.InferenceMillis, fitI))
			rv.tot = append(rv.tot, report.Ms(ef.TotalMillis, fitF), report.Ms(ei.TotalMillis, fitI))
		}
		t.AddRow(append([]string{w.Name, "Preprocessing"}, rv.dsp...)...)
		t.AddRow(append([]string{"", "Inference"}, rv.inf...)...)
		t.AddRow(append([]string{"", "Total"}, rv.tot...)...)
	}
	return t.Render(), cells, nil
}

// Table3Options sizes the tuner run.
type Table3Options struct {
	// Quick restricts the space and budget for fast runs.
	Quick bool
	Seed  int64
}

// Table3 runs the EON Tuner over synthetic keyword spotting data and
// renders the explored configurations like the paper's Table 3.
func Table3(opt Table3Options) (string, []tuner.Trial, error) {
	perClass := 12
	epochs := 4
	maxTrials := 14
	space := tuner.DefaultKWSSpace()
	if opt.Quick {
		perClass = 8
		epochs = 2
		maxTrials = 4
		// Drop the expensive MobileNetV2 candidate in quick mode.
		space.Models = space.Models[1:]
		space.DSP = space.DSP[:3]
	}
	ds, err := kwsTuningDataset(perClass, opt.Seed)
	if err != nil {
		return "", nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	trials, err := tuner.Run(ds, tuner.Config{
		Space:       space,
		Input:       core.InputBlock{Kind: core.TimeSeries, WindowMS: 1000, FrequencyHz: 16000, Axes: 1},
		Constraints: tuner.Constraints{Target: device.MustGet("nano-33-ble-sense")},
		MaxTrials:   maxTrials,
		Epochs:      epochs,
		Seed:        opt.Seed,
		Workers:     workers,
	})
	if err != nil {
		return "", nil, err
	}
	t := report.NewTable(
		"Table 3. Preprocessing blocks and models explored with EON Tuner (KWS, Nano 33 BLE Sense, float32/TFLM).",
		"Preprocessing", "Model", "Acc.",
		"DSP ms", "Infer ms", "Total ms",
		"DSP RAM kB", "NN RAM kB", "Total RAM kB", "Flash kB", "Fits")
	for _, tr := range trials {
		fits := "yes"
		if !tr.Fits {
			fits = "no"
		}
		t.AddRow(tr.DSPDesc, tr.ModelDesc, report.Pct(tr.Accuracy),
			fmt.Sprintf("%.0f", tr.DSPLatencyMS),
			fmt.Sprintf("%.0f", tr.NNLatencyMS),
			fmt.Sprintf("%.0f", tr.TotalLatencyMS),
			report.KB(tr.DSPRAM), report.KB(tr.NNRAM), report.KB(tr.TotalRAM),
			report.KB(tr.NNFlash), fits)
	}
	return t.Render(), trials, nil
}

// Table4Cell is one (workload, precision, engine) memory estimate.
type Table4Cell struct {
	Workload  string
	Precision string
	Engine    string
	RAMKB     float64
	FlashKB   float64
}

// Table4 reproduces the memory estimation table: RAM and flash for every
// workload × {float32, int8} × {TFLM, EON}, plus preprocessing RAM.
func Table4() (string, []Table4Cell, error) {
	workloads, err := AllWorkloads()
	if err != nil {
		return "", nil, err
	}
	headers := []string{""}
	for _, w := range workloads {
		headers = append(headers, w.Name+" RAM kB", w.Name+" Flash kB")
	}
	t := report.NewTable("Table 4. Memory estimation (kB).", headers...)
	var cells []Table4Cell
	dspRow := []string{"Preprocessing"}
	for _, w := range workloads {
		dspRow = append(dspRow, report.KB(w.DSPRAM), "-")
	}
	t.AddRow(dspRow...)
	type variant struct {
		label     string
		precision renode.Precision
		engine    renode.Engine
	}
	variants := []variant{
		{"FP (TFLM)", renode.Float32, renode.TFLM},
		{"FP (EON)", renode.Float32, renode.EON},
		{"Int8 (TFLM)", renode.Int8, renode.TFLM},
		{"Int8 (EON)", renode.Int8, renode.EON},
	}
	for _, v := range variants {
		row := []string{v.label}
		for _, w := range workloads {
			var mem profiler.Memory
			if v.precision == renode.Float32 {
				mem, err = profiler.EstimateFloat(w.Model, v.engine)
				if err != nil {
					return "", nil, err
				}
			} else {
				mem = profiler.EstimateInt8(w.QModel, v.engine)
			}
			row = append(row, report.KB(mem.RAMBytes), report.KB(mem.FlashBytes))
			cells = append(cells, Table4Cell{
				Workload: w.ID, Precision: v.precision.String(), Engine: v.engine.String(),
				RAMKB: float64(mem.RAMBytes) / 1024, FlashKB: float64(mem.FlashBytes) / 1024,
			})
		}
		t.AddRow(row...)
	}
	return t.Render(), cells, nil
}

// Table5 renders the MLOps platform feature comparison.
func Table5() string {
	t := report.NewTable(
		"Table 5. Comparison of supported features of MLOps platforms (Y full, ~ partial, N none).",
		"Platform", "Data Coll. & Analysis", "DSP & Model Design",
		"Embedded Deployment", "AutoML & Active Learning", "IoT Mgmt & Monitoring")
	for _, p := range report.Table5Data() {
		t.AddRow(p.Name, p.DataColl, p.DSPModel, p.Embedded, p.AutoML, p.Monitoring)
	}
	return t.Render()
}

// Fig1 renders the workflow-to-feature mapping of the paper's Figure 1.
func Fig1() string {
	t := report.NewTable("Figure 1. ML workflow challenges and the platform features that address them.",
		"Stage", "Challenge", "Platform feature", "Package")
	rows := [][4]string{
		{"Data collection", "no curated sensor datasets; costly labeling", "signed ingestion (CSV/JSON/CBOR/WAV/images), dataset mgmt, active learning", "ingest, data, active"},
		{"Preprocessing", "DSP/ML co-design needs domain experts", "DSP block library with cost/RAM estimates, autotuning", "dsp, tuner"},
		{"Model design", "framework/version fragmentation", "model zoo + trainer with LR finder and checkpointing", "models, trainer"},
		{"Optimization", "resource constraints on-device", "int8 quantization, operator fusion, EON compiler", "quant, eon"},
		{"Deployment", "heterogeneous targets, unportable code", "C++/Arduino/WASM/EIM artifacts, device targets", "deploy, eim, device"},
		{"Evaluation", "no on-device visibility pre-deploy", "cycle-model latency + RAM/flash estimation", "renode, profiler"},
		{"MLOps", "no end-to-end automation", "REST API, jobs with autoscaling, versioned projects", "api, jobs, project"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3])
	}
	return t.Render()
}

// Fig2 renders the Studio dataflow view for a keyword-spotting impulse.
func Fig2() string {
	var b strings.Builder
	b.WriteString("Figure 2. Impulse dataflow (Studio view).\n")
	b.WriteString(report.Diagram("Time series data (1000 ms @ 16 kHz)", "MFCC", "Classification (12 classes)"))
	return b.String()
}

// Fig3 renders tuner trials as the EON Tuner result view: stacked bars of
// latency (DSP vs NN), RAM and flash per configuration.
func Fig3(trials []tuner.Trial) string {
	var b strings.Builder
	b.WriteString("Figure 3. EON Tuner results (bars scaled per column; '='=DSP, '#'=NN).\n\n")
	var maxLat, maxRAM, maxFlash float64
	for _, tr := range trials {
		if tr.TotalLatencyMS > maxLat {
			maxLat = tr.TotalLatencyMS
		}
		if v := float64(tr.TotalRAM); v > maxRAM {
			maxRAM = v
		}
		if v := float64(tr.NNFlash); v > maxFlash {
			maxFlash = v
		}
	}
	for _, tr := range trials {
		fmt.Fprintf(&b, "%-26s x %-22s acc %s\n", tr.DSPDesc, tr.ModelDesc, report.Pct(tr.Accuracy))
		fmt.Fprintf(&b, "  latency %s\n", report.StackedBar([]report.Segment{
			{Label: "dsp", Value: tr.DSPLatencyMS},
			{Label: "nn", Value: tr.NNLatencyMS},
		}, maxLat, 40, "ms"))
		fmt.Fprintf(&b, "  ram     %s\n", report.StackedBar([]report.Segment{
			{Label: "dsp", Value: float64(tr.DSPRAM) / 1024},
			{Label: "nn", Value: float64(tr.NNRAM) / 1024},
		}, maxRAM/1024, 40, "kB"))
		fmt.Fprintf(&b, "  flash   %s\n\n", report.StackedBar([]report.Segment{
			{Label: "nn", Value: float64(tr.NNFlash) / 1024},
		}, maxFlash/1024, 40, "kB"))
	}
	return b.String()
}
