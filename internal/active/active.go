// Package active implements the active-learning loop of the platform
// (paper Sec. 4.8): extract semantically meaningful embeddings from an
// intermediate layer of a partially trained model, project them to 2-D
// for the data-explorer view (a PCA projection standing in for
// UMAP/t-SNE), and auto-label or flag unlabeled samples by proximity to
// existing class clusters.
package active

import (
	"fmt"
	"math"
	"sort"

	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
)

// Embeddings runs each input through the first `layer` layers of the
// model and returns the flattened intermediate activations. layer < 0
// selects the penultimate layer (before the classifier head).
func Embeddings(m *nn.Model, layer int, xs []*tensor.F32) ([][]float64, error) {
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("active: empty model")
	}
	if layer < 0 {
		layer = len(m.Layers) - 2
		if layer < 1 {
			layer = 1
		}
	}
	if layer > len(m.Layers) {
		return nil, fmt.Errorf("active: layer %d out of range (%d layers)", layer, len(m.Layers))
	}
	out := make([][]float64, len(xs))
	var dim int
	for i, x := range xs {
		if !x.Shape.Equal(m.InputShape) {
			return nil, fmt.Errorf("active: input %d has shape %v, want %v", i, x.Shape, m.InputShape)
		}
		emb := m.ForwardTo(x, layer)
		if i == 0 {
			dim = len(emb.Data)
		} else if len(emb.Data) != dim {
			return nil, fmt.Errorf("active: inconsistent embedding dims")
		}
		row := make([]float64, len(emb.Data))
		for j, v := range emb.Data {
			row[j] = float64(v)
		}
		out[i] = row
	}
	return out, nil
}

// PCA2D projects points onto their top two principal components using
// power iteration with deflation — the dimensionality-reduction step of
// the data explorer. Output is centered; axes are unit variance-ordered.
func PCA2D(points [][]float64) ([][2]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("active: no points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("active: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	// Center.
	mean := make([]float64, d)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	centered := make([][]float64, n)
	for i, p := range points {
		row := make([]float64, d)
		for j, v := range p {
			row[j] = v - mean[j]
		}
		centered[i] = row
	}
	// Power iteration on the covariance (implicitly X^T X).
	component := func(deflated [][]float64) []float64 {
		v := make([]float64, d)
		for j := range v {
			v[j] = 1 / math.Sqrt(float64(d))
		}
		for it := 0; it < 64; it++ {
			// w = X^T (X v)
			xv := make([]float64, n)
			for i, row := range deflated {
				var s float64
				for j, x := range row {
					s += x * v[j]
				}
				xv[i] = s
			}
			w := make([]float64, d)
			for i, row := range deflated {
				for j, x := range row {
					w[j] += x * xv[i]
				}
			}
			var norm float64
			for _, x := range w {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				return v
			}
			for j := range w {
				w[j] /= norm
			}
			v = w
		}
		return v
	}
	pc1 := component(centered)
	// Deflate: remove pc1 component from each point.
	deflated := make([][]float64, n)
	for i, row := range centered {
		var proj float64
		for j, x := range row {
			proj += x * pc1[j]
		}
		d2 := make([]float64, d)
		for j, x := range row {
			d2[j] = x - proj*pc1[j]
		}
		deflated[i] = d2
	}
	pc2 := component(deflated)
	out := make([][2]float64, n)
	for i, row := range centered {
		var a, b float64
		for j, x := range row {
			a += x * pc1[j]
			b += x * pc2[j]
		}
		out[i] = [2]float64{a, b}
	}
	return out, nil
}

// Suggestion is one auto-labeling proposal for an unlabeled sample.
type Suggestion struct {
	// Index identifies the unlabeled point in the input slice.
	Index int
	// Label is the proposed class.
	Label string
	// Confidence is the fraction of the k nearest labeled neighbours
	// agreeing on Label, discounted by distance.
	Confidence float64
}

// SuggestLabels proposes labels for the unlabeled points (empty string in
// labels) via k-nearest-neighbour vote over labeled points in embedding
// space. Only suggestions at or above minConfidence are returned, sorted
// by descending confidence — the "manually or automatically label samples
// based on proximity to existing class clusters" step of the paper.
func SuggestLabels(embeddings [][]float64, labels []string, k int, minConfidence float64) ([]Suggestion, error) {
	if len(embeddings) != len(labels) {
		return nil, fmt.Errorf("active: %d embeddings vs %d labels", len(embeddings), len(labels))
	}
	if k < 1 {
		k = 3
	}
	var labeledIdx []int
	for i, l := range labels {
		if l != "" {
			labeledIdx = append(labeledIdx, i)
		}
	}
	if len(labeledIdx) == 0 {
		return nil, fmt.Errorf("active: no labeled points to learn from")
	}
	if k > len(labeledIdx) {
		k = len(labeledIdx)
	}
	var out []Suggestion
	for i, l := range labels {
		if l != "" {
			continue
		}
		type nb struct {
			dist  float64
			label string
		}
		ns := make([]nb, 0, len(labeledIdx))
		for _, j := range labeledIdx {
			ns = append(ns, nb{dist: euclid(embeddings[i], embeddings[j]), label: labels[j]})
		}
		sort.Slice(ns, func(a, b int) bool { return ns[a].dist < ns[b].dist })
		ns = ns[:k]
		// Distance-weighted vote.
		votes := map[string]float64{}
		var total float64
		for _, n := range ns {
			w := 1 / (1 + n.dist)
			votes[n.label] += w
			total += w
		}
		bestLabel, bestVote := "", 0.0
		for l, v := range votes {
			if v > bestVote {
				bestLabel, bestVote = l, v
			}
		}
		conf := bestVote / total
		if conf >= minConfidence {
			out = append(out, Suggestion{Index: i, Label: bestLabel, Confidence: conf})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Confidence > out[b].Confidence })
	return out, nil
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
