package active

import (
	"math"
	"math/rand"
	"testing"

	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
	"edgepulse/internal/trainer"
)

func blobPoints(n int, seed int64) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	points := make([][]float64, n)
	labels := make([]string, n)
	for i := range points {
		label := "a"
		center := 0.0
		if i%2 == 1 {
			label = "b"
			center = 8
		}
		points[i] = []float64{
			center + rng.NormFloat64()*0.5,
			center + rng.NormFloat64()*0.5,
			rng.NormFloat64() * 0.1,
		}
		labels[i] = label
	}
	return points, labels
}

func TestPCA2DRecoversPrimaryAxis(t *testing.T) {
	// Points spread along (1,1,0): PC1 should capture that direction so
	// projected x-coordinates separate the two ends.
	points, _ := blobPoints(100, 1)
	proj, err := PCA2D(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 100 {
		t.Fatal("length")
	}
	// Variance along axis 1 >> axis 2.
	var v1, v2 float64
	for _, p := range proj {
		v1 += p[0] * p[0]
		v2 += p[1] * p[1]
	}
	if v1 < 10*v2 {
		t.Errorf("PC1 var %g not dominant over PC2 var %g", v1, v2)
	}
	// The two blobs separate along PC1.
	var aMean, bMean float64
	for i, p := range proj {
		if i%2 == 0 {
			aMean += p[0]
		} else {
			bMean += p[0]
		}
	}
	if math.Abs(aMean-bMean) < 100 {
		t.Errorf("blobs not separated in PC1: %g vs %g", aMean/50, bMean/50)
	}
}

func TestPCA2DValidation(t *testing.T) {
	if _, err := PCA2D(nil); err == nil {
		t.Error("accepted empty")
	}
	if _, err := PCA2D([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("accepted ragged")
	}
}

func TestPCA2DDegenerate(t *testing.T) {
	// All-identical points: projection must not NaN.
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	proj, err := PCA2D(points)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proj {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			t.Fatal("NaN in degenerate projection")
		}
	}
}

func TestEmbeddingsFromTrainedModel(t *testing.T) {
	// Train a tiny model on separable data; penultimate-layer embeddings
	// must cluster by class.
	m := nn.NewModel(4)
	m.NumClasses = 2
	m.Add(nn.NewDense(8, nn.ReLU)).Add(nn.NewDense(2, nn.None)).Add(nn.NewSoftmax())
	nn.InitWeights(m, 1)
	rng := rand.New(rand.NewSource(2))
	var examples []trainer.Example
	var inputs []*tensor.F32
	var classes []int
	for i := 0; i < 80; i++ {
		y := i % 2
		x := tensor.NewF32(4)
		c := float32(-1)
		if y == 1 {
			c = 1
		}
		for j := range x.Data {
			x.Data[j] = c + float32(rng.NormFloat64()*0.3)
		}
		examples = append(examples, trainer.Example{X: x, Y: y})
		inputs = append(inputs, x)
		classes = append(classes, y)
	}
	if _, err := trainer.Train(m, examples, trainer.Config{Epochs: 10, LearningRate: 0.01, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	embs, err := Embeddings(m, -1, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 80 || len(embs[0]) != 8 {
		t.Fatalf("embedding dims: %d x %d", len(embs), len(embs[0]))
	}
	// Intra-class distance < inter-class distance on centroids.
	cent := map[int][]float64{0: make([]float64, 8), 1: make([]float64, 8)}
	counts := map[int]int{}
	for i, e := range embs {
		c := classes[i]
		counts[c]++
		for j, v := range e {
			cent[c][j] += v
		}
	}
	for c, v := range cent {
		for j := range v {
			v[j] /= float64(counts[c])
		}
	}
	inter := euclid(cent[0], cent[1])
	var intra float64
	for i, e := range embs {
		intra += euclid(e, cent[classes[i]])
	}
	intra /= float64(len(embs))
	if inter < 2*intra {
		t.Errorf("inter-centroid %g not >> intra %g", inter, intra)
	}
}

func TestEmbeddingsValidation(t *testing.T) {
	m := nn.NewModel(4)
	if _, err := Embeddings(m, 0, nil); err == nil {
		t.Error("accepted empty model")
	}
	m.Add(nn.NewDense(2, nn.None)).Add(nn.NewSoftmax())
	nn.InitWeights(m, 1)
	bad := []*tensor.F32{tensor.NewF32(7)}
	if _, err := Embeddings(m, 1, bad); err == nil {
		t.Error("accepted wrong input shape")
	}
	if _, err := Embeddings(m, 99, []*tensor.F32{tensor.NewF32(4)}); err == nil {
		t.Error("accepted out-of-range layer")
	}
}

func TestSuggestLabels(t *testing.T) {
	points, labels := blobPoints(100, 4)
	// Hide 30% of the labels.
	truth := append([]string(nil), labels...)
	rng := rand.New(rand.NewSource(5))
	hidden := 0
	for i := range labels {
		if rng.Float64() < 0.3 {
			labels[i] = ""
			hidden++
		}
	}
	sugg, err := SuggestLabels(points, labels, 5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	correct := 0
	for _, s := range sugg {
		if labels[s.Index] != "" {
			t.Fatal("suggestion for labeled point")
		}
		if s.Label == truth[s.Index] {
			correct++
		}
		if s.Confidence < 0.6 || s.Confidence > 1 {
			t.Errorf("confidence %g out of range", s.Confidence)
		}
	}
	if float64(correct)/float64(len(sugg)) < 0.95 {
		t.Errorf("auto-label accuracy %d/%d", correct, len(sugg))
	}
	// Sorted by confidence.
	for i := 1; i < len(sugg); i++ {
		if sugg[i].Confidence > sugg[i-1].Confidence {
			t.Fatal("not sorted")
		}
	}
}

func TestSuggestLabelsValidation(t *testing.T) {
	if _, err := SuggestLabels([][]float64{{1}}, []string{"a", "b"}, 3, 0.5); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := SuggestLabels([][]float64{{1}, {2}}, []string{"", ""}, 3, 0.5); err == nil {
		t.Error("accepted zero labeled points")
	}
}

func TestSuggestLabelsAmbiguousFiltered(t *testing.T) {
	// A point exactly between two classes should be filtered by a high
	// confidence threshold.
	points := [][]float64{{0, 0}, {10, 10}, {5, 5}}
	labels := []string{"a", "b", ""}
	sugg, err := SuggestLabels(points, labels, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 0 {
		t.Errorf("ambiguous point labeled anyway: %+v", sugg)
	}
}
