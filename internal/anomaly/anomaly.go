// Package anomaly implements the unsupervised learning blocks of the
// platform (paper Sec. 4.3): K-means clustering for anomaly detection,
// plus the Gaussian mixture model the paper lists as upcoming ("will
// support GMM in the near future") — implemented here as an extension.
//
// Both models are trained on feature vectors of normal operation; at
// inference they emit an anomaly score that grows with distance from the
// training distribution. A threshold on the score flags anomalies.
package anomaly

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans is a fitted K-means anomaly detector.
type KMeans struct {
	// Centroids holds k cluster centers.
	Centroids [][]float32
	// Spread is the mean distance of training points to their centroid,
	// per cluster; scores are normalized by it.
	Spread []float32
}

// FitKMeans clusters rows of x into k clusters with Lloyd's algorithm and
// k-means++ seeding. Deterministic for a given seed.
func FitKMeans(x [][]float32, k, iters int, seed int64) (*KMeans, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("anomaly: no training data")
	}
	if k <= 0 || k > len(x) {
		return nil, fmt.Errorf("anomaly: k=%d invalid for %d points", k, len(x))
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("anomaly: row %d has dim %d, want %d", i, len(row), dim)
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([][]float32, 0, k)
	first := x[rng.Intn(len(x))]
	centroids = append(centroids, append([]float32(nil), first...))
	dists := make([]float64, len(x))
	for len(centroids) < k {
		var total float64
		for i, row := range x {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(row, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(len(x))
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, d := range dists {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float32(nil), x[pick]...))
	}

	assign := make([]int, len(x))
	for it := 0; it < iters; it++ {
		changed := false
		for i, row := range x {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(row, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, row := range x {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += float64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed empty cluster at a random point.
				copy(centroids[c], x[rng.Intn(len(x))])
				continue
			}
			for j := 0; j < dim; j++ {
				centroids[c][j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
		if !changed && it > 0 {
			break
		}
	}

	// Per-cluster spread for score normalization.
	spread := make([]float32, k)
	counts := make([]int, k)
	for i, row := range x {
		c := assign[i]
		spread[c] += float32(math.Sqrt(sqDist(row, centroids[c])))
		counts[c]++
	}
	for c := range spread {
		if counts[c] > 0 {
			spread[c] /= float32(counts[c])
		}
		if spread[c] < 1e-6 {
			spread[c] = 1e-6
		}
	}
	return &KMeans{Centroids: centroids, Spread: spread}, nil
}

func sqDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Assign returns the nearest centroid index for a point.
func (m *KMeans) Assign(x []float32) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range m.Centroids {
		if d := sqDist(x, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Score returns the anomaly score: distance to the nearest centroid
// normalized by that cluster's training spread. Scores near 1 are typical
// of training data; scores well above it indicate anomalies.
func (m *KMeans) Score(x []float32) float64 {
	c := m.Assign(x)
	return math.Sqrt(sqDist(x, m.Centroids[c])) / float64(m.Spread[c])
}

// GMM is a diagonal-covariance Gaussian mixture model.
type GMM struct {
	Weights []float64
	Means   [][]float64
	Vars    [][]float64
	// trainFloor is the 5th-percentile training log-likelihood, used to
	// normalize scores.
	trainFloor float64
}

// FitGMM fits a k-component diagonal GMM with EM, initialized from
// K-means. Deterministic for a given seed.
func FitGMM(x [][]float32, k, iters int, seed int64) (*GMM, error) {
	km, err := FitKMeans(x, k, 10, seed)
	if err != nil {
		return nil, err
	}
	dim := len(x[0])
	g := &GMM{
		Weights: make([]float64, k),
		Means:   make([][]float64, k),
		Vars:    make([][]float64, k),
	}
	for c := 0; c < k; c++ {
		g.Weights[c] = 1 / float64(k)
		g.Means[c] = make([]float64, dim)
		g.Vars[c] = make([]float64, dim)
		for j := 0; j < dim; j++ {
			g.Means[c][j] = float64(km.Centroids[c][j])
			g.Vars[c][j] = 1
		}
	}
	resp := make([][]float64, len(x))
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for it := 0; it < iters; it++ {
		// E step.
		for i, row := range x {
			var total float64
			for c := 0; c < k; c++ {
				resp[i][c] = g.Weights[c] * math.Exp(g.logGauss(row, c))
				total += resp[i][c]
			}
			if total < 1e-300 {
				for c := 0; c < k; c++ {
					resp[i][c] = 1 / float64(k)
				}
				continue
			}
			for c := 0; c < k; c++ {
				resp[i][c] /= total
			}
		}
		// M step.
		for c := 0; c < k; c++ {
			var nc float64
			mean := make([]float64, dim)
			for i, row := range x {
				nc += resp[i][c]
				for j, v := range row {
					mean[j] += resp[i][c] * float64(v)
				}
			}
			if nc < 1e-10 {
				continue
			}
			for j := range mean {
				mean[j] /= nc
			}
			vr := make([]float64, dim)
			for i, row := range x {
				for j, v := range row {
					d := float64(v) - mean[j]
					vr[j] += resp[i][c] * d * d
				}
			}
			for j := range vr {
				vr[j] = vr[j]/nc + 1e-6
			}
			g.Weights[c] = nc / float64(len(x))
			g.Means[c] = mean
			g.Vars[c] = vr
		}
	}
	// Normalization floor: 5th percentile of training log-likelihoods.
	lls := make([]float64, len(x))
	for i, row := range x {
		lls[i] = g.logLik(row)
	}
	sortFloat64s(lls)
	g.trainFloor = lls[len(lls)/20]
	return g, nil
}

func sortFloat64s(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// logGauss computes the log density of component c at x.
func (g *GMM) logGauss(x []float32, c int) float64 {
	var ll float64
	for j, v := range x {
		d := float64(v) - g.Means[c][j]
		ll += -0.5*(d*d/g.Vars[c][j]) - 0.5*math.Log(2*math.Pi*g.Vars[c][j])
	}
	return ll
}

// logLik computes the mixture log-likelihood of a point.
func (g *GMM) logLik(x []float32) float64 {
	best := math.Inf(-1)
	for c := range g.Weights {
		if g.Weights[c] <= 0 {
			continue
		}
		ll := math.Log(g.Weights[c]) + g.logGauss(x, c)
		if ll > best {
			best = ll
		}
	}
	return best
}

// Score returns the anomaly score: how far the point's log-likelihood
// falls below the training floor (0 for in-distribution points, growing
// positive for anomalies).
func (g *GMM) Score(x []float32) float64 {
	s := g.trainFloor - g.logLik(x)
	if s < 0 {
		return 0
	}
	return s
}
