package anomaly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs generates points around (0,0,...) and (10,10,...).
func twoBlobs(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		center := float32(0)
		if i%2 == 1 {
			center = 10
		}
		row := make([]float32, dim)
		for j := range row {
			row[j] = center + float32(rng.NormFloat64()*0.5)
		}
		out[i] = row
	}
	return out
}

func TestKMeansRecoverClusters(t *testing.T) {
	x := twoBlobs(200, 3, 1)
	m, err := FitKMeans(x, 2, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One centroid near 0, one near 10.
	c0 := m.Centroids[0][0]
	c1 := m.Centroids[1][0]
	lo, hi := c0, c1
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < -1 || lo > 1 {
		t.Errorf("low centroid at %g, want ~0", lo)
	}
	if hi < 9 || hi > 11 {
		t.Errorf("high centroid at %g, want ~10", hi)
	}
}

func TestKMeansAnomalyScores(t *testing.T) {
	x := twoBlobs(200, 3, 3)
	m, err := FitKMeans(x, 2, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Training-like points score low.
	normal := []float32{0.2, -0.1, 0.3}
	anomalous := []float32{5, 5, 5} // between the blobs
	far := []float32{100, 100, 100}
	sN := m.Score(normal)
	sA := m.Score(anomalous)
	sF := m.Score(far)
	if sN > 3 {
		t.Errorf("normal point scores %g", sN)
	}
	if sA < sN*2 {
		t.Errorf("mid-point score %g not above normal %g", sA, sN)
	}
	if sF < sA {
		t.Errorf("far point %g not above mid %g", sF, sA)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := FitKMeans(nil, 2, 10, 1); err == nil {
		t.Error("accepted empty data")
	}
	x := twoBlobs(10, 2, 1)
	if _, err := FitKMeans(x, 0, 10, 1); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := FitKMeans(x, 11, 10, 1); err == nil {
		t.Error("accepted k > n")
	}
	ragged := [][]float32{{1, 2}, {3}}
	if _, err := FitKMeans(ragged, 1, 10, 1); err == nil {
		t.Error("accepted ragged rows")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	x := twoBlobs(100, 2, 5)
	a, _ := FitKMeans(x, 3, 20, 7)
	b, _ := FitKMeans(x, 3, 20, 7)
	for c := range a.Centroids {
		for j := range a.Centroids[c] {
			if a.Centroids[c][j] != b.Centroids[c][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestAssignNearestProperty(t *testing.T) {
	x := twoBlobs(60, 2, 8)
	m, err := FitKMeans(x, 3, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float32) bool {
		p := []float32{a, b}
		c := m.Assign(p)
		d := sqDist(p, m.Centroids[c])
		for o := range m.Centroids {
			if sqDist(p, m.Centroids[o]) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	x := [][]float32{{1, 1}, {1.1, 0.9}, {0.9, 1.1}}
	m, err := FitKMeans(x, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Centroids) != 1 {
		t.Fatal("centroid count")
	}
	if m.Centroids[0][0] < 0.9 || m.Centroids[0][0] > 1.1 {
		t.Errorf("centroid %v", m.Centroids[0])
	}
}

func TestGMMScores(t *testing.T) {
	x := twoBlobs(300, 2, 10)
	g, err := FitGMM(x, 2, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	normal := []float32{0.1, 0.1}
	anomalous := []float32{50, -50}
	if s := g.Score(normal); s > 5 {
		t.Errorf("normal GMM score %g", s)
	}
	if s := g.Score(anomalous); s < 10 {
		t.Errorf("anomalous GMM score %g too low", s)
	}
}

func TestGMMWeightsSumToOne(t *testing.T) {
	x := twoBlobs(200, 2, 12)
	g, err := FitGMM(x, 3, 15, 13)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range g.Weights {
		if w < 0 {
			t.Errorf("negative weight %g", w)
		}
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("weights sum to %g", sum)
	}
}

func TestGMMOrderingProperty(t *testing.T) {
	// Score must be monotone in distance from the data, along a ray.
	x := twoBlobs(200, 2, 14)
	g, err := FitGMM(x, 2, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for d := float32(20); d <= 100; d += 20 {
		s := g.Score([]float32{d, d})
		if s < prev {
			t.Fatalf("score not monotone at distance %g: %g < %g", d, s, prev)
		}
		prev = s
	}
}

func BenchmarkKMeansScore(b *testing.B) {
	x := twoBlobs(500, 16, 1)
	m, _ := FitKMeans(x, 8, 30, 2)
	p := x[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(p)
	}
}
