// Package trainer implements model training for the edgepulse platform
// (paper Sec. 4.3): a single-machine SGD/Adam loop with the stabilizers
// the paper calls out — learning-rate finding, classifier bias
// initialization and best-model checkpoint restoration — plus the
// evaluation tooling (confusion matrix, per-class F1) behind the
// platform's model testing page.
package trainer

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
)

// Example is one labeled training sample: a feature tensor and its class.
type Example struct {
	X *tensor.F32
	Y int
}

// Config controls a training run.
type Config struct {
	// Epochs is the number of passes over the training split.
	Epochs int
	// BatchSize is the gradient accumulation size (samples are processed
	// one at a time, microcontroller-kernel style, but updates are
	// batched).
	BatchSize int
	// LearningRate is the initial step size. Zero means "use FindLR".
	LearningRate float64
	// Optimizer is "adam" (default) or "sgd".
	Optimizer string
	// Momentum applies to SGD only.
	Momentum float64
	// ValidationSplit is the fraction of data held out for validation
	// (default 0.2 when RestoreBest is set).
	ValidationSplit float64
	// RestoreBest restores the weights from the epoch with the highest
	// validation accuracy ("best model checkpoint restoration").
	RestoreBest bool
	// Seed makes shuffling and dropout deterministic.
	Seed int64
	// Log receives per-epoch progress lines; nil discards them.
	Log io.Writer
	// Ctx cancels training cooperatively: it is observed between
	// gradient batches, so a cancelled run stops mid-epoch rather than
	// finishing the pass (nil = never cancelled).
	Ctx context.Context
	// Progress receives (epoch, total) after each completed epoch —
	// the structured progress feed behind the platform's job events.
	Progress func(epoch, total int)
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
	if c.ValidationSplit <= 0 && c.RestoreBest {
		c.ValidationSplit = 0.2
	}
	return c
}

// Result summarizes a training run.
type Result struct {
	// TrainLoss holds the mean cross-entropy per epoch.
	TrainLoss []float64
	// ValAccuracy holds validation accuracy per epoch (empty without a
	// validation split).
	ValAccuracy []float64
	// BestEpoch is the epoch whose weights were kept (RestoreBest).
	BestEpoch int
	// LearningRate is the step size actually used.
	LearningRate float64
}

// Train fits the model in place. The model's final layer must be Softmax;
// the loss is categorical cross-entropy with the fused softmax gradient.
func Train(m *nn.Model, data []Example, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("trainer: no training data")
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("trainer: empty model")
	}
	if _, ok := m.Layers[len(m.Layers)-1].(*nn.Softmax); !ok {
		return nil, fmt.Errorf("trainer: model must end with a Softmax layer")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Train/validation split.
	idx := rng.Perm(len(data))
	nVal := int(cfg.ValidationSplit * float64(len(data)))
	val := make([]Example, 0, nVal)
	train := make([]Example, 0, len(data)-nVal)
	for i, j := range idx {
		if i < nVal {
			val = append(val, data[j])
		} else {
			train = append(train, data[j])
		}
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("trainer: validation split %.2f leaves no training data", cfg.ValidationSplit)
	}

	lr := cfg.LearningRate
	if lr <= 0 {
		lr = FindLR(m, train, cfg.Seed)
	}

	// Class-prior bias initialization.
	priors := make([]float64, m.NumClasses)
	for _, ex := range train {
		if ex.Y >= 0 && ex.Y < m.NumClasses {
			priors[ex.Y] += 1 / float64(len(train))
		}
	}
	nn.InitClassifierBias(m, priors)

	opt := newOptimizer(cfg.Optimizer, lr, cfg.Momentum, m.Params(), m.Grads())
	setTraining(m, true)
	defer setTraining(m, false)

	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{LearningRate: lr}
	bestAcc := -1.0
	var bestWeights [][]float32

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(train))
		var lossSum float64
		m.ZeroGrads()
		inBatch := 0
		for _, j := range perm {
			ex := train[j]
			probs := m.ForwardTraining(ex.X)
			lossSum += crossEntropy(probs, ex.Y)
			// Fused softmax+CE gradient: dL/dlogits = p - onehot.
			grad := probs.Clone()
			grad.Data[ex.Y] -= 1
			backpropThroughLogits(m, grad)
			inBatch++
			if inBatch == cfg.BatchSize {
				opt.Step(float32(1 / float64(inBatch)))
				m.ZeroGrads()
				inBatch = 0
				// Cooperative cancellation at batch granularity: a
				// cancelled job abandons the rest of the epoch.
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("trainer: training cancelled in epoch %d: %w", epoch+1, err)
				}
			}
		}
		if inBatch > 0 {
			opt.Step(float32(1 / float64(inBatch)))
			m.ZeroGrads()
		}
		res.TrainLoss = append(res.TrainLoss, lossSum/float64(len(train)))

		if len(val) > 0 {
			setTraining(m, false)
			acc := Accuracy(m, val)
			setTraining(m, true)
			res.ValAccuracy = append(res.ValAccuracy, acc)
			if acc > bestAcc {
				bestAcc = acc
				res.BestEpoch = epoch
				bestWeights = snapshot(m)
			}
			logf(cfg.Log, "epoch %d/%d loss=%.4f val_acc=%.3f\n", epoch+1, cfg.Epochs, res.TrainLoss[epoch], acc)
		} else {
			logf(cfg.Log, "epoch %d/%d loss=%.4f\n", epoch+1, cfg.Epochs, res.TrainLoss[epoch])
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch+1, cfg.Epochs)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("trainer: training cancelled after epoch %d: %w", epoch+1, err)
		}
	}
	if cfg.RestoreBest && bestWeights != nil {
		restore(m, bestWeights)
	}
	return res, nil
}

// backpropThroughLogits backpropagates a gradient w.r.t. the logits,
// skipping the final Softmax layer (whose gradient is fused into the
// cross-entropy term).
func backpropThroughLogits(m *nn.Model, grad *tensor.F32) {
	g := grad
	for i := len(m.Layers) - 2; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
}

func crossEntropy(probs *tensor.F32, y int) float64 {
	p := float64(probs.Data[y])
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

func setTraining(m *nn.Model, on bool) {
	for _, l := range m.Layers {
		if d, ok := l.(*nn.Dropout); ok {
			d.Training = on
		}
	}
}

func snapshot(m *nn.Model) [][]float32 {
	params := m.Params()
	out := make([][]float32, len(params))
	for i, p := range params {
		out[i] = append([]float32(nil), p.Data...)
	}
	return out
}

func restore(m *nn.Model, weights [][]float32) {
	for i, p := range m.Params() {
		copy(p.Data, weights[i])
	}
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// FindLR implements a small learning-rate range test: it probes a grid of
// learning rates on a copy of the model for a handful of steps each and
// returns the rate with the best short-horizon loss decrease.
func FindLR(m *nn.Model, data []Example, seed int64) float64 {
	candidates := []float64{0.1, 0.03, 0.01, 0.003, 0.001}
	if len(data) == 0 {
		return 0.01
	}
	probe := data
	if len(probe) > 64 {
		probe = probe[:64]
	}
	best, bestLoss := 0.01, math.Inf(1)
	for _, lr := range candidates {
		c, err := m.Clone()
		if err != nil {
			return 0.01
		}
		opt := newOptimizer("adam", lr, 0, c.Params(), c.Grads())
		var finalLoss float64
		diverged := false
		for step := 0; step < 3 && !diverged; step++ {
			c.ZeroGrads()
			finalLoss = 0
			for _, ex := range probe {
				probs := c.ForwardTraining(ex.X)
				finalLoss += crossEntropy(probs, ex.Y)
				grad := probs.Clone()
				grad.Data[ex.Y] -= 1
				backpropThroughLogits(c, grad)
			}
			finalLoss /= float64(len(probe))
			if math.IsNaN(finalLoss) || math.IsInf(finalLoss, 0) {
				diverged = true
				break
			}
			opt.Step(float32(1 / float64(len(probe))))
		}
		if !diverged && finalLoss < bestLoss {
			bestLoss = finalLoss
			best = lr
		}
	}
	return best
}

// Accuracy computes top-1 accuracy of the model on examples.
func Accuracy(m *nn.Model, data []Example) float64 {
	if len(data) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range data {
		if m.Forward(ex.X).ArgMax() == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

// Confusion computes the confusion matrix C[actual][predicted].
func Confusion(m *nn.Model, data []Example, numClasses int) [][]int {
	c := make([][]int, numClasses)
	for i := range c {
		c[i] = make([]int, numClasses)
	}
	for _, ex := range data {
		pred := m.Forward(ex.X).ArgMax()
		if ex.Y >= 0 && ex.Y < numClasses && pred >= 0 && pred < numClasses {
			c[ex.Y][pred]++
		}
	}
	return c
}

// F1Scores derives per-class F1 from a confusion matrix.
func F1Scores(confusion [][]int) []float64 {
	n := len(confusion)
	out := make([]float64, n)
	for c := 0; c < n; c++ {
		tp := confusion[c][c]
		var fp, fn int
		for o := 0; o < n; o++ {
			if o == c {
				continue
			}
			fp += confusion[o][c]
			fn += confusion[c][o]
		}
		denom := float64(2*tp + fp + fn)
		if denom > 0 {
			out[c] = 2 * float64(tp) / denom
		}
	}
	return out
}

// MacroF1 averages per-class F1 scores.
func MacroF1(confusion [][]int) float64 {
	scores := F1Scores(confusion)
	if len(scores) == 0 {
		return 0
	}
	var s float64
	for _, v := range scores {
		s += v
	}
	return s / float64(len(scores))
}

// SplitStratified partitions examples into train and test sets with
// per-class proportions preserved, deterministically for a seed.
func SplitStratified(data []Example, testFraction float64, seed int64) (train, test []Example) {
	byClass := map[int][]Example{}
	for _, ex := range data {
		byClass[ex.Y] = append(byClass[ex.Y], ex)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	rng := rand.New(rand.NewSource(seed))
	for _, c := range classes {
		group := byClass[c]
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		nTest := int(testFraction * float64(len(group)))
		test = append(test, group[:nTest]...)
		train = append(train, group[nTest:]...)
	}
	rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
	rng.Shuffle(len(test), func(i, j int) { test[i], test[j] = test[j], test[i] })
	return train, test
}
