package trainer

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
)

// blobs generates a linearly separable 2-class dataset in R^4.
func blobs(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, n)
	for i := range out {
		y := i % 2
		x := tensor.NewF32(4)
		center := float32(-1)
		if y == 1 {
			center = 1
		}
		for j := range x.Data {
			x.Data[j] = center + float32(rng.NormFloat64()*0.4)
		}
		out[i] = Example{X: x, Y: y}
	}
	return out
}

func mlp(seed int64) *nn.Model {
	m := nn.NewModel(4)
	m.NumClasses = 2
	m.Add(nn.NewDense(8, nn.ReLU)).Add(nn.NewDense(2, nn.None)).Add(nn.NewSoftmax())
	nn.InitWeights(m, seed)
	return m
}

func TestTrainLearnsBlobs(t *testing.T) {
	m := mlp(1)
	data := blobs(200, 2)
	res, err := Train(m, data, Config{Epochs: 15, LearningRate: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, data); acc < 0.95 {
		t.Fatalf("accuracy %.3f after training, want > 0.95", acc)
	}
	if len(res.TrainLoss) != 15 {
		t.Fatalf("got %d loss entries", len(res.TrainLoss))
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Errorf("loss did not decrease: %g -> %g", res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1])
	}
}

func TestTrainSGD(t *testing.T) {
	m := mlp(4)
	data := blobs(200, 5)
	_, err := Train(m, data, Config{Epochs: 20, LearningRate: 0.05, Optimizer: "sgd", Momentum: 0.9, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, data); acc < 0.9 {
		t.Fatalf("SGD accuracy %.3f, want > 0.9", acc)
	}
}

func TestTrainValidationAndRestore(t *testing.T) {
	m := mlp(7)
	data := blobs(300, 8)
	var log strings.Builder
	res, err := Train(m, data, Config{
		Epochs: 8, LearningRate: 0.01, Seed: 9,
		ValidationSplit: 0.25, RestoreBest: true, Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValAccuracy) != 8 {
		t.Fatalf("got %d val entries", len(res.ValAccuracy))
	}
	if res.BestEpoch < 0 || res.BestEpoch >= 8 {
		t.Fatalf("best epoch %d", res.BestEpoch)
	}
	if !strings.Contains(log.String(), "val_acc") {
		t.Error("log missing val_acc")
	}
}

func TestTrainErrors(t *testing.T) {
	m := mlp(1)
	if _, err := Train(m, nil, Config{}); err == nil {
		t.Error("accepted empty data")
	}
	noSoftmax := nn.NewModel(4)
	noSoftmax.NumClasses = 2
	noSoftmax.Add(nn.NewDense(2, nn.None))
	nn.InitWeights(noSoftmax, 1)
	if _, err := Train(noSoftmax, blobs(10, 1), Config{}); err == nil {
		t.Error("accepted model without softmax")
	}
	empty := nn.NewModel(4)
	if _, err := Train(empty, blobs(10, 1), Config{}); err == nil {
		t.Error("accepted empty model")
	}
}

func TestFindLRReturnsCandidate(t *testing.T) {
	m := mlp(10)
	lr := FindLR(m, blobs(64, 11), 12)
	valid := map[float64]bool{0.1: true, 0.03: true, 0.01: true, 0.003: true, 0.001: true}
	if !valid[lr] {
		t.Fatalf("FindLR returned %g", lr)
	}
	// FindLR must not mutate the original model.
	if lr2 := FindLR(m, nil, 1); lr2 != 0.01 {
		t.Fatalf("empty-data FindLR = %g, want default 0.01", lr2)
	}
}

func TestTrainAutoLR(t *testing.T) {
	m := mlp(13)
	res, err := Train(m, blobs(100, 14), Config{Epochs: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.LearningRate <= 0 {
		t.Fatalf("auto LR = %g", res.LearningRate)
	}
}

func TestConfusionAndF1(t *testing.T) {
	m := mlp(16)
	data := blobs(200, 17)
	Train(m, data, Config{Epochs: 15, LearningRate: 0.01, Seed: 18})
	conf := Confusion(m, data, 2)
	total := 0
	for _, row := range conf {
		for _, v := range row {
			total += v
		}
	}
	if total != 200 {
		t.Fatalf("confusion total %d", total)
	}
	f1 := F1Scores(conf)
	if len(f1) != 2 {
		t.Fatal("f1 length")
	}
	for c, v := range f1 {
		if v < 0.9 {
			t.Errorf("class %d F1 = %.3f", c, v)
		}
	}
	if MacroF1(conf) < 0.9 {
		t.Errorf("macro F1 = %.3f", MacroF1(conf))
	}
}

func TestF1KnownValues(t *testing.T) {
	// Perfect predictions: F1 = 1 everywhere.
	conf := [][]int{{10, 0}, {0, 10}}
	for _, v := range F1Scores(conf) {
		if v != 1 {
			t.Fatal("perfect F1 != 1")
		}
	}
	// Degenerate: never predicts class 1.
	conf = [][]int{{10, 0}, {10, 0}}
	f1 := F1Scores(conf)
	if f1[1] != 0 {
		t.Fatalf("f1[1] = %g", f1[1])
	}
	if MacroF1(nil) != 0 {
		t.Fatal("empty macro f1")
	}
}

func TestSplitStratified(t *testing.T) {
	// 80 of class 0, 20 of class 1.
	var data []Example
	for i := 0; i < 100; i++ {
		y := 0
		if i >= 80 {
			y = 1
		}
		data = append(data, Example{X: tensor.NewF32(1), Y: y})
	}
	train, test := SplitStratified(data, 0.25, 42)
	if len(train)+len(test) != 100 {
		t.Fatalf("split sizes %d+%d", len(train), len(test))
	}
	count := func(set []Example, y int) int {
		n := 0
		for _, ex := range set {
			if ex.Y == y {
				n++
			}
		}
		return n
	}
	if got := count(test, 0); got != 20 {
		t.Errorf("test class0 = %d, want 20", got)
	}
	if got := count(test, 1); got != 5 {
		t.Errorf("test class1 = %d, want 5", got)
	}
	// Deterministic.
	train2, _ := SplitStratified(data, 0.25, 42)
	for i := range train {
		if train[i].Y != train2[i].Y {
			t.Fatal("split not deterministic")
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(mlp(1), nil) != 0 {
		t.Fatal("empty accuracy != 0")
	}
}

func TestAdamStepDirection(t *testing.T) {
	// One parameter with positive gradient: Adam must decrease it.
	p := tensor.MustFromSlice([]float32{1}, 1)
	g := tensor.MustFromSlice([]float32{2}, 1)
	a := newAdam(0.1, []*tensor.F32{p}, []*tensor.F32{g})
	a.Step(1)
	if p.Data[0] >= 1 {
		t.Fatalf("adam did not descend: %g", p.Data[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := tensor.MustFromSlice([]float32{0}, 1)
	g := tensor.MustFromSlice([]float32{1}, 1)
	s := newSGD(0.1, 0.9, []*tensor.F32{p}, []*tensor.F32{g})
	s.Step(1)
	first := p.Data[0]
	s.Step(1)
	second := p.Data[0] - first
	if math.Abs(float64(second)) <= math.Abs(float64(first)) {
		t.Fatalf("momentum did not accelerate: step1 %g step2 %g", first, second)
	}
}

func TestCrossEntropyClamp(t *testing.T) {
	probs := tensor.MustFromSlice([]float32{0, 1}, 2)
	l := crossEntropy(probs, 0)
	if math.IsInf(l, 0) || math.IsNaN(l) {
		t.Fatal("cross entropy overflow on zero prob")
	}
}
