package trainer

import (
	"math"

	"edgepulse/internal/tensor"
)

// optimizer applies accumulated gradients to parameters.
type optimizer interface {
	// Step applies one update; scale divides the accumulated gradients
	// (1/batchSize for mean gradients).
	Step(scale float32)
}

func newOptimizer(name string, lr, momentum float64, params, grads []*tensor.F32) optimizer {
	switch name {
	case "sgd":
		return newSGD(lr, momentum, params, grads)
	default:
		return newAdam(lr, params, grads)
	}
}

// sgd is stochastic gradient descent with classical momentum.
type sgd struct {
	lr, momentum float32
	params       []*tensor.F32
	grads        []*tensor.F32
	velocity     [][]float32
}

func newSGD(lr, momentum float64, params, grads []*tensor.F32) *sgd {
	s := &sgd{lr: float32(lr), momentum: float32(momentum), params: params, grads: grads}
	s.velocity = make([][]float32, len(params))
	for i, p := range params {
		s.velocity[i] = make([]float32, len(p.Data))
	}
	return s
}

// Step implements optimizer.
func (s *sgd) Step(scale float32) {
	for i, p := range s.params {
		g := s.grads[i]
		v := s.velocity[i]
		for j := range p.Data {
			v[j] = s.momentum*v[j] - s.lr*g.Data[j]*scale
			p.Data[j] += v[j]
		}
	}
}

// adam is the Adam optimizer (Kingma & Ba) with bias correction.
type adam struct {
	lr           float32
	beta1, beta2 float32
	eps          float32
	t            int
	params       []*tensor.F32
	grads        []*tensor.F32
	m, v         [][]float32
}

func newAdam(lr float64, params, grads []*tensor.F32) *adam {
	a := &adam{lr: float32(lr), beta1: 0.9, beta2: 0.999, eps: 1e-7, params: params, grads: grads}
	a.m = make([][]float32, len(params))
	a.v = make([][]float32, len(params))
	for i, p := range params {
		a.m[i] = make([]float32, len(p.Data))
		a.v[i] = make([]float32, len(p.Data))
	}
	return a
}

// Step implements optimizer.
func (a *adam) Step(scale float32) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.beta2), float64(a.t)))
	for i, p := range a.params {
		g := a.grads[i]
		m := a.m[i]
		v := a.v[i]
		for j := range p.Data {
			gj := g.Data[j] * scale
			m[j] = a.beta1*m[j] + (1-a.beta1)*gj
			v[j] = a.beta2*v[j] + (1-a.beta2)*gj*gj
			mHat := m[j] / c1
			vHat := v[j] / c2
			p.Data[j] -= a.lr * mHat / (float32(math.Sqrt(float64(vHat))) + a.eps)
		}
	}
}
