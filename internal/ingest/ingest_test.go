package ingest

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func samplePayload() Payload {
	return Payload{
		DeviceName: "ac:87:a3:0a:2d:1b",
		DeviceType: "NANO33BLE",
		IntervalMS: 16,
		Sensors: []Sensor{
			{Name: "accX", Units: "m/s2"},
			{Name: "accY", Units: "m/s2"},
		},
		Values: [][]float64{{0.1, 0.2}, {0.3, 0.4}, {-0.5, 0.6}},
	}
}

func TestSignVerifyJSON(t *testing.T) {
	data, err := SignJSON(samplePayload(), "secret-key", 1670000000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Verify(data, "secret-key")
	if err != nil {
		t.Fatal(err)
	}
	if p.DeviceName != "ac:87:a3:0a:2d:1b" || len(p.Values) != 3 {
		t.Fatalf("payload: %+v", p)
	}
	if p.Values[2][0] != -0.5 {
		t.Errorf("values lost: %v", p.Values)
	}
}

func TestSignVerifyCBOR(t *testing.T) {
	data, err := SignCBOR(samplePayload(), "secret-key", 1670000000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Verify(data, "secret-key")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sensors) != 2 || p.Sensors[1].Name != "accY" {
		t.Fatalf("sensors: %+v", p.Sensors)
	}
	// CBOR documents are smaller than their JSON equivalents.
	jdata, _ := SignJSON(samplePayload(), "secret-key", 1670000000)
	if len(data) >= len(jdata) {
		t.Errorf("CBOR %d bytes >= JSON %d bytes", len(data), len(jdata))
	}
}

func TestWrongKeyRejected(t *testing.T) {
	for _, enc := range []func(Payload, string, int64) ([]byte, error){SignJSON, SignCBOR} {
		data, err := enc(samplePayload(), "right-key", 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(data, "wrong-key"); err == nil {
			t.Error("wrong key accepted")
		}
	}
}

func TestTamperRejected(t *testing.T) {
	data, err := SignJSON(samplePayload(), "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte("0.1"), []byte("9.9"), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper failed to change document")
	}
	if _, err := Verify(tampered, "k"); err == nil {
		t.Error("tampered payload accepted")
	}
}

func TestTamperProperty(t *testing.T) {
	data, err := SignCBOR(samplePayload(), "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, delta byte) bool {
		if delta == 0 {
			return true
		}
		i := int(pos) % len(data)
		mut := append([]byte(nil), data...)
		mut[i] ^= delta
		_, err := Verify(mut, "k")
		return err != nil // any bit flip must be rejected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPayloadValidate(t *testing.T) {
	p := samplePayload()
	p.Sensors = nil
	if p.Validate() == nil {
		t.Error("accepted no sensors")
	}
	p = samplePayload()
	p.Values = nil
	if p.Validate() == nil {
		t.Error("accepted no values")
	}
	p = samplePayload()
	p.IntervalMS = 0
	if p.Validate() == nil {
		t.Error("accepted zero interval")
	}
	p = samplePayload()
	p.Values[1] = []float64{1}
	if p.Validate() == nil {
		t.Error("accepted ragged rows")
	}
	if _, err := SignJSON(p, "k", 1); err == nil {
		t.Error("signed invalid payload")
	}
}

func TestSignalConversion(t *testing.T) {
	p := samplePayload()
	sig := p.Signal()
	if sig.Axes != 2 {
		t.Fatalf("axes = %d", sig.Axes)
	}
	if sig.Rate != 63 { // 1000/16 = 62.5 -> 63
		t.Fatalf("rate = %d", sig.Rate)
	}
	if sig.Frames() != 3 {
		t.Fatalf("frames = %d", sig.Frames())
	}
	if sig.Data[0] != 0.1 || sig.Data[1] != 0.2 || sig.Data[2] != 0.3 {
		t.Fatalf("interleaving wrong: %v", sig.Data[:4])
	}
}

func TestRateEdge(t *testing.T) {
	if (Payload{IntervalMS: 0}).Rate() != 0 {
		t.Error("zero interval rate")
	}
	if (Payload{IntervalMS: 0.0625}).Rate() != 16000 {
		t.Error("16kHz audio rate")
	}
}

func TestVerifyGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("{}"),
		[]byte("{not json"),
		[]byte{0xFF, 0x00},
		[]byte(`{"protected":{"alg":"none"},"signature":"x","payload":{}}`),
	}
	for i, c := range cases {
		if _, err := Verify(c, "k"); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRoundTripPropertyJSON(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Payload{
			DeviceName: "dev",
			DeviceType: "TEST",
			IntervalMS: 1 + rng.Float64()*100,
			Sensors:    []Sensor{{Name: "s0", Units: "u"}},
		}
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			p.Values = append(p.Values, []float64{float64(rng.Intn(2000)-1000) / 8})
		}
		data, err := SignJSON(p, "key", rng.Int63())
		if err != nil {
			return false
		}
		got, err := Verify(data, "key")
		if err != nil {
			return false
		}
		if len(got.Values) != len(p.Values) {
			return false
		}
		for i := range p.Values {
			if got.Values[i][0] != p.Values[i][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
