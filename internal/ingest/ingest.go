// Package ingest implements the data acquisition format and ingestion
// service of the platform (paper Sec. 4.1): sensor payloads encoded as
// JSON or CBOR, authenticated with an HMAC-SHA256 signature so that data
// arriving from devices in the field can be attributed and trusted.
//
// A document looks like:
//
//	{
//	  "protected": {"ver": "v1", "alg": "HS256", "iat": 1670000000},
//	  "signature": "<64 hex chars>",
//	  "payload": {
//	    "device_name": "ac:87:a3:0a:2d:1b",
//	    "device_type": "NANO33BLE",
//	    "interval_ms": 0.0625,
//	    "sensors": [{"name": "audio", "units": "wav"}],
//	    "values": [[-12], [9], ...]
//	  }
//	}
//
// The signature is computed over the full document with the signature
// field set to 64 zero characters, then substituted in — so verification
// replaces the signature bytes with zeros and recomputes the MAC over the
// raw document, with no re-canonicalization step.
package ingest

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"edgepulse/internal/cbor"
	"edgepulse/internal/dsp"
)

// Sensor describes one payload channel.
type Sensor struct {
	Name  string `json:"name"`
	Units string `json:"units"`
}

// Payload is the sensor data portion of an acquisition document.
type Payload struct {
	DeviceName string   `json:"device_name"`
	DeviceType string   `json:"device_type"`
	IntervalMS float64  `json:"interval_ms"`
	Sensors    []Sensor `json:"sensors"`
	// Values holds one row per time step, one column per sensor.
	Values [][]float64 `json:"values"`
}

// Rate returns the sample rate in Hz implied by the interval.
func (p Payload) Rate() int {
	if p.IntervalMS <= 0 {
		return 0
	}
	return int(1000/p.IntervalMS + 0.5)
}

// Signal converts the payload to a DSP signal (interleaved axes).
func (p Payload) Signal() dsp.Signal {
	axes := len(p.Sensors)
	if axes == 0 {
		axes = 1
	}
	data := make([]float32, 0, len(p.Values)*axes)
	for _, row := range p.Values {
		for a := 0; a < axes; a++ {
			if a < len(row) {
				data = append(data, float32(row[a]))
			} else {
				data = append(data, 0)
			}
		}
	}
	return dsp.Signal{Data: data, Rate: p.Rate(), Axes: axes}
}

// Validate checks structural invariants of the payload.
func (p Payload) Validate() error {
	if len(p.Sensors) == 0 {
		return fmt.Errorf("ingest: payload has no sensors")
	}
	if len(p.Values) == 0 {
		return fmt.Errorf("ingest: payload has no values")
	}
	if p.IntervalMS <= 0 {
		return fmt.Errorf("ingest: interval_ms must be positive")
	}
	for i, row := range p.Values {
		if len(row) != len(p.Sensors) {
			return fmt.Errorf("ingest: row %d has %d values for %d sensors", i, len(row), len(p.Sensors))
		}
	}
	return nil
}

type protected struct {
	Ver string `json:"ver"`
	Alg string `json:"alg"`
	Iat int64  `json:"iat"`
}

type document struct {
	Protected protected `json:"protected"`
	Signature string    `json:"signature"`
	Payload   Payload   `json:"payload"`
}

const zeroSignature = "0000000000000000000000000000000000000000000000000000000000000000"

func mac(data []byte, key string) string {
	h := hmac.New(sha256.New, []byte(key))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// SignJSON encodes and signs a payload as a JSON acquisition document.
func SignJSON(p Payload, hmacKey string, iat int64) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	doc := document{Protected: protected{Ver: "v1", Alg: "HS256", Iat: iat}, Signature: zeroSignature, Payload: p}
	unsigned, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	sig := mac(unsigned, hmacKey)
	return bytes.Replace(unsigned, []byte(zeroSignature), []byte(sig), 1), nil
}

// SignCBOR encodes and signs a payload as a CBOR acquisition document.
func SignCBOR(p Payload, hmacKey string, iat int64) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sensors := make([]any, len(p.Sensors))
	for i, s := range p.Sensors {
		sensors[i] = map[string]any{"name": s.Name, "units": s.Units}
	}
	values := make([]any, len(p.Values))
	for i, row := range p.Values {
		values[i] = append([]float64(nil), row...)
	}
	doc := map[string]any{
		"protected": map[string]any{"ver": "v1", "alg": "HS256", "iat": iat},
		"signature": zeroSignature,
		"payload": map[string]any{
			"device_name": p.DeviceName,
			"device_type": p.DeviceType,
			"interval_ms": p.IntervalMS,
			"sensors":     sensors,
			"values":      values,
		},
	}
	unsigned, err := cbor.Marshal(doc)
	if err != nil {
		return nil, err
	}
	sig := mac(unsigned, hmacKey)
	return bytes.Replace(unsigned, []byte(zeroSignature), []byte(sig), 1), nil
}

// Verify authenticates a JSON or CBOR acquisition document (auto-detected)
// and returns its payload. A wrong key, tampered payload, or malformed
// document returns an error.
func Verify(data []byte, hmacKey string) (Payload, error) {
	var p Payload
	var sig string
	var err error
	if len(data) > 0 && data[0] == '{' {
		p, sig, err = parseJSON(data)
	} else {
		p, sig, err = parseCBOR(data)
	}
	if err != nil {
		return Payload{}, err
	}
	if len(sig) != 64 {
		return Payload{}, fmt.Errorf("ingest: signature has %d chars, want 64", len(sig))
	}
	unsigned := bytes.Replace(data, []byte(sig), []byte(zeroSignature), 1)
	want := mac(unsigned, hmacKey)
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return Payload{}, fmt.Errorf("ingest: signature mismatch")
	}
	if err := p.Validate(); err != nil {
		return Payload{}, err
	}
	return p, nil
}

func parseJSON(data []byte) (Payload, string, error) {
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Payload{}, "", fmt.Errorf("ingest: bad JSON document: %w", err)
	}
	if doc.Protected.Alg != "HS256" {
		return Payload{}, "", fmt.Errorf("ingest: unsupported algorithm %q", doc.Protected.Alg)
	}
	return doc.Payload, doc.Signature, nil
}

func parseCBOR(data []byte) (Payload, string, error) {
	v, err := cbor.Unmarshal(data)
	if err != nil {
		return Payload{}, "", fmt.Errorf("ingest: bad CBOR document: %w", err)
	}
	doc, ok := v.(map[string]any)
	if !ok {
		return Payload{}, "", fmt.Errorf("ingest: CBOR document is not a map")
	}
	prot, _ := doc["protected"].(map[string]any)
	if alg, _ := prot["alg"].(string); alg != "HS256" {
		return Payload{}, "", fmt.Errorf("ingest: unsupported algorithm %v", prot["alg"])
	}
	sig, _ := doc["signature"].(string)
	pl, ok := doc["payload"].(map[string]any)
	if !ok {
		return Payload{}, "", fmt.Errorf("ingest: missing payload")
	}
	var p Payload
	p.DeviceName, _ = pl["device_name"].(string)
	p.DeviceType, _ = pl["device_type"].(string)
	switch iv := pl["interval_ms"].(type) {
	case float64:
		p.IntervalMS = iv
	case uint64:
		p.IntervalMS = float64(iv)
	case int64:
		p.IntervalMS = float64(iv)
	}
	if sensors, ok := pl["sensors"].([]any); ok {
		for _, s := range sensors {
			sm, _ := s.(map[string]any)
			var sensor Sensor
			sensor.Name, _ = sm["name"].(string)
			sensor.Units, _ = sm["units"].(string)
			p.Sensors = append(p.Sensors, sensor)
		}
	}
	if values, ok := pl["values"].([]any); ok {
		for _, r := range values {
			row, ok := r.([]any)
			if !ok {
				return Payload{}, "", fmt.Errorf("ingest: values row is not an array")
			}
			frow := make([]float64, len(row))
			for i, e := range row {
				switch n := e.(type) {
				case float64:
					frow[i] = n
				case uint64:
					frow[i] = float64(n)
				case int64:
					frow[i] = float64(n)
				default:
					return Payload{}, "", fmt.Errorf("ingest: non-numeric value %T", e)
				}
			}
			p.Values = append(p.Values, frow)
		}
	}
	return p, sig, nil
}
