// Package ga is a small real-coded genetic algorithm used by the
// performance-calibration tool (paper Sec. 4.4) to search post-processing
// configurations, plus Pareto-front utilities for presenting FAR/FRR
// trade-offs.
package ga

import (
	"math/rand"
	"sort"
)

// Genome is a vector of genes normalized to [0, 1]; problems map genes to
// their own parameter ranges.
type Genome []float64

// Clone copies a genome.
func (g Genome) Clone() Genome { return append(Genome(nil), g...) }

// Problem defines an optimization task.
type Problem struct {
	// Genes is the genome length.
	Genes int
	// Fitness scores a genome; higher is better. It must be
	// deterministic for reproducible runs.
	Fitness func(Genome) float64
}

// Config controls the GA run.
type Config struct {
	// Population size (default 40).
	Population int
	// Generations to evolve (default 30).
	Generations int
	// MutationRate is the per-gene mutation probability (default 0.15).
	MutationRate float64
	// MutationScale is the Gaussian mutation step (default 0.15).
	MutationScale float64
	// Elite genomes survive unchanged each generation (default 2).
	Elite int
	// Seed makes the run deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Population <= 0 {
		c.Population = 40
	}
	if c.Generations <= 0 {
		c.Generations = 30
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 0.15
	}
	if c.MutationScale <= 0 {
		c.MutationScale = 0.15
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Elite > c.Population/2 {
		c.Elite = c.Population / 2
	}
	return c
}

// Result is the outcome of an Optimize run.
type Result struct {
	// Best is the highest-fitness genome found.
	Best Genome
	// BestFitness is its score.
	BestFitness float64
	// History holds the best fitness per generation.
	History []float64
	// FinalPopulation holds the last generation, fittest first.
	FinalPopulation []Genome
}

// Optimize evolves genomes with tournament selection, uniform crossover
// and Gaussian mutation, clamping genes to [0, 1].
func Optimize(p Problem, cfg Config) Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := make([]Genome, cfg.Population)
	for i := range pop {
		g := make(Genome, p.Genes)
		for j := range g {
			g[j] = rng.Float64()
		}
		pop[i] = g
	}
	fitness := make([]float64, cfg.Population)
	evaluate := func() {
		for i, g := range pop {
			fitness[i] = p.Fitness(g)
		}
	}
	rank := func() []int {
		idx := make([]int, len(pop))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return fitness[idx[a]] > fitness[idx[b]] })
		return idx
	}
	tournament := func() Genome {
		best := rng.Intn(len(pop))
		for k := 0; k < 2; k++ {
			c := rng.Intn(len(pop))
			if fitness[c] > fitness[best] {
				best = c
			}
		}
		return pop[best]
	}

	var res Result
	evaluate()
	for gen := 0; gen < cfg.Generations; gen++ {
		idx := rank()
		res.History = append(res.History, fitness[idx[0]])
		next := make([]Genome, 0, cfg.Population)
		for e := 0; e < cfg.Elite; e++ {
			next = append(next, pop[idx[e]].Clone())
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := make(Genome, p.Genes)
			for j := range child {
				if rng.Float64() < 0.5 {
					child[j] = a[j]
				} else {
					child[j] = b[j]
				}
				if rng.Float64() < cfg.MutationRate {
					child[j] += rng.NormFloat64() * cfg.MutationScale
				}
				if child[j] < 0 {
					child[j] = 0
				}
				if child[j] > 1 {
					child[j] = 1
				}
			}
			next = append(next, child)
		}
		pop = next
		evaluate()
	}
	idx := rank()
	res.Best = pop[idx[0]].Clone()
	res.BestFitness = fitness[idx[0]]
	res.FinalPopulation = make([]Genome, len(pop))
	for i, j := range idx {
		res.FinalPopulation[i] = pop[j].Clone()
	}
	return res
}

// ParetoFront returns the indices of non-dominated points when minimizing
// both objectives (e.g. FAR and FRR), sorted by the first objective.
func ParetoFront(points [][2]float64) []int {
	var front []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q[0] <= p[0] && q[1] <= p[1] && (q[0] < p[0] || q[1] < p[1]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	sort.Slice(front, func(a, b int) bool { return points[front[a]][0] < points[front[b]][0] })
	return front
}
