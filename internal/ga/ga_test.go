package ga

import (
	"math"
	"testing"
)

func TestOptimizeSphere(t *testing.T) {
	// Maximize -(x-0.7)^2 - (y-0.3)^2: optimum at (0.7, 0.3).
	p := Problem{
		Genes: 2,
		Fitness: func(g Genome) float64 {
			return -math.Pow(g[0]-0.7, 2) - math.Pow(g[1]-0.3, 2)
		},
	}
	res := Optimize(p, Config{Population: 40, Generations: 40, Seed: 1})
	if math.Abs(res.Best[0]-0.7) > 0.08 || math.Abs(res.Best[1]-0.3) > 0.08 {
		t.Fatalf("best = %v, want ~(0.7, 0.3)", res.Best)
	}
	if res.BestFitness < -0.01 {
		t.Fatalf("fitness %g", res.BestFitness)
	}
}

func TestHistoryMonotoneWithElitism(t *testing.T) {
	p := Problem{Genes: 3, Fitness: func(g Genome) float64 { return g[0] + g[1] + g[2] }}
	res := Optimize(p, Config{Population: 20, Generations: 25, Seed: 2, Elite: 2})
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1]-1e-12 {
			t.Fatalf("elitist best regressed at gen %d: %g -> %g", i, res.History[i-1], res.History[i])
		}
	}
	if len(res.History) != 25 {
		t.Fatalf("history length %d", len(res.History))
	}
}

func TestGenesStayInBounds(t *testing.T) {
	p := Problem{Genes: 4, Fitness: func(g Genome) float64 { return g[0] }}
	res := Optimize(p, Config{Population: 30, Generations: 20, Seed: 3, MutationScale: 0.8})
	for _, g := range res.FinalPopulation {
		for _, v := range g {
			if v < 0 || v > 1 {
				t.Fatalf("gene %g out of bounds", v)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	p := Problem{Genes: 2, Fitness: func(g Genome) float64 { return -math.Abs(g[0] - g[1]) }}
	a := Optimize(p, Config{Seed: 7})
	b := Optimize(p, Config{Seed: 7})
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("GA not deterministic")
		}
	}
}

func TestFinalPopulationSorted(t *testing.T) {
	p := Problem{Genes: 1, Fitness: func(g Genome) float64 { return g[0] }}
	res := Optimize(p, Config{Population: 10, Generations: 5, Seed: 4})
	for i := 1; i < len(res.FinalPopulation); i++ {
		if res.FinalPopulation[i][0] > res.FinalPopulation[i-1][0]+1e-12 {
			t.Fatal("final population not sorted by fitness")
		}
	}
}

func TestParetoFront(t *testing.T) {
	points := [][2]float64{
		{1, 5}, // front
		{2, 2}, // front
		{5, 1}, // front
		{3, 3}, // dominated by (2,2)
		{2, 6}, // dominated by (1,5)
	}
	front := ParetoFront(points)
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
}

func TestParetoFrontDuplicates(t *testing.T) {
	points := [][2]float64{{1, 1}, {1, 1}, {2, 2}}
	front := ParetoFront(points)
	// Both copies of (1,1) are non-dominated; (2,2) is dominated.
	if len(front) != 2 {
		t.Fatalf("front = %v", front)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Genome{0.5, 0.6}
	c := g.Clone()
	c[0] = 0.9
	if g[0] != 0.5 {
		t.Fatal("clone aliases")
	}
}
