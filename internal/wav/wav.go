// Package wav reads and writes 16-bit PCM WAV files, one of the ingestion
// formats the platform accepts for audio data (paper Sec. 4.1).
package wav

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Audio is decoded PCM audio.
type Audio struct {
	// Rate is the sample rate in Hz.
	Rate int
	// Channels is the channel count (1 = mono).
	Channels int
	// Samples holds normalized samples in [-1, 1], interleaved by channel.
	Samples []float32
}

// Duration returns the length in seconds.
func (a Audio) Duration() float64 {
	if a.Rate == 0 || a.Channels == 0 {
		return 0
	}
	return float64(len(a.Samples)) / float64(a.Channels) / float64(a.Rate)
}

// Encode writes a 16-bit PCM WAV file.
func Encode(w io.Writer, a Audio) error {
	if a.Rate <= 0 || a.Channels <= 0 {
		return fmt.Errorf("wav: invalid rate %d / channels %d", a.Rate, a.Channels)
	}
	dataLen := len(a.Samples) * 2
	var buf bytes.Buffer
	buf.WriteString("RIFF")
	binary.Write(&buf, binary.LittleEndian, uint32(36+dataLen))
	buf.WriteString("WAVE")
	buf.WriteString("fmt ")
	binary.Write(&buf, binary.LittleEndian, uint32(16))
	binary.Write(&buf, binary.LittleEndian, uint16(1)) // PCM
	binary.Write(&buf, binary.LittleEndian, uint16(a.Channels))
	binary.Write(&buf, binary.LittleEndian, uint32(a.Rate))
	binary.Write(&buf, binary.LittleEndian, uint32(a.Rate*a.Channels*2)) // byte rate
	binary.Write(&buf, binary.LittleEndian, uint16(a.Channels*2))        // block align
	binary.Write(&buf, binary.LittleEndian, uint16(16))                  // bits per sample
	buf.WriteString("data")
	binary.Write(&buf, binary.LittleEndian, uint32(dataLen))
	for _, s := range a.Samples {
		v := s
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		binary.Write(&buf, binary.LittleEndian, int16(v*32767))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Decode parses a 16-bit PCM WAV file.
func Decode(r io.Reader) (Audio, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Audio{}, err
	}
	if len(data) < 12 || string(data[:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return Audio{}, fmt.Errorf("wav: not a RIFF/WAVE file")
	}
	var a Audio
	var bitsPerSample int
	pos := 12
	foundFmt, foundData := false, false
	for pos+8 <= len(data) {
		id := string(data[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(data[pos+4 : pos+8]))
		body := pos + 8
		if size < 0 || body+size > len(data) {
			return Audio{}, fmt.Errorf("wav: chunk %q overruns file", id)
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return Audio{}, fmt.Errorf("wav: fmt chunk too small")
			}
			format := binary.LittleEndian.Uint16(data[body:])
			if format != 1 {
				return Audio{}, fmt.Errorf("wav: unsupported format %d (want PCM)", format)
			}
			a.Channels = int(binary.LittleEndian.Uint16(data[body+2:]))
			a.Rate = int(binary.LittleEndian.Uint32(data[body+4:]))
			bitsPerSample = int(binary.LittleEndian.Uint16(data[body+14:]))
			foundFmt = true
		case "data":
			if !foundFmt {
				return Audio{}, fmt.Errorf("wav: data chunk before fmt")
			}
			if bitsPerSample != 16 {
				return Audio{}, fmt.Errorf("wav: unsupported bit depth %d (want 16)", bitsPerSample)
			}
			n := size / 2
			a.Samples = make([]float32, n)
			for i := 0; i < n; i++ {
				s := int16(binary.LittleEndian.Uint16(data[body+i*2:]))
				a.Samples[i] = float32(s) / 32767
			}
			foundData = true
		}
		pos = body + size
		if size%2 == 1 {
			pos++ // chunks are word-aligned
		}
	}
	if !foundFmt || !foundData {
		return Audio{}, fmt.Errorf("wav: missing fmt or data chunk")
	}
	if a.Channels <= 0 || a.Rate <= 0 {
		return Audio{}, fmt.Errorf("wav: invalid header (channels %d, rate %d)", a.Channels, a.Rate)
	}
	return a, nil
}
