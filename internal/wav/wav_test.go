package wav

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripMono(t *testing.T) {
	a := Audio{Rate: 16000, Channels: 1, Samples: make([]float32, 1600)}
	for i := range a.Samples {
		a.Samples[i] = float32(math.Sin(2 * math.Pi * 440 * float64(i) / 16000))
	}
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rate != 16000 || got.Channels != 1 || len(got.Samples) != 1600 {
		t.Fatalf("header: %+v", got)
	}
	for i := range a.Samples {
		if math.Abs(float64(got.Samples[i]-a.Samples[i])) > 1.0/32000 {
			t.Fatalf("sample %d: %g vs %g", i, got.Samples[i], a.Samples[i])
		}
	}
	if math.Abs(got.Duration()-0.1) > 1e-9 {
		t.Errorf("duration %g", got.Duration())
	}
}

func TestRoundTripStereo(t *testing.T) {
	a := Audio{Rate: 8000, Channels: 2, Samples: []float32{0.5, -0.5, 0.25, -0.25}}
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channels != 2 || len(got.Samples) != 4 {
		t.Fatalf("%+v", got)
	}
}

func TestClipping(t *testing.T) {
	a := Audio{Rate: 100, Channels: 1, Samples: []float32{5, -5}}
	var buf bytes.Buffer
	Encode(&buf, a)
	got, _ := Decode(&buf)
	if got.Samples[0] < 0.99 || got.Samples[1] > -0.99 {
		t.Fatalf("clipping failed: %v", got.Samples)
	}
}

func TestEncodeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Audio{Rate: 0, Channels: 1}); err == nil {
		t.Error("accepted zero rate")
	}
	if err := Encode(&buf, Audio{Rate: 100, Channels: 0}); err == nil {
		t.Error("accepted zero channels")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},
		[]byte("not a wav file"),
		[]byte("RIFF1234WAVE"), // no chunks
		[]byte("RIFF1234WAVEdata\x04\x00\x00\x00abcd"), // data before fmt
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted", i)
		}
	}
}

func TestDecodeTruncationProperty(t *testing.T) {
	a := Audio{Rate: 8000, Channels: 1, Samples: make([]float32, 100)}
	var buf bytes.Buffer
	Encode(&buf, a)
	full := buf.Bytes()
	f := func(cut uint16) bool {
		n := int(cut) % len(full)
		_, err := Decode(bytes.NewReader(full[:n]))
		return err != nil // must error, not panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDurationEmpty(t *testing.T) {
	if (Audio{}).Duration() != 0 {
		t.Fatal("empty duration")
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		a := Audio{Rate: 1000 * (1 + rng.Intn(48)), Channels: 1 + rng.Intn(2), Samples: make([]float32, n)}
		// Make length divisible by channels.
		n -= n % a.Channels
		if n == 0 {
			n = a.Channels
		}
		a.Samples = a.Samples[:n]
		for i := range a.Samples {
			a.Samples[i] = float32(rng.Float64()*2 - 1)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, a); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.Rate != a.Rate || got.Channels != a.Channels || len(got.Samples) != len(a.Samples) {
			return false
		}
		for i := range a.Samples {
			if math.Abs(float64(got.Samples[i]-a.Samples[i])) > 1.0/16000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
