package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgepulse/internal/data"
)

// TestReplayWithoutSnapshot reopens a store whose journal was never
// compacted (crash-style: no Close), exercising the replay path for
// every operation type.
func TestReplayWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("p%d", i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Remove("p1"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetLabel("p2", "relit"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetCategories(map[string]data.Category{"p3": data.Testing, "p4": data.Testing}); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, st)
	// No Close: the journal still holds all 8 operations.

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.journalRecs != 8 {
		t.Fatalf("replayed %d journal records, want 8", st2.journalRecs)
	}
	assertState(t, st2, want)
	hs, _ := st2.Headers()
	byID := map[string]data.Header{}
	for _, h := range hs {
		byID[h.ID] = h
	}
	if _, gone := byID["p1"]; gone {
		t.Error("removed sample reappeared")
	}
	if byID["p2"].Label != "relit" {
		t.Error("relabel lost in replay")
	}
	if byID["p3"].Category != data.Testing || byID["p4"].Category != data.Testing {
		t.Error("category batch lost in replay")
	}
}

// TestOpenRepairsTornJournalHeader: a crash during journal creation
// can leave fewer than 8 header bytes; open must rewrite it and carry
// on empty.
func TestOpenRepairsTornJournalHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte("EPLG\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 {
		t.Fatal("phantom samples")
	}
	if err := st.Append(mkSample("fresh", 4)); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsForeignActiveSegment: an active segment whose magic
// belongs to another format refuses to open.
func TestOpenRejectsForeignActiveSegment(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mkSample("s", 4)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	seg := filepath.Join(dir, segmentDir, segmentName(1))
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	copy(blob, "XXXX")
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v, want bad magic", err)
	}
}

// TestNoSyncStillRecovers: the NoSync benchmark mode changes
// durability-on-power-loss, not the on-disk format — recovery still
// works on a cleanly flushed file.
func TestNoSyncStillRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("n%d", i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	want := captureState(t, st)
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertState(t, st2, want)
}

// TestSpoolCheckpointClampedToRecoveredLog: if the log lost a torn
// tail but the checkpoint (written first) points past it, the
// checkpoint clamps to the recovered end instead of inventing pending
// work.
func TestSpoolCheckpointClamped(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Add([]byte("doc")); err != nil {
		t.Fatal(err)
	}
	if err := sp.Ack(1); err != nil {
		t.Fatal(err)
	}
	sp.Close()
	// Fake a checkpoint pointing far past the (now reset) log.
	if err := os.WriteFile(filepath.Join(dir, spoolCkptName), ckptBlob(1<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	sp2, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if got := sp2.Pending(); len(got) != 0 {
		t.Fatalf("phantom pending docs: %q", got)
	}
}

// TestLoadSignalDetectsIndexCorruption: a journal record whose
// location points at another sample's bytes is caught by the id check
// on read.
func TestLoadSignalDetectsIndexCorruption(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft segment 1 with a record for sample "real".
	if err := os.MkdirAll(filepath.Join(dir, segmentDir), 0o755); err != nil {
		t.Fatal(err)
	}
	payload, err := encodeSample(mkSample("real", 8))
	if err != nil {
		t.Fatal(err)
	}
	segBytes := append(logMagic(), appendFrame(nil, payload)...)
	if err := os.WriteFile(filepath.Join(dir, segmentDir, segmentName(1)), segBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	// Journal claims sample "fake" lives at real's location.
	writeJournalRecord(t, dir, map[string]any{"op": opAdd, "h": headerMap(
		data.Header{ID: "fake", Label: "l"},
		location{Segment: 1, Offset: logMagicLen, Length: int64(len(payload))},
	)})
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.LoadSignal("fake"); err == nil || !strings.Contains(err.Error(), "index corruption") {
		t.Fatalf("err = %v, want index corruption", err)
	}
}

// TestAppendAfterReplayKeepsJournalValid is the regression test for a
// real bug: after a recovery scan the journal file handle's offset sat
// at 0, so the next append clobbered the log header. Mutating a
// reopened (unsnapshotted) store must survive a further reopen.
func TestAppendAfterReplayKeepsJournalValid(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mkSample("g0", 8)); err != nil {
		t.Fatal(err)
	}
	// Crash-style reopen (journal unsnapshotted), then more appends.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(mkSample("g1", 8)); err != nil {
		t.Fatal(err)
	}
	if err := st2.SetLabel("g0", "renamed"); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, st2)
	// Third open replays header + 3 ops; then once more after a clean
	// Close (snapshot path).
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertState(t, st3, want)
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}
	st4, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st4.Close()
	assertState(t, st4, want)
}
