package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
)

// benchSample builds one ~4 KB sample (1000 float32 frames).
func benchSample(i int) *data.Sample {
	vals := make([]float32, 1000)
	for j := range vals {
		vals[j] = float32(i*1000+j) * 0.001
	}
	return &data.Sample{
		ID: fmt.Sprintf("bench-%06d", i), Name: "b", Label: "l",
		Category: data.Training,
		Signal:   dsp.Signal{Data: vals, Rate: 100, Axes: 1},
	}
}

// jsonBlobSample mirrors the v1 dataset.json schema, used as the
// full-rewrite baseline the segmented store replaces.
type jsonBlobSample struct {
	Name     string            `json:"name"`
	Label    string            `json:"label"`
	Category data.Category     `json:"category"`
	Metadata map[string]string `json:"metadata,omitempty"`
	Rate     int               `json:"rate,omitempty"`
	Axes     int               `json:"axes"`
	Values   []float32         `json:"values"`
}

// BenchmarkPersistSample measures the persistence cost of ONE uploaded
// sample at different resident dataset sizes. The store path appends a
// segment record plus a journal entry — O(sample) — while the
// json-rewrite baseline re-serializes the whole dataset the way the v1
// dataset.json blob did — O(dataset). Syncing is disabled on the store
// so both paths measure pure write-path work.
func BenchmarkPersistSample(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("store/resident=%d", n), func(b *testing.B) {
			// Keep the resident size actually pinned at n: timed appends
			// grow the store, and the periodic manifest snapshot is
			// O(resident), so letting b.N appends accumulate would make
			// ns/op a function of the iteration count (and therefore of
			// machine speed), not of the advertised dataset size. Rebuild
			// a fresh n-sample store off-timer whenever appends double it.
			dir := b.TempDir()
			seed := func() *Store {
				if err := os.RemoveAll(dir); err != nil {
					b.Fatal(err)
				}
				st, err := Open(dir, Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if err := st.Append(benchSample(i)); err != nil {
						b.Fatal(err)
					}
				}
				return st
			}
			st := seed()
			defer func() { st.Close() }()
			appended := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if appended == n {
					b.StopTimer()
					st.Close()
					st = seed()
					appended = 0
					b.StartTimer()
				}
				if err := st.Append(benchSample(n + appended)); err != nil {
					b.Fatal(err)
				}
				appended++
			}
		})
		b.Run(fmt.Sprintf("json-rewrite/resident=%d", n), func(b *testing.B) {
			blob := make([]jsonBlobSample, n)
			for i := range blob {
				s := benchSample(i)
				blob[i] = jsonBlobSample{
					Name: s.Name, Label: s.Label, Category: s.Category,
					Rate: s.Signal.Rate, Axes: s.Signal.Axes, Values: s.Signal.Data,
				}
			}
			path := filepath.Join(b.TempDir(), "dataset.json")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One upload under the v1 scheme: marshal and rewrite
				// every resident sample.
				out, err := json.Marshal(blob)
				if err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(path, out, 0o644); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadSignal measures a cold single-sample read (segment seek
// + CRC check + CBOR decode), the unit of work behind lazy Batches.
func BenchmarkLoadSignal(b *testing.B) {
	st, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const n = 256
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		s := benchSample(i)
		ids[i] = s.ID
		if err := st.Append(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.LoadSignal(ids[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}
