package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"edgepulse/internal/data"
)

// crashState captures everything a crash must not lose.
type crashState struct {
	version uint64
	content string // data.Dataset content hash
	headers []data.Header
}

func captureState(t *testing.T, st *Store) crashState {
	t.Helper()
	ds, err := data.Open(st, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := st.Headers()
	return crashState{version: st.Committed(), content: ds.Version(), headers: headersComparable(hs)}
}

func assertState(t *testing.T, st *Store, want crashState) {
	t.Helper()
	got := captureState(t, st)
	if got.version != want.version {
		t.Errorf("committed version = %d, want %d", got.version, want.version)
	}
	if got.content != want.content {
		t.Errorf("dataset content hash = %s, want %s", got.content, want.content)
	}
	if !reflect.DeepEqual(got.headers, want.headers) {
		t.Errorf("headers diverged:\n%+v\nvs\n%+v", got.headers, want.headers)
	}
	for _, h := range want.headers {
		if _, err := st.LoadSignal(h.ID); err != nil {
			t.Errorf("committed sample %s unreadable after recovery: %v", h.ID, err)
		}
	}
}

// fileSize stats a file.
func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// truncateTo simulates a crash that tore a file at the given size.
func truncateTo(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverTornAppend simulates a crash in the middle of persisting
// one upload: both the segment record and its journal entry are torn.
// Recovery must drop exactly that record and restore the pre-crash
// committed state — version counter, content hash and every committed
// signal byte.
func TestRecoverTornAppend(t *testing.T) {
	dir := t.TempDir()
	segPath := filepath.Join(dir, segmentDir, segmentName(1))
	jPath := filepath.Join(dir, journalName)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("t%02d", i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	want := captureState(t, st)
	segCommitted := fileSize(t, segPath)
	jCommitted := fileSize(t, jPath)

	// One more append lands on disk...
	if err := st.Append(mkSample("torn", 64)); err != nil {
		t.Fatal(err)
	}
	// ...then the "crash": no Close (no snapshot), and both tails torn
	// mid-frame.
	truncateTo(t, segPath, segCommitted+11)
	truncateTo(t, jPath, jCommitted+5)

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertState(t, st2, want)
	if got := fileSize(t, segPath); got != segCommitted {
		t.Errorf("segment not truncated to committed end: %d != %d", got, segCommitted)
	}
	// The store keeps working after recovery: the torn sample can be
	// re-appended and read back.
	if err := st2.Append(mkSample("torn", 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.LoadSignal("torn"); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverCorruptJournalTail flips a byte inside the journal's last
// record: the CRC rejects it and recovery rolls back exactly that
// operation.
func TestRecoverCorruptJournalTail(t *testing.T) {
	dir := t.TempDir()
	jPath := filepath.Join(dir, journalName)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("j%02d", i), 32)); err != nil {
			t.Fatal(err)
		}
	}
	want := captureState(t, st)
	jCommitted := fileSize(t, jPath)
	if err := st.SetLabel("j01", "flipped"); err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte inside the relabel record's payload.
	f, err := os.OpenFile(jPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], jCommitted+frameHeaderLen+2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], jCommitted+frameHeaderLen+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertState(t, st2, want)
	hs, _ := st2.Headers()
	for _, h := range hs {
		if h.Label == "flipped" {
			t.Error("corrupt relabel survived recovery")
		}
	}
}

// TestRecoverManifestMidWrite simulates dying inside a manifest
// snapshot: the atomic-write protocol leaves the old manifest.json
// intact plus an orphan temp file, which recovery must ignore.
func TestRecoverManifestMidWrite(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("m%02d", i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	want := captureState(t, st)
	// Crash mid-snapshot: a half-written temp manifest next to the
	// durable one.
	tmp := filepath.Join(dir, manifestName+".tmp-crash")
	if err := os.WriteFile(tmp, []byte(`{"format":1,"version":9999,"samples":[{"id":"gar`), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertState(t, st2, want)
}

// TestCorruptManifestFailsLoudly: a damaged manifest.json (not a torn
// temp file — the durable snapshot itself) must refuse to open rather
// than silently drop data.
func TestCorruptManifestFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("x%02d", i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("opened a store with a corrupt manifest snapshot")
	}
}

// TestRecoverTornSegmentCreation: a crash can create a segment file
// whose 8-byte header itself is torn.
func TestRecoverTornSegmentCreation(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mkSample("h0", 8)); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, st)
	// Crash while rolling to segment 2: 3 bytes of header.
	if err := os.WriteFile(filepath.Join(dir, segmentDir, segmentName(2)), []byte("EPL"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertState(t, st2, want)
	// New appends land in the repaired segment 2.
	if err := st2.Append(mkSample("h1", 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.LoadSignal("h1"); err != nil {
		t.Fatal(err)
	}
}

// TestSpoolRecoversTornTail: a daemon crash mid-append loses only the
// torn document.
func TestSpoolRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Add([]byte("complete-doc")); err != nil {
		t.Fatal(err)
	}
	sp.Close()
	logPath := filepath.Join(dir, spoolLogName)
	committed := fileSize(t, logPath)
	// Torn frame at the tail.
	f, _ := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xAB, 0xCD, 0xEF})
	f.Close()

	sp2, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if got := sp2.Pending(); len(got) != 1 || string(got[0]) != "complete-doc" {
		t.Fatalf("pending after torn tail: %q", got)
	}
	if fileSize(t, logPath) != committed {
		t.Error("torn tail not truncated")
	}
}

// TestRecoverSnapshotWithoutTruncation covers a crash between the
// manifest rename and the journal truncation inside a snapshot: the
// surviving journal still holds every operation the fresh snapshot
// already contains. Replay must skip those (version-stamped) ops
// instead of failing on duplicate adds / missing removes.
func TestRecoverSnapshotWithoutTruncation(t *testing.T) {
	dir := t.TempDir()
	jPath := filepath.Join(dir, journalName)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("sn%d", i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Remove("sn1"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetLabel("sn2", "kept"); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, st)
	// Preserve the journal as it was before the snapshot truncates it.
	journalBytes, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// "Crash" between rename and truncation: restore the old journal
	// next to the new manifest.
	if err := os.WriteFile(jPath, journalBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("store bricked by snapshot crash: %v", err)
	}
	defer st2.Close()
	assertState(t, st2, want)
	// And it still accepts new committed work afterwards.
	if err := st2.Append(mkSample("after", 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.LoadSignal("after"); err != nil {
		t.Fatal(err)
	}
}
