package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Spool is a crash-safe upload spool: a device daemon appends each
// acquired document before attempting the network upload, advances a
// checkpoint after the server acknowledges it, and on restart replays
// exactly the documents that were acquired but never acknowledged. A
// crash mid-append loses only the torn record (dropped by framed-log
// recovery); a crash between upload and checkpoint re-uploads one
// document, which the server's content-addressed dedup absorbs.
type Spool struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	end  int64 // committed end of the log
	recs []spoolRec
	ack  int64 // checkpoint: records ending at or before this offset are uploaded
}

// spoolRec is one spooled document and where its frame ends.
type spoolRec struct {
	doc []byte
	end int64
}

// Spool file names.
const (
	spoolLogName  = "spool.log"
	spoolCkptName = "spool.ckpt"
)

// spoolCkpt is the JSON schema of the checkpoint file.
type spoolCkpt struct {
	// Ack is the log offset up to which records are acknowledged.
	Ack int64 `json:"ack"`
}

// OpenSpool opens (creating if needed) a spool in dir, recovering the
// committed log prefix and the last durable checkpoint.
func OpenSpool(dir string) (*Spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Spool{dir: dir}
	f, end, err := openLog(filepath.Join(dir, spoolLogName), func(payload []byte, off int64) error {
		s.recs = append(s.recs, spoolRec{
			doc: append([]byte(nil), payload...),
			end: off + frameSize(len(payload)),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.f, s.end = f, end
	if blob, err := os.ReadFile(filepath.Join(dir, spoolCkptName)); err == nil {
		var c spoolCkpt
		if json.Unmarshal(blob, &c) == nil && c.Ack > 0 {
			s.ack = c.Ack
		}
	}
	if s.ack > s.end {
		// Checkpoint ahead of a recovered (truncated) log: every
		// surviving record is acknowledged.
		s.ack = s.end
	}
	return s, nil
}

// Add durably appends one document to the spool.
func (s *Spool) Add(doc []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: spool closed")
	}
	frame := appendFrame(nil, doc)
	if _, err := s.f.WriteAt(frame, s.end); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.end += int64(len(frame))
	s.recs = append(s.recs, spoolRec{doc: append([]byte(nil), doc...), end: s.end})
	return nil
}

// Pending returns the documents appended but not yet acknowledged, in
// order.
func (s *Spool) Pending() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][]byte
	for _, r := range s.recs {
		if r.end > s.ack {
			out = append(out, r.doc)
		}
	}
	return out
}

// Ack durably acknowledges the next n pending documents (after their
// upload succeeded). When the whole spool is acknowledged the log is
// truncated so it never grows without bound.
func (s *Spool) Ack(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.recs {
		if n == 0 {
			break
		}
		if r.end > s.ack {
			s.ack = r.end
			n--
		}
	}
	if s.ack >= s.end && s.end > logMagicLen {
		// Fully drained: reset the log and checkpoint together.
		if err := s.f.Truncate(logMagicLen); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
		s.end = logMagicLen
		s.ack = 0
		s.recs = nil
		return AtomicWriteFile(filepath.Join(s.dir, spoolCkptName), ckptBlob(0))
	}
	return AtomicWriteFile(filepath.Join(s.dir, spoolCkptName), ckptBlob(s.ack))
}

// ckptBlob renders a checkpoint file.
func ckptBlob(ack int64) []byte {
	blob, _ := json.Marshal(spoolCkpt{Ack: ack})
	return append(blob, '\n')
}

// Close releases the spool's file handle.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
