package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// renderManifest serializes a manifest snapshot as deterministic JSON.
func renderManifest(m manifest) ([]byte, error) {
	blob, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// parseManifest strictly decodes manifest.json, rejecting unknown
// fields and format versions so schema drift fails loudly.
func parseManifest(blob []byte) (manifest, error) {
	var m manifest
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return manifest{}, fmt.Errorf("corrupt manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return manifest{}, fmt.Errorf("unsupported manifest format %d (want %d)", m.Format, manifestFormat)
	}
	return m, nil
}

// timeFromNS converts a unix-nanosecond stamp, mapping 0 to the zero
// time.
func timeFromNS(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
