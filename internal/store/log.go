package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// Framed-record log format, shared by segment files, the manifest
// journal and the upload spool. Byte-level spec in docs/STORAGE.md.
//
//	file   := magic record*
//	magic  := 8 bytes: "EPLG" + u16be(format) + 2 reserved zero bytes
//	record := u32le(len(payload)) u32le(crc32c(payload)) payload
//
// A record is committed iff its frame is fully present and the CRC
// matches. Recovery scans from the header and truncates the file at the
// first torn or corrupt frame — everything before it is kept,
// everything after is discarded.

// logFormat is the current framed-log format version.
const logFormat = 1

// logMagicLen is the size of the fixed file header.
const logMagicLen = 8

// frameHeaderLen is the per-record frame overhead (length + CRC).
const frameHeaderLen = 8

// maxRecordLen bounds a single record payload (1 GiB): a length word
// beyond it is treated as corruption, not an allocation request.
const maxRecordLen = 1 << 30

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// most platforms).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// logMagic renders the 8-byte file header.
func logMagic() []byte {
	m := make([]byte, logMagicLen)
	copy(m, "EPLG")
	binary.BigEndian.PutUint16(m[4:6], logFormat)
	return m
}

// checkMagic validates a file header.
func checkMagic(m []byte) error {
	if len(m) < logMagicLen || string(m[:4]) != "EPLG" {
		return fmt.Errorf("store: not a framed log (bad magic)")
	}
	if f := binary.BigEndian.Uint16(m[4:6]); f != logFormat {
		return fmt.Errorf("store: unsupported log format %d (want %d)", f, logFormat)
	}
	return nil
}

// appendFrame encodes one record frame into buf (reusing its storage)
// and returns the framed bytes.
func appendFrame(buf []byte, payload []byte) []byte {
	buf = buf[:0]
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// frameSize is the on-disk size of a record with the given payload.
func frameSize(payloadLen int) int64 { return int64(frameHeaderLen + payloadLen) }

// readFrame reads and verifies the record at off. It returns the
// payload and the offset just past the frame.
func readFrame(r io.ReaderAt, off, size int64) ([]byte, int64, error) {
	var hdr [frameHeaderLen]byte
	if off+frameHeaderLen > size {
		return nil, off, io.ErrUnexpectedEOF
	}
	if _, err := r.ReadAt(hdr[:], off); err != nil {
		return nil, off, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordLen || off+frameSize(int(n)) > size {
		return nil, off, io.ErrUnexpectedEOF
	}
	payload := make([]byte, n)
	if _, err := r.ReadAt(payload, off+frameHeaderLen); err != nil {
		return nil, off, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, off, fmt.Errorf("store: record at offset %d: CRC mismatch", off)
	}
	return payload, off + frameSize(int(n)), nil
}

// scanLog walks every committed record of an open framed log, calling
// fn(payload, off) for each. It returns the committed end offset: the
// first torn or corrupt frame (and everything after it) is excluded.
func scanLog(f *os.File, fn func(payload []byte, off int64) error) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	magic := make([]byte, logMagicLen)
	if size < logMagicLen {
		// Torn file header (crash during creation): treat as empty.
		return 0, nil
	}
	if _, err := f.ReadAt(magic, 0); err != nil {
		return 0, err
	}
	if err := checkMagic(magic); err != nil {
		return 0, err
	}
	off := int64(logMagicLen)
	for off < size {
		payload, next, err := readFrame(f, off, size)
		if err != nil {
			// Torn tail: recovery keeps the committed prefix.
			return off, nil
		}
		if fn != nil {
			if err := fn(payload, off); err != nil {
				return off, err
			}
		}
		off = next
	}
	return off, nil
}

// openLog opens (creating if needed) a framed log for appending,
// recovers its committed prefix via scanLog, truncates any torn tail,
// and returns the file positioned at the committed end.
func openLog(path string, fn func(payload []byte, off int64) error) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(logMagic()); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, 0, err
		}
		return f, logMagicLen, nil
	}
	end, err := scanLog(f, fn)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if end < logMagicLen {
		// The header itself was torn; rewrite it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, err
		}
		if _, err := f.WriteAt(logMagic(), 0); err != nil {
			f.Close()
			return nil, 0, err
		}
		end = logMagicLen
	} else if end < st.Size() {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, end, nil
}

// syncDir fsyncs a directory so a just-created or renamed file's
// directory entry is durable. Filesystems that simply do not support
// directory fsync are tolerated; real I/O errors propagate.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
			errors.Is(err, syscall.EBADF) || os.IsPermission(err) {
			return nil
		}
		return err
	}
	return nil
}

// AtomicWriteFile durably replaces path with data: write to a temp file
// in the same directory, fsync, rename over the target, fsync the
// directory. Readers see either the old or the new complete content.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}
