package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
)

// mkSample builds a deterministic sample; the ID is assigned the way
// data.Dataset.Add would (content hash), but for store-level tests any
// unique string works.
func mkSample(id string, n int) *data.Sample {
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i) * 0.5
	}
	return &data.Sample{
		ID: id, Name: "s-" + id, Label: "l-" + id, Category: data.Training,
		Signal:   dsp.Signal{Data: vals, Rate: 100, Axes: 1},
		Metadata: map[string]string{"device_name": "dev-" + id},
		AddedAt:  time.Unix(1700000000, 12345),
	}
}

func openT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestAppendLoadRoundTrip(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	want := mkSample("a1", 32)
	if err := st.Append(want); err != nil {
		t.Fatal(err)
	}
	sig, err := st.LoadSignal("a1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sig, want.Signal) {
		t.Fatalf("signal round trip: got %+v want %+v", sig, want.Signal)
	}
	hs, err := st.Headers()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || hs[0].ID != "a1" || hs[0].Label != "l-a1" ||
		hs[0].Metadata["device_name"] != "dev-a1" || hs[0].Shape.Frames != 32 {
		t.Fatalf("headers: %+v", hs)
	}
	if !hs[0].AddedAt.Equal(want.AddedAt) {
		t.Fatalf("AddedAt %v != %v", hs[0].AddedAt, want.AddedAt)
	}
	if st.Committed() != 1 {
		t.Fatalf("version = %d, want 1", st.Committed())
	}
	if err := st.Append(mkSample("a1", 32)); err == nil {
		t.Fatal("duplicate append accepted")
	}
}

func TestReopenPreservesStateAndOrder(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("s%02d", i), 16+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Remove("s03"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetLabel("s05", "relabeled"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetCategories(map[string]data.Category{"s07": data.Testing}); err != nil {
		t.Fatal(err)
	}
	v := st.Committed()
	before, _ := st.Headers()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openT(t, dir, Options{})
	after, _ := st2.Headers()
	if !reflect.DeepEqual(headersComparable(before), headersComparable(after)) {
		t.Fatalf("headers diverged across reopen:\n%+v\nvs\n%+v", before, after)
	}
	if st2.Committed() != v {
		t.Fatalf("version %d != %d across reopen", st2.Committed(), v)
	}
	sig, err := st2.LoadSignal("s10")
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Data) != 26 {
		t.Fatalf("signal length %d", len(sig.Data))
	}
}

// headersComparable strips nothing today but pins the comparison to
// values (AddedAt compared via UnixNano by DeepEqual on time.Time can
// differ in monotonic clock readings; stored times have none).
func headersComparable(hs []data.Header) []data.Header {
	out := make([]data.Header, len(hs))
	for i, h := range hs {
		h.AddedAt = h.AddedAt.Round(0).UTC()
		out[i] = h
	}
	return out
}

func TestSegmentRollAndMultiSegmentReads(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a roll every couple of samples.
	st := openT(t, dir, Options{SegmentBytes: 2048})
	for i := 0; i < 12; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("r%02d", i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	segs := st.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segments, got %v", segs)
	}
	for i := 0; i < 12; i++ {
		if _, err := st.LoadSignal(fmt.Sprintf("r%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen reads across all segments too.
	st.Close()
	st2 := openT(t, dir, Options{SegmentBytes: 2048})
	for i := 0; i < 12; i++ {
		if _, err := st2.LoadSignal(fmt.Sprintf("r%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{SnapshotEvery: 5})
	for i := 0; i < 12; i++ {
		if err := st.Append(mkSample(fmt.Sprintf("c%02d", i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	// 12 ops with SnapshotEvery=5: at least two compactions happened,
	// so the journal holds < 5 records and the manifest exists.
	if st.journalRecs >= 5 {
		t.Fatalf("journal not compacted: %d records", st.journalRecs)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal("manifest.json missing after compaction")
	}
	v := st.Committed()
	st.Close()
	st2 := openT(t, dir, Options{})
	if st2.Committed() != v || st2.Len() != 12 {
		t.Fatalf("post-compaction reopen: version %d len %d", st2.Committed(), st2.Len())
	}
}

func TestLazyDatasetOverStore(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	ds, err := data.Open(st, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Lazy() {
		t.Fatal("dataset not lazy")
	}
	id, err := ds.Add(&data.Sample{
		Name: "w", Label: "yes",
		Signal: dsp.Signal{Data: []float32{1, 2, 3, 4}, Rate: 100, Axes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ver := ds.Version()

	// A second lazy dataset over a fresh store handle sees the same
	// content and content-version.
	st.Close()
	st2 := openT(t, dir, Options{})
	ds2, err := data.Open(st2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Version() != ver {
		t.Fatalf("version %s != %s across reopen", ds2.Version(), ver)
	}
	s, err := ds2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "yes" || len(s.Signal.Data) != 4 || s.Signal.Data[2] != 3 {
		t.Fatalf("sample: %+v", s)
	}
	// Batches streams the sample back out.
	it := ds2.Batches("", 10)
	batch, ok := it.Next()
	if !ok || len(batch) != 1 || batch[0].ID != id {
		t.Fatalf("batch: %v %v", batch, ok)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator did not terminate")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestErrorsOnUnknownIDs(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	if _, err := st.LoadSignal("nope"); err == nil {
		t.Error("LoadSignal on unknown id")
	}
	if err := st.Remove("nope"); err == nil {
		t.Error("Remove on unknown id")
	}
	if err := st.SetLabel("nope", "x"); err == nil {
		t.Error("SetLabel on unknown id")
	}
	if err := st.SetCategories(map[string]data.Category{"nope": data.Testing}); err == nil {
		t.Error("SetCategories on unknown id")
	}
	if err := st.SetCategories(nil); err != nil {
		t.Error("empty SetCategories should be a no-op")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	st.Close()
	if err := st.Append(mkSample("x", 4)); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := st.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestSpoolRoundTripAndAck(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sp.Add([]byte(fmt.Sprintf("doc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := sp.Pending(); len(got) != 3 || string(got[0]) != "doc-0" {
		t.Fatalf("pending: %q", got)
	}
	if err := sp.Ack(2); err != nil {
		t.Fatal(err)
	}
	if got := sp.Pending(); len(got) != 1 || string(got[0]) != "doc-2" {
		t.Fatalf("pending after ack: %q", got)
	}
	sp.Close()

	// Reopen: the unacknowledged document survives.
	sp2, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if got := sp2.Pending(); len(got) != 1 || string(got[0]) != "doc-2" {
		t.Fatalf("pending after reopen: %q", got)
	}
	// Fully drained: the log resets.
	if err := sp2.Ack(1); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, spoolLogName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != logMagicLen {
		t.Fatalf("drained spool log is %d bytes, want %d", st.Size(), logMagicLen)
	}
	if got := sp2.Pending(); len(got) != 0 {
		t.Fatalf("pending after drain: %q", got)
	}
}
