package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgepulse/internal/cbor"
	"edgepulse/internal/data"
)

func TestCodecSampleRoundTripEmptyMeta(t *testing.T) {
	s := mkSample("c0", 4)
	s.Metadata = nil
	payload, err := encodeSample(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeSample(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != s.ID || back.Metadata != nil || back.Signal.Rate != 100 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestDecodeSampleErrors(t *testing.T) {
	if _, err := decodeSample([]byte{0xFF, 0xFF}); err == nil {
		t.Error("decoded garbage CBOR")
	}
	// Valid CBOR, wrong shape (array, not map).
	arr, _ := cbor.Marshal([]any{int64(1)})
	if _, err := decodeSample(arr); err == nil {
		t.Error("decoded non-map payload")
	}
	// Map with a data field that is not a float32 array.
	bad, _ := cbor.Marshal(map[string]any{"id": "x", "data": []byte{1, 2, 3}})
	if _, err := decodeSample(bad); err == nil {
		t.Error("decoded misaligned signal payload")
	}
}

func TestParseHeaderMapErrors(t *testing.T) {
	if _, err := parseHeaderMap(map[string]any{"id": ""}); err == nil {
		t.Error("accepted header without id")
	}
	if _, err := parseHeaderMap(map[string]any{
		"id": "x", "seg": int64(0), "off": int64(8), "len": int64(1),
	}); err == nil {
		t.Error("accepted invalid segment index")
	}
}

func TestAsIntShapes(t *testing.T) {
	for _, tc := range []struct {
		in   any
		want int64
	}{{int64(-3), -3}, {uint64(7), 7}, {float64(2), 2}, {"nope", 0}} {
		if got := asInt(tc.in); got != tc.want {
			t.Errorf("asInt(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTimeFromNS(t *testing.T) {
	if !timeFromNS(0).IsZero() {
		t.Error("0 should map to the zero time")
	}
	if timeFromNS(12345).UnixNano() != 12345 {
		t.Error("nanosecond round trip")
	}
}

// writeJournalRecord frames one CBOR op directly into a journal file,
// bypassing the store — for poisoning tests.
func writeJournalRecord(t *testing.T, dir string, op map[string]any) {
	t.Helper()
	payload, err := cbor.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, _ := f.Stat()
	off := st.Size()
	if off == 0 {
		if _, err := f.Write(logMagic()); err != nil {
			t.Fatal(err)
		}
		off = logMagicLen
	}
	if _, err := f.WriteAt(appendFrame(nil, payload), off); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsPoisonJournal(t *testing.T) {
	cases := []struct {
		name string
		op   map[string]any
		want string
	}{
		{"unknown-op", map[string]any{"op": "explode"}, "unknown journal op"},
		{"add-no-header", map[string]any{"op": opAdd}, "add record without header"},
		{"remove-unknown", map[string]any{"op": opRemove, "id": "ghost"}, "removes unknown"},
		{"label-unknown", map[string]any{"op": opLabel, "id": "ghost", "label": "x"}, "relabels unknown"},
		{"cats-no-map", map[string]any{"op": opCats}, "cats record without map"},
		{"add-bad-loc", map[string]any{"op": opAdd, "h": map[string]any{
			"id": "x", "seg": int64(0), "off": int64(8), "len": int64(4),
		}}, "invalid location"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeJournalRecord(t, dir, tc.op)
			_, err := Open(dir, Options{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestOpenRejectsDuplicateAdd(t *testing.T) {
	dir := t.TempDir()
	h := headerMap(data.Header{ID: "dup", Label: "l", AddedAt: time.Unix(1, 0)},
		location{Segment: 1, Offset: 8, Length: 4})
	writeJournalRecord(t, dir, map[string]any{"op": opAdd, "h": h})
	writeJournalRecord(t, dir, map[string]any{"op": opAdd, "h": h})
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want duplicate rejection", err)
	}
}

func TestScanRejectsForeignMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte("NOTALOG0plus-stuff"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v, want bad magic", err)
	}
	// Right magic, unsupported format version.
	m := logMagic()
	m[5] = 99
	if err := os.WriteFile(filepath.Join(dir, journalName), m, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "unsupported log format") {
		t.Fatalf("err = %v, want unsupported format", err)
	}
}

func TestLoadSignalDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := mkSample("rot", 64)
	if err := st.Append(s); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Flip one byte inside the committed record's payload (not the
	// tail — a fully committed, manifest-referenced record).
	segPath := filepath.Join(dir, segmentDir, segmentName(1))
	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], logMagicLen+frameHeaderLen+20); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x55
	if _, err := f.WriteAt(b[:], logMagicLen+frameHeaderLen+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.LoadSignal("rot"); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("bit rot not detected: %v", err)
	}
}

func TestDirAndExplicitSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	if st.Dir() != dir {
		t.Errorf("Dir() = %q", st.Dir())
	}
	if err := st.Append(mkSample("s0", 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st.journalRecs != 0 {
		t.Error("journal not truncated after explicit snapshot")
	}
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	m, err := parseManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || len(m.Samples) != 1 {
		t.Fatalf("manifest: %+v", m)
	}
}

func TestSpoolAddAfterClose(t *testing.T) {
	sp, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp.Close()
	if err := sp.Add([]byte("x")); err == nil {
		t.Error("Add after Close accepted")
	}
	if err := sp.Close(); err != nil {
		t.Error("double close should be nil")
	}
}

func TestManifestUnknownFieldRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"format":1,"version":0,"segment":1,"samples":[],"surprise":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
		t.Fatalf("err = %v, want unknown-field rejection", err)
	}
	// Unsupported format version is also rejected.
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"format":99,"version":0,"segment":1,"samples":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "unsupported manifest format") {
		t.Fatalf("err = %v, want format rejection", err)
	}
}
