package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"edgepulse/internal/data"
	"edgepulse/internal/faults"
)

// White-box fault injection: sever the store's file handles or
// directories out from under it and check every write path fails
// loudly instead of acknowledging unpersisted data.

func TestWritesFailWhenJournalSevered(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	if err := st.Append(mkSample("ok", 8)); err != nil {
		t.Fatal(err)
	}
	// Sever the journal: every subsequent mutation must error.
	st.journal.Close()
	if err := st.Append(mkSample("lost", 8)); err == nil {
		t.Error("Append acknowledged with a dead journal")
	}
	if err := st.Remove("ok"); err == nil {
		t.Error("Remove acknowledged with a dead journal")
	}
	if err := st.SetLabel("ok", "x"); err == nil {
		t.Error("SetLabel acknowledged with a dead journal")
	}
	if err := st.SetCategories(map[string]data.Category{"ok": data.Testing}); err == nil {
		t.Error("SetCategories acknowledged with a dead journal")
	}
	// In-memory state must not have applied the failed mutations.
	hs, _ := st.Headers()
	if len(hs) != 1 || hs[0].ID != "ok" || hs[0].Label != "l-ok" || hs[0].Category != data.Training {
		t.Fatalf("failed mutations leaked into state: %+v", hs)
	}
}

func TestSnapshotFailsWithoutDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mkSample("s", 8)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err == nil {
		t.Error("Snapshot succeeded with its directory gone")
	}
}

func TestRollFailsWithoutSegmentsDir(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mkSample("first", 64)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, segmentDir)); err != nil {
		t.Fatal(err)
	}
	// Next append needs a roll (tiny threshold) and must fail.
	var rollErr error
	for i := 0; i < 8; i++ {
		if rollErr = st.Append(mkSample("fill", 64)); rollErr != nil {
			break
		}
	}
	if rollErr == nil {
		t.Error("segment roll succeeded with segments/ gone")
	}
}

func TestOpenFailsOnUnreadableDir(t *testing.T) {
	// A file where the store directory should be.
	parent := t.TempDir()
	path := filepath.Join(parent, "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Error("opened a store rooted at a regular file")
	}
	if _, err := OpenSpool(path); err == nil {
		t.Error("opened a spool rooted at a regular file")
	}
}

// TestAppendFaultInjection arms the store.append fault point and checks
// an injected write error is surfaced (wrapped, matchable) without
// corrupting state: nothing is persisted, the duplicate guard still
// answers first, and disarming restores normal appends.
func TestAppendFaultInjection(t *testing.T) {
	t.Cleanup(faults.Reset)
	st := openT(t, t.TempDir(), Options{})
	if err := st.Append(mkSample("first", 8)); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected disk failure")
	disarm := faults.Arm(FaultAppend, injected)
	if err := st.Append(mkSample("blocked", 8)); !errors.Is(err, injected) {
		t.Fatalf("append under fault: %v, want wrapped injected error", err)
	}
	// The duplicate check precedes the fault point: idempotency answers
	// stay correct even while the write path is failing.
	if err := st.Append(mkSample("first", 8)); !errors.Is(err, data.ErrDuplicate) {
		t.Fatalf("duplicate under fault: %v, want ErrDuplicate", err)
	}
	disarm()

	if err := st.Append(mkSample("blocked", 8)); err != nil {
		t.Fatalf("append after disarm: %v", err)
	}
	hs, _ := st.Headers()
	if len(hs) != 2 {
		t.Fatalf("headers after faulted run: %+v", hs)
	}
}
