package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"edgepulse/internal/cbor"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
)

// Record payloads are canonical CBOR maps (internal/cbor sorts keys, so
// identical content always encodes to identical bytes). Two payload
// kinds exist: segment records carry a full sample including its signal
// bytes, journal records carry manifest operations.

// Journal operation names.
const (
	opAdd    = "add"
	opRemove = "remove"
	opLabel  = "label"
	opCats   = "cats"
)

// location addresses one sample's record inside a segment file.
type location struct {
	// Segment is the 1-based segment index.
	Segment int `json:"segment"`
	// Offset is the byte offset of the record's frame header.
	Offset int64 `json:"offset"`
	// Length is the payload length in bytes (frame adds 8).
	Length int64 `json:"length"`
}

// end returns the offset just past the record's frame.
func (l location) end() int64 { return l.Offset + frameSize(int(l.Length)) }

// rec is one sample's in-memory index entry: its header plus where the
// signal payload lives.
type rec struct {
	h   data.Header
	loc location
}

// encodeSample renders a sample as a segment-record payload.
func encodeSample(s *data.Sample) ([]byte, error) {
	raw := make([]byte, len(s.Signal.Data)*4)
	for i, v := range s.Signal.Data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	m := map[string]any{
		"id":    s.ID,
		"name":  s.Name,
		"label": s.Label,
		"cat":   string(s.Category),
		"added": s.AddedAt.UnixNano(),
		"rate":  int64(s.Signal.Rate),
		"axes":  int64(s.Signal.Axes),
		"w":     int64(s.Signal.Width),
		"h":     int64(s.Signal.Height),
		"data":  raw,
	}
	if len(s.Metadata) > 0 {
		meta := make(map[string]any, len(s.Metadata))
		for k, v := range s.Metadata {
			meta[k] = v
		}
		m["meta"] = meta
	}
	return cbor.Marshal(m)
}

// decodeSample parses a segment-record payload back into a sample.
func decodeSample(payload []byte) (*data.Sample, error) {
	v, err := cbor.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("store: segment record: %w", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("store: segment record is %T, want map", v)
	}
	raw, _ := m["data"].([]byte)
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("store: signal payload length %d is not a float32 array", len(raw))
	}
	sig := dsp.Signal{
		Data:  make([]float32, len(raw)/4),
		Rate:  int(asInt(m["rate"])),
		Axes:  int(asInt(m["axes"])),
		Width: int(asInt(m["w"])), Height: int(asInt(m["h"])),
	}
	for i := range sig.Data {
		sig.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	s := &data.Sample{
		ID:       asString(m["id"]),
		Name:     asString(m["name"]),
		Label:    asString(m["label"]),
		Category: data.Category(asString(m["cat"])),
		Signal:   sig,
		AddedAt:  time.Unix(0, asInt(m["added"])),
	}
	if meta, ok := m["meta"].(map[string]any); ok {
		s.Metadata = make(map[string]string, len(meta))
		for k, v := range meta {
			s.Metadata[k] = asString(v)
		}
	}
	return s, nil
}

// headerMap renders a header + location as the value carried by an
// opAdd journal record and by manifest snapshots.
func headerMap(h data.Header, loc location) map[string]any {
	m := map[string]any{
		"id":     h.ID,
		"name":   h.Name,
		"label":  h.Label,
		"cat":    string(h.Category),
		"added":  h.AddedAt.UnixNano(),
		"rate":   int64(h.Shape.Rate),
		"axes":   int64(h.Shape.Axes),
		"w":      int64(h.Shape.Width),
		"h":      int64(h.Shape.Height),
		"frames": int64(h.Shape.Frames),
		"seg":    int64(loc.Segment),
		"off":    loc.Offset,
		"len":    loc.Length,
	}
	if len(h.Metadata) > 0 {
		meta := make(map[string]any, len(h.Metadata))
		for k, v := range h.Metadata {
			meta[k] = v
		}
		m["meta"] = meta
	}
	return m
}

// parseHeaderMap is the inverse of headerMap.
func parseHeaderMap(m map[string]any) (rec, error) {
	h := data.Header{
		ID:       asString(m["id"]),
		Name:     asString(m["name"]),
		Label:    asString(m["label"]),
		Category: data.Category(asString(m["cat"])),
		AddedAt:  time.Unix(0, asInt(m["added"])),
		Shape: data.SignalShape{
			Rate: int(asInt(m["rate"])), Axes: int(asInt(m["axes"])),
			Width: int(asInt(m["w"])), Height: int(asInt(m["h"])),
			Frames: int(asInt(m["frames"])),
		},
	}
	if h.ID == "" {
		return rec{}, fmt.Errorf("store: header record without id")
	}
	if meta, ok := m["meta"].(map[string]any); ok {
		h.Metadata = make(map[string]string, len(meta))
		for k, v := range meta {
			h.Metadata[k] = asString(v)
		}
	}
	loc := location{
		Segment: int(asInt(m["seg"])),
		Offset:  asInt(m["off"]),
		Length:  asInt(m["len"]),
	}
	if loc.Segment < 1 || loc.Offset < logMagicLen || loc.Length < 0 {
		return rec{}, fmt.Errorf("store: header %s has invalid location %+v", h.ID, loc)
	}
	return rec{h: h, loc: loc}, nil
}

// asInt converts the integer shapes internal/cbor decoding produces.
func asInt(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case uint64:
		return int64(x)
	case float64:
		return int64(x)
	default:
		return 0
	}
}

// asString converts a decoded CBOR value to a string (empty if not one).
func asString(v any) string {
	s, _ := v.(string)
	return s
}
