package store

import (
	"errors"
	"io"
	"os"
	"reflect"
	"testing"
)

// openReplicaT opens a replica store with cleanup.
func openReplicaT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := OpenReplica(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// replicate ships everything the primary has past the replica's state:
// segment bytes first, then journal frames — the follower's sync
// algorithm at store level.
func replicate(t *testing.T, primary, replica *Store) {
	t.Helper()
	remote, err := primary.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	local, err := replica.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]int64{}
	for _, s := range local.Segments {
		sizes[s.Index] = s.Size
	}
	for _, seg := range remote.Segments {
		from := sizes[seg.Index]
		if from >= seg.Size {
			continue
		}
		rd, n, err := primary.SegmentReader(seg.Index, from)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(io.LimitReader(rd, n))
		if err != nil {
			t.Fatal(err)
		}
		if err := replica.ApplySegmentChunk(seg.Index, from, b); err != nil {
			t.Fatalf("segment %d: %v", seg.Index, err)
		}
	}
	frames, last, err := primary.JournalSince(replica.Committed(), remote.Version)
	if err != nil {
		t.Fatal(err)
	}
	if last != remote.Version {
		t.Fatalf("journal tail ends at %d, want %d", last, remote.Version)
	}
	if _, err := replica.ApplyJournalFrames(frames); err != nil {
		t.Fatal(err)
	}
}

// assertIdentical compares full header sets, versions and signal bytes.
func assertIdentical(t *testing.T, primary, replica *Store) {
	t.Helper()
	if p, r := primary.Committed(), replica.Committed(); p != r {
		t.Fatalf("versions differ: primary %d, replica %d", p, r)
	}
	ph, err := primary.Headers()
	if err != nil {
		t.Fatal(err)
	}
	rh, err := replica.Headers()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ph, rh) {
		t.Fatalf("headers differ:\nprimary %+v\nreplica %+v", ph, rh)
	}
	for _, h := range ph {
		ps, err := primary.LoadSignal(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := replica.LoadSignal(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ps, rs) {
			t.Fatalf("signal %s differs", h.ID)
		}
	}
}

func TestReplicationIncremental(t *testing.T) {
	primary := openT(t, t.TempDir(), Options{SegmentBytes: 2048})
	replica := openReplicaT(t, t.TempDir(), Options{SegmentBytes: 2048})

	// Multiple rounds with interleaved mutations, spanning a segment
	// roll (2 KiB segments fill fast).
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if err := primary.Append(mkSample(string(rune('a'+round))+"-"+string(rune('0'+i)), 64)); err != nil {
				t.Fatal(err)
			}
		}
		if round == 1 {
			if err := primary.SetLabel("a-1", "relabeled"); err != nil {
				t.Fatal(err)
			}
			if err := primary.Remove("a-2"); err != nil {
				t.Fatal(err)
			}
		}
		replicate(t, primary, replica)
		assertIdentical(t, primary, replica)
	}
	if len(primary.Segments()) < 2 {
		t.Fatalf("test did not span a segment roll: %v", primary.Segments())
	}

	// An idle round ships nothing and stays identical.
	replicate(t, primary, replica)
	assertIdentical(t, primary, replica)
}

func TestReplicaRejectsWrites(t *testing.T) {
	replica := openReplicaT(t, t.TempDir(), Options{})
	if err := replica.Append(mkSample("x", 8)); !errors.Is(err, ErrReplica) {
		t.Fatalf("Append on replica: %v", err)
	}
	if err := replica.Remove("x"); !errors.Is(err, ErrReplica) {
		t.Fatalf("Remove on replica: %v", err)
	}
	if err := replica.SetLabel("x", "y"); !errors.Is(err, ErrReplica) {
		t.Fatalf("SetLabel on replica: %v", err)
	}
	if !replica.Replica() {
		t.Fatal("Replica() false on replica store")
	}
	// And a primary refuses replica-side appliers.
	primary := openT(t, t.TempDir(), Options{})
	if err := primary.ApplySegmentChunk(0, 0, []byte{1}); err == nil {
		t.Fatal("ApplySegmentChunk accepted on a primary store")
	}
	if _, err := primary.ApplyJournalFrames(nil); err == nil {
		t.Fatal("ApplyJournalFrames accepted on a primary store")
	}
}

func TestJournalSinceGapAndBounds(t *testing.T) {
	dir := t.TempDir()
	primary := openT(t, dir, Options{})
	for i := 0; i < 6; i++ {
		if err := primary.Append(mkSample(string(rune('a'+i)), 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction advances the snapshot horizon past version 0.
	if err := primary.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Append(mkSample("post", 16)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := primary.JournalSince(0, primary.Committed()); !errors.Is(err, ErrReplicationGap) {
		t.Fatalf("pre-horizon cursor: %v", err)
	}
	// A cursor at the horizon tails cleanly.
	frames, last, err := primary.JournalSince(6, primary.Committed())
	if err != nil {
		t.Fatal(err)
	}
	if last != 7 || len(frames) == 0 {
		t.Fatalf("tail from horizon: last %d, %d bytes", last, len(frames))
	}
}

func TestReplicationBootstrap(t *testing.T) {
	primary := openT(t, t.TempDir(), Options{SegmentBytes: 2048})
	for i := 0; i < 8; i++ {
		if err := primary.Append(mkSample(string(rune('a'+i)), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Append(mkSample("tail", 64)); err != nil {
		t.Fatal(err)
	}

	// Bootstrap: manifest + full segment copies, then reopen.
	manifest, version, err := primary.ManifestBlob()
	if err != nil {
		t.Fatal(err)
	}
	if version != primary.Committed() {
		// The manifest is at the snapshot horizon, not the tip.
		if version != 8 {
			t.Fatalf("manifest version %d", version)
		}
	}
	dir := t.TempDir()
	if err := PrepareBootstrap(dir, manifest); err != nil {
		t.Fatal(err)
	}
	state, err := primary.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range state.Segments {
		rd, n, err := primary.SegmentReader(seg.Index, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(io.LimitReader(rd, n))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(SegmentPath(dir, seg.Index), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	replica := openReplicaT(t, dir, Options{SegmentBytes: 2048})
	if replica.Committed() != version {
		t.Fatalf("bootstrapped replica at %d, manifest was %d", replica.Committed(), version)
	}
	// One incremental round catches the post-snapshot tail.
	replicate(t, primary, replica)
	assertIdentical(t, primary, replica)
}

func TestApplySegmentChunkContracts(t *testing.T) {
	primary := openT(t, t.TempDir(), Options{})
	if err := primary.Append(mkSample("a", 32)); err != nil {
		t.Fatal(err)
	}
	state, err := primary.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	seg := state.Segments[0]
	rd, n, err := primary.SegmentReader(seg.Index, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(io.LimitReader(rd, n))
	if err != nil {
		t.Fatal(err)
	}

	replica := openReplicaT(t, t.TempDir(), Options{})
	// A gap (offset past the current size) must be refused.
	if err := replica.ApplySegmentChunk(seg.Index, 10, b); err == nil {
		t.Fatal("accepted a chunk with a byte gap")
	}
	if err := replica.ApplySegmentChunk(seg.Index, 0, b); err != nil {
		t.Fatal(err)
	}
	// Idempotent redelivery of an overlapping chunk is a no-op.
	if err := replica.ApplySegmentChunk(seg.Index, 0, b); err != nil {
		t.Fatal(err)
	}
	st2, err := replica.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Segments[0].Size != seg.Size {
		t.Fatalf("replica segment size %d, want %d", st2.Segments[0].Size, seg.Size)
	}
}
