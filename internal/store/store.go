// Package store implements the durable, segmented, content-addressed
// dataset storage engine behind lazy data.Dataset instances (paper Sec.
// 4.1: continuous ingestion from device fleets, datasets larger than
// RAM). Samples append to CRC-framed CBOR segment files; a compact
// manifest — an atomically-snapshotted header index plus an append-only
// journal — records where every sample lives and carries a monotonic
// version counter. All writes are atomic (temp-file + rename or framed
// append + fsync) and partially-written tails are truncated on
// recovery, so a crash at any byte loses at most the record being
// written. Persisting one upload costs O(sample), not O(dataset).
//
// The package also provides Spool, a crash-safe upload spool built on
// the same framed-log format, used by ei-daemon to survive interrupted
// ingestion sessions. The byte-level format specification lives in
// docs/STORAGE.md.
package store

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"edgepulse/internal/cbor"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/faults"
)

// FaultAppend is the registered fault point fired inside Append, after
// validation but before any byte reaches the segment; chaos tests arm it
// to simulate I/O failures on the persistence hot path.
const FaultAppend = "store.append"

// Default tuning knobs.
const (
	// DefaultSegmentBytes is the segment roll threshold.
	DefaultSegmentBytes = 8 << 20
	// DefaultSnapshotEvery is how many journal records accumulate
	// before the manifest is snapshotted and the journal truncated.
	DefaultSnapshotEvery = 1024
)

// Options tunes a Store. The zero value selects defaults.
type Options struct {
	// SegmentBytes rolls the active segment when it would exceed this
	// size (DefaultSegmentBytes if <= 0).
	SegmentBytes int64
	// SnapshotEvery compacts the manifest journal into a snapshot
	// after this many journal records (DefaultSnapshotEvery if <= 0).
	SnapshotEvery int
	// NoSync skips fsync on appends. Only for benchmarks measuring
	// pure write-path cost; crash safety requires syncing.
	NoSync bool
}

// Store is a durable segmented dataset store. It implements
// data.Backend, so data.Open(st, 0) yields a lazy dataset over it.
type Store struct {
	dir string
	opt Options
	// replica marks a read-only standby opened via OpenReplica: local
	// mutations are rejected and state advances only through the
	// replication apply methods (replication.go).
	replica bool

	// mu guards all mutable state. Segment reads happen outside the
	// lock: read handles stay open until Close and ReadAt is
	// position-independent.
	mu      sync.Mutex
	recs    map[string]*rec
	order   []string
	version uint64 // committed operation counter (monotonic)
	// snapVersion is the version the loaded manifest snapshot was taken
	// at: journal ops stamped <= snapVersion are already reflected in
	// the snapshot and are skipped on replay (a crash between the
	// manifest rename and the journal truncation leaves them behind).
	snapVersion uint64

	seg     *os.File // active segment, opened for append
	segIdx  int
	segEnd  int64
	readers map[int]*os.File

	journal     *os.File
	journalEnd  int64
	journalRecs int
	frameBuf    []byte
}

func (s *Store) lock()   { s.mu.Lock() }
func (s *Store) unlock() { s.mu.Unlock() }

// manifest is the JSON snapshot schema of manifest.json.
type manifest struct {
	// Format is the manifest schema version.
	Format int `json:"format"`
	// Version is the committed operation counter at snapshot time.
	Version uint64 `json:"version"`
	// Segment is the active (highest) segment index.
	Segment int `json:"segment"`
	// Samples lists committed sample headers in insertion order.
	Samples []manifestSample `json:"samples"`
}

// manifestSample is one sample header + location in manifest.json.
type manifestSample struct {
	ID       string            `json:"id"`
	Name     string            `json:"name,omitempty"`
	Label    string            `json:"label"`
	Category string            `json:"category"`
	Metadata map[string]string `json:"metadata,omitempty"`
	AddedNS  int64             `json:"added_ns"`
	Rate     int               `json:"rate,omitempty"`
	Axes     int               `json:"axes"`
	Width    int               `json:"width,omitempty"`
	Height   int               `json:"height,omitempty"`
	Frames   int               `json:"frames"`
	Loc      location          `json:"loc"`
}

// manifestFormat is the current manifest.json schema version.
const manifestFormat = 1

// File names inside a store directory.
const (
	manifestName = "manifest.json"
	journalName  = "journal.log"
	segmentDir   = "segments"
)

// segmentName renders a 1-based segment index as its file name.
func segmentName(idx int) string { return fmt.Sprintf("seg-%06d.seg", idx) }

// Open opens (creating if necessary) a store rooted at dir, running
// crash recovery: the manifest snapshot is loaded, the journal's
// committed prefix replayed (torn tail truncated), and any
// uncommitted bytes at the active segment's tail discarded.
func Open(dir string, opt Options) (*Store, error) {
	return open(dir, opt, false)
}

func open(dir string, opt Options, replica bool) (*Store, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.SnapshotEvery <= 0 {
		opt.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(filepath.Join(dir, segmentDir), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir: dir, opt: opt, replica: replica,
		recs:    map[string]*rec{},
		readers: map[int]*os.File{},
		segIdx:  1,
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	if err := s.openActiveSegment(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// loadManifest reads manifest.json if present.
func (s *Store) loadManifest() error {
	blob, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	m, err := parseManifest(blob)
	if err != nil {
		return fmt.Errorf("store: %s: %w", manifestName, err)
	}
	s.version = m.Version
	s.snapVersion = m.Version
	if m.Segment > 0 {
		s.segIdx = m.Segment
	}
	for _, ms := range m.Samples {
		r := &rec{
			h: data.Header{
				ID: ms.ID, Name: ms.Name, Label: ms.Label,
				Category: data.Category(ms.Category),
				Metadata: ms.Metadata, AddedAt: timeFromNS(ms.AddedNS),
				Shape: data.SignalShape{
					Rate: ms.Rate, Axes: ms.Axes,
					Width: ms.Width, Height: ms.Height, Frames: ms.Frames,
				},
			},
			loc: ms.Loc,
		}
		if _, dup := s.recs[r.h.ID]; dup {
			return fmt.Errorf("store: %s lists sample %s twice", manifestName, r.h.ID)
		}
		s.recs[r.h.ID] = r
		s.order = append(s.order, r.h.ID)
	}
	return nil
}

// replayJournal applies the journal's committed operations on top of
// the snapshot and truncates any torn tail.
func (s *Store) replayJournal() error {
	j, end, err := openLog(filepath.Join(s.dir, journalName), func(payload []byte, off int64) error {
		s.journalRecs++
		return s.applyJournal(payload)
	})
	if err != nil {
		return err
	}
	s.journal = j
	s.journalEnd = end
	return nil
}

// applyJournal applies one committed journal operation to the index.
func (s *Store) applyJournal(payload []byte) error {
	v, err := cbor.Unmarshal(payload)
	if err != nil {
		return fmt.Errorf("store: journal record: %w", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return fmt.Errorf("store: journal record is %T, want map", v)
	}
	// Each op is stamped with the version it commits; ops at or below
	// the snapshot version are already folded into the manifest (the
	// journal outlived a snapshot whose truncation never happened).
	if v := asInt(m["v"]); v > 0 && uint64(v) <= s.snapVersion {
		return nil
	}
	switch op := asString(m["op"]); op {
	case opAdd:
		hm, ok := m["h"].(map[string]any)
		if !ok {
			return fmt.Errorf("store: add record without header")
		}
		r, err := parseHeaderMap(hm)
		if err != nil {
			return err
		}
		if _, dup := s.recs[r.h.ID]; dup {
			return fmt.Errorf("store: journal adds sample %s twice", r.h.ID)
		}
		s.recs[r.h.ID] = &r
		s.order = append(s.order, r.h.ID)
		if r.loc.Segment > s.segIdx {
			s.segIdx = r.loc.Segment
		}
	case opRemove:
		id := asString(m["id"])
		if _, ok := s.recs[id]; !ok {
			return fmt.Errorf("store: journal removes unknown sample %s", id)
		}
		delete(s.recs, id)
		for i, o := range s.order {
			if o == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	case opLabel:
		r, ok := s.recs[asString(m["id"])]
		if !ok {
			return fmt.Errorf("store: journal relabels unknown sample %s", asString(m["id"]))
		}
		r.h.Label = asString(m["label"])
	case opCats:
		cm, ok := m["m"].(map[string]any)
		if !ok {
			return fmt.Errorf("store: cats record without map")
		}
		for id, cat := range cm {
			if r, ok := s.recs[id]; ok {
				r.h.Category = data.Category(asString(cat))
			}
		}
	default:
		return fmt.Errorf("store: unknown journal op %q", op)
	}
	s.version++
	return nil
}

// openActiveSegment opens the highest segment for appending and
// truncates uncommitted bytes past the last manifest-referenced record
// — the partially-written tail a crash mid-append leaves behind.
func (s *Store) openActiveSegment() error {
	// The active segment is the highest of: manifest/journal references
	// and files already on disk (a crash can create a fresh segment
	// before any record commits into it).
	if onDisk := s.highestSegmentOnDisk(); onDisk > s.segIdx {
		s.segIdx = onDisk
	}
	committed := int64(logMagicLen)
	for _, r := range s.recs {
		if r.loc.Segment == s.segIdx && r.loc.end() > committed {
			committed = r.loc.end()
		}
	}
	path := filepath.Join(s.dir, segmentDir, segmentName(s.segIdx))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	switch {
	case st.Size() < logMagicLen:
		// New or torn-at-creation segment: (re)write the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteAt(logMagic(), 0); err != nil {
			f.Close()
			return err
		}
		committed = logMagicLen
	case st.Size() > committed:
		if s.replica {
			// A replica's segments legitimately run past the last indexed
			// record: committed bytes ship ahead of their journal ops, and
			// the primary only ever ships committed (immutable) ranges.
			committed = st.Size()
			break
		}
		// Uncommitted tail (torn append, or an append whose journal
		// record never committed): discard it.
		if err := f.Truncate(committed); err != nil {
			f.Close()
			return err
		}
	}
	if err := s.syncFile(f); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(filepath.Join(s.dir, segmentDir)); err != nil {
		f.Close()
		return err
	}
	magic := make([]byte, logMagicLen)
	if _, err := f.ReadAt(magic, 0); err != nil {
		f.Close()
		return err
	}
	if err := checkMagic(magic); err != nil {
		f.Close()
		return fmt.Errorf("store: %s: %w", segmentName(s.segIdx), err)
	}
	s.seg = f
	s.segEnd = committed
	s.readers[s.segIdx] = f
	return nil
}

// highestSegmentOnDisk scans the segments directory.
func (s *Store) highestSegmentOnDisk() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, segmentDir))
	if err != nil {
		return 0
	}
	max := 0
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.seg", &idx); err == nil && idx > max {
			max = idx
		}
	}
	return max
}

// syncFile fsyncs unless the store runs with NoSync.
func (s *Store) syncFile(f *os.File) error {
	if s.opt.NoSync {
		return nil
	}
	return f.Sync()
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Committed returns the monotonic count of committed operations — the
// dataset's durable version counter. It survives restarts via the
// manifest snapshot and journal replay.
func (s *Store) Committed() uint64 {
	s.lock()
	defer s.unlock()
	return s.version
}

// Len returns the number of committed samples.
func (s *Store) Len() int {
	s.lock()
	defer s.unlock()
	return len(s.recs)
}

// Headers returns committed sample headers in insertion order
// (data.Backend).
func (s *Store) Headers() ([]data.Header, error) {
	s.lock()
	defer s.unlock()
	out := make([]data.Header, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.recs[id].h)
	}
	return out, nil
}

// LoadSignal reads, CRC-checks and decodes one sample's signal payload
// from its segment (data.Backend).
func (s *Store) LoadSignal(id string) (dsp.Signal, error) {
	s.lock()
	r, ok := s.recs[id]
	if !ok {
		s.unlock()
		return dsp.Signal{}, fmt.Errorf("store: no sample %s", id)
	}
	loc := r.loc
	f, err := s.segmentReader(loc.Segment)
	s.unlock()
	if err != nil {
		return dsp.Signal{}, err
	}
	payload, _, err := readFrame(f, loc.Offset, loc.end())
	if err != nil {
		return dsp.Signal{}, fmt.Errorf("store: sample %s at seg %d off %d: %w", id, loc.Segment, loc.Offset, err)
	}
	sample, err := decodeSample(payload)
	if err != nil {
		return dsp.Signal{}, err
	}
	if sample.ID != id {
		return dsp.Signal{}, fmt.Errorf("store: sample %s record holds %s (index corruption)", id, sample.ID)
	}
	return sample.Signal, nil
}

// segmentReader returns an open read handle for a segment, opening and
// caching it on first use. Replicas open read-write (and create on
// demand) so ApplySegmentChunk can extend any segment through the same
// cached handle. Caller holds the lock.
func (s *Store) segmentReader(idx int) (*os.File, error) {
	if f, ok := s.readers[idx]; ok {
		return f, nil
	}
	path := filepath.Join(s.dir, segmentDir, segmentName(idx))
	var f *os.File
	var err error
	if s.replica {
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	} else {
		f, err = os.Open(path)
	}
	if err != nil {
		return nil, err
	}
	s.readers[idx] = f
	return f, nil
}

// Append durably persists a new sample (data.Backend): one framed
// append to the active segment plus one journal record — O(sample)
// work regardless of dataset size.
func (s *Store) Append(sample *data.Sample) error {
	payload, err := encodeSample(sample)
	if err != nil {
		return err
	}
	s.lock()
	defer s.unlock()
	if s.replica {
		return ErrReplica
	}
	if s.seg == nil {
		return fmt.Errorf("store: closed")
	}
	if _, dup := s.recs[sample.ID]; dup {
		return fmt.Errorf("store: %w %s", data.ErrDuplicate, sample.ID)
	}
	if err := faults.Inject(FaultAppend); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if s.segEnd > logMagicLen && s.segEnd+frameSize(len(payload)) > s.opt.SegmentBytes {
		if err := s.rollSegment(); err != nil {
			return err
		}
	}
	s.frameBuf = appendFrame(s.frameBuf, payload)
	off := s.segEnd
	if _, err := s.seg.WriteAt(s.frameBuf, off); err != nil {
		return err
	}
	if err := s.syncFile(s.seg); err != nil {
		return err
	}
	loc := location{Segment: s.segIdx, Offset: off, Length: int64(len(payload))}
	r := rec{h: *sampleHeader(sample), loc: loc}
	if err := s.appendJournal(map[string]any{"op": opAdd, "h": headerMap(r.h, loc)}); err != nil {
		// The segment bytes are uncommitted without the journal record;
		// recovery truncates them on next open. Leave segEnd unchanged
		// so a retry overwrites them.
		return err
	}
	s.segEnd = loc.end()
	s.recs[sample.ID] = &r
	s.order = append(s.order, sample.ID)
	s.maybeSnapshotLocked()
	return nil
}

// sampleHeader derives the header index entry for a sample.
func sampleHeader(sample *data.Sample) *data.Header {
	return &data.Header{
		ID: sample.ID, Name: sample.Name, Label: sample.Label,
		Category: sample.Category, Metadata: sample.Metadata,
		AddedAt: sample.AddedAt,
		Shape: data.SignalShape{
			Rate: sample.Signal.Rate, Axes: sample.Signal.Axes,
			Width: sample.Signal.Width, Height: sample.Signal.Height,
			Frames: sample.Signal.Frames(),
		},
	}
}

// rollSegment finalizes the active segment and starts the next one.
// Caller holds the lock.
func (s *Store) rollSegment() error {
	if err := s.syncFile(s.seg); err != nil {
		return err
	}
	idx := s.segIdx + 1
	path := filepath.Join(s.dir, segmentDir, segmentName(idx))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(logMagic(), 0); err != nil {
		f.Close()
		return err
	}
	if err := s.syncFile(f); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(filepath.Join(s.dir, segmentDir)); err != nil {
		f.Close()
		return err
	}
	s.seg = f
	s.segIdx = idx
	s.segEnd = logMagicLen
	s.readers[idx] = f
	return nil
}

// appendJournal frames and fsyncs one manifest operation, bumping the
// committed version counter. Caller holds the lock.
func (s *Store) appendJournal(op map[string]any) error {
	op["v"] = int64(s.version + 1)
	payload, err := cbor.Marshal(op)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, payload)
	// WriteAt against the tracked end: the journal handle's file
	// offset is unreliable after a recovery scan (ReadAt moves
	// nothing), and must never clobber the header.
	if _, err := s.journal.WriteAt(frame, s.journalEnd); err != nil {
		return err
	}
	if err := s.syncFile(s.journal); err != nil {
		return err
	}
	s.journalEnd += int64(len(frame))
	s.journalRecs++
	s.version++
	return nil
}

// Remove durably deletes a sample (data.Backend). Its segment bytes
// become garbage, reclaimed when the segment is eventually dropped.
func (s *Store) Remove(id string) error {
	s.lock()
	defer s.unlock()
	if s.replica {
		return ErrReplica
	}
	if _, ok := s.recs[id]; !ok {
		return fmt.Errorf("store: no sample %s", id)
	}
	if err := s.appendJournal(map[string]any{"op": opRemove, "id": id}); err != nil {
		return err
	}
	delete(s.recs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.maybeSnapshotLocked()
	return nil
}

// SetLabel durably relabels a sample (data.Backend).
func (s *Store) SetLabel(id, label string) error {
	s.lock()
	defer s.unlock()
	if s.replica {
		return ErrReplica
	}
	r, ok := s.recs[id]
	if !ok {
		return fmt.Errorf("store: no sample %s", id)
	}
	if err := s.appendJournal(map[string]any{"op": opLabel, "id": id, "label": label}); err != nil {
		return err
	}
	r.h.Label = label
	s.maybeSnapshotLocked()
	return nil
}

// SetCategories durably reassigns split categories as one journal
// record (data.Backend) — a rebalance over N samples costs one fsync.
func (s *Store) SetCategories(cats map[string]data.Category) error {
	if len(cats) == 0 {
		return nil
	}
	s.lock()
	defer s.unlock()
	if s.replica {
		return ErrReplica
	}
	m := make(map[string]any, len(cats))
	for id, cat := range cats {
		if _, ok := s.recs[id]; !ok {
			return fmt.Errorf("store: no sample %s", id)
		}
		m[id] = string(cat)
	}
	if err := s.appendJournal(map[string]any{"op": opCats, "m": m}); err != nil {
		return err
	}
	for id, cat := range cats {
		s.recs[id].h.Category = cat
	}
	s.maybeSnapshotLocked()
	return nil
}

// maybeSnapshotLocked compacts the journal into a manifest snapshot
// once enough operations accumulate. Compaction is an optimization of
// an already-committed operation, so failure is logged and retried on
// the next mutation (journalRecs stays above the threshold) rather
// than reported to the caller — returning it would make a durably
// committed write look failed and desynchronize callers' indexes.
// Caller holds the lock.
func (s *Store) maybeSnapshotLocked() {
	if s.journalRecs < s.opt.SnapshotEvery {
		return
	}
	if err := s.snapshotLocked(); err != nil {
		slog.Error("store: journal compaction failed (will retry on next mutation)",
			"dir", s.dir, "err", err)
	}
}

// Snapshot forces a manifest snapshot + journal truncation. The store
// stays fully consistent if the process dies at any point: the rename
// is atomic and the journal only truncates after the snapshot is
// durable.
func (s *Store) Snapshot() error {
	s.lock()
	defer s.unlock()
	return s.snapshotLocked()
}

// currentManifestLocked renders the in-memory index as a manifest
// snapshot of the current version. Caller holds the lock.
func (s *Store) currentManifestLocked() manifest {
	m := manifest{Format: manifestFormat, Version: s.version, Segment: s.segIdx}
	for _, id := range s.order {
		r := s.recs[id]
		m.Samples = append(m.Samples, manifestSample{
			ID: r.h.ID, Name: r.h.Name, Label: r.h.Label,
			Category: string(r.h.Category), Metadata: r.h.Metadata,
			AddedNS: r.h.AddedAt.UnixNano(),
			Rate:    r.h.Shape.Rate, Axes: r.h.Shape.Axes,
			Width: r.h.Shape.Width, Height: r.h.Shape.Height,
			Frames: r.h.Shape.Frames,
			Loc:    r.loc,
		})
	}
	return m
}

func (s *Store) snapshotLocked() error {
	blob, err := renderManifest(s.currentManifestLocked())
	if err != nil {
		return err
	}
	if err := AtomicWriteFile(filepath.Join(s.dir, manifestName), blob); err != nil {
		return err
	}
	// Snapshot durable: the journal's content is now redundant.
	if err := s.journal.Truncate(logMagicLen); err != nil {
		return err
	}
	if err := s.syncFile(s.journal); err != nil {
		return err
	}
	s.journalEnd = logMagicLen
	s.journalRecs = 0
	// The manifest now reflects everything up to the current version:
	// journal records at or below it are retired, which is also the
	// replication retention horizon (see JournalSince).
	s.snapVersion = s.version
	return nil
}

// Close snapshots the manifest and releases all file handles.
func (s *Store) Close() error {
	s.lock()
	defer s.unlock()
	if s.seg == nil {
		return nil
	}
	err := s.snapshotLocked()
	s.closeFiles()
	return err
}

// closeFiles releases every open handle. Caller holds the lock (or has
// exclusive access during a failed Open).
func (s *Store) closeFiles() {
	for _, f := range s.readers {
		f.Close()
	}
	s.readers = map[int]*os.File{}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.seg = nil
}

// Segments returns the segment file indices currently on disk, sorted
// — for tests and operational introspection.
func (s *Store) Segments() []int {
	s.lock()
	defer s.unlock()
	entries, err := os.ReadDir(filepath.Join(s.dir, segmentDir))
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.seg", &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}
