package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"edgepulse/internal/cbor"
)

// Replication layer: a primary Store exposes its committed state as
// shippable byte ranges (segment bytes are immutable once committed;
// journal records are version-stamped CRC frames), and a replica Store
// opened with OpenReplica applies those bytes verbatim. Because the
// follower receives the primary's exact frames, every integrity check
// the format already has — magic headers, per-record CRCs, the
// version-stamped journal — holds on the standby too, and the dataset
// content hash (data.Dataset.Version) over a caught-up replica equals
// the primary's by construction.
//
// Protocol (pull-based, driven by the follower):
//
//  1. fetch ReplicationState → version V and per-segment committed sizes
//     as of V (one atomic snapshot under the store lock);
//  2. ship each segment's missing byte range up to its size-at-V
//     (committed bytes never change, so over-fetching past the
//     follower's cursor is safe — only under-fetching is not);
//  3. fetch JournalSince(cursor, V) and apply the frames: every opAdd
//     location now references bytes shipped in step 2.
//
// If the cursor predates the primary's last manifest snapshot the
// journal no longer holds the needed records (compaction truncated
// them) and JournalSince reports ErrReplicationGap: the follower
// bootstraps instead — ManifestBlob first, then state, then full
// segment copies — and resumes the incremental loop from the manifest
// version.

// ErrReplicationGap reports a JournalSince cursor older than the
// retained journal: the records were compacted into a manifest
// snapshot, so the follower must bootstrap from ManifestBlob + full
// segment copies instead of tailing.
var ErrReplicationGap = errors.New("store: replication cursor predates retained journal (snapshot bootstrap required)")

// ErrReplica reports a mutation attempted on a read-only replica store.
var ErrReplica = errors.New("store: read-only replica")

// ReplSegment is one segment's committed size in a replication state
// snapshot.
type ReplSegment struct {
	Index int
	Size  int64
}

// ReplState is a point-in-time replication snapshot: the committed
// version counter, the version of the last manifest snapshot (the
// journal retention horizon), and every segment's committed size at
// that version.
type ReplState struct {
	Version     uint64
	SnapVersion uint64
	Segments    []ReplSegment
}

// ReplicationState captures the store's current replication snapshot.
// Version and the segment sizes are read under one lock acquisition, so
// the sizes are exactly the committed sizes at Version.
func (s *Store) ReplicationState() (ReplState, error) {
	s.lock()
	defer s.unlock()
	if s.seg == nil {
		return ReplState{}, fmt.Errorf("store: closed")
	}
	st := ReplState{Version: s.version, SnapVersion: s.snapVersion}
	entries, err := os.ReadDir(filepath.Join(s.dir, segmentDir))
	if err != nil {
		return ReplState{}, err
	}
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.seg", &idx); err != nil {
			continue
		}
		size, err := s.committedSizeLocked(idx)
		if err != nil {
			return ReplState{}, err
		}
		st.Segments = append(st.Segments, ReplSegment{Index: idx, Size: size})
	}
	sort.Slice(st.Segments, func(i, j int) bool { return st.Segments[i].Index < st.Segments[j].Index })
	return st, nil
}

// committedSizeLocked returns a segment's committed byte count: the
// tracked append cursor for the active segment (its file may briefly
// hold uncommitted tail bytes mid-append), the on-disk size for sealed
// segments. Caller holds the lock.
func (s *Store) committedSizeLocked(idx int) (int64, error) {
	if idx == s.segIdx {
		return s.segEnd, nil
	}
	st, err := os.Stat(filepath.Join(s.dir, segmentDir, segmentName(idx)))
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// SegmentReader returns a reader over the committed bytes of segment
// idx starting at offset from, plus the committed size the range runs
// to. Committed segment bytes are immutable, so the read happens
// outside the store lock; the range endpoint is fixed under it.
func (s *Store) SegmentReader(idx int, from int64) (io.Reader, int64, error) {
	s.lock()
	if s.seg == nil {
		s.unlock()
		return nil, 0, fmt.Errorf("store: closed")
	}
	limit, err := s.committedSizeLocked(idx)
	if err != nil {
		s.unlock()
		return nil, 0, err
	}
	f, err := s.segmentReader(idx)
	s.unlock()
	if err != nil {
		return nil, 0, err
	}
	if from < 0 || from > limit {
		return nil, 0, fmt.Errorf("store: segment %d offset %d outside committed range [0,%d]", idx, from, limit)
	}
	return io.NewSectionReader(f, from, limit-from), limit, nil
}

// JournalSince returns the raw journal frames (CRC framing intact) for
// operations with version in (cursor, upto], along with the version of
// the last frame returned. upto == 0 means "through the current
// version". A cursor below the last snapshot's version reports
// ErrReplicationGap: those records were compacted away.
func (s *Store) JournalSince(cursor, upto uint64) ([]byte, uint64, error) {
	s.lock()
	defer s.unlock()
	if s.journal == nil {
		return nil, cursor, fmt.Errorf("store: closed")
	}
	if cursor < s.snapVersion {
		return nil, cursor, fmt.Errorf("%w: cursor %d, snapshot at %d", ErrReplicationGap, cursor, s.snapVersion)
	}
	if upto == 0 || upto > s.version {
		upto = s.version
	}
	if cursor >= upto {
		return nil, cursor, nil
	}
	// The journal is bounded by SnapshotEvery small header records, and
	// compaction truncates it under this same lock, so snapshot the whole
	// region in memory rather than racing a concurrent truncate.
	region := make([]byte, s.journalEnd-logMagicLen)
	if _, err := s.journal.ReadAt(region, logMagicLen); err != nil {
		return nil, cursor, err
	}
	var out []byte
	last := cursor
	br := bytes.NewReader(region)
	size := int64(len(region))
	for off := int64(0); off < size; {
		payload, next, err := readFrame(br, off, size)
		if err != nil {
			return nil, cursor, fmt.Errorf("store: journal frame at %d: %w", off+logMagicLen, err)
		}
		v, err := journalFrameVersion(payload)
		if err != nil {
			return nil, cursor, err
		}
		if v > cursor && v <= upto {
			if len(out) > 0 && v != last+1 {
				return nil, cursor, fmt.Errorf("store: journal version gap: %d follows %d", v, last)
			}
			out = append(out, region[off:next]...)
			last = v
		}
		off = next
	}
	return out, last, nil
}

// journalFrameVersion decodes the version stamp of one journal payload.
func journalFrameVersion(payload []byte) (uint64, error) {
	val, err := cbor.Unmarshal(payload)
	if err != nil {
		return 0, fmt.Errorf("store: journal record: %w", err)
	}
	m, ok := val.(map[string]any)
	if !ok {
		return 0, fmt.Errorf("store: journal record is %T, want map", val)
	}
	v := asInt(m["v"])
	if v <= 0 {
		return 0, fmt.Errorf("store: journal record has no version stamp")
	}
	return uint64(v), nil
}

// ManifestBlob renders the manifest snapshot of the current state
// without compacting the journal, and reports the version it captures —
// the bootstrap payload a follower writes as its manifest.json before
// copying segments.
func (s *Store) ManifestBlob() ([]byte, uint64, error) {
	s.lock()
	defer s.unlock()
	if s.seg == nil {
		return nil, 0, fmt.Errorf("store: closed")
	}
	blob, err := renderManifest(s.currentManifestLocked())
	if err != nil {
		return nil, 0, err
	}
	return blob, s.version, nil
}

// PrepareBootstrap initializes dir for a replica snapshot bootstrap:
// the directory tree is created and the primary's manifest blob lands
// as manifest.json. Full segment copies go to SegmentPath before
// OpenReplica loads the tree.
func PrepareBootstrap(dir string, manifest []byte) error {
	if err := os.MkdirAll(filepath.Join(dir, segmentDir), 0o755); err != nil {
		return err
	}
	return AtomicWriteFile(filepath.Join(dir, manifestName), manifest)
}

// SegmentPath returns the file path of segment idx under a store root —
// where a bootstrap writes its full segment copies.
func SegmentPath(dir string, idx int) string {
	return filepath.Join(dir, segmentDir, segmentName(idx))
}

// OpenReplica opens dir as a read-only standby store: mutations
// (Append, Remove, SetLabel, SetCategories) are rejected with
// ErrReplica, and state advances only through ApplySegmentChunk and
// ApplyJournalFrames feeding it a primary's replicated bytes. Unlike
// Open it never truncates segment tails — a replica legitimately holds
// committed bytes shipped ahead of their journal records.
func OpenReplica(dir string, opt Options) (*Store, error) {
	return open(dir, opt, true)
}

// Replica reports whether the store is a read-only standby.
func (s *Store) Replica() bool { return s.replica }

// ApplySegmentChunk appends replicated segment bytes at offset off in
// segment idx. Writes must be sequential per segment: off may not skip
// past the segment's current size; overlapping prefixes already present
// are ignored (idempotent redelivery). A chunk starting a new segment
// must begin with the framed-log magic header.
func (s *Store) ApplySegmentChunk(idx int, off int64, b []byte) error {
	s.lock()
	defer s.unlock()
	if !s.replica {
		return fmt.Errorf("store: ApplySegmentChunk on a primary store")
	}
	if s.seg == nil {
		return fmt.Errorf("store: closed")
	}
	if idx <= 0 {
		return fmt.Errorf("store: bad segment index %d", idx)
	}
	f, err := s.segmentReader(idx)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if off > size {
		return fmt.Errorf("store: segment %d chunk at %d skips past size %d", idx, off, size)
	}
	if off < size {
		skip := size - off
		if skip >= int64(len(b)) {
			return nil // fully redelivered
		}
		b = b[skip:]
		off = size
	}
	if off == 0 {
		if len(b) < logMagicLen {
			return fmt.Errorf("store: segment %d initial chunk shorter than header", idx)
		}
		if err := checkMagic(b[:logMagicLen]); err != nil {
			return fmt.Errorf("store: segment %d: %w", idx, err)
		}
	}
	if _, err := f.WriteAt(b, off); err != nil {
		return err
	}
	if err := s.syncFile(f); err != nil {
		return err
	}
	if idx >= s.segIdx {
		s.seg = f
		s.segIdx = idx
		s.segEnd = off + int64(len(b))
	}
	return nil
}

// ApplyJournalFrames verifies and applies a batch of replicated journal
// frames (as returned by a primary's JournalSince): each frame's CRC is
// checked, its version stamp must extend the replica's committed
// version contiguously (already-applied versions are skipped for
// idempotent redelivery), and the raw frame bytes land in the replica's
// own journal before the operation mutates the index. Returns the new
// committed version.
func (s *Store) ApplyJournalFrames(frames []byte) (uint64, error) {
	s.lock()
	defer s.unlock()
	if !s.replica {
		return s.version, fmt.Errorf("store: ApplyJournalFrames on a primary store")
	}
	if s.journal == nil {
		return s.version, fmt.Errorf("store: closed")
	}
	br := bytes.NewReader(frames)
	size := int64(len(frames))
	wrote := false
	for off := int64(0); off < size; {
		payload, next, err := readFrame(br, off, size)
		if err != nil {
			return s.version, fmt.Errorf("store: replicated journal frame at %d: %w", off, err)
		}
		v, err := journalFrameVersion(payload)
		if err != nil {
			return s.version, err
		}
		switch {
		case v <= s.version:
			off = next
			continue // redelivered
		case v != s.version+1:
			return s.version, fmt.Errorf("store: replicated journal gap: got version %d at local version %d", v, s.version)
		}
		frame := frames[off:next]
		if _, err := s.journal.WriteAt(frame, s.journalEnd); err != nil {
			return s.version, err
		}
		if err := s.applyJournal(payload); err != nil {
			// The frame bytes past journalEnd are uncommitted without the
			// index mutation; the next write overwrites them.
			return s.version, err
		}
		s.journalEnd += int64(len(frame))
		s.journalRecs++
		wrote = true
		off = next
	}
	if wrote {
		if err := s.syncFile(s.journal); err != nil {
			return s.version, err
		}
		s.maybeSnapshotLocked()
	}
	return s.version, nil
}
