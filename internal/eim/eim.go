// Package eim implements the runner protocol for EIM artifacts (paper
// Sec. 4.6): on Linux-class targets a deployed model is "a compiled,
// native binary application that exposes the I/O interface for use by any
// number of programming languages". Here the runner serves newline-
// delimited JSON over any net.Listener (Unix socket in production, pipes
// in tests): hello for metadata, classify for inference.
package eim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
)

// Request is one protocol message from the client.
type Request struct {
	// ID correlates responses to requests.
	ID int `json:"id"`
	// Hello requests model metadata when true.
	Hello bool `json:"hello,omitempty"`
	// Classify carries raw signal values to classify.
	Classify *ClassifyParams `json:"classify,omitempty"`
}

// ClassifyParams is the classify payload.
type ClassifyParams struct {
	// Features holds raw signal values (interleaved axes), one window.
	Features []float32 `json:"features"`
	// Quantized selects the int8 model when available.
	Quantized bool `json:"quantized,omitempty"`
}

// Response is one protocol reply.
type Response struct {
	ID      int            `json:"id"`
	Success bool           `json:"success"`
	Error   string         `json:"error,omitempty"`
	Info    *ModelInfo     `json:"info,omitempty"`
	Result  *ClassifyReply `json:"result,omitempty"`
}

// ModelInfo is the hello reply.
type ModelInfo struct {
	Name       string   `json:"name"`
	Classes    []string `json:"classes"`
	InputCount int      `json:"input_count"`
	Frequency  int      `json:"frequency"`
	HasAnomaly bool     `json:"has_anomaly"`
	Quantized  bool     `json:"quantized"`
}

// ClassifyReply is the classify reply.
type ClassifyReply struct {
	Classification map[string]float32 `json:"classification"`
	Label          string             `json:"label"`
	Anomaly        float64            `json:"anomaly"`
}

// Server hosts one impulse behind the protocol.
type Server struct {
	imp *core.Impulse

	mu     sync.Mutex
	closed bool
	ln     net.Listener
}

// NewServer wraps a runnable impulse.
func NewServer(imp *core.Impulse) (*Server, error) {
	if err := imp.Validate(); err != nil {
		return nil, err
	}
	if imp.Model == nil && imp.Anomaly == nil {
		return nil, fmt.Errorf("eim: impulse has no trained learn block")
	}
	return &Server{imp: imp}, nil
}

// Serve accepts connections until the listener closes. Each connection
// handles requests sequentially (the EIM binary is single-tenant).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// handle serves one connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<24) // classify payloads can be large
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			enc.Encode(Response{Success: false, Error: "bad request: " + err.Error()})
			continue
		}
		enc.Encode(s.dispatch(req))
	}
}

// HandleRequest processes one request (exported for in-process use and
// tests without a socket).
func (s *Server) HandleRequest(req Request) Response {
	return s.dispatch(req)
}

func (s *Server) dispatch(req Request) Response {
	switch {
	case req.Hello:
		sig := s.imp.CanonicalSignal()
		return Response{ID: req.ID, Success: true, Info: &ModelInfo{
			Name:       s.imp.Name,
			Classes:    s.imp.Classes,
			InputCount: len(sig.Data),
			Frequency:  sig.Rate,
			HasAnomaly: s.imp.Anomaly != nil,
			Quantized:  s.imp.QModel != nil,
		}}
	case req.Classify != nil:
		return s.classify(req)
	default:
		return Response{ID: req.ID, Success: false, Error: "unknown method"}
	}
}

func (s *Server) classify(req Request) Response {
	canonical := s.imp.CanonicalSignal()
	sig := dsp.Signal{
		Data: req.Classify.Features,
		Rate: canonical.Rate, Axes: canonical.Axes,
		Width: canonical.Width, Height: canonical.Height,
	}
	var res core.ClassResult
	var err error
	if req.Classify.Quantized {
		res, err = s.imp.ClassifyQuantized(sig)
	} else {
		res, err = s.imp.Classify(sig)
	}
	if err != nil {
		return Response{ID: req.ID, Success: false, Error: err.Error()}
	}
	return Response{ID: req.ID, Success: true, Result: &ClassifyReply{
		Classification: res.Scores,
		Label:          res.Label,
		Anomaly:        res.AnomalyScore,
	}}
}

// Client talks to a runner over a connection.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
	mu   sync.Mutex
	next int
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, fmt.Errorf("eim: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, err
	}
	if !resp.Success {
		return resp, fmt.Errorf("eim: %s", resp.Error)
	}
	return resp, nil
}

// Hello fetches model metadata.
func (c *Client) Hello() (*ModelInfo, error) {
	resp, err := c.roundTrip(Request{Hello: true})
	if err != nil {
		return nil, err
	}
	if resp.Info == nil {
		return nil, fmt.Errorf("eim: hello returned no info")
	}
	return resp.Info, nil
}

// Classify runs one window of raw signal through the model.
func (c *Client) Classify(features []float32, quantized bool) (*ClassifyReply, error) {
	resp, err := c.roundTrip(Request{Classify: &ClassifyParams{Features: features, Quantized: quantized}})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("eim: classify returned no result")
	}
	return resp.Result, nil
}
