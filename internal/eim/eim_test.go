package eim

import (
	"net"
	"path/filepath"
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

func runnerImpulse(t testing.TB) (*core.Impulse, *data.Dataset) {
	t.Helper()
	ds, err := synth.KWSDataset(2, 14, 8000, 0.5, 0.03, 1)
	if err != nil {
		t.Fatal(err)
	}
	imp := core.New("runner")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	block, _ := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, _ := imp.FeatureShape()
	model, _ := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, len(imp.Classes))
	nn.InitWeights(model, 2)
	imp.AttachClassifier(model)
	if _, err := imp.Train(ds, trainer.Config{Epochs: 8, LearningRate: 0.005, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := imp.Quantize(ds); err != nil {
		t.Fatal(err)
	}
	return imp, ds
}

func startServer(t *testing.T, imp *core.Impulse) *Client {
	t.Helper()
	srv, err := NewServer(imp)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "model.eim.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestHello(t *testing.T) {
	imp, _ := runnerImpulse(t)
	c := startServer(t, imp)
	info, err := c.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "runner" || len(info.Classes) != 2 {
		t.Fatalf("info: %+v", info)
	}
	if info.InputCount != 4000 || info.Frequency != 8000 {
		t.Fatalf("geometry: %+v", info)
	}
	if !info.Quantized {
		t.Error("quantized flag lost")
	}
}

func TestClassifyOverSocket(t *testing.T) {
	imp, ds := runnerImpulse(t)
	c := startServer(t, imp)
	correct, total := 0, 0
	for _, h := range ds.List(data.Testing) {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := c.Classify(s.Signal.Data, false)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Label == s.Label {
			correct++
		}
		total++
		if len(reply.Classification) != 2 {
			t.Fatalf("classification: %v", reply.Classification)
		}
	}
	if float64(correct)/float64(total) < 0.7 {
		t.Fatalf("socket accuracy %d/%d", correct, total)
	}
}

func TestClassifyQuantizedOverSocket(t *testing.T) {
	imp, ds := runnerImpulse(t)
	c := startServer(t, imp)
	s, err := ds.Get(ds.List(data.Testing)[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Classify(s.Signal.Data, true)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Label == "" {
		t.Fatal("empty label from quantized path")
	}
}

func TestMultipleClientsSequential(t *testing.T) {
	imp, ds := runnerImpulse(t)
	c1 := startServer(t, imp)
	s, err := ds.Get(ds.List(data.Testing)[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c1.Classify(s.Signal.Data, false); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave hello and classify.
	if _, err := c1.Hello(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Classify(s.Signal.Data, false); err != nil {
		t.Fatal(err)
	}
}

func TestHandleRequestDirect(t *testing.T) {
	imp, _ := runnerImpulse(t)
	srv, err := NewServer(imp)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown method.
	resp := srv.HandleRequest(Request{ID: 7})
	if resp.Success || resp.ID != 7 {
		t.Fatalf("unknown method response: %+v", resp)
	}
	// Hello direct.
	resp = srv.HandleRequest(Request{ID: 8, Hello: true})
	if !resp.Success || resp.Info == nil {
		t.Fatalf("hello: %+v", resp)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(core.New("empty")); err == nil {
		t.Error("accepted unconfigured impulse")
	}
}
