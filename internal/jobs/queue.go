package jobs

// fairQueue orders pending jobs by priority class and, within a class,
// round-robins across submission tags (projects) so one tenant's burst
// cannot starve another's jobs — the single-process analogue of the
// per-tenant fair scheduling a multi-tenant training cluster needs.
// All methods are called with the scheduler lock held.
type fairQueue struct {
	classes [numPriorities]tagRing
}

func (q *fairQueue) push(j *Job) {
	q.classes[j.Priority].push(j)
}

// pop returns the next job: the highest non-empty priority class wins
// (classOrder), and within it tags take strict turns. May return a job
// that was already cancelled while queued (finalized lazily); callers
// skip terminal jobs.
func (q *fairQueue) pop() *Job {
	for _, p := range classOrder {
		if j := q.classes[p].pop(); j != nil {
			return j
		}
	}
	return nil
}

// tagRing is one priority class: a FIFO per tag plus a rotation of the
// tags that currently have pending jobs.
type tagRing struct {
	buckets map[string][]*Job
	order   []string
	next    int
}

func (r *tagRing) push(j *Job) {
	if r.buckets == nil {
		r.buckets = map[string][]*Job{}
	}
	q, ok := r.buckets[j.tagKey]
	if !ok {
		r.order = append(r.order, j.tagKey)
	}
	r.buckets[j.tagKey] = append(q, j)
}

func (r *tagRing) pop() *Job {
	if len(r.order) == 0 {
		return nil
	}
	if r.next >= len(r.order) {
		r.next = 0
	}
	key := r.order[r.next]
	q := r.buckets[key]
	j := q[0]
	if len(q) == 1 {
		delete(r.buckets, key)
		// Removing the key leaves r.next pointing at the following
		// tag, preserving the rotation.
		r.order = append(r.order[:r.next], r.order[r.next+1:]...)
	} else {
		r.buckets[key] = q[1:]
		r.next++
	}
	return j
}
