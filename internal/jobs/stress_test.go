package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressMixedPrioritiesWithCancellationStorm runs N projects × M
// mixed-priority jobs through a small pool while a concurrent storm
// cancels a third of them mid-flight. It asserts the invariants the
// orchestration layer promises: every job (cancelled or not) reaches a
// terminal state, cancelled jobs never complete afterwards, the
// scheduler retains no more than its job cap, and the JobStore releases
// results in step with scheduler eviction. Run under -race in CI.
func TestStressMixedPrioritiesWithCancellationStorm(t *testing.T) {
	const (
		projects   = 4
		perProject = 25
		retained   = 32
	)
	s := NewScheduler(Config{
		MinWorkers: 2, MaxWorkers: 4,
		QueueSize:       projects * perProject,
		MaxRetainedJobs: retained,
		ScaleInterval:   time.Millisecond,
	})
	defer s.Shutdown()
	store := NewJobStore()
	s.SetEvictHook(store.Delete)

	// A third of the jobs (chosen up front) are storm targets: their
	// bodies block until their context is cancelled, so the storm
	// provably lands mid-flight regardless of machine load; the rest
	// do a sliver of work with occasional transient failures to keep
	// the retry path exercised under the same churn.
	rng := rand.New(rand.NewSource(7))
	prios := []Priority{PriorityInteractive, PriorityDefault, PriorityBatch}
	var jobs, cancelTargets []*Job
	var bodiesCompleted atomic.Int64
	for p := 0; p < projects; p++ {
		for i := 0; i < perProject; i++ {
			opts := SubmitOptions{
				Kind:       "stress",
				Tag:        fmt.Sprintf("project-%d", p),
				Priority:   prios[(p+i)%len(prios)],
				MaxRetries: 1,
			}
			target := rng.Intn(3) == 0
			var body JobFunc
			if target {
				body = func(ctx context.Context, j *Job) error {
					j.SetProgress("work", 10)
					<-ctx.Done() // only cancellation releases this job
					return ctx.Err()
				}
			} else {
				body = func(ctx context.Context, j *Job) error {
					j.SetProgress("work", 10)
					if j.Attempt() == 0 && len(j.ID)%7 == 0 {
						return Transient(errors.New("flaky backend"))
					}
					j.SetProgress("work", 100)
					bodiesCompleted.Add(1)
					return nil
				}
			}
			j, err := s.SubmitJob(opts, body)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
			if target {
				cancelTargets = append(cancelTargets, j)
			}
		}
	}

	// Cancellation storm from multiple goroutines, mid-flight.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cancelTargets); i += 4 {
				s.Cancel(cancelTargets[i].ID)
			}
		}(w)
	}
	wg.Wait()

	// Every job — cancelled, retried or plain — reaches a terminal
	// state; a cancelled-while-queued job must get there within one
	// scheduler pass, which the bounded wait below enforces globally.
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s never terminal (status %s)", j.ID, j.Status())
		}
		if st := j.Status(); !st.Terminal() {
			t.Fatalf("job %s done with non-terminal state %s", j.ID, st)
		}
	}
	// Every storm target reached cancelled — whether it was hit while
	// queued (instant) or running (context observed).
	for _, j := range cancelTargets {
		if st := j.Status(); st != Cancelled {
			t.Fatalf("cancel target %s ended as %s", j.ID, st)
		}
	}
	m := s.Metrics()
	if m.Queued != 0 {
		t.Fatalf("queue not drained: %d", m.Queued)
	}
	if m.CancelledN != int64(len(cancelTargets)) {
		t.Fatalf("cancelled %d, want %d targets", m.CancelledN, len(cancelTargets))
	}
	if total := m.Completed + m.FailedN + m.CancelledN; total != projects*perProject {
		t.Fatalf("terminal accounting %d, want %d (completed=%d failed=%d cancelled=%d)",
			total, projects*perProject, m.Completed, m.FailedN, m.CancelledN)
	}
	// No leaks: retention cap holds and the JobStore tracks it.
	if n := len(s.List()); n > retained {
		t.Fatalf("scheduler retains %d jobs, cap %d", n, retained)
	}
	if store.Len() > retained {
		t.Fatalf("job store leaked: %d results for %d retained jobs", store.Len(), retained)
	}
}

// TestFairnessBoundTwoProjects is the acceptance bound: two projects
// submit 50 equal-priority jobs each, and at no point may one project's
// completion count trail the other's by more than the worker-pool size.
func TestFairnessBoundTwoProjects(t *testing.T) {
	const (
		perProject = 50
		workers    = 4
	)
	s := NewScheduler(Config{
		MinWorkers: workers, MaxWorkers: workers,
		QueueSize:     2*perProject + workers,
		ScaleInterval: time.Hour,
	})
	defer s.Shutdown()

	// Pin every worker on a gate so the full 100-job backlog is queued
	// before any fairness-relevant pop happens.
	gate := make(chan struct{})
	var gateStarted sync.WaitGroup
	gateStarted.Add(workers)
	for i := 0; i < workers; i++ {
		var once sync.Once
		if _, err := s.Submit("gate", func(ctx context.Context, j *Job) error {
			once.Do(gateStarted.Done)
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	gateStarted.Wait()

	var mu sync.Mutex
	counts := map[string]int{}
	var maxSkew int
	var jobs []*Job
	for i := 0; i < perProject; i++ {
		for _, project := range []string{"A", "B"} {
			project := project
			j, err := s.SubmitJob(SubmitOptions{Kind: "fair", Tag: project, Priority: PriorityDefault},
				func(ctx context.Context, j *Job) error {
					mu.Lock()
					counts[project]++
					skew := counts["A"] - counts["B"]
					if skew < 0 {
						skew = -skew
					}
					if skew > maxSkew {
						maxSkew = skew
					}
					mu.Unlock()
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	close(gate)
	for _, j := range jobs {
		if _, err := s.Wait(j.ID, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["A"] != perProject || counts["B"] != perProject {
		t.Fatalf("completions A=%d B=%d", counts["A"], counts["B"])
	}
	if maxSkew > workers {
		t.Fatalf("fairness violated: completion skew reached %d with a %d-worker pool", maxSkew, workers)
	}
}
