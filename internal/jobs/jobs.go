// Package jobs implements the compute-orchestration layer of the
// platform (paper Sec. 4.10): containerised-style jobs (training, tuner
// runs, deployments) executed by an autoscaling worker pool — a single-
// process stand-in for the AWS EKS / Kubernetes deployment the paper
// describes, preserving the same behaviours: a work queue, dynamic
// scale-up under load, scale-down when idle, and per-job logs and status.
package jobs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Status is a job lifecycle state.
type Status string

// Job states.
const (
	Queued   Status = "queued"
	Running  Status = "running"
	Finished Status = "finished"
	Failed   Status = "failed"
)

// JobFunc is the work body. It receives its own *Job — the ID is minted
// by Submit before the body can run, so the body can key results by
// job.ID and stream logs through job.Logf without any out-of-band
// channel handshake.
type JobFunc func(ctx context.Context, job *Job) error

// Job is one unit of scheduled work.
type Job struct {
	// ID is unique within the scheduler.
	ID string
	// Kind labels the workload ("training", "tuner", ...).
	Kind string
	// Tag is an opaque owner reference supplied at submission (e.g. a
	// project ID for access control). It is set before the job becomes
	// visible through Get, so authorization checks can never observe a
	// job without its tag.
	Tag any

	mu         sync.Mutex
	status     Status
	err        string
	logs       []string
	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time
	done       chan struct{}
	fn         JobFunc
}

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure message, if any.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Logs returns a copy of the log lines so far.
func (j *Job) Logs() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.logs...)
}

// Duration returns the job runtime (so far, for running jobs).
func (j *Job) Duration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.startedAt.IsZero() {
		return 0
	}
	if j.finishedAt.IsZero() {
		return time.Since(j.startedAt)
	}
	return j.finishedAt.Sub(j.startedAt)
}

// Logf appends a line to the job's log stream.
func (j *Job) Logf(format string, args ...any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.logs = append(j.logs, fmt.Sprintf(format, args...))
}

// Done returns a channel closed when the job reaches a terminal state
// (Finished or Failed). It lets callers select on job completion —
// the primitive behind the API's long-poll endpoint.
func (j *Job) Done() <-chan struct{} { return j.done }

// Metrics is a point-in-time scheduler snapshot.
type Metrics struct {
	Workers   int
	Queued    int
	Completed int64
	FailedN   int64
	ScaleUps  int64
	// PeakWorkers is the high-water worker count.
	PeakWorkers int
}

// Config tunes the scheduler.
type Config struct {
	// MinWorkers are always running (default 1).
	MinWorkers int
	// MaxWorkers bounds scale-up (default 4).
	MaxWorkers int
	// QueueSize bounds pending jobs (default 64).
	QueueSize int
	// ScaleInterval is the autoscaler period (default 50ms).
	ScaleInterval time.Duration
	// MaxRetainedJobs bounds how many jobs (with their log streams)
	// stay resident; the oldest terminal jobs evict first, mirroring
	// the JobStore result cap (default 1024).
	MaxRetainedJobs int
}

func (c Config) withDefaults() Config {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers + 3
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = 50 * time.Millisecond
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	return c
}

// Scheduler runs jobs on an autoscaling worker pool.
type Scheduler struct {
	cfg   Config
	queue chan *Job

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	workers int
	peak    int
	nextID  int64
	closed  bool

	// evictHook, when set, is invoked (outside the scheduler lock)
	// with each job ID dropped by retention eviction, so co-located
	// state (e.g. a JobStore result) can be released with the job.
	evictHook func(jobID string)

	completed atomic.Int64
	failed    atomic.Int64
	scaleUps  atomic.Int64
	busy      atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewScheduler starts the pool with MinWorkers workers and the autoscaler.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:    cfg,
		queue:  make(chan *Job, cfg.QueueSize),
		jobs:   map[string]*Job{},
		ctx:    ctx,
		cancel: cancel,
	}
	for i := 0; i < cfg.MinWorkers; i++ {
		s.addWorker()
	}
	s.wg.Add(1)
	go s.autoscale()
	return s
}

func (s *Scheduler) addWorker() {
	s.mu.Lock()
	if s.workers >= s.cfg.MaxWorkers || s.closed {
		s.mu.Unlock()
		return
	}
	s.workers++
	if s.workers > s.peak {
		s.peak = s.workers
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.worker()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case job, ok := <-s.queue:
			if !ok {
				return
			}
			s.busy.Add(1)
			s.run(job)
			s.busy.Add(-1)
		}
	}
}

func (s *Scheduler) run(job *Job) {
	job.mu.Lock()
	job.status = Running
	job.startedAt = time.Now()
	job.mu.Unlock()

	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		return job.fn(s.ctx, job)
	}()

	job.mu.Lock()
	job.finishedAt = time.Now()
	if err != nil {
		job.status = Failed
		job.err = err.Error()
		s.failed.Add(1)
	} else {
		job.status = Finished
		s.completed.Add(1)
	}
	// Release the body closure: it can capture large state (model
	// weights, request payloads) that would otherwise stay pinned for
	// as long as the terminal job is retained.
	job.fn = nil
	close(job.done)
	job.mu.Unlock()
}

// autoscale adds a worker whenever jobs are waiting and capacity remains —
// the "dynamically scale compute resources based on workload" behaviour.
func (s *Scheduler) autoscale() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ScaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			if len(s.queue) > 0 {
				s.mu.Lock()
				canGrow := s.workers < s.cfg.MaxWorkers
				s.mu.Unlock()
				if canGrow {
					s.scaleUps.Add(1)
					s.addWorker()
				}
			}
		}
	}
}

// Submit enqueues a job. It fails when the queue is full or the
// scheduler is shut down.
func (s *Scheduler) Submit(kind string, fn JobFunc) (*Job, error) {
	return s.SubmitTagged(kind, nil, fn)
}

// SubmitTagged enqueues a job carrying an opaque owner tag. The tag is
// attached under the scheduler lock before the job is registered, so a
// concurrent Get can never return the job untagged.
func (s *Scheduler) SubmitTagged(kind string, tag any, fn JobFunc) (*Job, error) {
	if fn == nil {
		return nil, fmt.Errorf("jobs: nil job body")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("jobs: scheduler is shut down")
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Kind:      kind,
		Tag:       tag,
		status:    Queued,
		createdAt: time.Now(),
		done:      make(chan struct{}),
		fn:        fn,
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()

	select {
	case s.queue <- job:
		// Evict only after the job is truly admitted — a queue-full
		// rollback must not have cost an old job its record.
		s.mu.Lock()
		evicted := s.evictLocked()
		hook := s.evictHook
		s.mu.Unlock()
		if hook != nil {
			for _, id := range evicted {
				hook(id)
			}
		}
		return job, nil
	default:
		s.mu.Lock()
		delete(s.jobs, job.ID)
		// Remove this job's own order entry — another Submit may have
		// appended since we unlocked, so blind truncation could drop a
		// live job's ID instead.
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.order[i] == job.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("jobs: queue full (%d pending)", s.cfg.QueueSize)
	}
}

// terminal reports whether the job has stopped running.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == Finished || j.status == Failed
}

// SetEvictHook registers a callback receiving the ID of every job
// dropped by retention eviction (called outside the scheduler lock).
// The API server uses it to release the job's stored result in step.
func (s *Scheduler) SetEvictHook(fn func(jobID string)) {
	s.mu.Lock()
	s.evictHook = fn
	s.mu.Unlock()
}

// evictLocked drops the oldest terminal jobs beyond MaxRetainedJobs so
// a long-running scheduler's memory stays bounded, returning the
// evicted IDs. Queued and running jobs are never evicted. Caller holds
// s.mu (s.mu → job.mu ordering is safe: no path locks them in reverse).
func (s *Scheduler) evictLocked() []string {
	excess := len(s.order) - s.cfg.MaxRetainedJobs
	if excess <= 0 {
		return nil
	}
	var evicted []string
	kept := make([]string, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.terminal() {
			delete(s.jobs, id)
			evicted = append(evicted, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return evicted
}

// Get returns a job by ID.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: no job %s", id)
	}
	return j, nil
}

// List returns all jobs in submission order.
func (s *Scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Wait blocks until the job completes or the timeout elapses.
func (s *Scheduler) Wait(id string, timeout time.Duration) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("jobs: %s did not finish within %v", id, timeout)
	}
}

// Metrics returns a snapshot of pool state.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	workers := s.workers
	peak := s.peak
	s.mu.Unlock()
	return Metrics{
		Workers:     workers,
		Queued:      len(s.queue),
		Completed:   s.completed.Load(),
		FailedN:     s.failed.Load(),
		ScaleUps:    s.scaleUps.Load(),
		PeakWorkers: peak,
	}
}

// Shutdown stops accepting jobs, cancels the context and waits for
// workers to drain.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}
