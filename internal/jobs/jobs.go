// Package jobs implements the compute-orchestration layer of the
// platform (paper Sec. 4.10): containerised-style jobs (training, tuner
// runs, deployments) executed by an autoscaling worker pool — a single-
// process stand-in for the AWS EKS / Kubernetes deployment the paper
// describes. Beyond the work queue and dynamic scale-up the paper calls
// out, the scheduler provides priority classes (interactive work ahead
// of batch sweeps), per-project round-robin fairness with queue quotas
// so one tenant cannot starve the cluster, cooperative cancellation, a
// structured progress model, bounded retries for transient failures and
// a per-job ordered event log that backs live streaming APIs.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgepulse/internal/faults"
)

// FaultExec is the registered fault point fired before each job body
// runs; chaos tests arm it (with faults.Arm, optionally wrapping the
// error in Transient) to force execution failures and retries.
const FaultExec = "jobs.exec"

// Status is a job lifecycle state.
type Status string

// Job states. The lifecycle is
// queued → running → {finished | failed | cancelled}, with a transient
// failure under a retry budget looping running → queued.
const (
	Queued    Status = "queued"
	Running   Status = "running"
	Finished  Status = "finished"
	Failed    Status = "failed"
	Cancelled Status = "cancelled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == Finished || s == Failed || s == Cancelled
}

// Priority orders jobs across classes: all pending interactive jobs run
// before any default job, which run before any batch job. Within a
// class, projects take strict round-robin turns.
type Priority int

// Priority classes. The zero value is deliberately PriorityDefault, so
// a SubmitOptions built without setting Priority cannot accidentally
// jump the whole queue.
const (
	// PriorityDefault is the ordinary class (and the zero value).
	PriorityDefault Priority = iota
	// PriorityInteractive is for jobs a user is actively waiting on
	// (training runs behind the Studio UI); it runs before everything
	// else.
	PriorityInteractive
	// PriorityBatch is for long sweeps (tuner searches) that should
	// yield to all other work.
	PriorityBatch
	numPriorities
)

// classOrder is the dispatch order of the priority classes, highest
// first (independent of the constants' numeric values).
var classOrder = [...]Priority{PriorityInteractive, PriorityDefault, PriorityBatch}

// String returns the wire name of the priority class.
func (p Priority) String() string {
	switch p {
	case PriorityInteractive:
		return "interactive"
	case PriorityDefault:
		return "default"
	case PriorityBatch:
		return "batch"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// ParsePriority maps a wire name back to its class.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "interactive":
		return PriorityInteractive, nil
	case "default", "":
		return PriorityDefault, nil
	case "batch":
		return PriorityBatch, nil
	default:
		return 0, fmt.Errorf("jobs: unknown priority %q", s)
	}
}

// Sentinel submission failures, matched with errors.Is.
var (
	// ErrQueueFull means the scheduler-wide pending bound was hit.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrQuotaExceeded means the submitting tag (project) already has
	// its full per-tenant share of the queue pending.
	ErrQuotaExceeded = errors.New("jobs: per-project queue quota exceeded")
	// ErrShutdown means the scheduler no longer accepts jobs.
	ErrShutdown = errors.New("jobs: scheduler is shut down")
)

// transientError marks a failure as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps an error to mark the failure as transient: a job body
// returning it is re-queued (at the back of its project's FIFO) until
// its MaxRetries budget is spent. nil stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether the error carries the Transient marker.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// JobFunc is the work body. It receives its own *Job — the ID is minted
// by Submit before the body can run, so the body can key results by
// job.ID and stream progress through job.SetProgress / job.Logf without
// any out-of-band channel handshake. ctx is cancelled when the job is
// cancelled or the scheduler shuts down; bodies must observe it.
type JobFunc func(ctx context.Context, job *Job) error

// Job is one unit of scheduled work.
type Job struct {
	// ID is unique within the scheduler.
	ID string
	// Kind labels the workload ("training", "tuner", ...).
	Kind string
	// Tag is an opaque owner reference supplied at submission (e.g. a
	// project ID for access control and fairness). It is set before the
	// job becomes visible through Get, so authorization checks can
	// never observe a job without its tag.
	Tag any
	// Priority is the job's scheduling class.
	Priority Priority

	// tagKey is Tag rendered to the fairness/quota key.
	tagKey string
	// now is the scheduler's clock, captured at submission.
	now func() time.Time

	mu              sync.Mutex
	status          Status
	err             string
	logs            []string
	stage           string
	progress        float64
	attempt         int
	maxRetries      int
	claimed         bool
	cancelRequested bool
	cancelFn        context.CancelFunc
	createdAt       time.Time
	enqueuedAt      time.Time
	startedAt       time.Time
	finishedAt      time.Time
	done            chan struct{}
	fn              JobFunc

	// Event log (events.go).
	eventSeq int64
	events   []Event
	subs     []*subscriber

	// Watchdog state: lastActivity is the time of the newest non-stalled
	// event; stalled is set by MarkStalled and cleared by fresh activity.
	lastActivity time.Time
	stalled      bool
}

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure/cancellation message, if any.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Logs returns a copy of the log lines so far.
func (j *Job) Logs() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.logs...)
}

// Attempt returns the retry attempt the job is on (0 = first run).
func (j *Job) Attempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// Progress returns the latest structured progress report.
func (j *Job) Progress() (stage string, pct float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stage, j.progress
}

// Duration returns the job runtime (so far, for running jobs).
func (j *Job) Duration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.startedAt.IsZero() {
		return 0
	}
	if j.finishedAt.IsZero() {
		return j.now().Sub(j.startedAt)
	}
	return j.finishedAt.Sub(j.startedAt)
}

// Logf appends a line to the job's log stream and event log.
func (j *Job) Logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.logs = append(j.logs, line)
	j.emitLocked(Event{Type: EventLog, Message: line})
}

// SetProgress records structured progress — the current stage and its
// percent complete (clamped to [0,100]) — replacing ad-hoc log parsing.
// Each call appends an EventProgress entry to the job's event log.
func (j *Job) SetProgress(stage string, pct float64) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stage = stage
	j.progress = pct
	j.emitLocked(Event{Type: EventProgress, Stage: stage, Pct: pct})
}

// LastActivity returns the time of the job's most recent event —
// progress, log line or state transition. The watchdog compares it
// against its no-progress window to detect stuck jobs.
func (j *Job) LastActivity() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lastActivity.IsZero() {
		return j.createdAt
	}
	return j.lastActivity
}

// Stalled reports whether the watchdog has flagged the job and no
// activity has cleared the flag since.
func (j *Job) Stalled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stalled
}

// MarkStalled flags a running job as stalled, emitting an EventStalled
// entry (with msg as the reason) to its event log and live subscribers.
// It reports false when the job is not running or already flagged, so a
// sweeping watchdog raises at most one flag per silence.
func (j *Job) MarkStalled(msg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != Running || j.stalled {
		return false
	}
	j.emitLocked(Event{Type: EventStalled, Message: msg})
	j.stalled = true
	return true
}

// Done returns a channel closed when the job reaches a terminal state
// (Finished, Failed or Cancelled). It lets callers select on job
// completion — the primitive behind the API's long-poll endpoint.
// A transient-failure retry does not close it.
func (j *Job) Done() <-chan struct{} { return j.done }

// terminal reports whether the job has stopped for good.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

// finalizeLocked moves the job to a terminal state: stamps times, emits
// the terminal state event, ends subscriptions and closes done. Caller
// holds j.mu; the body closure is released so captured state (model
// weights, request payloads) does not stay pinned while the terminal
// job is retained.
func (j *Job) finalizeLocked(status Status, msg string, at time.Time) {
	j.status = status
	j.err = msg
	j.finishedAt = at
	j.fn = nil
	j.cancelFn = nil
	j.emitLocked(Event{Type: EventState, Status: status, Message: msg})
	j.closeSubsLocked()
	close(j.done)
}

// KindMetrics aggregates completed runs of one job kind.
type KindMetrics struct {
	Kind string
	// Count is the number of terminal runs (finished, failed or
	// cancelled-while-running; retries count once, at the final run).
	Count int64
	// AvgWaitMS is the mean queue wait of the final attempt.
	AvgWaitMS float64
	// AvgRunMS is the mean execution time of the final attempt.
	AvgRunMS float64
}

// Metrics is a point-in-time scheduler snapshot.
type Metrics struct {
	Workers   int
	Queued    int
	Completed int64
	FailedN   int64
	// CancelledN counts jobs that reached the cancelled state.
	CancelledN int64
	// Retries counts transient-failure re-queues.
	Retries  int64
	ScaleUps int64
	// PeakWorkers is the high-water worker count.
	PeakWorkers int
	// QueuedByPriority breaks the pending depth down per class,
	// indexed by Priority.
	QueuedByPriority [int(numPriorities)]int
	// Kinds reports per-kind wait/run latency, sorted by kind.
	Kinds []KindMetrics
}

// Config tunes the scheduler.
type Config struct {
	// MinWorkers are always running (default 1).
	MinWorkers int
	// MaxWorkers bounds scale-up (default 4).
	MaxWorkers int
	// QueueSize bounds pending jobs across all tenants (default 64).
	QueueSize int
	// MaxQueuedPerTag bounds pending jobs per submission tag, so one
	// tenant cannot fill the whole queue (default: QueueSize, i.e. no
	// extra bound until configured lower).
	MaxQueuedPerTag int
	// ScaleInterval is the fallback autoscaler period; scale-up is
	// also triggered inline by submissions (default 50ms).
	ScaleInterval time.Duration
	// MaxRetainedJobs bounds how many jobs (with their log streams)
	// stay resident; the oldest terminal jobs evict first, mirroring
	// the JobStore result cap (default 1024).
	MaxRetainedJobs int
	// Clock substitutes the time source (default time.Now). Tests
	// inject a fake clock to make durations and event timestamps
	// deterministic.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers + 3
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxQueuedPerTag <= 0 || c.MaxQueuedPerTag > c.QueueSize {
		c.MaxQueuedPerTag = c.QueueSize
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = 50 * time.Millisecond
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// kindStats accumulates terminal-run latency per kind (guarded by s.mu).
type kindStats struct {
	count  int64
	waitNS int64
	runNS  int64
}

// Scheduler runs jobs on an autoscaling worker pool with priority and
// per-tag fairness.
type Scheduler struct {
	cfg Config
	now func() time.Time

	mu   sync.Mutex
	cond *sync.Cond
	q    fairQueue
	// pending counts queued (not yet claimed, not cancelled) jobs.
	pending       int
	pendingByPrio [int(numPriorities)]int
	pendingByTag  map[string]int
	jobs          map[string]*Job
	order         []string
	workers       int
	peak          int
	nextID        int64
	closed        bool
	kinds         map[string]*kindStats

	// evictHook, when set, is invoked (outside the scheduler lock)
	// with each job ID dropped by retention eviction, so co-located
	// state (e.g. a JobStore result) can be released with the job.
	evictHook func(jobID string)

	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	retries   atomic.Int64
	scaleUps  atomic.Int64
	busy      atomic.Int64

	ctx       context.Context
	ctxCancel context.CancelFunc
	wg        sync.WaitGroup
}

// NewScheduler starts the pool with MinWorkers workers and the autoscaler.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:          cfg,
		now:          cfg.Clock,
		pendingByTag: map[string]int{},
		jobs:         map[string]*Job{},
		kinds:        map[string]*kindStats{},
		ctx:          ctx,
		ctxCancel:    cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	s.mu.Lock()
	for i := 0; i < cfg.MinWorkers; i++ {
		s.addWorkerLocked()
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.autoscale()
	return s
}

// addWorkerLocked grows the pool by one worker; caller holds s.mu.
func (s *Scheduler) addWorkerLocked() bool {
	if s.workers >= s.cfg.MaxWorkers || s.closed {
		return false
	}
	s.workers++
	if s.workers > s.peak {
		s.peak = s.workers
	}
	s.wg.Add(1)
	go s.worker()
	return true
}

// scaleLocked adds a worker when jobs are pending beyond the idle
// capacity — the "dynamically scale compute resources based on
// workload" behaviour, triggered inline at submission so scale-up is
// deterministic rather than timer-dependent.
func (s *Scheduler) scaleLocked() {
	idle := s.workers - int(s.busy.Load())
	if s.pending > idle && s.addWorkerLocked() {
		s.scaleUps.Add(1)
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		job := s.pop()
		if job == nil {
			return
		}
		s.busy.Add(1)
		s.run(job)
		s.busy.Add(-1)
	}
}

// pop blocks until a runnable job is available or the scheduler shuts
// down (nil). Jobs cancelled while queued were finalized eagerly and
// are skipped here.
func (s *Scheduler) pop() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for {
			j := s.q.pop()
			if j == nil {
				break
			}
			j.mu.Lock()
			if j.status != Queued {
				// Cancelled while queued; its pending counts were
				// already released by Cancel.
				j.mu.Unlock()
				continue
			}
			j.claimed = true
			j.mu.Unlock()
			s.releasePendingLocked(j)
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// releasePendingLocked drops the job from the pending accounting;
// caller holds s.mu.
func (s *Scheduler) releasePendingLocked(j *Job) {
	s.pending--
	s.pendingByPrio[j.Priority]--
	if n := s.pendingByTag[j.tagKey] - 1; n > 0 {
		s.pendingByTag[j.tagKey] = n
	} else {
		delete(s.pendingByTag, j.tagKey)
	}
}

// enqueueLocked admits a (new or retried) job to the fair queue;
// caller holds s.mu.
func (s *Scheduler) enqueueLocked(j *Job) {
	j.enqueuedAt = s.now()
	s.q.push(j)
	s.pending++
	s.pendingByPrio[j.Priority]++
	s.pendingByTag[j.tagKey]++
	s.scaleLocked()
	s.cond.Signal()
}

func (s *Scheduler) run(job *Job) {
	job.mu.Lock()
	if job.status != Queued {
		job.mu.Unlock()
		return
	}
	if job.cancelRequested {
		// Cancelled in the pop→run window.
		job.finalizeLocked(Cancelled, "cancelled before start", s.now())
		s.cancelled.Add(1)
		job.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	job.status = Running
	job.startedAt = s.now()
	job.cancelFn = cancel
	job.emitLocked(Event{Type: EventState, Status: Running})
	fn := job.fn
	job.mu.Unlock()

	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		// Chaos hook: an armed FaultExec preempts the body, exercising
		// the failure/retry paths without a cooperating job function.
		if ferr := faults.Inject(FaultExec); ferr != nil {
			return ferr
		}
		return fn(ctx, job)
	}()
	cancel()

	s.mu.Lock()
	job.mu.Lock()
	at := s.now()
	switch {
	case err == nil:
		// A body that returns success is Finished even when a cancel
		// raced in after its side effects committed — reporting such a
		// run as cancelled would misdescribe state that already exists
		// (a stored result, an updated project model).
		s.recordKindLocked(job, at)
		job.finalizeLocked(Finished, "", at)
		s.completed.Add(1)
	case job.cancelRequested:
		s.recordKindLocked(job, at)
		job.finalizeLocked(Cancelled, err.Error(), at)
		s.cancelled.Add(1)
	case IsTransient(err) && job.attempt < job.maxRetries && !s.closed:
		job.attempt++
		job.status = Queued
		job.claimed = false
		job.cancelFn = nil
		job.emitLocked(Event{
			Type: EventState, Status: Queued,
			Message: "retrying after transient failure: " + err.Error(),
		})
		s.retries.Add(1)
		s.enqueueLocked(job)
	default:
		s.recordKindLocked(job, at)
		job.finalizeLocked(Failed, err.Error(), at)
		s.failed.Add(1)
	}
	job.mu.Unlock()
	// Retention eviction also runs on terminal transitions (not just
	// submissions), so an idle scheduler does not pin a whole backlog
	// of finished jobs until the next submit.
	evicted := s.evictLocked()
	hook := s.evictHook
	s.mu.Unlock()
	if hook != nil {
		for _, id := range evicted {
			hook(id)
		}
	}
}

// recordKindLocked accumulates the final attempt's wait/run latency.
// Caller holds s.mu and job.mu.
func (s *Scheduler) recordKindLocked(job *Job, finished time.Time) {
	st := s.kinds[job.Kind]
	if st == nil {
		st = &kindStats{}
		s.kinds[job.Kind] = st
	}
	st.count++
	st.waitNS += job.startedAt.Sub(job.enqueuedAt).Nanoseconds()
	st.runNS += finished.Sub(job.startedAt).Nanoseconds()
}

// autoscale is the fallback scale-up path for jobs that outlive a
// submission burst (inline scaling at Submit covers the common case).
func (s *Scheduler) autoscale() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ScaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			s.mu.Lock()
			if s.pending > 0 {
				s.scaleLocked()
			}
			s.mu.Unlock()
		}
	}
}

// SubmitOptions configures a job submission.
type SubmitOptions struct {
	// Kind labels the workload ("training", "tuner", ...).
	Kind string
	// Tag is the opaque owner reference (project ID); it is also the
	// fairness/quota key.
	Tag any
	// Priority selects the scheduling class; the zero value is
	// PriorityDefault.
	Priority Priority
	// MaxRetries bounds transient-failure re-queues (0 = no retry).
	MaxRetries int
}

// maxRetryBudget caps MaxRetries so a buggy transient classifier
// cannot loop a job forever.
const maxRetryBudget = 8

// tagKey renders a submission tag to the fairness/quota key.
func tagKey(tag any) string {
	if tag == nil {
		return ""
	}
	return fmt.Sprintf("%v", tag)
}

// Submit enqueues an untagged default-priority job. It fails when the
// queue is full or the scheduler is shut down.
func (s *Scheduler) Submit(kind string, fn JobFunc) (*Job, error) {
	return s.SubmitJob(SubmitOptions{Kind: kind, Priority: PriorityDefault}, fn)
}

// SubmitTagged enqueues a default-priority job carrying an opaque owner
// tag. The tag is attached under the scheduler lock before the job is
// registered, so a concurrent Get can never return the job untagged.
func (s *Scheduler) SubmitTagged(kind string, tag any, fn JobFunc) (*Job, error) {
	return s.SubmitJob(SubmitOptions{Kind: kind, Tag: tag, Priority: PriorityDefault}, fn)
}

// SubmitJob enqueues a job with explicit scheduling options. Admission
// is bounded twice: ErrQueueFull when the scheduler-wide pending bound
// is hit, ErrQuotaExceeded when the tag already has its per-tenant
// share pending (match with errors.Is).
func (s *Scheduler) SubmitJob(opts SubmitOptions, fn JobFunc) (*Job, error) {
	if fn == nil {
		return nil, fmt.Errorf("jobs: nil job body")
	}
	if opts.Priority < 0 || opts.Priority >= numPriorities {
		return nil, fmt.Errorf("jobs: invalid priority %d", int(opts.Priority))
	}
	retries := opts.MaxRetries
	if retries < 0 {
		retries = 0
	}
	if retries > maxRetryBudget {
		retries = maxRetryBudget
	}
	key := tagKey(opts.Tag)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	if s.pending >= s.cfg.QueueSize {
		pending := s.pending
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (%d pending)", ErrQueueFull, pending)
	}
	if s.pendingByTag[key] >= s.cfg.MaxQueuedPerTag {
		n := s.pendingByTag[key]
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (%d pending for %q)", ErrQuotaExceeded, n, key)
	}
	s.nextID++
	job := &Job{
		ID:         fmt.Sprintf("job-%d", s.nextID),
		Kind:       opts.Kind,
		Tag:        opts.Tag,
		Priority:   opts.Priority,
		tagKey:     key,
		now:        s.now,
		status:     Queued,
		maxRetries: retries,
		createdAt:  s.now(),
		done:       make(chan struct{}),
		fn:         fn,
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	job.mu.Lock()
	job.emitLocked(Event{Type: EventState, Status: Queued})
	job.mu.Unlock()
	s.enqueueLocked(job)
	evicted := s.evictLocked()
	hook := s.evictHook
	s.mu.Unlock()

	if hook != nil {
		for _, id := range evicted {
			hook(id)
		}
	}
	return job, nil
}

// Cancel requests cancellation of a job. A still-queued job reaches the
// cancelled terminal state immediately; a running job has its context
// cancelled and reaches cancelled as soon as its body observes the
// context and returns an error (a transient-retry budget never
// resurrects a cancelled job). A body that completes successfully
// despite the request finalizes as finished — its side effects already
// committed. cancelled reports whether this call initiated a
// cancellation — false when the job was already terminal.
func (s *Scheduler) Cancel(id string) (job *Job, cancelled bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false, fmt.Errorf("jobs: no job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.status == Queued && !j.claimed:
		j.cancelRequested = true
		s.releasePendingLocked(j)
		j.finalizeLocked(Cancelled, "cancelled while queued", s.now())
		s.cancelled.Add(1)
		return j, true, nil
	case !j.status.Terminal():
		// Running, or claimed and about to run: cancel cooperatively.
		j.cancelRequested = true
		if j.cancelFn != nil {
			j.cancelFn()
		}
		return j, true, nil
	default:
		return j, false, nil
	}
}

// SetEvictHook registers a callback receiving the ID of every job
// dropped by retention eviction (called outside the scheduler lock).
// The API server uses it to release the job's stored result in step.
func (s *Scheduler) SetEvictHook(fn func(jobID string)) {
	s.mu.Lock()
	s.evictHook = fn
	s.mu.Unlock()
}

// evictLocked drops the oldest terminal jobs beyond MaxRetainedJobs so
// a long-running scheduler's memory stays bounded, returning the
// evicted IDs. Queued and running jobs are never evicted. Caller holds
// s.mu (s.mu → job.mu ordering is safe: no path locks them in reverse).
func (s *Scheduler) evictLocked() []string {
	excess := len(s.order) - s.cfg.MaxRetainedJobs
	if excess <= 0 {
		return nil
	}
	var evicted []string
	kept := make([]string, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.terminal() {
			delete(s.jobs, id)
			evicted = append(evicted, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return evicted
}

// Get returns a job by ID.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: no job %s", id)
	}
	return j, nil
}

// List returns all jobs in submission order.
func (s *Scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Wait blocks until the job completes or the timeout elapses.
func (s *Scheduler) Wait(id string, timeout time.Duration) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("jobs: %s did not finish within %v", id, timeout)
	}
}

// Accepting reports whether the scheduler still admits submissions —
// the readiness-probe view of Shutdown's closed flag.
func (s *Scheduler) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// QueueDepth returns the pending job count and the configured queue
// bound — the cheap accessor the admission gate samples, avoiding the
// full Metrics snapshot on the request path.
func (s *Scheduler) QueueDepth() (pending, capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending, s.cfg.QueueSize
}

// Metrics returns a snapshot of pool state.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Workers:          s.workers,
		PeakWorkers:      s.peak,
		Queued:           s.pending,
		QueuedByPriority: s.pendingByPrio,
	}
	kinds := make([]KindMetrics, 0, len(s.kinds))
	for kind, st := range s.kinds {
		kinds = append(kinds, KindMetrics{
			Kind:      kind,
			Count:     st.count,
			AvgWaitMS: float64(st.waitNS) / float64(st.count) / 1e6,
			AvgRunMS:  float64(st.runNS) / float64(st.count) / 1e6,
		})
	}
	s.mu.Unlock()
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].Kind < kinds[j].Kind })
	m.Kinds = kinds
	m.Completed = s.completed.Load()
	m.FailedN = s.failed.Load()
	m.CancelledN = s.cancelled.Load()
	m.Retries = s.retries.Load()
	m.ScaleUps = s.scaleUps.Load()
	return m
}

// Shutdown stops accepting jobs, finalizes still-queued jobs as
// cancelled (so no job is left in a non-terminal state), cancels the
// running jobs' contexts and waits for workers to drain.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for {
		j := s.q.pop()
		if j == nil {
			break
		}
		j.mu.Lock()
		if j.status == Queued && !j.claimed {
			j.cancelRequested = true
			s.releasePendingLocked(j)
			j.finalizeLocked(Cancelled, "scheduler shut down", s.now())
			s.cancelled.Add(1)
		}
		j.mu.Unlock()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ctxCancel()
	s.wg.Wait()
}
