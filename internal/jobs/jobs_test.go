package jobs

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndWait(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	var ran atomic.Bool
	j, err := s.Submit("training", func(ctx context.Context, j *Job) error {
		j.Logf("epoch %d done", 1)
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ran.Load() || done.Status() != Finished {
		t.Fatalf("status %s", done.Status())
	}
	logs := done.Logs()
	if len(logs) != 1 || logs[0] != "epoch 1 done" {
		t.Fatalf("logs: %v", logs)
	}
	if done.Duration() <= 0 {
		t.Error("zero duration")
	}
}

func TestFailedJob(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.Submit("training", func(ctx context.Context, j *Job) error {
		return fmt.Errorf("out of memory")
	})
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Failed || done.Err() != "out of memory" {
		t.Fatalf("status %s err %q", done.Status(), done.Err())
	}
	m := s.Metrics()
	if m.FailedN != 1 {
		t.Errorf("failed count %d", m.FailedN)
	}
}

func TestPanicIsolatedToJob(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.Submit("training", func(ctx context.Context, j *Job) error {
		panic("kaboom")
	})
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Failed {
		t.Fatal("panic not recorded as failure")
	}
	// Scheduler still works afterwards.
	j2, _ := s.Submit("training", func(ctx context.Context, j *Job) error { return nil })
	if _, err := s.Wait(j2.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestAutoscaleUnderLoad(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 4, ScaleInterval: 5 * time.Millisecond})
	defer s.Shutdown()
	block := make(chan struct{})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit("slow", func(ctx context.Context, j *Job) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Give the autoscaler time to react to the backlog.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().Workers == 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := s.Metrics()
	if m.Workers != 4 {
		t.Fatalf("workers = %d, want scale to 4", m.Workers)
	}
	if m.ScaleUps == 0 {
		t.Error("no scale-ups recorded")
	}
	close(block)
	for _, j := range jobs {
		if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().Completed; got != 8 {
		t.Errorf("completed %d", got)
	}
	if s.Metrics().PeakWorkers != 4 {
		t.Errorf("peak %d", s.Metrics().PeakWorkers)
	}
}

func TestQueueFull(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, QueueSize: 2, ScaleInterval: time.Hour})
	defer s.Shutdown()
	block := make(chan struct{})
	defer close(block)
	// One running + two queued fills capacity.
	for i := 0; i < 3; i++ {
		if _, err := s.Submit("slow", func(ctx context.Context, j *Job) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		}); err != nil {
			// The first may be picked up instantly; allow failure only
			// after capacity is truly full.
			if i < 2 {
				t.Fatalf("submit %d failed early: %v", i, err)
			}
		}
	}
	// Now the queue must reject.
	deadline := time.Now().Add(time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = s.Submit("overflow", func(ctx context.Context, j *Job) error { return nil }); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("queue never rejected")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewScheduler(Config{})
	if _, err := s.Submit("x", nil); err == nil {
		t.Error("accepted nil body")
	}
	s.Shutdown()
	if _, err := s.Submit("x", func(ctx context.Context, j *Job) error { return nil }); err == nil {
		t.Error("accepted submit after shutdown")
	}
	// Idempotent shutdown.
	s.Shutdown()
}

func TestGetAndList(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	if _, err := s.Get("nope"); err == nil {
		t.Error("Get accepted unknown id")
	}
	j1, _ := s.Submit("a", func(ctx context.Context, j *Job) error { return nil })
	j2, _ := s.Submit("b", func(ctx context.Context, j *Job) error { return nil })
	s.Wait(j1.ID, time.Second)
	s.Wait(j2.ID, time.Second)
	list := s.List()
	if len(list) != 2 || list[0].ID != j1.ID || list[1].ID != j2.ID {
		t.Fatalf("list: %v", list)
	}
}

func TestWaitTimeout(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	block := make(chan struct{})
	defer close(block)
	j, _ := s.Submit("slow", func(ctx context.Context, j *Job) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	if _, err := s.Wait(j.ID, 20*time.Millisecond); err == nil {
		t.Fatal("wait did not time out")
	}
	if _, err := s.Wait("missing", time.Millisecond); err == nil {
		t.Fatal("wait accepted unknown job")
	}
}

func TestShutdownCancelsRunning(t *testing.T) {
	s := NewScheduler(Config{})
	started := make(chan struct{})
	j, _ := s.Submit("slow", func(ctx context.Context, j *Job) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	s.Shutdown()
	if j.Status() != Failed {
		t.Fatalf("status after shutdown: %s", j.Status())
	}
}

func TestJobIDAvailableInBody(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	store := NewJobStore()
	j, err := s.Submit("training", func(ctx context.Context, j *Job) error {
		// The ID is minted before the body runs; results key off it
		// directly — no channel handshake.
		store.Put(j.ID, j.Kind, map[string]int{"epochs": 3})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	res, ok := store.Get(j.ID)
	if !ok || res.Kind != "training" || res.JobID != j.ID {
		t.Fatalf("stored result: %+v ok=%v", res, ok)
	}
	if store.Len() != 1 {
		t.Fatalf("store len %d", store.Len())
	}
	store.Delete(j.ID)
	if _, ok := store.Get(j.ID); ok {
		t.Fatal("result survived delete")
	}
}

func TestDoneChannel(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	release := make(chan struct{})
	j, _ := s.Submit("slow", func(ctx context.Context, j *Job) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	select {
	case <-j.Done():
		t.Fatal("done before job finished")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-j.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("done never closed")
	}
	if j.Status() != Finished {
		t.Fatalf("status %s", j.Status())
	}
}

func TestJobStoreEviction(t *testing.T) {
	store := NewJobStore()
	for i := 0; i < maxResults+10; i++ {
		store.Put(fmt.Sprintf("job-%d", i), "training", i)
	}
	if store.Len() != maxResults {
		t.Fatalf("store len %d, want cap %d", store.Len(), maxResults)
	}
	// The oldest results were evicted FIFO; the newest survive.
	if _, ok := store.Get("job-0"); ok {
		t.Fatal("oldest result survived eviction")
	}
	if _, ok := store.Get(fmt.Sprintf("job-%d", maxResults+9)); !ok {
		t.Fatal("newest result evicted")
	}
	// Re-putting an existing ID replaces in place without growing order.
	store.Put(fmt.Sprintf("job-%d", maxResults+9), "training", "updated")
	if store.Len() != maxResults {
		t.Fatalf("replace grew store to %d", store.Len())
	}
}

func TestJobStoreDeleteThenReput(t *testing.T) {
	store := NewJobStore()
	store.Put("job-1", "training", "v1")
	store.Delete("job-1")
	store.Put("job-1", "training", "v2")
	// The re-inserted ID must occupy a fresh (newest) eviction slot:
	// filling the cap with other IDs must not evict it prematurely.
	for i := 0; i < maxResults-1; i++ {
		store.Put(fmt.Sprintf("other-%d", i), "training", i)
	}
	if res, ok := store.Get("job-1"); !ok || res.Value != "v2" {
		t.Fatalf("re-put result lost: %+v ok=%v", res, ok)
	}
	if store.Len() != maxResults {
		t.Fatalf("len %d, want %d", store.Len(), maxResults)
	}
}

func TestSchedulerEvictsTerminalJobs(t *testing.T) {
	s := NewScheduler(Config{MaxRetainedJobs: 5})
	defer s.Shutdown()
	var first string
	for i := 0; i < 8; i++ {
		j, err := s.Submit("quick", func(ctx context.Context, j *Job) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = j.ID
		}
		if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// The oldest terminal jobs were evicted at submission time.
	if _, err := s.Get(first); err == nil {
		t.Fatal("oldest terminal job survived past the retention cap")
	}
	if n := len(s.List()); n > 6 {
		t.Fatalf("retained %d jobs, cap 5 (+1 in flight)", n)
	}
	// Running jobs are never evicted even when they are oldest.
	block := make(chan struct{})
	defer close(block)
	running, _ := s.Submit("slow", func(ctx context.Context, j *Job) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	for i := 0; i < 10; i++ {
		j, err := s.Submit("quick", func(ctx context.Context, j *Job) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		s.Wait(j.ID, 2*time.Second)
	}
	if _, err := s.Get(running.ID); err != nil {
		t.Fatal("running job was evicted")
	}
}
