package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingJob returns a job body that blocks until release is closed
// (or the job context is cancelled) and a channel closed once the body
// is running — the done-channel synchronization that replaces the old
// sleep-based waits.
func blockingJob(release <-chan struct{}) (JobFunc, <-chan struct{}) {
	started := make(chan struct{})
	var once sync.Once
	return func(ctx context.Context, j *Job) error {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}, started
}

func TestSubmitAndWait(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	var ran atomic.Bool
	j, err := s.Submit("training", func(ctx context.Context, j *Job) error {
		j.Logf("epoch %d done", 1)
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ran.Load() || done.Status() != Finished {
		t.Fatalf("status %s", done.Status())
	}
	logs := done.Logs()
	if len(logs) != 1 || logs[0] != "epoch 1 done" {
		t.Fatalf("logs: %v", logs)
	}
	// The event log recorded the full lifecycle in order.
	events, terminal := done.Events(0)
	if !terminal {
		t.Fatal("terminal job not reported done")
	}
	var states []Status
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want contiguous", i, e.Seq)
		}
		if e.Type == EventState {
			states = append(states, e.Status)
		}
	}
	if len(states) != 3 || states[0] != Queued || states[1] != Running || states[2] != Finished {
		t.Fatalf("state events: %v", states)
	}
}

func TestFailedJob(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.Submit("training", func(ctx context.Context, j *Job) error {
		return fmt.Errorf("out of memory")
	})
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Failed || done.Err() != "out of memory" {
		t.Fatalf("status %s err %q", done.Status(), done.Err())
	}
	m := s.Metrics()
	if m.FailedN != 1 {
		t.Errorf("failed count %d", m.FailedN)
	}
}

func TestPanicIsolatedToJob(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.Submit("training", func(ctx context.Context, j *Job) error {
		panic("kaboom")
	})
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Failed {
		t.Fatal("panic not recorded as failure")
	}
	// Scheduler still works afterwards.
	j2, _ := s.Submit("training", func(ctx context.Context, j *Job) error { return nil })
	if _, err := s.Wait(j2.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestScaleUpUnderLoad(t *testing.T) {
	// Scale-up triggers inline at submission, so after a burst that
	// outstrips the pool the worker count is deterministic — no
	// sleep-and-poll on the autoscaler timer.
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 4, ScaleInterval: time.Hour})
	defer s.Shutdown()
	release := make(chan struct{})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		fn, _ := blockingJob(release)
		j, err := s.Submit("slow", fn)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	m := s.Metrics()
	if m.Workers != 4 {
		t.Fatalf("workers = %d after 8-job burst, want 4", m.Workers)
	}
	if m.ScaleUps == 0 {
		t.Error("no scale-ups recorded")
	}
	close(release)
	for _, j := range jobs {
		if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().Completed; got != 8 {
		t.Errorf("completed %d", got)
	}
	if s.Metrics().PeakWorkers != 4 {
		t.Errorf("peak %d", s.Metrics().PeakWorkers)
	}
}

func TestQueueFull(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, QueueSize: 2, ScaleInterval: time.Hour})
	defer s.Shutdown()
	release := make(chan struct{})
	defer close(release)
	fn, started := blockingJob(release)
	if _, err := s.Submit("slow", fn); err != nil {
		t.Fatal(err)
	}
	// Once the only worker is occupied, the queue admits exactly
	// QueueSize more jobs, deterministically.
	<-started
	for i := 0; i < 2; i++ {
		fn, _ := blockingJob(release)
		if _, err := s.Submit("slow", fn); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit("overflow", func(ctx context.Context, j *Job) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewScheduler(Config{})
	if _, err := s.Submit("x", nil); err == nil {
		t.Error("accepted nil body")
	}
	if _, err := s.SubmitJob(SubmitOptions{Kind: "x", Priority: Priority(99)},
		func(ctx context.Context, j *Job) error { return nil }); err == nil {
		t.Error("accepted invalid priority")
	}
	s.Shutdown()
	if _, err := s.Submit("x", func(ctx context.Context, j *Job) error { return nil }); !errors.Is(err, ErrShutdown) {
		t.Errorf("submit after shutdown: %v", err)
	}
	// Idempotent shutdown.
	s.Shutdown()
}

func TestGetAndList(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	if _, err := s.Get("nope"); err == nil {
		t.Error("Get accepted unknown id")
	}
	j1, _ := s.Submit("a", func(ctx context.Context, j *Job) error { return nil })
	j2, _ := s.Submit("b", func(ctx context.Context, j *Job) error { return nil })
	s.Wait(j1.ID, time.Second)
	s.Wait(j2.ID, time.Second)
	list := s.List()
	if len(list) != 2 || list[0].ID != j1.ID || list[1].ID != j2.ID {
		t.Fatalf("list: %v", list)
	}
}

func TestWaitTimeout(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	release := make(chan struct{})
	defer close(release)
	fn, _ := blockingJob(release)
	j, _ := s.Submit("slow", fn)
	if _, err := s.Wait(j.ID, 20*time.Millisecond); err == nil {
		t.Fatal("wait did not time out")
	}
	if _, err := s.Wait("missing", time.Millisecond); err == nil {
		t.Fatal("wait accepted unknown job")
	}
}

func TestShutdownCancelsRunningAndQueued(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, ScaleInterval: time.Hour})
	release := make(chan struct{})
	defer close(release)
	fn, started := blockingJob(release)
	running, _ := s.Submit("slow", fn)
	<-started
	queued, _ := s.Submit("pending", func(ctx context.Context, j *Job) error { return nil })
	s.Shutdown()
	// The running body returned its context error → failed.
	if running.Status() != Failed {
		t.Fatalf("running job after shutdown: %s", running.Status())
	}
	// The queued job never ran; it reaches a terminal state instead of
	// leaking in "queued" forever.
	if queued.Status() != Cancelled {
		t.Fatalf("queued job after shutdown: %s", queued.Status())
	}
	select {
	case <-queued.Done():
	default:
		t.Fatal("queued job's done channel not closed at shutdown")
	}
}

func TestJobIDAvailableInBody(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	store := NewJobStore()
	j, err := s.Submit("training", func(ctx context.Context, j *Job) error {
		// The ID is minted before the body runs; results key off it
		// directly — no channel handshake.
		store.Put(j.ID, j.Kind, map[string]int{"epochs": 3})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	res, ok := store.Get(j.ID)
	if !ok || res.Kind != "training" || res.JobID != j.ID {
		t.Fatalf("stored result: %+v ok=%v", res, ok)
	}
	if store.Len() != 1 {
		t.Fatalf("store len %d", store.Len())
	}
	store.Delete(j.ID)
	if _, ok := store.Get(j.ID); ok {
		t.Fatal("result survived delete")
	}
}

func TestDoneChannel(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	release := make(chan struct{})
	fn, started := blockingJob(release)
	j, _ := s.Submit("slow", fn)
	// The body is provably still blocked, so done cannot be closed —
	// no timing involved.
	<-started
	select {
	case <-j.Done():
		t.Fatal("done before job finished")
	default:
	}
	close(release)
	select {
	case <-j.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("done never closed")
	}
	if j.Status() != Finished {
		t.Fatalf("status %s", j.Status())
	}
}

// fakeClock is an injectable deterministic time source: every reading
// advances it by one millisecond, so timestamps are strictly increasing
// and durations are exact without any real sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestInjectedClockDurations(t *testing.T) {
	clk := newFakeClock()
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, ScaleInterval: time.Hour, Clock: clk.Now})
	defer s.Shutdown()
	j, _ := s.Submit("training", func(ctx context.Context, j *Job) error { return nil })
	if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Every timestamp came from the fake clock, so the duration is a
	// positive whole number of fake milliseconds — deterministically.
	if d := j.Duration(); d <= 0 || d%time.Millisecond != 0 {
		t.Fatalf("duration %v not from the injected clock", d)
	}
	m := s.Metrics()
	if len(m.Kinds) != 1 || m.Kinds[0].Kind != "training" || m.Kinds[0].Count != 1 {
		t.Fatalf("kind metrics: %+v", m.Kinds)
	}
	if m.Kinds[0].AvgRunMS <= 0 || m.Kinds[0].AvgWaitMS < 0 {
		t.Fatalf("kind latency: %+v", m.Kinds[0])
	}
}

func TestJobStoreEviction(t *testing.T) {
	store := NewJobStore()
	for i := 0; i < maxResults+10; i++ {
		store.Put(fmt.Sprintf("job-%d", i), "training", i)
	}
	if store.Len() != maxResults {
		t.Fatalf("store len %d, want cap %d", store.Len(), maxResults)
	}
	// The oldest results were evicted FIFO; the newest survive.
	if _, ok := store.Get("job-0"); ok {
		t.Fatal("oldest result survived eviction")
	}
	if _, ok := store.Get(fmt.Sprintf("job-%d", maxResults+9)); !ok {
		t.Fatal("newest result evicted")
	}
	// Re-putting an existing ID replaces in place without growing order.
	store.Put(fmt.Sprintf("job-%d", maxResults+9), "training", "updated")
	if store.Len() != maxResults {
		t.Fatalf("replace grew store to %d", store.Len())
	}
}

func TestJobStoreDeleteThenReput(t *testing.T) {
	store := NewJobStore()
	store.Put("job-1", "training", "v1")
	store.Delete("job-1")
	store.Put("job-1", "training", "v2")
	// The re-inserted ID must occupy a fresh (newest) eviction slot:
	// filling the cap with other IDs must not evict it prematurely.
	for i := 0; i < maxResults-1; i++ {
		store.Put(fmt.Sprintf("other-%d", i), "training", i)
	}
	if res, ok := store.Get("job-1"); !ok || res.Value != "v2" {
		t.Fatalf("re-put result lost: %+v ok=%v", res, ok)
	}
	if store.Len() != maxResults {
		t.Fatalf("len %d, want %d", store.Len(), maxResults)
	}
}

func TestSchedulerEvictsTerminalJobs(t *testing.T) {
	s := NewScheduler(Config{MaxRetainedJobs: 5})
	defer s.Shutdown()
	var first string
	for i := 0; i < 8; i++ {
		j, err := s.Submit("quick", func(ctx context.Context, j *Job) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = j.ID
		}
		if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// The oldest terminal jobs were evicted at submission time.
	if _, err := s.Get(first); err == nil {
		t.Fatal("oldest terminal job survived past the retention cap")
	}
	if n := len(s.List()); n > 6 {
		t.Fatalf("retained %d jobs, cap 5 (+1 in flight)", n)
	}
	// Running jobs are never evicted even when they are oldest.
	release := make(chan struct{})
	defer close(release)
	fn, started := blockingJob(release)
	running, _ := s.Submit("slow", fn)
	<-started
	for i := 0; i < 10; i++ {
		j, err := s.Submit("quick", func(ctx context.Context, j *Job) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		s.Wait(j.ID, 2*time.Second)
	}
	if _, err := s.Get(running.ID); err != nil {
		t.Fatal("running job was evicted")
	}
}
