package jobs

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndWait(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	var ran atomic.Bool
	j, err := s.Submit("training", func(ctx context.Context, logf func(string, ...any)) error {
		logf("epoch %d done", 1)
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ran.Load() || done.Status() != Finished {
		t.Fatalf("status %s", done.Status())
	}
	logs := done.Logs()
	if len(logs) != 1 || logs[0] != "epoch 1 done" {
		t.Fatalf("logs: %v", logs)
	}
	if done.Duration() <= 0 {
		t.Error("zero duration")
	}
}

func TestFailedJob(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.Submit("training", func(ctx context.Context, logf func(string, ...any)) error {
		return fmt.Errorf("out of memory")
	})
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Failed || done.Err() != "out of memory" {
		t.Fatalf("status %s err %q", done.Status(), done.Err())
	}
	m := s.Metrics()
	if m.FailedN != 1 {
		t.Errorf("failed count %d", m.FailedN)
	}
}

func TestPanicIsolatedToJob(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.Submit("training", func(ctx context.Context, logf func(string, ...any)) error {
		panic("kaboom")
	})
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Failed {
		t.Fatal("panic not recorded as failure")
	}
	// Scheduler still works afterwards.
	j2, _ := s.Submit("training", func(ctx context.Context, logf func(string, ...any)) error { return nil })
	if _, err := s.Wait(j2.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestAutoscaleUnderLoad(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 4, ScaleInterval: 5 * time.Millisecond})
	defer s.Shutdown()
	block := make(chan struct{})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit("slow", func(ctx context.Context, logf func(string, ...any)) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Give the autoscaler time to react to the backlog.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().Workers == 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := s.Metrics()
	if m.Workers != 4 {
		t.Fatalf("workers = %d, want scale to 4", m.Workers)
	}
	if m.ScaleUps == 0 {
		t.Error("no scale-ups recorded")
	}
	close(block)
	for _, j := range jobs {
		if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().Completed; got != 8 {
		t.Errorf("completed %d", got)
	}
	if s.Metrics().PeakWorkers != 4 {
		t.Errorf("peak %d", s.Metrics().PeakWorkers)
	}
}

func TestQueueFull(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, QueueSize: 2, ScaleInterval: time.Hour})
	defer s.Shutdown()
	block := make(chan struct{})
	defer close(block)
	// One running + two queued fills capacity.
	for i := 0; i < 3; i++ {
		if _, err := s.Submit("slow", func(ctx context.Context, logf func(string, ...any)) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		}); err != nil {
			// The first may be picked up instantly; allow failure only
			// after capacity is truly full.
			if i < 2 {
				t.Fatalf("submit %d failed early: %v", i, err)
			}
		}
	}
	// Now the queue must reject.
	deadline := time.Now().Add(time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = s.Submit("overflow", func(ctx context.Context, logf func(string, ...any)) error { return nil }); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("queue never rejected")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewScheduler(Config{})
	if _, err := s.Submit("x", nil); err == nil {
		t.Error("accepted nil body")
	}
	s.Shutdown()
	if _, err := s.Submit("x", func(ctx context.Context, logf func(string, ...any)) error { return nil }); err == nil {
		t.Error("accepted submit after shutdown")
	}
	// Idempotent shutdown.
	s.Shutdown()
}

func TestGetAndList(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	if _, err := s.Get("nope"); err == nil {
		t.Error("Get accepted unknown id")
	}
	j1, _ := s.Submit("a", func(ctx context.Context, logf func(string, ...any)) error { return nil })
	j2, _ := s.Submit("b", func(ctx context.Context, logf func(string, ...any)) error { return nil })
	s.Wait(j1.ID, time.Second)
	s.Wait(j2.ID, time.Second)
	list := s.List()
	if len(list) != 2 || list[0].ID != j1.ID || list[1].ID != j2.ID {
		t.Fatalf("list: %v", list)
	}
}

func TestWaitTimeout(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	block := make(chan struct{})
	defer close(block)
	j, _ := s.Submit("slow", func(ctx context.Context, logf func(string, ...any)) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	if _, err := s.Wait(j.ID, 20*time.Millisecond); err == nil {
		t.Fatal("wait did not time out")
	}
	if _, err := s.Wait("missing", time.Millisecond); err == nil {
		t.Fatal("wait accepted unknown job")
	}
}

func TestShutdownCancelsRunning(t *testing.T) {
	s := NewScheduler(Config{})
	started := make(chan struct{})
	j, _ := s.Submit("slow", func(ctx context.Context, logf func(string, ...any)) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	s.Shutdown()
	if j.Status() != Failed {
		t.Fatalf("status after shutdown: %s", j.Status())
	}
}
