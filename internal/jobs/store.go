package jobs

import "sync"

// Result is a completed job's structured output as stored by the job
// body: training metrics, tuner trials, etc.
type Result struct {
	// JobID keys the result to its job.
	JobID string
	// Kind mirrors Job.Kind ("training", "tuner", ...).
	Kind string
	// Value is the kind-specific payload.
	Value any
}

// maxResults bounds retained job outputs: results (confusion matrices,
// loss curves, tuner trials) would otherwise accumulate for the life of
// the server. Old results evict FIFO once the cap is reached.
const maxResults = 1024

// JobStore holds structured job outputs keyed by job ID. Job bodies Put
// their result under their own ID (minted before the body runs), and
// the API layer Gets it once the job is terminal — replacing the old
// pattern of smuggling the ID into the closure through a channel.
type JobStore struct {
	mu      sync.RWMutex
	results map[string]Result
	// order tracks insertion order for FIFO eviction at the cap.
	order []string
}

// NewJobStore returns an empty store.
func NewJobStore() *JobStore {
	return &JobStore{results: map[string]Result{}}
}

// Put records the result for a job, replacing any previous value and
// evicting the oldest results beyond the retention cap.
func (st *JobStore) Put(jobID, kind string, value any) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, exists := st.results[jobID]; !exists {
		st.order = append(st.order, jobID)
		for len(st.order) > maxResults {
			delete(st.results, st.order[0])
			st.order = st.order[1:]
		}
	}
	st.results[jobID] = Result{JobID: jobID, Kind: kind, Value: value}
}

// Get returns the stored result, if any.
func (st *JobStore) Get(jobID string) (Result, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	res, ok := st.results[jobID]
	return res, ok
}

// Delete drops a stored result and its eviction-order entry, so a
// later Put of the same ID starts fresh instead of inheriting a stale
// (older) position that would evict it prematurely.
func (st *JobStore) Delete(jobID string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.results[jobID]; !ok {
		return
	}
	delete(st.results, jobID)
	for i, id := range st.order {
		if id == jobID {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// Len counts stored results.
func (st *JobStore) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.results)
}
