package jobs

import "time"

// EventType discriminates entries of a job's event log.
type EventType string

// Event types.
const (
	// EventState records a lifecycle transition (Status is set). A
	// retry appears as a transition back to Queued with Attempt bumped.
	EventState EventType = "state"
	// EventProgress records a SetProgress call (Stage/Pct are set).
	EventProgress EventType = "progress"
	// EventLog records a Logf line (Message is set).
	EventLog EventType = "log"
	// EventStalled records a watchdog flag: the running job emitted no
	// event for the configured window (Message carries the reason). It
	// is informational — the job keeps running unless the watchdog also
	// cancels it — and does not count as activity itself.
	EventStalled EventType = "stalled"
)

// Event is one entry of a job's ordered event log: a state transition,
// a progress update or a log line. Seq is assigned by the job and is
// strictly increasing and contiguous, so a consumer that remembers the
// last seq it saw can resume the stream without gaps or duplicates.
type Event struct {
	Seq  int64
	Time time.Time
	Type EventType
	// Status is set for EventState.
	Status Status
	// Stage and Pct are set for EventProgress.
	Stage string
	Pct   float64
	// Message is set for EventLog and for retry/cancel state events,
	// where it carries the reason.
	Message string
	// Attempt is the retry attempt the event belongs to (0 = first run).
	Attempt int
}

// maxEventsPerJob bounds the retained event log per job. Beyond the cap
// the oldest events are dropped; Seq stays contiguous, so a consumer
// replaying from before the retained window simply starts at the oldest
// retained event (the gap is detectable from the first Seq received).
const maxEventsPerJob = 512

// subBuffer is the per-subscriber channel depth. A subscriber that
// falls further behind than this is dropped (its channel is closed);
// it can resume losslessly from its last seen Seq.
const subBuffer = 64

// subscriber is one live event-stream consumer.
type subscriber struct {
	ch chan Event
}

// emitLocked appends an event to the job's log and fans it out to live
// subscribers. Caller holds j.mu. Slow subscribers are dropped rather
// than ever blocking the scheduler; they resume via their last Seq.
func (j *Job) emitLocked(e Event) {
	j.eventSeq++
	e.Seq = j.eventSeq
	e.Time = j.now()
	e.Attempt = j.attempt
	if e.Type != EventStalled {
		// Any real event is fresh activity: it moves the watchdog's
		// no-progress clock and clears a previously raised stalled flag
		// so the job can be re-flagged if it goes silent again.
		j.lastActivity = e.Time
		j.stalled = false
	}
	j.events = append(j.events, e)
	if drop := len(j.events) - maxEventsPerJob; drop > 0 {
		copy(j.events, j.events[drop:])
		j.events = j.events[:maxEventsPerJob]
	}
	for i := 0; i < len(j.subs); {
		sub := j.subs[i]
		select {
		case sub.ch <- e:
			i++
		default:
			close(sub.ch)
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
		}
	}
}

// closeSubsLocked ends every live subscription; called once the job is
// terminal (after the terminal state event was delivered).
func (j *Job) closeSubsLocked() {
	for _, sub := range j.subs {
		close(sub.ch)
	}
	j.subs = nil
}

// eventsSinceLocked returns a copy of the retained events with
// Seq > afterSeq. Caller holds j.mu.
func (j *Job) eventsSinceLocked(afterSeq int64) []Event {
	if len(j.events) == 0 {
		return nil
	}
	first := j.events[0].Seq
	idx := int(afterSeq - first + 1)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(j.events) {
		return nil
	}
	return append([]Event(nil), j.events[idx:]...)
}

// Events returns the retained events with Seq > afterSeq and whether
// the job is terminal — the snapshot behind the API's long-poll mode.
func (j *Job) Events(afterSeq int64) (events []Event, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.eventsSinceLocked(afterSeq), j.status.Terminal()
}

// Subscribe returns the retained events with Seq > afterSeq plus a
// channel delivering every subsequent event in order. The channel is
// closed after the terminal state event (or immediately, if the job is
// already terminal — the replay then ends with that terminal event).
// It is also closed early if the subscriber falls too far behind;
// resume by subscribing again from the last Seq received. cancel
// releases the subscription and must be called when done.
func (j *Job) Subscribe(afterSeq int64) (replay []Event, ch <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = j.eventsSinceLocked(afterSeq)
	if j.status.Terminal() {
		closed := make(chan Event)
		close(closed)
		return replay, closed, func() {}
	}
	sub := &subscriber{ch: make(chan Event, subBuffer)}
	j.subs = append(j.subs, sub)
	cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, s := range j.subs {
			if s == sub {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(sub.ch)
				return
			}
		}
	}
	return replay, sub.ch, cancel
}
