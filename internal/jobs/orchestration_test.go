package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gatedScheduler starts a 1-worker scheduler whose worker is pinned on
// a blocker job, so subsequent submissions queue up deterministically.
// Returns the scheduler and the release for the blocker.
func gatedScheduler(t *testing.T) (*Scheduler, chan struct{}) {
	t.Helper()
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, ScaleInterval: time.Hour})
	t.Cleanup(s.Shutdown)
	release := make(chan struct{})
	fn, started := blockingJob(release)
	if _, err := s.Submit("blocker", fn); err != nil {
		t.Fatal(err)
	}
	<-started
	return s, release
}

// runOrder submits jobs per spec behind a gate and returns the order in
// which their bodies executed.
func runOrder(t *testing.T, specs []SubmitOptions) []string {
	t.Helper()
	s, release := gatedScheduler(t)
	var mu sync.Mutex
	var order []string
	var jobs []*Job
	for i, opts := range specs {
		name := fmt.Sprintf("%s/%v/%d", opts.Kind, opts.Tag, i)
		j, err := s.SubmitJob(opts, func(ctx context.Context, j *Job) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	for _, j := range jobs {
		if _, err := s.Wait(j.ID, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	return order
}

func TestPriorityClassesOrdering(t *testing.T) {
	// Submitted batch-first, but the single worker must drain the
	// classes strictly: interactive, then default, then batch.
	order := runOrder(t, []SubmitOptions{
		{Kind: "batch", Priority: PriorityBatch},
		{Kind: "batch", Priority: PriorityBatch},
		{Kind: "default", Priority: PriorityDefault},
		{Kind: "interactive", Priority: PriorityInteractive},
		{Kind: "interactive", Priority: PriorityInteractive},
	})
	want := []string{"interactive/<nil>/3", "interactive/<nil>/4", "default/<nil>/2", "batch/<nil>/0", "batch/<nil>/1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestFairnessRoundRobinAcrossTags(t *testing.T) {
	// Project A floods the queue before project B submits anything;
	// round-robin still alternates their jobs rather than draining A.
	var specs []SubmitOptions
	for i := 0; i < 4; i++ {
		specs = append(specs, SubmitOptions{Kind: "train", Tag: "A", Priority: PriorityDefault})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, SubmitOptions{Kind: "train", Tag: "B", Priority: PriorityDefault})
	}
	order := runOrder(t, specs)
	for i, name := range order {
		wantTag := "A" // names are "train/<tag>/<i>"
		if i%2 == 1 {
			wantTag = "B"
		}
		if got := name[len("train/") : len("train/")+1]; got != wantTag {
			t.Fatalf("position %d ran %q, want tag %s (full order %v)", i, name, wantTag, order)
		}
	}
}

func TestPriorityString(t *testing.T) {
	for _, p := range []Priority{PriorityInteractive, PriorityDefault, PriorityBatch} {
		got, err := ParsePriority(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v %v", p, got, err)
		}
	}
	if p, err := ParsePriority(""); err != nil || p != PriorityDefault {
		t.Fatalf("empty priority: %v %v", p, err)
	}
	if _, err := ParsePriority("bogus"); err == nil {
		t.Fatal("accepted bogus priority")
	}
	if s := Priority(42).String(); s != "priority(42)" {
		t.Fatalf("out-of-range string %q", s)
	}
}

func TestCancelQueuedJobIsImmediate(t *testing.T) {
	s, release := gatedScheduler(t)
	j, err := s.Submit("doomed", func(ctx context.Context, j *Job) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	got, cancelled, err := s.Cancel(j.ID)
	if err != nil || !cancelled {
		t.Fatalf("cancel: %v cancelled=%v", err, cancelled)
	}
	// Terminal right away — no scheduler tick needed for queued jobs.
	if got.Status() != Cancelled {
		t.Fatalf("status %s", got.Status())
	}
	select {
	case <-got.Done():
	default:
		t.Fatal("done not closed after queued-cancel")
	}
	// Idempotent: a second cancel is a no-op.
	if _, again, _ := s.Cancel(j.ID); again {
		t.Fatal("second cancel reported initiation")
	}
	if _, _, err := s.Cancel("job-999"); err == nil {
		t.Fatal("cancel accepted unknown job")
	}
	if s.Metrics().CancelledN != 1 {
		t.Fatalf("cancelled count %d", s.Metrics().CancelledN)
	}
	// The cancelled job never runs even after the queue drains.
	close(release)
	events, _ := got.Events(0)
	for _, e := range events {
		if e.Type == EventState && e.Status == Running {
			t.Fatal("cancelled-queued job ran")
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, ScaleInterval: time.Hour})
	defer s.Shutdown()
	fn, started := blockingJob(nil) // releases only via ctx
	j, err := s.Submit("slow", fn)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, cancelled, err := s.Cancel(j.ID)
	if err != nil || !cancelled {
		t.Fatalf("cancel: %v %v", err, cancelled)
	}
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Cancelled {
		t.Fatalf("status %s", done.Status())
	}
	if done.Err() == "" {
		t.Fatal("no cancellation reason recorded")
	}
	// The event log ends with the cancelled state event.
	events, terminal := done.Events(0)
	last := events[len(events)-1]
	if !terminal || last.Type != EventState || last.Status != Cancelled {
		t.Fatalf("last event %+v", last)
	}
}

func TestCancelRacingSuccessfulCompletionIsFinished(t *testing.T) {
	// A cancel that lands after the body's side effects committed (the
	// body returns nil) must not relabel the run as cancelled: the
	// result exists, so the job finalizes as finished.
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, ScaleInterval: time.Hour})
	defer s.Shutdown()
	started := make(chan struct{})
	proceed := make(chan struct{})
	j, err := s.Submit("train", func(ctx context.Context, j *Job) error {
		close(started)
		<-proceed // hold until the cancel has been requested
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, initiated, err := s.Cancel(j.ID); err != nil || !initiated {
		t.Fatalf("cancel: %v %v", err, initiated)
	}
	close(proceed)
	done, err := s.Wait(j.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Finished || done.Err() != "" {
		t.Fatalf("status %s err %q, want finished", done.Status(), done.Err())
	}
	m := s.Metrics()
	if m.Completed != 1 || m.CancelledN != 0 {
		t.Fatalf("completed %d cancelled %d", m.Completed, m.CancelledN)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, ScaleInterval: time.Hour})
	defer s.Shutdown()
	attempts := 0
	j, err := s.SubmitJob(SubmitOptions{Kind: "flaky", Priority: PriorityDefault, MaxRetries: 3},
		func(ctx context.Context, j *Job) error {
			attempts++
			if attempts <= 2 {
				return Transient(fmt.Errorf("connection reset"))
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Finished || attempts != 3 || done.Attempt() != 2 {
		t.Fatalf("status %s attempts %d attempt %d", done.Status(), attempts, done.Attempt())
	}
	if got := s.Metrics().Retries; got != 2 {
		t.Fatalf("retries %d", got)
	}
	// Done was closed exactly once, at the true end: the retry loop is
	// visible in the event log as running→queued transitions.
	var transitions []Status
	events, _ := done.Events(0)
	for _, e := range events {
		if e.Type == EventState {
			transitions = append(transitions, e.Status)
		}
	}
	want := []Status{Queued, Running, Queued, Running, Queued, Running, Finished}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.SubmitJob(SubmitOptions{Kind: "flaky", Priority: PriorityDefault, MaxRetries: 1},
		func(ctx context.Context, j *Job) error {
			return Transient(errors.New("still broken"))
		})
	done, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status() != Failed || done.Attempt() != 1 {
		t.Fatalf("status %s attempt %d", done.Status(), done.Attempt())
	}
}

func TestNonTransientFailureNotRetried(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	attempts := 0
	j, _ := s.SubmitJob(SubmitOptions{Kind: "broken", Priority: PriorityDefault, MaxRetries: 5},
		func(ctx context.Context, j *Job) error {
			attempts++
			return errors.New("deterministic bug")
		})
	done, _ := s.Wait(j.ID, 5*time.Second)
	if done.Status() != Failed || attempts != 1 {
		t.Fatalf("status %s attempts %d", done.Status(), attempts)
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	if IsTransient(errors.New("x")) {
		t.Fatal("plain error classified transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(errors.New("x")))) {
		t.Fatal("wrapped transient not detected")
	}
}

func TestPerTagQuota(t *testing.T) {
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1, QueueSize: 16, MaxQueuedPerTag: 2, ScaleInterval: time.Hour})
	defer s.Shutdown()
	release := make(chan struct{})
	defer close(release)
	fn, started := blockingJob(release)
	if _, err := s.Submit("blocker", fn); err != nil {
		t.Fatal(err)
	}
	<-started
	body := func(ctx context.Context, j *Job) error { return nil }
	for i := 0; i < 2; i++ {
		if _, err := s.SubmitJob(SubmitOptions{Kind: "t", Tag: "greedy", Priority: PriorityDefault}, body); err != nil {
			t.Fatal(err)
		}
	}
	// The greedy tenant hit its quota; other tenants are unaffected.
	if _, err := s.SubmitJob(SubmitOptions{Kind: "t", Tag: "greedy", Priority: PriorityDefault}, body); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota breach: %v", err)
	}
	if _, err := s.SubmitJob(SubmitOptions{Kind: "t", Tag: "modest", Priority: PriorityDefault}, body); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	m := s.Metrics()
	if m.Queued != 3 || m.QueuedByPriority[PriorityDefault] != 3 {
		t.Fatalf("queue depth %d by-priority %v", m.Queued, m.QueuedByPriority)
	}
}

func TestProgressModel(t *testing.T) {
	s, release := gatedScheduler(t)
	progressed := make(chan struct{})
	j, err := s.Submit("train", func(ctx context.Context, j *Job) error {
		j.SetProgress("train", -5) // clamps to 0
		j.SetProgress("train", 50)
		j.SetProgress("train", 175) // clamps to 100
		close(progressed)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Queued jobs report empty progress.
	if stage, pct := j.Progress(); stage != "" || pct != 0 {
		t.Fatalf("initial progress %q %f", stage, pct)
	}
	close(release)
	<-progressed
	if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if stage, pct := j.Progress(); stage != "train" || pct != 100 {
		t.Fatalf("final progress %q %f", stage, pct)
	}
	events, _ := j.Events(0)
	var pcts []float64
	for _, e := range events {
		if e.Type == EventProgress {
			pcts = append(pcts, e.Pct)
		}
	}
	if len(pcts) != 3 || pcts[0] != 0 || pcts[1] != 50 || pcts[2] != 100 {
		t.Fatalf("progress events %v", pcts)
	}
}

func TestSubscribeReplayAndLive(t *testing.T) {
	s, release := gatedScheduler(t)
	step := make(chan struct{})
	logged := make(chan struct{})
	j, err := s.Submit("train", func(ctx context.Context, j *Job) error {
		j.Logf("early line")
		close(logged)
		<-step
		j.SetProgress("late", 75)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(release)

	// Subscribe mid-run, once the first log line is provably emitted
	// (Logf returns before the body signals).
	<-logged
	events, _ := j.Events(0)
	after := events[len(events)-1].Seq
	if events[len(events)-1].Type != EventLog {
		t.Fatalf("last event after Logf: %+v", events[len(events)-1])
	}
	replay, ch, cancel := j.Subscribe(0)
	defer cancel()
	if len(replay) == 0 || replay[len(replay)-1].Seq != after {
		t.Fatalf("replay up to %d: %v", after, replay)
	}
	close(step)
	// Live events continue from the replay point, in order, and the
	// channel closes after the terminal event.
	var live []Event
	for e := range ch {
		live = append(live, e)
	}
	if len(live) < 2 {
		t.Fatalf("live events %v", live)
	}
	if live[0].Seq != after+1 {
		t.Fatalf("first live seq %d, want %d", live[0].Seq, after+1)
	}
	lastEvent := live[len(live)-1]
	if lastEvent.Type != EventState || lastEvent.Status != Finished {
		t.Fatalf("stream did not end with terminal event: %+v", lastEvent)
	}
	// Subscribing to a terminal job yields a full replay and a closed
	// channel.
	replay2, ch2, cancel2 := j.Subscribe(after)
	defer cancel2()
	if _, open := <-ch2; open {
		t.Fatal("terminal subscription channel not closed")
	}
	if len(replay2) != len(live) {
		t.Fatalf("terminal replay %d events, want %d", len(replay2), len(live))
	}
	for i := range live {
		if replay2[i].Seq != live[i].Seq {
			t.Fatalf("resume mismatch at %d: %+v vs %+v", i, replay2[i], live[i])
		}
	}
}

func TestSubscribeCancelStopsDelivery(t *testing.T) {
	s, release := gatedScheduler(t)
	j, _ := s.Submit("train", func(ctx context.Context, j *Job) error { return nil })
	_, ch, cancel := j.Subscribe(0)
	cancel()
	if _, open := <-ch; open {
		t.Fatal("cancelled subscription channel not closed")
	}
	close(release)
	if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSlowSubscriberDroppedNotBlocking(t *testing.T) {
	s, release := gatedScheduler(t)
	emitted := make(chan struct{})
	j, _ := s.Submit("chatty", func(ctx context.Context, j *Job) error {
		for i := 0; i < subBuffer+16; i++ {
			j.Logf("line %d", i)
		}
		close(emitted)
		return nil
	})
	_, ch, cancel := j.Subscribe(0)
	defer cancel()
	close(release)
	<-emitted // the emitter never blocked on the un-drained subscriber
	if _, err := s.Wait(j.ID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// The overwhelmed channel was closed mid-stream; the consumer can
	// resume losslessly from the last seq it received.
	var last int64
	n := 0
	for e := range ch {
		last = e.Seq
		n++
	}
	if n == 0 || n >= subBuffer+16 {
		t.Fatalf("delivered %d events before drop", n)
	}
	resumed, terminal := j.Events(last)
	if !terminal || len(resumed) == 0 {
		t.Fatalf("resume after drop: %d events terminal=%v", len(resumed), terminal)
	}
	if resumed[0].Seq != last+1 {
		t.Fatalf("resume gap: got %d after %d", resumed[0].Seq, last)
	}
}

func TestEventLogBounded(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Shutdown()
	j, _ := s.Submit("floody", func(ctx context.Context, j *Job) error {
		for i := 0; i < maxEventsPerJob+100; i++ {
			j.Logf("line %d", i)
		}
		return nil
	})
	if _, err := s.Wait(j.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	events, _ := j.Events(0)
	if len(events) > maxEventsPerJob {
		t.Fatalf("retained %d events, cap %d", len(events), maxEventsPerJob)
	}
	// Seq stays contiguous across the trimmed window, and the terminal
	// event is always retained.
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("seq gap inside retained window at %d", i)
		}
	}
	lastEvent := events[len(events)-1]
	if lastEvent.Type != EventState || lastEvent.Status != Finished {
		t.Fatalf("terminal event trimmed: %+v", lastEvent)
	}
}
