package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"edgepulse/internal/faults"
)

// TestFaultExecFailsJobWithoutCooperation proves the jobs.exec fault
// point drives the scheduler's failure machinery without the job body
// participating: the body never runs, the job fails with the injected
// error, and once disarmed the same scheduler runs jobs normally.
func TestFaultExecFailsJobWithoutCooperation(t *testing.T) {
	t.Cleanup(faults.Reset)
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(s.Shutdown)

	disarm := faults.Arm(FaultExec, errors.New("injected exec failure"), faults.Times(1))
	defer disarm()
	ran := false
	j, err := s.Submit("train", func(ctx context.Context, j *Job) error {
		ran = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("faulted job never finished")
	}
	if j.Status() != Failed {
		t.Fatalf("status %s, want failed", j.Status())
	}
	if j.Err() != "injected exec failure" {
		t.Fatalf("job error %q", j.Err())
	}
	if ran {
		t.Fatal("job body ran despite the armed fault")
	}

	// Times(1) exhausted: the next job is untouched.
	j2, err := s.Submit("train", func(ctx context.Context, j *Job) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("clean job never finished")
	}
	if j2.Status() != Finished {
		t.Fatalf("status after fault exhausted: %s", j2.Status())
	}
}

// TestFaultExecTransientConsumesRetryBudget arms a transient fault for
// exactly one execution and checks the retry machinery re-runs the job
// to success — the chaos hook exercises the same path a flaky I/O
// failure would.
func TestFaultExecTransientConsumesRetryBudget(t *testing.T) {
	t.Cleanup(faults.Reset)
	s := NewScheduler(Config{MinWorkers: 1, MaxWorkers: 1})
	t.Cleanup(s.Shutdown)

	disarm := faults.Arm(FaultExec, Transient(errors.New("flaky disk")), faults.Times(1))
	defer disarm()
	j, err := s.SubmitJob(SubmitOptions{Kind: "train", MaxRetries: 2}, func(ctx context.Context, j *Job) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("retried job never finished")
	}
	if j.Status() != Finished {
		t.Fatalf("status %s (err %q), want finished after retry", j.Status(), j.Err())
	}
	if j.Attempt() < 1 {
		t.Fatalf("attempt %d, want at least one retry", j.Attempt())
	}
}
