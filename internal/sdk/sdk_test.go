package sdk

import (
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

// trainedImpulse builds a small trained KWS impulse on synthetic data.
func trainedImpulse(t testing.TB) (*core.Impulse, *data.Dataset) {
	t.Helper()
	ds, err := synth.KWSDataset(2, 14, 8000, 1, 0.03, 3)
	if err != nil {
		t.Fatal(err)
	}
	imp := core.New("kws")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 1000, StrideMS: 250, FrequencyHz: 8000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		t.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, len(imp.Classes))
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(model, 5); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	if _, err := imp.Train(ds, trainer.Config{Epochs: 6, LearningRate: 0.005, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	return imp, ds
}

func TestRunClassifierTiming(t *testing.T) {
	imp, ds := trainedImpulse(t)
	c, err := NewClassifier(imp)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ds.Get(ds.List(data.Testing)[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunClassifier(s.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label == "" || len(res.Scores) != 2 {
		t.Fatalf("result: %+v", res)
	}
	if res.Timing.DSP <= 0 || res.Timing.Classification <= 0 {
		t.Errorf("timing not populated: %+v", res.Timing)
	}
	if res.Timing.Total < res.Timing.DSP+res.Timing.Classification {
		t.Errorf("total %v < dsp %v + nn %v", res.Timing.Total, res.Timing.DSP, res.Timing.Classification)
	}
}

func TestClassifierAccuracyOnTestSplit(t *testing.T) {
	imp, ds := trainedImpulse(t)
	c, _ := NewClassifier(imp)
	correct, total := 0, 0
	for _, h := range ds.List(data.Testing) {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunClassifier(s.Signal)
		if err != nil {
			t.Fatal(err)
		}
		if res.Label == s.Label {
			correct++
		}
		total++
	}
	if float64(correct)/float64(total) < 0.75 {
		t.Fatalf("SDK accuracy %d/%d", correct, total)
	}
}

func TestQuantizedPath(t *testing.T) {
	imp, ds := trainedImpulse(t)
	if err := imp.Quantize(ds); err != nil {
		t.Fatal(err)
	}
	c, _ := NewClassifier(imp)
	c.UseQuantized = true
	s, err := ds.Get(ds.List(data.Testing)[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunClassifier(s.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 2 {
		t.Fatalf("quantized scores: %v", res.Scores)
	}
}

func TestRunContinuousSmoothing(t *testing.T) {
	imp, _ := trainedImpulse(t)
	c, _ := NewClassifier(imp)
	stream, events, err := synth.Stream(imp.Classes[0], 8000, 8, 2, 0.02, 21)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.RunContinuous(stream, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 8s stream, 1s window, 250ms stride -> 29 windows.
	if len(results) != 29 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.WindowStart != i*2000 {
			t.Fatalf("window %d start %d", i, r.WindowStart)
		}
	}
	_ = events
}

func TestNewClassifierValidation(t *testing.T) {
	imp := core.New("empty")
	if _, err := NewClassifier(imp); err == nil {
		t.Error("accepted unconfigured impulse")
	}
	// Configured but untrained: no learn block output.
	imp2 := core.New("untrained")
	imp2.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 1000, FrequencyHz: 8000, Axes: 1}
	block, _ := dsp.New("mfe", nil)
	imp2.UseDSP(block)
	imp2.Classes = []string{"a", "b"}
	if _, err := NewClassifier(imp2); err == nil {
		t.Error("accepted untrained impulse")
	}
}

func BenchmarkRunClassifier(b *testing.B) {
	imp, ds := trainedImpulse(b)
	c, _ := NewClassifier(imp)
	first, err := ds.Get(ds.List(data.Testing)[0].ID)
	if err != nil {
		b.Fatal(err)
	}
	sig := first.Signal
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunClassifier(sig)
	}
}

// TestRunClassifierViewRestrictedLearnBlocks locks the SDK onto the
// per-learn-block feature views: a fused two-DSP-block design whose
// anomaly block watches only one block must classify and score without
// feeding the full composite vector to either learn block.
func TestRunClassifierViewRestrictedLearnBlocks(t *testing.T) {
	imp, err := core.FromConfig(core.Config{
		Name:  "fusion",
		Input: core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 4000, Axes: 2},
		DSP: []core.DSPBlockSpec{
			{Name: "vib", Type: "spectral-analysis", Params: map[string]float64{"fft_length": 64, "num_peaks": 8}, Axes: []int{0}},
			{Name: "aud", Type: "mfe", Params: map[string]float64{"num_filters": 8, "fft_length": 128}, Axes: []int{1}},
		},
		Learn: []core.LearnBlockSpec{
			{Type: core.LearnClassification, Inputs: []string{"vib", "aud"}},
			{Type: core.LearnAnomaly, Inputs: []string{"vib"}, Params: map[string]float64{"clusters": 2}},
		},
		Classes: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.KWSDataset(2, 8, 4000, 0.5, 0.03, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Widen the mono synth signals to 2 interleaved axes.
	fused := data.New()
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		wide := make([]float32, 2*len(s.Signal.Data))
		for i, v := range s.Signal.Data {
			wide[2*i], wide[2*i+1] = v, v
		}
		if _, err := fused.Add(&data.Sample{
			Name: s.Name, Label: s.Label, Category: s.Category,
			Signal: dsp.Signal{Data: wide, Rate: 4000, Axes: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	imp.Classes = fused.Labels()
	shape, err := imp.ClassifierShape()
	if err != nil {
		t.Fatal(err)
	}
	model := models.TinyMLP(shape.Elems(), 8, len(imp.Classes))
	if err := nn.InitWeights(model, 1); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	if _, err := imp.Train(fused, trainer.Config{Epochs: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := imp.TrainAnomaly(fused, 0, 1); err != nil {
		t.Fatal(err)
	}
	c, err := NewClassifier(imp)
	if err != nil {
		t.Fatal(err)
	}
	clip, err := fused.Get(fused.List("")[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunClassifier(clip.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label == "" || res.AnomalyScore <= 0 {
		t.Fatalf("fused result: %+v", res)
	}
	// The SDK and the core pipeline must agree exactly.
	want, err := imp.Classify(clip.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != want.Label || res.AnomalyScore != want.AnomalyScore {
		t.Fatalf("sdk %v/%v != core %v/%v", res.Label, res.AnomalyScore, want.Label, want.AnomalyScore)
	}
	if _, err := c.RunContinuous(clip.Signal, 2); err != nil {
		t.Fatal(err)
	}
}
