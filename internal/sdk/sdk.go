// Package sdk is the inferencing SDK (paper Sec. 4.6): the runtime a
// deployed application links against. It wraps an impulse with the
// run_classifier entry point, per-stage timing (the measurements Table 2
// reports), and continuous classification over streaming signals with
// result smoothing — the same surface the platform's C++ SDK exposes.
package sdk

import (
	"fmt"
	"time"

	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/tensor"
)

// Timing reports where one classification spent its time, mirroring the
// SDK's on-device timers.
type Timing struct {
	// DSP is the feature extraction duration.
	DSP time.Duration
	// Classification is the NN inference duration.
	Classification time.Duration
	// Total covers the whole run_classifier call.
	Total time.Duration
}

// Result is one classification with timing.
type Result struct {
	// Label is the argmax class.
	Label string
	// Scores maps classes to probabilities.
	Scores map[string]float32
	// AnomalyScore is set when the impulse has an anomaly block.
	AnomalyScore float64
	// Timing reports per-stage durations.
	Timing Timing
	// WindowStart is the window's offset in samples for continuous runs.
	WindowStart int
}

// Classifier is an initialized inference engine for one impulse.
type Classifier struct {
	imp *core.Impulse
	// UseQuantized selects the int8 model when available.
	UseQuantized bool
}

// NewClassifier wraps a designed impulse. The impulse must have a trained
// learn block.
func NewClassifier(imp *core.Impulse) (*Classifier, error) {
	if err := imp.Validate(); err != nil {
		return nil, err
	}
	if imp.Model == nil && imp.Anomaly == nil {
		return nil, fmt.Errorf("sdk: impulse has no trained learn block")
	}
	return &Classifier{imp: imp}, nil
}

// RunClassifier executes the DSP graph + inference on one window of raw
// signal, timing each stage — the SDK's main entry point. The blocks
// run once; each learn block consumes its declared view of the
// composite feature vector.
func (c *Classifier) RunClassifier(sig dsp.Signal) (Result, error) {
	t0 := time.Now()
	composite, layout, err := c.imp.ExtractComposite(sig)
	if err != nil {
		return Result{}, err
	}
	tDSP := time.Since(t0)

	t1 := time.Now()
	res := Result{Scores: map[string]float32{}}
	if (c.UseQuantized && c.imp.QModel != nil) || c.imp.Model != nil {
		x, err := c.imp.ClassifierFeaturesFrom(composite, layout)
		if err != nil {
			return Result{}, err
		}
		var probs *tensor.F32
		if c.UseQuantized && c.imp.QModel != nil {
			probs = c.imp.QModel.Forward(x)
		} else {
			probs = c.imp.Model.Forward(x)
		}
		fillScores(&res, c.imp.Classes, probs.Data)
	}
	if c.imp.Anomaly != nil {
		av, err := c.imp.AnomalyFeaturesFrom(composite, layout)
		if err != nil {
			return Result{}, err
		}
		res.AnomalyScore = c.imp.Anomaly.Score(av.Data)
	}
	tNN := time.Since(t1)

	res.Timing = Timing{DSP: tDSP, Classification: tNN, Total: time.Since(t0)}
	return res, nil
}

func fillScores(res *Result, classes []string, probs []float32) {
	best := 0
	for i := range probs {
		if probs[i] > probs[best] {
			best = i
		}
	}
	for i, cl := range classes {
		if i < len(probs) {
			res.Scores[cl] = probs[i]
		}
	}
	if best < len(classes) {
		res.Label = classes[best]
	}
}

// RunContinuous slides the impulse's window over a long signal and
// classifies every position, smoothing scores with a moving-average
// filter of length maf (1 disables smoothing) — the SDK's continuous
// classification mode for streaming audio/sensor data.
func (c *Classifier) RunContinuous(stream dsp.Signal, maf int) ([]Result, error) {
	if maf < 1 {
		maf = 1
	}
	wins := c.imp.Windows(stream)
	results := make([]Result, 0, len(wins))
	history := map[string][]float32{}
	stride := c.imp.Input.StrideSamples()
	for i, w := range wins {
		r, err := c.RunClassifier(w)
		if err != nil {
			return nil, err
		}
		r.WindowStart = i * stride
		// Moving average over the last maf windows, per class.
		for cl, s := range r.Scores {
			h := append(history[cl], s)
			if len(h) > maf {
				h = h[len(h)-maf:]
			}
			history[cl] = h
			var sum float32
			for _, v := range h {
				sum += v
			}
			r.Scores[cl] = sum / float32(len(h))
		}
		// Recompute label after smoothing.
		bestLabel, bestScore := "", float32(-1)
		for cl, s := range r.Scores {
			if s > bestScore {
				bestLabel, bestScore = cl, s
			}
		}
		if bestLabel != "" {
			r.Label = bestLabel
		}
		results = append(results, r)
	}
	return results, nil
}
