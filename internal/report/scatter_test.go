package report

import (
	"strings"
	"testing"
)

func TestScatterRendersClustersAndLegend(t *testing.T) {
	var points []Point
	for i := 0; i < 10; i++ {
		points = append(points, Point{X: float64(i) * 0.1, Y: 0, Label: "cat"})
		points = append(points, Point{X: 10 + float64(i)*0.1, Y: 10, Label: "dog"})
	}
	points = append(points, Point{X: 5, Y: 5}) // unlabeled
	out := Scatter(points, 40, 10)
	if !strings.Contains(out, "A = cat") || !strings.Contains(out, "B = dog") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "?") {
		t.Errorf("unlabeled point missing:\n%s", out)
	}
	// Clusters land in opposite corners: 'A' near bottom-left, 'B' near
	// top-right.
	lines := strings.Split(out, "\n")
	var aLine, bLine int
	for i, l := range lines {
		if strings.Contains(l, "A") && aLine == 0 && strings.HasPrefix(l, "|") {
			aLine = i
		}
		if strings.Contains(l, "B") && bLine == 0 && strings.HasPrefix(l, "|") {
			bLine = i
		}
	}
	if bLine >= aLine {
		t.Errorf("cluster B (y=10) should render above cluster A (y=0): a@%d b@%d\n%s", aLine, bLine, out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if !strings.Contains(Scatter(nil, 10, 5), "no points") {
		t.Error("empty scatter")
	}
	// Identical points must not divide by zero.
	out := Scatter([]Point{{X: 1, Y: 1, Label: "x"}, {X: 1, Y: 1, Label: "x"}}, 10, 5)
	if !strings.Contains(out, "X = x") && !strings.Contains(out, "A = x") {
		t.Errorf("degenerate scatter:\n%s", out)
	}
	// Defaults.
	out = Scatter([]Point{{X: 0, Y: 0, Label: "a"}}, 0, 0)
	if len(out) == 0 {
		t.Error("default-size scatter empty")
	}
}
