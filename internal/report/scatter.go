package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one sample in the data-explorer view: a 2-D embedding
// projection with its (possibly empty) label.
type Point struct {
	X, Y  float64
	Label string
}

// Scatter renders the active-learning data explorer (paper Sec. 4.8): a
// character scatter plot of embedding projections where each class gets
// a letter and unlabeled points render as '?'. Labeled clusters and the
// unlabeled points near them become visually apparent, which is the tool's
// whole purpose.
func Scatter(points []Point, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 20
	}
	if len(points) == 0 {
		return "(no points)\n"
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Assign letters to labels, '?' to unlabeled.
	labels := map[string]byte{}
	var names []string
	for _, p := range points {
		if p.Label == "" {
			continue
		}
		if _, ok := labels[p.Label]; !ok {
			names = append(names, p.Label)
		}
		labels[p.Label] = 0
	}
	sort.Strings(names)
	for i, n := range names {
		labels[n] = byte('A' + i%26)
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		col := int((p.X - minX) / (maxX - minX) * float64(width-1))
		row := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		ch := byte('?')
		if p.Label != "" {
			ch = labels[p.Label]
		}
		// Labeled points take precedence over unlabeled overlaps.
		if grid[row][col] == ' ' || grid[row][col] == '?' {
			grid[row][col] = ch
		}
	}
	var b strings.Builder
	b.WriteString("Data explorer (" + fmt.Sprint(len(points)) + " samples):\n")
	for r := height - 1; r >= 0; r-- {
		b.WriteString("| ")
		b.Write(grid[r])
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width+1) + "\n")
	for _, n := range names {
		fmt.Fprintf(&b, "  %c = %s", labels[n], n)
	}
	if len(names) > 0 {
		b.WriteString("   ? = unlabeled\n")
	}
	return b.String()
}
