// Package report renders the tables and figures of the paper's
// evaluation as aligned text: plain tables (Tables 1-5), block-diagram
// dataflows (Fig. 2) and stacked horizontal bar charts (Fig. 3).
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// Render returns the aligned table text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2 // no trailing column gap
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		if row == nil {
			b.WriteString(strings.Repeat("-", total))
			b.WriteString("\n")
			continue
		}
		line(row)
	}
	return b.String()
}

// Ms formats a millisecond value like the paper ("-" for missing).
func Ms(v float64, fits bool) string {
	if !fits {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// KB formats a byte count in kilobytes with one decimal.
func KB(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/1024)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.0f%%", v*100)
}

// Segment is one portion of a stacked bar.
type Segment struct {
	Label string
	Value float64
}

// StackedBar renders one stacked horizontal bar scaled to width columns,
// e.g. "DSP=====NN=========== 123ms" — the Fig. 3 latency/RAM/flash view.
func StackedBar(segments []Segment, total float64, width int, unit string) string {
	if width <= 0 {
		width = 40
	}
	var sum float64
	for _, s := range segments {
		sum += s.Value
	}
	if total <= 0 {
		total = sum
	}
	var b strings.Builder
	used := 0
	runes := []byte{'=', '#', '+', '~', '*'}
	for i, s := range segments {
		n := 0
		if total > 0 {
			n = int(s.Value / total * float64(width))
		}
		if n == 0 && s.Value > 0 {
			n = 1
		}
		used += n
		ch := runes[i%len(runes)]
		b.WriteString(strings.Repeat(string(ch), n))
	}
	if used < width {
		b.WriteString(strings.Repeat(".", width-used))
	}
	fmt.Fprintf(&b, " %.0f%s", sum, unit)
	return b.String()
}

// Diagram renders a left-to-right block diagram, the Fig. 2 dataflow:
//
//	+------------+    +------+    +----------------+
//	| Time series| -> | MFCC | -> | Classification |
//	+------------+    +------+    +----------------+
func Diagram(blocks ...string) string {
	tops := make([]string, len(blocks))
	mids := make([]string, len(blocks))
	for i, blk := range blocks {
		w := len(blk) + 2
		tops[i] = "+" + strings.Repeat("-", w) + "+"
		mids[i] = "| " + blk + " |"
	}
	join := func(parts []string, sep string) string {
		return strings.Join(parts, sep)
	}
	var b strings.Builder
	b.WriteString(join(tops, "    "))
	b.WriteString("\n")
	b.WriteString(join(mids, " -> "))
	b.WriteString("\n")
	b.WriteString(join(tops, "    "))
	b.WriteString("\n")
	return b.String()
}

// Support levels for the Table 5 feature-comparison matrix.
const (
	Full    = "Y"
	Partial = "~"
	None    = "N"
)

// PlatformFeatures is one row of the paper's Table 5.
type PlatformFeatures struct {
	Name       string
	DataColl   string // data collection & analysis
	DSPModel   string // DSP & model design
	Embedded   string // embedded deployment
	AutoML     string // AutoML & active learning
	Monitoring string // IoT management & monitoring
}

// Table5Data reproduces the paper's MLOps platform comparison.
func Table5Data() []PlatformFeatures {
	return []PlatformFeatures{
		{"Edge Impulse (this work)", Full, Full, Full, Full, Partial},
		{"Amazon SageMaker", Partial, Partial, Full, Full, Partial},
		{"Google VertexAI", Partial, Full, Full, Full, Partial},
		{"Azure ML & IoT", Partial, Partial, Full, Full, Full},
		{"Neuton AI", Full, Partial, Full, Full, Partial},
		{"Latent AI", None, Partial, Full, None, None},
		{"NanoEdge", Partial, Full, Full, Full, Partial},
		{"Imagimob", Full, Full, Full, Partial, None},
	}
}
