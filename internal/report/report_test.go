package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := NewTable("Title", "A", "LongHeader", "C")
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("wide-cell", "x")
	tbl.AddSeparator()
	tbl.AddRow("z", "z", "z")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows + separator + 1 row = 7 lines.
	if len(lines) != 7 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line %q", lines[0])
	}
	// All data lines equal width (padded).
	w := len(lines[1])
	for i, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("line %d wider than header: %q", i, l)
		}
	}
	// Short row padded with empty cell, not truncated.
	if !strings.Contains(out, "wide-cell") {
		t.Error("cell lost")
	}
}

func TestFormatters(t *testing.T) {
	if Ms(12.345, true) != "12.35" && Ms(12.345, true) != "12.34" {
		t.Errorf("Ms = %q", Ms(12.345, true))
	}
	if Ms(12.345, false) != "-" {
		t.Error("Ms should render '-' for non-fitting")
	}
	if KB(2048) != "2.0" {
		t.Errorf("KB = %q", KB(2048))
	}
	if Pct(0.785) != "78%" && Pct(0.785) != "79%" {
		t.Errorf("Pct = %q", Pct(0.785))
	}
}

func TestStackedBar(t *testing.T) {
	bar := StackedBar([]Segment{{"a", 30}, {"b", 10}}, 40, 40, "ms")
	if !strings.HasSuffix(bar, "40ms") {
		t.Errorf("bar = %q", bar)
	}
	// 30/40 of 40 cols = 30 '='; 10/40 = 10 '#'.
	if strings.Count(bar, "=") != 30 || strings.Count(bar, "#") != 10 {
		t.Errorf("bar segments: %q", bar)
	}
	// Zero-width segments with value > 0 get at least one column.
	bar = StackedBar([]Segment{{"a", 0.1}, {"b", 100}}, 100, 20, "kB")
	if !strings.Contains(bar, "=") {
		t.Errorf("tiny segment invisible: %q", bar)
	}
	// Under-full bars padded with dots.
	bar = StackedBar([]Segment{{"a", 10}}, 100, 20, "x")
	if !strings.Contains(bar, ".") {
		t.Errorf("no padding: %q", bar)
	}
	// Defaults: width<=0, total<=0.
	bar = StackedBar([]Segment{{"a", 5}}, 0, 0, "u")
	if len(bar) == 0 {
		t.Error("empty default bar")
	}
}

func TestDiagram(t *testing.T) {
	d := Diagram("Input", "MFCC", "NN")
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("diagram lines: %d", len(lines))
	}
	if !strings.Contains(lines[1], "| Input | -> | MFCC | -> | NN |") {
		t.Errorf("middle line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "+---") {
		t.Errorf("top border: %q", lines[0])
	}
}

func TestTable5Data(t *testing.T) {
	rows := Table5Data()
	if len(rows) != 8 {
		t.Fatalf("%d platforms", len(rows))
	}
	if rows[0].Name != "Edge Impulse (this work)" {
		t.Error("first row should be Edge Impulse")
	}
	// Edge Impulse is the only row with full support in the first four
	// categories (the paper's claim).
	for i, r := range rows {
		full := r.DataColl == Full && r.DSPModel == Full && r.Embedded == Full && r.AutoML == Full
		if i == 0 && !full {
			t.Error("Edge Impulse row lost full support")
		}
		if i > 0 && full {
			t.Errorf("%s matches Edge Impulse across all four categories", r.Name)
		}
	}
}
