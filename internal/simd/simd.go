// Package simd provides the vectorized inner-loop primitives behind the
// float32 and int8 inference kernels: rank-1 accumulation (the body of
// conv2d/conv1d/dense), elementwise multiply-accumulate (depthwise conv)
// and fused activation clamps.
//
// On amd64 with AVX2 the primitives dispatch to hand-written assembly;
// everywhere else (and when SetEnabled(false) forces it) they run a pure
// Go reference implementation. Both paths are bit-for-bit identical:
//
//   - Float kernels use separate multiply and add instructions
//     (VMULPS + VADDPS), never FMA, so every product and every partial
//     sum is rounded to float32 exactly as the scalar Go expression
//     `s += v * w` rounds it, and the per-output accumulation order is
//     the declared ci-major order in both paths.
//   - Integer kernels are exact: int32 addition and multiplication are
//     associative and wrap identically in Go and in VPMADDWD/VPMULLD
//     lanes, so any regrouping (the assembly pairs adjacent input lanes)
//     yields the same accumulator bits.
//
// The EON-vs-interpreter story of the source paper rests on quantized
// kernels beating float on real hardware (CMSIS-NN's SMLAD dual-MAC is
// the canonical example); ConvAccI8's VPMADDWD inner loop is the x86
// equivalent — two int16 lanes per multiply — which is what finally makes
// the host int8 path strictly faster than float32.
package simd

import (
	"math"
	"sync/atomic"
)

// enabled gates the assembly fast paths; it is true only on amd64 with
// AVX2 support (and may be cleared via SetEnabled for testing).
var enabled atomic.Bool

func init() {
	enabled.Store(haveAVX2)
}

// Enabled reports whether the vectorized fast paths are active.
func Enabled() bool { return enabled.Load() }

// SetEnabled forces the fast paths on or off. Enabling has no effect on
// platforms without AVX2 support. It exists so tests and benchmarks can
// compare the assembly and reference implementations.
func SetEnabled(on bool) { enabled.Store(on && haveAVX2) }

// ConvAccF32 accumulates a [cin x nf] weight panel into an output row:
//
//	dst[f] += Σ_ci in[ci] * w[ci*stride+f]   for f in [0, len(dst))
//
// with ci iterated in increasing order per output lane (bitwise-stable
// float accumulation). stride is the weight row pitch in elements and
// must satisfy stride >= len(dst) and len(w) >= (len(in)-1)*stride +
// len(dst). This is the inner body of conv2d/conv1d (one kernel tap) and
// of dense (the whole matrix).
func ConvAccF32(dst, w, in []float32, stride int) {
	if len(dst) == 0 || len(in) == 0 {
		return
	}
	if (len(in)-1)*stride+len(dst) > len(w) {
		panic("simd: ConvAccF32 weight panel out of bounds")
	}
	if enabled.Load() {
		if nf8 := len(dst) &^ 7; nf8 > 0 {
			convAccF32SIMD(dst[:nf8], w, in, stride)
		}
		convAccF32Tail(dst, w, in, stride, len(dst)&^7)
		return
	}
	convAccF32Go(dst, w, in, stride)
}

// convAccF32Go is the scalar reference: ci-major rank-1 updates, the
// same accumulation order as the historical kernels.
func convAccF32Go(dst, w, in []float32, stride int) {
	for ci, v := range in {
		wRow := w[ci*stride : ci*stride+len(dst)]
		for f, wv := range wRow {
			dst[f] += v * wv
		}
	}
}

// convAccF32Tail finishes output lanes [f0, len(dst)) in scalar code.
func convAccF32Tail(dst, w, in []float32, stride, f0 int) {
	for f := f0; f < len(dst); f++ {
		s := dst[f]
		for ci, v := range in {
			s += v * w[ci*stride+f]
		}
		dst[f] = s
	}
}

// MulAccF32 accumulates an elementwise product: dst[i] += a[i]*b[i].
// All three slices must have the same length. This is the depthwise
// convolution tap body.
func MulAccF32(dst, a, b []float32) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic("simd: MulAccF32 length mismatch")
	}
	if enabled.Load() {
		if n8 := len(dst) &^ 7; n8 > 0 {
			mulAccF32SIMD(dst[:n8], a, b)
		}
		for i := len(dst) &^ 7; i < len(dst); i++ {
			dst[i] += a[i] * b[i]
		}
		return
	}
	for i, av := range a {
		dst[i] += av * b[i]
	}
}

// ReLUF32 clamps negatives to zero in place. NaNs and -0 propagate
// exactly as the scalar `if v < 0 { v = 0 }` does.
func ReLUF32(x []float32) {
	if enabled.Load() {
		if n8 := len(x) &^ 7; n8 > 0 {
			reluF32SIMD(x[:n8])
		}
		x = x[len(x)&^7:]
	}
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// ReLU6F32 clamps to [0, 6] in place with scalar-identical NaN behavior.
func ReLU6F32(x []float32) {
	if enabled.Load() {
		if n8 := len(x) &^ 7; n8 > 0 {
			relu6F32SIMD(x[:n8])
		}
		x = x[len(x)&^7:]
	}
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		} else if v > 6 {
			x[i] = 6
		}
	}
}

// PackPairs packs zero-point-centered input lanes into the uint32 pair
// stream ConvAccI8 consumes: vp[cp] holds (in[2cp]-zp) in the low 16
// bits and (in[2cp+1]-zp) in the high 16, both as int16 bit patterns.
// An odd trailing lane packs with a zero high half (its phantom partner
// multiplies a zero weight lane, see PairWeights). Returns the number
// of pairs written; vp must have capacity for (len(in)+1)/2.
func PackPairs(vp []uint32, in []int8, zp int32) int {
	n := len(in) / 2
	_ = vp[:(len(in)+1)/2]
	i := 0
	if n16 := len(in) &^ 15; n16 > 0 && enabled.Load() {
		packPairsSIMD(vp[:n16/2], in[:n16], zp)
		i = n16
	}
	for ; i+1 < len(in); i += 2 {
		v0 := uint32(uint16(int32(in[i]) - zp))
		v1 := uint32(uint16(int32(in[i+1]) - zp))
		vp[i/2] = v0 | v1<<16
	}
	if len(in)%2 == 1 {
		vp[n] = uint32(uint16(int32(in[len(in)-1]) - zp))
		n++
	}
	return n
}

// ConvAccI8 accumulates a quantized weight panel into an int32 row from
// a packed input-pair stream (see PackPairs) and pair-interleaved int16
// weight lanes (see PairWeights):
//
//	acc[f] += Σ_cp v0(cp)*wPair[(cp*stride+f)*2] +
//	               v1(cp)*wPair[(cp*stride+f)*2+1]
//
// for cp in [0, len(vp)). stride is the pair-row pitch in pairs.
// Integer arithmetic is exact, so any lane pairing is bitwise-identical
// to the unpaired scalar accumulation.
func ConvAccI8(acc []int32, wPair []int16, vp []uint32, stride int) {
	if len(acc) == 0 || len(vp) == 0 {
		return
	}
	if (len(vp)-1)*stride*2+len(acc)*2 > len(wPair) {
		panic("simd: ConvAccI8 weight panel out of bounds")
	}
	if enabled.Load() {
		if nf8 := len(acc) &^ 7; nf8 > 0 {
			convAccI8SIMD(acc[:nf8], wPair, vp, stride)
		}
		convAccI8Tail(acc, wPair, vp, stride, len(acc)&^7)
		return
	}
	convAccI8Go(acc, wPair, vp, stride)
}

// unpackPair splits a packed pair back into its int32 lane values.
func unpackPair(p uint32) (v0, v1 int32) {
	return int32(int16(p)), int32(int16(p >> 16))
}

func convAccI8Go(acc []int32, wPair []int16, vp []uint32, stride int) {
	for cp, p := range vp {
		v0, v1 := unpackPair(p)
		row := wPair[cp*stride*2 : cp*stride*2+len(acc)*2]
		for f := range acc {
			acc[f] += v0*int32(row[2*f]) + v1*int32(row[2*f+1])
		}
	}
}

func convAccI8Tail(acc []int32, wPair []int16, vp []uint32, stride, f0 int) {
	for f := f0; f < len(acc); f++ {
		s := acc[f]
		for cp, p := range vp {
			v0, v1 := unpackPair(p)
			s += v0*int32(wPair[(cp*stride+f)*2]) + v1*int32(wPair[(cp*stride+f)*2+1])
		}
		acc[f] = s
	}
}

// MulAccI8 accumulates an elementwise quantized product:
//
//	acc[i] += (in[i]-zp) * w[i]
//
// the depthwise convolution tap body. All slices share one length.
func MulAccI8(acc []int32, w, in []int8, zp int32) {
	if len(w) != len(acc) || len(in) != len(acc) {
		panic("simd: MulAccI8 length mismatch")
	}
	if enabled.Load() {
		if n8 := len(acc) &^ 7; n8 > 0 {
			mulAccI8SIMD(acc[:n8], w, in, zp)
		}
		for i := len(acc) &^ 7; i < len(acc); i++ {
			acc[i] += (int32(in[i]) - zp) * int32(w[i])
		}
		return
	}
	for i, wv := range w {
		acc[i] += (int32(in[i]) - zp) * int32(wv)
	}
}

// RequantI8 converts int32 accumulators to the quantized int8 output
// domain, matching the TFLite reference requantization bit for bit:
// rounding-doubling-high-multiply by the Q31 mantissa mult with shift
// (negative = right shift), int32 saturation, add the output zero point
// (int32 wrap), clamp to [lo, hi]. len(dst) must equal len(acc).
//
// The vector path needs AVX-512 F+VL (64-bit lane arithmetic shifts and
// saturating narrowing) and covers the shift <= 0 case that every
// sub-unit requant multiplier produces; anything else runs scalar.
func RequantI8(dst []int8, acc []int32, mult int32, shift int, zp, lo, hi int32) {
	if len(dst) != len(acc) {
		panic("simd: RequantI8 length mismatch")
	}
	if shift <= 0 && haveAVX512 && enabled.Load() {
		rs := -shift
		var round int64
		if rs > 0 {
			round = 1 << (rs - 1)
		}
		if n8 := len(dst) &^ 7; n8 > 0 {
			requantI8SIMD(dst[:n8], acc, int64(mult), int64(rs), round, int64(zp), int64(lo), int64(hi))
		}
		n8 := len(dst) &^ 7
		requantI8Scalar(dst[n8:], acc[n8:], mult, shift, zp, lo, hi)
		return
	}
	requantI8Scalar(dst, acc, mult, shift, zp, lo, hi)
}

// requantI8Scalar is the reference requantization (TFLM
// MultiplyByQuantizedMultiplier followed by zero point and clamp).
func requantI8Scalar(dst []int8, acc []int32, mult int32, shift int, zp, lo, hi int32) {
	ls, rs := 0, 0
	if shift > 0 {
		ls = shift
	} else {
		rs = -shift
	}
	var round int64
	if rs > 0 {
		round = 1 << (rs - 1)
	}
	for i, a := range acc {
		prod := (int64(a) << ls) * int64(mult)
		nudge := int64(1) << 30
		if prod < 0 {
			nudge = 1 - nudge
		}
		high := (prod + nudge) >> 31
		if rs > 0 {
			high = (high + round) >> rs
		}
		if high > math.MaxInt32 {
			high = math.MaxInt32
		} else if high < math.MinInt32 {
			high = math.MinInt32
		}
		v := int32(high) + zp
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		dst[i] = int8(v)
	}
}

// PairWeights builds the pair-interleaved int16 lane layout ConvAccI8
// consumes from a [cin x nf] int8 weight panel (row pitch = nf): lane
// pair (w[2cp][f], w[2cp+1][f]) lands at out[(cp*nf+f)*2 .. +1]. An odd
// trailing input lane pairs with an all-zero phantom weight lane, so
// whatever PackPairs leaves in the phantom value lane contributes
// nothing. The returned slice has ((cin+1)/2)*nf*2 elements.
func PairWeights(w []int8, cin, nf int) []int16 {
	pairs := (cin + 1) / 2
	out := make([]int16, pairs*nf*2)
	for cp := 0; cp < pairs; cp++ {
		base := cp * nf * 2
		r0 := w[(2*cp)*nf : (2*cp)*nf+nf]
		for f := 0; f < nf; f++ {
			out[base+2*f] = int16(r0[f])
		}
		if 2*cp+1 < cin {
			r1 := w[(2*cp+1)*nf : (2*cp+1)*nf+nf]
			for f := 0; f < nf; f++ {
				out[base+2*f+1] = int16(r1[f])
			}
		}
	}
	return out
}
