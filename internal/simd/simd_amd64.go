//go:build amd64

package simd

// haveAVX2 reports whether the CPU and OS support AVX2: CPUID leaf 7
// advertises the instructions, CPUID leaf 1 advertises OSXSAVE+AVX, and
// XGETBV confirms the OS preserves the XMM+YMM register state across
// context switches.
var haveAVX2 = detectAVX2()

// haveAVX512 additionally requires AVX-512 F+VL (EVEX 64-bit lane
// shifts and saturating narrows on YMM registers) plus the OS enabling
// the opmask/upper-ZMM register state in XCR0. Only the requant path
// uses it; everything else is plain AVX2.
var haveAVX512 = detectAVX512()

func detectAVX512() bool {
	if !haveAVX2 {
		return false
	}
	if xlo, _ := xgetbv(); xlo&0xE6 != 0xE6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	const avx512vl = 1 << 31
	return b7&avx512f != 0 && b7&avx512vl != 0
}

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	if xlo, _ := xgetbv(); xlo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// convAccF32SIMD requires len(dst) > 0 and a multiple of 8, len(in) > 0.
//
//go:noescape
func convAccF32SIMD(dst, w, in []float32, stride int)

// mulAccF32SIMD requires len(dst) > 0 and a multiple of 8.
//
//go:noescape
func mulAccF32SIMD(dst, a, b []float32)

// reluF32SIMD requires len(x) > 0 and a multiple of 8.
//
//go:noescape
func reluF32SIMD(x []float32)

// relu6F32SIMD requires len(x) > 0 and a multiple of 8.
//
//go:noescape
func relu6F32SIMD(x []float32)

// packPairsSIMD requires len(in) > 0 and a multiple of 16; it writes
// len(in)/2 uint32 pairs.
//
//go:noescape
func packPairsSIMD(vp []uint32, in []int8, zp int32)

// convAccI8SIMD requires len(acc) > 0 and a multiple of 8, len(vp) > 0.
//
//go:noescape
func convAccI8SIMD(acc []int32, wPair []int16, vp []uint32, stride int)

// mulAccI8SIMD requires len(acc) > 0 and a multiple of 8.
//
//go:noescape
func mulAccI8SIMD(acc []int32, w, in []int8, zp int32)

// requantI8SIMD requires len(dst) == len(acc) > 0, a multiple of 8, and
// AVX-512 F+VL. rs >= 0; round = rs > 0 ? 1<<(rs-1) : 0.
//
//go:noescape
func requantI8SIMD(dst []int8, acc []int32, mult, rs, round, zp, lo, hi int64)
