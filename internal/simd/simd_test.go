package simd

import (
	"math"
	"math/rand"
	"testing"
)

// withSIMD runs f twice, once with the assembly path forced on (when the
// host supports it) and once forced off, restoring the previous state.
func withSIMD(t *testing.T, f func(t *testing.T, simdOn bool)) {
	t.Helper()
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(true)
	f(t, Enabled())
	SetEnabled(false)
	f(t, false)
}

func randF32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func randI8(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(256) - 128)
	}
	return out
}

// TestConvAccF32MatchesScalar asserts the assembly path is bitwise
// identical to the scalar reference across shapes that exercise the
// 16-wide blocks, the 8-wide block and the scalar tail.
func TestConvAccF32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ nf, cin, stride int }{
		{1, 1, 1}, {3, 5, 3}, {8, 4, 8}, {8, 7, 11}, {12, 9, 12},
		{16, 3, 16}, {24, 10, 24}, {31, 17, 40}, {64, 64, 64}, {65, 2, 70},
	}
	for _, s := range shapes {
		w := randF32(rng, (s.cin-1)*s.stride+s.nf)
		in := randF32(rng, s.cin)
		want := randF32(rng, s.nf)
		got := append([]float32(nil), want...)
		convAccF32Go(want, w, in, s.stride)
		withSIMD(t, func(t *testing.T, _ bool) {
			g := append([]float32(nil), got...)
			ConvAccF32(g, w, in, s.stride)
			for f := range g {
				if math.Float32bits(g[f]) != math.Float32bits(want[f]) {
					t.Fatalf("nf=%d cin=%d stride=%d: lane %d = %x, want %x (simd=%v)",
						s.nf, s.cin, s.stride, f, math.Float32bits(g[f]), math.Float32bits(want[f]), Enabled())
				}
			}
		})
	}
}

// TestConvAccF32SpecialValues checks NaN/Inf propagate identically.
func TestConvAccF32SpecialValues(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	w := []float32{1, nan, -2, inf, 3, 0.5, -0, 7, 2, 1, 0, -1, 5, 6, 7, 8}
	in := []float32{2, inf}
	dst := make([]float32, 8)
	want := append([]float32(nil), dst...)
	convAccF32Go(want, w, in, 8)
	withSIMD(t, func(t *testing.T, _ bool) {
		g := make([]float32, 8)
		ConvAccF32(g, w, in, 8)
		for f := range g {
			if math.Float32bits(g[f]) != math.Float32bits(want[f]) {
				t.Fatalf("lane %d = %x, want %x (simd=%v)", f, math.Float32bits(g[f]), math.Float32bits(want[f]), Enabled())
			}
		}
	})
}

func TestMulAccF32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 7, 8, 9, 16, 31, 64, 100} {
		a, b := randF32(rng, n), randF32(rng, n)
		want := randF32(rng, n)
		base := append([]float32(nil), want...)
		for i := range want {
			want[i] += a[i] * b[i]
		}
		withSIMD(t, func(t *testing.T, _ bool) {
			g := append([]float32(nil), base...)
			MulAccF32(g, a, b)
			for i := range g {
				if math.Float32bits(g[i]) != math.Float32bits(want[i]) {
					t.Fatalf("n=%d lane %d (simd=%v)", n, i, Enabled())
				}
			}
		})
	}
}

func TestReLUF32MatchesScalar(t *testing.T) {
	nan := float32(math.NaN())
	negZero := float32(math.Copysign(0, -1))
	base := []float32{-1, 0, negZero, 1, nan, 6.5, -6.5, 5.999, 7, -0.001, 2, 3, 4, 5, 6, 100, -100}
	scalar := func(x []float32, six bool) {
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			} else if six && v > 6 {
				x[i] = 6
			}
		}
	}
	for _, six := range []bool{false, true} {
		want := append([]float32(nil), base...)
		scalar(want, six)
		withSIMD(t, func(t *testing.T, _ bool) {
			g := append([]float32(nil), base...)
			if six {
				ReLU6F32(g)
			} else {
				ReLUF32(g)
			}
			for i := range g {
				if math.Float32bits(g[i]) != math.Float32bits(want[i]) {
					t.Fatalf("six=%v lane %d: %x want %x (simd=%v)", six, i, math.Float32bits(g[i]), math.Float32bits(want[i]), Enabled())
				}
			}
		})
	}
}

// TestConvAccI8MatchesScalar covers extreme zero points and weights so
// any VPMADDWD range assumption violation would surface. The expected
// values come from a direct per-lane scalar accumulation over the raw
// int8 inputs — independent of the pair packing.
func TestConvAccI8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := []struct{ nf, cin, stride int }{
		{1, 1, 1}, {1, 2, 1}, {8, 1, 8}, {8, 2, 8}, {8, 6, 9}, {12, 4, 12},
		{16, 8, 16}, {24, 9, 30}, {32, 64, 32}, {40, 12, 40}, {64, 64, 64}, {67, 31, 67},
	}
	for _, zp := range []int32{-128, -1, 0, 5, 127} {
		for _, s := range shapes {
			// Build a dense [cin x nf] panel, then its paired layout with
			// the test shape's (possibly wider) stride.
			w := randI8(rng, s.cin*s.nf)
			w[0] = 127
			if len(w) > 1 {
				w[1] = -127
			}
			dense := PairWeights(w, s.cin, s.nf)
			pairs := (s.cin + 1) / 2
			wPair := make([]int16, pairs*s.stride*2)
			for cp := 0; cp < pairs; cp++ {
				copy(wPair[cp*s.stride*2:cp*s.stride*2+s.nf*2], dense[cp*s.nf*2:(cp+1)*s.nf*2])
			}
			in := randI8(rng, s.cin)
			in[0] = -128
			vp := make([]uint32, pairs)
			if got := PackPairs(vp, in, zp); got != pairs {
				t.Fatalf("PackPairs returned %d pairs, want %d", got, pairs)
			}
			base := make([]int32, s.nf)
			for i := range base {
				base[i] = int32(rng.Uint32())>>8 - 1<<22
			}
			want := append([]int32(nil), base...)
			for ci := 0; ci < s.cin; ci++ {
				v := int32(in[ci]) - zp
				for f := 0; f < s.nf; f++ {
					want[f] += v * int32(w[ci*s.nf+f])
				}
			}
			withSIMD(t, func(t *testing.T, _ bool) {
				g := append([]int32(nil), base...)
				ConvAccI8(g, wPair, vp, s.stride)
				for f := range g {
					if g[f] != want[f] {
						t.Fatalf("zp=%d nf=%d cin=%d stride=%d lane %d: %d want %d (simd=%v)",
							zp, s.nf, s.cin, s.stride, f, g[f], want[f], Enabled())
					}
				}
			})
		}
	}
}

func TestMulAccI8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, zp := range []int32{-128, 0, 127} {
		for _, n := range []int{1, 8, 9, 15, 16, 64, 100} {
			w, in := randI8(rng, n), randI8(rng, n)
			base := make([]int32, n)
			for i := range base {
				base[i] = rng.Int31n(1 << 20)
			}
			want := append([]int32(nil), base...)
			for i := range want {
				want[i] += (int32(in[i]) - zp) * int32(w[i])
			}
			withSIMD(t, func(t *testing.T, _ bool) {
				g := append([]int32(nil), base...)
				MulAccI8(g, w, in, zp)
				for i := range g {
					if g[i] != want[i] {
						t.Fatalf("zp=%d n=%d lane %d (simd=%v)", zp, n, i, Enabled())
					}
				}
			})
		}
	}
}

// TestRequantI8MatchesScalar sweeps multiplier/shift/zero-point combos
// including accumulator extremes where saturation and wrap matter.
func TestRequantI8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	accs := make([]int32, 128)
	for i := range accs {
		accs[i] = int32(rng.Uint32())
	}
	// Deterministic edge cases up front.
	edge := []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 1 << 30, -(1 << 30), 12345, -99999}
	copy(accs, edge)
	cases := []struct {
		mult  int32
		shift int
		zp    int32
	}{
		{1412090957, -6, -4},
		{2147483647, 0, 0},
		{1073741824, -1, 127},
		{1999999999, -10, -128},
		{1082196484, -3, 17},
		{1500000000, 2, 5}, // left shift: scalar-only path
	}
	for _, c := range cases {
		for _, clamp := range [][2]int32{{-128, 127}, {-4, 127}, {0, 64}} {
			want := make([]int8, len(accs))
			requantI8Scalar(want, accs, c.mult, c.shift, c.zp, clamp[0], clamp[1])
			withSIMD(t, func(t *testing.T, _ bool) {
				got := make([]int8, len(accs))
				RequantI8(got, accs, c.mult, c.shift, c.zp, clamp[0], clamp[1])
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("mult=%d shift=%d zp=%d clamp=%v acc=%d: got %d want %d (simd=%v avx512=%v)",
							c.mult, c.shift, c.zp, clamp, accs[i], got[i], want[i], Enabled(), haveAVX512)
					}
				}
			})
		}
	}
}

// TestPackPairsMatchesScalar checks the vector widen/subtract path
// against the scalar packer across tail lengths and zero points.
func TestPackPairsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, zp := range []int32{-128, -7, 0, 127} {
		for _, n := range []int{1, 2, 15, 16, 17, 31, 32, 33, 64, 100} {
			in := randI8(rng, n)
			in[0] = -128
			want := make([]uint32, (n+1)/2)
			for cp := 0; cp < n/2; cp++ {
				v0 := uint32(uint16(int32(in[2*cp]) - zp))
				v1 := uint32(uint16(int32(in[2*cp+1]) - zp))
				want[cp] = v0 | v1<<16
			}
			if n%2 == 1 {
				want[n/2] = uint32(uint16(int32(in[n-1]) - zp))
			}
			withSIMD(t, func(t *testing.T, _ bool) {
				got := make([]uint32, (n+1)/2)
				if k := PackPairs(got, in, zp); k != (n+1)/2 {
					t.Fatalf("n=%d: %d pairs, want %d", n, k, (n+1)/2)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("zp=%d n=%d pair %d: %08x want %08x (simd=%v)", zp, n, i, got[i], want[i], Enabled())
					}
				}
			})
		}
	}
}

func TestPairWeights(t *testing.T) {
	w := []int8{ // cin=5 (odd), nf=3
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
		10, 11, 12,
		13, 14, 15, // odd trailing lane: paired with zero phantom weights
	}
	got := PairWeights(w, 5, 3)
	want := []int16{1, 4, 2, 5, 3, 6, 7, 10, 8, 11, 9, 12, 13, 0, 14, 0, 15, 0}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: %d want %d", i, got[i], want[i])
		}
	}
}

func benchConvF32(b *testing.B, on bool) {
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(on)
	const nf, cin = 64, 64
	rng := rand.New(rand.NewSource(1))
	w := randF32(rng, cin*nf)
	in := randF32(rng, cin)
	dst := make([]float32, nf)
	b.SetBytes(int64(nf * cin * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvAccF32(dst, w, in, nf)
	}
}

func BenchmarkConvAccF32SIMD(b *testing.B)   { benchConvF32(b, true) }
func BenchmarkConvAccF32Scalar(b *testing.B) { benchConvF32(b, false) }

func benchConvI8(b *testing.B, on bool) {
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(on)
	const nf, cin = 64, 64
	rng := rand.New(rand.NewSource(1))
	wPair := make([]int16, cin/2*nf*2)
	for i := range wPair {
		wPair[i] = int16(rng.Intn(255) - 127)
	}
	in := randI8(rng, cin)
	vp := make([]uint32, cin/2)
	acc := make([]int32, nf)
	b.SetBytes(int64(nf * cin))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackPairs(vp, in, 5)
		ConvAccI8(acc, wPair, vp, nf)
	}
}

func BenchmarkConvAccI8SIMD(b *testing.B)   { benchConvI8(b, true) }
func BenchmarkConvAccI8Scalar(b *testing.B) { benchConvI8(b, false) }

func benchRequant(b *testing.B, on bool) {
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(on)
	acc := make([]int32, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range acc {
		acc[i] = rng.Int31n(1<<24) - 1<<23
	}
	dst := make([]int8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RequantI8(dst, acc, 1412090957, -6, -4, -128, 127)
	}
}

func BenchmarkRequantI8SIMD(b *testing.B)   { benchRequant(b, true) }
func BenchmarkRequantI8Scalar(b *testing.B) { benchRequant(b, false) }
