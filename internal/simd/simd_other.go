//go:build !amd64

package simd

// Non-amd64 builds have no assembly fast path; enabled stays false and
// the stubs below are unreachable.
const haveAVX2 = false
const haveAVX512 = false

func convAccF32SIMD(dst, w, in []float32, stride int) {
	panic("simd: assembly path on non-amd64")
}

func mulAccF32SIMD(dst, a, b []float32) {
	panic("simd: assembly path on non-amd64")
}

func reluF32SIMD(x []float32) {
	panic("simd: assembly path on non-amd64")
}

func relu6F32SIMD(x []float32) {
	panic("simd: assembly path on non-amd64")
}

func packPairsSIMD(vp []uint32, in []int8, zp int32) {
	panic("simd: assembly path on non-amd64")
}

func convAccI8SIMD(acc []int32, wPair []int16, vp []uint32, stride int) {
	panic("simd: assembly path on non-amd64")
}

func mulAccI8SIMD(acc []int32, w, in []int8, zp int32) {
	panic("simd: assembly path on non-amd64")
}

func requantI8SIMD(dst []int8, acc []int32, mult, rs, round, zp, lo, hi int64) {
	panic("simd: assembly path on non-amd64")
}
