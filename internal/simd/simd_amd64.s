// AVX2 / AVX-512VL inner loops for the inference kernels. See simd.go
// for the bitwise-identity contract: float paths use separate VMULPS +
// VADDPS (never FMA) in the scalar ci order; integer paths are exact.

#include "textflag.h"

// func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func convAccF32SIMD(dst, w, in []float32, stride int)
//
// dst[f] += sum_ci in[ci] * w[ci*stride+f], len(dst) a multiple of 8.
// Output lanes are blocked 16-wide (two YMM accumulators) with the ci
// reduction innermost, so each lane sees the exact scalar rounding
// sequence: one rounded product, one rounded add per tap, in ci order.
TEXT ·convAccF32SIMD(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ w_base+24(FP), SI
	MOVQ in_base+48(FP), BX
	MOVQ in_len+56(FP), CX
	MOVQ stride+72(FP), R8
	SHLQ $2, R8               // stride in bytes
	XORQ R9, R9               // f

f32x16:
	MOVQ DX, AX
	SUBQ R9, AX
	CMPQ AX, $16
	JLT  f32x8
	VMOVUPS (DI)(R9*4), Y0
	VMOVUPS 32(DI)(R9*4), Y1
	LEAQ (SI)(R9*4), R10      // &w[f]
	XORQ R11, R11             // ci

c16:
	VBROADCASTSS (BX)(R11*4), Y2
	VMULPS (R10), Y2, Y3
	VADDPS Y3, Y0, Y0
	VMULPS 32(R10), Y2, Y3
	VADDPS Y3, Y1, Y1
	ADDQ R8, R10
	INCQ R11
	CMPQ R11, CX
	JLT  c16

	VMOVUPS Y0, (DI)(R9*4)
	VMOVUPS Y1, 32(DI)(R9*4)
	ADDQ $16, R9
	JMP  f32x16

f32x8:
	CMPQ AX, $8
	JLT  f32done
	VMOVUPS (DI)(R9*4), Y0
	LEAQ (SI)(R9*4), R10
	XORQ R11, R11

c8:
	VBROADCASTSS (BX)(R11*4), Y2
	VMULPS (R10), Y2, Y3
	VADDPS Y3, Y0, Y0
	ADDQ R8, R10
	INCQ R11
	CMPQ R11, CX
	JLT  c8

	VMOVUPS Y0, (DI)(R9*4)

f32done:
	VZEROUPPER
	RET

// func mulAccF32SIMD(dst, a, b []float32)
//
// dst[i] += a[i]*b[i], len(dst) a multiple of 8.
TEXT ·mulAccF32SIMD(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	XORQ R9, R9

ma32:
	VMOVUPS (SI)(R9*4), Y0
	VMULPS (BX)(R9*4), Y0, Y0
	VADDPS (DI)(R9*4), Y0, Y0
	VMOVUPS Y0, (DI)(R9*4)
	ADDQ $8, R9
	CMPQ R9, DX
	JLT  ma32
	VZEROUPPER
	RET

// func reluF32SIMD(x []float32)
//
// x[i] = max(0, x[i]) with x as the MAXPS second source, so NaN and -0
// lanes keep their scalar `if v < 0` behavior. len(x) a multiple of 8.
TEXT ·reluF32SIMD(SB), NOSPLIT, $0-24
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), DX
	VXORPS Y1, Y1, Y1
	XORQ R9, R9

relu8:
	VMAXPS (DI)(R9*4), Y1, Y0
	VMOVUPS Y0, (DI)(R9*4)
	ADDQ $8, R9
	CMPQ R9, DX
	JLT  relu8
	VZEROUPPER
	RET

// func relu6F32SIMD(x []float32)
TEXT ·relu6F32SIMD(SB), NOSPLIT, $0-24
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), DX
	VXORPS Y1, Y1, Y1
	MOVL $0x40C00000, AX      // float32(6)
	VMOVD AX, X2
	VPBROADCASTD X2, Y2
	XORQ R9, R9

relu68:
	VMAXPS (DI)(R9*4), Y1, Y0
	VMINPS Y0, Y2, Y0
	VMOVUPS Y0, (DI)(R9*4)
	ADDQ $8, R9
	CMPQ R9, DX
	JLT  relu68
	VZEROUPPER
	RET

// func packPairsSIMD(vp []uint32, in []int8, zp int32)
//
// Widens int8 lanes to zero-point-centered int16 and stores them
// contiguously — the little-endian int16 stream is exactly the packed
// (v0,v1) uint32 pair layout. len(in) a multiple of 16.
TEXT ·packPairsSIMD(SB), NOSPLIT, $0-52
	MOVQ vp_base+0(FP), DI
	MOVQ in_base+24(FP), SI
	MOVQ in_len+32(FP), DX
	MOVL zp+48(FP), AX
	VMOVD AX, X2
	VPBROADCASTW X2, Y2
	XORQ R9, R9

pp16:
	VPMOVSXBW (SI)(R9*1), Y0
	VPSUBW Y2, Y0, Y0
	VMOVDQU Y0, (DI)(R9*2)
	ADDQ $16, R9
	CMPQ R9, DX
	JLT  pp16
	VZEROUPPER
	RET

// func convAccI8SIMD(acc []int32, wPair []int16, vp []uint32, stride int)
//
// acc[f] += v0(cp)*wPair[(cp*stride+f)*2] + v1(cp)*wPair[(cp*stride+f)*2+1]
//
// len(acc) a multiple of 8. Each packed (v0,v1) int16 pair broadcasts
// across a YMM and VPMADDWD folds both input lanes into each int32
// accumulator — the x86 cousin of CMSIS-NN's SMLAD. Products are
// bounded (|v|<=255, |w|<=127) so the pairwise int32 sum is exact.
// Output lanes are blocked 32-wide, then 16, then 8.
TEXT ·convAccI8SIMD(SB), NOSPLIT, $0-80
	MOVQ acc_base+0(FP), DI
	MOVQ acc_len+8(FP), DX
	MOVQ wPair_base+24(FP), SI
	MOVQ vp_base+48(FP), BX
	MOVQ vp_len+56(FP), CX
	MOVQ stride+72(FP), R8
	SHLQ $2, R8               // pair-row pitch in bytes
	XORQ R9, R9               // f

i8x64:
	MOVQ DX, AX
	SUBQ R9, AX
	CMPQ AX, $64
	JLT  i8x32
	VMOVDQU (DI)(R9*4), Y0
	VMOVDQU 32(DI)(R9*4), Y1
	VMOVDQU 64(DI)(R9*4), Y2
	VMOVDQU 96(DI)(R9*4), Y3
	VMOVDQU 128(DI)(R9*4), Y4
	VMOVDQU 160(DI)(R9*4), Y5
	VMOVDQU 192(DI)(R9*4), Y6
	VMOVDQU 224(DI)(R9*4), Y7
	LEAQ (SI)(R9*4), R10      // &wPair[f*2]
	XORQ R11, R11             // cp

p64:
	VPBROADCASTD (BX)(R11*4), Y8
	VPMADDWD (R10), Y8, Y9
	VPADDD Y9, Y0, Y0
	VPMADDWD 32(R10), Y8, Y10
	VPADDD Y10, Y1, Y1
	VPMADDWD 64(R10), Y8, Y11
	VPADDD Y11, Y2, Y2
	VPMADDWD 96(R10), Y8, Y12
	VPADDD Y12, Y3, Y3
	VPMADDWD 128(R10), Y8, Y9
	VPADDD Y9, Y4, Y4
	VPMADDWD 160(R10), Y8, Y10
	VPADDD Y10, Y5, Y5
	VPMADDWD 192(R10), Y8, Y11
	VPADDD Y11, Y6, Y6
	VPMADDWD 224(R10), Y8, Y12
	VPADDD Y12, Y7, Y7
	ADDQ R8, R10
	INCQ R11
	CMPQ R11, CX
	JLT  p64

	VMOVDQU Y0, (DI)(R9*4)
	VMOVDQU Y1, 32(DI)(R9*4)
	VMOVDQU Y2, 64(DI)(R9*4)
	VMOVDQU Y3, 96(DI)(R9*4)
	VMOVDQU Y4, 128(DI)(R9*4)
	VMOVDQU Y5, 160(DI)(R9*4)
	VMOVDQU Y6, 192(DI)(R9*4)
	VMOVDQU Y7, 224(DI)(R9*4)
	ADDQ $64, R9
	JMP  i8x64

i8x32:
	MOVQ DX, AX
	SUBQ R9, AX
	CMPQ AX, $32
	JLT  i8x16
	VMOVDQU (DI)(R9*4), Y0
	VMOVDQU 32(DI)(R9*4), Y1
	VMOVDQU 64(DI)(R9*4), Y2
	VMOVDQU 96(DI)(R9*4), Y3
	LEAQ (SI)(R9*4), R10      // &wPair[f*2]
	XORQ R11, R11             // cp

p32:
	VPBROADCASTD (BX)(R11*4), Y4
	VPMADDWD (R10), Y4, Y5
	VPADDD Y5, Y0, Y0
	VPMADDWD 32(R10), Y4, Y5
	VPADDD Y5, Y1, Y1
	VPMADDWD 64(R10), Y4, Y6
	VPADDD Y6, Y2, Y2
	VPMADDWD 96(R10), Y4, Y6
	VPADDD Y6, Y3, Y3
	ADDQ R8, R10
	INCQ R11
	CMPQ R11, CX
	JLT  p32

	VMOVDQU Y0, (DI)(R9*4)
	VMOVDQU Y1, 32(DI)(R9*4)
	VMOVDQU Y2, 64(DI)(R9*4)
	VMOVDQU Y3, 96(DI)(R9*4)
	ADDQ $32, R9
	JMP  i8x32

i8x16:
	CMPQ AX, $16
	JLT  i8x8
	VMOVDQU (DI)(R9*4), Y0
	VMOVDQU 32(DI)(R9*4), Y1
	LEAQ (SI)(R9*4), R10
	XORQ R11, R11

p16:
	VPBROADCASTD (BX)(R11*4), Y4
	VPMADDWD (R10), Y4, Y5
	VPADDD Y5, Y0, Y0
	VPMADDWD 32(R10), Y4, Y5
	VPADDD Y5, Y1, Y1
	ADDQ R8, R10
	INCQ R11
	CMPQ R11, CX
	JLT  p16

	VMOVDQU Y0, (DI)(R9*4)
	VMOVDQU Y1, 32(DI)(R9*4)
	ADDQ $16, R9
	MOVQ DX, AX
	SUBQ R9, AX

i8x8:
	CMPQ AX, $8
	JLT  i8done
	VMOVDQU (DI)(R9*4), Y0
	LEAQ (SI)(R9*4), R10
	XORQ R11, R11

p8:
	VPBROADCASTD (BX)(R11*4), Y4
	VPMADDWD (R10), Y4, Y5
	VPADDD Y5, Y0, Y0
	ADDQ R8, R10
	INCQ R11
	CMPQ R11, CX
	JLT  p8

	VMOVDQU Y0, (DI)(R9*4)

i8done:
	VZEROUPPER
	RET

// func mulAccI8SIMD(acc []int32, w, in []int8, zp int32)
//
// acc[i] += (in[i]-zp)*w[i], len(acc) a multiple of 8.
TEXT ·mulAccI8SIMD(SB), NOSPLIT, $0-76
	MOVQ acc_base+0(FP), DI
	MOVQ acc_len+8(FP), DX
	MOVQ w_base+24(FP), SI
	MOVQ in_base+48(FP), BX
	MOVL zp+72(FP), AX
	VMOVD AX, X5
	VPBROADCASTD X5, Y5
	XORQ R9, R9

mai8:
	VPMOVSXBD (BX)(R9*1), Y0
	VPSUBD Y5, Y0, Y0
	VPMOVSXBD (SI)(R9*1), Y1
	VPMULLD Y1, Y0, Y0
	VPADDD (DI)(R9*4), Y0, Y0
	VMOVDQU Y0, (DI)(R9*4)
	ADDQ $8, R9
	CMPQ R9, DX
	JLT  mai8
	VZEROUPPER
	RET

// func requantI8SIMD(dst []int8, acc []int32, mult, rs, round, zp, lo, hi int64)
//
// TFLite requantization for the shift<=0 case, 8 lanes per iteration
// (AVX-512 F+VL on YMM):
//
//	prod  = int64(acc[i]) * mult           // VPMULDQ, exact
//	nudge = prod < 0 ? 1-2^30 : 2^30
//	high  = (prod + nudge) >> 31
//	high  = (high + round) >> rs           // round = rs>0 ? 1<<(rs-1) : 0
//	v     = sat_int32(high) + zp           // int32 wrap after saturate
//	dst[i] = int8(clamp(v, lo, hi))
//
// len(dst) == len(acc), a multiple of 8.
TEXT ·requantI8SIMD(SB), NOSPLIT, $0-96
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ acc_base+24(FP), SI
	VPBROADCASTD mult+48(FP), Y10
	VMOVQ rs+56(FP), X12
	VPBROADCASTQ round+64(FP), Y13
	MOVQ $0x40000000, AX      // 1<<30
	VMOVQ AX, X14
	VPBROADCASTQ X14, Y14
	MOVQ $-2147483647, AX     // (1-2^30) - (1<<30)
	VMOVQ AX, X15
	VPBROADCASTQ X15, Y15
	VPBROADCASTD zp+72(FP), Y8
	VPBROADCASTD lo+80(FP), Y9
	VPBROADCASTD hi+88(FP), Y7
	XORQ R9, R9

rq8:
	VPMOVSXDQ (SI)(R9*4), Y0  // 4 low lanes as int64
	VPMOVSXDQ 16(SI)(R9*4), Y1
	VPMULDQ Y10, Y0, Y0       // prod = acc * mult (int64, exact)
	VPMULDQ Y10, Y1, Y1
	VPSRAQ $63, Y0, Y2        // negative-lane mask
	VPSRAQ $63, Y1, Y3
	VPANDQ Y15, Y2, Y2
	VPANDQ Y15, Y3, Y3
	VPADDQ Y14, Y2, Y2        // nudge per lane
	VPADDQ Y14, Y3, Y3
	VPADDQ Y2, Y0, Y0
	VPADDQ Y3, Y1, Y1
	VPSRAQ $31, Y0, Y0
	VPSRAQ $31, Y1, Y1
	VPADDQ Y13, Y0, Y0        // rounding right shift by rs
	VPADDQ Y13, Y1, Y1
	VPSRAQ X12, Y0, Y0
	VPSRAQ X12, Y1, Y1
	VPMOVSQD Y0, X0           // saturate int64 -> int32
	VPMOVSQD Y1, X1
	VINSERTI128 $1, X1, Y0, Y0
	VPADDD Y8, Y0, Y0         // + zp (int32 wrap)
	VPMAXSD Y9, Y0, Y0
	VPMINSD Y7, Y0, Y0
	VPMOVDB Y0, (DI)(R9*1)    // truncate int32 -> int8
	ADDQ $8, R9
	CMPQ R9, DX
	JLT  rq8
	VZEROUPPER
	RET
