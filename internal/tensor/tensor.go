// Package tensor provides the dense tensor types used throughout edgepulse:
// float32 tensors for training and float inference, and int8 tensors with
// affine quantization parameters for quantized inference.
//
// Tensors are row-major and dense. Shapes follow the channels-last
// convention used by TFLite: a conv2d activation is [H, W, C] (batch
// dimensions are handled by the caller; all kernels in this repository are
// single-sample, as on a microcontroller).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Shape describes tensor dimensions, outermost first.
type Shape []int

// Elems returns the total number of elements, or 0 for an empty shape.
func (s Shape) Elems() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	if len(s) == 0 {
		return false
	}
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, "x") + "]"
}

// F32 is a dense float32 tensor.
type F32 struct {
	Shape Shape
	Data  []float32
}

// NewF32 allocates a zeroed float32 tensor with the given shape.
func NewF32(shape ...int) *F32 {
	s := Shape(shape).Clone()
	return &F32{Shape: s, Data: make([]float32, s.Elems())}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly Shape.Elems() elements.
func FromSlice(data []float32, shape ...int) (*F32, error) {
	s := Shape(shape).Clone()
	if s.Elems() != len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elems, slice has %d", s, s.Elems(), len(data))
	}
	return &F32{Shape: s, Data: data}, nil
}

// MustFromSlice is FromSlice but panics on shape mismatch. Use in tests and
// static model construction where the shape is known correct.
func MustFromSlice(data []float32, shape ...int) *F32 {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Clone returns a deep copy.
func (t *F32) Clone() *F32 {
	c := NewF32(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// At returns the element at the given multi-dimensional index.
func (t *F32) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *F32) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *F32) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", ix, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *F32) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *F32) Zero() { t.Fill(0) }

// Scale multiplies every element by v in place.
func (t *F32) Scale(v float32) {
	for i := range t.Data {
		t.Data[i] *= v
	}
}

// AddScaled adds a*o element-wise in place. Shapes must match in element
// count; shape structure is not checked (used by optimizers on flat params).
func (t *F32) AddScaled(o *F32, a float32) {
	for i := range t.Data {
		t.Data[i] += a * o.Data[i]
	}
}

// MinMax returns the minimum and maximum element. Empty tensors return 0,0.
func (t *F32) MinMax() (lo, hi float32) {
	if len(t.Data) == 0 {
		return 0, 0
	}
	lo, hi = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// AbsMax returns the maximum absolute element value.
func (t *F32) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// L2 returns the Euclidean norm of the tensor's data.
func (t *F32) L2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMax returns the index of the largest element (first on ties), or -1
// for an empty tensor.
func (t *F32) ArgMax() int {
	if len(t.Data) == 0 {
		return -1
	}
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

func (t *F32) String() string {
	return fmt.Sprintf("F32%v", t.Shape)
}

// QParams holds per-tensor affine quantization parameters:
// real = Scale * (q - ZeroPoint).
type QParams struct {
	Scale     float32
	ZeroPoint int32
}

// Quantize maps a real value to its int8 representation under p, saturating
// to the int8 range.
func (p QParams) Quantize(v float32) int8 {
	if p.Scale == 0 {
		return int8(clampI32(p.ZeroPoint, -128, 127))
	}
	q := int32(math.Round(float64(v)/float64(p.Scale))) + p.ZeroPoint
	return int8(clampI32(q, -128, 127))
}

// Dequantize maps an int8 value back to its real approximation.
func (p QParams) Dequantize(q int8) float32 {
	return p.Scale * float32(int32(q)-p.ZeroPoint)
}

func clampI32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// I8 is a dense int8 tensor with per-tensor affine quantization parameters.
type I8 struct {
	Shape Shape
	Data  []int8
	Q     QParams
}

// NewI8 allocates a zeroed int8 tensor with the given shape and params.
func NewI8(q QParams, shape ...int) *I8 {
	s := Shape(shape).Clone()
	return &I8{Shape: s, Data: make([]int8, s.Elems()), Q: q}
}

// Clone returns a deep copy.
func (t *I8) Clone() *I8 {
	c := NewI8(t.Q, t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Dequantize converts the tensor to float32 under its params.
func (t *I8) Dequantize() *F32 {
	out := NewF32(t.Shape...)
	for i, q := range t.Data {
		out.Data[i] = t.Q.Dequantize(q)
	}
	return out
}

// QuantizeF32 converts a float tensor to int8 under the given params.
func QuantizeF32(t *F32, q QParams) *I8 {
	out := NewI8(q, t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = q.Quantize(v)
	}
	return out
}

// ChooseQParams picks affine parameters covering [lo, hi] with the int8
// range [-128, 127], always including zero (required so that zero padding
// is exactly representable, as in TFLite).
func ChooseQParams(lo, hi float32) QParams {
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if lo == hi {
		return QParams{Scale: 1, ZeroPoint: 0}
	}
	scale := (hi - lo) / 255
	zp := int32(math.Round(float64(-128 - lo/scale)))
	return QParams{Scale: scale, ZeroPoint: clampI32(zp, -128, 127)}
}
