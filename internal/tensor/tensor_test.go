package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{}, 0},
		{Shape{5}, 5},
		{Shape{2, 3}, 6},
		{Shape{4, 4, 3}, 48},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqualCloneValid(t *testing.T) {
	a := Shape{2, 3}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 9
	if a[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if a.Equal(Shape{2}) || a.Equal(Shape{2, 4}) {
		t.Fatal("Equal false positives")
	}
	if !a.Valid() || (Shape{}).Valid() || (Shape{0, 2}).Valid() || (Shape{-1}).Valid() {
		t.Fatal("Valid misclassifies")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{49, 10}).String(); got != "[49x10]" {
		t.Errorf("String = %q", got)
	}
}

func TestNewAndIndex(t *testing.T) {
	m := NewF32(2, 3)
	m.Set(7, 1, 2)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.Data[5] != 7 {
		t.Fatal("row-major layout violated")
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewF32(2, 3)
	for _, idx := range [][]int{{0}, {2, 0}, {0, 3}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			m.At(idx...)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("FromSlice accepted wrong length")
	}
	m, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 4 {
		t.Fatal("wrong layout")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFromSlice did not panic")
		}
	}()
	MustFromSlice([]float32{1}, 3)
}

func TestFillScaleAddScaled(t *testing.T) {
	a := NewF32(4)
	a.Fill(2)
	b := NewF32(4)
	b.Fill(3)
	a.AddScaled(b, 2) // 2 + 2*3 = 8
	a.Scale(0.5)      // 4
	for _, v := range a.Data {
		if v != 4 {
			t.Fatalf("got %g, want 4", v)
		}
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestMinMaxAbsMaxArgMax(t *testing.T) {
	m := MustFromSlice([]float32{-3, 1, 2, -5, 4}, 5)
	lo, hi := m.MinMax()
	if lo != -5 || hi != 4 {
		t.Fatalf("MinMax = %g,%g", lo, hi)
	}
	if m.AbsMax() != 5 {
		t.Fatalf("AbsMax = %g", m.AbsMax())
	}
	if m.ArgMax() != 4 {
		t.Fatalf("ArgMax = %d", m.ArgMax())
	}
	empty := &F32{}
	if lo, hi := empty.MinMax(); lo != 0 || hi != 0 {
		t.Fatal("empty MinMax not 0,0")
	}
	if empty.ArgMax() != -1 {
		t.Fatal("empty ArgMax not -1")
	}
}

func TestL2(t *testing.T) {
	m := MustFromSlice([]float32{3, 4}, 2)
	if math.Abs(m.L2()-5) > 1e-12 {
		t.Fatalf("L2 = %g", m.L2())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] == 9 {
		t.Fatal("clone aliases data")
	}
}

func TestQuantizeDequantizeKnown(t *testing.T) {
	q := QParams{Scale: 0.5, ZeroPoint: 10}
	if q.Quantize(0) != 10 {
		t.Fatalf("q(0) = %d", q.Quantize(0))
	}
	if q.Quantize(1) != 12 {
		t.Fatalf("q(1) = %d", q.Quantize(1))
	}
	if q.Dequantize(12) != 1 {
		t.Fatalf("dq(12) = %g", q.Dequantize(12))
	}
	// Saturation.
	if q.Quantize(1e9) != 127 || q.Quantize(-1e9) != -128 {
		t.Fatal("no saturation")
	}
	// Zero scale degenerate.
	z := QParams{Scale: 0, ZeroPoint: 3}
	if z.Quantize(123) != 3 {
		t.Fatal("zero-scale quantize should pin to zero point")
	}
}

func TestChooseQParamsIncludesZero(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		// Constrain magnitudes to a sane calibration range.
		a = float32(math.Mod(float64(a), 1e6))
		b = float32(math.Mod(float64(b), 1e6))
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		q := ChooseQParams(lo, hi)
		// Zero must be exactly representable.
		return q.Dequantize(q.Quantize(0)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	// For values inside the calibration range, |dq(q(v)) - v| <= scale/2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := float32(-rng.Float64() * 10)
		hi := float32(rng.Float64() * 10)
		q := ChooseQParams(lo, hi)
		for i := 0; i < 50; i++ {
			v := lo + float32(rng.Float64())*(hi-lo)
			got := q.Dequantize(q.Quantize(v))
			if math.Abs(float64(got-v)) > float64(q.Scale)/2+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeF32RoundTrip(t *testing.T) {
	src := MustFromSlice([]float32{-1, -0.5, 0, 0.5, 1}, 5)
	lo, hi := src.MinMax()
	q := ChooseQParams(lo, hi)
	i8 := QuantizeF32(src, q)
	back := i8.Dequantize()
	for i := range src.Data {
		if math.Abs(float64(back.Data[i]-src.Data[i])) > float64(q.Scale) {
			t.Errorf("elem %d: %g -> %g", i, src.Data[i], back.Data[i])
		}
	}
	if !back.Shape.Equal(src.Shape) {
		t.Error("shape not preserved")
	}
}

func TestI8Clone(t *testing.T) {
	a := NewI8(QParams{Scale: 1}, 3)
	a.Data[0] = 42
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 42 {
		t.Fatal("I8 clone aliases data")
	}
	if b.Q.Scale != 1 {
		t.Fatal("qparams not copied")
	}
}

func TestChooseQParamsDegenerate(t *testing.T) {
	q := ChooseQParams(0, 0)
	if q.Scale != 1 || q.ZeroPoint != 0 {
		t.Fatalf("degenerate params = %+v", q)
	}
	// All-positive range must be widened to include zero.
	q = ChooseQParams(5, 10)
	if q.Dequantize(q.Quantize(0)) != 0 {
		t.Fatal("positive range does not represent zero")
	}
}
