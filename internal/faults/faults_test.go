package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	if err := Inject("nope"); err != nil {
		t.Fatalf("disarmed point injected: %v", err)
	}
}

func TestArmAndDisarm(t *testing.T) {
	boom := errors.New("boom")
	disarm := Arm("t.point", boom)
	if err := Inject("t.point"); !errors.Is(err, boom) {
		t.Fatalf("armed point returned %v", err)
	}
	if got := Hits("t.point"); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	disarm()
	disarm() // idempotent
	if err := Inject("t.point"); err != nil {
		t.Fatalf("disarmed point injected: %v", err)
	}
	if armedCount.Load() != 0 {
		t.Fatalf("armedCount = %d after disarm", armedCount.Load())
	}
}

func TestTimesBoundsInjections(t *testing.T) {
	boom := errors.New("boom")
	defer Arm("t.times", boom, Times(2))()
	for i := 0; i < 2; i++ {
		if err := Inject("t.times"); !errors.Is(err, boom) {
			t.Fatalf("injection %d: %v", i, err)
		}
	}
	if err := Inject("t.times"); err != nil {
		t.Fatalf("exhausted point injected: %v", err)
	}
	if got := Hits("t.times"); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

func TestDelaySleepsBeforeError(t *testing.T) {
	boom := errors.New("slow boom")
	defer Arm("t.delay", boom, Delay(20*time.Millisecond), Times(1))()
	start := time.Now()
	if err := Inject("t.delay"); !errors.Is(err, boom) {
		t.Fatalf("injection: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay not applied: %v", d)
	}
}

func TestRearmReplacesPoint(t *testing.T) {
	first, second := errors.New("first"), errors.New("second")
	d1 := Arm("t.rearm", first)
	d2 := Arm("t.rearm", second)
	if err := Inject("t.rearm"); !errors.Is(err, second) {
		t.Fatalf("re-armed point returned %v", err)
	}
	d1() // stale disarm must not remove the newer registration
	if err := Inject("t.rearm"); !errors.Is(err, second) {
		t.Fatalf("stale disarm removed the point: %v", err)
	}
	d2()
	if armedCount.Load() != 0 {
		t.Fatalf("armedCount = %d, want 0", armedCount.Load())
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	Arm("t.r1", errors.New("a"))
	Arm("t.r2", errors.New("b"))
	Reset()
	if err := Inject("t.r1"); err != nil {
		t.Fatalf("reset point injected: %v", err)
	}
	if armedCount.Load() != 0 {
		t.Fatalf("armedCount = %d after reset", armedCount.Load())
	}
}

func TestConcurrentInject(t *testing.T) {
	boom := errors.New("boom")
	defer Arm("t.conc", boom, Times(100))()
	var wg sync.WaitGroup
	var fired sync.Map
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n := 0
			for j := 0; j < 50; j++ {
				if Inject("t.conc") != nil {
					n++
				}
			}
			fired.Store(id, n)
		}(i)
	}
	wg.Wait()
	total := 0
	fired.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 100 {
		t.Fatalf("fired %d times, want exactly 100", total)
	}
}
