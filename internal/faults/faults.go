// Package faults is a build-tag-free fault-injection registry: packages
// on critical paths (store writes, job execution, stream ingest) declare
// named fault points with Inject, and chaos tests arm them with Arm to
// force errors or latency exactly where production code would fail. A
// disarmed registry costs one atomic load per Inject call, so the hooks
// stay compiled into release binaries without measurable overhead.
package faults

import (
	"sync"
	"sync/atomic"
	"time"
)

// armedCount tracks how many points are currently armed. Inject reads it
// lock-free; the slow path is taken only while a chaos test is running.
var armedCount atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	err error
	// remaining is how many more injections fire (-1 = until disarmed).
	remaining int64
	delay     time.Duration
	hits      int64
}

// Option tunes an armed fault point.
type Option func(*point)

// Times limits the fault to fire on the next n Inject calls; afterwards
// the point behaves as disarmed until re-armed. Default: unlimited.
func Times(n int64) Option {
	return func(p *point) { p.remaining = n }
}

// Delay makes each injection sleep before returning its error — the
// slow-disk / network-stall flavor of fault.
func Delay(d time.Duration) Option {
	return func(p *point) { p.delay = d }
}

// Arm activates the named fault point: subsequent Inject(name) calls
// return err (after an optional delay). It returns a disarm func that is
// safe to call multiple times; tests should defer it.
func Arm(name string, err error, opts ...Option) (disarm func()) {
	p := &point{err: err, remaining: -1}
	for _, opt := range opts {
		opt(p)
	}
	mu.Lock()
	if _, exists := points[name]; !exists {
		armedCount.Add(1)
	}
	points[name] = p
	mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			if points[name] == p {
				delete(points, name)
				armedCount.Add(-1)
			}
			mu.Unlock()
		})
	}
}

// Inject fires the named fault point: it returns nil when the point is
// disarmed (the fast path, one atomic load) and the armed error
// otherwise, sleeping first when a Delay was configured.
func Inject(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok || p.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.hits++
	err, delay := p.err, p.delay
	mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Hits reports how many times the named point has fired since it was
// last armed (0 when never armed).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Reset disarms every fault point — a test-teardown safety net.
func Reset() {
	mu.Lock()
	armedCount.Add(-int64(len(points)))
	points = map[string]*point{}
	mu.Unlock()
}
