package project

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/store"
)

// goldenV1Version is the dataset Version() content hash of the v1
// fixture tree under testdata/v1tree, computed by the pre-migration
// in-memory loader. The migration path must reproduce it byte for
// byte: content-addressed sample IDs are a pure function of sample
// content, so moving bytes between formats must not change them.
const goldenV1Version = "014020e84d90dc33"

// copyTree clones the committed fixture into a scratch dir (migration
// writes a store next to dataset.json, which must never dirty
// testdata).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrateV1TreeGoldenVersion(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, "testdata/v1tree", dir)

	r, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p, err := r.GetProject(1)
	if err != nil {
		t.Fatal(err)
	}
	ds := p.Dataset()
	if !ds.Lazy() {
		t.Fatal("migrated dataset is not store-backed")
	}
	if got := ds.Version(); got != goldenV1Version {
		t.Fatalf("migrated Version() = %s, want golden %s", got, goldenV1Version)
	}
	if ds.Len() != 4 {
		t.Fatalf("len = %d, want 4", ds.Len())
	}
	// The golden hash also matches a pure in-memory dataset built from
	// the same v1 JSON: migration is semantics-preserving, not just
	// self-consistent.
	blob, err := os.ReadFile(filepath.Join(dir, "projects", "1", "dataset.json"))
	if err != nil {
		t.Fatal(err)
	}
	var samples []persistedSample
	if err := json.Unmarshal(blob, &samples); err != nil {
		t.Fatal(err)
	}
	mem := data.New()
	for _, ps := range samples {
		if _, err := mem.Add(&data.Sample{
			Name: ps.Name, Label: ps.Label, Category: ps.Category, Metadata: ps.Metadata,
			Signal: dsp.Signal{
				Data: ps.Values, Rate: ps.Rate, Axes: ps.Axes,
				Width: ps.Width, Height: ps.Height,
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Version() != goldenV1Version {
		t.Fatalf("in-memory Version() = %s, want golden %s", mem.Version(), goldenV1Version)
	}

	// Signals round-trip through the store with full fidelity.
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Signal.Data) != h.Shape.Frames*h.Shape.Axes {
			t.Fatalf("sample %s: %d values, shape %+v", h.ID, len(s.Signal.Data), h.Shape)
		}
	}
	// Metadata survives migration.
	first, err := ds.Get(ds.List("")[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if first.Metadata["device_name"] != "dev-a" {
		t.Fatalf("metadata lost: %+v", first.Metadata)
	}
	// The v1 blob stays in place, readable by older builds.
	if _, err := os.Stat(filepath.Join(dir, "projects", "1", "dataset.json")); err != nil {
		t.Fatal("migration removed dataset.json")
	}
}

func TestMigrationRunsOnce(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, "testdata/v1tree", dir)

	r, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.GetProject(1)
	// Mutate post-migration state: a new upload that v1's dataset.json
	// does not contain.
	if _, err := p.Dataset().Add(&data.Sample{
		Name: "fresh.wav", Label: "yes",
		Signal: dsp.Signal{Data: []float32{9, 8, 7, 6}, Rate: 100, Axes: 1},
	}); err != nil {
		t.Fatal(err)
	}
	v := p.Dataset().Version()
	r.Close()

	// Second open must use the store, not re-migrate from dataset.json
	// (which would both duplicate the old samples and lose the new one).
	r2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	p2, _ := r2.GetProject(1)
	if p2.Dataset().Len() != 5 {
		t.Fatalf("len after reopen = %d, want 5", p2.Dataset().Len())
	}
	if p2.Dataset().Version() != v {
		t.Fatalf("version changed across reopen: %s != %s", p2.Dataset().Version(), v)
	}
}

// TestIncrementalPersistence is the crash-consistency contract at the
// project layer: uploads into an Open()ed registry are durable with no
// Save call at all.
func TestIncrementalPersistence(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := r.CreateUser("ada")
	p, err := r.CreateProject("live", u.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Dataset().Add(&data.Sample{
		Name: "w0", Label: "yes",
		Signal: dsp.Signal{Data: []float32{1, 2, 3}, Rate: 100, Axes: 1},
	}); err != nil {
		t.Fatal(err)
	}
	v := p.Dataset().Version()
	// Project headers (users, keys) still need one Save; sample data
	// does not. Simulate a crash after Save: no Close.
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Dataset().Add(&data.Sample{
		Name: "w1", Label: "no",
		Signal: dsp.Signal{Data: []float32{4, 5, 6}, Rate: 100, Axes: 1},
	}); err != nil {
		t.Fatal(err)
	}
	vAfter := p.Dataset().Version()
	if vAfter == v {
		t.Fatal("version did not change")
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.Authenticate(u.APIKey); err != nil {
		t.Fatal("user lost")
	}
	p2, err := r2.GetProject(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Both samples survive — including the one uploaded after the last
	// Save.
	if p2.Dataset().Len() != 2 {
		t.Fatalf("len = %d, want 2", p2.Dataset().Len())
	}
	if p2.Dataset().Version() != vAfter {
		t.Fatalf("version %s != %s", p2.Dataset().Version(), vAfter)
	}
}

// TestMigrationResumesAfterCrash simulates a crash mid-migration: the
// store journal already holds a prefix of the v1 samples but the
// completion marker (manifest.json) was never written. Re-opening must
// finish the migration idempotently — no duplicates, no lost samples,
// golden version hash intact.
func TestMigrationResumesAfterCrash(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, "testdata/v1tree", dir)

	// Replay the first half of the migration by hand, then "crash"
	// before any snapshot: manifest.json absent, journal populated.
	blob, err := os.ReadFile(filepath.Join(dir, "projects", "1", "dataset.json"))
	if err != nil {
		t.Fatal(err)
	}
	var samples []persistedSample
	if err := json.Unmarshal(blob, &samples); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(datasetDir(dir, 1), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := data.Open(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range samples[:2] {
		if _, err := partial.Add(&data.Sample{
			Name: ps.Name, Label: ps.Label, Category: ps.Category, Metadata: ps.Metadata,
			Signal: dsp.Signal{Data: ps.Values, Rate: ps.Rate, Axes: ps.Axes,
				Width: ps.Width, Height: ps.Height},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the worst interruption: an automatic journal compaction
	// already wrote manifest.json mid-migration (so its existence must
	// NOT be read as migration-complete), but the completion marker was
	// never written.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(datasetDir(dir, 1), migratedMarker)); err == nil {
		t.Fatal("precondition: migration marker must not exist yet")
	}

	r, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p, _ := r.GetProject(1)
	if p.Dataset().Len() != 4 {
		t.Fatalf("len = %d, want 4 (resume added the rest exactly once)", p.Dataset().Len())
	}
	if got := p.Dataset().Version(); got != goldenV1Version {
		t.Fatalf("resumed migration Version() = %s, want %s", got, goldenV1Version)
	}
	// Completion marker now present: a further open skips migration.
	if _, err := os.Stat(filepath.Join(datasetDir(dir, 1), migratedMarker)); err != nil {
		t.Fatal("migration completion marker missing")
	}
}
