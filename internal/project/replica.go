package project

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"edgepulse/internal/data"
	"edgepulse/internal/store"
	"edgepulse/internal/tflm"
)

// Registry replication: a follower runs a read-only standby of one
// worker's registry. Dataset samples replicate at the store layer
// (segment bytes + journal frames, internal/store/replication.go);
// everything else — users, orgs, project headers, impulse designs,
// trained model blobs — is small metadata that replicates as a whole
// bundle: the primary exports a MetaBundle, the follower applies it,
// reconciling its in-memory registry and rewriting the same files a
// durable primary keeps on disk. A restarted follower therefore
// reopens from its own tree exactly like a worker does.

// ErrReplica reports a local mutation attempted on a read-only replica
// registry.
var ErrReplica = errors.New("project: read-only replica registry")

// ProjectMeta carries one project's design artifacts in a MetaBundle.
type ProjectMeta struct {
	ID int
	// Impulse is the impulse.json design blob (nil: none configured).
	Impulse []byte
	// Model and QModel are the trained EPTM weight blobs.
	Model  []byte
	QModel []byte
}

// MetaBundle is the control-plane state a primary exports for its
// follower: the registry.json snapshot plus per-project design blobs.
type MetaBundle struct {
	Registry []byte
	Projects []ProjectMeta
}

// Replica reports whether the registry is a read-only standby.
func (r *Registry) Replica() bool { return r.replica }

// Dir returns the registry's durable root ("" for in-memory).
func (r *Registry) Dir() string { return r.dir }

// OpenReplica opens dir as a read-only standby registry. Local
// mutations (CreateUser, CreateProject, ...) are rejected with
// ErrReplica; state advances only through ApplyMeta and the store-level
// replication apply path on each project's dataset. An existing tree
// (from an earlier follower run) is reloaded with every dataset opened
// in replica mode.
func OpenReplica(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := NewRegistry()
	r.dir = dir
	r.replica = true
	blob, err := os.ReadFile(filepath.Join(dir, "registry.json"))
	if os.IsNotExist(err) {
		return r, nil
	}
	if err != nil {
		return nil, err
	}
	if err := r.applyRegistryBlob(blob); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// ExportMeta renders the registry's control-plane state as a bundle a
// follower can apply. Blobs are marshaled from the live in-memory
// state, so the bundle is consistent even if a write-through persist
// is still in flight.
func (r *Registry) ExportMeta() (MetaBundle, error) {
	r.mu.RLock()
	blob, err := r.renderRegistryLocked()
	projects := make([]*Project, 0, len(r.projects))
	for _, p := range r.projects {
		projects = append(projects, p)
	}
	r.mu.RUnlock()
	if err != nil {
		return MetaBundle{}, err
	}
	b := MetaBundle{Registry: blob}
	for _, p := range projects {
		pm := ProjectMeta{ID: p.ID}
		if imp := p.Impulse(); imp != nil {
			cfg, err := json.Marshal(imp.Config())
			if err != nil {
				return MetaBundle{}, err
			}
			pm.Impulse = cfg
			if imp.Model != nil {
				if pm.Model, err = tflm.Marshal(tflm.ModelFileFromFloat(imp.Model)); err != nil {
					return MetaBundle{}, err
				}
			}
			if imp.QModel != nil {
				if pm.QModel, err = tflm.Marshal(tflm.ModelFileFromQuant(imp.QModel)); err != nil {
					return MetaBundle{}, err
				}
			}
		}
		b.Projects = append(b.Projects, pm)
	}
	return b, nil
}

// ApplyMeta reconciles a replica registry against a primary's exported
// bundle: users, orgs and counters are replaced; projects are created
// (with replica-mode dataset stores), updated, or dropped; the registry
// blob and per-project design blobs land on disk so a follower restart
// reopens the same state.
func (r *Registry) ApplyMeta(b MetaBundle) error {
	if !r.replica {
		return fmt.Errorf("project: ApplyMeta on a primary registry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.applyRegistryBlobLocked(b.Registry); err != nil {
		return err
	}
	if err := store.AtomicWriteFile(filepath.Join(r.dir, "registry.json"), b.Registry); err != nil {
		return err
	}
	for _, pm := range b.Projects {
		p, ok := r.projects[pm.ID]
		if !ok {
			continue // header row missing from the registry blob
		}
		if err := r.applyProjectMetaLocked(p, pm); err != nil {
			return err
		}
	}
	return nil
}

// applyRegistryBlob parses and applies a registry.json blob, opening
// replica dataset stores for new projects.
func (r *Registry) applyRegistryBlob(blob []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applyRegistryBlobLocked(blob)
}

func (r *Registry) applyRegistryBlobLocked(blob []byte) error {
	var pr persistedRegistry
	if err := json.Unmarshal(blob, &pr); err != nil {
		return fmt.Errorf("project: corrupt replicated registry: %w", err)
	}
	users := make(map[string]*User, len(pr.Users))
	byKey := make(map[string]*User, len(pr.Users))
	for _, u := range pr.Users {
		user := &User{ID: u.ID, Name: u.Name, APIKey: u.APIKey}
		users[user.ID] = user
		byKey[user.APIKey] = user
	}
	orgs := make(map[string]*Organization, len(pr.Orgs))
	for _, o := range pr.Orgs {
		org := &Organization{ID: o.ID, Name: o.Name, Members: map[string]bool{}}
		for _, m := range o.Members {
			org.Members[m] = true
		}
		orgs[org.ID] = org
	}
	r.users, r.byKey, r.orgs = users, byKey, orgs
	r.nextUser, r.nextProj, r.nextOrg = pr.NextUser, pr.NextProj, pr.NextOrg

	seen := make(map[int]bool, len(pr.Projects))
	for _, pp := range pr.Projects {
		seen[pp.ID] = true
		p, ok := r.projects[pp.ID]
		if !ok {
			p = &Project{
				ID: pp.ID, Name: pp.Name, OwnerID: pp.OwnerID, HMACKey: pp.HMACKey,
				collaborators: map[string]bool{},
			}
			st, err := store.OpenReplica(datasetDir(r.dir, pp.ID), store.Options{})
			if err != nil {
				return fmt.Errorf("project %d: open replica dataset: %w", pp.ID, err)
			}
			ds, err := data.Open(st, 0)
			if err != nil {
				st.Close()
				return fmt.Errorf("project %d: %w", pp.ID, err)
			}
			p.store, p.dataset = st, ds
			if imp, err := loadProjectImpulse(projectDir(r.dir, pp.ID)); err == nil && imp != nil {
				p.impulse = imp
			}
			r.projects[pp.ID] = p
		}
		p.mu.Lock()
		collabs := make(map[string]bool, len(pp.Collaborators))
		for _, c := range pp.Collaborators {
			collabs[c] = true
		}
		p.collaborators = collabs
		p.public = pp.Public
		p.versions = append([]Version(nil), pp.Versions...)
		p.mu.Unlock()
	}
	for id, p := range r.projects {
		if seen[id] {
			continue
		}
		p.mu.Lock()
		if p.store != nil {
			p.store.Close()
			p.store = nil
		}
		p.mu.Unlock()
		delete(r.projects, id)
	}
	return nil
}

// applyProjectMetaLocked writes one project's design blobs when they
// differ from disk and reloads the impulse. Caller holds r.mu.
func (r *Registry) applyProjectMetaLocked(p *Project, pm ProjectMeta) error {
	pdir := projectDir(r.dir, p.ID)
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		return err
	}
	changed := false
	for _, f := range []struct {
		name string
		blob []byte
	}{
		{"impulse.json", pm.Impulse},
		{"model.eptm", pm.Model},
		{"model_int8.eptm", pm.QModel},
	} {
		path := filepath.Join(pdir, f.name)
		if f.blob == nil {
			if _, err := os.Stat(path); err == nil {
				if err := os.Remove(path); err != nil {
					return err
				}
				changed = true
			}
			continue
		}
		cur, err := os.ReadFile(path)
		if err == nil && string(cur) == string(f.blob) {
			continue
		}
		if err := store.AtomicWriteFile(path, f.blob); err != nil {
			return err
		}
		changed = true
	}
	if !changed {
		return nil
	}
	imp, err := loadProjectImpulse(pdir)
	if err != nil {
		return fmt.Errorf("project %d: reload impulse: %w", p.ID, err)
	}
	p.mu.Lock()
	p.impulse = imp
	p.mu.Unlock()
	return nil
}

// ResetReplicaDataset closes and deletes a replica project's dataset
// tree ahead of a snapshot bootstrap: the follower then writes the
// primary's manifest blob and full segment copies (store.PrepareBootstrap
// / store.SegmentPath) into ReplicaDatasetDir and calls
// ReopenReplicaDataset.
func (r *Registry) ResetReplicaDataset(id int) error {
	if !r.replica {
		return fmt.Errorf("project: ResetReplicaDataset on a primary registry")
	}
	r.mu.RLock()
	p, ok := r.projects[id]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("project: no project %d", id)
	}
	p.mu.Lock()
	if p.store != nil {
		p.store.Close()
		p.store = nil
	}
	p.mu.Unlock()
	return os.RemoveAll(datasetDir(r.dir, id))
}

// ReplicaDatasetDir returns a project's dataset store root — where a
// snapshot bootstrap writes manifest and segment files.
func (r *Registry) ReplicaDatasetDir(id int) string { return datasetDir(r.dir, id) }

// ReopenReplicaDataset reopens a project's dataset store in replica
// mode after a snapshot bootstrap populated its tree, swapping in a
// fresh lazy dataset view.
func (r *Registry) ReopenReplicaDataset(id int) error {
	if !r.replica {
		return fmt.Errorf("project: ReopenReplicaDataset on a primary registry")
	}
	r.mu.RLock()
	p, ok := r.projects[id]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("project: no project %d", id)
	}
	st, err := store.OpenReplica(datasetDir(r.dir, id), store.Options{})
	if err != nil {
		return err
	}
	ds, err := data.Open(st, 0)
	if err != nil {
		st.Close()
		return err
	}
	p.mu.Lock()
	if p.store != nil {
		p.store.Close()
	}
	p.store, p.dataset = st, ds
	p.mu.Unlock()
	return nil
}
