package project

import (
	"strings"
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
)

func addSample(t *testing.T, p *Project, label string, vals ...float32) {
	t.Helper()
	if _, err := p.Dataset().Add(&data.Sample{
		Name: "s" + label, Label: label,
		Signal: dsp.Signal{Data: vals, Rate: 100, Axes: 1},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUserLifecycle(t *testing.T) {
	r := NewRegistry()
	u, err := r.CreateUser("ada")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(u.APIKey, "ei_") {
		t.Errorf("api key %q", u.APIKey)
	}
	got, err := r.Authenticate(u.APIKey)
	if err != nil || got.ID != u.ID {
		t.Fatalf("auth: %v %v", got, err)
	}
	if _, err := r.Authenticate("wrong"); err == nil {
		t.Error("authenticated bad key")
	}
	if _, err := r.CreateUser(""); err == nil {
		t.Error("accepted empty name")
	}
	if _, err := r.GetUser(u.ID); err != nil {
		t.Error(err)
	}
	if _, err := r.GetUser("ghost"); err == nil {
		t.Error("found ghost user")
	}
}

func TestProjectAccessControl(t *testing.T) {
	r := NewRegistry()
	owner, _ := r.CreateUser("owner")
	guest, _ := r.CreateUser("guest")
	stranger, _ := r.CreateUser("stranger")
	p, err := r.CreateProject("kws", owner.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CanAccess(owner.ID) {
		t.Error("owner denied")
	}
	if p.CanAccess(guest.ID) {
		t.Error("guest allowed before invite")
	}
	p.AddCollaborator(guest.ID)
	if !p.CanAccess(guest.ID) {
		t.Error("collaborator denied")
	}
	if p.CanAccess(stranger.ID) {
		t.Error("stranger allowed")
	}
	if got := p.Collaborators(); len(got) != 1 || got[0] != guest.ID {
		t.Errorf("collaborators: %v", got)
	}
	p.RemoveCollaborator(guest.ID)
	if p.CanAccess(guest.ID) {
		t.Error("removed collaborator still allowed")
	}
	// Listing.
	if got := r.ListAccessible(owner.ID); len(got) != 1 {
		t.Errorf("owner list: %d", len(got))
	}
	if got := r.ListAccessible(stranger.ID); len(got) != 0 {
		t.Errorf("stranger list: %d", len(got))
	}
}

func TestCreateProjectValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.CreateProject("x", "nobody"); err == nil {
		t.Error("accepted unknown owner")
	}
	u, _ := r.CreateUser("u")
	if _, err := r.CreateProject("", u.ID); err == nil {
		t.Error("accepted empty project name")
	}
	if _, err := r.GetProject(99); err == nil {
		t.Error("found ghost project")
	}
}

func TestPublicProjectsAndClone(t *testing.T) {
	r := NewRegistry()
	owner, _ := r.CreateUser("owner")
	other, _ := r.CreateUser("other")
	p, _ := r.CreateProject("public-kws", owner.ID)
	addSample(t, p, "yes", 1, 2, 3)
	addSample(t, p, "no", 4, 5, 6)
	imp := core.New("public-kws")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 30, FrequencyHz: 100, Axes: 1}
	block, _ := dsp.New("raw", nil)
	imp.UseDSP(block)
	imp.Classes = []string{"no", "yes"}
	p.SetImpulse(imp)

	// Not public yet: clone by another user fails.
	if _, err := r.CloneProject(p.ID, other.ID); err == nil {
		t.Error("cloned private project")
	}
	if got := r.ListPublic(); len(got) != 0 {
		t.Errorf("public list: %d", len(got))
	}
	p.SetPublic(true)
	if got := r.ListPublic(); len(got) != 1 {
		t.Errorf("public list: %d", len(got))
	}
	clone, err := r.CloneProject(p.ID, other.ID)
	if err != nil {
		t.Fatal(err)
	}
	if clone.OwnerID != other.ID {
		t.Error("clone ownership")
	}
	if clone.Dataset().Len() != 2 {
		t.Errorf("clone dataset %d samples", clone.Dataset().Len())
	}
	if clone.Impulse() == nil || clone.Impulse().DSP[0].Block.Name() != "raw" {
		t.Error("clone impulse lost")
	}
	// Mutating the clone must not touch the original.
	addSample(t, clone, "maybe", 7, 8, 9)
	if p.Dataset().Len() != 2 {
		t.Error("clone aliases source dataset")
	}
	if _, err := r.CloneProject(999, other.ID); err == nil {
		t.Error("cloned ghost project")
	}
}

func TestSnapshotVersioning(t *testing.T) {
	r := NewRegistry()
	u, _ := r.CreateUser("u")
	p, _ := r.CreateProject("v", u.ID)
	addSample(t, p, "a", 1, 2)
	v1 := p.Snapshot("initial")
	if v1.ID != 1 || v1.DatasetVersion == "" {
		t.Fatalf("v1: %+v", v1)
	}
	addSample(t, p, "b", 3, 4)
	v2 := p.Snapshot("added b")
	if v2.DatasetVersion == v1.DatasetVersion {
		t.Error("dataset version unchanged after add")
	}
	imp := core.New("v")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 20, FrequencyHz: 100, Axes: 1}
	block, _ := dsp.New("raw", nil)
	imp.UseDSP(block)
	imp.Classes = []string{"a", "b"}
	p.SetImpulse(imp)
	v3 := p.Snapshot("with impulse")
	if len(v3.ImpulseConfig) == 0 {
		t.Error("impulse config missing from snapshot")
	}
	if got := p.Versions(); len(got) != 3 {
		t.Errorf("%d versions", len(got))
	}
}

func TestOrganizations(t *testing.T) {
	r := NewRegistry()
	a, _ := r.CreateUser("a")
	b, _ := r.CreateUser("b")
	org, err := r.CreateOrganization("acme", a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !org.Members[a.ID] {
		t.Error("owner not a member")
	}
	if err := r.JoinOrganization(org.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if !org.Members[b.ID] {
		t.Error("join failed")
	}
	if err := r.JoinOrganization("nope", b.ID); err == nil {
		t.Error("joined ghost org")
	}
	if err := r.JoinOrganization(org.ID, "ghost"); err == nil {
		t.Error("ghost user joined")
	}
	if _, err := r.CreateOrganization("x", "ghost"); err == nil {
		t.Error("ghost owner accepted")
	}
}

func TestHMACKeysUnique(t *testing.T) {
	r := NewRegistry()
	u, _ := r.CreateUser("u")
	p1, _ := r.CreateProject("a", u.ID)
	p2, _ := r.CreateProject("b", u.ID)
	if p1.HMACKey == p2.HMACKey {
		t.Error("HMAC keys collide")
	}
	if p1.ID == p2.ID {
		t.Error("project IDs collide")
	}
}
