package project

import (
	"os"
	"path/filepath"
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	owner, _ := r.CreateUser("owner")
	guest, _ := r.CreateUser("guest")
	org, _ := r.CreateOrganization("acme", owner.ID)
	r.JoinOrganization(org.ID, guest.ID)
	p, _ := r.CreateProject("kws", owner.ID)
	p.AddCollaborator(guest.ID)
	p.SetPublic(true)

	// Dataset + trained impulse.
	ds, err := synth.KWSDataset(2, 10, 8000, 0.5, 0.03, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		clone := *s
		clone.ID = ""
		if _, err := p.Dataset().Add(&clone); err != nil {
			t.Fatal(err)
		}
	}
	imp := core.New("kws")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	block, _ := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	imp.UseDSP(block)
	imp.Classes = p.Dataset().Labels()
	shape, _ := imp.FeatureShape()
	model, _ := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, len(imp.Classes))
	nn.InitWeights(model, 4)
	imp.AttachClassifier(model)
	if _, err := imp.Train(p.Dataset(), trainer.Config{Epochs: 4, LearningRate: 0.005, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := imp.Quantize(p.Dataset()); err != nil {
		t.Fatal(err)
	}
	p.SetImpulse(imp)
	p.Snapshot("v1")

	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Reload into a fresh registry.
	r2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Users and auth survive.
	if _, err := r2.Authenticate(owner.APIKey); err != nil {
		t.Fatal("owner key lost")
	}
	p2, err := r2.GetProject(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Public() || !p2.CanAccess(guest.ID) || p2.HMACKey != p.HMACKey {
		t.Error("project metadata lost")
	}
	if p2.Dataset().Len() != p.Dataset().Len() {
		t.Fatalf("dataset %d != %d", p2.Dataset().Len(), p.Dataset().Len())
	}
	if p2.Dataset().Version() != p.Dataset().Version() {
		t.Error("dataset version changed across save/load")
	}
	if len(p2.Versions()) != 1 {
		t.Error("snapshots lost")
	}
	// The reloaded impulse predicts identically.
	imp2 := p2.Impulse()
	if imp2 == nil || imp2.Model == nil || imp2.QModel == nil {
		t.Fatal("impulse or models lost")
	}
	for _, h := range p.Dataset().List(data.Testing) {
		s, err := p.Dataset().Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		a, err := imp.Classify(s.Signal)
		if err != nil {
			t.Fatal(err)
		}
		b, err := imp2.Classify(s.Signal)
		if err != nil {
			t.Fatal(err)
		}
		if a.Label != b.Label {
			t.Fatalf("reloaded impulse diverges: %q vs %q", a.Label, b.Label)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("loaded empty directory")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "registry.json"), []byte("{bad"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Error("loaded corrupt registry")
	}
}

func TestSaveEmptyRegistry(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.ListPublic()) != 0 {
		t.Error("phantom projects")
	}
}
