// Package project implements the collaboration layer of the platform
// (paper Sec. 3 and 6.3): users with API keys, organizations, projects
// holding a dataset and an impulse, multi-user collaboration, project
// versioning (snapshots of dataset version + impulse design), and public
// projects discoverable by everyone.
package project

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
)

// User is one platform account.
type User struct {
	ID     string
	Name   string
	APIKey string
}

// Organization groups users for enterprise collaboration.
type Organization struct {
	ID      string
	Name    string
	Members map[string]bool
}

// Version is a project snapshot: the paper's answer to the ML
// reproducibility problem — data, preprocessing, and model design
// captured together.
type Version struct {
	ID int
	// Note is the user-supplied description.
	Note string
	// DatasetVersion is the content hash of the dataset at snapshot time.
	DatasetVersion string
	// ImpulseConfig is the serialized impulse design (nil if unset).
	ImpulseConfig json.RawMessage
	CreatedAt     time.Time
}

// Project is one ML project.
type Project struct {
	ID      int
	Name    string
	OwnerID string
	// HMACKey authenticates device data ingestion.
	HMACKey string

	mu            sync.RWMutex
	collaborators map[string]bool
	public        bool
	dataset       *data.Dataset
	impulse       *core.Impulse
	versions      []Version
}

// Dataset returns the project's dataset.
func (p *Project) Dataset() *data.Dataset { return p.dataset }

// Impulse returns the configured impulse, or nil.
func (p *Project) Impulse() *core.Impulse {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.impulse
}

// SetImpulse installs an impulse design.
func (p *Project) SetImpulse(imp *core.Impulse) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.impulse = imp
}

// Public reports whether the project is publicly listed.
func (p *Project) Public() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.public
}

// SetPublic toggles public visibility (paper Sec. 6.3).
func (p *Project) SetPublic(public bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.public = public
}

// AddCollaborator grants a user access.
func (p *Project) AddCollaborator(userID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.collaborators[userID] = true
}

// RemoveCollaborator revokes access (owners cannot be removed).
func (p *Project) RemoveCollaborator(userID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.collaborators, userID)
}

// Collaborators lists user IDs with access (excluding the owner).
func (p *Project) Collaborators() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.collaborators))
	for id := range p.collaborators {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CanAccess reports whether the user may read/write the project.
func (p *Project) CanAccess(userID string) bool {
	if userID == p.OwnerID {
		return true
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.collaborators[userID]
}

// Snapshot records a version of the current dataset + impulse design.
func (p *Project) Snapshot(note string) Version {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := Version{
		ID:             len(p.versions) + 1,
		Note:           note,
		DatasetVersion: p.dataset.Version(),
		CreatedAt:      time.Now(),
	}
	if p.impulse != nil {
		if blob, err := json.Marshal(p.impulse.Config()); err == nil {
			v.ImpulseConfig = blob
		}
	}
	p.versions = append(p.versions, v)
	return v
}

// Versions lists snapshots oldest-first.
func (p *Project) Versions() []Version {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]Version(nil), p.versions...)
}

// Registry is the in-memory store of users, organizations and projects.
type Registry struct {
	mu       sync.RWMutex
	users    map[string]*User // by ID
	byKey    map[string]*User // by API key
	orgs     map[string]*Organization
	projects map[int]*Project
	nextUser int
	nextProj int
	nextOrg  int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		users:    map[string]*User{},
		byKey:    map[string]*User{},
		orgs:     map[string]*Organization{},
		projects: map[int]*Project{},
	}
}

func randomKey(prefix string) string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return prefix + hex.EncodeToString(b)
}

// CreateUser registers a user and mints an API key.
func (r *Registry) CreateUser(name string) (*User, error) {
	if name == "" {
		return nil, fmt.Errorf("project: user name required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextUser++
	u := &User{
		ID:     fmt.Sprintf("user-%d", r.nextUser),
		Name:   name,
		APIKey: randomKey("ei_"),
	}
	r.users[u.ID] = u
	r.byKey[u.APIKey] = u
	return u, nil
}

// Authenticate resolves an API key to its user.
func (r *Registry) Authenticate(apiKey string) (*User, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.byKey[apiKey]
	if !ok {
		return nil, fmt.Errorf("project: invalid API key")
	}
	return u, nil
}

// GetUser returns a user by ID.
func (r *Registry) GetUser(id string) (*User, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.users[id]
	if !ok {
		return nil, fmt.Errorf("project: no user %s", id)
	}
	return u, nil
}

// CreateOrganization registers an organization owned by a user.
func (r *Registry) CreateOrganization(name, ownerID string) (*Organization, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.users[ownerID]; !ok {
		return nil, fmt.Errorf("project: no user %s", ownerID)
	}
	r.nextOrg++
	org := &Organization{
		ID:      fmt.Sprintf("org-%d", r.nextOrg),
		Name:    name,
		Members: map[string]bool{ownerID: true},
	}
	r.orgs[org.ID] = org
	return org, nil
}

// JoinOrganization adds a member.
func (r *Registry) JoinOrganization(orgID, userID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	org, ok := r.orgs[orgID]
	if !ok {
		return fmt.Errorf("project: no organization %s", orgID)
	}
	if _, ok := r.users[userID]; !ok {
		return fmt.Errorf("project: no user %s", userID)
	}
	org.Members[userID] = true
	return nil
}

// CreateProject makes a project owned by the user, with a fresh dataset
// and ingestion HMAC key.
func (r *Registry) CreateProject(name, ownerID string) (*Project, error) {
	if name == "" {
		return nil, fmt.Errorf("project: project name required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.users[ownerID]; !ok {
		return nil, fmt.Errorf("project: no user %s", ownerID)
	}
	r.nextProj++
	p := &Project{
		ID:            r.nextProj,
		Name:          name,
		OwnerID:       ownerID,
		HMACKey:       randomKey("hmac_"),
		collaborators: map[string]bool{},
		dataset:       data.New(),
	}
	r.projects[p.ID] = p
	return p, nil
}

// GetProject returns a project by ID.
func (r *Registry) GetProject(id int) (*Project, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.projects[id]
	if !ok {
		return nil, fmt.Errorf("project: no project %d", id)
	}
	return p, nil
}

// ListAccessible returns projects a user owns or collaborates on, by ID.
func (r *Registry) ListAccessible(userID string) []*Project {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Project
	for _, p := range r.projects {
		if p.CanAccess(userID) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ListPublic returns all public projects, by ID — the searchable index of
// paper Sec. 6.3.
func (r *Registry) ListPublic() []*Project {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Project
	for _, p := range r.projects {
		if p.Public() {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CloneProject copies a public project's dataset and impulse design into
// a new project owned by the user (the "clone public project" flow).
func (r *Registry) CloneProject(srcID int, ownerID string) (*Project, error) {
	src, err := r.GetProject(srcID)
	if err != nil {
		return nil, err
	}
	if !src.Public() && !src.CanAccess(ownerID) {
		return nil, fmt.Errorf("project: project %d is not public", srcID)
	}
	dst, err := r.CreateProject(src.Name+" (clone)", ownerID)
	if err != nil {
		return nil, err
	}
	for _, s := range src.Dataset().List("") {
		clone := *s
		clone.ID = ""
		clone.Metadata = map[string]string{}
		for k, v := range s.Metadata {
			clone.Metadata[k] = v
		}
		if _, err := dst.Dataset().Add(&clone); err != nil {
			return nil, err
		}
	}
	if imp := src.Impulse(); imp != nil {
		cloned, err := core.FromConfig(imp.Config())
		if err != nil {
			return nil, err
		}
		dst.SetImpulse(cloned)
	}
	return dst, nil
}
