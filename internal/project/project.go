// Package project implements the collaboration layer of the platform
// (paper Sec. 3 and 6.3): users with API keys, organizations, projects
// holding a dataset and an impulse, multi-user collaboration, project
// versioning (snapshots of dataset version + impulse design), and public
// projects discoverable by everyone.
package project

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/store"
)

// User is one platform account.
type User struct {
	ID     string
	Name   string
	APIKey string
}

// Organization groups users for enterprise collaboration.
type Organization struct {
	ID      string
	Name    string
	Members map[string]bool
}

// Version is a project snapshot: the paper's answer to the ML
// reproducibility problem — data, preprocessing, and model design
// captured together.
type Version struct {
	ID int
	// Note is the user-supplied description.
	Note string
	// DatasetVersion is the content hash of the dataset at snapshot time.
	DatasetVersion string
	// ImpulseConfig is the serialized impulse design (nil if unset).
	ImpulseConfig json.RawMessage
	CreatedAt     time.Time
}

// Project is one ML project.
type Project struct {
	ID      int
	Name    string
	OwnerID string
	// HMACKey authenticates device data ingestion.
	HMACKey string

	mu            sync.RWMutex
	collaborators map[string]bool
	public        bool
	dataset       *data.Dataset
	// store is the dataset's segmented backing store when the registry
	// is durable (opened via Open/Load); nil for in-memory registries.
	store *store.Store
	// persist, when set (durable registries), write-through-saves the
	// project's metadata after a mutation; withModels additionally
	// rewrites the impulse design and trained model blobs. It must be
	// invoked WITHOUT p.mu held. Persistence failures are logged, not
	// returned: the in-memory state is already mutated and the next
	// Save retries.
	persist  func(withModels bool)
	impulse  *core.Impulse
	versions []Version
}

// persisted invokes the write-through hook if the registry is durable.
// withModels must be true only for mutations that change the impulse
// or its trained weights — model blobs are large and fsynced, so ACL
// and visibility flips persist registry metadata alone.
func (p *Project) persisted(withModels bool) {
	if p.persist != nil {
		p.persist(withModels)
	}
}

// Dataset returns the project's dataset. Guarded by the project lock:
// replication followers swap in a rebuilt view after applying journal
// ops (RefreshDataset).
func (p *Project) Dataset() *data.Dataset {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.dataset
}

// Store returns the dataset's segmented backing store, or nil for
// in-memory registries — the replication plane reads (primary) and
// applies (replica) segment bytes and journal frames through it.
// Guarded because replica bootstrap swaps the store out underneath.
func (p *Project) Store() *store.Store {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.store
}

// RefreshDataset rebuilds the lazy dataset view over the project's
// store. Replication followers call it after applying journal frames,
// which mutate the store's index underneath the Dataset's header cache.
func (p *Project) RefreshDataset() error {
	st := p.Store()
	if st == nil {
		return fmt.Errorf("project: project %d has no backing store", p.ID)
	}
	ds, err := data.Open(st, 0)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.dataset = ds
	p.mu.Unlock()
	return nil
}

// Impulse returns the configured impulse, or nil.
func (p *Project) Impulse() *core.Impulse {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.impulse
}

// SetImpulse installs an impulse design. On durable registries the
// design and any trained model blobs persist immediately, so a crash
// after training keeps the trained impulse.
func (p *Project) SetImpulse(imp *core.Impulse) {
	p.mu.Lock()
	p.impulse = imp
	p.mu.Unlock()
	p.persisted(true)
}

// Public reports whether the project is publicly listed.
func (p *Project) Public() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.public
}

// SetPublic toggles public visibility (paper Sec. 6.3).
func (p *Project) SetPublic(public bool) {
	p.mu.Lock()
	p.public = public
	p.mu.Unlock()
	p.persisted(false)
}

// AddCollaborator grants a user access.
func (p *Project) AddCollaborator(userID string) {
	p.mu.Lock()
	p.collaborators[userID] = true
	p.mu.Unlock()
	p.persisted(false)
}

// RemoveCollaborator revokes access (owners cannot be removed).
func (p *Project) RemoveCollaborator(userID string) {
	p.mu.Lock()
	delete(p.collaborators, userID)
	p.mu.Unlock()
	p.persisted(false)
}

// Collaborators lists user IDs with access (excluding the owner).
func (p *Project) Collaborators() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.collaborators))
	for id := range p.collaborators {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CanAccess reports whether the user may read/write the project.
func (p *Project) CanAccess(userID string) bool {
	if userID == p.OwnerID {
		return true
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.collaborators[userID]
}

// Snapshot records a version of the current dataset + impulse design.
func (p *Project) Snapshot(note string) Version {
	p.mu.Lock()
	v := Version{
		ID:             len(p.versions) + 1,
		Note:           note,
		DatasetVersion: p.dataset.Version(),
		CreatedAt:      time.Now(),
	}
	if p.impulse != nil {
		if blob, err := json.Marshal(p.impulse.Config()); err == nil {
			v.ImpulseConfig = blob
		}
	}
	p.versions = append(p.versions, v)
	p.mu.Unlock()
	p.persisted(false)
	return v
}

// Versions lists snapshots oldest-first.
func (p *Project) Versions() []Version {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]Version(nil), p.versions...)
}

// Registry is the store of users, organizations and projects. A
// registry created by NewRegistry is purely in-memory; one opened via
// Open or Load is rooted at a directory and persists every project's
// dataset incrementally through internal/store.
type Registry struct {
	// dir is the durable root ("" for in-memory registries).
	dir string
	// replica marks a read-only standby registry (OpenReplica): local
	// mutations are rejected; state advances only via ApplyMeta and the
	// per-project replication apply path.
	replica bool
	// projOffset/projStride restrict project ID allocation to one
	// residue class (IDs ≡ projOffset mod projStride), so each worker in
	// a hash-mod sharded cluster mints IDs its own shard owns.
	projOffset int
	projStride int
	// persistMu serializes registry.json writes so a stale snapshot can
	// never rename over a fresher one. Lock order: r.mu before
	// persistMu, always.
	persistMu sync.Mutex
	mu        sync.RWMutex
	users     map[string]*User // by ID
	byKey     map[string]*User // by API key
	orgs      map[string]*Organization
	projects  map[int]*Project
	nextUser  int
	nextProj  int
	nextOrg   int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		users:    map[string]*User{},
		byKey:    map[string]*User{},
		orgs:     map[string]*Organization{},
		projects: map[int]*Project{},
	}
}

// SetProjectIDStride restricts project ID allocation to IDs ≡ offset
// (mod stride). Cluster workers call it with their shard id and the
// shard count so every ID they mint hashes back to their own shard;
// stride <= 1 restores unrestricted allocation.
func (r *Registry) SetProjectIDStride(offset, stride int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.projOffset, r.projStride = offset, stride
}

func randomKey(prefix string) string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return prefix + hex.EncodeToString(b)
}

// CreateUser registers a user and mints an API key.
func (r *Registry) CreateUser(name string) (*User, error) {
	if name == "" {
		return nil, fmt.Errorf("project: user name required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replica {
		return nil, ErrReplica
	}
	r.nextUser++
	u := &User{
		ID:     fmt.Sprintf("user-%d", r.nextUser),
		Name:   name,
		APIKey: randomKey("ei_"),
	}
	r.users[u.ID] = u
	r.byKey[u.APIKey] = u
	if err := r.persistMetaLocked(); err != nil {
		delete(r.users, u.ID)
		delete(r.byKey, u.APIKey)
		r.nextUser--
		return nil, fmt.Errorf("project: persist registry: %w", err)
	}
	return u, nil
}

// AdmitUser inserts a pre-minted account (identity and API key chosen
// elsewhere) — the cluster gateway creates each user on one worker and
// broadcasts the minted identity to the rest, so every shard
// authenticates the same key. Idempotent for exact redelivery.
func (r *Registry) AdmitUser(id, name, apiKey string) (*User, error) {
	if id == "" || apiKey == "" {
		return nil, fmt.Errorf("project: user id and api key required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replica {
		return nil, ErrReplica
	}
	if u, ok := r.users[id]; ok {
		if u.APIKey == apiKey {
			return u, nil // redelivered
		}
		return nil, fmt.Errorf("project: user %s already exists with a different key", id)
	}
	if _, ok := r.byKey[apiKey]; ok {
		return nil, fmt.Errorf("project: API key already in use")
	}
	u := &User{ID: id, Name: name, APIKey: apiKey}
	r.users[id] = u
	r.byKey[apiKey] = u
	// Keep local allocation ahead of admitted "user-N" identities so a
	// future CreateUser here cannot collide.
	var n int
	if _, err := fmt.Sscanf(id, "user-%d", &n); err == nil && n > r.nextUser {
		r.nextUser = n
	}
	if err := r.persistMetaLocked(); err != nil {
		delete(r.users, id)
		delete(r.byKey, apiKey)
		return nil, fmt.Errorf("project: persist registry: %w", err)
	}
	return u, nil
}

// Authenticate resolves an API key to its user.
func (r *Registry) Authenticate(apiKey string) (*User, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.byKey[apiKey]
	if !ok {
		return nil, fmt.Errorf("project: invalid API key")
	}
	return u, nil
}

// GetUser returns a user by ID.
func (r *Registry) GetUser(id string) (*User, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.users[id]
	if !ok {
		return nil, fmt.Errorf("project: no user %s", id)
	}
	return u, nil
}

// CreateOrganization registers an organization owned by a user.
func (r *Registry) CreateOrganization(name, ownerID string) (*Organization, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replica {
		return nil, ErrReplica
	}
	if _, ok := r.users[ownerID]; !ok {
		return nil, fmt.Errorf("project: no user %s", ownerID)
	}
	r.nextOrg++
	org := &Organization{
		ID:      fmt.Sprintf("org-%d", r.nextOrg),
		Name:    name,
		Members: map[string]bool{ownerID: true},
	}
	r.orgs[org.ID] = org
	if err := r.persistMetaLocked(); err != nil {
		delete(r.orgs, org.ID)
		r.nextOrg--
		return nil, fmt.Errorf("project: persist registry: %w", err)
	}
	return org, nil
}

// JoinOrganization adds a member.
func (r *Registry) JoinOrganization(orgID, userID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	org, ok := r.orgs[orgID]
	if !ok {
		return fmt.Errorf("project: no organization %s", orgID)
	}
	if _, ok := r.users[userID]; !ok {
		return fmt.Errorf("project: no user %s", userID)
	}
	org.Members[userID] = true
	if err := r.persistMetaLocked(); err != nil {
		delete(org.Members, userID)
		return fmt.Errorf("project: persist registry: %w", err)
	}
	return nil
}

// CreateProject makes a project owned by the user, with a fresh dataset
// and ingestion HMAC key.
func (r *Registry) CreateProject(name, ownerID string) (*Project, error) {
	if name == "" {
		return nil, fmt.Errorf("project: project name required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replica {
		return nil, ErrReplica
	}
	if _, ok := r.users[ownerID]; !ok {
		return nil, fmt.Errorf("project: no user %s", ownerID)
	}
	prevNext := r.nextProj
	r.nextProj++
	if r.projStride > 1 {
		// Advance to this worker's residue class so the hash-mod shard
		// map routes the new ID back here.
		for r.nextProj%r.projStride != r.projOffset%r.projStride {
			r.nextProj++
		}
	}
	p := &Project{
		ID:            r.nextProj,
		Name:          name,
		OwnerID:       ownerID,
		HMACKey:       randomKey("hmac_"),
		collaborators: map[string]bool{},
		dataset:       data.New(),
	}
	if r.dir != "" {
		// Durable registry: back the dataset with a segmented store so
		// every upload persists incrementally.
		if err := openProjectDataset(r.dir, p); err != nil {
			r.nextProj = prevNext
			return nil, fmt.Errorf("project: open dataset store: %w", err)
		}
		p.persist = r.projectPersister(p)
	}
	r.projects[p.ID] = p
	if err := r.persistMetaLocked(); err != nil {
		delete(r.projects, p.ID)
		r.nextProj = prevNext
		if p.store != nil {
			// Roll back the store opened above: release its handles
			// and remove the half-created dataset directory.
			p.store.Close()
			p.store = nil
			os.RemoveAll(datasetDir(r.dir, p.ID))
		}
		return nil, fmt.Errorf("project: persist registry: %w", err)
	}
	return p, nil
}

// projectPersister builds the write-through hook for one project:
// registry metadata (headers, flags, versions) always, and — only for
// impulse/model mutations — the project's design and model blobs.
// Failures are logged; the mutation already happened in memory and the
// next Save retries the write.
func (r *Registry) projectPersister(p *Project) func(withModels bool) {
	return func(withModels bool) {
		if err := r.persistMeta(); err != nil {
			slog.Error("project: write-through registry persist failed", "err", err)
		}
		if !withModels {
			return
		}
		r.persistMu.Lock()
		err := saveProjectMeta(r.dir, p)
		r.persistMu.Unlock()
		if err != nil {
			slog.Error("project: write-through project persist failed", "project", p.ID, "err", err)
		}
	}
}

// GetProject returns a project by ID.
func (r *Registry) GetProject(id int) (*Project, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.projects[id]
	if !ok {
		return nil, fmt.Errorf("project: no project %d", id)
	}
	return p, nil
}

// ListAccessible returns projects a user owns or collaborates on, by ID.
func (r *Registry) ListAccessible(userID string) []*Project {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Project
	for _, p := range r.projects {
		if p.CanAccess(userID) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Projects returns every project, by ID — the replication plane
// iterates all shards' data without ACL scoping.
func (r *Registry) Projects() []*Project {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Project, 0, len(r.projects))
	for _, p := range r.projects {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ListPublic returns all public projects, by ID — the searchable index of
// paper Sec. 6.3.
func (r *Registry) ListPublic() []*Project {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Project
	for _, p := range r.projects {
		if p.Public() {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CloneProject copies a public project's dataset and impulse design into
// a new project owned by the user (the "clone public project" flow).
func (r *Registry) CloneProject(srcID int, ownerID string) (*Project, error) {
	src, err := r.GetProject(srcID)
	if err != nil {
		return nil, err
	}
	if !src.Public() && !src.CanAccess(ownerID) {
		return nil, fmt.Errorf("project: project %d is not public", srcID)
	}
	dst, err := r.CreateProject(src.Name+" (clone)", ownerID)
	if err != nil {
		return nil, err
	}
	it := src.Dataset().Batches("", 64)
	for {
		batch, ok := it.Next()
		if !ok {
			break
		}
		for _, s := range batch {
			clone := *s
			clone.ID = ""
			clone.Metadata = map[string]string{}
			for k, v := range s.Metadata {
				clone.Metadata[k] = v
			}
			if _, err := dst.Dataset().Add(&clone); err != nil {
				return nil, err
			}
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if imp := src.Impulse(); imp != nil {
		cloned, err := core.FromConfig(imp.Config())
		if err != nil {
			return nil, err
		}
		dst.SetImpulse(cloned)
	}
	return dst, nil
}
