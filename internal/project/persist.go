package project

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/tflm"
)

// On-disk layout:
//
//	<dir>/registry.json                users, orgs, project headers
//	<dir>/projects/<id>/dataset.json   samples (signals inline)
//	<dir>/projects/<id>/impulse.json   impulse design
//	<dir>/projects/<id>/model.eptm     float weights (EPTM)
//	<dir>/projects/<id>/model_int8.eptm

type persistedUser struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	APIKey string `json:"api_key"`
}

type persistedOrg struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Members []string `json:"members"`
}

type persistedProject struct {
	ID            int       `json:"id"`
	Name          string    `json:"name"`
	OwnerID       string    `json:"owner_id"`
	HMACKey       string    `json:"hmac_key"`
	Public        bool      `json:"public"`
	Collaborators []string  `json:"collaborators"`
	Versions      []Version `json:"versions"`
}

type persistedRegistry struct {
	Users    []persistedUser    `json:"users"`
	Orgs     []persistedOrg     `json:"orgs"`
	Projects []persistedProject `json:"projects"`
	NextUser int                `json:"next_user"`
	NextProj int                `json:"next_proj"`
	NextOrg  int                `json:"next_org"`
}

type persistedSample struct {
	Name     string            `json:"name"`
	Label    string            `json:"label"`
	Category data.Category     `json:"category"`
	Metadata map[string]string `json:"metadata,omitempty"`
	Rate     int               `json:"rate,omitempty"`
	Axes     int               `json:"axes"`
	Width    int               `json:"width,omitempty"`
	Height   int               `json:"height,omitempty"`
	Values   []float32         `json:"values"`
}

// Save writes the registry and every project (dataset, impulse design,
// trained weights) under dir. The format is stable JSON + EPTM blobs, so
// saved state is portable across builds.
func (r *Registry) Save(dir string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	pr := persistedRegistry{NextUser: r.nextUser, NextProj: r.nextProj, NextOrg: r.nextOrg}
	for _, u := range r.users {
		pr.Users = append(pr.Users, persistedUser{ID: u.ID, Name: u.Name, APIKey: u.APIKey})
	}
	for _, o := range r.orgs {
		po := persistedOrg{ID: o.ID, Name: o.Name}
		for m := range o.Members {
			po.Members = append(po.Members, m)
		}
		pr.Orgs = append(pr.Orgs, po)
	}
	for _, p := range r.projects {
		pr.Projects = append(pr.Projects, persistedProject{
			ID: p.ID, Name: p.Name, OwnerID: p.OwnerID, HMACKey: p.HMACKey,
			Public: p.Public(), Collaborators: p.Collaborators(), Versions: p.Versions(),
		})
		if err := saveProjectData(dir, p); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(pr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "registry.json"), blob, 0o644)
}

func saveProjectData(dir string, p *Project) error {
	pdir := filepath.Join(dir, "projects", fmt.Sprint(p.ID))
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		return err
	}
	// Dataset.
	var samples []persistedSample
	for _, s := range p.Dataset().List("") {
		samples = append(samples, persistedSample{
			Name: s.Name, Label: s.Label, Category: s.Category, Metadata: s.Metadata,
			Rate: s.Signal.Rate, Axes: s.Signal.Axes,
			Width: s.Signal.Width, Height: s.Signal.Height,
			Values: s.Signal.Data,
		})
	}
	blob, err := json.Marshal(samples)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(pdir, "dataset.json"), blob, 0o644); err != nil {
		return err
	}
	// Impulse + models.
	imp := p.Impulse()
	if imp == nil {
		return nil
	}
	cfg, err := json.Marshal(imp.Config())
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(pdir, "impulse.json"), cfg, 0o644); err != nil {
		return err
	}
	if imp.Model != nil {
		mb, err := tflm.Marshal(tflm.ModelFileFromFloat(imp.Model))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(pdir, "model.eptm"), mb, 0o644); err != nil {
			return err
		}
	}
	if imp.QModel != nil {
		qb, err := tflm.Marshal(tflm.ModelFileFromQuant(imp.QModel))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(pdir, "model_int8.eptm"), qb, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Load restores a registry previously written by Save.
func Load(dir string) (*Registry, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "registry.json"))
	if err != nil {
		return nil, err
	}
	var pr persistedRegistry
	if err := json.Unmarshal(blob, &pr); err != nil {
		return nil, fmt.Errorf("project: corrupt registry: %w", err)
	}
	r := NewRegistry()
	r.nextUser, r.nextProj, r.nextOrg = pr.NextUser, pr.NextProj, pr.NextOrg
	for _, u := range pr.Users {
		user := &User{ID: u.ID, Name: u.Name, APIKey: u.APIKey}
		r.users[user.ID] = user
		r.byKey[user.APIKey] = user
	}
	for _, o := range pr.Orgs {
		org := &Organization{ID: o.ID, Name: o.Name, Members: map[string]bool{}}
		for _, m := range o.Members {
			org.Members[m] = true
		}
		r.orgs[org.ID] = org
	}
	for _, pp := range pr.Projects {
		p := &Project{
			ID: pp.ID, Name: pp.Name, OwnerID: pp.OwnerID, HMACKey: pp.HMACKey,
			collaborators: map[string]bool{},
			dataset:       data.New(),
			versions:      pp.Versions,
			public:        pp.Public,
		}
		for _, c := range pp.Collaborators {
			p.collaborators[c] = true
		}
		if err := loadProjectData(dir, p); err != nil {
			return nil, fmt.Errorf("project %d: %w", pp.ID, err)
		}
		r.projects[p.ID] = p
	}
	return r, nil
}

func loadProjectData(dir string, p *Project) error {
	pdir := filepath.Join(dir, "projects", fmt.Sprint(p.ID))
	blob, err := os.ReadFile(filepath.Join(pdir, "dataset.json"))
	if err != nil {
		return err
	}
	var samples []persistedSample
	if err := json.Unmarshal(blob, &samples); err != nil {
		return fmt.Errorf("corrupt dataset: %w", err)
	}
	for _, ps := range samples {
		s := &data.Sample{
			Name: ps.Name, Label: ps.Label, Category: ps.Category, Metadata: ps.Metadata,
			Signal: dsp.Signal{
				Data: ps.Values, Rate: ps.Rate, Axes: ps.Axes,
				Width: ps.Width, Height: ps.Height,
			},
		}
		if _, err := p.dataset.Add(s); err != nil {
			return err
		}
	}
	cfgBlob, err := os.ReadFile(filepath.Join(pdir, "impulse.json"))
	if os.IsNotExist(err) {
		return nil // no impulse configured
	}
	if err != nil {
		return err
	}
	cfg, err := core.ParseConfig(cfgBlob)
	if err != nil {
		return err
	}
	imp, err := core.FromConfig(cfg)
	if err != nil {
		return err
	}
	if mb, err := os.ReadFile(filepath.Join(pdir, "model.eptm")); err == nil {
		mf, err := tflm.Unmarshal(mb)
		if err != nil {
			return err
		}
		if err := imp.AttachClassifier(mf.Float); err != nil {
			return err
		}
	}
	if qb, err := os.ReadFile(filepath.Join(pdir, "model_int8.eptm")); err == nil {
		qmf, err := tflm.Unmarshal(qb)
		if err != nil {
			return err
		}
		imp.QModel = qmf.Quant
	}
	p.impulse = imp
	return nil
}
