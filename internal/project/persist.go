package project

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/store"
	"edgepulse/internal/tflm"
)

// On-disk layout (v2):
//
//	<dir>/registry.json                    users, orgs, project headers (atomic write)
//	<dir>/projects/<id>/dataset/           segmented sample store (internal/store):
//	                      manifest.json    header index snapshot
//	                      journal.log      manifest op journal
//	                      segments/*.seg   CRC-framed CBOR sample records
//	<dir>/projects/<id>/impulse.json       impulse design (atomic write)
//	<dir>/projects/<id>/model.eptm         float weights (EPTM)
//	<dir>/projects/<id>/model_int8.eptm
//
// The v1 layout kept every sample inline in projects/<id>/dataset.json.
// Opening a v1 tree migrates it: samples stream into a fresh segmented
// store (content-addressed IDs — and therefore the dataset Version()
// hash — are preserved), and the old dataset.json is left in place,
// still readable by older builds. docs/STORAGE.md specifies both
// formats and the migration path.

// persistedUser is one user row in registry.json.
type persistedUser struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	APIKey string `json:"api_key"`
}

// persistedOrg is one organization row in registry.json.
type persistedOrg struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Members []string `json:"members"`
}

// persistedProject is one project header row in registry.json.
type persistedProject struct {
	ID            int       `json:"id"`
	Name          string    `json:"name"`
	OwnerID       string    `json:"owner_id"`
	HMACKey       string    `json:"hmac_key"`
	Public        bool      `json:"public"`
	Collaborators []string  `json:"collaborators"`
	Versions      []Version `json:"versions"`
}

// persistedRegistry is the registry.json schema.
type persistedRegistry struct {
	Users    []persistedUser    `json:"users"`
	Orgs     []persistedOrg     `json:"orgs"`
	Projects []persistedProject `json:"projects"`
	NextUser int                `json:"next_user"`
	NextProj int                `json:"next_proj"`
	NextOrg  int                `json:"next_org"`
}

// persistedSample is the v1 dataset.json sample schema, kept for
// migration (and for older builds reading a migrated tree).
type persistedSample struct {
	Name     string            `json:"name"`
	Label    string            `json:"label"`
	Category data.Category     `json:"category"`
	Metadata map[string]string `json:"metadata,omitempty"`
	Rate     int               `json:"rate,omitempty"`
	Axes     int               `json:"axes"`
	Width    int               `json:"width,omitempty"`
	Height   int               `json:"height,omitempty"`
	Values   []float32         `json:"values"`
}

// migratedMarker, inside a project's store directory, records that the
// v1 dataset.json migration ran to completion.
const migratedMarker = "migrated"

// projectDir returns a project's directory under the registry root.
func projectDir(dir string, id int) string {
	return filepath.Join(dir, "projects", fmt.Sprint(id))
}

// datasetDir returns a project's segmented-store directory.
func datasetDir(dir string, id int) string {
	return filepath.Join(projectDir(dir, id), "dataset")
}

// Open loads (or initializes) a durable registry rooted at dir. Every
// project's dataset is opened as a lazy data.Dataset over its segmented
// store — uploads persist incrementally from then on, one segment
// append + manifest patch per sample, with no full-registry rewrite.
// v1 trees (inline dataset.json) are migrated in place on first open.
func Open(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(filepath.Join(dir, "registry.json"))
	if os.IsNotExist(err) {
		r := NewRegistry()
		r.dir = dir
		return r, nil
	}
	if err != nil {
		return nil, err
	}
	r, err := loadRegistry(dir, blob)
	if err != nil {
		return nil, err
	}
	r.dir = dir
	return r, nil
}

// Load restores a registry previously written by Save (or operated on
// by Open). Unlike Open it fails if no registry exists at dir.
func Load(dir string) (*Registry, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "registry.json"))
	if err != nil {
		return nil, err
	}
	r, err := loadRegistry(dir, blob)
	if err != nil {
		return nil, err
	}
	r.dir = dir
	return r, nil
}

// loadRegistry parses registry.json and opens every project's data.
func loadRegistry(dir string, blob []byte) (*Registry, error) {
	var pr persistedRegistry
	if err := json.Unmarshal(blob, &pr); err != nil {
		return nil, fmt.Errorf("project: corrupt registry: %w", err)
	}
	r := NewRegistry()
	r.nextUser, r.nextProj, r.nextOrg = pr.NextUser, pr.NextProj, pr.NextOrg
	for _, u := range pr.Users {
		user := &User{ID: u.ID, Name: u.Name, APIKey: u.APIKey}
		r.users[user.ID] = user
		r.byKey[user.APIKey] = user
	}
	for _, o := range pr.Orgs {
		org := &Organization{ID: o.ID, Name: o.Name, Members: map[string]bool{}}
		for _, m := range o.Members {
			org.Members[m] = true
		}
		r.orgs[org.ID] = org
	}
	for _, pp := range pr.Projects {
		p := &Project{
			ID: pp.ID, Name: pp.Name, OwnerID: pp.OwnerID, HMACKey: pp.HMACKey,
			collaborators: map[string]bool{},
			versions:      pp.Versions,
			public:        pp.Public,
		}
		for _, c := range pp.Collaborators {
			p.collaborators[c] = true
		}
		if err := loadProjectData(dir, p); err != nil {
			r.Close()
			return nil, fmt.Errorf("project %d: %w", pp.ID, err)
		}
		r.projects[p.ID] = p
	}
	// r.dir is assigned by the caller after loadRegistry returns, but
	// the write-through hooks capture r and read r.dir lazily via
	// projectPersister, so wire them here against the target dir.
	for _, p := range r.projects {
		p.persist = r.projectPersister(p)
	}
	return r, nil
}

// renderRegistryLocked marshals registry metadata. Caller holds r.mu
// (read or write).
func (r *Registry) renderRegistryLocked() ([]byte, error) {
	pr := persistedRegistry{NextUser: r.nextUser, NextProj: r.nextProj, NextOrg: r.nextOrg}
	for _, u := range r.users {
		pr.Users = append(pr.Users, persistedUser{ID: u.ID, Name: u.Name, APIKey: u.APIKey})
	}
	for _, o := range r.orgs {
		po := persistedOrg{ID: o.ID, Name: o.Name}
		for m := range o.Members {
			po.Members = append(po.Members, m)
		}
		pr.Orgs = append(pr.Orgs, po)
	}
	for _, p := range r.projects {
		pr.Projects = append(pr.Projects, persistedProject{
			ID: p.ID, Name: p.Name, OwnerID: p.OwnerID, HMACKey: p.HMACKey,
			Public: p.Public(), Collaborators: p.Collaborators(), Versions: p.Versions(),
		})
	}
	return json.MarshalIndent(pr, "", "  ")
}

// persistMetaLocked atomically writes registry.json if the registry is
// durable. Caller holds r.mu (read or write); persistMu serializes the
// render+rename pair so concurrent write-through hooks cannot rename a
// stale snapshot over a fresher one.
func (r *Registry) persistMetaLocked() error {
	if r.dir == "" {
		return nil
	}
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	blob, err := r.renderRegistryLocked()
	if err != nil {
		return err
	}
	return store.AtomicWriteFile(filepath.Join(r.dir, "registry.json"), blob)
}

// persistMeta is persistMetaLocked for callers not holding r.mu.
func (r *Registry) persistMeta() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.persistMetaLocked()
}

// openProjectDataset opens (creating or migrating as needed) a
// project's store-backed dataset.
func openProjectDataset(dir string, p *Project) error {
	sdir := datasetDir(dir, p.ID)
	v1Path := filepath.Join(projectDir(dir, p.ID), "dataset.json")
	// A dedicated marker file records migration completion — NOT
	// manifest.json existence, which the store's automatic journal
	// compaction can create mid-migration. Until the marker exists the
	// migration re-runs; that is safe because samples already committed
	// are skipped as duplicates (content-addressed IDs are
	// deterministic).
	marker := filepath.Join(sdir, migratedMarker)
	_, markerErr := os.Stat(marker)
	migrated := markerErr == nil
	st, err := store.Open(sdir, store.Options{})
	if err != nil {
		return err
	}
	ds, err := data.Open(st, 0)
	if err != nil {
		st.Close()
		return err
	}
	if !migrated {
		if err := migrateV1Dataset(v1Path, ds); err != nil {
			st.Close()
			return err
		}
		// Durable order: snapshot the migrated state first, then write
		// the completion marker.
		if err := st.Snapshot(); err != nil {
			st.Close()
			return err
		}
		if err := store.AtomicWriteFile(marker, []byte("v1 dataset.json migrated\n")); err != nil {
			st.Close()
			return err
		}
	}
	p.dataset = ds
	p.store = st
	return nil
}

// migrateV1Dataset streams a v1 inline-JSON dataset into a lazy
// dataset (and therefore its segmented store). Content-addressed IDs
// are recomputed by Add exactly as v1 ingestion computed them, so the
// dataset Version() hash is preserved bit-for-bit.
func migrateV1Dataset(v1Path string, ds *data.Dataset) error {
	blob, err := os.ReadFile(v1Path)
	if os.IsNotExist(err) {
		return nil // nothing to migrate
	}
	if err != nil {
		return err
	}
	var samples []persistedSample
	if err := json.Unmarshal(blob, &samples); err != nil {
		return fmt.Errorf("corrupt dataset: %w", err)
	}
	for _, ps := range samples {
		s := &data.Sample{
			Name: ps.Name, Label: ps.Label, Category: ps.Category, Metadata: ps.Metadata,
			Signal: dsp.Signal{
				Data: ps.Values, Rate: ps.Rate, Axes: ps.Axes,
				Width: ps.Width, Height: ps.Height,
			},
		}
		if _, err := ds.Add(s); err != nil {
			// Already committed by an interrupted earlier migration run.
			if errors.Is(err, data.ErrDuplicate) {
				continue
			}
			return fmt.Errorf("migrate sample %q: %w", ps.Name, err)
		}
	}
	return nil
}

// loadProjectData opens a project's dataset (migrating v1 if needed)
// and loads its impulse design and trained models. On failure after
// the dataset opened, its store handles are released — the project is
// not yet registered, so nothing else will close them.
func loadProjectData(dir string, p *Project) (err error) {
	if err := openProjectDataset(dir, p); err != nil {
		return err
	}
	defer func() {
		if err != nil && p.store != nil {
			p.store.Close()
			p.store = nil
		}
	}()
	imp, err := loadProjectImpulse(projectDir(dir, p.ID))
	if err != nil || imp == nil {
		return err
	}
	p.impulse = imp
	return nil
}

// loadProjectImpulse reads a project directory's impulse design and
// trained model blobs, returning nil when no impulse is configured.
func loadProjectImpulse(pdir string) (*core.Impulse, error) {
	cfgBlob, err := os.ReadFile(filepath.Join(pdir, "impulse.json"))
	if os.IsNotExist(err) {
		return nil, nil // no impulse configured
	}
	if err != nil {
		return nil, err
	}
	cfg, err := core.ParseConfig(cfgBlob)
	if err != nil {
		return nil, err
	}
	imp, err := core.FromConfig(cfg)
	if err != nil {
		return nil, err
	}
	if mb, err := os.ReadFile(filepath.Join(pdir, "model.eptm")); err == nil {
		mf, err := tflm.Unmarshal(mb)
		if err != nil {
			return nil, err
		}
		if err := imp.AttachClassifier(mf.Float); err != nil {
			return nil, err
		}
	}
	if qb, err := os.ReadFile(filepath.Join(pdir, "model_int8.eptm")); err == nil {
		qmf, err := tflm.Unmarshal(qb)
		if err != nil {
			return nil, err
		}
		imp.QModel = qmf.Quant
	}
	return imp, nil
}

// Save durably writes the registry and every project (dataset,
// impulse design, trained weights) under dir. All metadata files are
// written atomically (temp file + rename + fsync). Datasets already
// store-backed at dir persist incrementally, so Save only compacts
// their manifests; in-memory datasets are exported into fresh
// segmented stores. Saved state is portable across builds.
func (r *Registry) Save(dir string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range r.projects {
		if err := saveProjectDataset(dir, p, dir == r.dir); err != nil {
			return err
		}
		// Serialize with the write-through hooks so a stale render
		// never lands over a fresher one.
		r.persistMu.Lock()
		err := saveProjectMeta(dir, p)
		r.persistMu.Unlock()
		if err != nil {
			return err
		}
	}
	if dir == r.dir {
		return r.persistMetaLocked()
	}
	blob, err := r.renderRegistryLocked()
	if err != nil {
		return err
	}
	return store.AtomicWriteFile(filepath.Join(dir, "registry.json"), blob)
}

// saveProjectDataset writes one project's dataset to the target root.
func saveProjectDataset(dir string, p *Project, sameRoot bool) error {
	pdir := projectDir(dir, p.ID)
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		return err
	}
	switch {
	case p.store != nil && sameRoot:
		// Already durable under this root: compact the manifest so a
		// fresh open replays no journal.
		return p.store.Snapshot()
	default:
		// In-memory dataset (or export to a different root): stream
		// every sample into a segmented store at the target.
		return exportDataset(p.Dataset(), datasetDir(dir, p.ID))
	}
}

// saveProjectMeta atomically writes one project's impulse design and
// model blobs (no dataset samples — those live in the store).
func saveProjectMeta(dir string, p *Project) error {
	pdir := projectDir(dir, p.ID)
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		return err
	}
	imp := p.Impulse()
	if imp == nil {
		return nil
	}
	cfg, err := json.Marshal(imp.Config())
	if err != nil {
		return err
	}
	if err := store.AtomicWriteFile(filepath.Join(pdir, "impulse.json"), cfg); err != nil {
		return err
	}
	if imp.Model != nil {
		mb, err := tflm.Marshal(tflm.ModelFileFromFloat(imp.Model))
		if err != nil {
			return err
		}
		if err := store.AtomicWriteFile(filepath.Join(pdir, "model.eptm"), mb); err != nil {
			return err
		}
	}
	if imp.QModel != nil {
		qb, err := tflm.Marshal(tflm.ModelFileFromQuant(imp.QModel))
		if err != nil {
			return err
		}
		if err := store.AtomicWriteFile(filepath.Join(pdir, "model_int8.eptm"), qb); err != nil {
			return err
		}
	}
	return nil
}

// exportDataset replaces the segmented store at sdir with the full
// contents of ds, streaming samples batch-by-batch.
func exportDataset(ds *data.Dataset, sdir string) error {
	if err := os.RemoveAll(sdir); err != nil {
		return err
	}
	st, err := store.Open(sdir, store.Options{})
	if err != nil {
		return err
	}
	it := ds.Batches("", 64)
	for {
		batch, ok := it.Next()
		if !ok {
			break
		}
		for _, s := range batch {
			if err := st.Append(s); err != nil {
				st.Close()
				return err
			}
		}
	}
	if err := it.Err(); err != nil {
		st.Close()
		return err
	}
	return st.Close()
}

// Close releases every project's store handles. The registry remains
// readable in memory but stops persisting.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, p := range r.projects {
		if p.store != nil {
			if err := p.store.Close(); err != nil && first == nil {
				first = err
			}
			p.store = nil
		}
	}
	return first
}
