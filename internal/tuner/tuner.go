// Package tuner implements the EON Tuner (paper Sec. 4.7, Table 3,
// Fig. 3): automated co-exploration of DSP preprocessing blocks and NN
// architectures under the RAM, flash and latency constraints of a chosen
// hardware target. Each trial trains a candidate, measures accuracy, and
// estimates on-device latency and memory through the renode and profiler
// packages — producing exactly the rows of the paper's Table 3.
package tuner

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/profiler"
	"edgepulse/internal/renode"
	"edgepulse/internal/search"
	"edgepulse/internal/trainer"
)

// DSPCandidate is one preprocessing configuration in the search space.
type DSPCandidate struct {
	// Name is the block type ("mfe", "mfcc", ...).
	Name string
	// Params configures the block.
	Params map[string]float64
	// Desc is the display string, e.g. "MFE (0.02, 0.01, 40)".
	Desc string
}

// ModelCandidate is one architecture in the search space.
type ModelCandidate struct {
	// Desc is the display string, e.g. "4x conv1d (32 to 256)".
	Desc string
	// Build constructs the model for a feature shape and class count.
	Build func(frames, coeffs, classes int) (*nn.Model, error)
}

// Space is the cross product of DSP and model candidates.
type Space struct {
	DSP    []DSPCandidate
	Models []ModelCandidate
}

// Size returns the number of (DSP, model) combinations.
func (s Space) Size() int { return len(s.DSP) * len(s.Models) }

func (s Space) candidate(i int) (DSPCandidate, ModelCandidate) {
	return s.DSP[i/len(s.Models)], s.Models[i%len(s.Models)]
}

// conv1dCandidate builds a Table-3-style conv1d stack candidate.
func conv1dCandidate(depth, start, end int) ModelCandidate {
	return ModelCandidate{
		Desc: fmt.Sprintf("%dx conv1d (%d to %d)", depth, start, end),
		Build: func(frames, coeffs, classes int) (*nn.Model, error) {
			return models.Conv1DStack(frames, coeffs, depth, start, end, classes)
		},
	}
}

// DefaultKWSSpace reproduces the paper's Table 3 search space: MFE and
// MFCC preprocessing at several (frame, stride, coefficients) settings
// crossed with conv1d stacks and a MobileNetV2-width model.
func DefaultKWSSpace() Space {
	mkDSP := func(name string, frame, stride float64, coeff int) DSPCandidate {
		params := map[string]float64{
			"frame_length": frame,
			"frame_stride": stride,
		}
		if name == "mfe" {
			params["num_filters"] = float64(coeff)
		} else {
			params["num_filters"] = float64(coeff)
			params["num_cepstral"] = float64(coeff)
		}
		return DSPCandidate{
			Name:   name,
			Params: params,
			Desc:   fmt.Sprintf("%s (%g, %g, %d)", display(name), frame, stride, coeff),
		}
	}
	return Space{
		DSP: []DSPCandidate{
			mkDSP("mfe", 0.02, 0.01, 40),
			mkDSP("mfe", 0.02, 0.01, 32),
			mkDSP("mfe", 0.02, 0.02, 32),
			mkDSP("mfe", 0.05, 0.025, 32),
			mkDSP("mfe", 0.032, 0.016, 32),
			mkDSP("mfcc", 0.02, 0.01, 40),
			mkDSP("mfcc", 0.02, 0.01, 32),
			mkDSP("mfcc", 0.05, 0.025, 40),
		},
		Models: []ModelCandidate{
			{
				Desc: "MobileNetV2 0.35",
				Build: func(frames, coeffs, classes int) (*nn.Model, error) {
					return models.MobileNetV2Audio(frames, coeffs, 0.35, classes), nil
				},
			},
			conv1dCandidate(4, 32, 256),
			conv1dCandidate(4, 16, 128),
			conv1dCandidate(3, 32, 128),
			conv1dCandidate(2, 32, 64),
			conv1dCandidate(3, 16, 64),
			conv1dCandidate(2, 16, 32),
		},
	}
}

func display(name string) string {
	switch name {
	case "mfe":
		return "MFE"
	case "mfcc":
		return "MFCC"
	default:
		return name
	}
}

// Constraints bound the search to a deployment target (Fig. 3's "select
// the target hardware" control).
type Constraints struct {
	// Target supplies RAM/flash capacities and the cycle model.
	Target device.Target
	// MaxLatencyMS caps total (DSP+NN) latency; 0 disables.
	MaxLatencyMS float64
}

// Trial is one evaluated (DSP, model) combination: a row of Table 3.
type Trial struct {
	DSPDesc   string
	ModelDesc string
	// Accuracy on the dataset's test split.
	Accuracy float64
	// Latency estimates on the target (float32, TFLM engine, as in the
	// paper's Table 3).
	DSPLatencyMS   float64
	NNLatencyMS    float64
	TotalLatencyMS float64
	// RAM estimates in bytes.
	DSPRAM   int64
	NNRAM    int64
	TotalRAM int64
	// Flash estimate for the model in bytes (the DSP code footprint is
	// constant and excluded, as in the paper's table).
	NNFlash int64
	// Fits reports whether the trial satisfies the constraints.
	Fits bool
}

// Config controls a tuner run.
type Config struct {
	// Space is the candidate space (DefaultKWSSpace if zero).
	Space Space
	// Input is the impulse input window the candidates share.
	Input core.InputBlock
	// Constraints bound latency and memory on the target.
	Constraints Constraints
	// MaxTrials caps evaluated combinations (0 = whole space).
	MaxTrials int
	// Epochs is the per-trial training budget.
	Epochs int
	// Strategy selects "random" (default), "hyperband" or "surrogate".
	Strategy string
	// Seed makes the search deterministic.
	Seed int64
	// Workers bounds how many trials evaluate concurrently (random
	// strategy only; adaptive strategies stay sequential because each
	// round depends on the last). 0 or 1 runs sequentially. The trial
	// set and results are identical regardless of worker count — only
	// wall-clock changes.
	Workers int
	// Log receives progress lines; nil discards.
	Log io.Writer
	// Ctx cancels the search cooperatively between trials (nil =
	// never cancelled). In-flight trials finish; no new trial starts.
	Ctx context.Context
	// Progress receives (completed, planned) after each recorded
	// trial. planned is the trial budget; adaptive strategies
	// (hyperband) may complete a different number, so treat the ratio
	// as an estimate there.
	Progress func(completed, planned int)
}

// Run executes the tuner over the dataset and returns trials sorted by
// descending accuracy (the Fig. 3 result list).
func Run(ds *data.Dataset, cfg Config) ([]Trial, error) {
	space := cfg.Space
	if space.Size() == 0 {
		space = DefaultKWSSpace()
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 6
	}
	maxTrials := cfg.MaxTrials
	if maxTrials <= 0 || maxTrials > space.Size() {
		maxTrials = space.Size()
	}
	labels := ds.Labels()
	if len(labels) < 2 {
		return nil, fmt.Errorf("tuner: dataset has %d classes, need >= 2", len(labels))
	}

	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var mu sync.Mutex
	trials := map[int]*Trial{}
	completed := 0
	record := func(candidate int, tr *Trial) float64 {
		mu.Lock()
		defer mu.Unlock()
		trials[candidate] = tr
		completed++
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "trial %-28s × %-22s acc=%.2f total=%.0fms ram=%dkB\n",
				tr.DSPDesc, tr.ModelDesc, tr.Accuracy, tr.TotalLatencyMS, tr.TotalRAM/1024)
		}
		if cfg.Progress != nil {
			cfg.Progress(completed, maxTrials)
		}
		// Constraint-violating trials are heavily penalized so the
		// search prefers deployable configurations.
		score := tr.Accuracy
		if !tr.Fits {
			score -= 1
		}
		return score
	}
	objective := func(candidate, budget int) (float64, error) {
		// Cooperative cancellation between trials.
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("tuner: search cancelled: %w", err)
		}
		tr, err := evaluate(ds, labels, space, candidate, budget, cfg)
		if err != nil {
			return 0, err
		}
		return record(candidate, tr), nil
	}

	var err error
	switch cfg.Strategy {
	case "", "random":
		if cfg.Workers > 1 {
			err = runParallel(ds, labels, space, maxTrials, record, cfg)
		} else {
			_, err = search.Random(space.Size(), maxTrials, cfg.Epochs, cfg.Seed, objective)
		}
	case "hyperband":
		_, err = search.Hyperband(space.Size(), cfg.Epochs, cfg.Seed, objective)
	case "surrogate":
		feats := spaceFeatures(space)
		_, err = search.Surrogate(feats, maxTrials, cfg.Epochs, cfg.Seed, objective)
	default:
		return nil, fmt.Errorf("tuner: unknown strategy %q", cfg.Strategy)
	}
	if err != nil {
		return nil, err
	}

	out := make([]Trial, 0, len(trials))
	for _, tr := range trials {
		out = append(out, *tr)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Accuracy != b.Accuracy {
			return a.Accuracy > b.Accuracy
		}
		// Deterministic order for ties regardless of completion order.
		if a.DSPDesc != b.DSPDesc {
			return a.DSPDesc < b.DSPDesc
		}
		return a.ModelDesc < b.ModelDesc
	})
	return out, nil
}

// runParallel evaluates the random strategy's trial plan on a bounded
// worker pool. Every trial is seeded by its candidate index, so results
// match the sequential path exactly; the per-trial kernel savings of the
// arena-backed hot path multiply across workers.
func runParallel(ds *data.Dataset, labels []string, space Space, maxTrials int,
	record func(int, *Trial) float64, cfg Config) error {
	candidates := search.Plan(space.Size(), maxTrials, cfg.Seed)
	workers := cfg.Workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				// Match the sequential strategy's first-error abort:
				// once a trial fails (or the search is cancelled),
				// drain without training.
				if failed() {
					continue
				}
				if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tuner: search cancelled: %w", cfg.Ctx.Err())
					}
					mu.Unlock()
					continue
				}
				tr, err := evaluate(ds, labels, space, c, cfg.Epochs, cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("search: candidate %d: %w", c, err)
					}
					mu.Unlock()
					continue
				}
				record(c, tr)
			}
		}()
	}
	for _, c := range candidates {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// spaceFeatures embeds each candidate for the surrogate strategy:
// (dsp index, model index, rough cost rank).
func spaceFeatures(space Space) [][]float64 {
	out := make([][]float64, space.Size())
	for i := range out {
		d := i / len(space.Models)
		m := i % len(space.Models)
		out[i] = []float64{float64(d), float64(m)}
	}
	return out
}

// evaluate trains and profiles one candidate.
func evaluate(ds *data.Dataset, labels []string, space Space, candidate, epochs int, cfg Config) (*Trial, error) {
	dspCand, modelCand := space.candidate(candidate)
	imp := core.New("tuner-trial")
	imp.Input = cfg.Input
	block, err := dsp.New(dspCand.Name, dspCand.Params)
	if err != nil {
		return nil, err
	}
	imp.UseDSP(block)
	imp.Classes = labels

	shape, err := imp.FeatureShape()
	if err != nil {
		return nil, err
	}
	if len(shape) != 2 {
		return nil, fmt.Errorf("tuner: expected 2-D features, got %v", shape)
	}
	model, err := modelCand.Build(shape[0], shape[1], len(labels))
	if err != nil {
		return nil, err
	}
	if err := nn.InitWeights(model, cfg.Seed+int64(candidate)); err != nil {
		return nil, err
	}
	if err := imp.AttachClassifier(model); err != nil {
		return nil, err
	}
	if _, err := imp.Train(ds, trainer.Config{
		Epochs: epochs, Seed: cfg.Seed + int64(candidate),
	}); err != nil {
		return nil, err
	}
	acc, _, err := imp.Evaluate(ds, data.Testing)
	if err != nil {
		return nil, err
	}

	tr := &Trial{DSPDesc: dspCand.Desc, ModelDesc: modelCand.Desc, Accuracy: acc}
	// Resource estimation at float32/TFLM, matching the paper's Table 3.
	tgt := cfg.Constraints.Target
	if tgt.ID == "" {
		tgt = device.MustGet("nano-33-ble-sense")
	}
	specs, err := model.Spec()
	if err != nil {
		return nil, err
	}
	est := renode.EstimateFloat(tgt, imp.DSPCost(), specs, renode.TFLM)
	tr.DSPLatencyMS = est.DSPMillis
	tr.NNLatencyMS = est.InferenceMillis
	tr.TotalLatencyMS = est.TotalMillis

	mem, err := profiler.EstimateFloat(model, renode.TFLM)
	if err != nil {
		return nil, err
	}
	tr.DSPRAM = imp.DSPRAM()
	tr.NNRAM = mem.RAMBytes
	tr.TotalRAM = tr.DSPRAM + tr.NNRAM
	tr.NNFlash = mem.FlashBytes

	tr.Fits = profiler.Fits(mem, tr.DSPRAM, tgt)
	if cfg.Constraints.MaxLatencyMS > 0 && tr.TotalLatencyMS > cfg.Constraints.MaxLatencyMS {
		tr.Fits = false
	}
	return tr, nil
}
