package tuner

import (
	"fmt"
	"sort"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
)

// AutotuneResult is one evaluated DSP configuration.
type AutotuneResult struct {
	// Params is the block configuration.
	Params map[string]float64
	// Separability scores how well the extracted features separate the
	// classes (Fisher-style ratio of between-class to within-class
	// scatter); higher is better.
	Separability float64
	// FeatureCount is the output dimensionality.
	FeatureCount int
}

// AutotuneDSP implements the "DSP autotune" feature (paper Sec. 4.2):
// it evaluates candidate hyperparameter sets for a DSP block directly on
// the dataset — without training any model — by scoring class
// separability of the extracted features, and returns candidates ranked
// best-first. This gives novice users a good preprocessing starting point
// in seconds; the full EON Tuner co-optimizes DSP and NN afterwards.
func AutotuneDSP(ds *data.Dataset, input core.InputBlock, blockName string, candidates []map[string]float64) ([]AutotuneResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("tuner: no candidate parameter sets")
	}
	labels := ds.Labels()
	if len(labels) < 2 {
		return nil, fmt.Errorf("tuner: autotune needs >= 2 classes, have %d", len(labels))
	}
	// Cap work per candidate: stream the first maxSamples training
	// samples out of the (possibly lazy) dataset once, reusing them
	// across candidates.
	const maxSamples = 60
	var samples []*data.Sample
	it := ds.Batches(data.Training, maxSamples)
	if batch, ok := it.Next(); ok {
		samples = batch
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("tuner: no training samples")
	}
	var out []AutotuneResult
	for _, params := range candidates {
		block, err := dsp.New(blockName, params)
		if err != nil {
			return nil, err
		}
		imp := core.New("autotune")
		imp.Input = input
		imp.UseDSP(block)
		shape, err := imp.FeatureShape()
		if err != nil {
			// Candidate incompatible with the window geometry: skip.
			continue
		}
		// Per-class feature means and scatter.
		perClass := map[string][][]float32{}
		for _, s := range samples {
			x, err := imp.Features(s.Signal)
			if err != nil {
				return nil, err
			}
			perClass[s.Label] = append(perClass[s.Label], x.Data)
		}
		sep := fisherSeparability(perClass)
		out = append(out, AutotuneResult{
			Params:       params,
			Separability: sep,
			FeatureCount: shape.Elems(),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tuner: no candidate was compatible with the input window")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Separability > out[j].Separability })
	return out, nil
}

// fisherSeparability computes a Fisher-criterion-style score: mean
// squared distance between class centroids divided by mean within-class
// variance, averaged over feature dimensions.
func fisherSeparability(perClass map[string][][]float32) float64 {
	type stat struct {
		mean []float64
		vari float64
		n    int
	}
	var stats []stat
	var dim int
	for _, rows := range perClass {
		if len(rows) == 0 {
			continue
		}
		dim = len(rows[0])
		mean := make([]float64, dim)
		for _, r := range rows {
			for j, v := range r {
				mean[j] += float64(v)
			}
		}
		for j := range mean {
			mean[j] /= float64(len(rows))
		}
		var vari float64
		for _, r := range rows {
			for j, v := range r {
				d := float64(v) - mean[j]
				vari += d * d
			}
		}
		vari /= float64(len(rows)) * float64(dim)
		stats = append(stats, stat{mean: mean, vari: vari, n: len(rows)})
	}
	if len(stats) < 2 {
		return 0
	}
	// Between-class scatter: mean pairwise centroid distance per dim.
	var between float64
	pairs := 0
	for i := 0; i < len(stats); i++ {
		for j := i + 1; j < len(stats); j++ {
			var d float64
			for k := 0; k < dim; k++ {
				diff := stats[i].mean[k] - stats[j].mean[k]
				d += diff * diff
			}
			between += d / float64(dim)
			pairs++
		}
	}
	between /= float64(pairs)
	var within float64
	for _, s := range stats {
		within += s.vari
	}
	within /= float64(len(stats))
	if within < 1e-12 {
		within = 1e-12
	}
	return between / within
}
