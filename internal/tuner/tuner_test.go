package tuner

import (
	"strings"
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/device"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
)

// smallSpace is a fast 2x2 space for tests.
func smallSpace() Space {
	return Space{
		DSP: []DSPCandidate{
			{Name: "mfe", Params: map[string]float64{"num_filters": 16, "fft_length": 128}, Desc: "MFE (0.02, 0.01, 16)"},
			{Name: "mfe", Params: map[string]float64{"num_filters": 16, "fft_length": 128, "frame_stride": 0.02}, Desc: "MFE (0.02, 0.02, 16)"},
		},
		Models: []ModelCandidate{
			{Desc: "2x conv1d (8 to 16)", Build: func(f, c, cl int) (*nn.Model, error) {
				return models.Conv1DStack(f, c, 2, 8, 16, cl)
			}},
			{Desc: "1x conv1d (8 to 8)", Build: func(f, c, cl int) (*nn.Model, error) {
				return models.Conv1DStack(f, c, 1, 8, 8, cl)
			}},
		},
	}
}

func kwsInput() core.InputBlock {
	return core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
}

func TestSpaceIndexing(t *testing.T) {
	s := smallSpace()
	if s.Size() != 4 {
		t.Fatalf("size %d", s.Size())
	}
	seen := map[string]bool{}
	for i := 0; i < s.Size(); i++ {
		d, m := s.candidate(i)
		seen[d.Desc+"|"+m.Desc] = true
	}
	if len(seen) != 4 {
		t.Fatalf("candidates not unique: %d", len(seen))
	}
}

func TestDefaultKWSSpaceMatchesTable3(t *testing.T) {
	s := DefaultKWSSpace()
	if s.Size() == 0 {
		t.Fatal("empty default space")
	}
	var hasMFE, hasMFCC, hasV2, hasConv bool
	for _, d := range s.DSP {
		if strings.HasPrefix(d.Desc, "MFE") {
			hasMFE = true
		}
		if strings.HasPrefix(d.Desc, "MFCC") {
			hasMFCC = true
		}
	}
	for _, m := range s.Models {
		if strings.Contains(m.Desc, "MobileNetV2") {
			hasV2 = true
		}
		if strings.Contains(m.Desc, "conv1d") {
			hasConv = true
		}
	}
	if !hasMFE || !hasMFCC || !hasV2 || !hasConv {
		t.Errorf("space lacks Table 3 families: mfe=%v mfcc=%v v2=%v conv=%v", hasMFE, hasMFCC, hasV2, hasConv)
	}
}

func TestTunerRunProducesSortedTrials(t *testing.T) {
	ds, err := synth.KWSDataset(2, 10, 8000, 0.5, 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	trials, err := Run(ds, Config{
		Space:       smallSpace(),
		Input:       kwsInput(),
		Constraints: Constraints{Target: device.MustGet("nano-33-ble-sense")},
		Epochs:      4,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 4 {
		t.Fatalf("%d trials", len(trials))
	}
	for i := 1; i < len(trials); i++ {
		if trials[i].Accuracy > trials[i-1].Accuracy {
			t.Fatal("trials not sorted by accuracy")
		}
	}
	for _, tr := range trials {
		if tr.TotalLatencyMS <= 0 || tr.NNRAM <= 0 || tr.NNFlash <= 0 || tr.DSPRAM <= 0 {
			t.Errorf("trial missing estimates: %+v", tr)
		}
		if tr.TotalRAM != tr.DSPRAM+tr.NNRAM {
			t.Errorf("RAM sum wrong: %+v", tr)
		}
	}
	// At least one trial should learn the easy 2-class task.
	if trials[0].Accuracy < 0.7 {
		t.Errorf("best trial accuracy %.2f", trials[0].Accuracy)
	}
	// Small conv stacks on a 256kB target should fit.
	fits := 0
	for _, tr := range trials {
		if tr.Fits {
			fits++
		}
	}
	if fits == 0 {
		t.Error("no trial fits the target")
	}
}

func TestTunerBiggerModelCostsMore(t *testing.T) {
	ds, err := synth.KWSDataset(2, 8, 8000, 0.5, 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	trials, err := Run(ds, Config{
		Space: smallSpace(), Input: kwsInput(), Epochs: 2, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Group by model; the 2x stack must show higher latency+flash than
	// the 1x stack under the same DSP.
	byKey := map[string]Trial{}
	for _, tr := range trials {
		byKey[tr.DSPDesc+"|"+tr.ModelDesc] = tr
	}
	big := byKey["MFE (0.02, 0.01, 16)|2x conv1d (8 to 16)"]
	small := byKey["MFE (0.02, 0.01, 16)|1x conv1d (8 to 8)"]
	if big.NNLatencyMS <= small.NNLatencyMS {
		t.Errorf("bigger model latency %.1f <= smaller %.1f", big.NNLatencyMS, small.NNLatencyMS)
	}
	if big.NNFlash <= small.NNFlash {
		t.Errorf("bigger model flash %d <= smaller %d", big.NNFlash, small.NNFlash)
	}
	// Coarser stride halves DSP latency under the same model.
	fine := byKey["MFE (0.02, 0.01, 16)|1x conv1d (8 to 8)"]
	coarse := byKey["MFE (0.02, 0.02, 16)|1x conv1d (8 to 8)"]
	if coarse.DSPLatencyMS >= fine.DSPLatencyMS {
		t.Errorf("coarse stride DSP %.1f >= fine %.1f", coarse.DSPLatencyMS, fine.DSPLatencyMS)
	}
}

func TestTunerStrategies(t *testing.T) {
	ds, err := synth.KWSDataset(2, 8, 8000, 0.5, 0.03, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{"random", "hyperband", "surrogate"} {
		trials, err := Run(ds, Config{
			Space: smallSpace(), Input: kwsInput(),
			Epochs: 2, Seed: 10, Strategy: strategy, MaxTrials: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if len(trials) == 0 {
			t.Fatalf("%s: no trials", strategy)
		}
	}
	if _, err := Run(ds, Config{Space: smallSpace(), Input: kwsInput(), Strategy: "quantum"}); err == nil {
		t.Error("accepted unknown strategy")
	}
}

func TestTunerValidation(t *testing.T) {
	ds, _ := synth.KWSDataset(2, 4, 8000, 0.5, 0.03, 11)
	// Single-class dataset rejected.
	single, _ := synth.KWSDataset(2, 4, 8000, 0.5, 0.03, 12)
	for _, s := range single.List("") {
		single.SetLabel(s.ID, "only")
	}
	if _, err := Run(single, Config{Space: smallSpace(), Input: kwsInput()}); err == nil {
		t.Error("accepted single-class dataset")
	}
	_ = ds
}

// TestTunerParallelMatchesSequential proves the bounded worker pool
// evaluates the same trial set with identical results — only wall-clock
// changes with Workers.
func TestTunerParallelMatchesSequential(t *testing.T) {
	ds, err := synth.KWSDataset(2, 10, 8000, 0.5, 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Space:       smallSpace(),
		Input:       kwsInput(),
		Constraints: Constraints{Target: device.MustGet("nano-33-ble-sense")},
		Epochs:      3,
		Seed:        9,
	}
	seq, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	par, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d trials, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("trial %d differs:\nseq %+v\npar %+v", i, seq[i], par[i])
		}
	}
}
