package tuner

import (
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/synth"
)

func TestAutotuneDSPRanksCandidates(t *testing.T) {
	ds, err := synth.KWSDataset(3, 10, 8000, 0.5, 0.03, 21)
	if err != nil {
		t.Fatal(err)
	}
	input := core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	candidates := []map[string]float64{
		{"num_filters": 32, "fft_length": 256},
		{"num_filters": 16, "fft_length": 128},
		{"num_filters": 8, "fft_length": 64},
	}
	results, err := AutotuneDSP(ds, input, "mfe", candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Separability <= 0 {
			t.Errorf("result %d separability %g", i, r.Separability)
		}
		if r.FeatureCount <= 0 {
			t.Errorf("result %d feature count %d", i, r.FeatureCount)
		}
		if i > 0 && r.Separability > results[i-1].Separability {
			t.Fatal("results not sorted")
		}
	}
}

func TestAutotuneSeparabilityMeaningful(t *testing.T) {
	// Separability on genuinely distinct classes must exceed
	// separability on two labels drawn from the same distribution.
	input := core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	cfg := []map[string]float64{{"num_filters": 32, "fft_length": 256}}

	distinct, err := synth.KWSDataset(2, 10, 8000, 0.5, 0.02, 22)
	if err != nil {
		t.Fatal(err)
	}
	real, err := AutotuneDSP(distinct, input, "mfe", cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Same generator for both labels: no signal to separate.
	same, err := synth.KWSDataset(2, 20, 8000, 0.5, 0.02, 23)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, s := range same.List("") {
		if s.Label == "noise" {
			// Relabel half the noise clips as a fake second class.
			if i%2 == 0 {
				same.SetLabel(s.ID, "noise-b")
			}
			i++
		} else {
			same.Remove(s.ID)
		}
	}
	fake, err := AutotuneDSP(same, input, "mfe", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if real[0].Separability < 3*fake[0].Separability {
		t.Errorf("distinct classes %.2f not well above identical classes %.2f",
			real[0].Separability, fake[0].Separability)
	}
}

func TestAutotuneValidation(t *testing.T) {
	ds, _ := synth.KWSDataset(2, 4, 8000, 0.5, 0.03, 23)
	input := core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	if _, err := AutotuneDSP(ds, input, "mfe", nil); err == nil {
		t.Error("accepted empty candidates")
	}
	if _, err := AutotuneDSP(ds, input, "warp", []map[string]float64{{}}); err == nil {
		t.Error("accepted unknown block")
	}
	// Single-class dataset.
	single, _ := synth.KWSDataset(2, 4, 8000, 0.5, 0.03, 24)
	for _, s := range single.List("") {
		single.SetLabel(s.ID, "only")
	}
	if _, err := AutotuneDSP(single, input, "mfe", []map[string]float64{{}}); err == nil {
		t.Error("accepted single class")
	}
}
