package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"edgepulse/internal/jobs"
)

// WatchdogConfig tunes the stuck-job monitor.
type WatchdogConfig struct {
	// Window is how long a running job may go without emitting any
	// event (progress, log, state) before it is flagged as stalled
	// (default 2m).
	Window time.Duration
	// Poll is the sweep period (default Window/4).
	Poll time.Duration
	// Cancel opts into cancelling stalled jobs through the scheduler's
	// cooperative-cancel path; by default the watchdog only flags them.
	Cancel bool
	// Clock substitutes the time source (tests).
	Clock func() time.Time
	// OnStall, when set, observes each newly flagged job (logging).
	OnStall func(j *jobs.Job)
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Window <= 0 {
		c.Window = 2 * time.Minute
	}
	if c.Poll <= 0 {
		c.Poll = c.Window / 4
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Watchdog periodically sweeps the scheduler for running jobs whose
// event stream has gone silent past the window, emits a stalled event on
// each (visible to every live event-feed subscriber), and — when opted
// in — cancels them cooperatively. A job that resumes emitting progress
// clears its stalled flag and can be flagged again later.
type Watchdog struct {
	sched *jobs.Scheduler
	cfg   WatchdogConfig

	stalled   atomic.Int64
	cancelled atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewWatchdog builds a watchdog over the scheduler (not yet running).
func NewWatchdog(sched *jobs.Scheduler, cfg WatchdogConfig) *Watchdog {
	return &Watchdog{
		sched: sched,
		cfg:   cfg.withDefaults(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the sweep loop (idempotent).
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		go func() {
			defer close(w.done)
			ticker := time.NewTicker(w.cfg.Poll)
			defer ticker.Stop()
			for {
				select {
				case <-w.stop:
					return
				case <-ticker.C:
					w.Sweep()
				}
			}
		}()
	})
}

// Stop ends the sweep loop and waits for it to exit (idempotent; safe
// even if Start was never called).
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: unblock Stop
	<-w.done
}

// Sweep runs one pass over the scheduler's jobs, returning how many were
// newly flagged as stalled. Exported so tests (and callers without the
// background loop) can drive it deterministically.
func (w *Watchdog) Sweep() int {
	now := w.cfg.Clock()
	flagged := 0
	for _, j := range w.sched.List() {
		if j == nil || j.Status() != jobs.Running {
			continue
		}
		idle := now.Sub(j.LastActivity())
		if idle < w.cfg.Window {
			continue
		}
		if !j.MarkStalled(fmt.Sprintf("no progress for %s (window %s)",
			idle.Round(time.Second), w.cfg.Window)) {
			continue // already flagged, or finished while sweeping
		}
		flagged++
		w.stalled.Add(1)
		if w.cfg.OnStall != nil {
			w.cfg.OnStall(j)
		}
		if w.cfg.Cancel {
			if _, ok, err := w.sched.Cancel(j.ID); err == nil && ok {
				w.cancelled.Add(1)
			}
		}
	}
	return flagged
}

// Stalled counts stalled flags raised over the watchdog's lifetime.
func (w *Watchdog) Stalled() int64 { return w.stalled.Load() }

// Cancelled counts jobs the watchdog cancelled (Cancel opt-in only).
func (w *Watchdog) Cancelled() int64 { return w.cancelled.Load() }
