package resilience

import "sync"

// Health aggregates named readiness probes plus a draining flag into the
// /readyz contract: ready iff every probe passes and the process is not
// shutting down. Liveness (healthz) is intentionally separate — a
// process that is alive but overloaded must keep answering healthz 200
// while readyz says 503, so orchestrators stop routing to it without
// restarting it.
type Health struct {
	mu       sync.Mutex
	probes   []healthProbe
	draining bool
}

type healthProbe struct {
	name string
	fn   func() error
}

// NewHealth builds an empty probe set (ready by default).
func NewHealth() *Health {
	return &Health{}
}

// Register adds a named readiness probe: fn returns nil when the
// dependency is healthy. Re-registering a name replaces its probe.
func (h *Health) Register(name string, fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.probes {
		if h.probes[i].name == name {
			h.probes[i].fn = fn
			return
		}
	}
	h.probes = append(h.probes, healthProbe{name: name, fn: fn})
}

// SetDraining marks the process as shutting down; readiness fails until
// cleared.
func (h *Health) SetDraining(v bool) {
	h.mu.Lock()
	h.draining = v
	h.mu.Unlock()
}

// Draining reports the shutdown flag.
func (h *Health) Draining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// Readiness is one evaluation of the probe set.
type Readiness struct {
	// Ready is true iff not draining and every probe passed.
	Ready bool
	// Draining mirrors the shutdown flag.
	Draining bool
	// Probes maps each probe name to "ok" or its error text.
	Probes map[string]string
}

// Ready evaluates every probe. Probes run outside the lock so a slow
// dependency check cannot block Register/SetDraining.
func (h *Health) Ready() Readiness {
	h.mu.Lock()
	probes := append([]healthProbe(nil), h.probes...)
	draining := h.draining
	h.mu.Unlock()

	out := Readiness{Ready: !draining, Draining: draining, Probes: map[string]string{}}
	for _, p := range probes {
		if err := p.fn(); err != nil {
			out.Ready = false
			out.Probes[p.name] = err.Error()
		} else {
			out.Probes[p.name] = "ok"
		}
	}
	return out
}
