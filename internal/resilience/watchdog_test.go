package resilience

import (
	"context"
	"testing"
	"time"

	"edgepulse/internal/jobs"
)

// startBlockedJob submits a job that parks until release is closed (or
// its context is cancelled) and waits for it to be running.
func startBlockedJob(t *testing.T, sched *jobs.Scheduler) (*jobs.Job, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	j, err := sched.Submit("train", func(ctx context.Context, job *jobs.Job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Status() != jobs.Running {
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (status %s)", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
	return j, release
}

func TestWatchdogFlagsStalledJob(t *testing.T) {
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	defer sched.Shutdown()
	j, release := startBlockedJob(t, sched)
	defer close(release)

	// A clock an hour ahead makes any real activity look ancient.
	w := NewWatchdog(sched, WatchdogConfig{
		Window: 2 * time.Minute,
		Clock:  func() time.Time { return time.Now().Add(time.Hour) },
	})
	var observed *jobs.Job
	w.cfg.OnStall = func(j *jobs.Job) { observed = j }

	if got := w.Sweep(); got != 1 {
		t.Fatalf("first sweep flagged %d, want 1", got)
	}
	if !j.Stalled() {
		t.Fatal("job not marked stalled")
	}
	if observed != j {
		t.Fatal("OnStall saw a different job")
	}
	if w.Stalled() != 1 || w.Cancelled() != 0 {
		t.Fatalf("counters: stalled %d cancelled %d", w.Stalled(), w.Cancelled())
	}
	// The stalled event reached the job's feed.
	events, _ := j.Events(0)
	found := false
	for _, e := range events {
		if e.Type == jobs.EventStalled {
			found = true
		}
	}
	if !found {
		t.Fatal("no stalled event on the job feed")
	}
	// Already flagged: a second sweep is a no-op.
	if got := w.Sweep(); got != 0 {
		t.Fatalf("second sweep flagged %d, want 0", got)
	}

	// Fresh progress clears the flag; the job can be flagged again.
	j.SetProgress("epoch", 0.5)
	if j.Stalled() {
		t.Fatal("progress did not clear the stalled flag")
	}
	if got := w.Sweep(); got != 1 {
		t.Fatalf("sweep after progress flagged %d, want 1", got)
	}
}

func TestWatchdogSkipsActiveAndFinishedJobs(t *testing.T) {
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	defer sched.Shutdown()
	j, release := startBlockedJob(t, sched)

	// Within the window: nothing flagged.
	w := NewWatchdog(sched, WatchdogConfig{Window: time.Hour})
	if got := w.Sweep(); got != 0 {
		t.Fatalf("active job flagged: %d", got)
	}

	close(release)
	<-j.Done()
	// Terminal jobs are never flagged, no matter how old.
	w2 := NewWatchdog(sched, WatchdogConfig{
		Window: time.Nanosecond,
		Clock:  func() time.Time { return time.Now().Add(time.Hour) },
	})
	if got := w2.Sweep(); got != 0 {
		t.Fatalf("finished job flagged: %d", got)
	}
}

func TestWatchdogCancelOptIn(t *testing.T) {
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	defer sched.Shutdown()
	j, release := startBlockedJob(t, sched)
	defer close(release)

	w := NewWatchdog(sched, WatchdogConfig{
		Window: time.Minute,
		Cancel: true,
		Clock:  func() time.Time { return time.Now().Add(time.Hour) },
	})
	if got := w.Sweep(); got != 1 {
		t.Fatalf("sweep flagged %d", got)
	}
	if w.Cancelled() != 1 {
		t.Fatalf("cancelled counter %d, want 1", w.Cancelled())
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job never reached a terminal state")
	}
	if j.Status() != jobs.Cancelled {
		t.Fatalf("status %s, want cancelled", j.Status())
	}
}

func TestWatchdogStartStopIdempotent(t *testing.T) {
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 1})
	defer sched.Shutdown()

	// Stop without Start must not hang.
	w := NewWatchdog(sched, WatchdogConfig{})
	w.Stop()
	w.Stop()

	w2 := NewWatchdog(sched, WatchdogConfig{Window: time.Hour, Poll: time.Millisecond})
	w2.Start()
	w2.Start()
	time.Sleep(5 * time.Millisecond) // let the ticker fire a few sweeps
	w2.Stop()
	w2.Stop()
}
