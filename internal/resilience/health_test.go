package resilience

import (
	"errors"
	"testing"
)

func TestHealthReadyByDefault(t *testing.T) {
	h := NewHealth()
	rd := h.Ready()
	if !rd.Ready || rd.Draining || len(rd.Probes) != 0 {
		t.Fatalf("empty health set: %+v", rd)
	}
}

func TestHealthProbeFailureAndRecovery(t *testing.T) {
	h := NewHealth()
	var dbErr error
	h.Register("db", func() error { return dbErr })
	h.Register("cache", func() error { return nil })

	rd := h.Ready()
	if !rd.Ready || rd.Probes["db"] != "ok" || rd.Probes["cache"] != "ok" {
		t.Fatalf("all healthy: %+v", rd)
	}

	dbErr = errors.New("connection refused")
	rd = h.Ready()
	if rd.Ready {
		t.Fatal("ready with a failing probe")
	}
	if rd.Probes["db"] != "connection refused" || rd.Probes["cache"] != "ok" {
		t.Fatalf("probe map: %+v", rd.Probes)
	}

	dbErr = nil
	if rd := h.Ready(); !rd.Ready {
		t.Fatal("did not recover once the probe healed")
	}
}

func TestHealthRegisterReplacesByName(t *testing.T) {
	h := NewHealth()
	h.Register("dep", func() error { return errors.New("old") })
	h.Register("dep", func() error { return nil })
	rd := h.Ready()
	if !rd.Ready || len(rd.Probes) != 1 {
		t.Fatalf("replaced probe: %+v", rd)
	}
}

func TestHealthDraining(t *testing.T) {
	h := NewHealth()
	h.Register("dep", func() error { return nil })
	h.SetDraining(true)
	if !h.Draining() {
		t.Fatal("draining flag not set")
	}
	rd := h.Ready()
	if rd.Ready || !rd.Draining {
		t.Fatalf("draining readiness: %+v", rd)
	}
	// Probes still report so operators can tell draining from broken.
	if rd.Probes["dep"] != "ok" {
		t.Fatalf("probes while draining: %+v", rd.Probes)
	}
	h.SetDraining(false)
	if rd := h.Ready(); !rd.Ready {
		t.Fatal("did not recover when draining cleared")
	}
}
