// Package resilience is the daemon-wide robustness layer: priority-aware
// admission control (Gate), readiness probing (Health), a stuck-job
// watchdog (Watchdog), and the client-side retry primitives — jittered
// exponential backoff, a retry token budget, and a circuit breaker — so
// overload is shed server-side without being amplified client-side.
package resilience

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Backoff is a jittered exponential retry-delay policy: attempt 0 waits
// about Base, each later attempt doubles, capped at Max. Jitter spreads
// each delay uniformly over [1-Jitter/2, 1+Jitter/2]× so a fleet of
// clients rejected together does not retry in lockstep.
type Backoff struct {
	// Base is the attempt-0 delay (default 100ms).
	Base time.Duration
	// Max caps the delay (default 2s).
	Max time.Duration
	// Jitter is the randomized fraction of each delay. 0 selects
	// DefaultJitter; negative disables jitter (deterministic delays).
	Jitter float64

	// Rand substitutes the uniform [0,1) source (tests); nil uses the
	// shared math/rand source.
	Rand func() float64
}

// DefaultJitter is the randomized delay fraction when Jitter is unset.
const DefaultJitter = 0.2

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if attempt < 0 {
		attempt = 0
	}
	// Cap the exponent so the shift cannot overflow into a negative
	// duration (zero-delay hammering).
	if attempt > 30 {
		attempt = 30
	}
	d := base << attempt
	if d <= 0 || d > max {
		d = max
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = DefaultJitter
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		r := rand.Float64
		if b.Rand != nil {
			r = b.Rand
		}
		d = time.Duration(float64(d) * (1 - jitter/2 + jitter*r()))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// RetryBudget is a token bucket bounding how many retries a client may
// issue relative to its successes: each retry spends one token, each
// success credits Ratio tokens back (capped at Max). Under a persistent
// outage the budget drains and retries stop, so shed requests cannot
// retry-storm the server back down.
type RetryBudget struct {
	// Max is the bucket capacity (default 16); the bucket starts full.
	Max float64
	// Ratio is the credit per success (default 0.25).
	Ratio float64

	mu     sync.Mutex
	tokens float64
	inited bool
}

func (b *RetryBudget) maxTokens() float64 {
	if b.Max > 0 {
		return b.Max
	}
	return 16
}

// Spend consumes one retry token, reporting false when the budget is
// exhausted (the caller should surface the last error instead of
// retrying).
func (b *RetryBudget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.inited {
		b.tokens = b.maxTokens()
		b.inited = true
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Credit refunds Ratio tokens on a successful request, up to Max.
func (b *RetryBudget) Credit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.inited {
		b.tokens = b.maxTokens()
		b.inited = true
		return
	}
	ratio := b.Ratio
	if ratio <= 0 {
		ratio = 0.25
	}
	b.tokens += ratio
	if max := b.maxTokens(); b.tokens > max {
		b.tokens = max
	}
}

// ErrCircuitOpen is returned by Breaker.Allow while the breaker is open:
// the upstream has failed consecutively and calls are refused locally
// until the cooldown elapses.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// Breaker is a consecutive-failure circuit breaker. Closed passes every
// call; Threshold consecutive failures open it, refusing calls for
// Cooldown; then one half-open probe is admitted — success re-closes the
// breaker, failure re-opens it for another cooldown.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 8).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// probe (default 2s).
	Cooldown time.Duration
	// Clock substitutes the time source (tests).
	Clock func() time.Time

	mu       sync.Mutex
	failures int
	state    breakerState
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 8
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 2 * time.Second
}

// Allow reports whether a call may proceed, returning ErrCircuitOpen
// while the breaker is refusing traffic. Callers that get nil must
// report the outcome via Record.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open: one probe at a time
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// Record reports a call outcome. Failures while closed count toward the
// threshold; a half-open probe's outcome closes or re-opens the breaker.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.failures = 0
		} else {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
		return
	}
	if ok {
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold() {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// State renders the breaker state for diagnostics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
