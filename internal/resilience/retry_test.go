package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Fatalf("attempt %d: %s, want %s", attempt, got, w)
		}
	}
	// Negative attempts clamp to 0; absurd attempts clamp to the max
	// instead of overflowing into a negative (zero-delay) duration.
	if got := b.Delay(-3); got != 100*time.Millisecond {
		t.Fatalf("attempt -3: %s", got)
	}
	if got := b.Delay(1 << 20); got != 2*time.Second {
		t.Fatalf("huge attempt: %s", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// With r=0 the delay is (1-Jitter/2)×; with r→1 it approaches
	// (1+Jitter/2)×.
	b := Backoff{Base: time.Second, Max: time.Minute, Jitter: 0.5, Rand: func() float64 { return 0 }}
	if got := b.Delay(0); got != 750*time.Millisecond {
		t.Fatalf("low jitter bound: %s", got)
	}
	b.Rand = func() float64 { return 1 }
	if got := b.Delay(0); got != 1250*time.Millisecond {
		t.Fatalf("high jitter bound: %s", got)
	}
	// Jitter 0 selects the default fraction, not determinism.
	b = Backoff{Base: time.Second, Max: time.Minute, Rand: func() float64 { return 0 }}
	if got := b.Delay(0); got != 900*time.Millisecond {
		t.Fatalf("default jitter low bound: %s, want 900ms", got)
	}
	// Jitter > 1 clamps to 1.
	b = Backoff{Base: time.Second, Max: time.Minute, Jitter: 5, Rand: func() float64 { return 0 }}
	if got := b.Delay(0); got != 500*time.Millisecond {
		t.Fatalf("clamped jitter low bound: %s", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d := b.Delay(0)
	if d < 90*time.Millisecond || d > 110*time.Millisecond {
		t.Fatalf("zero-value delay %s outside jittered 100ms band", d)
	}
	if d := b.Delay(100); d > 2200*time.Millisecond {
		t.Fatalf("zero-value max delay %s", d)
	}
}

func TestRetryBudgetDrainsAndRefills(t *testing.T) {
	b := &RetryBudget{Max: 2, Ratio: 0.5}
	if !b.Spend() || !b.Spend() {
		t.Fatal("budget should start full")
	}
	if b.Spend() {
		t.Fatal("budget should be exhausted")
	}
	// Two successes at ratio 0.5 earn one retry back.
	b.Credit()
	if b.Spend() {
		t.Fatal("half a token should not afford a retry")
	}
	b.Credit()
	if !b.Spend() {
		t.Fatal("one full token refunded, retry should pass")
	}
	// Credits never exceed Max.
	for i := 0; i < 100; i++ {
		b.Credit()
	}
	if !b.Spend() || !b.Spend() {
		t.Fatal("capped budget should hold exactly Max tokens")
	}
	if b.Spend() {
		t.Fatal("budget exceeded its cap")
	}
}

func TestRetryBudgetDefaultsAndCreditFirst(t *testing.T) {
	// Credit before any Spend initializes the bucket full (not full+ratio).
	b := &RetryBudget{}
	b.Credit()
	for i := 0; i < 16; i++ {
		if !b.Spend() {
			t.Fatalf("default budget exhausted after %d spends, want 16", i)
		}
	}
	if b.Spend() {
		t.Fatal("default budget should hold 16 tokens")
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := &Breaker{Threshold: 3, Cooldown: time.Second, Clock: clk.Now}
	if b.State() != "closed" {
		t.Fatalf("initial state %s", b.State())
	}
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	// A success resets the consecutive count.
	b.Record(true)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("failure %d: %v", i, err)
		}
		b.Record(false)
	}
	if b.State() != "open" {
		t.Fatalf("state after threshold failures: %s", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := &Breaker{Threshold: 1, Cooldown: time.Second, Clock: clk.Now}
	b.Allow()
	b.Record(false)
	if b.State() != "open" {
		t.Fatalf("state %s", b.State())
	}
	// Cooldown elapses: exactly one probe is admitted.
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused after cooldown: %v", err)
	}
	if b.State() != "half-open" {
		t.Fatalf("state %s", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: re-open for another cooldown.
	b.Record(false)
	if b.State() != "open" {
		t.Fatalf("state after failed probe: %s", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("re-opened breaker admitted a call before cooldown")
	}
	// Second probe succeeds: breaker closes and calls flow again.
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != "closed" {
		t.Fatalf("state after successful probe: %s", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused a call: %v", err)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 7; i++ {
		b.Record(false)
	}
	if b.State() != "closed" {
		t.Fatalf("state before default threshold: %s", b.State())
	}
	b.Record(false)
	if b.State() != "open" {
		t.Fatalf("state at default threshold: %s", b.State())
	}
	if b.cooldown() != 2*time.Second {
		t.Fatalf("default cooldown %s", b.cooldown())
	}
}
