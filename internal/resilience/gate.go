package resilience

import (
	"fmt"
	"sync"
	"time"
)

// Class is a request's admission class. The gate sheds Batch first, then
// Default; Interactive is never shed — a user waiting on a classify
// result always gets an answer, even if every batch sweep is refused.
type Class int

// Admission classes. Default is deliberately the zero value so an
// unclassified request never lands in the never-shed Interactive class
// by omission.
const (
	ClassDefault Class = iota
	ClassInteractive
	ClassBatch
	numClasses
)

// String returns the wire name of the class.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassDefault:
		return "default"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Load is one sample of the pressure signals the gate watches. Each
// dimension is a used/capacity pair; a capacity of 0 removes that
// dimension from the score.
type Load struct {
	// Inflight / InflightCap count admitted HTTP requests (filled by the
	// gate itself).
	Inflight    int
	InflightCap int
	// QueueDepth / QueueCap is the job scheduler's pending backlog.
	QueueDepth int
	QueueCap   int
	// Sessions / SessionCap is the streaming plane's live session count.
	Sessions   int
	SessionCap int
	// HeapBytes / HeapLimit is runtime memory pressure (opt-in).
	HeapBytes uint64
	HeapLimit uint64
}

// Score reduces the sample to a single utilization in [0,∞): the maximum
// across dimensions, so the most saturated resource drives shedding.
func (l Load) Score() float64 {
	score := frac(float64(l.Inflight), float64(l.InflightCap))
	if s := frac(float64(l.QueueDepth), float64(l.QueueCap)); s > score {
		score = s
	}
	if s := frac(float64(l.Sessions), float64(l.SessionCap)); s > score {
		score = s
	}
	if s := frac(float64(l.HeapBytes), float64(l.HeapLimit)); s > score {
		score = s
	}
	return score
}

func frac(used, cap float64) float64 {
	if cap <= 0 {
		return 0
	}
	return used / cap
}

// Level is the gate's current shedding posture.
type Level int

// Shedding levels, escalating.
const (
	// LevelNormal admits every class.
	LevelNormal Level = iota
	// LevelShedBatch refuses Batch-class work.
	LevelShedBatch
	// LevelShedDefault refuses Batch and Default; only Interactive is
	// admitted.
	LevelShedDefault
)

// String renders the level for metrics and logs.
func (l Level) String() string {
	switch l {
	case LevelShedBatch:
		return "shed-batch"
	case LevelShedDefault:
		return "shed-default"
	default:
		return "normal"
	}
}

// DefaultMaxInflight bounds admitted concurrent requests when
// GateConfig.MaxInflight is unset.
const DefaultMaxInflight = 256

// GateConfig tunes a Gate.
type GateConfig struct {
	// MaxInflight is the admitted-request concurrency bound (default
	// DefaultMaxInflight). At the bound, non-interactive work is shed
	// regardless of score.
	MaxInflight int
	// ShedBatch is the load score at which Batch is refused (default
	// 0.75).
	ShedBatch float64
	// ShedDefault is the score at which Default is also refused
	// (default 0.90).
	ShedDefault float64
	// Release is the hysteresis margin: a level is only left once the
	// score drops below its threshold minus Release, so shedding does
	// not flap around a threshold (default 0.10).
	Release float64
	// SamplePeriod bounds how often the external Sample func runs; in
	// between, the cached sample is reused (default 100ms).
	SamplePeriod time.Duration
	// Sample supplies the queue/session/memory dimensions; the gate
	// fills the in-flight dimension itself. nil watches in-flight only.
	Sample func() Load
	// Clock substitutes the time source (tests).
	Clock func() time.Time
}

func (c GateConfig) withDefaults() GateConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.ShedBatch <= 0 {
		c.ShedBatch = 0.75
	}
	if c.ShedDefault <= 0 {
		c.ShedDefault = 0.90
	}
	if c.ShedDefault < c.ShedBatch {
		c.ShedDefault = c.ShedBatch
	}
	if c.Release <= 0 {
		c.Release = 0.10
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 100 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// ShedError reports an admission refusal with a suggested retry delay;
// the API layer maps it to 429 + Retry-After.
type ShedError struct {
	Class      Class
	Level      Level
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("resilience: %s load shedding, %s-class request refused (retry in %s)",
		e.Level, e.Class, e.RetryAfter)
}

// Gate is the central admission controller: every (non-exempt) request
// acquires a slot before its handler runs. The gate samples system load
// (in-flight requests, scheduler queue depth, stream sessions, memory),
// escalates its shedding level instantly when the score crosses a
// threshold, and de-escalates with hysteresis once the score falls
// clearly below it.
type Gate struct {
	cfg GateConfig

	mu         sync.Mutex
	inflight   int
	level      Level
	lastScore  float64
	lastSample time.Time
	sampled    Load
	admitted   [numClasses]int64
	shed       [numClasses]int64
}

// NewGate builds a gate from cfg (zero fields take defaults).
func NewGate(cfg GateConfig) *Gate {
	return &Gate{cfg: cfg.withDefaults()}
}

// refreshLocked resamples load (rate-limited to SamplePeriod) and moves
// the shedding level. Caller holds g.mu.
func (g *Gate) refreshLocked() {
	now := g.cfg.Clock()
	if g.lastSample.IsZero() || now.Sub(g.lastSample) >= g.cfg.SamplePeriod {
		if g.cfg.Sample != nil {
			g.sampled = g.cfg.Sample()
		}
		g.lastSample = now
	}
	load := g.sampled
	load.Inflight = g.inflight
	load.InflightCap = g.cfg.MaxInflight
	score := load.Score()
	g.lastScore = score

	lvl := g.level
	// Escalate immediately.
	for lvl < LevelShedDefault && score >= g.riseThreshold(lvl+1) {
		lvl++
	}
	// De-escalate only once clearly below the level's own threshold.
	for lvl > LevelNormal && score < g.riseThreshold(lvl)-g.cfg.Release {
		lvl--
	}
	g.level = lvl
}

// riseThreshold is the score at which the given level engages.
func (g *Gate) riseThreshold(l Level) float64 {
	if l >= LevelShedDefault {
		return g.cfg.ShedDefault
	}
	return g.cfg.ShedBatch
}

// shedsLocked reports whether class is refused at the current posture.
func (g *Gate) shedsLocked(class Class) bool {
	if class == ClassInteractive {
		return false
	}
	// Hard concurrency bound, independent of the sampled score.
	if g.inflight >= g.cfg.MaxInflight {
		return true
	}
	switch g.level {
	case LevelShedDefault:
		return true
	case LevelShedBatch:
		return class == ClassBatch
	default:
		return false
	}
}

// retryAfter suggests how long a shed caller should wait: batch work
// backs off longer than default work, since it is re-admitted last.
func retryAfter(class Class) time.Duration {
	if class == ClassBatch {
		return 5 * time.Second
	}
	return 2 * time.Second
}

// Acquire admits a request of the given class, returning a release func
// the caller must invoke when the request finishes, or a *ShedError when
// the class is being shed. Interactive requests are always admitted.
func (g *Gate) Acquire(class Class) (release func(), err error) {
	if class < 0 || class >= numClasses {
		class = ClassDefault
	}
	g.mu.Lock()
	g.refreshLocked()
	if g.shedsLocked(class) {
		g.shed[class]++
		lvl := g.level
		g.mu.Unlock()
		return nil, &ShedError{Class: class, Level: lvl, RetryAfter: retryAfter(class)}
	}
	g.inflight++
	g.admitted[class]++
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inflight--
			g.mu.Unlock()
		})
	}, nil
}

// Level re-evaluates and returns the current shedding posture. Readiness
// probes call this, so the level decays back to normal even when no
// requests are arriving.
func (g *Gate) Level() Level {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refreshLocked()
	return g.level
}

// GateMetrics is a point-in-time admission snapshot.
type GateMetrics struct {
	// Level is the current shedding posture ("normal", "shed-batch",
	// "shed-default").
	Level string
	// Score is the last computed load score.
	Score float64
	// Inflight counts currently admitted requests.
	Inflight int
	// Admitted and Shed count decisions per class name.
	Admitted map[string]int64
	Shed     map[string]int64
}

// Metrics snapshots the gate's counters (refreshing the level first).
func (g *Gate) Metrics() GateMetrics {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refreshLocked()
	m := GateMetrics{
		Level:    g.level.String(),
		Score:    g.lastScore,
		Inflight: g.inflight,
		Admitted: map[string]int64{},
		Shed:     map[string]int64{},
	}
	for c := Class(0); c < numClasses; c++ {
		if g.admitted[c] > 0 {
			m.Admitted[c.String()] = g.admitted[c]
		}
		if g.shed[c] > 0 {
			m.Shed[c.String()] = g.shed[c]
		}
	}
	return m
}
