package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestLoadScoreTakesMaxDimension(t *testing.T) {
	l := Load{
		Inflight: 10, InflightCap: 100, // 0.10
		QueueDepth: 9, QueueCap: 10, // 0.90
		Sessions: 1, SessionCap: 4, // 0.25
		HeapBytes: 50, HeapLimit: 100, // 0.50
	}
	if got := l.Score(); got != 0.90 {
		t.Fatalf("score %v, want 0.90", got)
	}
	// A zero capacity removes the dimension entirely.
	l.QueueCap = 0
	if got := l.Score(); got != 0.50 {
		t.Fatalf("score with queue dimension removed: %v, want 0.50", got)
	}
}

func TestClassAndLevelStrings(t *testing.T) {
	for in, want := range map[string]string{
		ClassInteractive.String(): "interactive",
		ClassDefault.String():     "default",
		ClassBatch.String():       "batch",
		Class(9).String():         "class(9)",
		LevelNormal.String():      "normal",
		LevelShedBatch.String():   "shed-batch",
		LevelShedDefault.String(): "shed-default",
	} {
		if in != want {
			t.Fatalf("got %q, want %q", in, want)
		}
	}
}

// gateWithScore builds a gate whose external load score is driven by a
// settable variable, sampled on every refresh.
func gateWithScore(clk *fakeClock, score *float64, mu *sync.Mutex) *Gate {
	return NewGate(GateConfig{
		MaxInflight:  100,
		SamplePeriod: time.Nanosecond,
		Clock:        clk.Now,
		Sample: func() Load {
			mu.Lock()
			defer mu.Unlock()
			return Load{QueueDepth: int(*score * 1000), QueueCap: 1000}
		},
	})
}

func TestGateShedsBatchThenDefaultNeverInteractive(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	score := 0.0
	set := func(v float64) {
		mu.Lock()
		score = v
		mu.Unlock()
		clk.Advance(time.Second) // expire the sample cache
	}
	g := gateWithScore(clk, &score, &mu)

	// Normal: everything admitted.
	for _, cls := range []Class{ClassInteractive, ClassDefault, ClassBatch} {
		release, err := g.Acquire(cls)
		if err != nil {
			t.Fatalf("normal load, class %s: %v", cls, err)
		}
		release()
	}

	// Past the batch threshold: batch shed, default and interactive pass.
	set(0.80)
	if _, err := g.Acquire(ClassBatch); err == nil {
		t.Fatal("batch admitted at score 0.80")
	}
	release, err := g.Acquire(ClassDefault)
	if err != nil {
		t.Fatalf("default at score 0.80: %v", err)
	}
	release()

	// Past the default threshold: only interactive passes.
	set(0.95)
	if _, err := g.Acquire(ClassDefault); err == nil {
		t.Fatal("default admitted at score 0.95")
	}
	var shed *ShedError
	_, err = g.Acquire(ClassBatch)
	if !errors.As(err, &shed) {
		t.Fatalf("want *ShedError, got %v", err)
	}
	if shed.Class != ClassBatch || shed.Level != LevelShedDefault || shed.RetryAfter != 5*time.Second {
		t.Fatalf("shed error: %+v", shed)
	}
	if shed.Error() == "" {
		t.Fatal("empty shed error text")
	}
	release, err = g.Acquire(ClassInteractive)
	if err != nil {
		t.Fatalf("interactive at score 0.95: %v", err)
	}
	release()
}

func TestGateHysteresis(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	score := 0.0
	set := func(v float64) {
		mu.Lock()
		score = v
		mu.Unlock()
		clk.Advance(time.Second)
	}
	g := gateWithScore(clk, &score, &mu)

	set(0.80)
	if lvl := g.Level(); lvl != LevelShedBatch {
		t.Fatalf("level at 0.80: %s", lvl)
	}
	// Dropping just below the threshold is not enough to de-escalate...
	set(0.70)
	if lvl := g.Level(); lvl != LevelShedBatch {
		t.Fatalf("level at 0.70 (within hysteresis band): %s", lvl)
	}
	// ...but dropping below threshold-Release is.
	set(0.60)
	if lvl := g.Level(); lvl != LevelNormal {
		t.Fatalf("level at 0.60: %s", lvl)
	}

	// Escalation to shed-default is immediate, recovery steps down.
	set(0.95)
	if lvl := g.Level(); lvl != LevelShedDefault {
		t.Fatalf("level at 0.95: %s", lvl)
	}
	// 0.85 sits inside shed-default's hysteresis band (0.90-0.10).
	set(0.85)
	if lvl := g.Level(); lvl != LevelShedDefault {
		t.Fatalf("level at 0.85 (within hysteresis band): %s", lvl)
	}
	set(0.78)
	if lvl := g.Level(); lvl != LevelShedBatch {
		t.Fatalf("level at 0.78: %s", lvl)
	}
	set(0.0)
	if lvl := g.Level(); lvl != LevelNormal {
		t.Fatalf("level at 0.0: %s", lvl)
	}
}

func TestGateHardInflightBound(t *testing.T) {
	g := NewGate(GateConfig{MaxInflight: 2, SamplePeriod: time.Nanosecond})
	r1, err := g.Acquire(ClassDefault)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(ClassDefault)
	if err != nil {
		t.Fatal(err)
	}
	// At the bound: non-interactive sheds regardless of score...
	if _, err := g.Acquire(ClassDefault); err == nil {
		t.Fatal("default admitted beyond MaxInflight")
	}
	// ...while interactive still passes.
	r3, err := g.Acquire(ClassInteractive)
	if err != nil {
		t.Fatalf("interactive at the inflight bound: %v", err)
	}
	r3()
	r1()
	// Release is idempotent: double-invoking must not free a second slot.
	r1()
	r4, err := g.Acquire(ClassDefault)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	if _, err := g.Acquire(ClassDefault); err == nil {
		t.Fatal("double release freed two slots")
	}
	r4()
	r2()
}

func TestGateSamplePeriodCachesLoad(t *testing.T) {
	clk := newFakeClock()
	calls := 0
	g := NewGate(GateConfig{
		MaxInflight:  100,
		SamplePeriod: 100 * time.Millisecond,
		Clock:        clk.Now,
		Sample:       func() Load { calls++; return Load{} },
	})
	for i := 0; i < 5; i++ {
		release, err := g.Acquire(ClassDefault)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if calls != 1 {
		t.Fatalf("sampler ran %d times within one period, want 1", calls)
	}
	clk.Advance(time.Second)
	g.Level()
	if calls != 2 {
		t.Fatalf("sampler ran %d times after period elapsed, want 2", calls)
	}
}

func TestGateUnknownClassTreatedAsDefault(t *testing.T) {
	g := NewGate(GateConfig{MaxInflight: 1, SamplePeriod: time.Nanosecond})
	release, err := g.Acquire(Class(42))
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := g.Acquire(Class(-1)); err == nil {
		t.Fatal("out-of-range class admitted past the inflight bound")
	}
}

func TestGateMetrics(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	score := 0.0
	g := gateWithScore(clk, &score, &mu)
	release, _ := g.Acquire(ClassInteractive)
	defer release()
	mu.Lock()
	score = 0.80
	mu.Unlock()
	clk.Advance(time.Second)
	if _, err := g.Acquire(ClassBatch); err == nil {
		t.Fatal("batch admitted at 0.80")
	}
	m := g.Metrics()
	if m.Level != "shed-batch" {
		t.Fatalf("level %q", m.Level)
	}
	if m.Inflight != 1 {
		t.Fatalf("inflight %d", m.Inflight)
	}
	if m.Admitted["interactive"] != 1 || m.Shed["batch"] != 1 {
		t.Fatalf("counters: %+v", m)
	}
	if m.Score < 0.75 {
		t.Fatalf("score %v", m.Score)
	}
}
