// Package eon implements the EON Compiler (paper Sec. 4.5): it compiles a
// model into a static execution program whose kernels are resolved at
// compile time — eliminating the TFLM interpreter's runtime graph walk
// and dispatch — and emits equivalent C++ source code in which weights
// are constant arrays and kernels are called directly, so the linker can
// strip everything unused.
//
// Two artifacts come out of a compilation:
//
//   - Program: a runnable in-process plan (used by the SDK and the EIM
//     runner) with no per-op registry lookups.
//   - C++ source (EmitCPP): the deployable library the real platform
//     ships, reproduced here as generated text with the same structure.
package eon

import (
	"fmt"
	"sort"

	"edgepulse/internal/tensor"
	"edgepulse/internal/tflm"
)

// Program is a compiled model: an ordered list of bound kernel calls.
type Program struct {
	// Precision of the compiled model.
	Precision tflm.Precision
	// NumClasses is the classifier output width.
	NumClasses int

	inputShape tensor.Shape
	floatSteps []func(*tensor.F32) *tensor.F32
	int8Run    func(*tensor.F32) *tensor.F32
	kernels    []string
}

// Compile builds a static execution plan for the model. Every kernel is
// resolved now; Run performs only direct calls.
func Compile(mf *tflm.ModelFile) (*Program, error) {
	p := &Program{Precision: mf.Precision, NumClasses: mf.NumClasses}
	used := map[string]bool{}
	switch mf.Precision {
	case tflm.Float32:
		if mf.Float == nil {
			return nil, fmt.Errorf("eon: float model missing")
		}
		if _, err := mf.Float.OutputShape(); err != nil {
			return nil, err
		}
		for _, l := range mf.Float.Layers {
			layer := l // bind
			p.floatSteps = append(p.floatSteps, layer.Forward)
			used[l.Kind()] = true
		}
	case tflm.Int8:
		if mf.Quant == nil {
			return nil, fmt.Errorf("eon: quant model missing")
		}
		qm := mf.Quant
		p.int8Run = qm.Forward
		for _, op := range qm.Ops {
			used[op.Kind] = true
		}
	default:
		return nil, fmt.Errorf("eon: unknown precision %d", mf.Precision)
	}
	p.inputShape = mf.InputShape().Clone()
	for k := range used {
		p.kernels = append(p.kernels, k)
	}
	sort.Strings(p.kernels)
	return p, nil
}

// Run executes one inference through the compiled plan.
func (p *Program) Run(in *tensor.F32) (*tensor.F32, error) {
	if !in.Shape.Equal(p.inputShape) {
		return nil, fmt.Errorf("eon: input shape %v != model %v", in.Shape, p.inputShape)
	}
	if p.Precision == tflm.Int8 {
		return p.int8Run(in), nil
	}
	x := in
	for _, step := range p.floatSteps {
		x = step(x)
	}
	return x, nil
}

// KernelsUsed returns the sorted set of kernel kinds linked into the
// program — everything else is eliminated, the "linker can strip unused
// instructions" effect the paper describes.
func (p *Program) KernelsUsed() []string {
	return append([]string(nil), p.kernels...)
}

// InputShape returns the model input shape.
func (p *Program) InputShape() tensor.Shape { return p.inputShape.Clone() }
