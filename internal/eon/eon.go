// Package eon implements the EON Compiler (paper Sec. 4.5): it compiles a
// model into a static execution program whose kernels are resolved at
// compile time — eliminating the TFLM interpreter's runtime graph walk
// and dispatch — and emits equivalent C++ source code in which weights
// are constant arrays and kernels are called directly, so the linker can
// strip everything unused.
//
// Two artifacts come out of a compilation:
//
//   - Program: a runnable in-process plan (used by the SDK and the EIM
//     runner) with no per-op registry lookups.
//   - C++ source (EmitCPP): the deployable library the real platform
//     ships, reproduced here as generated text with the same structure.
package eon

import (
	"fmt"
	"sort"

	"edgepulse/internal/nn"
	"edgepulse/internal/profiler"
	"edgepulse/internal/tensor"
	"edgepulse/internal/tflm"
)

// Program is a compiled model: a static, arena-backed execution plan.
type Program struct {
	// Precision of the compiled model.
	Precision tflm.Precision
	// NumClasses is the classifier output width.
	NumClasses int

	inputShape tensor.Shape
	// floatPlan executes the float model with every kernel bound at
	// compile time and every intermediate buffer placed at a fixed
	// offset of the liveness-planned arena.
	floatPlan *nn.InferPlan
	int8Run   func(*tensor.F32) *tensor.F32
	kernels   []string
	arena     int64
}

// Compile builds a static execution plan for the model. Every kernel is
// resolved now, and intermediate activations are laid out by the memory
// profiler's liveness-based arena planner (the same plan Table 4's RAM
// estimates are built on), so Run performs only direct calls into a
// pooled arena that is both smaller and faster than the interpreter's
// per-op bookkeeping.
func Compile(mf *tflm.ModelFile) (*Program, error) {
	p := &Program{Precision: mf.Precision, NumClasses: mf.NumClasses}
	used := map[string]bool{}
	switch mf.Precision {
	case tflm.Float32:
		if mf.Float == nil {
			return nil, fmt.Errorf("eon: float model missing")
		}
		specs, err := mf.Float.Spec()
		if err != nil {
			return nil, err
		}
		bufs, bufOf := profiler.ActivationAssignments(specs, 4)
		arenaBytes, offs := profiler.PlanArena(bufs)
		var offsets []int
		for i, s := range specs {
			used[s.Kind] = true
			if nn.Aliases(s.Kind) {
				continue
			}
			offsets = append(offsets, int(offs[bufOf[i+1]]/4))
		}
		p.floatPlan, err = nn.NewInferPlanOffsets(mf.Float, offsets, int(arenaBytes/4))
		if err != nil {
			return nil, err
		}
		p.arena = arenaBytes
	case tflm.Int8:
		if mf.Quant == nil {
			return nil, fmt.Errorf("eon: quant model missing")
		}
		qm := mf.Quant
		p.int8Run = qm.Forward
		for _, op := range qm.Ops {
			used[op.Kind] = true
		}
	default:
		return nil, fmt.Errorf("eon: unknown precision %d", mf.Precision)
	}
	p.inputShape = mf.InputShape().Clone()
	for k := range used {
		p.kernels = append(p.kernels, k)
	}
	sort.Strings(p.kernels)
	return p, nil
}

// Run executes one inference through the compiled plan. It is safe for
// concurrent use: the arena is pooled per call.
func (p *Program) Run(in *tensor.F32) (*tensor.F32, error) {
	if !in.Shape.Equal(p.inputShape) {
		return nil, fmt.Errorf("eon: input shape %v != model %v", in.Shape, p.inputShape)
	}
	if p.Precision == tflm.Int8 {
		return p.int8Run(in), nil
	}
	return p.floatPlan.Run(in)
}

// ArenaBytes returns the float plan's liveness-planned activation arena
// size (0 for int8 programs, whose buffers are pooled in the QModel).
func (p *Program) ArenaBytes() int64 { return p.arena }

// KernelsUsed returns the sorted set of kernel kinds linked into the
// program — everything else is eliminated, the "linker can strip unused
// instructions" effect the paper describes.
func (p *Program) KernelsUsed() []string {
	return append([]string(nil), p.kernels...)
}

// InputShape returns the model input shape.
func (p *Program) InputShape() tensor.Shape { return p.inputShape.Clone() }
