package eon

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
	"edgepulse/internal/tflm"
)

func smallModel(t testing.TB, seed int64) *nn.Model {
	t.Helper()
	m := nn.NewModel(6, 6, 1)
	m.NumClasses = 3
	m.Add(nn.NewConv2D(4, 3, 1, nn.Same, nn.ReLU)).
		Add(nn.NewMaxPool2D(2, 2)).
		Add(nn.NewFlatten()).
		Add(nn.NewDense(3, nn.None)).
		Add(nn.NewSoftmax())
	if err := nn.InitWeights(m, seed); err != nil {
		t.Fatal(err)
	}
	return m
}

func randIn(rng *rand.Rand, shape ...int) *tensor.F32 {
	x := tensor.NewF32(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestEONMatchesTFLMFloat is the core equivalence property: the compiled
// program must produce bit-identical outputs to the interpreter.
func TestEONMatchesTFLMFloat(t *testing.T) {
	m := smallModel(t, 1)
	mf := tflm.ModelFileFromFloat(m)
	it, err := tflm.NewInterpreter(mf)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		in := randIn(rng, 6, 6, 1)
		a, err := it.Invoke(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := prog.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for c := range a.Data {
			if a.Data[c] != b.Data[c] {
				t.Fatalf("EON diverges from TFLM at %d: %g vs %g", c, a.Data[c], b.Data[c])
			}
		}
	}
}

func TestEONMatchesTFLMInt8(t *testing.T) {
	m := smallModel(t, 3)
	rng := rand.New(rand.NewSource(4))
	qm, err := quant.Quantize(m, []*tensor.F32{randIn(rng, 6, 6, 1)})
	if err != nil {
		t.Fatal(err)
	}
	mf := tflm.ModelFileFromQuant(qm)
	it, err := tflm.NewInterpreter(mf)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		in := randIn(rng, 6, 6, 1)
		a, _ := it.Invoke(in)
		b, err := prog.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for c := range a.Data {
			if a.Data[c] != b.Data[c] {
				t.Fatalf("int8 EON diverges at %d", c)
			}
		}
	}
}

func TestKernelsUsedDeadCodeElimination(t *testing.T) {
	m := smallModel(t, 5)
	prog, err := Compile(tflm.ModelFileFromFloat(m))
	if err != nil {
		t.Fatal(err)
	}
	used := prog.KernelsUsed()
	want := map[string]bool{"conv2d": true, "maxpool2d": true, "flatten": true, "dense": true, "softmax": true}
	if len(used) != len(want) {
		t.Fatalf("kernels = %v", used)
	}
	for _, k := range used {
		if !want[k] {
			t.Errorf("unexpected kernel %q linked", k)
		}
	}
	// conv1d was never used: it must not be in the program.
	for _, k := range used {
		if k == "conv1d" || k == "depthwise_conv2d" {
			t.Errorf("dead kernel %q not eliminated", k)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(&tflm.ModelFile{Precision: tflm.Float32}); err == nil {
		t.Error("accepted missing float model")
	}
	if _, err := Compile(&tflm.ModelFile{Precision: tflm.Int8}); err == nil {
		t.Error("accepted missing quant model")
	}
	if _, err := Compile(&tflm.ModelFile{Precision: 7}); err == nil {
		t.Error("accepted unknown precision")
	}
}

func TestRunShapeValidation(t *testing.T) {
	m := smallModel(t, 6)
	prog, _ := Compile(tflm.ModelFileFromFloat(m))
	if _, err := prog.Run(tensor.NewF32(5, 5, 1)); err == nil {
		t.Error("accepted wrong input shape")
	}
}

func TestEmitCPPFloat(t *testing.T) {
	m := smallModel(t, 7)
	files, err := EmitCPP(tflm.ModelFileFromFloat(m), "kws")
	if err != nil {
		t.Fatal(err)
	}
	// Header contract.
	for _, want := range []string{"#ifndef KWS_MODEL_H", "int kws_invoke", "KWS_NUM_CLASSES 3", "KWS_INPUT_SIZE 36"} {
		if !strings.Contains(files.Header, want) {
			t.Errorf("header missing %q", want)
		}
	}
	// Source: weight arrays + direct kernel calls, no interpreter.
	for _, want := range []string{"static const float kws_l0_t0", "ep_conv2d", "ep_fully_connected", "ep_softmax"} {
		if !strings.Contains(files.Source, want) {
			t.Errorf("source missing %q", want)
		}
	}
	for _, banned := range []string{"interpreter", "Interpreter", "resolver"} {
		if strings.Contains(files.Source, banned) {
			t.Errorf("generated source mentions %q", banned)
		}
	}
}

func TestEmitCPPInt8(t *testing.T) {
	m := smallModel(t, 8)
	rng := rand.New(rand.NewSource(9))
	qm, err := quant.Quantize(m, []*tensor.F32{randIn(rng, 6, 6, 1)})
	if err != nil {
		t.Fatal(err)
	}
	files, err := EmitCPP(tflm.ModelFileFromQuant(qm), "kws_i8")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static const int8_t kws_i8_l0_w", "static const int32_t kws_i8_l0_b"} {
		if !strings.Contains(files.Source, want) {
			t.Errorf("int8 source missing %q", want)
		}
	}
}

func TestEmitCPPDeterministic(t *testing.T) {
	m := smallModel(t, 10)
	a, err := EmitCPP(tflm.ModelFileFromFloat(m), "det")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := EmitCPP(tflm.ModelFileFromFloat(m), "det")
	if a.Source != b.Source || a.Header != b.Header {
		t.Fatal("codegen not deterministic")
	}
}

func TestProgramAfterSerializationRoundTrip(t *testing.T) {
	// Compile from a deserialized model: full deploy path.
	m := smallModel(t, 11)
	data, err := tflm.Marshal(tflm.ModelFileFromFloat(m))
	if err != nil {
		t.Fatal(err)
	}
	mf, err := tflm.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	in := randIn(rng, 6, 6, 1)
	a := m.Forward(in)
	b, err := prog.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Data {
		if math.Abs(float64(a.Data[c]-b.Data[c])) > 1e-6 {
			t.Fatal("deserialized program diverges")
		}
	}
}

// BenchmarkEONvsInterpreter measures the dispatch overhead ablation: the
// compiled program avoids the per-op registry lookups of the interpreter.
func BenchmarkEONDirectCalls(b *testing.B) {
	m := smallModel(b, 13)
	prog, _ := Compile(tflm.ModelFileFromFloat(m))
	rng := rand.New(rand.NewSource(14))
	in := randIn(rng, 6, 6, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Run(in)
	}
}
