package core

import (
	"math"
	"math/rand"
	"testing"

	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
)

// batchImpulse builds a trained+quantized tone impulse for batch tests
// and benchmarks.
func batchImpulse(t testing.TB) *Impulse {
	imp := toneImpulse(t)
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(model, 3); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	if err := imp.Quantize(toneDataset(t, 4)); err != nil {
		t.Fatal(err)
	}
	return imp
}

// batchWindows synthesizes n full windows of mixed tones.
func batchWindows(n int) [][]float32 {
	rng := rand.New(rand.NewSource(9))
	out := make([][]float32, n)
	for i := range out {
		freq := 300 + rng.Float64()*2400
		w := make([]float32, 4000)
		for j := range w {
			w[j] = 0.5 * float32(math.Sin(2*math.Pi*freq*float64(j)/8000))
		}
		out[i] = w
	}
	return out
}

// TestClassifyBatchMatchesSingles pins the batch path to the single-window
// path bit for bit, in both precisions.
func TestClassifyBatchMatchesSingles(t *testing.T) {
	imp := batchImpulse(t)
	windows := batchWindows(6)
	for _, quantized := range []bool{false, true} {
		got, err := imp.ClassifyBatch(windows, quantized)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(windows) {
			t.Fatalf("quantized=%v: %d results for %d windows", quantized, len(got), len(windows))
		}
		for i, w := range windows {
			sig := dsp.Signal{Data: w, Rate: 8000, Axes: 1}
			var want ClassResult
			if quantized {
				want, err = imp.ClassifyQuantized(sig)
			} else {
				want, err = imp.Classify(sig)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got[i].Label != want.Label {
				t.Fatalf("quantized=%v window %d: batch label %q != single %q", quantized, i, got[i].Label, want.Label)
			}
			for class, p := range want.Scores {
				if got[i].Scores[class] != p {
					t.Fatalf("quantized=%v window %d class %s: batch %v != single %v", quantized, i, class, got[i].Scores[class], p)
				}
			}
		}
	}
}

// TestClassifyBatchShortWindowMatchesSingle checks a short window gets
// the same zero-pad treatment in a batch as on the single-window path.
func TestClassifyBatchShortWindowMatchesSingle(t *testing.T) {
	imp := batchImpulse(t)
	windows := batchWindows(3)
	windows[1] = windows[1][:700] // short: zero-padded to one window
	got, err := imp.ClassifyBatch(windows, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := imp.Classify(dsp.Signal{Data: windows[1], Rate: 8000, Axes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Label != want.Label {
		t.Fatalf("short window: batch label %q != single %q", got[1].Label, want.Label)
	}
	for class, p := range want.Scores {
		if got[1].Scores[class] != p {
			t.Fatalf("short window class %s: batch %v != single %v", class, got[1].Scores[class], p)
		}
	}
}

// BenchmarkClassifySingle measures the per-window cost of the one-shot
// path (DSP + float inference), the baseline the batch path amortizes.
func BenchmarkClassifySingle(b *testing.B) {
	imp := batchImpulse(b)
	sig := dsp.Signal{Data: batchWindows(1)[0], Rate: 8000, Axes: 1}
	if _, err := imp.Classify(sig); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := imp.Classify(sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifyBatch32 measures a 32-window batch per op; ns/op ÷ 32
// is the amortized per-window cost the batched endpoint delivers.
func BenchmarkClassifyBatch32(b *testing.B) {
	imp := batchImpulse(b)
	windows := batchWindows(32)
	if _, err := imp.ClassifyBatch(windows, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := imp.ClassifyBatch(windows, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(windows)), "ns/window")
}
