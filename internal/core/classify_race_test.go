package core

import (
	"math"
	"sync"
	"testing"

	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
)

// TestConcurrentClassifySharedImpulse exercises the whole classify hot
// path (DSP extraction → float and int8 inference) from many goroutines
// sharing one impulse — the serving pattern of the EIM runner and the
// REST classify handler. Every result is checked against the serial
// answer, so pooled per-call scratch that aliased across calls would
// fail even without -race; run with -race to catch data races too.
func TestConcurrentClassifySharedImpulse(t *testing.T) {
	imp := toneImpulse(t)
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(model, 3); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	ds := toneDataset(t, 4)
	if err := imp.Quantize(ds); err != nil {
		t.Fatal(err)
	}

	mkSig := func(freq float64) dsp.Signal {
		n := 4000
		data := make([]float32, n)
		for j := range data {
			data[j] = 0.5 * float32(math.Sin(2*math.Pi*freq*float64(j)/8000))
		}
		return dsp.Signal{Data: data, Rate: 8000, Axes: 1}
	}
	sigs := []dsp.Signal{mkSig(310), mkSig(2500), mkSig(700), mkSig(1800)}
	wantFloat := make([]ClassResult, len(sigs))
	wantQuant := make([]ClassResult, len(sigs))
	for i, sig := range sigs {
		if wantFloat[i], err = imp.Classify(sig); err != nil {
			t.Fatal(err)
		}
		if wantQuant[i], err = imp.ClassifyQuantized(sig); err != nil {
			t.Fatal(err)
		}
	}

	same := func(a, b ClassResult) bool {
		if a.Label != b.Label || len(a.Scores) != len(b.Scores) {
			return false
		}
		for k, v := range a.Scores {
			if b.Scores[k] != v {
				return false
			}
		}
		return true
	}

	var wg sync.WaitGroup
	fail := make(chan string, 1)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				k := (g + iter) % len(sigs)
				got, err := imp.Classify(sigs[k])
				if err != nil {
					report(err.Error())
					return
				}
				if !same(got, wantFloat[k]) {
					report("concurrent float classify diverged from serial result")
					return
				}
				gq, err := imp.ClassifyQuantized(sigs[k])
				if err != nil {
					report(err.Error())
					return
				}
				if !same(gq, wantQuant[k]) {
					report("concurrent quantized classify diverged from serial result")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	if msg, ok := <-fail; ok {
		t.Fatal(msg)
	}
}
