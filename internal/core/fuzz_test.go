package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseConfig hammers the impulse-design parser with adversarial
// JSON. ParseConfig guards the REST API's impulse endpoint, so it must
// never panic or blow up memory on hostile payloads, and any accepted
// design must be stable: deterministic across parses and re-parseable
// after normalization (the marshal→parse round trip the Studio performs
// on every GET /impulse).
//
// Seeded with the v1/v2 golden fixtures plus targeted edge shapes.
// CI runs it for 10s: go test -fuzz=FuzzParseConfig -fuzztime=10s ./internal/core
func FuzzParseConfig(f *testing.F) {
	for _, fixture := range []string{"impulse_v1.json", "impulse_v2.json"} {
		raw, err := os.ReadFile(filepath.Join("testdata", fixture))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 2}`))
	f.Add([]byte(`{"version": 99, "name": "x"}`))
	f.Add([]byte(`{"version": 2, "name": "x", "dsp": [{"type": "mfe"}, {"type": "mfe"}]}`))
	f.Add([]byte(`{"version": 2, "name": "x", "dsp": [{"name": "a", "type": "mfe", "axes": [0, -1, 9999999]}],
		"learn": [{"type": "anomaly", "inputs": ["a", "missing"], "params": {"clusters": 1e308}}]}`))
	f.Add([]byte(`{"name": "legacy", "dsp_name": "mfe", "dsp_params": {"num_filters": -1}, "anomaly_clusters": 3}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"version": 2, "name": "` + string(make([]byte, 64)) + `"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return // rejection is fine; panicking or hanging is not
		}
		// Accepted configs are normalized v2.
		if cfg.Version != ConfigVersion {
			t.Fatalf("accepted config with version %d", cfg.Version)
		}
		// Determinism: parsing the same bytes twice yields the same value.
		again, err := ParseConfig(data)
		if err != nil {
			t.Fatalf("second parse of accepted input failed: %v", err)
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Fatalf("non-deterministic parse:\n%+v\n%+v", cfg, again)
		}
		// Round trip: the normalized form must marshal and re-parse to
		// itself (what GET /impulse serves must be POSTable back).
		blob, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v", err)
		}
		back, err := ParseConfig(blob)
		if err != nil {
			t.Fatalf("normalized config does not re-parse: %v\n%s", err, blob)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("round trip drift:\n%+v\n%+v", cfg, back)
		}
	})
}
