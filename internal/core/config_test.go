package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"edgepulse/internal/dsp"
)

func golden(t *testing.T, name string) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestParseConfigV1Golden(t *testing.T) {
	c, err := ParseConfig(golden(t, "impulse_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != ConfigVersion {
		t.Fatalf("migrated version = %d, want %d", c.Version, ConfigVersion)
	}
	if len(c.DSP) != 1 || c.DSP[0].Type != "mfe" || c.DSP[0].Name != "mfe" {
		t.Fatalf("migrated dsp: %+v", c.DSP)
	}
	if c.DSP[0].Params["num_filters"] != 16 {
		t.Fatalf("migrated params: %v", c.DSP[0].Params)
	}
	// classes → classification block, anomaly_clusters → anomaly block.
	if len(c.Learn) != 2 {
		t.Fatalf("migrated learn blocks: %+v", c.Learn)
	}
	if c.Learn[0].Type != LearnClassification || c.Learn[1].Type != LearnAnomaly {
		t.Fatalf("migrated learn types: %+v", c.Learn)
	}
	if c.Learn[1].Params["clusters"] != 2 {
		t.Fatalf("anomaly clusters: %v", c.Learn[1].Params)
	}
}

func TestParseConfigV2Golden(t *testing.T) {
	c, err := ParseConfig(golden(t, "impulse_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.DSP) != 2 || c.DSP[0].Name != "vibration" || c.DSP[1].Name != "audio" {
		t.Fatalf("dsp blocks: %+v", c.DSP)
	}
	if !reflect.DeepEqual(c.DSP[0].Axes, []int{0, 1, 2}) || !reflect.DeepEqual(c.DSP[1].Axes, []int{3}) {
		t.Fatalf("axes selections: %+v", c.DSP)
	}
	imp, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	// spectral 3*(3+8)=33 + mfe 25*16=400.
	if !shape.Equal([]int{433}) {
		t.Fatalf("composite shape %v", shape)
	}
	layout, err := imp.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if layout.Segments[0].Offset != 0 || layout.Segments[0].Len != 33 ||
		layout.Segments[1].Offset != 33 || layout.Segments[1].Len != 400 {
		t.Fatalf("offset table: %+v", layout.Segments)
	}
}

func TestParseConfigRejectsUnknownFields(t *testing.T) {
	// v1 schema with a typo'd field.
	if _, err := ParseConfig([]byte(`{"name":"x","input":{"kind":"time-series","window_ms":100,"frequency_hz":100,"axes":1},"dsp_nmae":"mfe"}`)); err == nil {
		t.Error("v1 unknown field accepted")
	}
	// v2 schema with an unknown field.
	if _, err := ParseConfig([]byte(`{"version":2,"name":"x","input":{"kind":"time-series","window_ms":100,"frequency_hz":100,"axes":1},"dsp":[{"type":"raw"}],"extra":true}`)); err == nil {
		t.Error("v2 unknown field accepted")
	}
	// v2-shaped payload without a version stamp must not silently parse.
	if _, err := ParseConfig([]byte(`{"name":"x","input":{"kind":"time-series","window_ms":100,"frequency_hz":100,"axes":1},"dsp":[{"type":"raw"}]}`)); err == nil {
		t.Error("unversioned v2 payload accepted as v1")
	}
}

func TestParseConfigRejectsUnknownVersion(t *testing.T) {
	for _, v := range []string{"0", "3", "-1", "99"} {
		if _, err := ParseConfig([]byte(`{"version":` + v + `,"name":"x"}`)); err == nil {
			t.Errorf("version %s accepted", v)
		} else if !strings.Contains(err.Error(), "version") {
			t.Errorf("version %s: unhelpful error %v", v, err)
		}
	}
}

// TestConfigIdempotence checks Config()/FromConfig fixed points: an
// impulse built from a parsed design emits exactly the same design.
func TestConfigIdempotence(t *testing.T) {
	for _, fixture := range []string{"impulse_v1.json", "impulse_v2.json"} {
		c, err := ParseConfig(golden(t, fixture))
		if err != nil {
			t.Fatal(err)
		}
		imp, err := FromConfig(c)
		if err != nil {
			t.Fatalf("%s: %v", fixture, err)
		}
		first := imp.Config()
		imp2, err := FromConfig(first)
		if err != nil {
			t.Fatalf("%s: %v", fixture, err)
		}
		second := imp2.Config()
		b1, _ := json.Marshal(first)
		b2, _ := json.Marshal(second)
		if string(b1) != string(b2) {
			t.Errorf("%s: Config()/FromConfig not idempotent:\n%s\n%s", fixture, b1, b2)
		}
	}
}

// TestMigrationRoundTrip checks a migrated v1 design re-marshals as v2
// and keeps loading, and that the v1 impulse's features and
// classification are bitwise identical to the legacy single-block path
// (the block run directly).
func TestMigrationRoundTrip(t *testing.T) {
	c, err := ParseConfig(golden(t, "impulse_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	imp, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(imp)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseConfig(blob)
	if err != nil {
		t.Fatalf("re-parsing emitted v2: %v", err)
	}
	if again.Version != ConfigVersion {
		t.Fatalf("round-trip version %d", again.Version)
	}
	imp2, err := FromConfig(again)
	if err != nil {
		t.Fatal(err)
	}

	// Bitwise feature identity vs. running the block directly.
	rng := rand.New(rand.NewSource(9))
	raw := make([]float32, imp.Input.WindowSamples())
	for i := range raw {
		raw[i] = float32(math.Sin(float64(i)/7) + 0.1*rng.NormFloat64())
	}
	sig := dsp.Signal{Data: raw, Rate: imp.Input.FrequencyHz, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		t.Fatal(err)
	}
	want, err := block.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range []*Impulse{imp, imp2} {
		got, err := cand.Features(sig)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Shape.Equal(want.Shape) {
			t.Fatalf("feature shape %v != %v", got.Shape, want.Shape)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("feature %d differs: %v != %v", i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestFusionComposite checks that the multi-block composite vector is
// exactly the concatenation of each block's own output over its axis
// selection, per the offset table.
func TestFusionComposite(t *testing.T) {
	c, err := ParseConfig(golden(t, "impulse_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	imp, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	frames := imp.Input.WindowSamples()
	raw := make([]float32, frames*4)
	for i := range raw {
		raw[i] = float32(rng.NormFloat64())
	}
	sig := dsp.Signal{Data: raw, Rate: imp.Input.FrequencyHz, Axes: 4}
	composite, err := imp.Features(sig)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := imp.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if len(composite.Data) != layout.Total {
		t.Fatalf("composite %d != layout total %d", len(composite.Data), layout.Total)
	}
	for i, inst := range imp.DSP {
		sub := subSignal(sig, inst.Axes)
		want, err := inst.Block.Extract(sub)
		if err != nil {
			t.Fatal(err)
		}
		seg := layout.Segments[i]
		for j := range want.Data {
			if composite.Data[seg.Offset+j] != want.Data[j] {
				t.Fatalf("block %q feature %d differs", inst.Name, j)
			}
		}
	}

	// Learn views: the classifier fuses both segments, the anomaly
	// block sees only the vibration segment.
	spec, ok := imp.classifierSpec()
	if !ok {
		t.Fatal("no classifier spec")
	}
	cshape, err := imp.LearnShape(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cshape.Equal([]int{433}) {
		t.Fatalf("classifier shape %v", cshape)
	}
	aspec, ok := imp.AnomalySpec()
	if !ok {
		t.Fatal("no anomaly spec")
	}
	av, err := imp.LearnFeatures(aspec, sig)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := layout.Segment("vibration")
	if len(av.Data) != seg.Len {
		t.Fatalf("anomaly view %d != vibration segment %d", len(av.Data), seg.Len)
	}
	for j := range av.Data {
		if av.Data[j] != composite.Data[seg.Offset+j] {
			t.Fatalf("anomaly view feature %d differs", j)
		}
	}
}

// TestLayoutCacheInvalidation checks the offset table tracks direct
// design mutation (library callers assign fields, no setters).
func TestLayoutCacheInvalidation(t *testing.T) {
	c, err := ParseConfig(golden(t, "impulse_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	imp, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := imp.Layout()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := imp.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("layout not cached across calls")
	}
	// Drop the audio block: the layout must shrink.
	imp.DSP = imp.DSP[:1]
	l3, err := imp.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l3 == l1 || l3.Total != 33 || len(l3.Segments) != 1 {
		t.Fatalf("stale layout after mutation: %+v", l3)
	}
}

func TestInputBlockImageAxesNormalized(t *testing.T) {
	b := InputBlock{Kind: ImageInput, Width: 32, Height: 32}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Axes != 3 {
		t.Fatalf("axes not normalized: %d", b.Axes)
	}
	bad := InputBlock{Kind: ImageInput, Width: 32, Height: 32, Axes: 2}
	if err := bad.Validate(); err == nil {
		t.Error("2-channel image accepted")
	}
	// FromConfig normalizes, so shape queries and extraction agree.
	imp, err := FromConfig(Config{
		Name:  "vision",
		Input: InputBlock{Kind: ImageInput, Width: 32, Height: 32},
		DSP:   []DSPBlockSpec{{Type: "image", Params: map[string]float64{"width": 16, "height": 16}}},
		Learn: []LearnBlockSpec{{Type: LearnClassification}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if imp.Input.Axes != 3 {
		t.Fatalf("impulse input axes %d", imp.Input.Axes)
	}
	if len(imp.CanonicalSignal().Data) != 32*32*3 {
		t.Fatalf("canonical signal length %d", len(imp.CanonicalSignal().Data))
	}
}

func TestDesignValidation(t *testing.T) {
	input := InputBlock{Kind: TimeSeries, WindowMS: 500, FrequencyHz: 4000, Axes: 2}
	base := func() Config {
		return Config{
			Name:    "x",
			Input:   input,
			DSP:     []DSPBlockSpec{{Type: "raw"}},
			Classes: []string{"a", "b"},
		}
	}
	// Axis out of range.
	c := base()
	c.DSP[0].Axes = []int{2}
	if _, err := FromConfig(c); err == nil {
		t.Error("out-of-range axis accepted")
	}
	// Duplicate axis.
	c = base()
	c.DSP[0].Axes = []int{1, 1}
	if _, err := FromConfig(c); err == nil {
		t.Error("duplicate axis accepted")
	}
	// Duplicate explicit block names.
	c = base()
	c.DSP = []DSPBlockSpec{{Name: "a", Type: "raw"}, {Name: "a", Type: "flatten"}}
	if _, err := FromConfig(c); err == nil {
		t.Error("duplicate dsp names accepted")
	}
	// Unknown learn type.
	c = base()
	c.Learn = []LearnBlockSpec{{Type: "transformer"}}
	if _, err := FromConfig(c); err == nil {
		t.Error("unknown learn type accepted")
	}
	// Learn input referencing a missing block.
	c = base()
	c.Learn = []LearnBlockSpec{{Type: LearnClassification, Inputs: []string{"ghost"}}}
	if _, err := FromConfig(c); err == nil {
		t.Error("dangling learn input accepted")
	}
	// Two classifier heads exceed the runtime's single-model state.
	c = base()
	c.Learn = []LearnBlockSpec{{Name: "c1", Type: LearnClassification}, {Name: "c2", Type: LearnRegression}}
	if _, err := FromConfig(c); err == nil {
		t.Error("two classifier heads accepted")
	}
	// Unnamed duplicate types are auto-disambiguated.
	c = base()
	c.DSP = []DSPBlockSpec{{Type: "raw"}, {Type: "raw", Params: map[string]float64{"decimate": 2}}}
	imp, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if imp.DSP[0].Name != "raw" || imp.DSP[1].Name != "raw-2" {
		t.Fatalf("auto names: %q, %q", imp.DSP[0].Name, imp.DSP[1].Name)
	}
	// Regression is a design slot: it validates but refuses to train.
	c = base()
	c.Learn = []LearnBlockSpec{{Type: LearnRegression}}
	if _, err := FromConfig(c); err != nil {
		t.Errorf("regression slot rejected: %v", err)
	}
}

func TestCatalogsSorted(t *testing.T) {
	names := dsp.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("dsp.Names() not sorted: %v", names)
	}
	learn := LearnNames()
	if !sort.StringsAreSorted(learn) {
		t.Errorf("LearnNames() not sorted: %v", learn)
	}
	types := LearnTypes()
	for i, lt := range types {
		if lt.Type != learn[i] {
			t.Errorf("LearnTypes()[%d] = %q, want %q", i, lt.Type, learn[i])
		}
	}
	if len(learn) < 3 {
		t.Fatalf("expected at least classification/regression/anomaly, got %v", learn)
	}
}

func TestDuplicateLearnInputsRejected(t *testing.T) {
	_, err := FromConfig(Config{
		Name:  "x",
		Input: InputBlock{Kind: TimeSeries, WindowMS: 500, FrequencyHz: 4000, Axes: 2},
		DSP:   []DSPBlockSpec{{Name: "a", Type: "raw"}, {Name: "b", Type: "flatten"}},
		Learn: []LearnBlockSpec{{Type: LearnClassification, Inputs: []string{"a", "a"}}},
	})
	if err == nil {
		t.Fatal("duplicate learn inputs accepted")
	}
}

func TestAddDSPDuplicateNamePanics(t *testing.T) {
	imp := New("x")
	block, err := dsp.New("raw", nil)
	if err != nil {
		t.Fatal(err)
	}
	imp.AddDSP("a", block)
	defer func() {
		if recover() == nil {
			t.Error("duplicate explicit AddDSP name did not panic")
		}
	}()
	imp.AddDSP("a", block)
}
