// Package core implements the impulse — the paper's central abstraction
// (Sec. 3, Fig. 2): a dataflow of blocks that takes raw sensor data
// through an input block (windowing), a DSP block (feature extraction)
// and learn blocks (a neural network classifier and/or a K-means anomaly
// detector), producing a deployable TinyML pipeline.
//
// An Impulse owns the end-to-end design: it extracts features from a
// dataset, trains its learn blocks, quantizes them, and classifies raw
// signals. Deployment (EON compilation, C++ emission, EIM packaging) and
// on-device estimation build on the impulse through the deploy, renode
// and profiler packages.
package core

import (
	"fmt"

	"edgepulse/internal/anomaly"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
	"edgepulse/internal/trainer"
)

// InputKind distinguishes input block types.
type InputKind string

// Input block types.
const (
	TimeSeries InputKind = "time-series"
	ImageInput InputKind = "image"
)

// InputBlock describes how raw data enters the impulse.
type InputBlock struct {
	Kind InputKind `json:"kind"`
	// Time series parameters.
	WindowMS    int `json:"window_ms,omitempty"`
	StrideMS    int `json:"stride_ms,omitempty"`
	FrequencyHz int `json:"frequency_hz,omitempty"`
	Axes        int `json:"axes,omitempty"`
	// Image parameters.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
}

// WindowSamples returns the per-axis sample count of one window.
func (b InputBlock) WindowSamples() int {
	return b.WindowMS * b.FrequencyHz / 1000
}

// StrideSamples returns the per-axis stride between windows.
func (b InputBlock) StrideSamples() int {
	s := b.StrideMS * b.FrequencyHz / 1000
	if s <= 0 {
		s = b.WindowSamples()
	}
	return s
}

// Validate checks the block configuration.
func (b InputBlock) Validate() error {
	switch b.Kind {
	case TimeSeries:
		if b.WindowMS <= 0 || b.FrequencyHz <= 0 || b.Axes <= 0 {
			return fmt.Errorf("core: time-series input needs window_ms, frequency_hz and axes")
		}
	case ImageInput:
		if b.Width <= 0 || b.Height <= 0 {
			return fmt.Errorf("core: image input needs width and height")
		}
	default:
		return fmt.Errorf("core: unknown input kind %q", b.Kind)
	}
	return nil
}

// Impulse is a configured pipeline: input block → DSP block → learn
// block(s).
type Impulse struct {
	Name  string
	Input InputBlock
	// DSP is the feature extraction block.
	DSP dsp.Block
	// Classes are the classifier's output labels, in index order.
	Classes []string
	// Model is the float32 classifier (nil until attached/trained).
	Model *nn.Model
	// QModel is the int8 classifier (nil until Quantize).
	QModel *quant.QModel
	// Anomaly is an optional secondary learn block scoring feature
	// vectors against the training distribution.
	Anomaly *anomaly.KMeans
}

// New creates an impulse with the given name.
func New(name string) *Impulse { return &Impulse{Name: name} }

// Validate checks the full pipeline configuration.
func (imp *Impulse) Validate() error {
	if err := imp.Input.Validate(); err != nil {
		return err
	}
	if imp.DSP == nil {
		return fmt.Errorf("core: impulse has no DSP block")
	}
	if len(imp.Classes) == 0 && imp.Anomaly == nil {
		return fmt.Errorf("core: impulse has no learn block (classes or anomaly)")
	}
	if _, err := imp.FeatureShape(); err != nil {
		return err
	}
	if imp.Model != nil {
		shape, _ := imp.FeatureShape()
		if !imp.Model.InputShape.Equal(shape) {
			return fmt.Errorf("core: model input %v != feature shape %v", imp.Model.InputShape, shape)
		}
		if imp.Model.NumClasses != len(imp.Classes) {
			return fmt.Errorf("core: model classes %d != labels %d", imp.Model.NumClasses, len(imp.Classes))
		}
	}
	return nil
}

// CanonicalSignal returns a zero signal with the canonical window
// geometry; used for shape, cost and memory queries.
func (imp *Impulse) CanonicalSignal() dsp.Signal {
	if imp.Input.Kind == ImageInput {
		axes := imp.Input.Axes
		if axes == 0 {
			axes = 3
		}
		return dsp.Signal{
			Data:  make([]float32, imp.Input.Width*imp.Input.Height*axes),
			Axes:  axes,
			Width: imp.Input.Width, Height: imp.Input.Height,
		}
	}
	n := imp.Input.WindowSamples()
	return dsp.Signal{
		Data: make([]float32, n*imp.Input.Axes),
		Rate: imp.Input.FrequencyHz,
		Axes: imp.Input.Axes,
	}
}

// FeatureShape returns the DSP output shape for one canonical window.
func (imp *Impulse) FeatureShape() (tensor.Shape, error) {
	if imp.DSP == nil {
		return nil, fmt.Errorf("core: impulse has no DSP block")
	}
	return imp.DSP.OutputShape(imp.CanonicalSignal())
}

// windowed crops or zero-pads a time-series signal to exactly one
// canonical window.
func (imp *Impulse) windowed(sig dsp.Signal) dsp.Signal {
	if imp.Input.Kind == ImageInput {
		return sig
	}
	want := imp.Input.WindowSamples() * imp.Input.Axes
	out := sig
	out.Rate = imp.Input.FrequencyHz
	out.Axes = imp.Input.Axes
	if len(sig.Data) >= want {
		out.Data = sig.Data[:want]
		return out
	}
	padded := make([]float32, want)
	copy(padded, sig.Data)
	out.Data = padded
	return out
}

// Windows slices a long signal into canonical windows with the input
// block's stride (for continuous classification). A signal shorter than
// one window yields a single zero-padded window.
func (imp *Impulse) Windows(sig dsp.Signal) []dsp.Signal {
	if imp.Input.Kind == ImageInput {
		return []dsp.Signal{sig}
	}
	win := imp.Input.WindowSamples()
	stride := imp.Input.StrideSamples()
	frames := sig.Frames()
	if frames <= win {
		return []dsp.Signal{imp.windowed(sig)}
	}
	var out []dsp.Signal
	for start := 0; start+win <= frames; start += stride {
		w := dsp.Signal{
			Data: sig.Data[start*sig.Axes : (start+win)*sig.Axes],
			Rate: imp.Input.FrequencyHz,
			Axes: imp.Input.Axes,
		}
		out = append(out, w)
	}
	return out
}

// Features runs the DSP block on one canonical window of the signal.
func (imp *Impulse) Features(sig dsp.Signal) (*tensor.F32, error) {
	if imp.DSP == nil {
		return nil, fmt.Errorf("core: impulse has no DSP block")
	}
	return imp.DSP.Extract(imp.windowed(sig))
}

// classIndex maps a label to its class index, or -1.
func (imp *Impulse) classIndex(label string) int {
	for i, c := range imp.Classes {
		if c == label {
			return i
		}
	}
	return -1
}

// BuildExamples extracts features for every sample in the given split,
// mapping labels to class indices. Samples with labels outside Classes
// are skipped (they may belong to an anomaly-only workflow).
func (imp *Impulse) BuildExamples(ds *data.Dataset, cat data.Category) ([]trainer.Example, error) {
	var out []trainer.Example
	for _, s := range ds.List(cat) {
		y := imp.classIndex(s.Label)
		if y < 0 {
			continue
		}
		x, err := imp.Features(s.Signal)
		if err != nil {
			return nil, fmt.Errorf("core: sample %s: %w", s.ID, err)
		}
		out = append(out, trainer.Example{X: x, Y: y})
	}
	return out, nil
}

// AttachClassifier sets the float model, checking shape compatibility.
func (imp *Impulse) AttachClassifier(m *nn.Model) error {
	shape, err := imp.FeatureShape()
	if err != nil {
		return err
	}
	if !m.InputShape.Equal(shape) {
		return fmt.Errorf("core: model input %v != feature shape %v", m.InputShape, shape)
	}
	if m.NumClasses != len(imp.Classes) {
		return fmt.Errorf("core: model has %d classes, impulse has %d", m.NumClasses, len(imp.Classes))
	}
	imp.Model = m
	imp.QModel = nil // stale after a model change
	return nil
}

// Train fits the attached classifier on the dataset's training split.
func (imp *Impulse) Train(ds *data.Dataset, cfg trainer.Config) (*trainer.Result, error) {
	if imp.Model == nil {
		return nil, fmt.Errorf("core: no classifier attached")
	}
	examples, err := imp.BuildExamples(ds, data.Training)
	if err != nil {
		return nil, err
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("core: no training examples match classes %v", imp.Classes)
	}
	res, err := trainer.Train(imp.Model, examples, cfg)
	if err != nil {
		return nil, err
	}
	imp.QModel = nil // weights changed
	return res, nil
}

// TrainAnomaly fits the K-means anomaly block on training features.
func (imp *Impulse) TrainAnomaly(ds *data.Dataset, clusters int, seed int64) error {
	samples := ds.List(data.Training)
	if len(samples) == 0 {
		return fmt.Errorf("core: no training samples")
	}
	var rows [][]float32
	for _, s := range samples {
		x, err := imp.Features(s.Signal)
		if err != nil {
			return err
		}
		rows = append(rows, x.Data)
	}
	km, err := anomaly.FitKMeans(rows, clusters, 50, seed)
	if err != nil {
		return err
	}
	imp.Anomaly = km
	return nil
}

// Quantize produces the int8 model using training features as the
// calibration set (capped for speed).
func (imp *Impulse) Quantize(ds *data.Dataset) error {
	if imp.Model == nil {
		return fmt.Errorf("core: no classifier to quantize")
	}
	examples, err := imp.BuildExamples(ds, data.Training)
	if err != nil {
		return err
	}
	if len(examples) == 0 {
		return fmt.Errorf("core: no calibration examples")
	}
	const maxCalib = 64
	var calib []*tensor.F32
	for i, ex := range examples {
		if i >= maxCalib {
			break
		}
		calib = append(calib, ex.X)
	}
	qm, err := quant.Quantize(imp.Model, calib)
	if err != nil {
		return err
	}
	imp.QModel = qm
	return nil
}

// ClassResult is one classification outcome.
type ClassResult struct {
	// Label is the argmax class.
	Label string
	// Scores maps every class to its probability.
	Scores map[string]float32
	// AnomalyScore is set when an anomaly block is attached.
	AnomalyScore float64
}

// Classify runs the full pipeline (DSP + float model [+ anomaly]) on one
// window of raw signal.
func (imp *Impulse) Classify(sig dsp.Signal) (ClassResult, error) {
	return imp.classify(sig, false)
}

// ClassifyQuantized is Classify with the int8 model.
func (imp *Impulse) ClassifyQuantized(sig dsp.Signal) (ClassResult, error) {
	return imp.classify(sig, true)
}

func (imp *Impulse) classify(sig dsp.Signal, quantized bool) (ClassResult, error) {
	x, err := imp.Features(sig)
	if err != nil {
		return ClassResult{}, err
	}
	res := ClassResult{Scores: map[string]float32{}}
	var probs *tensor.F32
	switch {
	case quantized && imp.QModel != nil:
		probs = imp.QModel.Forward(x)
	case imp.Model != nil:
		probs = imp.Model.Forward(x)
	case imp.Anomaly == nil:
		return ClassResult{}, fmt.Errorf("core: impulse has no learn block")
	}
	if probs != nil {
		best := probs.ArgMax()
		for i, c := range imp.Classes {
			if i < len(probs.Data) {
				res.Scores[c] = probs.Data[i]
			}
		}
		if best >= 0 && best < len(imp.Classes) {
			res.Label = imp.Classes[best]
		}
	}
	if imp.Anomaly != nil {
		res.AnomalyScore = imp.Anomaly.Score(x.Data)
	}
	return res, nil
}

// Evaluate computes accuracy and the confusion matrix on a dataset split
// using the float model (the platform's "model testing" page).
func (imp *Impulse) Evaluate(ds *data.Dataset, cat data.Category) (float64, [][]int, error) {
	if imp.Model == nil {
		return 0, nil, fmt.Errorf("core: no classifier attached")
	}
	examples, err := imp.BuildExamples(ds, cat)
	if err != nil {
		return 0, nil, err
	}
	if len(examples) == 0 {
		return 0, nil, fmt.Errorf("core: no examples in split %q", cat)
	}
	acc := trainer.Accuracy(imp.Model, examples)
	conf := trainer.Confusion(imp.Model, examples, len(imp.Classes))
	return acc, conf, nil
}

// DSPCost returns the operation count of one feature extraction.
func (imp *Impulse) DSPCost() dsp.Cost {
	return imp.DSP.Cost(imp.CanonicalSignal())
}

// DSPRAM returns the working RAM of one feature extraction in bytes.
func (imp *Impulse) DSPRAM() int64 {
	return imp.DSP.RAM(imp.CanonicalSignal())
}

// Describe renders the block dataflow as a one-line diagram, the textual
// equivalent of the Studio's impulse view (Fig. 2).
func (imp *Impulse) Describe() string {
	in := "?"
	switch imp.Input.Kind {
	case TimeSeries:
		in = fmt.Sprintf("Time series data (%d ms @ %d Hz, %d axes)",
			imp.Input.WindowMS, imp.Input.FrequencyHz, imp.Input.Axes)
	case ImageInput:
		in = fmt.Sprintf("Image data (%dx%d)", imp.Input.Width, imp.Input.Height)
	}
	dspName := "?"
	if imp.DSP != nil {
		dspName = imp.DSP.Name()
	}
	learn := ""
	if len(imp.Classes) > 0 {
		learn = fmt.Sprintf("Classification (%d classes)", len(imp.Classes))
	}
	if imp.Anomaly != nil {
		if learn != "" {
			learn += " + "
		}
		learn += fmt.Sprintf("Anomaly detection (K-means, %d clusters)", len(imp.Anomaly.Centroids))
	}
	return fmt.Sprintf("[%s] -> [%s] -> [%s]", in, dspName, learn)
}
