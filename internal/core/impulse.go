// Package core implements the impulse — the paper's central abstraction
// (Sec. 3, Fig. 2): a dataflow of blocks that takes raw sensor data
// through an input block (windowing), one or more DSP blocks (feature
// extraction, including sensor-fusion designs where each block consumes
// a subset of the input axes) and learn blocks (a neural network
// classifier and/or a K-means anomaly detector), producing a deployable
// TinyML pipeline. The composite feature vector is the concatenation of
// the DSP blocks' outputs; each learn block declares which DSP outputs
// it consumes via the per-block offset table (Layout).
//
// An Impulse owns the end-to-end design: it extracts features from a
// dataset, trains its learn blocks, quantizes them, and classifies raw
// signals. Deployment (EON compilation, C++ emission, EIM packaging) and
// on-device estimation build on the impulse through the deploy, renode
// and profiler packages.
package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"edgepulse/internal/anomaly"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
	"edgepulse/internal/trainer"
)

// featureBatch is how many samples a feature-extraction pass
// materializes at a time when streaming a dataset split.
const featureBatch = 64

// InputKind distinguishes input block types.
type InputKind string

// Input block types.
const (
	TimeSeries InputKind = "time-series"
	ImageInput InputKind = "image"
)

// InputBlock describes how raw data enters the impulse.
type InputBlock struct {
	Kind InputKind `json:"kind"`
	// Time series parameters.
	WindowMS    int `json:"window_ms,omitempty"`
	StrideMS    int `json:"stride_ms,omitempty"`
	FrequencyHz int `json:"frequency_hz,omitempty"`
	Axes        int `json:"axes,omitempty"`
	// Image parameters.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
}

// WindowSamples returns the per-axis sample count of one window.
func (b InputBlock) WindowSamples() int {
	return b.WindowMS * b.FrequencyHz / 1000
}

// StrideSamples returns the per-axis stride between windows.
func (b InputBlock) StrideSamples() int {
	s := b.StrideMS * b.FrequencyHz / 1000
	if s <= 0 {
		s = b.WindowSamples()
	}
	return s
}

// Validate checks the block configuration and normalizes it in place:
// image inputs with unspecified axes are pinned to 3 channels here, so
// shape queries and extraction always agree on the same geometry.
func (b *InputBlock) Validate() error {
	switch b.Kind {
	case TimeSeries:
		if b.WindowMS <= 0 || b.FrequencyHz <= 0 || b.Axes <= 0 {
			return fmt.Errorf("core: time-series input needs window_ms, frequency_hz and axes")
		}
	case ImageInput:
		if b.Width <= 0 || b.Height <= 0 {
			return fmt.Errorf("core: image input needs width and height")
		}
		if b.Axes == 0 {
			b.Axes = 3
		}
		if b.Axes != 1 && b.Axes != 3 {
			return fmt.Errorf("core: image input supports 1 or 3 axes, have %d", b.Axes)
		}
	default:
		return fmt.Errorf("core: unknown input kind %q", b.Kind)
	}
	return nil
}

// DSPInstance is one configured feature-extraction block in the impulse
// graph.
type DSPInstance struct {
	// Name is the instance name, unique within the impulse; learn
	// blocks reference it in their Inputs.
	Name string
	// Block is the configured extractor.
	Block dsp.Block
	// Axes selects which input axes this block consumes (time-series
	// only, by index into the interleaved signal). Nil = all axes.
	Axes []int
}

// Impulse is a configured pipeline: input block → DSP block graph →
// learn block(s).
type Impulse struct {
	Name  string
	Input InputBlock
	// DSP is the ordered feature extraction graph. The composite
	// feature vector concatenates these blocks' outputs (see Layout).
	DSP []DSPInstance
	// Learn holds the design-level learn block specs. When empty, a
	// classification block over all DSP outputs is implied by Classes
	// and an anomaly block by a fitted Anomaly — the legacy design.
	Learn []LearnBlockSpec
	// Classes are the classifier's output labels, in index order.
	Classes []string
	// Model is the float32 classifier (nil until attached/trained).
	Model *nn.Model
	// QModel is the int8 classifier (nil until Quantize).
	QModel *quant.QModel
	// Anomaly is the K-means learn block state scoring feature vectors
	// against the training distribution.
	Anomaly *anomaly.KMeans

	// layout caches the per-block feature offset table, validated
	// against a design fingerprint (see Layout).
	layout atomic.Pointer[layoutCache]
}

// New creates an impulse with the given name.
func New(name string) *Impulse { return &Impulse{Name: name} }

// UseDSP replaces the DSP graph with the given blocks, each consuming
// all input axes and named after its type.
func (imp *Impulse) UseDSP(blocks ...dsp.Block) *Impulse {
	imp.DSP = nil
	for _, b := range blocks {
		imp.AddDSP("", b)
	}
	return imp
}

// AddDSP appends one block to the DSP graph. name defaults to the block
// type, disambiguated with a numeric suffix; axes selects the input
// axes it consumes (none = all). An explicit duplicate name panics —
// like a duplicate registry entry, it is a programmer error that would
// otherwise only surface when the serialized design fails to reload.
func (imp *Impulse) AddDSP(name string, b dsp.Block, axes ...int) *Impulse {
	seen := map[string]bool{}
	for _, inst := range imp.DSP {
		seen[inst.Name] = true
	}
	if name == "" {
		name = uniqueName(b.Name(), seen)
	} else if seen[name] {
		panic("core: duplicate dsp block name " + name)
	}
	imp.DSP = append(imp.DSP, DSPInstance{Name: name, Block: b, Axes: axes})
	return imp
}

// validateDesign checks the block graph: unique DSP instance names,
// axis selections within the input range, and learn specs that resolve
// against the registry and the DSP graph.
func (imp *Impulse) validateDesign() error {
	seen := map[string]bool{}
	for _, inst := range imp.DSP {
		if inst.Name == "" {
			return fmt.Errorf("core: dsp block of type %q has no instance name", inst.Block.Name())
		}
		if seen[inst.Name] {
			return fmt.Errorf("core: duplicate dsp block name %q", inst.Name)
		}
		seen[inst.Name] = true
		if len(inst.Axes) > 0 {
			if imp.Input.Kind == ImageInput {
				return fmt.Errorf("core: dsp block %q: axis selection is not supported for image inputs", inst.Name)
			}
			used := map[int]bool{}
			for _, a := range inst.Axes {
				if a < 0 || a >= imp.Input.Axes {
					return fmt.Errorf("core: dsp block %q selects axis %d, input has %d axes", inst.Name, a, imp.Input.Axes)
				}
				if used[a] {
					return fmt.Errorf("core: dsp block %q selects axis %d twice", inst.Name, a)
				}
				used[a] = true
			}
		}
	}
	classifiers, anomalies := 0, 0
	learnSeen := map[string]bool{}
	for _, spec := range imp.Learn {
		t, ok := learnTypeOf(spec.Type)
		if !ok {
			return fmt.Errorf("core: unknown learn block type %q (registered: %v)", spec.Type, LearnNames())
		}
		if spec.Name == "" {
			return fmt.Errorf("core: learn block of type %q has no instance name", spec.Type)
		}
		if learnSeen[spec.Name] {
			return fmt.Errorf("core: duplicate learn block name %q", spec.Name)
		}
		learnSeen[spec.Name] = true
		consumed := map[string]bool{}
		for _, in := range spec.Inputs {
			if !seen[in] {
				return fmt.Errorf("core: learn block %q consumes unknown dsp block %q", spec.Name, in)
			}
			if consumed[in] {
				return fmt.Errorf("core: learn block %q consumes dsp block %q twice", spec.Name, in)
			}
			consumed[in] = true
		}
		switch t.Type {
		case LearnClassification, LearnRegression:
			classifiers++
		case LearnAnomaly:
			anomalies++
			if k, ok := spec.Params["clusters"]; ok && k < 1 {
				return fmt.Errorf("core: learn block %q: clusters must be >= 1", spec.Name)
			}
		}
	}
	// The runtime carries one trained classifier head and one anomaly
	// state per impulse; the schema allows lists so richer runtimes can
	// grow into them.
	if classifiers > 1 {
		return fmt.Errorf("core: at most one classification/regression learn block per impulse (have %d)", classifiers)
	}
	if anomalies > 1 {
		return fmt.Errorf("core: at most one anomaly learn block per impulse (have %d)", anomalies)
	}
	return nil
}

// Validate checks the full pipeline configuration.
func (imp *Impulse) Validate() error {
	if err := imp.Input.Validate(); err != nil {
		return err
	}
	if len(imp.DSP) == 0 {
		return fmt.Errorf("core: impulse has no DSP block")
	}
	if err := imp.validateDesign(); err != nil {
		return err
	}
	if len(imp.Learn) == 0 && len(imp.Classes) == 0 && imp.Anomaly == nil {
		return fmt.Errorf("core: impulse has no learn block (classes or anomaly)")
	}
	if _, err := imp.FeatureShape(); err != nil {
		return err
	}
	if imp.Model != nil {
		shape, err := imp.ClassifierShape()
		if err != nil {
			return err
		}
		if !imp.Model.InputShape.Equal(shape) {
			return fmt.Errorf("core: model input %v != feature shape %v", imp.Model.InputShape, shape)
		}
		if imp.Model.NumClasses != len(imp.Classes) {
			return fmt.Errorf("core: model classes %d != labels %d", imp.Model.NumClasses, len(imp.Classes))
		}
	}
	return nil
}

// CanonicalSignal returns a zero signal with the canonical window
// geometry; used for shape, cost and memory queries.
func (imp *Impulse) CanonicalSignal() dsp.Signal {
	if imp.Input.Kind == ImageInput {
		axes := imp.Input.Axes
		if axes == 0 {
			axes = 3
		}
		return dsp.Signal{
			Data:  make([]float32, imp.Input.Width*imp.Input.Height*axes),
			Axes:  axes,
			Width: imp.Input.Width, Height: imp.Input.Height,
		}
	}
	n := imp.Input.WindowSamples()
	return dsp.Signal{
		Data: make([]float32, n*imp.Input.Axes),
		Rate: imp.Input.FrequencyHz,
		Axes: imp.Input.Axes,
	}
}

// canonicalFor returns the canonical window geometry as seen by one DSP
// block, i.e. narrowed to its selected axes, built directly at the
// narrowed size (these zero signals exist only for shape/cost queries).
func (imp *Impulse) canonicalFor(inst DSPInstance) dsp.Signal {
	if len(inst.Axes) == 0 || imp.Input.Kind == ImageInput {
		return imp.CanonicalSignal()
	}
	n := imp.Input.WindowSamples()
	return dsp.Signal{
		Data: make([]float32, n*len(inst.Axes)),
		Rate: imp.Input.FrequencyHz,
		Axes: len(inst.Axes),
	}
}

// subSignal narrows an interleaved signal to the selected axes (nil =
// all axes, returned as-is without copying).
func subSignal(sig dsp.Signal, axes []int) dsp.Signal {
	if len(axes) == 0 {
		return sig
	}
	n := sig.Frames()
	out := sig
	out.Axes = len(axes)
	out.Data = make([]float32, n*len(axes))
	for t := 0; t < n; t++ {
		src := t * sig.Axes
		dst := t * len(axes)
		for j, a := range axes {
			out.Data[dst+j] = sig.Data[src+a]
		}
	}
	return out
}

// FeatureShape returns the composite feature shape for one canonical
// window: a single DSP block keeps its own output shape (so 2-D
// spectrogram features still feed conv models), multiple blocks
// concatenate into a flat vector.
func (imp *Impulse) FeatureShape() (tensor.Shape, error) {
	l, err := imp.Layout()
	if err != nil {
		return nil, err
	}
	if len(l.Segments) == 1 {
		return l.Segments[0].Shape, nil
	}
	return tensor.Shape{l.Total}, nil
}

// windowed crops or zero-pads a time-series signal to exactly one
// canonical window.
func (imp *Impulse) windowed(sig dsp.Signal) dsp.Signal {
	if imp.Input.Kind == ImageInput {
		return sig
	}
	want := imp.Input.WindowSamples() * imp.Input.Axes
	out := sig
	out.Rate = imp.Input.FrequencyHz
	out.Axes = imp.Input.Axes
	if len(sig.Data) >= want {
		out.Data = sig.Data[:want]
		return out
	}
	padded := make([]float32, want)
	copy(padded, sig.Data)
	out.Data = padded
	return out
}

// Windows slices a long signal into canonical windows with the input
// block's stride (for continuous classification). A signal shorter than
// one window yields a single zero-padded window.
func (imp *Impulse) Windows(sig dsp.Signal) []dsp.Signal {
	if imp.Input.Kind == ImageInput {
		return []dsp.Signal{sig}
	}
	win := imp.Input.WindowSamples()
	stride := imp.Input.StrideSamples()
	frames := sig.Frames()
	if frames <= win {
		return []dsp.Signal{imp.windowed(sig)}
	}
	var out []dsp.Signal
	for start := 0; start+win <= frames; start += stride {
		w := dsp.Signal{
			Data: sig.Data[start*sig.Axes : (start+win)*sig.Axes],
			Rate: imp.Input.FrequencyHz,
			Axes: imp.Input.Axes,
		}
		out = append(out, w)
	}
	return out
}

// Features runs the DSP graph on one canonical window of the signal and
// returns the composite feature vector (the concatenation of every
// block's output; a single block's tensor passes through unchanged).
func (imp *Impulse) Features(sig dsp.Signal) (*tensor.F32, error) {
	x, _, err := imp.ExtractComposite(sig)
	return x, err
}

// ExtractComposite runs every DSP block on one window and concatenates
// the outputs per the cached offset table, returning the table so
// callers (the SDK, learn-block views) can slice per-block segments
// without re-extracting. The single-block fast path returns the block's
// tensor directly, byte-identical to the legacy pipeline.
func (imp *Impulse) ExtractComposite(sig dsp.Signal) (*tensor.F32, *FeatureLayout, error) {
	l, err := imp.Layout()
	if err != nil {
		return nil, nil, err
	}
	win := imp.windowed(sig)
	if len(imp.DSP) == 1 {
		x, err := imp.DSP[0].Block.Extract(subSignal(win, imp.DSP[0].Axes))
		if err != nil {
			return nil, nil, fmt.Errorf("core: dsp block %q: %w", imp.DSP[0].Name, err)
		}
		return x, l, nil
	}
	out := tensor.NewF32(l.Total)
	for i, inst := range imp.DSP {
		x, err := inst.Block.Extract(subSignal(win, inst.Axes))
		if err != nil {
			return nil, nil, fmt.Errorf("core: dsp block %q: %w", inst.Name, err)
		}
		seg := l.Segments[i]
		if len(x.Data) != seg.Len {
			return nil, nil, fmt.Errorf("core: dsp block %q produced %d features, layout expects %d", inst.Name, len(x.Data), seg.Len)
		}
		copy(out.Data[seg.Offset:seg.Offset+seg.Len], x.Data)
	}
	return out, l, nil
}

// resolveInputs expands a learn spec's input list to segment indices in
// impulse order (empty = all blocks).
func (l *FeatureLayout) resolveInputs(spec LearnBlockSpec) ([]int, error) {
	if len(spec.Inputs) == 0 {
		idx := make([]int, len(l.Segments))
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	var idx []int
	for i, seg := range l.Segments {
		for _, in := range spec.Inputs {
			if seg.Name == in {
				idx = append(idx, i)
				break
			}
		}
	}
	if len(idx) != len(spec.Inputs) {
		return nil, fmt.Errorf("core: learn block %q consumes unknown dsp blocks (have %v)", spec.Name, spec.Inputs)
	}
	return idx, nil
}

// learnView slices a learn block's feature vector out of the composite.
// A block consuming everything aliases the composite; a block consuming
// exactly one DSP block keeps that block's shape (so conv models keep
// working); multi-block subsets gather into a flat vector.
func (imp *Impulse) learnView(spec LearnBlockSpec, composite *tensor.F32, l *FeatureLayout) (*tensor.F32, error) {
	idx, err := l.resolveInputs(spec)
	if err != nil {
		return nil, err
	}
	if len(idx) == len(l.Segments) {
		return composite, nil
	}
	if len(idx) == 1 {
		seg := l.Segments[idx[0]]
		return &tensor.F32{Shape: seg.Shape.Clone(), Data: composite.Data[seg.Offset : seg.Offset+seg.Len]}, nil
	}
	total := 0
	for _, i := range idx {
		total += l.Segments[i].Len
	}
	out := tensor.NewF32(total)
	off := 0
	for _, i := range idx {
		seg := l.Segments[i]
		copy(out.Data[off:off+seg.Len], composite.Data[seg.Offset:seg.Offset+seg.Len])
		off += seg.Len
	}
	return out, nil
}

// LearnShape returns the feature shape a learn block consumes: one
// input block keeps its own shape, multiple inputs flatten to their
// concatenated length.
func (imp *Impulse) LearnShape(spec LearnBlockSpec) (tensor.Shape, error) {
	l, err := imp.Layout()
	if err != nil {
		return nil, err
	}
	idx, err := l.resolveInputs(spec)
	if err != nil {
		return nil, err
	}
	if len(idx) == 1 {
		return l.Segments[idx[0]].Shape, nil
	}
	total := 0
	for _, i := range idx {
		total += l.Segments[i].Len
	}
	return tensor.Shape{total}, nil
}

// LearnFeatures extracts the feature vector one learn block consumes
// from a raw signal window.
func (imp *Impulse) LearnFeatures(spec LearnBlockSpec, sig dsp.Signal) (*tensor.F32, error) {
	composite, l, err := imp.ExtractComposite(sig)
	if err != nil {
		return nil, err
	}
	return imp.learnView(spec, composite, l)
}

// ClassifierFeaturesFrom slices the classification learn block's view
// out of an extracted composite vector (all blocks when the design
// declares no classifier).
func (imp *Impulse) ClassifierFeaturesFrom(composite *tensor.F32, l *FeatureLayout) (*tensor.F32, error) {
	spec, ok := imp.classifierSpec()
	if !ok {
		spec = LearnBlockSpec{Name: LearnClassification, Type: LearnClassification}
	}
	return imp.learnView(spec, composite, l)
}

// AnomalyFeaturesFrom slices the anomaly learn block's view out of an
// extracted composite vector (all blocks when the design declares no
// anomaly block).
func (imp *Impulse) AnomalyFeaturesFrom(composite *tensor.F32, l *FeatureLayout) (*tensor.F32, error) {
	spec, ok := imp.AnomalySpec()
	if !ok {
		spec = LearnBlockSpec{Name: LearnAnomaly, Type: LearnAnomaly}
	}
	return imp.learnView(spec, composite, l)
}

// classifierSpec resolves the impulse's classification learn block:
// the explicit spec when present, otherwise the implicit
// all-inputs classifier implied by a class list or attached model.
func (imp *Impulse) classifierSpec() (LearnBlockSpec, bool) {
	for _, spec := range imp.Learn {
		if spec.Type == LearnClassification {
			return spec, true
		}
	}
	if len(imp.Learn) == 0 && (len(imp.Classes) > 0 || imp.Model != nil) {
		return LearnBlockSpec{Name: LearnClassification, Type: LearnClassification}, true
	}
	return LearnBlockSpec{}, false
}

// AnomalySpec resolves the impulse's anomaly learn block: the explicit
// spec when present, otherwise the implicit all-inputs block implied by
// a fitted K-means state.
func (imp *Impulse) AnomalySpec() (LearnBlockSpec, bool) {
	for _, spec := range imp.Learn {
		if spec.Type == LearnAnomaly {
			return spec, true
		}
	}
	if len(imp.Learn) == 0 && imp.Anomaly != nil {
		return LearnBlockSpec{Name: LearnAnomaly, Type: LearnAnomaly}, true
	}
	return LearnBlockSpec{}, false
}

// ClassifierShape returns the feature shape the classification learn
// block consumes — the input shape its model must have.
func (imp *Impulse) ClassifierShape() (tensor.Shape, error) {
	spec, ok := imp.classifierSpec()
	if !ok {
		return nil, fmt.Errorf("core: impulse has no classification learn block")
	}
	return imp.LearnShape(spec)
}

// classIndex maps a label to its class index, or -1.
func (imp *Impulse) classIndex(label string) int {
	for i, c := range imp.Classes {
		if c == label {
			return i
		}
	}
	return -1
}

// BuildExamples extracts the classifier learn block's features for every
// sample in the given split, mapping labels to class indices. Samples
// with labels outside Classes are skipped (they may belong to an
// anomaly-only workflow).
func (imp *Impulse) BuildExamples(ds *data.Dataset, cat data.Category) ([]trainer.Example, error) {
	spec, ok := imp.classifierSpec()
	if !ok {
		return nil, fmt.Errorf("core: impulse has no classification learn block")
	}
	var out []trainer.Example
	// Stream the split batch-by-batch so signals for datasets larger
	// than RAM are never all resident; only the (much smaller)
	// extracted feature vectors accumulate.
	it := ds.Batches(cat, featureBatch)
	for {
		batch, ok := it.Next()
		if !ok {
			break
		}
		for _, s := range batch {
			y := imp.classIndex(s.Label)
			if y < 0 {
				continue
			}
			x, err := imp.LearnFeatures(spec, s.Signal)
			if err != nil {
				return nil, fmt.Errorf("core: sample %s: %w", s.ID, err)
			}
			out = append(out, trainer.Example{X: x, Y: y})
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// AttachClassifier sets the float model, checking shape compatibility
// against the classification learn block's feature view.
func (imp *Impulse) AttachClassifier(m *nn.Model) error {
	shape, err := imp.ClassifierShape()
	if err != nil {
		// An impulse without classes yet still accepts a model; fall
		// back to the composite shape.
		shape, err = imp.FeatureShape()
		if err != nil {
			return err
		}
	}
	if !m.InputShape.Equal(shape) {
		return fmt.Errorf("core: model input %v != feature shape %v", m.InputShape, shape)
	}
	if m.NumClasses != len(imp.Classes) {
		return fmt.Errorf("core: model has %d classes, impulse has %d", m.NumClasses, len(imp.Classes))
	}
	imp.Model = m
	imp.QModel = nil // stale after a model change
	return nil
}

// Train fits the attached classifier on the dataset's training split.
func (imp *Impulse) Train(ds *data.Dataset, cfg trainer.Config) (*trainer.Result, error) {
	if imp.Model == nil {
		return nil, fmt.Errorf("core: no classifier attached")
	}
	for _, spec := range imp.Learn {
		if spec.Type == LearnRegression {
			return nil, fmt.Errorf("core: learn block %q: regression training is not implemented yet", spec.Name)
		}
	}
	examples, err := imp.BuildExamples(ds, data.Training)
	if err != nil {
		return nil, err
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("core: no training examples match classes %v", imp.Classes)
	}
	res, err := trainer.Train(imp.Model, examples, cfg)
	if err != nil {
		return nil, err
	}
	imp.QModel = nil // weights changed
	return res, nil
}

// TrainAnomaly fits the K-means anomaly block on the anomaly learn
// block's feature view of the training split. clusters <= 0 takes the
// anomaly spec's "clusters" param (default 3).
func (imp *Impulse) TrainAnomaly(ds *data.Dataset, clusters int, seed int64) error {
	spec, ok := imp.AnomalySpec()
	if !ok {
		// No explicit spec: train over the full composite vector, the
		// legacy behavior.
		spec = LearnBlockSpec{Name: LearnAnomaly, Type: LearnAnomaly}
	}
	if clusters <= 0 {
		clusters = 3
		if k, ok := spec.Params["clusters"]; ok && k >= 1 {
			clusters = int(k)
		}
	}
	var rows [][]float32
	it := ds.Batches(data.Training, featureBatch)
	for {
		batch, ok := it.Next()
		if !ok {
			break
		}
		for _, s := range batch {
			x, err := imp.LearnFeatures(spec, s.Signal)
			if err != nil {
				return err
			}
			rows = append(rows, x.Data)
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("core: no training samples")
	}
	km, err := anomaly.FitKMeans(rows, clusters, 50, seed)
	if err != nil {
		return err
	}
	imp.Anomaly = km
	return nil
}

// Quantize produces the int8 model using training features as the
// calibration set (capped for speed).
func (imp *Impulse) Quantize(ds *data.Dataset) error {
	if imp.Model == nil {
		return fmt.Errorf("core: no classifier to quantize")
	}
	examples, err := imp.BuildExamples(ds, data.Training)
	if err != nil {
		return err
	}
	if len(examples) == 0 {
		return fmt.Errorf("core: no calibration examples")
	}
	const maxCalib = 64
	var calib []*tensor.F32
	for i, ex := range examples {
		if i >= maxCalib {
			break
		}
		calib = append(calib, ex.X)
	}
	qm, err := quant.Quantize(imp.Model, calib)
	if err != nil {
		return err
	}
	imp.QModel = qm
	return nil
}

// ClassResult is one classification outcome.
type ClassResult struct {
	// Label is the argmax class.
	Label string
	// Scores maps every class to its probability.
	Scores map[string]float32
	// AnomalyScore is set when an anomaly block is attached.
	AnomalyScore float64
}

// Classify runs the full pipeline (DSP graph + float model [+ anomaly])
// on one window of raw signal. The DSP blocks run once; each learn
// block consumes its declared view of the composite feature vector.
func (imp *Impulse) Classify(sig dsp.Signal) (ClassResult, error) {
	return imp.classify(sig, false)
}

// ClassifyQuantized is Classify with the int8 model.
func (imp *Impulse) ClassifyQuantized(sig dsp.Signal) (ClassResult, error) {
	return imp.classify(sig, true)
}

func (imp *Impulse) classify(sig dsp.Signal, quantized bool) (ClassResult, error) {
	composite, layout, err := imp.ExtractComposite(sig)
	if err != nil {
		return ClassResult{}, err
	}
	res := ClassResult{Scores: map[string]float32{}}
	var probs *tensor.F32
	useQuant := quantized && imp.QModel != nil
	switch {
	case useQuant || imp.Model != nil:
		x, err := imp.ClassifierFeaturesFrom(composite, layout)
		if err != nil {
			return ClassResult{}, err
		}
		if useQuant {
			probs = imp.QModel.Forward(x)
		} else {
			probs = imp.Model.Forward(x)
		}
	case imp.Anomaly == nil:
		return ClassResult{}, fmt.Errorf("core: impulse has no learn block")
	}
	if probs != nil {
		best := probs.ArgMax()
		for i, c := range imp.Classes {
			if i < len(probs.Data) {
				res.Scores[c] = probs.Data[i]
			}
		}
		if best >= 0 && best < len(imp.Classes) {
			res.Label = imp.Classes[best]
		}
	}
	if imp.Anomaly != nil {
		av, err := imp.AnomalyFeaturesFrom(composite, layout)
		if err != nil {
			return ClassResult{}, err
		}
		res.AnomalyScore = imp.Anomaly.Score(av.Data)
	}
	return res, nil
}

// ClassifyBatch classifies a batch of raw feature windows in one call,
// amortizing per-request setup: the DSP runtime tables and the model's
// plan arenas are pooled, so every window after the first runs against
// warm scratch. Results are ordered like the input; the first failing
// window aborts the whole batch.
func (imp *Impulse) ClassifyBatch(windows [][]float32, quantized bool) ([]ClassResult, error) {
	canonical := imp.CanonicalSignal()
	out := make([]ClassResult, len(windows))
	for i, win := range windows {
		sig := dsp.Signal{
			Data: win, Rate: canonical.Rate, Axes: canonical.Axes,
			Width: canonical.Width, Height: canonical.Height,
		}
		res, err := imp.classify(sig, quantized)
		if err != nil {
			return nil, fmt.Errorf("core: batch window %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// Evaluate computes accuracy and the confusion matrix on a dataset split
// using the float model (the platform's "model testing" page).
func (imp *Impulse) Evaluate(ds *data.Dataset, cat data.Category) (float64, [][]int, error) {
	if imp.Model == nil {
		return 0, nil, fmt.Errorf("core: no classifier attached")
	}
	examples, err := imp.BuildExamples(ds, cat)
	if err != nil {
		return 0, nil, err
	}
	if len(examples) == 0 {
		return 0, nil, fmt.Errorf("core: no examples in split %q", cat)
	}
	acc := trainer.Accuracy(imp.Model, examples)
	conf := trainer.Confusion(imp.Model, examples, len(imp.Classes))
	return acc, conf, nil
}

// DSPCost returns the summed operation count of one composite feature
// extraction across all DSP blocks.
func (imp *Impulse) DSPCost() dsp.Cost {
	var total dsp.Cost
	for _, inst := range imp.DSP {
		total = total.Add(inst.Block.Cost(imp.canonicalFor(inst)))
	}
	return total
}

// DSPRAM returns the working RAM of one composite feature extraction in
// bytes: the blocks' own footprints plus, for multi-block graphs, the
// concatenation buffer.
func (imp *Impulse) DSPRAM() int64 {
	var total int64
	for _, inst := range imp.DSP {
		total += inst.Block.RAM(imp.canonicalFor(inst))
	}
	if len(imp.DSP) > 1 {
		if l, err := imp.Layout(); err == nil {
			total += int64(l.Total) * 4
		}
	}
	return total
}

// Describe renders the block dataflow as a one-line diagram, the textual
// equivalent of the Studio's impulse view (Fig. 2).
func (imp *Impulse) Describe() string {
	in := "?"
	switch imp.Input.Kind {
	case TimeSeries:
		in = fmt.Sprintf("Time series data (%d ms @ %d Hz, %d axes)",
			imp.Input.WindowMS, imp.Input.FrequencyHz, imp.Input.Axes)
	case ImageInput:
		in = fmt.Sprintf("Image data (%dx%d)", imp.Input.Width, imp.Input.Height)
	}
	dspName := "?"
	if len(imp.DSP) > 0 {
		names := make([]string, len(imp.DSP))
		for i, inst := range imp.DSP {
			names[i] = inst.Block.Name()
			if len(inst.Axes) > 0 {
				names[i] += fmt.Sprintf("(axes %v)", inst.Axes)
			}
		}
		dspName = strings.Join(names, " + ")
	}
	learn := ""
	if len(imp.Classes) > 0 {
		learn = fmt.Sprintf("Classification (%d classes)", len(imp.Classes))
	}
	for _, spec := range imp.Learn {
		if spec.Type == LearnRegression {
			if learn != "" {
				learn += " + "
			}
			learn += "Regression"
		}
	}
	if imp.Anomaly != nil {
		if learn != "" {
			learn += " + "
		}
		learn += fmt.Sprintf("Anomaly detection (K-means, %d clusters)", len(imp.Anomaly.Centroids))
	} else if spec, ok := imp.AnomalySpec(); ok && spec.Type == LearnAnomaly && len(imp.Learn) > 0 {
		if learn != "" {
			learn += " + "
		}
		learn += "Anomaly detection (K-means)"
	}
	return fmt.Sprintf("[%s] -> [%s] -> [%s]", in, dspName, learn)
}
