package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"edgepulse/internal/dsp"
)

// ConfigVersion is the current impulse design schema version. Version 2
// models the impulse as a block graph: an ordered list of DSP block
// specs feeding a list of learn block specs (paper Sec. 3, Fig. 2 — and
// the sensor-fusion / multi-head designs real impulses carry).
const ConfigVersion = 2

// DSPBlockSpec is one feature-extraction block in the design graph.
type DSPBlockSpec struct {
	// Name is the block's instance name, unique within the impulse and
	// referenced by learn blocks' Inputs. Defaults to Type.
	Name string `json:"name,omitempty"`
	// Type is the registered dsp block type ("mfe", "spectral-analysis", ...).
	Type string `json:"type"`
	// Params configures the block; omitted keys take block defaults.
	Params map[string]float64 `json:"params,omitempty"`
	// Axes selects which input axes this block consumes (time-series
	// inputs only, by index into the interleaved signal). Empty = all.
	Axes []int `json:"axes,omitempty"`
}

// LearnBlockSpec is one learn block in the design graph.
type LearnBlockSpec struct {
	// Name is the block's instance name, unique within the impulse.
	// Defaults to Type.
	Name string `json:"name,omitempty"`
	// Type is a registered learn block type: "classification",
	// "regression" or "anomaly".
	Type string `json:"type"`
	// Inputs names the DSP blocks whose outputs this block consumes;
	// its feature vector is the concatenation of those blocks' outputs
	// in impulse order. Empty = all DSP blocks.
	Inputs []string `json:"inputs,omitempty"`
	// Params configures the block (anomaly: "clusters").
	Params map[string]float64 `json:"params,omitempty"`
}

// Config is the serializable impulse design (block layout and
// hyperparameters, without trained weights — those travel separately in
// the EPTM model format). It is what the Studio stores per project and
// what the REST API accepts. The wire format is versioned: ParseConfig
// accepts both the legacy single-DSP v1 schema and the v2 block graph,
// and always yields a normalized v2 value.
type Config struct {
	Version int              `json:"version"`
	Name    string           `json:"name"`
	Input   InputBlock       `json:"input"`
	DSP     []DSPBlockSpec   `json:"dsp"`
	Learn   []LearnBlockSpec `json:"learn"`
	Classes []string         `json:"classes,omitempty"`
}

// configV1 is the legacy schema: exactly one DSP block, an implicit
// classifier, and an optional K-means anomaly block. It is accepted on
// the wire and migrated to v2.
type configV1 struct {
	Version   int                `json:"version,omitempty"` // tolerated when explicitly 1
	Name      string             `json:"name"`
	Input     InputBlock         `json:"input"`
	DSPName   string             `json:"dsp_name"`
	DSPParams map[string]float64 `json:"dsp_params,omitempty"`
	Classes   []string           `json:"classes,omitempty"`
	// AnomalyClusters > 0 enables the K-means anomaly learn block.
	AnomalyClusters int `json:"anomaly_clusters,omitempty"`
}

// migrate lifts a v1 design into the v2 block graph: the single DSP
// block keeps its type as instance name, the class list becomes an
// explicit classification block, and anomaly_clusters becomes an
// anomaly block with a clusters param.
func (c configV1) migrate() Config {
	out := Config{
		Version: ConfigVersion,
		Name:    c.Name,
		Input:   c.Input,
		Classes: c.Classes,
		DSP:     []DSPBlockSpec{{Name: c.DSPName, Type: c.DSPName, Params: c.DSPParams}},
	}
	if len(c.Classes) > 0 {
		out.Learn = append(out.Learn, LearnBlockSpec{Name: LearnClassification, Type: LearnClassification})
	}
	if c.AnomalyClusters > 0 {
		out.Learn = append(out.Learn, LearnBlockSpec{
			Name: LearnAnomaly, Type: LearnAnomaly,
			Params: map[string]float64{"clusters": float64(c.AnomalyClusters)},
		})
	}
	return out
}

// normalize fills schema defaults in place: the version stamp, unique
// block instance names (Name defaults to Type, disambiguated with a
// numeric suffix), and an implicit classification block when a class
// list is given without any learn blocks. Explicit duplicate names are
// rejected.
func (c *Config) normalize() error {
	if c.Version == 0 {
		c.Version = ConfigVersion
	}
	if c.Version != ConfigVersion {
		return fmt.Errorf("core: config version %d cannot be normalized (want %d)", c.Version, ConfigVersion)
	}
	seen := map[string]bool{}
	for i := range c.DSP {
		spec := &c.DSP[i]
		if spec.Name == "" {
			spec.Name = uniqueName(spec.Type, seen)
		} else if seen[spec.Name] {
			return fmt.Errorf("core: duplicate dsp block name %q", spec.Name)
		}
		seen[spec.Name] = true
	}
	if len(c.Learn) == 0 && len(c.Classes) > 0 {
		c.Learn = []LearnBlockSpec{{Type: LearnClassification}}
	}
	seen = map[string]bool{}
	for i := range c.Learn {
		spec := &c.Learn[i]
		if spec.Name == "" {
			spec.Name = uniqueName(spec.Type, seen)
		} else if seen[spec.Name] {
			return fmt.Errorf("core: duplicate learn block name %q", spec.Name)
		}
		seen[spec.Name] = true
	}
	return nil
}

// uniqueName returns base, or base-2, base-3, ... if already taken.
func uniqueName(base string, seen map[string]bool) string {
	name := base
	for n := 2; seen[name]; n++ {
		name = base + "-" + strconv.Itoa(n)
	}
	return name
}

// Config extracts the serializable design from an impulse, always in the
// normalized v2 schema. When the impulse carries no explicit learn
// specs, they are derived from its trained state (classes → classifier,
// fitted K-means → anomaly block), matching the legacy behavior.
func (imp *Impulse) Config() Config {
	c := Config{
		Version: ConfigVersion,
		Name:    imp.Name,
		Input:   imp.Input,
		Classes: append([]string(nil), imp.Classes...),
	}
	for _, inst := range imp.DSP {
		c.DSP = append(c.DSP, DSPBlockSpec{
			Name:   inst.Name,
			Type:   inst.Block.Name(),
			Params: inst.Block.Params(),
			Axes:   append([]int(nil), inst.Axes...),
		})
	}
	if len(imp.Learn) > 0 {
		for _, spec := range imp.Learn {
			c.Learn = append(c.Learn, spec.clone())
		}
	} else {
		if len(imp.Classes) > 0 {
			c.Learn = append(c.Learn, LearnBlockSpec{Name: LearnClassification, Type: LearnClassification})
		}
		if imp.Anomaly != nil {
			c.Learn = append(c.Learn, LearnBlockSpec{
				Name: LearnAnomaly, Type: LearnAnomaly,
				Params: map[string]float64{"clusters": float64(len(imp.Anomaly.Centroids))},
			})
		}
	}
	c.normalize()
	return c
}

func (s LearnBlockSpec) clone() LearnBlockSpec {
	out := s
	out.Inputs = append([]string(nil), s.Inputs...)
	if s.Params != nil {
		out.Params = make(map[string]float64, len(s.Params))
		for k, v := range s.Params {
			out.Params[k] = v
		}
	}
	return out
}

// FromConfig instantiates an impulse (untrained) from a design. The
// config may be v2 or a hand-built value without a version stamp; v1
// wire payloads should go through ParseConfig first.
func FromConfig(c Config) (*Impulse, error) {
	if c.Name == "" {
		return nil, fmt.Errorf("core: config has no name")
	}
	if err := c.normalize(); err != nil {
		return nil, err
	}
	if err := c.Input.Validate(); err != nil {
		return nil, err
	}
	if len(c.DSP) == 0 {
		return nil, fmt.Errorf("core: config has no dsp blocks")
	}
	imp := &Impulse{
		Name:    c.Name,
		Input:   c.Input,
		Classes: append([]string(nil), c.Classes...),
	}
	for _, spec := range c.DSP {
		block, err := dsp.New(spec.Type, spec.Params)
		if err != nil {
			return nil, fmt.Errorf("core: dsp block %q: %w", spec.Name, err)
		}
		imp.DSP = append(imp.DSP, DSPInstance{
			Name:  spec.Name,
			Block: block,
			Axes:  append([]int(nil), spec.Axes...),
		})
	}
	for _, spec := range c.Learn {
		imp.Learn = append(imp.Learn, spec.clone())
	}
	if err := imp.validateDesign(); err != nil {
		return nil, err
	}
	if _, err := imp.FeatureShape(); err != nil {
		return nil, err
	}
	return imp, nil
}

// MarshalJSON round-trips the impulse design (not weights).
func (imp *Impulse) MarshalJSON() ([]byte, error) {
	return json.Marshal(imp.Config())
}

// ParseConfig decodes a JSON impulse design. Both schema versions are
// accepted — a payload without a "version" field (or with "version": 1)
// is decoded as the legacy single-DSP schema and migrated — and the
// result is always a normalized v2 config. Unknown fields and unknown
// versions are rejected.
func ParseConfig(data []byte) (Config, error) {
	var probe struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Config{}, fmt.Errorf("core: bad impulse config: %w", err)
	}
	switch {
	case probe.Version == nil || *probe.Version == 1:
		var legacy configV1
		if err := strictUnmarshal(data, &legacy); err != nil {
			return Config{}, fmt.Errorf("core: bad v1 impulse config: %w", err)
		}
		c := legacy.migrate()
		if err := c.normalize(); err != nil {
			return Config{}, err
		}
		return c, nil
	case *probe.Version == ConfigVersion:
		var c Config
		if err := strictUnmarshal(data, &c); err != nil {
			return Config{}, fmt.Errorf("core: bad v2 impulse config: %w", err)
		}
		if err := c.normalize(); err != nil {
			return Config{}, err
		}
		return c, nil
	default:
		return Config{}, fmt.Errorf("core: unsupported impulse config version %d (supported: 1, %d)", *probe.Version, ConfigVersion)
	}
}

// strictUnmarshal decodes JSON rejecting unknown fields, so schema typos
// (and v2 payloads missing their version stamp) fail loudly instead of
// silently dropping design information.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
