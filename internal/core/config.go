package core

import (
	"encoding/json"
	"fmt"

	"edgepulse/internal/dsp"
)

// Config is the serializable impulse design (block layout and
// hyperparameters, without trained weights — those travel separately in
// the EPTM model format). It is what the Studio stores per project and
// what the REST API accepts.
type Config struct {
	Name      string             `json:"name"`
	Input     InputBlock         `json:"input"`
	DSPName   string             `json:"dsp_name"`
	DSPParams map[string]float64 `json:"dsp_params,omitempty"`
	Classes   []string           `json:"classes,omitempty"`
	// AnomalyClusters > 0 enables the K-means anomaly learn block.
	AnomalyClusters int `json:"anomaly_clusters,omitempty"`
}

// Config extracts the serializable design from an impulse.
func (imp *Impulse) Config() Config {
	c := Config{
		Name:    imp.Name,
		Input:   imp.Input,
		Classes: append([]string(nil), imp.Classes...),
	}
	if imp.DSP != nil {
		c.DSPName = imp.DSP.Name()
		c.DSPParams = imp.DSP.Params()
	}
	if imp.Anomaly != nil {
		c.AnomalyClusters = len(imp.Anomaly.Centroids)
	}
	return c
}

// FromConfig instantiates an impulse (untrained) from a design.
func FromConfig(c Config) (*Impulse, error) {
	if c.Name == "" {
		return nil, fmt.Errorf("core: config has no name")
	}
	if err := c.Input.Validate(); err != nil {
		return nil, err
	}
	block, err := dsp.New(c.DSPName, c.DSPParams)
	if err != nil {
		return nil, err
	}
	imp := &Impulse{
		Name:    c.Name,
		Input:   c.Input,
		DSP:     block,
		Classes: append([]string(nil), c.Classes...),
	}
	if _, err := imp.FeatureShape(); err != nil {
		return nil, err
	}
	return imp, nil
}

// MarshalJSON round-trips the impulse design (not weights).
func (imp *Impulse) MarshalJSON() ([]byte, error) {
	return json.Marshal(imp.Config())
}

// ParseConfig decodes a JSON impulse design.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("core: bad impulse config: %w", err)
	}
	return c, nil
}
