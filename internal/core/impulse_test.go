package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/trainer"
)

// materialize loads every sample of a split (tests only — production
// paths stream via Batches).
func materialize(t testing.TB, ds *data.Dataset, cat data.Category) []*data.Sample {
	t.Helper()
	var out []*data.Sample
	for _, h := range ds.List(cat) {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// toneDataset builds a tiny two-class audio dataset: low tones vs high
// tones, trivially separable from MFE features.
func toneDataset(t testing.TB, perClass int) *data.Dataset {
	t.Helper()
	ds := data.New()
	rng := rand.New(rand.NewSource(1))
	make1 := func(freq float64, label string, i int) {
		n := 4000
		sig := make([]float32, n)
		for j := range sig {
			sig[j] = 0.5*float32(math.Sin(2*math.Pi*freq*float64(j)/8000)) +
				0.05*float32(rng.NormFloat64())
		}
		_, err := ds.Add(&data.Sample{
			Name:   label + string(rune('a'+i)),
			Label:  label,
			Signal: dsp.Signal{Data: sig, Rate: 8000, Axes: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < perClass; i++ {
		make1(300+20*float64(i%5), "low", i)
		make1(2500+40*float64(i%5), "high", i)
	}
	ds.Rebalance(0.25)
	return ds
}

func toneImpulse(t testing.TB) *Impulse {
	t.Helper()
	imp := New("kws-test")
	imp.Input = InputBlock{Kind: TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		t.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = []string{"high", "low"}
	return imp
}

func TestImpulseValidate(t *testing.T) {
	imp := toneImpulse(t)
	if err := imp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Missing DSP.
	bad := New("x")
	bad.Input = imp.Input
	bad.Classes = []string{"a"}
	if bad.Validate() == nil {
		t.Error("accepted missing DSP")
	}
	// Missing learn block.
	bad2 := toneImpulse(t)
	bad2.Classes = nil
	if bad2.Validate() == nil {
		t.Error("accepted missing learn block")
	}
	// Bad input config.
	bad3 := toneImpulse(t)
	bad3.Input.WindowMS = 0
	if bad3.Validate() == nil {
		t.Error("accepted zero window")
	}
	// Unknown input kind.
	bad4 := toneImpulse(t)
	bad4.Input.Kind = "quantum"
	if bad4.Validate() == nil {
		t.Error("accepted unknown kind")
	}
}

func TestFeatureShapeAndExtraction(t *testing.T) {
	imp := toneImpulse(t)
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	// 500ms at 8kHz = 4000 samples; frame 0.02*8000=160, stride 80:
	// (4000-160)/80+1 = 49 frames, 16 filters.
	if shape[0] != 49 || shape[1] != 16 {
		t.Fatalf("feature shape %v", shape)
	}
	sig := dsp.Signal{Data: make([]float32, 4000), Rate: 8000, Axes: 1}
	x, err := imp.Features(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Shape.Equal(shape) {
		t.Fatalf("extracted %v != declared %v", x.Shape, shape)
	}
}

func TestWindowingPadAndCrop(t *testing.T) {
	imp := toneImpulse(t)
	// Short signal: padded to window.
	short := dsp.Signal{Data: make([]float32, 100), Rate: 8000, Axes: 1}
	if _, err := imp.Features(short); err != nil {
		t.Fatalf("padded extraction failed: %v", err)
	}
	// Long signal: multiple windows.
	long := dsp.Signal{Data: make([]float32, 12000), Rate: 8000, Axes: 1}
	imp.Input.StrideMS = 250
	wins := imp.Windows(long)
	// 12000 samples, window 4000, stride 2000 -> starts 0,2000,...,8000 = 5.
	if len(wins) != 5 {
		t.Fatalf("%d windows, want 5", len(wins))
	}
	for _, w := range wins {
		if w.Frames() != 4000 {
			t.Fatalf("window frames %d", w.Frames())
		}
	}
}

func TestEndToEndTrainQuantizeClassify(t *testing.T) {
	imp := toneImpulse(t)
	ds := toneDataset(t, 12)
	shape, _ := imp.FeatureShape()
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(model, 42); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	if _, err := imp.Train(ds, trainer.Config{Epochs: 8, LearningRate: 0.005, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	acc, conf, err := imp.Evaluate(ds, data.Testing)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("test accuracy %.2f, want > 0.8 (confusion %v)", acc, conf)
	}
	// Quantize and compare.
	if err := imp.Quantize(ds); err != nil {
		t.Fatal(err)
	}
	agree := 0
	tests := materialize(t, ds, data.Testing)
	for _, s := range tests {
		f, err := imp.Classify(s.Signal)
		if err != nil {
			t.Fatal(err)
		}
		q, err := imp.ClassifyQuantized(s.Signal)
		if err != nil {
			t.Fatal(err)
		}
		if f.Label == q.Label {
			agree++
		}
	}
	if agree < len(tests)*8/10 {
		t.Fatalf("float/int8 agreement %d/%d", agree, len(tests))
	}
}

func TestClassifyScores(t *testing.T) {
	imp := toneImpulse(t)
	shape, _ := imp.FeatureShape()
	model, _ := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	nn.InitWeights(model, 1)
	imp.AttachClassifier(model)
	sig := dsp.Signal{Data: make([]float32, 4000), Rate: 8000, Axes: 1}
	res, err := imp.Classify(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 2 {
		t.Fatalf("scores: %v", res.Scores)
	}
	var sum float32
	for _, v := range res.Scores {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-4 {
		t.Errorf("scores sum %g", sum)
	}
	if res.Label != "high" && res.Label != "low" {
		t.Errorf("label %q", res.Label)
	}
}

func TestAnomalyBlock(t *testing.T) {
	imp := toneImpulse(t)
	imp.Classes = nil // anomaly-only impulse
	ds := toneDataset(t, 8)
	if err := imp.TrainAnomaly(ds, 3, 5); err != nil {
		t.Fatal(err)
	}
	if err := imp.Validate(); err != nil {
		t.Fatal(err)
	}
	// A normal (training-like) tone scores lower than white noise.
	normal := materialize(t, ds, data.Training)[0].Signal
	rng := rand.New(rand.NewSource(9))
	noise := make([]float32, 4000)
	for i := range noise {
		noise[i] = float32(rng.NormFloat64())
	}
	rNorm, err := imp.Classify(normal)
	if err != nil {
		t.Fatal(err)
	}
	rNoise, err := imp.Classify(dsp.Signal{Data: noise, Rate: 8000, Axes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rNoise.AnomalyScore <= rNorm.AnomalyScore {
		t.Errorf("noise score %.2f not above normal %.2f", rNoise.AnomalyScore, rNorm.AnomalyScore)
	}
}

func TestAttachClassifierValidation(t *testing.T) {
	imp := toneImpulse(t)
	wrongShape := models.TinyMLP(10, 8, 2)
	if err := imp.AttachClassifier(wrongShape); err == nil {
		t.Error("accepted wrong input shape")
	}
	shape, _ := imp.FeatureShape()
	wrongClasses, _ := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 5)
	if err := imp.AttachClassifier(wrongClasses); err == nil {
		t.Error("accepted wrong class count")
	}
}

func TestTrainErrors(t *testing.T) {
	imp := toneImpulse(t)
	ds := toneDataset(t, 4)
	if _, err := imp.Train(ds, trainer.Config{}); err == nil {
		t.Error("trained without classifier")
	}
	shape, _ := imp.FeatureShape()
	model, _ := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	nn.InitWeights(model, 1)
	imp.AttachClassifier(model)
	imp.Classes = []string{"nope", "nada"}
	if _, err := imp.Train(ds, trainer.Config{Epochs: 1}); err == nil {
		t.Error("trained with no matching labels")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	imp := toneImpulse(t)
	cfg := imp.Config()
	blob, err := json.Marshal(imp)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseConfig(blob)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != cfg.Name || len(parsed.DSP) != 1 || parsed.DSP[0].Type != "mfe" {
		t.Fatalf("parsed: %+v", parsed)
	}
	imp2, err := FromConfig(parsed)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := imp.FeatureShape()
	s2, _ := imp2.FeatureShape()
	if !s1.Equal(s2) {
		t.Fatalf("shapes differ: %v vs %v", s1, s2)
	}
	if imp2.DSP[0].Block.Params()["num_filters"] != 16 {
		t.Error("DSP params lost")
	}
}

func TestFromConfigValidation(t *testing.T) {
	if _, err := FromConfig(Config{}); err == nil {
		t.Error("accepted empty config")
	}
	if _, err := FromConfig(Config{Name: "x", Input: InputBlock{Kind: TimeSeries, WindowMS: 100, FrequencyHz: 100, Axes: 1}, DSP: []DSPBlockSpec{{Type: "not-a-block"}}}); err == nil {
		t.Error("accepted unknown dsp block")
	}
	if _, err := ParseConfig([]byte("{bad")); err == nil {
		t.Error("accepted bad json")
	}
}

func TestImageImpulse(t *testing.T) {
	imp := New("vision")
	imp.Input = InputBlock{Kind: ImageInput, Width: 32, Height: 32, Axes: 3}
	block, err := dsp.New("image", map[string]float64{"width": 16, "height": 16})
	if err != nil {
		t.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = []string{"person", "no-person"}
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal([]int{16, 16, 3}) {
		t.Fatalf("shape %v", shape)
	}
	if err := imp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	imp := toneImpulse(t)
	s := imp.Describe()
	if !strings.Contains(s, "Time series") || !strings.Contains(s, "mfe") || !strings.Contains(s, "Classification") {
		t.Errorf("Describe = %q", s)
	}
	if imp.DSPCost().FFTButterflies == 0 {
		t.Error("DSP cost empty")
	}
	if imp.DSPRAM() == 0 {
		t.Error("DSP RAM empty")
	}
}
