package core

import "sort"

// Learn block type identifiers. These are the names accepted in
// LearnBlockSpec.Type and listed by the REST block catalog.
const (
	LearnClassification = "classification"
	LearnRegression     = "regression"
	LearnAnomaly        = "anomaly"
)

// LearnBlockType describes one registered learn block kind: the learn
// half of the impulse design catalog, mirroring the dsp package's block
// registry (paper Sec. 4.3 — the learn blocks the Studio offers).
type LearnBlockType struct {
	// Type is the identifier used in LearnBlockSpec.Type.
	Type string
	// Description is a one-line human-readable summary for catalogs.
	Description string
	// Defaults is the accepted hyperparameter set with default values
	// (the block's param schema).
	Defaults map[string]float64
	// Trainable reports whether the platform can currently fit this
	// block. Regression is registered as a design-schema slot ahead of
	// trainer support, so designs carrying it validate and round-trip.
	Trainable bool
}

// learnRegistry maps learn block type names to their descriptors. It
// backs impulse deserialization and the REST API's block catalog,
// extending the registry pattern of dsp.Register to learn blocks.
var learnRegistry = map[string]LearnBlockType{}

// RegisterLearn adds a learn block type to the registry. It panics on
// duplicates, which indicates a programmer error at init time.
func RegisterLearn(t LearnBlockType) {
	if t.Type == "" {
		panic("core: learn block registration without a type")
	}
	if _, dup := learnRegistry[t.Type]; dup {
		panic("core: duplicate learn block registration: " + t.Type)
	}
	learnRegistry[t.Type] = t
}

// LearnNames returns the registered learn block type names, sorted so
// catalog responses are deterministic across processes.
func LearnNames() []string {
	out := make([]string, 0, len(learnRegistry))
	for n := range learnRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LearnTypes returns the registered learn block descriptors sorted by
// type name.
func LearnTypes() []LearnBlockType {
	out := make([]LearnBlockType, 0, len(learnRegistry))
	for _, n := range LearnNames() {
		out = append(out, learnRegistry[n])
	}
	return out
}

// learnTypeOf resolves a registered learn block type.
func learnTypeOf(name string) (LearnBlockType, bool) {
	t, ok := learnRegistry[name]
	return t, ok
}

func init() {
	RegisterLearn(LearnBlockType{
		Type:        LearnClassification,
		Description: "Neural network classifier over the selected DSP block outputs",
		Trainable:   true,
	})
	RegisterLearn(LearnBlockType{
		Type:        LearnRegression,
		Description: "Neural network regression head (design slot; training not yet implemented)",
		Trainable:   false,
	})
	RegisterLearn(LearnBlockType{
		Type:        LearnAnomaly,
		Description: "K-means anomaly detector scoring features against the training distribution",
		Defaults:    map[string]float64{"clusters": 3},
		Trainable:   true,
	})
}
