package core

import (
	"fmt"
	"sort"
	"strings"

	"edgepulse/internal/tensor"
)

// FeatureSegment is one DSP block's slice of the composite feature
// vector.
type FeatureSegment struct {
	// Name is the DSP block's instance name.
	Name string
	// Shape is the block's own output shape for the canonical window.
	Shape tensor.Shape
	// Offset and Len locate the block's flattened output inside the
	// composite feature vector.
	Offset int
	Len    int
}

// FeatureLayout is the per-block offset table of an impulse: the
// composite feature vector is the concatenation of every DSP block's
// flattened output, in impulse order.
type FeatureLayout struct {
	Segments []FeatureSegment
	// Total is the composite feature vector length.
	Total int
}

// Segment looks up a block's slice by instance name.
func (l *FeatureLayout) Segment(name string) (FeatureSegment, bool) {
	for _, s := range l.Segments {
		if s.Name == name {
			return s, true
		}
	}
	return FeatureSegment{}, false
}

// layoutCache pairs a computed layout with the design fingerprint it was
// derived from, so direct mutation of the exported Impulse fields (as
// library callers do) invalidates the cache instead of serving stale
// offsets.
type layoutCache struct {
	fingerprint string
	layout      *FeatureLayout
}

// Layout returns the impulse's per-block feature offset table, cached
// across calls and recomputed whenever the input block or DSP graph
// changes.
func (imp *Impulse) Layout() (*FeatureLayout, error) {
	if len(imp.DSP) == 0 {
		return nil, fmt.Errorf("core: impulse has no DSP block")
	}
	fp := imp.designFingerprint()
	if c := imp.layout.Load(); c != nil && c.fingerprint == fp {
		return c.layout, nil
	}
	l := &FeatureLayout{}
	for _, inst := range imp.DSP {
		shape, err := inst.Block.OutputShape(imp.canonicalFor(inst))
		if err != nil {
			return nil, fmt.Errorf("core: dsp block %q: %w", inst.Name, err)
		}
		n := shape.Elems()
		l.Segments = append(l.Segments, FeatureSegment{
			Name: inst.Name, Shape: shape, Offset: l.Total, Len: n,
		})
		l.Total += n
	}
	imp.layout.Store(&layoutCache{fingerprint: fp, layout: l})
	return l, nil
}

// designFingerprint renders the layout-relevant design (input geometry
// plus the DSP graph) as a deterministic string for cache validation.
func (imp *Impulse) designFingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "in:%s/%d/%d/%d/%d/%dx%d;",
		imp.Input.Kind, imp.Input.WindowMS, imp.Input.StrideMS,
		imp.Input.FrequencyHz, imp.Input.Axes, imp.Input.Width, imp.Input.Height)
	for _, inst := range imp.DSP {
		fmt.Fprintf(&b, "b:%s/%s/", inst.Name, inst.Block.Name())
		params := inst.Block.Params()
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%g,", k, params[k])
		}
		fmt.Fprintf(&b, "ax%v;", inst.Axes)
	}
	return b.String()
}
