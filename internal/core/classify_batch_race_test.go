package core

import (
	"fmt"
	"sync"
	"testing"

	"edgepulse/internal/dsp"
)

// sameResult reports whether two classifications agree bit for bit.
func sameResult(got, want ClassResult) error {
	if got.Label != want.Label {
		return fmt.Errorf("label %q != %q", got.Label, want.Label)
	}
	for class, p := range want.Scores {
		if got.Scores[class] != p {
			return fmt.Errorf("class %s: %v != %v", class, got.Scores[class], p)
		}
	}
	return nil
}

// TestClassifyBatchConcurrentBitIdentical hammers one impulse from
// many goroutines at once — batched classification in both precisions
// interleaved with single-window calls — and requires every result to
// be bit-identical to a quiet sequential pass. Run under -race this
// pins the batch path's pooled scratch buffers: any aliasing between
// concurrent callers shows up either as a race report or as a score
// that drifted from the reference.
func TestClassifyBatchConcurrentBitIdentical(t *testing.T) {
	imp := batchImpulse(t)
	windows := batchWindows(6)
	single := dsp.Signal{Data: windows[0], Rate: 8000, Axes: 1}

	// Reference results from a quiet, sequential pass.
	refBatch := make(map[bool][]ClassResult, 2)
	refSingle := make(map[bool]ClassResult, 2)
	for _, q := range []bool{false, true} {
		res, err := imp.ClassifyBatch(windows, q)
		if err != nil {
			t.Fatal(err)
		}
		refBatch[q] = res
		if q {
			refSingle[q], err = imp.ClassifyQuantized(single)
		} else {
			refSingle[q], err = imp.Classify(single)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	const rounds = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		quantized := g%2 == 1
		batched := g%4 < 2
		wg.Add(1)
		go func(quantized, batched bool) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if batched {
					got, err := imp.ClassifyBatch(windows, quantized)
					if err != nil {
						errs <- err
						return
					}
					for i := range got {
						if err := sameResult(got[i], refBatch[quantized][i]); err != nil {
							errs <- fmt.Errorf("round %d window %d quantized=%v: %w", r, i, quantized, err)
							return
						}
					}
					continue
				}
				var got ClassResult
				var err error
				if quantized {
					got, err = imp.ClassifyQuantized(single)
				} else {
					got, err = imp.Classify(single)
				}
				if err != nil {
					errs <- err
					return
				}
				if err := sameResult(got, refSingle[quantized]); err != nil {
					errs <- fmt.Errorf("round %d single quantized=%v: %w", r, quantized, err)
					return
				}
			}
		}(quantized, batched)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
