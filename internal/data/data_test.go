package data

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"math"
	"strings"
	"testing"

	"edgepulse/internal/dsp"
	"edgepulse/internal/ingest"
	"edgepulse/internal/wav"
)

func sample(label string, vals ...float32) *Sample {
	return &Sample{
		Name:   "s-" + label,
		Label:  label,
		Signal: dsp.Signal{Data: vals, Rate: 100, Axes: 1},
	}
}

func TestAddGetRemove(t *testing.T) {
	d := New()
	id, err := d.Add(sample("yes", 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "yes" || s.Category != Training {
		t.Fatalf("sample: %+v", s)
	}
	if d.Len() != 1 {
		t.Fatal("len")
	}
	if err := d.Remove(id); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("not removed")
	}
	if err := d.Remove(id); err == nil {
		t.Error("double remove accepted")
	}
	if _, err := d.Get(id); err == nil {
		t.Error("get after remove")
	}
}

func TestAddValidation(t *testing.T) {
	d := New()
	if _, err := d.Add(&Sample{Label: "", Signal: dsp.Signal{Data: []float32{1}}}); err == nil {
		t.Error("accepted empty label")
	}
	if _, err := d.Add(&Sample{Label: "x"}); err == nil {
		t.Error("accepted empty signal")
	}
}

func TestDuplicateRejected(t *testing.T) {
	d := New()
	if _, err := d.Add(sample("yes", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(sample("yes", 1, 2)); err == nil {
		t.Error("duplicate accepted")
	}
	// Same data, different label: allowed.
	if _, err := d.Add(sample("no", 1, 2)); err != nil {
		t.Errorf("different label rejected: %v", err)
	}
}

func TestContentAddressedIDs(t *testing.T) {
	d1 := New()
	d2 := New()
	id1, _ := d1.Add(sample("yes", 1, 2, 3))
	id2, _ := d2.Add(sample("yes", 1, 2, 3))
	if id1 != id2 {
		t.Fatal("same content, different IDs")
	}
}

func TestRebalanceDeterministicAndStratified(t *testing.T) {
	d := New()
	for i := 0; i < 40; i++ {
		d.Add(sample("a", float32(i), 1))
	}
	for i := 0; i < 10; i++ {
		d.Add(sample("b", float32(i), 2))
	}
	d.Rebalance(0.2)
	counts := map[string][2]int{}
	for _, s := range d.List("") {
		c := counts[s.Label]
		if s.Category == Testing {
			c[1]++
		} else {
			c[0]++
		}
		counts[s.Label] = c
	}
	if counts["a"][1] != 8 {
		t.Errorf("label a test count = %d, want 8", counts["a"][1])
	}
	if counts["b"][1] != 2 {
		t.Errorf("label b test count = %d, want 2", counts["b"][1])
	}
	// Re-running must not change assignments.
	before := map[string]Category{}
	for _, s := range d.List("") {
		before[s.ID] = s.Category
	}
	d.Rebalance(0.2)
	for _, s := range d.List("") {
		if before[s.ID] != s.Category {
			t.Fatal("rebalance not stable")
		}
	}
}

func TestListFilter(t *testing.T) {
	d := New()
	d.Add(sample("a", 1))
	d.Add(sample("b", 2))
	d.Rebalance(0.5)
	train := d.List(Training)
	test := d.List(Testing)
	if len(train)+len(test) != 2 {
		t.Fatalf("train %d + test %d", len(train), len(test))
	}
}

func TestLabelsAndStats(t *testing.T) {
	d := New()
	d.Add(sample("yes", 1, 2, 3, 4)) // 4 frames at 100 Hz = 0.04 s
	d.Add(sample("no", 5, 6, 7, 8))
	d.Add(sample("no", 9, 10, 11, 12))
	labels := d.Labels()
	if len(labels) != 2 || labels[0] != "no" || labels[1] != "yes" {
		t.Fatalf("labels: %v", labels)
	}
	stats := d.Stats()
	if len(stats) != 2 {
		t.Fatal("stats length")
	}
	if stats[0].Label != "no" || stats[0].Training != 2 {
		t.Errorf("stats[0]: %+v", stats[0])
	}
	if math.Abs(stats[0].Seconds-0.08) > 1e-9 {
		t.Errorf("seconds: %g", stats[0].Seconds)
	}
}

func TestVersionChangesOnMutation(t *testing.T) {
	d := New()
	v0 := d.Version()
	id, _ := d.Add(sample("a", 1, 2))
	v1 := d.Version()
	if v0 == v1 {
		t.Fatal("version unchanged after add")
	}
	d.SetLabel(id, "b")
	v2 := d.Version()
	if v1 == v2 {
		t.Fatal("version unchanged after relabel")
	}
	d.Remove(id)
	if d.Version() != v0 {
		t.Fatal("version not restored after removing everything")
	}
	if err := d.SetLabel("nope", "x"); err == nil {
		t.Error("SetLabel accepted unknown id")
	}
}

func TestImportWAV(t *testing.T) {
	var buf bytes.Buffer
	wav.Encode(&buf, wav.Audio{Rate: 16000, Channels: 1, Samples: make([]float32, 160)})
	d := New()
	id, err := d.ImportWAV("clip.wav", "noise", &buf)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Get(id)
	if s.Signal.Rate != 16000 || s.Signal.Frames() != 160 {
		t.Fatalf("signal: rate %d frames %d", s.Signal.Rate, s.Signal.Frames())
	}
}

func TestImportCSV(t *testing.T) {
	csvData := "timestamp,accX,accY\n0,1.0,2.0\n10,3.0,4.0\n20,5.0,6.0\n"
	d := New()
	id, err := d.ImportCSV("run.csv", "walk", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Get(id)
	if s.Signal.Axes != 2 || s.Signal.Frames() != 3 {
		t.Fatalf("axes %d frames %d", s.Signal.Axes, s.Signal.Frames())
	}
	// 3 samples over 20ms -> 100 Hz.
	if s.Signal.Rate != 100 {
		t.Fatalf("rate = %d", s.Signal.Rate)
	}
	if s.Signal.Data[2] != 3.0 {
		t.Fatalf("interleave: %v", s.Signal.Data)
	}
}

func TestImportCSVErrors(t *testing.T) {
	d := New()
	cases := []string{
		"",
		"timestamp,accX\n0,1.0\n",             // only one data row
		"timestamp,accX\n0,1.0\nbad,2.0\n",    // bad timestamp
		"timestamp,accX\n0,1.0\n10,xx\n",      // bad value
		"timestamp,accX\n0,1.0\n10,1.0,9.9\n", // ragged
		"timestamp\n0\n10\n",                  // no axes
	}
	for i, c := range cases {
		if _, err := d.ImportCSV("x.csv", "l", strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestImportAcquisition(t *testing.T) {
	p := ingest.Payload{
		DeviceName: "dev1", DeviceType: "T", IntervalMS: 10,
		Sensors: []ingest.Sensor{{Name: "x", Units: "g"}},
		Values:  [][]float64{{1}, {2}, {3}},
	}
	doc, err := ingest.SignCBOR(p, "key", 5)
	if err != nil {
		t.Fatal(err)
	}
	d := New()
	id, err := d.ImportAcquisition("acq", "idle", doc, "key")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Get(id)
	if s.Metadata["device_name"] != "dev1" {
		t.Error("metadata lost")
	}
	if _, err := d.ImportAcquisition("acq2", "idle", doc, "wrong"); err == nil {
		t.Error("wrong key accepted")
	}
}

func TestImportImage(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 4, 2))
	for y := 0; y < 2; y++ {
		for x := 0; x < 4; x++ {
			img.Set(x, y, color.RGBA{R: 200, G: 100, B: 50, A: 255})
		}
	}
	var buf bytes.Buffer
	png.Encode(&buf, img)
	d := New()
	id, err := d.ImportImage("img.png", "person", &buf)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Get(id)
	if s.Signal.Width != 4 || s.Signal.Height != 2 || s.Signal.Axes != 3 {
		t.Fatalf("dims: %+v", s.Signal)
	}
	if s.Signal.Data[0] != 200 || s.Signal.Data[1] != 100 || s.Signal.Data[2] != 50 {
		t.Fatalf("pixels: %v", s.Signal.Data[:3])
	}
	if _, err := d.ImportImage("bad", "x", strings.NewReader("not an image")); err == nil {
		t.Error("accepted garbage image")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				d.Add(sample("l", float32(g), float32(i)))
				d.Len()
				d.List("")
				d.Stats()
				d.Version()
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if d.Len() != 400 {
		t.Fatalf("len = %d, want 400", d.Len())
	}
}
