// Package data implements dataset management (paper Sec. 4.1): labeled
// sample storage with content-addressed IDs, deterministic train/test
// splits, per-class statistics, dataset versioning, and import from the
// file formats the platform accepts (CSV, JSON/CBOR acquisition
// documents, WAV, PNG, JPG).
//
// A Dataset runs in one of two modes. The in-memory mode (New) holds
// every signal resident and is what tests, examples and benchmarks use.
// The lazy mode (Open) keeps only sample Headers in memory and loads
// signals on demand from a Backend — in production the segmented store
// of internal/store — through a bounded LRU cache, so datasets far
// larger than RAM can be listed, iterated and trained on. Batches is
// the streaming iterator that feeds DSP feature extraction and training
// without materializing the whole dataset.
package data

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/csv"
	"encoding/hex"
	"errors"
	"fmt"
	"image"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	_ "image/jpeg" // register decoders for ingestion
	_ "image/png"

	"edgepulse/internal/dsp"
	"edgepulse/internal/ingest"
	"edgepulse/internal/wav"
)

// Category assigns a sample to a split.
type Category string

// Split categories.
const (
	Training Category = "training"
	Testing  Category = "testing"
)

// Sample is one labeled dataset entry with its signal materialized.
type Sample struct {
	// ID is the content hash of the signal and label.
	ID string
	// Name is the user-facing file name.
	Name string
	// Label is the class name.
	Label string
	// Category is the split assignment.
	Category Category
	// Signal is the raw sensor data.
	Signal dsp.Signal
	// Metadata holds free-form key/value annotations.
	Metadata map[string]string
	// AddedAt is the ingestion timestamp.
	AddedAt time.Time
}

// SignalShape describes a signal's geometry without its payload, so
// listings and statistics never have to load raw data.
type SignalShape struct {
	// Rate is the sampling frequency in Hz (time series only).
	Rate int
	// Axes is the number of interleaved channels.
	Axes int
	// Width and Height are set for image signals; zero otherwise.
	Width, Height int
	// Frames is the number of per-axis time steps.
	Frames int
}

// Header is the lightweight view of a sample: everything except the
// signal payload. List and Stats operate on headers only; the payload
// loads on demand through Get or Batches.
type Header struct {
	// ID is the content-addressed sample ID.
	ID string
	// Name is the user-facing file name.
	Name string
	// Label is the class name.
	Label string
	// Category is the split assignment.
	Category Category
	// Metadata holds free-form key/value annotations (read-only).
	Metadata map[string]string
	// AddedAt is the ingestion timestamp.
	AddedAt time.Time
	// Shape is the signal geometry.
	Shape SignalShape
}

// Seconds returns the duration of the sample's time-series signal, or 0
// for images and rate-less signals.
func (h Header) Seconds() float64 {
	if h.Shape.Rate <= 0 {
		return 0
	}
	return float64(h.Shape.Frames) / float64(h.Shape.Rate)
}

// header derives a Header from a materialized sample.
func (s *Sample) header() *Header {
	return &Header{
		ID: s.ID, Name: s.Name, Label: s.Label, Category: s.Category,
		Metadata: s.Metadata, AddedAt: s.AddedAt,
		Shape: SignalShape{
			Rate: s.Signal.Rate, Axes: s.Signal.Axes,
			Width: s.Signal.Width, Height: s.Signal.Height,
			Frames: s.Signal.Frames(),
		},
	}
}

// hash computes the content-addressed sample ID.
func (s *Sample) hash() string {
	h := sha256.New()
	io.WriteString(h, s.Label)
	io.WriteString(h, "\x00")
	io.WriteString(h, s.Name)
	io.WriteString(h, "\x00")
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(s.Signal.Rate))
	h.Write(b[:])
	binary.LittleEndian.PutUint32(b[:], uint32(s.Signal.Axes))
	h.Write(b[:])
	for _, v := range s.Signal.Data {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Backend is a durable sample store behind a lazy Dataset. The Dataset
// is the single writer and keeps the authoritative in-memory header
// index; a Backend only persists mutations and serves signal payloads.
// internal/store.Store is the production implementation.
type Backend interface {
	// Headers returns the committed samples in insertion order.
	Headers() ([]Header, error)
	// LoadSignal reads and decodes one sample's signal payload.
	LoadSignal(id string) (dsp.Signal, error)
	// Append durably persists a new sample (ID already assigned).
	Append(s *Sample) error
	// Remove durably deletes a sample.
	Remove(id string) error
	// SetLabel durably relabels a sample.
	SetLabel(id, label string) error
	// SetCategories durably reassigns split categories in one batch.
	SetCategories(cats map[string]Category) error
}

// ErrDuplicate reports an Add of content the dataset already holds
// (same label, name and signal). Idempotent ingestion paths (spool
// replay, migration retry) match it with errors.Is.
var ErrDuplicate = errors.New("duplicate sample")

// ErrPersist marks a backend persistence failure: the caller's input
// was valid but durable storage failed — a server-side fault, not a
// client error.
var ErrPersist = errors.New("persist failed")

// DefaultCacheBytes bounds the lazy-mode decoded-signal LRU cache.
const DefaultCacheBytes = 64 << 20

// Dataset is a thread-safe collection of samples: fully resident in
// in-memory mode, header-only with on-demand signal loading in lazy
// (Backend-backed) mode.
type Dataset struct {
	mu      sync.RWMutex
	headers map[string]*Header
	order   []string // insertion order for stable listings
	// signals holds the payloads in in-memory mode; nil in lazy mode.
	signals map[string]dsp.Signal
	// backend persists mutations and serves payloads in lazy mode.
	backend Backend
	cache   *signalCache
}

// New creates an empty in-memory dataset.
func New() *Dataset {
	return &Dataset{
		headers: map[string]*Header{},
		signals: map[string]dsp.Signal{},
	}
}

// Open creates a lazy dataset over a durable backend: committed headers
// are indexed in memory, signals load on demand through an LRU cache of
// cacheBytes decoded bytes (DefaultCacheBytes if <= 0).
func Open(b Backend, cacheBytes int64) (*Dataset, error) {
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	hs, err := b.Headers()
	if err != nil {
		return nil, fmt.Errorf("data: open backend: %w", err)
	}
	d := &Dataset{
		headers: make(map[string]*Header, len(hs)),
		backend: b,
		cache:   newSignalCache(cacheBytes),
	}
	for i := range hs {
		h := hs[i]
		if _, dup := d.headers[h.ID]; dup {
			return nil, fmt.Errorf("data: backend lists sample %s twice", h.ID)
		}
		d.headers[h.ID] = &h
		d.order = append(d.order, h.ID)
	}
	return d, nil
}

// Lazy reports whether the dataset loads signals from a backend on
// demand rather than holding them resident.
func (d *Dataset) Lazy() bool { return d.backend != nil }

// Add inserts a sample, assigning its content-addressed ID. Duplicate
// content (same label, name and signal) is rejected. In lazy mode the
// sample is durably persisted before Add returns.
func (d *Dataset) Add(s *Sample) (string, error) {
	if s.Label == "" {
		return "", fmt.Errorf("data: sample has no label")
	}
	if len(s.Signal.Data) == 0 {
		return "", fmt.Errorf("data: sample has no signal data")
	}
	if s.Category == "" {
		s.Category = Training
	}
	if s.AddedAt.IsZero() {
		s.AddedAt = time.Now()
	}
	id := s.hash()
	s.ID = id
	if d.backend == nil {
		// In-memory: no I/O, insert under one short critical section.
		d.mu.Lock()
		defer d.mu.Unlock()
		if _, dup := d.headers[id]; dup {
			return "", fmt.Errorf("data: %w %s", ErrDuplicate, id)
		}
		d.signals[id] = s.Signal
		d.headers[id] = s.header()
		d.order = append(d.order, id)
		return id, nil
	}
	// Lazy mode: keep the (fsyncing) backend append outside the dataset
	// lock so reads never queue behind upload I/O. The backend has its
	// own mutex and arbitrates racing duplicates.
	d.mu.RLock()
	_, dup := d.headers[id]
	d.mu.RUnlock()
	if dup {
		return "", fmt.Errorf("data: %w %s", ErrDuplicate, id)
	}
	if err := d.backend.Append(s); err != nil {
		if errors.Is(err, ErrDuplicate) {
			// A concurrent Add of identical content won the race.
			return "", fmt.Errorf("data: %w %s", ErrDuplicate, id)
		}
		return "", fmt.Errorf("data: persist sample %s: %w (%w)", id, ErrPersist, err)
	}
	d.cache.put(id, s.Signal)
	d.mu.Lock()
	d.headers[id] = s.header()
	d.order = append(d.order, id)
	d.mu.Unlock()
	return id, nil
}

// Get returns a materialized sample by ID, loading its signal from the
// backend if not cached.
func (d *Dataset) Get(id string) (*Sample, error) {
	d.mu.RLock()
	h, ok := d.headers[id]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("data: no sample %s", id)
	}
	hc := *h
	var sig dsp.Signal
	if d.backend == nil {
		sig = d.signals[id]
		d.mu.RUnlock()
	} else {
		d.mu.RUnlock()
		var err error
		sig, err = d.loadSignal(id)
		if err != nil {
			return nil, err
		}
	}
	return &Sample{
		ID: hc.ID, Name: hc.Name, Label: hc.Label, Category: hc.Category,
		Signal: sig, Metadata: hc.Metadata, AddedAt: hc.AddedAt,
	}, nil
}

// loadSignal fetches a payload through the LRU cache (lazy mode only).
// Called without the dataset lock held: backend reads may hit disk.
func (d *Dataset) loadSignal(id string) (dsp.Signal, error) {
	if sig, ok := d.cache.get(id); ok {
		return sig, nil
	}
	sig, err := d.backend.LoadSignal(id)
	if err != nil {
		return dsp.Signal{}, fmt.Errorf("data: load sample %s: %w", id, err)
	}
	d.cache.put(id, sig)
	return sig, nil
}

// Remove deletes a sample by ID.
func (d *Dataset) Remove(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.headers[id]; !ok {
		return fmt.Errorf("data: no sample %s", id)
	}
	if d.backend != nil {
		if err := d.backend.Remove(id); err != nil {
			return fmt.Errorf("data: remove sample %s: %w", id, err)
		}
		d.cache.drop(id)
	} else {
		delete(d.signals, id)
	}
	delete(d.headers, id)
	for i, o := range d.order {
		if o == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return nil
}

// SetLabel relabels a sample (used by the active-learning loop).
func (d *Dataset) SetLabel(id, label string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.headers[id]
	if !ok {
		return fmt.Errorf("data: no sample %s", id)
	}
	if d.backend != nil {
		if err := d.backend.SetLabel(id, label); err != nil {
			return fmt.Errorf("data: relabel sample %s: %w", id, err)
		}
	}
	h.Label = label
	return nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.headers)
}

// List returns sample headers in insertion order, optionally filtered
// by category ("" = all). No signal payloads are loaded; use Get or
// Batches to materialize samples.
func (d *Dataset) List(cat Category) []Header {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Header, 0, len(d.order))
	for _, id := range d.order {
		h := d.headers[id]
		if cat == "" || h.Category == cat {
			out = append(out, *h)
		}
	}
	return out
}

// Batches returns a streaming iterator over materialized samples in the
// given category ("" = all), loading signals n at a time so feature
// extraction and training never hold the whole dataset resident.
func (d *Dataset) Batches(cat Category, n int) *Batches {
	if n <= 0 {
		n = 32
	}
	ids := make([]string, 0)
	d.mu.RLock()
	for _, id := range d.order {
		if cat == "" || d.headers[id].Category == cat {
			ids = append(ids, id)
		}
	}
	d.mu.RUnlock()
	return &Batches{d: d, ids: ids, n: n}
}

// Batches is a pull iterator over dataset samples; see Dataset.Batches.
type Batches struct {
	d   *Dataset
	ids []string
	n   int
	pos int
	err error
}

// Next returns the next batch of up to n materialized samples. It
// returns ok=false when the iteration is exhausted or a signal load
// failed; check Err afterwards.
func (b *Batches) Next() ([]*Sample, bool) {
	if b.err != nil {
		return nil, false
	}
	out := make([]*Sample, 0, b.n)
	for b.pos < len(b.ids) && len(out) < b.n {
		id := b.ids[b.pos]
		b.pos++
		s, err := b.d.Get(id)
		if err != nil {
			// Samples removed mid-iteration are skipped; load failures
			// stop the iteration.
			if _, still := b.d.header(id); !still {
				continue
			}
			b.err = err
			return nil, false
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// Err returns the first signal-load error encountered, if any.
func (b *Batches) Err() error { return b.err }

// header looks up a live header by ID.
func (d *Dataset) header(id string) (Header, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	h, ok := d.headers[id]
	if !ok {
		return Header{}, false
	}
	return *h, true
}

// Labels returns the distinct labels in sorted order.
func (d *Dataset) Labels() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	set := map[string]bool{}
	for _, h := range d.headers {
		set[h.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Rebalance reassigns train/test categories so that close to testFraction
// of each label's samples land in the test split. The assignment is a
// deterministic function of sample IDs, so re-running it (or adding
// samples and re-running) never shuffles existing assignments randomly —
// the "maintaining train/validation/test splits" operational concern of
// paper Sec. 2.4. In lazy mode the changed assignments are persisted as
// one batch before the in-memory state updates.
func (d *Dataset) Rebalance(testFraction float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	byLabel := map[string][]*Header{}
	for _, id := range d.order {
		h := d.headers[id]
		byLabel[h.Label] = append(byLabel[h.Label], h)
	}
	want := map[string]Category{}
	for _, group := range byLabel {
		// Deterministic order: sort by ID (content hash).
		sort.Slice(group, func(i, j int) bool { return group[i].ID < group[j].ID })
		nTest := int(math.Round(testFraction * float64(len(group))))
		for i, h := range group {
			cat := Training
			if i < nTest {
				cat = Testing
			}
			if h.Category != cat {
				want[h.ID] = cat
			}
		}
	}
	if len(want) == 0 {
		return nil
	}
	if d.backend != nil {
		if err := d.backend.SetCategories(want); err != nil {
			return fmt.Errorf("data: rebalance: %w", err)
		}
	}
	for id, cat := range want {
		d.headers[id].Category = cat
	}
	return nil
}

// LabelStat summarizes one class.
type LabelStat struct {
	// Label is the class name.
	Label string
	// Training and Testing count samples per split.
	Training int
	Testing  int
	// Seconds of time-series data (0 for images).
	Seconds float64
}

// Stats returns per-label counts and durations, sorted by label — the
// data the platform's class-allocation view shows.
func (d *Dataset) Stats() []LabelStat {
	d.mu.RLock()
	defer d.mu.RUnlock()
	byLabel := map[string]*LabelStat{}
	for _, h := range d.headers {
		st, ok := byLabel[h.Label]
		if !ok {
			st = &LabelStat{Label: h.Label}
			byLabel[h.Label] = st
		}
		if h.Category == Testing {
			st.Testing++
		} else {
			st.Training++
		}
		st.Seconds += h.Seconds()
	}
	out := make([]LabelStat, 0, len(byLabel))
	for _, st := range byLabel {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Version returns a content hash over all sample IDs and labels: any
// addition, removal or relabeling changes the version. This is the
// dataset half of the project versioning story (paper Sec. 2.4, 3). The
// hash is a pure function of dataset content, so an in-memory dataset
// and its store-backed migration report the same version.
func (d *Dataset) Version() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := append([]string(nil), d.order...)
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		io.WriteString(h, id)
		io.WriteString(h, "=")
		io.WriteString(h, d.headers[id].Label)
		io.WriteString(h, ";")
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ImportWAV ingests a WAV file as one labeled audio sample.
func (d *Dataset) ImportWAV(name, label string, r io.Reader) (string, error) {
	a, err := wav.Decode(r)
	if err != nil {
		return "", err
	}
	return d.Add(&Sample{
		Name:  name,
		Label: label,
		Signal: dsp.Signal{
			Data: a.Samples, Rate: a.Rate, Axes: a.Channels,
		},
	})
}

// ImportCSV ingests a CSV time series: first column is a timestamp in
// milliseconds, remaining columns are sensor axes. A header row is
// skipped if non-numeric.
func (d *Dataset) ImportCSV(name, label string, r io.Reader) (string, error) {
	rd := csv.NewReader(r)
	rows, err := rd.ReadAll()
	if err != nil {
		return "", fmt.Errorf("data: csv: %w", err)
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("data: csv is empty")
	}
	start := 0
	if _, err := strconv.ParseFloat(rows[0][0], 64); err != nil {
		start = 1 // header
	}
	if len(rows)-start < 2 {
		return "", fmt.Errorf("data: csv has %d data rows, need >= 2", len(rows)-start)
	}
	axes := len(rows[start]) - 1
	if axes < 1 {
		return "", fmt.Errorf("data: csv needs timestamp plus at least one axis")
	}
	var data []float32
	var t0, t1 float64
	for i := start; i < len(rows); i++ {
		row := rows[i]
		if len(row) != axes+1 {
			return "", fmt.Errorf("data: csv row %d has %d columns, want %d", i, len(row), axes+1)
		}
		ts, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return "", fmt.Errorf("data: csv row %d timestamp: %w", i, err)
		}
		if i == start {
			t0 = ts
		}
		t1 = ts
		for a := 1; a <= axes; a++ {
			v, err := strconv.ParseFloat(row[a], 64)
			if err != nil {
				return "", fmt.Errorf("data: csv row %d col %d: %w", i, a, err)
			}
			data = append(data, float32(v))
		}
	}
	n := len(rows) - start
	rate := 0
	if t1 > t0 {
		rate = int(float64(n-1) / ((t1 - t0) / 1000))
	}
	return d.Add(&Sample{
		Name:   name,
		Label:  label,
		Signal: dsp.Signal{Data: data, Rate: rate, Axes: axes},
	})
}

// ImportAcquisition ingests a signed JSON/CBOR acquisition document,
// verifying its HMAC signature first.
func (d *Dataset) ImportAcquisition(name, label string, doc []byte, hmacKey string) (string, error) {
	p, err := ingest.Verify(doc, hmacKey)
	if err != nil {
		return "", err
	}
	s := &Sample{Name: name, Label: label, Signal: p.Signal(), Metadata: map[string]string{
		"device_name": p.DeviceName,
		"device_type": p.DeviceType,
	}}
	return d.Add(s)
}

// ImportImage ingests a PNG or JPG image as an RGB sample.
func (d *Dataset) ImportImage(name, label string, r io.Reader) (string, error) {
	img, _, err := image.Decode(r)
	if err != nil {
		return "", fmt.Errorf("data: image: %w", err)
	}
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	pix := make([]float32, 0, w*h*3)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r16, g16, b16, _ := img.At(x, y).RGBA()
			pix = append(pix, float32(r16>>8), float32(g16>>8), float32(b16>>8))
		}
	}
	return d.Add(&Sample{
		Name:   name,
		Label:  label,
		Signal: dsp.Signal{Data: pix, Axes: 3, Width: w, Height: h},
	})
}
