// Package data implements dataset management (paper Sec. 4.1): labeled
// sample storage with content-addressed IDs, deterministic train/test
// splits, per-class statistics, dataset versioning, and import from the
// file formats the platform accepts (CSV, JSON/CBOR acquisition
// documents, WAV, PNG, JPG).
package data

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"image"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	_ "image/jpeg" // register decoders for ingestion
	_ "image/png"

	"edgepulse/internal/dsp"
	"edgepulse/internal/ingest"
	"edgepulse/internal/wav"
)

// Category assigns a sample to a split.
type Category string

// Split categories.
const (
	Training Category = "training"
	Testing  Category = "testing"
)

// Sample is one labeled dataset entry.
type Sample struct {
	// ID is the content hash of the signal and label.
	ID string
	// Name is the user-facing file name.
	Name string
	// Label is the class name.
	Label string
	// Category is the split assignment.
	Category Category
	// Signal is the raw sensor data.
	Signal dsp.Signal
	// Metadata holds free-form key/value annotations.
	Metadata map[string]string
	// AddedAt is the ingestion timestamp.
	AddedAt time.Time
}

// hash computes the content-addressed sample ID.
func (s *Sample) hash() string {
	h := sha256.New()
	io.WriteString(h, s.Label)
	io.WriteString(h, "\x00")
	io.WriteString(h, s.Name)
	io.WriteString(h, "\x00")
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(s.Signal.Rate))
	h.Write(b[:])
	binary.LittleEndian.PutUint32(b[:], uint32(s.Signal.Axes))
	h.Write(b[:])
	for _, v := range s.Signal.Data {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Dataset is a thread-safe collection of samples.
type Dataset struct {
	mu      sync.RWMutex
	samples map[string]*Sample
	order   []string // insertion order for stable listings
}

// New creates an empty dataset.
func New() *Dataset {
	return &Dataset{samples: map[string]*Sample{}}
}

// Add inserts a sample, assigning its content-addressed ID. Duplicate
// content (same label, name and signal) is rejected.
func (d *Dataset) Add(s *Sample) (string, error) {
	if s.Label == "" {
		return "", fmt.Errorf("data: sample has no label")
	}
	if len(s.Signal.Data) == 0 {
		return "", fmt.Errorf("data: sample has no signal data")
	}
	if s.Category == "" {
		s.Category = Training
	}
	if s.AddedAt.IsZero() {
		s.AddedAt = time.Now()
	}
	id := s.hash()
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.samples[id]; dup {
		return "", fmt.Errorf("data: duplicate sample %s", id)
	}
	s.ID = id
	d.samples[id] = s
	d.order = append(d.order, id)
	return id, nil
}

// Get returns a sample by ID.
func (d *Dataset) Get(id string) (*Sample, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.samples[id]
	if !ok {
		return nil, fmt.Errorf("data: no sample %s", id)
	}
	return s, nil
}

// Remove deletes a sample by ID.
func (d *Dataset) Remove(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.samples[id]; !ok {
		return fmt.Errorf("data: no sample %s", id)
	}
	delete(d.samples, id)
	for i, o := range d.order {
		if o == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return nil
}

// SetLabel relabels a sample (used by the active-learning loop).
func (d *Dataset) SetLabel(id, label string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.samples[id]
	if !ok {
		return fmt.Errorf("data: no sample %s", id)
	}
	s.Label = label
	return nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.samples)
}

// List returns samples in insertion order, optionally filtered by
// category ("" = all).
func (d *Dataset) List(cat Category) []*Sample {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Sample, 0, len(d.order))
	for _, id := range d.order {
		s := d.samples[id]
		if cat == "" || s.Category == cat {
			out = append(out, s)
		}
	}
	return out
}

// Labels returns the distinct labels in sorted order.
func (d *Dataset) Labels() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	set := map[string]bool{}
	for _, s := range d.samples {
		set[s.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Rebalance reassigns train/test categories so that close to testFraction
// of each label's samples land in the test split. The assignment is a
// deterministic function of sample IDs, so re-running it (or adding
// samples and re-running) never shuffles existing assignments randomly —
// the "maintaining train/validation/test splits" operational concern of
// paper Sec. 2.4.
func (d *Dataset) Rebalance(testFraction float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	byLabel := map[string][]*Sample{}
	for _, id := range d.order {
		s := d.samples[id]
		byLabel[s.Label] = append(byLabel[s.Label], s)
	}
	for _, group := range byLabel {
		// Deterministic order: sort by ID (content hash).
		sort.Slice(group, func(i, j int) bool { return group[i].ID < group[j].ID })
		nTest := int(math.Round(testFraction * float64(len(group))))
		for i, s := range group {
			if i < nTest {
				s.Category = Testing
			} else {
				s.Category = Training
			}
		}
	}
}

// LabelStat summarizes one class.
type LabelStat struct {
	Label    string
	Training int
	Testing  int
	// Seconds of time-series data (0 for images).
	Seconds float64
}

// Stats returns per-label counts and durations, sorted by label — the
// data the platform's class-allocation view shows.
func (d *Dataset) Stats() []LabelStat {
	d.mu.RLock()
	defer d.mu.RUnlock()
	byLabel := map[string]*LabelStat{}
	for _, s := range d.samples {
		st, ok := byLabel[s.Label]
		if !ok {
			st = &LabelStat{Label: s.Label}
			byLabel[s.Label] = st
		}
		if s.Category == Testing {
			st.Testing++
		} else {
			st.Training++
		}
		if s.Signal.Rate > 0 {
			st.Seconds += float64(s.Signal.Frames()) / float64(s.Signal.Rate)
		}
	}
	out := make([]LabelStat, 0, len(byLabel))
	for _, st := range byLabel {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Version returns a content hash over all sample IDs and labels: any
// addition, removal or relabeling changes the version. This is the
// dataset half of the project versioning story (paper Sec. 2.4, 3).
func (d *Dataset) Version() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := append([]string(nil), d.order...)
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		io.WriteString(h, id)
		io.WriteString(h, "=")
		io.WriteString(h, d.samples[id].Label)
		io.WriteString(h, ";")
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ImportWAV ingests a WAV file as one labeled audio sample.
func (d *Dataset) ImportWAV(name, label string, r io.Reader) (string, error) {
	a, err := wav.Decode(r)
	if err != nil {
		return "", err
	}
	return d.Add(&Sample{
		Name:  name,
		Label: label,
		Signal: dsp.Signal{
			Data: a.Samples, Rate: a.Rate, Axes: a.Channels,
		},
	})
}

// ImportCSV ingests a CSV time series: first column is a timestamp in
// milliseconds, remaining columns are sensor axes. A header row is
// skipped if non-numeric.
func (d *Dataset) ImportCSV(name, label string, r io.Reader) (string, error) {
	rd := csv.NewReader(r)
	rows, err := rd.ReadAll()
	if err != nil {
		return "", fmt.Errorf("data: csv: %w", err)
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("data: csv is empty")
	}
	start := 0
	if _, err := strconv.ParseFloat(rows[0][0], 64); err != nil {
		start = 1 // header
	}
	if len(rows)-start < 2 {
		return "", fmt.Errorf("data: csv has %d data rows, need >= 2", len(rows)-start)
	}
	axes := len(rows[start]) - 1
	if axes < 1 {
		return "", fmt.Errorf("data: csv needs timestamp plus at least one axis")
	}
	var data []float32
	var t0, t1 float64
	for i := start; i < len(rows); i++ {
		row := rows[i]
		if len(row) != axes+1 {
			return "", fmt.Errorf("data: csv row %d has %d columns, want %d", i, len(row), axes+1)
		}
		ts, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return "", fmt.Errorf("data: csv row %d timestamp: %w", i, err)
		}
		if i == start {
			t0 = ts
		}
		t1 = ts
		for a := 1; a <= axes; a++ {
			v, err := strconv.ParseFloat(row[a], 64)
			if err != nil {
				return "", fmt.Errorf("data: csv row %d col %d: %w", i, a, err)
			}
			data = append(data, float32(v))
		}
	}
	n := len(rows) - start
	rate := 0
	if t1 > t0 {
		rate = int(float64(n-1) / ((t1 - t0) / 1000))
	}
	return d.Add(&Sample{
		Name:   name,
		Label:  label,
		Signal: dsp.Signal{Data: data, Rate: rate, Axes: axes},
	})
}

// ImportAcquisition ingests a signed JSON/CBOR acquisition document,
// verifying its HMAC signature first.
func (d *Dataset) ImportAcquisition(name, label string, doc []byte, hmacKey string) (string, error) {
	p, err := ingest.Verify(doc, hmacKey)
	if err != nil {
		return "", err
	}
	s := &Sample{Name: name, Label: label, Signal: p.Signal(), Metadata: map[string]string{
		"device_name": p.DeviceName,
		"device_type": p.DeviceType,
	}}
	return d.Add(s)
}

// ImportImage ingests a PNG or JPG image as an RGB sample.
func (d *Dataset) ImportImage(name, label string, r io.Reader) (string, error) {
	img, _, err := image.Decode(r)
	if err != nil {
		return "", fmt.Errorf("data: image: %w", err)
	}
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	pix := make([]float32, 0, w*h*3)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r16, g16, b16, _ := img.At(x, y).RGBA()
			pix = append(pix, float32(r16>>8), float32(g16>>8), float32(b16>>8))
		}
	}
	return d.Add(&Sample{
		Name:   name,
		Label:  label,
		Signal: dsp.Signal{Data: pix, Axes: 3, Width: w, Height: h},
	})
}
