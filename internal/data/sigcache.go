package data

import (
	"container/list"
	"sync"

	"edgepulse/internal/dsp"
)

// signalCache is a byte-bounded LRU of decoded signals for lazy-mode
// datasets: repeated feature extraction over the same window of samples
// (training epochs, tuner trials) hits memory instead of re-reading and
// re-decoding segment records.
type signalCache struct {
	mu    sync.Mutex
	max   int64 // byte budget for cached payloads
	used  int64
	order *list.List // front = most recently used; values are *cacheEntry
	byID  map[string]*list.Element
}

type cacheEntry struct {
	id  string
	sig dsp.Signal
}

// sigBytes is the retained payload size of a decoded signal.
func sigBytes(sig dsp.Signal) int64 { return int64(len(sig.Data)) * 4 }

func newSignalCache(maxBytes int64) *signalCache {
	return &signalCache{max: maxBytes, order: list.New(), byID: map[string]*list.Element{}}
}

// get returns a cached signal, marking it most recently used.
func (c *signalCache) get(id string) (dsp.Signal, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return dsp.Signal{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).sig, true
}

// put inserts a signal, evicting least-recently-used entries until the
// byte budget holds. Signals larger than the whole budget are not
// cached at all (a single oversized sample must not flush the cache).
func (c *signalCache) put(id string, sig dsp.Signal) {
	n := sigBytes(sig)
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.byID[id] = c.order.PushFront(&cacheEntry{id: id, sig: sig})
	c.used += n
	for c.used > c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.byID, e.id)
		c.used -= sigBytes(e.sig)
	}
}

// drop removes one entry (after a sample deletion).
func (c *signalCache) drop(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		c.used -= sigBytes(el.Value.(*cacheEntry).sig)
		c.order.Remove(el)
		delete(c.byID, id)
	}
}
