package tflm

import (
	"fmt"

	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
)

// Kernel executes one float op. Registered kernels are resolved by name
// at every Invoke — the runtime dispatch the EON compiler eliminates.
type Kernel func(layer nn.Layer, in *tensor.F32) *tensor.F32

// opRegistry maps op kinds to float kernels. All builtin kinds delegate
// to the layer's own Forward; the registry exists to model (and measure,
// in benchmarks) interpreter-style indirection, and to let tests register
// custom ops.
var opRegistry = map[string]Kernel{}

// RegisterKernel installs a kernel for an op kind, replacing any builtin.
// It returns a function restoring the previous registration.
func RegisterKernel(kind string, k Kernel) func() {
	prev, had := opRegistry[kind]
	opRegistry[kind] = k
	return func() {
		if had {
			opRegistry[kind] = prev
		} else {
			delete(opRegistry, kind)
		}
	}
}

func init() {
	for _, kind := range []string{
		"dense", "conv2d", "depthwise_conv2d", "conv1d",
		"maxpool2d", "avgpool2d", "maxpool1d", "gap2d",
		"flatten", "reshape", "softmax", "dropout", "batchnorm",
	} {
		opRegistry[kind] = func(layer nn.Layer, in *tensor.F32) *tensor.F32 {
			return layer.Forward(in)
		}
	}
}

// Interpreter executes a ModelFile by walking its op list and resolving
// each op's kernel from the registry at call time.
type Interpreter struct {
	mf *ModelFile
	// invocations counts ops dispatched (for tests and stats).
	invocations int64
}

// NewInterpreter validates the model and prepares it for execution.
func NewInterpreter(mf *ModelFile) (*Interpreter, error) {
	switch mf.Precision {
	case Float32:
		if mf.Float == nil {
			return nil, fmt.Errorf("tflm: float model missing")
		}
		specs, err := mf.Float.Spec()
		if err != nil {
			return nil, err
		}
		for _, s := range specs {
			if _, ok := opRegistry[s.Kind]; !ok {
				return nil, fmt.Errorf("tflm: no kernel registered for %q", s.Kind)
			}
		}
	case Int8:
		if mf.Quant == nil {
			return nil, fmt.Errorf("tflm: quant model missing")
		}
	default:
		return nil, fmt.Errorf("tflm: unknown precision %d", mf.Precision)
	}
	return &Interpreter{mf: mf}, nil
}

// Invoke runs one inference and returns class probabilities.
func (it *Interpreter) Invoke(in *tensor.F32) (*tensor.F32, error) {
	if !in.Shape.Equal(it.mf.InputShape()) {
		return nil, fmt.Errorf("tflm: input shape %v != model %v", in.Shape, it.mf.InputShape())
	}
	if it.mf.Precision == Int8 {
		it.invocations += int64(len(it.mf.Quant.Ops))
		return it.mf.Quant.Forward(in), nil
	}
	x := in
	for _, l := range it.mf.Float.Layers {
		kernel := opRegistry[l.Kind()] // runtime dispatch per op
		x = kernel(l, x)
		it.invocations++
	}
	return x, nil
}

// Invocations returns the total number of op dispatches performed.
func (it *Interpreter) Invocations() int64 { return it.invocations }

// ModelFileFromFloat wraps a trained float model for serialization.
func ModelFileFromFloat(m *nn.Model) *ModelFile {
	return &ModelFile{Precision: Float32, NumClasses: m.NumClasses, Float: m}
}

// ModelFileFromQuant wraps a quantized model for serialization.
func ModelFileFromQuant(qm *quant.QModel) *ModelFile {
	return &ModelFile{Precision: Int8, NumClasses: qm.NumClasses, Quant: qm}
}
